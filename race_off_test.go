//go:build !race

package melissa

const raceEnabled = false
