package melissa

// End-to-end test of the standalone binaries: a melissa-server process and
// several melissa-client processes cooperating over TCP, exactly as a user
// would run them from a shell — once per registered problem.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestMultiProcessServerAndClients(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs separate processes")
	}
	dir := t.TempDir()
	serverBin := filepath.Join(dir, "melissa-server")
	clientBin := filepath.Join(dir, "melissa-client")
	for bin, pkg := range map[string]string{serverBin: "./cmd/melissa-server", clientBin: "./cmd/melissa-client"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	t.Run("heat", func(t *testing.T) {
		weights := runMultiProcessEnsemble(t, serverBin, clientBin, HeatName)
		// The written weights are a raw nn payload; the legacy loader
		// restores them with the architecture supplied explicitly.
		s, err := LoadSurrogateLegacyFile(weights, 8, 6, 0.01, []int{64, 64}, 2023)
		if err != nil {
			t.Fatal(err)
		}
		field := s.PredictHeat(HeatParams{TIC: 300, TX1: 200, TY1: 400, TX2: 250, TY2: 350}, 0.03)
		if len(field) != 64 {
			t.Fatalf("field length %d", len(field))
		}
	})
	t.Run("gray-scott", func(t *testing.T) {
		// The same binaries run the second problem end-to-end with just a
		// flag change; the streamed fields are two-channel (128 values).
		runMultiProcessEnsemble(t, serverBin, clientBin, GrayScottName)
	})
}

// TestMultiProcessRanksOverTCP drives the multi-process deployment: one
// melissa-server OS process per training rank, joined over the TCP
// collective ring (-proc / -ranks-transport), with the ensemble clients
// streaming to both rank processes. Rank 0 must produce trained weights
// that load and predict.
func TestMultiProcessRanksOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs separate processes")
	}
	bdir := t.TempDir()
	serverBin := filepath.Join(bdir, "melissa-server")
	clientBin := filepath.Join(bdir, "melissa-client")
	for bin, pkg := range map[string]string{serverBin: "./cmd/melissa-server", clientBin: "./cmd/melissa-client"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	dir := t.TempDir()
	const ranks = 2
	const clients = 3
	weights := filepath.Join(dir, "weights.bin")

	// Reserve a loopback port per rank for the collective ring. The
	// listen-close-reuse pattern has a tiny race window, acceptable for a
	// test.
	ringAddrs := make([]string, ranks)
	for r := range ringAddrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ringAddrs[r] = ln.Addr().String()
		ln.Close()
	}
	transportList := strings.Join(ringAddrs, ",")

	// One server process per rank; each publishes its own client address.
	srvs := make([]*exec.Cmd, ranks)
	outs := make([]*strings.Builder, ranks)
	rankAddrFiles := make([]string, ranks)
	for r := 0; r < ranks; r++ {
		rankAddrFiles[r] = filepath.Join(dir, fmt.Sprintf("addrs-rank%d.txt", r))
		srv := exec.Command(serverBin,
			"-ranks", fmt.Sprint(ranks), "-proc", fmt.Sprint(r), "-ranks-transport", transportList,
			"-clients", fmt.Sprint(clients), "-problem", HeatName,
			"-grid", "8", "-steps", "6", "-batch", "4",
			"-buffer", "Reservoir", "-capacity", "60", "-threshold", "8",
			"-addr-file", rankAddrFiles[r], "-out", weights)
		outs[r] = &strings.Builder{}
		srv.Stdout = outs[r]
		srv.Stderr = outs[r]
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer srv.Process.Kill()
		srvs[r] = srv
	}

	// Wait for every rank to publish, then assemble the client-facing
	// address file in rank order — the documented multi-process workflow.
	addrFile := filepath.Join(dir, "addrs.txt")
	deadline := time.Now().Add(30 * time.Second)
	var combined string
	for {
		combined = ""
		complete := true
		for r := 0; r < ranks; r++ {
			data, err := os.ReadFile(rankAddrFiles[r])
			if err != nil || strings.TrimSpace(string(data)) == "" {
				complete = false
				break
			}
			combined += strings.TrimSpace(string(data)) + "\n"
		}
		if complete {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank servers never published addresses; rank0:\n%s\nrank1:\n%s", outs[0].String(), outs[1].String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := os.WriteFile(addrFile, []byte(combined), 0o644); err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, clients)
	for id := 0; id < clients; id++ {
		go func(id int) {
			out, err := exec.Command(clientBin,
				"-id", fmt.Sprint(id), "-problem", HeatName, "-grid", "8", "-steps", "6",
				"-addr-file", addrFile).CombinedOutput()
			if err != nil {
				err = fmt.Errorf("client %d: %v\n%s", id, err, out)
			}
			errCh <- err
		}(id)
	}
	for i := 0; i < clients; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}

	for r, srv := range srvs {
		done := make(chan error, 1)
		go func() { done <- srv.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("rank %d server exited with %v; output:\n%s", r, err, outs[r].String())
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("rank %d server did not terminate; output:\n%s", r, outs[r].String())
		}
	}
	if !strings.Contains(outs[0].String(), "trained") {
		t.Fatalf("rank 0 output missing summary:\n%s", outs[0].String())
	}

	s, err := LoadSurrogateLegacyFile(weights, 8, 6, 0.01, []int{64, 64}, 2023)
	if err != nil {
		t.Fatal(err)
	}
	field := s.PredictHeat(HeatParams{TIC: 300, TX1: 200, TY1: 400, TX2: 250, TY2: 350}, 0.03)
	if len(field) != 64 {
		t.Fatalf("field length %d", len(field))
	}
}

// runMultiProcessEnsemble drives one server + 3 clients for a problem and
// returns the path of the written weights file.
func runMultiProcessEnsemble(t *testing.T, serverBin, clientBin, problem string) string {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addrs.txt")
	weights := filepath.Join(dir, "weights.bin")
	const clients = 3

	srv := exec.Command(serverBin,
		"-ranks", "2", "-clients", fmt.Sprint(clients), "-problem", problem,
		"-grid", "8", "-steps", "6", "-batch", "4",
		"-buffer", "Reservoir", "-capacity", "60", "-threshold", "8",
		"-addr-file", addrFile, "-out", weights)
	var srvOut strings.Builder
	srv.Stdout = &srvOut
	srv.Stderr = &srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// Wait for the server to publish its rank addresses.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && strings.Count(strings.TrimSpace(string(data)), "\n") == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never published addresses; output:\n%s", srvOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Run the ensemble clients concurrently, as separate processes.
	errCh := make(chan error, clients)
	for id := 0; id < clients; id++ {
		go func(id int) {
			out, err := exec.Command(clientBin,
				"-id", fmt.Sprint(id), "-problem", problem, "-grid", "8", "-steps", "6",
				"-addr-file", addrFile).CombinedOutput()
			if err != nil {
				err = fmt.Errorf("client %d: %v\n%s", id, err, out)
			}
			errCh <- err
		}(id)
	}
	for i := 0; i < clients; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited with %v; output:\n%s", err, srvOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("server did not terminate; output:\n%s", srvOut.String())
	}
	if !strings.Contains(srvOut.String(), "trained") {
		t.Fatalf("server output missing summary:\n%s", srvOut.String())
	}
	return weights
}
