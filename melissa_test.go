package melissa

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"
)

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Simulations = 6
	cfg.GridN = 8
	cfg.StepsPerSim = 8
	cfg.MaxConcurrentClients = 3
	cfg.Hidden = []int{16}
	cfg.BatchSize = 4
	cfg.Capacity = 100
	cfg.Threshold = 8
	cfg.ValidationSims = 1
	cfg.ValidateEvery = 10
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Simulations = 0 },
		func(c *Config) { c.GridN = 0 },
		func(c *Config) { c.StepsPerSim = 0 },
		func(c *Config) { c.Ranks = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.Buffer = "bogus" },
		func(c *Config) { c.Dt = 0 },
		func(c *Config) { c.Dt = -0.01 },
		func(c *Config) { c.Capacity = 0 },
		func(c *Config) { c.Capacity = -5 },
		func(c *Config) { c.Threshold = -1 },
		func(c *Config) { c.Threshold = c.Capacity + 1 },
	}
	for i, mutate := range bad {
		cfg := tinyConfig()
		mutate(&cfg)
		if _, err := RunOnline(context.Background(), cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestRunOnlineEndToEnd(t *testing.T) {
	cfg := tinyConfig()
	res, err := RunOnline(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Surrogate == nil {
		t.Fatal("no surrogate")
	}
	want := cfg.Simulations * cfg.StepsPerSim
	if res.UniqueSamples != want {
		t.Fatalf("unique %d, want %d", res.UniqueSamples, want)
	}
	if res.Samples < want || res.Batches == 0 {
		t.Fatalf("samples %d batches %d", res.Samples, res.Batches)
	}
	if res.ValidationMSE <= 0 {
		t.Fatal("no validation recorded")
	}
	if res.ValidationMSEKelvin <= res.ValidationMSE {
		t.Fatal("Kelvin-scale MSE should exceed normalized MSE")
	}
	if len(res.ValidationCurve) == 0 || len(res.TrainCurve) == 0 {
		t.Fatal("curves missing")
	}
	if res.Throughput <= 0 || res.WallTime <= 0 {
		t.Fatal("throughput accounting broken")
	}

	// The surrogate predicts fields of the right shape within the
	// physically plausible range (trained on [100,500] K).
	p := HeatParams{TIC: 300, TX1: 200, TY1: 400, TX2: 250, TY2: 350}
	field := res.Surrogate.PredictHeat(p, 0.04)
	if len(field) != cfg.GridN*cfg.GridN {
		t.Fatalf("field length %d", len(field))
	}
	for _, v := range field {
		if v < 0 || v > 700 || math.IsNaN(v) {
			t.Fatalf("implausible prediction %v", v)
		}
	}
}

func TestRunOnlineDeterministicConfigSurface(t *testing.T) {
	// Two runs with the same seed produce the same unique-sample set size
	// and the same network shape. (Wall-clock interleaving means training
	// order — and thus exact weights — can differ across live runs; full
	// determinism is a property of the simulated mode.)
	cfg := tinyConfig()
	a, err := RunOnline(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnline(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.UniqueSamples != b.UniqueSamples {
		t.Fatal("unique sample sets differ across seeded runs")
	}
	if a.Surrogate.NumParams() != b.Surrogate.NumParams() {
		t.Fatal("architectures differ")
	}
}

func TestSurrogateSaveLoadRoundtrip(t *testing.T) {
	cfg := tinyConfig()
	res, err := RunOnline(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Surrogate.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSurrogate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m := loaded.Meta(); m.Problem != HeatName || m.GridN != cfg.GridN || m.StepsPerSim != cfg.StepsPerSim {
		t.Fatalf("metadata not restored: %+v", m)
	}
	p := HeatParams{TIC: 150, TX1: 450, TY1: 300, TX2: 200, TY2: 380}
	a := res.Surrogate.PredictHeat(p, 0.05)
	b := loaded.PredictHeat(p, 0.05)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded surrogate predicts differently")
		}
	}
}

func TestPredictBatchMatchesSingle(t *testing.T) {
	res, err := RunOnline(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	ps := []HeatParams{
		{TIC: 300, TX1: 200, TY1: 400, TX2: 250, TY2: 350},
		{TIC: 120, TX1: 480, TY1: 160, TX2: 440, TY2: 220},
	}
	ts := []float64{0.02, 0.06}
	batch, err := res.Surrogate.PredictBatchHeat(ps, ts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		single := res.Surrogate.PredictHeat(ps[i], ts[i])
		for j := range single {
			if math.Abs(single[j]-batch[i][j]) > 1e-3 {
				t.Fatalf("batch/single mismatch at %d/%d: %v vs %v", i, j, batch[i][j], single[j])
			}
		}
	}
	if _, err := res.Surrogate.PredictBatchHeat(ps, ts[:1]); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := res.Surrogate.PredictBatch([][]float64{{1, 2}}, []float64{0.1}); err == nil {
		t.Fatal("expected parameter-dimension error")
	}
}

func TestSolveGroundTruth(t *testing.T) {
	p := HeatParams{TIC: 300, TX1: 300, TY1: 300, TX2: 300, TY2: 300}
	fields, err := Solve(p, 8, 5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 5 || len(fields[0]) != 64 {
		t.Fatalf("shape %d × %d", len(fields), len(fields[0]))
	}
	// Uniform temperatures stay uniform.
	for _, f := range fields {
		for _, v := range f {
			if math.Abs(v-300) > 1e-8 {
				t.Fatalf("steady state drifted: %v", v)
			}
		}
	}
	if _, err := Solve(p, 0, 5, 0.01); err == nil {
		t.Fatal("expected error for invalid grid")
	}
}

func TestRunOnlineContextCancel(t *testing.T) {
	cfg := tinyConfig()
	cfg.Simulations = 50 // long enough to cancel mid-run
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := RunOnline(ctx, cfg); err == nil {
		t.Fatal("expected cancellation error")
	}
}
