// Pretrain-retrain: the production workflow the paper's conclusion (§5)
// recommends — "combine pre-training (with the necessary repetitions to
// tune hyperparameters) from a static reduced dataset and few online
// re-training at scale with complementary data". A small dataset is
// generated once and used for offline pre-training (cheap to repeat); the
// pre-trained surrogate is then re-trained online from a fresh, larger
// ensemble, and compared against training online from scratch on the same
// budget.
//
//	go run ./examples/pretrain-retrain
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"melissa"
)

func main() {
	base := melissa.DefaultConfig()
	base.GridN = 16
	base.StepsPerSim = 20
	base.MaxConcurrentClients = 4
	base.ValidationSims = 3
	base.ValidateEvery = 25

	// Phase 1: generate a small static dataset and pre-train offline.
	dir, err := os.MkdirTemp("", "melissa-pretrain-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	genCfg := base
	genCfg.Simulations = 10
	info, err := melissa.GenerateDataset(context.Background(), genCfg, dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: generated %d simulations (%d samples, %.1f MB) in %s\n",
		info.Simulations, info.Samples, float64(info.Bytes)/1e6, dir)

	pre, err := melissa.TrainOffline(context.Background(), genCfg, dir, 15, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: offline pre-training over 15 epochs → validation MSE %.5f\n\n", pre.ValidationMSE)

	// Phase 2: online re-training at larger scale, warm-started.
	onlineCfg := base
	onlineCfg.Simulations = 30
	onlineCfg.WarmStart = pre.Surrogate
	warm, err := melissa.RunOnline(context.Background(), onlineCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Control: the same online budget from a cold start.
	coldCfg := base
	coldCfg.Simulations = 30
	cold, err := melissa.RunOnline(context.Background(), coldCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("phase 2: online re-training on %d fresh simulations\n", onlineCfg.Simulations)
	fmt.Printf("  warm start (pretrained): validation MSE %.5f (first recorded %.5f)\n",
		warm.ValidationMSE, firstVal(warm))
	fmt.Printf("  cold start (scratch):    validation MSE %.5f (first recorded %.5f)\n",
		cold.ValidationMSE, firstVal(cold))
	fmt.Println()
	fmt.Println("warm starts enter online training near the pre-trained loss level,")
	fmt.Println("so the online phase spends its budget on complementary data instead")
	fmt.Println("of re-learning the basics — the trade-off §5 describes between")
	fmt.Println("storage footprint and the computing cost of re-running simulations.")
}

func firstVal(r *melissa.RunResult) float64 {
	if len(r.ValidationCurve) == 0 {
		return 0
	}
	return r.ValidationCurve[0].MSE
}
