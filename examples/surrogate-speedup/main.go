// Surrogate speedup: the downstream use case motivating deep surrogates
// (paper §1) — once trained, the surrogate answers parameter-sweep queries
// orders of magnitude faster than the solver. This example trains a
// surrogate online, then times a 200-configuration design sweep both ways
// and reports the speedup and accuracy trade-off.
//
//	go run ./examples/surrogate-speedup
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"time"

	"melissa"
)

func main() {
	cfg := melissa.DefaultConfig()
	cfg.Simulations = 40
	cfg.GridN = 16
	cfg.StepsPerSim = 20
	cfg.MaxConcurrentClients = 4
	cfg.ValidationSims = 2

	fmt.Println("training surrogate online...")
	start := time.Now()
	res, err := melissa.RunOnline(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	trainTime := time.Since(start)
	fmt.Printf("trained in %v (validation MSE %.5f)\n\n", trainTime.Round(time.Millisecond), res.ValidationMSE)

	// A design sweep: 200 random configurations, field requested at t_final.
	const sweep = 200
	rng := rand.New(rand.NewPCG(7, 7))
	params := make([]melissa.HeatParams, sweep)
	times := make([]float64, sweep)
	tFinal := float64(cfg.StepsPerSim) * cfg.Dt
	for i := range params {
		params[i] = melissa.HeatParams{
			TIC: 100 + 400*rng.Float64(),
			TX1: 100 + 400*rng.Float64(),
			TY1: 100 + 400*rng.Float64(),
			TX2: 100 + 400*rng.Float64(),
			TY2: 100 + 400*rng.Float64(),
		}
		times[i] = tFinal
	}

	// Surrogate: one batched forward pass.
	start = time.Now()
	preds, err := res.Surrogate.PredictBatchHeat(params, times)
	if err != nil {
		log.Fatal(err)
	}
	surrogateTime := time.Since(start)

	// Solver: full time integration per configuration (sampled subset to
	// keep the example fast; scaled to the full sweep).
	const solverSubset = 20
	start = time.Now()
	var rmseSum float64
	for i := 0; i < solverSubset; i++ {
		fields, err := melissa.Solve(params[i], cfg.GridN, cfg.StepsPerSim, cfg.Dt)
		if err != nil {
			log.Fatal(err)
		}
		truth := fields[len(fields)-1]
		var mse float64
		for j := range truth {
			d := preds[i][j] - truth[j]
			mse += d * d
		}
		rmseSum += math.Sqrt(mse / float64(len(truth)))
	}
	solverSubsetTime := time.Since(start)
	solverFullEstimate := solverSubsetTime * sweep / solverSubset

	fmt.Printf("design sweep of %d configurations (%d×%d field at t=%.2fs):\n", sweep, cfg.GridN, cfg.GridN, tFinal)
	fmt.Printf("  surrogate (batched):   %12v\n", surrogateTime.Round(time.Microsecond))
	fmt.Printf("  solver (extrapolated): %12v\n", solverFullEstimate.Round(time.Millisecond))
	fmt.Printf("  speedup:               %12.0f×\n", float64(solverFullEstimate)/float64(surrogateTime))
	fmt.Printf("  mean field RMSE:       %12.2f K (on a 100-500 K range)\n", rmseSum/solverSubset)
	fmt.Println()
	fmt.Println("amortization: the surrogate pays for its one-off training after")
	fmt.Printf("≈%.0f solver-equivalent sweeps of this size.\n",
		float64(trainTime)/float64(solverFullEstimate))
}
