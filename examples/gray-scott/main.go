// Gray–Scott walkthrough: the second registered Problem, proving the
// pipeline is truly problem-agnostic. The 2D Gray–Scott reaction–diffusion
// system forms spots and stripes — dynamics qualitatively different from
// the heat equation's smoothing — yet trains through the identical online
// workflow: same launcher, clients, server, buffers, and surrogate.
//
// The surrogate maps (F, k, Du, Dv, t) to both concentration channels at
// once (a 2·N² output). After training, the example renders the V channel
// of the surrogate prediction next to the solver's ground truth and
// round-trips the model through a self-describing checkpoint.
//
//	go run ./examples/gray-scott
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math"

	"melissa"
)

func main() {
	cfg := melissa.DefaultConfig()
	cfg.Problem = melissa.GrayScott()
	cfg.Simulations = 48
	cfg.GridN = 12
	cfg.StepsPerSim = 40
	cfg.Dt = 1 // lattice time units; the explicit scheme is stable here
	cfg.Hidden = []int{96, 96}
	cfg.Capacity = 600
	cfg.Threshold = 50
	cfg.ValidationSims = 2
	cfg.ValidateEvery = 40

	prob := cfg.Problem
	min, max := prob.ParamBounds()
	fmt.Printf("problem %q: parameters %v in %v..%v, field shape %v\n",
		prob.Name(), prob.ParamNames(), min, max, prob.FieldShape(cfg))
	fmt.Printf("training from %d online simulations (%d steps each)...\n", cfg.Simulations, cfg.StepsPerSim)

	res, err := melissa.RunOnline(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: %d batches, %d samples (%d unique), validation MSE %.5f\n\n",
		res.Batches, res.Samples, res.UniqueSamples, res.ValidationMSE)

	// An unseen parameter point: mid-range feed/kill, fairly fast diffusion.
	params := []float64{0.035, 0.058, 0.16, 0.08}
	t := float64(cfg.StepsPerSim) * cfg.Dt
	pred := res.Surrogate.Predict(params, t)

	truth, err := melissa.Simulate(prob, cfg, params)
	if err != nil {
		log.Fatal(err)
	}
	ref := truth[len(truth)-1]

	n := cfg.GridN
	var rmse float64
	for i := range ref {
		d := pred[i] - ref[i]
		rmse += d * d
	}
	rmse = math.Sqrt(rmse / float64(len(ref)))
	fmt.Printf("surrogate vs solver at t=%.0f (F=%.3f k=%.3f): field RMSE %.4f (concentrations in [0,1])\n",
		t, params[0], params[1], rmse)

	// Render the V channel (second half of the flattened field) both ways.
	fmt.Println("\nV concentration, solver (left) vs surrogate (right):")
	shades := []rune(" .:-=+*#%@")
	for i := 0; i < n; i++ {
		var left, right []rune
		for j := 0; j < n; j++ {
			left = append(left, shade(ref[n*n+i*n+j], shades))
			right = append(right, shade(pred[n*n+i*n+j], shades))
		}
		fmt.Printf("  %s   %s\n", string(left), string(right))
	}

	// Self-describing checkpoint: the loaded surrogate knows its problem.
	var ckpt bytes.Buffer
	if err := res.Surrogate.Save(&ckpt); err != nil {
		log.Fatal(err)
	}
	loaded, err := melissa.LoadSurrogate(&ckpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheckpoint round-trip: problem %q, output %d values, %d parameters\n",
		loaded.Meta().Problem, loaded.OutputDim(), loaded.NumParams())
}

// shade maps a concentration in [0, ~0.4] to an ASCII intensity.
func shade(v float64, shades []rune) rune {
	idx := int(v * 2.5 * float64(len(shades)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(shades) {
		idx = len(shades) - 1
	}
	return shades[idx]
}
