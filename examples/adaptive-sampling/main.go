// Adaptive sampling: the paper's future-work direction (§5) — "adaptive
// training where the next set of clients to run is defined online according
// to the current training status". A first surrogate is trained on a small
// Monte Carlo ensemble; a second training round then draws its simulation
// parameters adaptively, scoring candidate parameter points by the current
// surrogate's error against a short solver probe and simulating where the
// surrogate is worst. The same budget spent on plain Monte Carlo serves as
// the baseline.
//
//	go run ./examples/adaptive-sampling
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"melissa"
)

const (
	gridN     = 12
	stepsSim  = 15
	dt        = 0.01
	round1    = 12 // initial Monte Carlo ensemble
	round2    = 12 // second-round budget (adaptive vs Monte Carlo)
	probeStep = 5  // solver steps used to score candidates
)

func main() {
	fmt.Printf("round 1: %d Monte Carlo simulations\n", round1)
	first, err := melissa.RunOnline(context.Background(), roundConfig(round1, nil))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  validation MSE after round 1: %.5f\n\n", first.ValidationMSE)

	// Baseline: another Monte Carlo round with the full two-round budget.
	mcRes, err := melissa.RunOnline(context.Background(), roundConfig(round1+round2, nil))
	if err != nil {
		log.Fatal(err)
	}

	// Adaptive: the second round scores 6 candidates per draw by the
	// round-1 surrogate's probe error and simulates the worst-predicted.
	rng := rand.New(rand.NewPCG(99, 1))
	draws := 0
	adaptiveSampler := func() []float64 {
		draws++
		if draws <= round1 {
			// Replay round 1 so both phases are in the training set.
			return uniformPoint(rand.New(rand.NewPCG(2023, uint64(draws))))
		}
		best, bestScore := uniformPoint(rng), -1.0
		for c := 0; c < 6; c++ {
			p := uniformPoint(rng)
			if s := probeError(first.Surrogate, p); s > bestScore {
				best, bestScore = p, s
			}
		}
		return best
	}
	adRes, err := melissa.RunOnline(context.Background(), roundConfig(round1+round2, adaptiveSampler))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("round 2 (%d more simulations, equal budget):\n", round2)
	fmt.Printf("  Monte Carlo validation MSE: %.5f\n", mcRes.ValidationMSE)
	fmt.Printf("  adaptive    validation MSE: %.5f\n", adRes.ValidationMSE)
	if adRes.ValidationMSE < mcRes.ValidationMSE {
		fmt.Printf("  adaptive design improved validation by %.1f%%\n",
			100*(1-adRes.ValidationMSE/mcRes.ValidationMSE))
	} else {
		fmt.Println("  no improvement at this budget — error-driven designs need")
		fmt.Println("  enough rounds for the error landscape to stabilize")
	}
}

func roundConfig(sims int, sampler func() []float64) melissa.Config {
	cfg := melissa.DefaultConfig()
	cfg.Simulations = sims
	cfg.GridN = gridN
	cfg.StepsPerSim = stepsSim
	cfg.Dt = dt
	cfg.MaxConcurrentClients = 4
	cfg.Hidden = []int{48, 48}
	cfg.Capacity = 120
	cfg.Threshold = 20
	cfg.ValidationSims = 3
	cfg.ValidateEvery = 25
	cfg.Sampler = sampler
	return cfg
}

// uniformPoint draws one unit-cube design point.
func uniformPoint(rng *rand.Rand) []float64 {
	p := make([]float64, 5)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}

// probeError measures the round-1 surrogate's RMSE against a short solver
// run at the candidate parameters — the "current training status" signal
// that steers the design.
func probeError(s *melissa.Surrogate, unit []float64) float64 {
	p := melissa.HeatParams{
		TIC: 100 + 400*unit[0],
		TX1: 100 + 400*unit[1],
		TY1: 100 + 400*unit[2],
		TX2: 100 + 400*unit[3],
		TY2: 100 + 400*unit[4],
	}
	fields, err := melissa.Solve(p, gridN, probeStep, dt)
	if err != nil {
		return 0
	}
	truth := fields[probeStep-1]
	pred := s.PredictHeat(p, float64(probeStep)*dt)
	var mse float64
	for i := range truth {
		d := pred[i] - truth[i]
		mse += d * d
	}
	return mse / float64(len(truth))
}
