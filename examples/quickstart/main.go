// Quickstart: train a deep surrogate of the 2D heat equation from a small
// online ensemble, then compare one prediction against the real solver.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"melissa"
)

func main() {
	cfg := melissa.DefaultConfig()
	cfg.Simulations = 30
	cfg.GridN = 16
	cfg.StepsPerSim = 20
	cfg.MaxConcurrentClients = 4
	cfg.Buffer = melissa.Reservoir

	fmt.Printf("training surrogate from %d online simulations (%d×%d grid, %d steps each)...\n",
		cfg.Simulations, cfg.GridN, cfg.GridN, cfg.StepsPerSim)
	res, err := melissa.RunOnline(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: %d batches, %d samples (%d unique), %.1f samples/s, validation MSE %.5f\n",
		res.Batches, res.Samples, res.UniqueSamples, res.Throughput, res.ValidationMSE)

	// Query the surrogate on unseen parameters and compare with the solver.
	p := melissa.HeatParams{TIC: 320, TX1: 180, TY1: 420, TX2: 260, TY2: 360}
	t := float64(cfg.StepsPerSim) * cfg.Dt / 2 // mid-trajectory
	pred := res.Surrogate.Predict(p, t)

	truth, err := melissa.Solve(p, cfg.GridN, cfg.StepsPerSim, cfg.Dt)
	if err != nil {
		log.Fatal(err)
	}
	ref := truth[cfg.StepsPerSim/2-1]

	var maxErr, rmse float64
	for i := range ref {
		d := math.Abs(pred[i] - ref[i])
		if d > maxErr {
			maxErr = d
		}
		rmse += d * d
	}
	rmse = math.Sqrt(rmse / float64(len(ref)))
	fmt.Printf("surrogate vs solver at t=%.2fs: RMSE %.2f K, max error %.2f K (field spans 180-420 K)\n",
		t, rmse, maxErr)

	// The surrogate predicts the center temperature trend over time.
	fmt.Println("center temperature over time (surrogate):")
	c := (cfg.GridN/2)*cfg.GridN + cfg.GridN/2
	for step := 1; step <= cfg.StepsPerSim; step += 5 {
		tt := float64(step) * cfg.Dt
		fmt.Printf("  t=%.2fs: %.1f K\n", tt, res.Surrogate.Predict(p, tt)[c])
	}
}
