// Quickstart: train a deep surrogate from a small online ensemble through
// the problem-plugin API, compare one prediction against the real solver,
// and round-trip the model through a self-describing checkpoint.
//
// The pipeline is problem-agnostic: Config.Problem selects the scenario
// (here the paper's 2D heat equation; see examples/gray-scott for the
// reaction–diffusion scenario behind the exact same API).
//
//	go run ./examples/quickstart
//
// Everything here runs the training ranks inside one process. To spread
// the ranks across OS processes (or machines), start one melissa-server
// per rank with -rank and a shared -ranks-transport endpoint list; the
// gradient all-reduce then travels over a TCP ring between the processes,
// overlapped with backpropagation exactly like the in-process path:
//
//	melissa-server -ranks 2 -rank 0 -ranks-transport host0:7700,host1:7701 ...
//	melissa-server -ranks 2 -rank 1 -ranks-transport host0:7700,host1:7701 ...
//
// (concatenate the per-rank -addr-file outputs in rank order for the
// clients; see cmd/melissa-server for the full walkthrough).
//
// To serve the trained surrogate to remote clients, publish a checkpoint
// and point melissa-serve at it — it hot-reloads every publish while
// answering predict requests with micro-batching and a prediction cache
// (see docs/serving.md):
//
//	melissa-server ... -surrogate-out model.mlsg -publish-every 500 &
//	melissa-serve -checkpoint model.mlsg -addr :9200 -watch 2s
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math"

	"melissa"
)

func main() {
	cfg := melissa.DefaultConfig()
	cfg.Problem = melissa.Heat() // the default; spelled out for the tour
	cfg.Simulations = 30
	cfg.GridN = 16
	cfg.StepsPerSim = 20
	cfg.MaxConcurrentClients = 4
	cfg.Buffer = melissa.Reservoir

	fmt.Printf("training %q surrogate from %d online simulations (%d×%d grid, %d steps each)...\n",
		cfg.Problem.Name(), cfg.Simulations, cfg.GridN, cfg.GridN, cfg.StepsPerSim)
	res, err := melissa.RunOnline(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: %d batches, %d samples (%d unique), %.1f samples/s, validation MSE %.5f\n",
		res.Batches, res.Samples, res.UniqueSamples, res.Throughput, res.ValidationMSE)

	// Query the surrogate on unseen parameters and compare with the solver.
	// Parameters are plain vectors in the problem's canonical order;
	// HeatParams is the typed convenience for this problem.
	p := melissa.HeatParams{TIC: 320, TX1: 180, TY1: 420, TX2: 260, TY2: 360}
	t := float64(cfg.StepsPerSim) * cfg.Dt / 2 // mid-trajectory
	pred := res.Surrogate.Predict(p.Vector(), t)

	truth, err := melissa.Simulate(cfg.Problem, cfg, p.Vector())
	if err != nil {
		log.Fatal(err)
	}
	ref := truth[cfg.StepsPerSim/2-1]

	var maxErr, rmse float64
	for i := range ref {
		d := math.Abs(pred[i] - ref[i])
		if d > maxErr {
			maxErr = d
		}
		rmse += d * d
	}
	rmse = math.Sqrt(rmse / float64(len(ref)))
	fmt.Printf("surrogate vs solver at t=%.2fs: RMSE %.2f K, max error %.2f K (field spans 180-420 K)\n",
		t, rmse, maxErr)

	// Checkpoints are self-describing: Save embeds the problem name and
	// architecture, so loading needs no arguments at all.
	var ckpt bytes.Buffer
	if err := res.Surrogate.Save(&ckpt); err != nil {
		log.Fatal(err)
	}
	loaded, err := melissa.LoadSurrogate(&ckpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint round-trip: problem %q, %d parameters, grid %d\n",
		loaded.Meta().Problem, loaded.NumParams(), loaded.GridN())

	// The surrogate predicts the center temperature trend over time.
	fmt.Println("center temperature over time (surrogate):")
	c := (cfg.GridN/2)*cfg.GridN + cfg.GridN/2
	for step := 1; step <= cfg.StepsPerSim; step += 5 {
		tt := float64(step) * cfg.Dt
		fmt.Printf("  t=%.2fs: %.1f K\n", tt, loaded.PredictHeat(p, tt)[c])
	}
}
