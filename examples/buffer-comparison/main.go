// Buffer comparison: the paper's central claim at laptop scale. The same
// ensemble is trained through the FIFO, FIRO and Reservoir buffers; the
// Reservoir keeps the learner busy by repeating samples when production
// lags and produces the best validation loss (paper §4.3-4.4, Figure 4).
//
//	go run ./examples/buffer-comparison
package main

import (
	"context"
	"fmt"
	"log"

	"melissa"
)

func main() {
	base := melissa.DefaultConfig()
	base.Simulations = 24
	base.GridN = 16
	base.StepsPerSim = 25
	base.MaxConcurrentClients = 3 // scarce resources: production lags the learner
	base.Capacity = 150
	base.Threshold = 25
	base.ValidationSims = 3
	base.ValidateEvery = 25

	fmt.Printf("%-10s  %8s  %10s  %14s  %12s\n", "buffer", "batches", "samples", "throughput", "val MSE")
	for _, policy := range []melissa.BufferPolicy{melissa.FIFO, melissa.FIRO, melissa.Reservoir} {
		cfg := base
		cfg.Buffer = policy
		res, err := melissa.RunOnline(context.Background(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %8d  %10d  %10.1f/s  %12.6f\n",
			policy, res.Batches, res.Samples, res.Throughput, res.ValidationMSE)
	}
	fmt.Println()
	fmt.Println("FIFO and FIRO see each sample exactly once, so their batch count is")
	fmt.Println("bounded by data production; the Reservoir re-serves already-seen")
	fmt.Println("samples whenever the buffer has no fresh data, which multiplies the")
	fmt.Println("optimization steps and typically lowers the validation loss.")
}
