// Command melissa-elastic runs one process of an elastic fault-tolerant
// training group: a coordinator that owns group membership, and N member
// processes that train a shared surrogate over a TCP ring, checkpoint as a
// group, and survive each other dying.
//
// Each member deterministically generates its own slice of the heat-
// equation ensemble (keyed by -seed and -id), so every process can be
// restarted at any time and re-derive identical data. Kill a member
// mid-run (Ctrl-C, kill -9) and the survivors detect the death, re-form
// the ring at a new epoch, roll back to the last committed group
// checkpoint, and keep training; start the member again and it is folded
// back into the group at the next epoch, restoring a peer's replica
// weights and its own buffer snapshot. Example 3-member session:
//
//	melissa-elastic -role coordinator -coord 127.0.0.1:7850 -world 3 -dir /tmp/eg &
//	for i in 0 1 2; do melissa-elastic -id $i -coord 127.0.0.1:7850 -dir /tmp/eg & done
//	kill %2        # kill member 1 mid-run: the group re-forms without it
//	melissa-elastic -id 1 -coord 127.0.0.1:7850 -dir /tmp/eg &   # rejoins
//	wait
//
// The -chaos-drop flag injects deterministic ring-write faults through the
// transport chaos layer (seeded via -seed or the MELISSA_CHAOS_SEED
// environment variable), exercising the same detection/re-formation path
// as a real network fault.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"
	"time"

	"melissa"
	"melissa/internal/buffer"
	"melissa/internal/core"
	"melissa/internal/elastic"
	"melissa/internal/transport"
)

func main() {
	var (
		role       = flag.String("role", "member", "coordinator|member")
		coordAddr  = flag.String("coord", "127.0.0.1:7850", "coordinator control-plane address (listen for -role coordinator, dial for members)")
		dir        = flag.String("dir", "elastic-group", "shared group checkpoint directory (shards + manifest)")
		world      = flag.Int("world", 3, "initial group size (coordinator: members to wait for before epoch 1)")
		id         = flag.Int("id", 0, "member ID (stable across restarts)")
		gridN      = flag.Int("grid", 8, "heat solver grid side")
		steps      = flag.Int("steps", 20, "time steps per simulation")
		dt         = flag.Float64("dt", 0.01, "seconds per time step")
		sims       = flag.Int("sims", 4, "simulations generated per member")
		batch      = flag.Int("batch", 8, "batch size per member rank")
		maxBatches = flag.Int("max-batches", 0, "training schedule length (0 = consume the full local dataset)")
		ckptEvery  = flag.Int("ckpt-every", 5, "group checkpoint cadence in batches")
		hidden     = flag.String("hidden", "32", "comma-separated hidden layer widths")
		seed       = flag.Uint64("seed", 2023, "seed for data generation, model init, and chaos")
		out        = flag.String("out", "", "write final weights to this file on a clean finish")
		ioTimeout  = flag.Duration("io-timeout", 5*time.Second, "ring silence tolerated before a peer is declared dead")
		chaosDrop  = flag.Float64("chaos-drop", 0, "probability a ring write is dropped (deterministic chaos injection)")
	)
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	if *maxBatches <= 0 {
		*maxBatches = *sims * *steps / *batch
	}
	if *maxBatches**batch > *sims**steps {
		fatal(fmt.Errorf("schedule needs %d samples but each member only generates %d; raise -sims or -steps", *maxBatches**batch, *sims**steps))
	}

	switch *role {
	case "coordinator":
		runCoordinator(*coordAddr, *world, *dir)
	case "member":
		runMember(memberConfig{
			id: *id, coord: *coordAddr, dir: *dir,
			gridN: *gridN, steps: *steps, dt: *dt, sims: *sims,
			batch: *batch, maxBatches: *maxBatches, ckptEvery: *ckptEvery,
			hidden: *hidden, seed: *seed, out: *out,
			ioTimeout: *ioTimeout, chaosDrop: *chaosDrop,
		})
	default:
		fatal(fmt.Errorf("unknown -role %q (want coordinator or member)", *role))
	}
}

func runCoordinator(addr string, world int, dir string) {
	coord, err := elastic.NewCoordinator(elastic.CoordinatorConfig{
		Addr:  addr,
		World: world,
		Dir:   dir,
	})
	if err != nil {
		fatal(err)
	}
	if coord.ManifestBatch() >= 0 {
		fmt.Printf("melissa-elastic: coordinator on %s, resuming group from checkpoint batch %d\n",
			coord.Addr(), coord.ManifestBatch())
	} else {
		fmt.Printf("melissa-elastic: coordinator on %s, waiting for %d member(s)\n", coord.Addr(), world)
	}
	if err := coord.Wait(context.Background()); err != nil {
		fatal(err)
	}
	fmt.Printf("melissa-elastic: group complete at epoch %d (last checkpoint batch %d)\n",
		coord.Epoch(), coord.ManifestBatch())
}

type memberConfig struct {
	id                      int
	coord, dir              string
	gridN, steps            int
	dt                      float64
	sims, batch, maxBatches int
	ckptEvery               int
	hidden                  string
	seed                    uint64
	out                     string
	ioTimeout               time.Duration
	chaosDrop               float64
}

func runMember(mc memberConfig) {
	var hiddenDims []int
	for _, part := range strings.Split(mc.hidden, ",") {
		var h int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &h); err != nil || h < 1 {
			fatal(fmt.Errorf("invalid -hidden %q", mc.hidden))
		}
		hiddenDims = append(hiddenDims, h)
	}
	norm := core.NewHeatNormalizer(mc.gridN*mc.gridN, float64(mc.steps)*mc.dt)
	spec := core.ModelSpec{InputDim: norm.InputDim(), Hidden: hiddenDims, OutputDim: norm.OutputDim(), Seed: mc.seed}

	samples, err := memberSamples(mc, norm)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("melissa-elastic: member %d generated %d samples (%d sims × %d steps), schedule %d batches\n",
		mc.id, len(samples), mc.sims, mc.steps, mc.maxBatches)

	var chaos *transport.Chaos
	if mc.chaosDrop > 0 {
		chaos = transport.NewChaos(transport.ChaosConfig{
			Seed:     transport.ChaosSeed(mc.seed),
			DropRate: mc.chaosDrop,
		})
	}

	var finalNet *core.Trainer
	member, err := elastic.NewMember(elastic.MemberConfig{
		ID:          mc.id,
		Coordinator: mc.coord,
		Dir:         mc.dir,
		RingOptions: func(epoch int) transport.RingOptions {
			o := transport.RingOptions{IOTimeout: mc.ioTimeout}
			if chaos != nil {
				o.Wrap = chaos.Wrap
			}
			return o
		},
		Run: func(ctx context.Context, sess *elastic.Session) error {
			fmt.Printf("melissa-elastic: member %d joined epoch %d as rank %d/%d (restore batch %d)\n",
				mc.id, sess.Epoch(), sess.Rank(), sess.World(), sess.RestoreBatch())
			tr, err := trainEpoch(mc, norm, spec, samples, sess)
			if err != nil {
				fmt.Printf("melissa-elastic: member %d epoch %d interrupted: %v\n", mc.id, sess.Epoch(), err)
				return err
			}
			finalNet = tr
			return nil
		},
	})
	if err != nil {
		fatal(err)
	}
	if err := member.Run(context.Background()); err != nil {
		fatal(err)
	}
	fmt.Printf("melissa-elastic: member %d finished the schedule\n", mc.id)
	if mc.out != "" && finalNet != nil {
		f, err := os.Create(mc.out)
		if err != nil {
			fatal(err)
		}
		if err := finalNet.Network().SaveWeights(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("melissa-elastic: weights written to", mc.out)
	}
}

// trainEpoch is one elastic session: restore from the group checkpoint if
// the epoch has one, rebuild the member's buffer, and train to the end of
// the schedule, writing a shard at every checkpoint boundary.
func trainEpoch(mc memberConfig, norm core.FieldNormalizer, spec core.ModelSpec, samples []buffer.Sample, sess *elastic.Session) (*core.Trainer, error) {
	var restored *elastic.State
	var seen, unseen []buffer.Sample
	if sess.RestoreBatch() >= 0 {
		st, err := sess.LoadState()
		if err != nil {
			return nil, err
		}
		restored, seen, unseen = st, st.BufSeen, st.BufUnseen
	}
	bb := buffer.NewBlocking(buffer.NewFIFO(0))
	for _, s := range samples {
		if !bb.TryPut(s) {
			return nil, fmt.Errorf("buffer rejected prefill sample")
		}
	}
	bb.EndReception()
	if seen != nil || unseen != nil {
		bb.WithLock(func(p buffer.Policy) {
			p.(buffer.Snapshotter).RestoreSnapshot(seen, unseen)
		})
	}

	var tr *core.Trainer
	cfg := core.TrainerConfig{
		Ranks:      1,
		RankOffset: sess.Rank(),
		Comm:       sess.Comm(),
		BatchSize:  mc.batch,
		Model:      spec,
		Normalizer: norm,
		MaxBatches: mc.maxBatches,
	}
	cfg.OnLocalBatchEnd = func(_, batches int) {
		if batches%mc.ckptEvery != 0 {
			return
		}
		w, o, err := tr.CaptureState()
		if err != nil {
			return
		}
		var bs, bu []buffer.Sample
		bb.WithLock(func(p buffer.Policy) {
			bs, bu = p.(buffer.Snapshotter).Snapshot()
		})
		// A failed save means the control plane is tearing down; the
		// group checkpoint protocol tolerates the missing shard.
		sess.SaveShard(&elastic.State{
			Batch:     batches,
			Samples:   tr.LocalSamples(0),
			Weights:   w,
			OptState:  o,
			BufSeen:   bs,
			BufUnseen: bu,
		})
	}
	tr, err := core.NewTrainer(cfg, []*buffer.Blocking{bb})
	if err != nil {
		return nil, err
	}
	if restored != nil {
		if err := tr.RestoreState(restored.Weights, restored.OptState, restored.Batch, restored.Samples); err != nil {
			return nil, err
		}
	}
	if err := tr.Run(context.Background()); err != nil {
		return nil, err
	}
	return tr, nil
}

// memberSamples generates the member's local slice of the ensemble: -sims
// heat simulations whose boundary parameters derive from (-seed, -id), so
// a restarted member reproduces its data bit-exactly.
func memberSamples(mc memberConfig, norm core.FieldNormalizer) ([]buffer.Sample, error) {
	rng := rand.New(rand.NewPCG(mc.seed, uint64(mc.id)+1))
	dim := norm.Space.Dim()
	var samples []buffer.Sample
	for s := 0; s < mc.sims; s++ {
		params := make([]float64, dim)
		for j := range params {
			lo, hi := norm.Space.Min[j], norm.Space.Max[j]
			params[j] = lo + rng.Float64()*(hi-lo)
		}
		traj, err := melissa.Solve(melissa.HeatParams{
			TIC: params[0], TX1: params[1], TY1: params[2], TX2: params[3], TY2: params[4],
		}, mc.gridN, mc.steps, mc.dt)
		if err != nil {
			return nil, err
		}
		simID := mc.id*mc.sims + s
		for step, field := range traj {
			in := make([]float32, dim+1)
			for j, p := range params {
				in[j] = float32(p)
			}
			in[dim] = float32(float64(step) * mc.dt)
			out := make([]float32, len(field))
			for j, v := range field {
				out[j] = float32(v)
			}
			samples = append(samples, buffer.Sample{SimID: simID, Step: step, Input: in, Output: out})
		}
	}
	return samples, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "melissa-elastic:", err)
	os.Exit(1)
}
