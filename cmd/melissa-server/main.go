// Command melissa-server runs a standalone Melissa training server: it
// listens for ensemble clients (started separately, e.g. with
// melissa-client), trains the surrogate online, and writes the weights when
// the ensemble completes.
//
// The rank addresses are published to -addr-file, one per line; clients
// read that file to connect. Example session:
//
//	melissa-server -ranks 2 -clients 4 -grid 16 -steps 20 -out weights.bin &
//	for i in 0 1 2 3; do melissa-client -id $i -grid 16 -steps 20 & done
//	wait
//
// By default all -ranks training replicas run inside one process. With
// -proc and -ranks-transport, the ranks spread across several OS processes
// — each hosting -ranks/len(processes) of them (override with -local-ranks)
// — and the gradient all-reduce travels a hierarchical communicator:
// channel rings between the ranks inside a process, bridged over a TCP
// ring between processes, bit-identical to the flat ring of the same size.
//
//	melissa-server -ranks 4 -proc 0 -ranks-transport 127.0.0.1:7700,127.0.0.1:7701 \
//	    -clients 4 -addr-file addrs-p0.txt -out weights.bin &
//	melissa-server -ranks 4 -proc 1 -ranks-transport 127.0.0.1:7700,127.0.0.1:7701 \
//	    -clients 4 -addr-file addrs-p1.txt &
//	cat addrs-p0.txt addrs-p1.txt > addrs.txt   # clients dial all ranks
//	for i in 0 1 2 3; do melissa-client -id $i -addr-file addrs.txt & done
//	wait
//
// With -coord the server instead joins an elastic training group: a
// coordinator process (-role coordinator) owns membership, each member
// process re-forms the rank group at a new epoch when a peer dies, and the
// group checkpoint shards carry both the replica weights and the server's
// ingest state (dedup bitsets + buffer contents), so survivors roll back
// and replayed client frames are discarded idempotently. Clients started
// with reconnection enabled ride through the re-formation. 3-member group:
//
//	melissa-server -role coordinator -coord 127.0.0.1:7850 -members 3 -group-dir /tmp/eg &
//	for i in 0 1 2; do
//	  melissa-server -coord 127.0.0.1:7850 -member-id $i -members 3 \
//	      -group-dir /tmp/eg -clients 6 -addr-file addrs-m$i.txt &
//	done
//	cat addrs-m*.txt > addrs.txt
//
// Every process builds the same seeded model, so no startup weight
// broadcast is needed; process 0 owns metrics, checkpoints and -out.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"melissa"
	"melissa/internal/buffer"
	"melissa/internal/core"
	"melissa/internal/ddp"
	"melissa/internal/elastic"
	"melissa/internal/opt"
	"melissa/internal/server"
	"melissa/internal/transport"
)

func main() {
	var (
		role       = flag.String("role", "server", "server|coordinator (coordinator runs the elastic group's control plane)")
		ranks      = flag.Int("ranks", 1, "training ranks (data-parallel replicas) across all server processes")
		proc       = flag.Int("proc", -1, "index of this process in -ranks-transport (-1 runs all ranks in-process)")
		transports = flag.String("ranks-transport", "", "comma-separated collective endpoints host:port, one per process (multi-process mode, requires -proc)")
		localR     = flag.Int("local-ranks", 0, "ranks hosted by this process in multi-process mode (default -ranks divided evenly)")
		clients    = flag.Int("clients", 1, "expected ensemble size (Goodbyes to wait for)")
		problem    = flag.String("problem", "heat", "registered problem ("+strings.Join(melissa.Problems(), "|")+"; must match clients)")
		gridN      = flag.Int("grid", 16, "solver grid side (must match clients)")
		steps      = flag.Int("steps", 20, "time steps per simulation (must match clients)")
		dt         = flag.Float64("dt", 0, "seconds per time step (0 = problem default)")
		hidden     = flag.String("hidden", "64,64", "comma-separated hidden layer widths")
		batch      = flag.Int("batch", 10, "batch size per rank")
		policy     = flag.String("buffer", "Reservoir", "FIFO|FIRO|Reservoir")
		capacity   = flag.Int("capacity", 200, "buffer capacity per rank")
		threshold  = flag.Int("threshold", 30, "buffer extraction threshold")
		maxBatches = flag.Int("max-batches", 0, "stop training after this many batches (0 = train until the ensemble completes)")
		seed       = flag.Uint64("seed", 2023, "seed for all stochastic components")
		addrFile   = flag.String("addr-file", "melissa-addrs.txt", "file to publish rank addresses to")
		out        = flag.String("out", "", "write trained weights to this file")
		surOut     = flag.String("surrogate-out", "", "publish a self-describing surrogate checkpoint (.mlsg) to this path, atomically — melissa-serve hot-reloads it")
		pubEvery   = flag.Int("publish-every", 0, "also publish -surrogate-out every N batches during training (0 = only at the end)")
		ckpt       = flag.String("checkpoint", "", "server checkpoint path (single-process fault tolerance)")
		ckptEvery  = flag.Int("ckpt-every", 0, "checkpoint cadence in batches, for -checkpoint and the elastic group shards (0 = default)")
		watchdog   = flag.Duration("watchdog", 30*time.Second, "client liveness timeout (0 disables)")
		gradComp   = flag.String("grad-compress", "none", "gradient all-reduce wire codec: none|f16|f16-noef (f16 halves inter-node collective bytes with error feedback; all processes must agree)")
		logEvery   = flag.Duration("log-every", 0, "print training progress (batches, samples, group epoch, re-forms) at this interval (0 disables)")

		coordAddr = flag.String("coord", "", "elastic coordinator control-plane address (joins an elastic group; listen address for -role coordinator)")
		memberID  = flag.Int("member-id", 0, "elastic member ID, stable across restarts")
		members   = flag.Int("members", 3, "elastic group size in member processes (coordinator: members to wait for)")
		groupDir  = flag.String("group-dir", "", "elastic group checkpoint directory (shards + manifest)")
		ioTimeout = flag.Duration("io-timeout", 5*time.Second, "ring silence tolerated before a peer is declared dead (elastic mode)")
		chaosDrop = flag.Float64("chaos-drop", 0, "probability a ring write is dropped (deterministic chaos injection, seeded by -seed or MELISSA_CHAOS_SEED)")
	)
	flag.Parse()

	if *role == "coordinator" {
		if *coordAddr == "" || *groupDir == "" {
			fatal(fmt.Errorf("-role coordinator requires -coord and -group-dir"))
		}
		runCoordinator(*coordAddr, *members, *groupDir)
		return
	}
	if *role != "server" {
		fatal(fmt.Errorf("unknown -role %q (want server or coordinator)", *role))
	}

	var hiddenDims []int
	for _, part := range strings.Split(*hidden, ",") {
		var h int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &h); err != nil || h < 1 {
			fatal(fmt.Errorf("invalid -hidden %q", *hidden))
		}
		hiddenDims = append(hiddenDims, h)
	}

	prob, err := melissa.ProblemByName(*problem)
	if err != nil {
		fatal(err)
	}
	if *dt <= 0 {
		*dt = melissa.DefaultDtFor(prob)
	}

	gradCodec, err := transport.ParseCodec(*gradComp)
	if err != nil {
		fatal(err)
	}

	var ringOpts transport.RingOptions
	ringOpts.IOTimeout = *ioTimeout
	ringOpts.Codec = gradCodec
	if *chaosDrop > 0 {
		chaos := transport.NewChaos(transport.ChaosConfig{
			Seed:     transport.ChaosSeed(*seed),
			DropRate: *chaosDrop,
		})
		ringOpts.Wrap = chaos.Wrap
	}

	// Three topologies, all the same runtime underneath: every process
	// hosts localRanks replicas on an in-process channel ring, and the
	// multi-process shapes bridge those rings over TCP (statically wired,
	// or re-formed per epoch by the elastic membership). All flag
	// validation happens before any handshake, so a misconfigured process
	// fails fast instead of forming a group its peers then watch collapse.
	localRanks := *ranks
	isProc0 := true
	var group ddp.RankGroup
	var ecfg *server.ElasticConfig
	switch {
	case *coordAddr != "":
		if *proc >= 0 || *transports != "" {
			fatal(fmt.Errorf("-coord (elastic mode) and -proc/-ranks-transport (static ring) are mutually exclusive"))
		}
		if *ckpt != "" {
			fatal(fmt.Errorf("-checkpoint is superseded by the group checkpoint in elastic mode (-group-dir)"))
		}
		if *groupDir == "" {
			fatal(fmt.Errorf("elastic mode requires -group-dir"))
		}
		if *maxBatches <= 0 {
			fatal(fmt.Errorf("elastic mode requires -max-batches: the schedule length is the group's shared notion of done"))
		}
		if err := os.MkdirAll(*groupDir, 0o755); err != nil {
			fatal(err)
		}
		if *localR > 0 {
			localRanks = *localR
		}
		ecfg = &server.ElasticConfig{
			MemberID:       *memberID,
			Coordinator:    *coordAddr,
			Dir:            *groupDir,
			InitialMembers: *members,
			RingOptions:    func(int) transport.RingOptions { return ringOpts },
		}
		isProc0 = *memberID == 0
	case *proc >= 0:
		if *ckpt != "" {
			// A checkpoint snapshots only this process's buffers and logs;
			// restoring a partial view would desynchronize the rank group.
			fatal(fmt.Errorf("-checkpoint is only supported in single-process mode (no -proc)"))
		}
		addrs := strings.Split(*transports, ",")
		if *transports == "" {
			fatal(fmt.Errorf("-proc requires -ranks-transport"))
		}
		if *proc >= len(addrs) {
			fatal(fmt.Errorf("-proc %d out of range for %d transport endpoints", *proc, len(addrs)))
		}
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		localRanks = *localR
		if localRanks <= 0 {
			if *ranks%len(addrs) != 0 {
				fatal(fmt.Errorf("-ranks %d does not divide across %d processes; set -local-ranks", *ranks, len(addrs)))
			}
			localRanks = *ranks / len(addrs)
		}
		if localRanks*len(addrs) != *ranks {
			fatal(fmt.Errorf("%d processes × %d local ranks != -ranks %d", len(addrs), localRanks, *ranks))
		}
		g, err := ddp.ConnectGroupContext(context.Background(), *proc, addrs, localRanks, 30*time.Second, ringOpts)
		if err != nil {
			fatal(fmt.Errorf("connecting rank group: %w", err))
		}
		if closer, ok := g.Comm.(interface{ Close() error }); ok {
			defer closer.Close()
		}
		group, isProc0 = g, *proc == 0
	default:
		if *transports != "" {
			fatal(fmt.Errorf("-ranks-transport requires -proc"))
		}
		if *localR > 0 && *localR != *ranks {
			fatal(fmt.Errorf("-local-ranks is only meaningful with -proc or -coord"))
		}
		if gradCodec.Compressed() {
			// The in-process channel ring never touches a network link;
			// compressing it would cost precision and save nothing.
			fatal(fmt.Errorf("-grad-compress=%s is only meaningful with -proc or -coord (single-process collectives are in-memory)", gradCodec))
		}
	}

	mcfg := melissa.Config{GridN: *gridN, StepsPerSim: *steps, Dt: *dt}
	norm := core.AdaptNormalizer(prob.Normalizer(mcfg))
	cfg := server.Config{
		Ranks:      localRanks,
		Group:      group,
		Elastic:    ecfg,
		ListenHost: "127.0.0.1:0",
		Buffer: buffer.Config{
			Kind:      buffer.Kind(*policy),
			Capacity:  *capacity,
			Threshold: *threshold,
			Seed:      *seed,
		},
		Trainer: core.TrainerConfig{
			BatchSize: *batch,
			Model: core.ModelSpec{
				InputDim:  norm.InputDim(),
				Hidden:    hiddenDims,
				OutputDim: norm.OutputDim(),
				Seed:      *seed,
			},
			Normalizer:   norm,
			LearningRate: 1e-3,
			Schedule:     opt.PaperSchedule(),
			MaxBatches:   *maxBatches,
			GradCompress: gradCodec,
		},
		ExpectedClients: *clients,
		WatchdogTimeout: *watchdog,
		OnUnresponsive: func(id int32) {
			fmt.Fprintf(os.Stderr, "melissa-server: client %d unresponsive\n", id)
		},
		CheckpointPath:         *ckpt,
		CheckpointEveryBatches: *ckptEvery,
	}
	// Periodic surrogate publishing: at a synchronized step boundary on
	// global rank 0, snapshot the weights into a servable checkpoint and
	// atomically replace -surrogate-out, so a watching melissa-serve
	// hot-reloads each publish. Failures are reported, never fatal — the
	// previous publish stays valid.
	var srv *server.Server
	scfg := melissa.Config{Problem: prob, GridN: *gridN, StepsPerSim: *steps, Dt: *dt, Hidden: hiddenDims, Seed: *seed}
	publish := func() error {
		tr := srv.Trainer()
		if tr == nil {
			return fmt.Errorf("no trainer yet (elastic epoch not formed)")
		}
		sur, err := melissa.SurrogateFromNetwork(tr.Network(), scfg)
		if err != nil {
			return err
		}
		return melissa.PublishSurrogate(sur, *surOut)
	}
	if *surOut != "" && *pubEvery > 0 {
		prev := cfg.Trainer.OnBatchEnd
		cfg.Trainer.OnBatchEnd = func(batches int) {
			if batches%*pubEvery == 0 {
				if err := publish(); err != nil {
					fmt.Fprintf(os.Stderr, "melissa-server: surrogate publish failed: %v\n", err)
				}
			}
			if prev != nil {
				prev(batches)
			}
		}
	}
	srv, err = server.New(cfg)
	if err != nil {
		fatal(err)
	}
	if *ckpt != "" {
		if _, statErr := os.Stat(*ckpt); statErr == nil {
			if err := srv.RestoreCheckpoint(*ckpt); err != nil {
				fatal(fmt.Errorf("restoring checkpoint: %w", err))
			}
			fmt.Println("melissa-server: resumed from checkpoint")
		}
	}

	if err := os.WriteFile(*addrFile, []byte(strings.Join(srv.Addrs(), "\n")+"\n"), 0o644); err != nil {
		fatal(err)
	}
	if isProc0 {
		fmt.Printf("melissa-server: problem %s, %d rank(s) listening (%s), waiting for %d client(s)\n",
			prob.Name(), localRanks, strings.Join(srv.Addrs(), " "), *clients)
	}
	if *logEvery > 0 {
		go func() {
			for range time.Tick(*logEvery) {
				m := srv.Metrics()
				line := fmt.Sprintf("melissa-server: %d batches, %d samples, %.1f samples/s",
					m.Batches(), m.Samples(), m.Throughput())
				if sent, recv := m.WireBytes(); sent+recv > 0 {
					line += fmt.Sprintf(", grad wire %.1f/%.1f MB tx/rx (%s)",
						float64(sent)/1e6, float64(recv)/1e6, gradCodec)
				}
				if ecfg != nil {
					line += fmt.Sprintf(", group epoch %d, %d re-form(s)", m.GroupEpoch(), m.Reforms())
					if b := m.LastRollbackBatch(); b >= 0 {
						line += fmt.Sprintf(" (last rollback to batch %d)", b)
					}
				}
				fmt.Println(line)
			}
		}()
	}

	if err := srv.Run(context.Background()); err != nil {
		fatal(err)
	}
	if !isProc0 {
		// Metrics, the summary line and the weights belong to process 0;
		// the replicas are identical after the final synchronized step.
		return
	}
	m := srv.Metrics()
	fmt.Printf("melissa-server: trained %d batches on %d samples (%d unique), throughput %.1f samples/s\n",
		m.Batches(), m.Samples(), len(m.Occurrences()), m.Throughput())
	if ecfg != nil && m.Reforms() > 0 {
		fmt.Printf("melissa-server: survived %d group re-formation(s), finished at epoch %d\n",
			m.Reforms(), m.GroupEpoch())
	}
	if *out != "" {
		tr := srv.Trainer()
		if tr == nil {
			fatal(fmt.Errorf("no trained network to write"))
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := tr.Network().SaveWeights(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("melissa-server: weights written to", *out)
	}
	if *surOut != "" {
		if err := publish(); err != nil {
			fatal(fmt.Errorf("publishing surrogate: %w", err))
		}
		fmt.Println("melissa-server: surrogate checkpoint published to", *surOut)
	}
}

// runCoordinator hosts the elastic group's control plane: it admits the
// initial membership, arbitrates epochs when members die or rejoin, and
// commits the group-checkpoint manifest.
func runCoordinator(addr string, world int, dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	coord, err := elastic.NewCoordinator(elastic.CoordinatorConfig{
		Addr:  addr,
		World: world,
		Dir:   dir,
	})
	if err != nil {
		fatal(err)
	}
	if coord.ManifestBatch() >= 0 {
		fmt.Printf("melissa-server: coordinator on %s, resuming group from checkpoint batch %d\n",
			coord.Addr(), coord.ManifestBatch())
	} else {
		fmt.Printf("melissa-server: coordinator on %s, waiting for %d member(s)\n", coord.Addr(), world)
	}
	if err := coord.Wait(context.Background()); err != nil {
		fatal(err)
	}
	fmt.Printf("melissa-server: group complete at epoch %d (last checkpoint batch %d)\n",
		coord.Epoch(), coord.ManifestBatch())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "melissa-server:", err)
	os.Exit(1)
}
