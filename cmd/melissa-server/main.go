// Command melissa-server runs a standalone Melissa training server: it
// listens for ensemble clients (started separately, e.g. with
// melissa-client), trains the surrogate online, and writes the weights when
// the ensemble completes.
//
// The rank addresses are published to -addr-file, one per line; clients
// read that file to connect. Example session:
//
//	melissa-server -ranks 2 -clients 4 -grid 16 -steps 20 -out weights.bin &
//	for i in 0 1 2 3; do melissa-client -id $i -grid 16 -steps 20 & done
//	wait
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"melissa"
	"melissa/internal/buffer"
	"melissa/internal/core"
	"melissa/internal/opt"
	"melissa/internal/server"
)

func main() {
	var (
		ranks     = flag.Int("ranks", 1, "training processes (data-parallel replicas)")
		clients   = flag.Int("clients", 1, "expected ensemble size (Goodbyes to wait for)")
		problem   = flag.String("problem", "heat", "registered problem ("+strings.Join(melissa.Problems(), "|")+"; must match clients)")
		gridN     = flag.Int("grid", 16, "solver grid side (must match clients)")
		steps     = flag.Int("steps", 20, "time steps per simulation (must match clients)")
		dt        = flag.Float64("dt", 0.01, "seconds per time step")
		hidden    = flag.String("hidden", "64,64", "comma-separated hidden layer widths")
		batch     = flag.Int("batch", 10, "batch size per rank")
		policy    = flag.String("buffer", "Reservoir", "FIFO|FIRO|Reservoir")
		capacity  = flag.Int("capacity", 200, "buffer capacity per rank")
		threshold = flag.Int("threshold", 30, "buffer extraction threshold")
		seed      = flag.Uint64("seed", 2023, "seed for all stochastic components")
		addrFile  = flag.String("addr-file", "melissa-addrs.txt", "file to publish rank addresses to")
		out       = flag.String("out", "", "write trained weights to this file")
		ckpt      = flag.String("checkpoint", "", "server checkpoint path (enables fault tolerance)")
		watchdog  = flag.Duration("watchdog", 30*time.Second, "client liveness timeout (0 disables)")
	)
	flag.Parse()

	var hiddenDims []int
	for _, part := range strings.Split(*hidden, ",") {
		var h int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &h); err != nil || h < 1 {
			fatal(fmt.Errorf("invalid -hidden %q", *hidden))
		}
		hiddenDims = append(hiddenDims, h)
	}

	prob, err := melissa.ProblemByName(*problem)
	if err != nil {
		fatal(err)
	}
	mcfg := melissa.Config{GridN: *gridN, StepsPerSim: *steps, Dt: *dt}
	norm := core.AdaptNormalizer(prob.Normalizer(mcfg))
	cfg := server.Config{
		Ranks:      *ranks,
		ListenHost: "127.0.0.1:0",
		Buffer: buffer.Config{
			Kind:      buffer.Kind(*policy),
			Capacity:  *capacity,
			Threshold: *threshold,
			Seed:      *seed,
		},
		Trainer: core.TrainerConfig{
			BatchSize: *batch,
			Model: core.ModelSpec{
				InputDim:  norm.InputDim(),
				Hidden:    hiddenDims,
				OutputDim: norm.OutputDim(),
				Seed:      *seed,
			},
			Normalizer:   norm,
			LearningRate: 1e-3,
			Schedule:     opt.PaperSchedule(),
		},
		ExpectedClients: *clients,
		WatchdogTimeout: *watchdog,
		OnUnresponsive: func(id int32) {
			fmt.Fprintf(os.Stderr, "melissa-server: client %d unresponsive\n", id)
		},
		CheckpointPath: *ckpt,
	}
	srv, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	if *ckpt != "" {
		if _, statErr := os.Stat(*ckpt); statErr == nil {
			if err := srv.RestoreCheckpoint(*ckpt); err != nil {
				fatal(fmt.Errorf("restoring checkpoint: %w", err))
			}
			fmt.Println("melissa-server: resumed from checkpoint")
		}
	}

	if err := os.WriteFile(*addrFile, []byte(strings.Join(srv.Addrs(), "\n")+"\n"), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("melissa-server: problem %s, %d rank(s) listening (%s), waiting for %d client(s)\n",
		prob.Name(), *ranks, strings.Join(srv.Addrs(), " "), *clients)

	if err := srv.Run(context.Background()); err != nil {
		fatal(err)
	}
	m := srv.Metrics()
	fmt.Printf("melissa-server: trained %d batches on %d samples (%d unique), throughput %.1f samples/s\n",
		m.Batches(), m.Samples(), len(m.Occurrences()), m.Throughput())
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := srv.Trainer().Network().SaveWeights(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("melissa-server: weights written to", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "melissa-server:", err)
	os.Exit(1)
}
