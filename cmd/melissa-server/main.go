// Command melissa-server runs a standalone Melissa training server: it
// listens for ensemble clients (started separately, e.g. with
// melissa-client), trains the surrogate online, and writes the weights when
// the ensemble completes.
//
// The rank addresses are published to -addr-file, one per line; clients
// read that file to connect. Example session:
//
//	melissa-server -ranks 2 -clients 4 -grid 16 -steps 20 -out weights.bin &
//	for i in 0 1 2 3; do melissa-client -id $i -grid 16 -steps 20 & done
//	wait
//
// By default all -ranks training replicas run inside one process. With
// -rank and -ranks-transport, each rank runs as its own OS process and the
// gradient all-reduce travels over a TCP ring between them — one server
// process per rank, all started with the same -ranks-transport list:
//
//	melissa-server -ranks 2 -rank 0 -ranks-transport 127.0.0.1:7700,127.0.0.1:7701 \
//	    -clients 4 -addr-file addrs-rank0.txt -out weights.bin &
//	melissa-server -ranks 2 -rank 1 -ranks-transport 127.0.0.1:7700,127.0.0.1:7701 \
//	    -clients 4 -addr-file addrs-rank1.txt &
//	cat addrs-rank0.txt addrs-rank1.txt > addrs.txt   # clients dial all ranks
//	for i in 0 1 2 3; do melissa-client -id $i -addr-file addrs.txt & done
//	wait
//
// Every process builds the same seeded model, so no startup weight
// broadcast is needed; rank 0 owns metrics, checkpoints and -out.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"melissa"
	"melissa/internal/buffer"
	"melissa/internal/core"
	"melissa/internal/ddp"
	"melissa/internal/opt"
	"melissa/internal/server"
)

func main() {
	var (
		ranks     = flag.Int("ranks", 1, "training ranks (data-parallel replicas) across all server processes")
		rank      = flag.Int("rank", -1, "global rank of this process (-1 runs all ranks in-process)")
		transport = flag.String("ranks-transport", "", "comma-separated collective endpoints host:port, one per rank (multi-process mode, requires -rank)")
		clients   = flag.Int("clients", 1, "expected ensemble size (Goodbyes to wait for)")
		problem   = flag.String("problem", "heat", "registered problem ("+strings.Join(melissa.Problems(), "|")+"; must match clients)")
		gridN     = flag.Int("grid", 16, "solver grid side (must match clients)")
		steps     = flag.Int("steps", 20, "time steps per simulation (must match clients)")
		dt        = flag.Float64("dt", 0, "seconds per time step (0 = problem default)")
		hidden    = flag.String("hidden", "64,64", "comma-separated hidden layer widths")
		batch     = flag.Int("batch", 10, "batch size per rank")
		policy    = flag.String("buffer", "Reservoir", "FIFO|FIRO|Reservoir")
		capacity  = flag.Int("capacity", 200, "buffer capacity per rank")
		threshold = flag.Int("threshold", 30, "buffer extraction threshold")
		seed      = flag.Uint64("seed", 2023, "seed for all stochastic components")
		addrFile  = flag.String("addr-file", "melissa-addrs.txt", "file to publish rank addresses to")
		out       = flag.String("out", "", "write trained weights to this file")
		surOut    = flag.String("surrogate-out", "", "publish a self-describing surrogate checkpoint (.mlsg) to this path, atomically — melissa-serve hot-reloads it")
		pubEvery  = flag.Int("publish-every", 0, "also publish -surrogate-out every N batches during training (0 = only at the end)")
		ckpt      = flag.String("checkpoint", "", "server checkpoint path (enables fault tolerance)")
		watchdog  = flag.Duration("watchdog", 30*time.Second, "client liveness timeout (0 disables)")
	)
	flag.Parse()

	var hiddenDims []int
	for _, part := range strings.Split(*hidden, ",") {
		var h int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &h); err != nil || h < 1 {
			fatal(fmt.Errorf("invalid -hidden %q", *hidden))
		}
		hiddenDims = append(hiddenDims, h)
	}

	prob, err := melissa.ProblemByName(*problem)
	if err != nil {
		fatal(err)
	}
	if *dt <= 0 {
		*dt = melissa.DefaultDtFor(prob)
	}

	// Multi-process mode: this process hosts one global rank and joins the
	// others over the TCP collective ring before training starts. All flag
	// validation happens before the ring handshake, so a misconfigured
	// process fails fast instead of forming a ring its peers then watch
	// collapse.
	localRanks, rankOffset := *ranks, 0
	var comm ddp.Communicator
	if *rank >= 0 {
		if *ckpt != "" {
			// A checkpoint snapshots only this process's buffers and logs;
			// restoring a partial view would desynchronize the rank group.
			fatal(fmt.Errorf("-checkpoint is only supported in single-process mode (no -rank)"))
		}
		addrs := strings.Split(*transport, ",")
		if *transport == "" || len(addrs) != *ranks {
			fatal(fmt.Errorf("-rank %d requires -ranks-transport with exactly %d comma-separated endpoints", *rank, *ranks))
		}
		if *rank >= *ranks {
			fatal(fmt.Errorf("-rank %d out of range for %d ranks", *rank, *ranks))
		}
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		tcp, err := ddp.ConnectTCP(*rank, addrs, 30*time.Second)
		if err != nil {
			fatal(fmt.Errorf("connecting rank ring: %w", err))
		}
		defer tcp.Close()
		comm, localRanks, rankOffset = tcp, 1, *rank
	} else if *transport != "" {
		fatal(fmt.Errorf("-ranks-transport requires -rank"))
	}

	mcfg := melissa.Config{GridN: *gridN, StepsPerSim: *steps, Dt: *dt}
	norm := core.AdaptNormalizer(prob.Normalizer(mcfg))
	cfg := server.Config{
		Ranks:      localRanks,
		Comm:       comm,
		RankOffset: rankOffset,
		ListenHost: "127.0.0.1:0",
		Buffer: buffer.Config{
			Kind:      buffer.Kind(*policy),
			Capacity:  *capacity,
			Threshold: *threshold,
			Seed:      *seed,
		},
		Trainer: core.TrainerConfig{
			BatchSize: *batch,
			Model: core.ModelSpec{
				InputDim:  norm.InputDim(),
				Hidden:    hiddenDims,
				OutputDim: norm.OutputDim(),
				Seed:      *seed,
			},
			Normalizer:   norm,
			LearningRate: 1e-3,
			Schedule:     opt.PaperSchedule(),
		},
		ExpectedClients: *clients,
		WatchdogTimeout: *watchdog,
		OnUnresponsive: func(id int32) {
			fmt.Fprintf(os.Stderr, "melissa-server: client %d unresponsive\n", id)
		},
		CheckpointPath: *ckpt,
	}
	// Periodic surrogate publishing: at a synchronized step boundary on
	// global rank 0, snapshot the weights into a servable checkpoint and
	// atomically replace -surrogate-out, so a watching melissa-serve
	// hot-reloads each publish. Failures are reported, never fatal — the
	// previous publish stays valid.
	var srv *server.Server
	scfg := melissa.Config{Problem: prob, GridN: *gridN, StepsPerSim: *steps, Dt: *dt, Hidden: hiddenDims, Seed: *seed}
	publish := func() error {
		sur, err := melissa.SurrogateFromNetwork(srv.Trainer().Network(), scfg)
		if err != nil {
			return err
		}
		return melissa.PublishSurrogate(sur, *surOut)
	}
	if *surOut != "" && *pubEvery > 0 {
		prev := cfg.Trainer.OnBatchEnd
		cfg.Trainer.OnBatchEnd = func(batches int) {
			if batches%*pubEvery == 0 {
				if err := publish(); err != nil {
					fmt.Fprintf(os.Stderr, "melissa-server: surrogate publish failed: %v\n", err)
				}
			}
			if prev != nil {
				prev(batches)
			}
		}
	}
	srv, err = server.New(cfg)
	if err != nil {
		fatal(err)
	}
	if *ckpt != "" {
		if _, statErr := os.Stat(*ckpt); statErr == nil {
			if err := srv.RestoreCheckpoint(*ckpt); err != nil {
				fatal(fmt.Errorf("restoring checkpoint: %w", err))
			}
			fmt.Println("melissa-server: resumed from checkpoint")
		}
	}

	if err := os.WriteFile(*addrFile, []byte(strings.Join(srv.Addrs(), "\n")+"\n"), 0o644); err != nil {
		fatal(err)
	}
	if rankOffset == 0 {
		fmt.Printf("melissa-server: problem %s, %d rank(s) listening (%s), waiting for %d client(s)\n",
			prob.Name(), *ranks, strings.Join(srv.Addrs(), " "), *clients)
	}

	if err := srv.Run(context.Background()); err != nil {
		fatal(err)
	}
	if rankOffset != 0 {
		// Metrics, the summary line and the weights belong to rank 0; the
		// replicas are identical after the final synchronized step.
		return
	}
	m := srv.Metrics()
	fmt.Printf("melissa-server: trained %d batches on %d samples (%d unique), throughput %.1f samples/s\n",
		m.Batches(), m.Samples(), len(m.Occurrences()), m.Throughput())
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := srv.Trainer().Network().SaveWeights(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("melissa-server: weights written to", *out)
	}
	if *surOut != "" {
		if err := publish(); err != nil {
			fatal(fmt.Errorf("publishing surrogate: %w", err))
		}
		fmt.Println("melissa-server: surrogate checkpoint published to", *surOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "melissa-server:", err)
	os.Exit(1)
}
