// Command melissa-bench reproduces the paper's tables and figures. Timing
// experiments run at full paper scale on the cluster simulator; quality
// experiments run real training at the selected scale preset.
//
// Usage:
//
//	melissa-bench -experiment all -scale default [-csv out/]
//	melissa-bench -experiment fig2
//	melissa-bench -experiment fig4 -problem gray-scott
//	melissa-bench -experiment table2 -quality=false
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"melissa"
	"melissa/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig2|fig3|fig4|fig5|fig6|table1|table2|appendixA|cost|ablations|all")
		scaleName  = flag.String("scale", "default", "quality-experiment scale: tiny|default|large")
		problem    = flag.String("problem", "heat", "registered problem for quality experiments ("+strings.Join(melissa.Problems(), "|")+")")
		dt         = flag.Float64("dt", 0, "solver time step for quality experiments (0 = problem default)")
		csvDir     = flag.String("csv", "", "directory for CSV series dumps (optional)")
		quality    = flag.Bool("quality", true, "include real-training MSE columns in table1/table2")
	)
	flag.Parse()

	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	prob, err := melissa.ProblemByName(*problem)
	if err != nil {
		fatal(err)
	}
	scale.Problem = prob
	// The scale presets carry the heat equation's Dt; other problems have
	// their own stable step size, so resolve the default per problem
	// instead of silently running a near-static ensemble.
	if *dt > 0 {
		scale.Dt = *dt
	} else {
		scale.Dt = melissa.DefaultDtFor(prob)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	run := func(name string) bool { return *experiment == "all" || *experiment == name }
	ran := false

	if run("fig2") {
		ran = true
		res, err := experiments.Figure2()
		if err != nil {
			fatal(err)
		}
		res.Render(os.Stdout)
		if *csvDir != "" {
			if err := res.CSV(*csvDir); err != nil {
				fatal(err)
			}
		}
	}
	if run("fig3") {
		ran = true
		res, err := experiments.Figure3()
		if err != nil {
			fatal(err)
		}
		res.Render(os.Stdout)
	}
	if run("fig4") {
		ran = true
		res, err := experiments.Figure4(scale)
		if err != nil {
			fatal(err)
		}
		res.Render(os.Stdout)
		if *csvDir != "" {
			if err := res.CSV(*csvDir); err != nil {
				fatal(err)
			}
		}
	}
	if run("fig5") {
		ran = true
		res, err := experiments.Figure5(scale)
		if err != nil {
			fatal(err)
		}
		res.Render(os.Stdout)
		if *csvDir != "" {
			if err := res.CSV(*csvDir); err != nil {
				fatal(err)
			}
		}
	}
	if run("fig6") {
		ran = true
		res, err := experiments.Figure6(scale)
		if err != nil {
			fatal(err)
		}
		res.Render(os.Stdout)
		if *csvDir != "" {
			if err := res.CSV(*csvDir); err != nil {
				fatal(err)
			}
		}
	}
	if run("table1") {
		ran = true
		res, err := experiments.Table1(scale, *quality)
		if err != nil {
			fatal(err)
		}
		res.Render(os.Stdout)
	}
	if run("table2") {
		ran = true
		res, err := experiments.Table2(scale, *quality)
		if err != nil {
			fatal(err)
		}
		res.Render(os.Stdout)
	}
	if run("appendixA") {
		ran = true
		experiments.AppendixA(nil, 60000).Render(os.Stdout)
	}
	if run("cost") {
		ran = true
		res, err := experiments.CostAnalysis()
		if err != nil {
			fatal(err)
		}
		res.Render(os.Stdout)
		rows, err := experiments.ReservationOrder(1.5)
		if err != nil {
			fatal(err)
		}
		experiments.RenderReservation(os.Stdout, rows)
	}
	if run("ablations") {
		ran = true
		caps, err := experiments.AblationCapacity(nil)
		if err != nil {
			fatal(err)
		}
		ths, err := experiments.AblationThreshold(nil)
		if err != nil {
			fatal(err)
		}
		experiments.RenderAblations(os.Stdout, caps, ths, experiments.AblationAllReduce())
		ev, err := experiments.AblationEviction()
		if err != nil {
			fatal(err)
		}
		experiments.RenderEvictionAblation(os.Stdout, ev)
		if *quality {
			od, err := experiments.AblationOfflineData(scale, nil)
			if err != nil {
				fatal(err)
			}
			experiments.RenderOfflineDataAblation(os.Stdout, od)
		}
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *experiment))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "melissa-bench:", err)
	os.Exit(1)
}
