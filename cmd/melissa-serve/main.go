// Command melissa-serve answers surrogate predictions over the wire
// protocol: it loads a self-describing checkpoint (written by
// Surrogate.SaveFile, melissa.PublishSurrogate, or melissa-server's
// -surrogate-out) and serves PredictRequest frames with adaptive
// micro-batching, a replica pool sharing one weight slab, an LRU prediction
// cache, and hot checkpoint reload.
//
// Typical deployment next to a training run:
//
//	melissa-server ... -surrogate-out model.mlsg -publish-every 500 &
//	melissa-serve -checkpoint model.mlsg -addr :9200 -watch 2s
//
// The server hot-reloads every checkpoint the trainer publishes — queries
// keep flowing across the swap, each answered entirely by one checkpoint
// generation. Reloads can also be requested over the wire (an admin Reload
// frame, e.g. client.PredictConn.Reload).
//
// Overload behavior is bounded by construction: the admit queue is capped
// at -shed-queue (excess requests are rejected with a typed overloaded
// error and a retry-after hint, never queued unboundedly), per-request
// deadlines are honored (expired work is rejected, not computed), and a
// client that stops reading responses is disconnected after -write-timeout
// without disturbing other connections. SIGTERM triggers a graceful drain
// (finish admitted work, then exit) bounded by -drain-timeout; a second
// signal forces immediate shutdown.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"melissa/internal/serve"
)

func main() {
	var (
		checkpoint   = flag.String("checkpoint", "", "surrogate checkpoint to serve (required, self-describing .mlsg)")
		addr         = flag.String("addr", "127.0.0.1:9200", "listen address")
		replicas     = flag.Int("replicas", 2, "batch workers, each with an inference replica sharing the weight slab")
		maxBatch     = flag.Int("max-batch", 32, "requests coalesced into one fused forward pass")
		batchWait    = flag.Duration("batch-wait", 500*time.Microsecond, "micro-batch latency budget (SLO knob; batches close at -max-batch or this deadline)")
		shedQueue    = flag.Int("shed-queue", 0, "admit-queue capacity = load-shedding threshold (0 = 4*replicas*max-batch)")
		writeTimeout = flag.Duration("write-timeout", 5*time.Second, "per-frame response write deadline; a slower client is disconnected (negative disables)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM: finish admitted work within this, then force-close")
		cache        = flag.Int("cache", 4096, "prediction cache entries (0 disables)")
		cacheKeep    = flag.Int("cache-keep-epochs", 0, "serve cache entries up to N reload epochs stale instead of flushing on reload (0 flushes)")
		cacheTTL     = flag.Duration("cache-ttl", 0, "expire cache entries this long after insert (0 disables)")
		watch        = flag.Duration("watch", 0, "poll the checkpoint file and hot-reload new publishes (0 disables)")
		statsEvery   = flag.Duration("stats-every", 0, "print serving stats at this interval (0 disables)")
	)
	flag.Parse()
	if *checkpoint == "" {
		fatal(fmt.Errorf("-checkpoint is required"))
	}

	s, err := serve.LoadServer(serve.Config{
		CheckpointPath:  *checkpoint,
		Replicas:        *replicas,
		MaxBatch:        *maxBatch,
		BatchWait:       *batchWait,
		QueueSize:       *shedQueue,
		WriteTimeout:    *writeTimeout,
		CacheEntries:    *cache,
		CacheKeepEpochs: *cacheKeep,
		CacheTTL:        *cacheTTL,
		WatchInterval:   *watch,
	})
	if err != nil {
		fatal(err)
	}

	// SIGTERM/SIGINT → graceful drain. ListenAndServe returns as soon as
	// the drain closes the listener, so main waits on drained before
	// reporting the final stats.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		<-sig
		fmt.Fprintf(os.Stderr, "melissa-serve: draining (up to %v; signal again to force)\n", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		go func() {
			<-sig
			fmt.Fprintln(os.Stderr, "melissa-serve: forcing shutdown")
			cancel()
		}()
		if err := s.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "melissa-serve: drain cut short:", err)
		}
		close(drained)
	}()

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := s.Stats()
				fmt.Printf("melissa-serve: epoch %d, %d req, %d resp, %d batches (%.1f rows/batch), cache %d/%d/%d/%d hit/miss/evict/expire, %d reloads, %d errors, queue %d/%d, %d shed, %d expired, %d slow-client drops\n",
					st.Epoch, st.Requests, st.Responses, st.Batches, avg(st.BatchRows, st.Batches),
					st.Hits, st.Misses, st.Evictions, st.Expired, st.Reloads, st.Errors,
					st.Queue, st.QueueCap, st.Shed, st.DeadlineExpired, st.SlowClients)
			}
		}()
	}

	fmt.Printf("melissa-serve: serving %s on %s (%d replicas, batch<=%d within %v, cache %d)\n",
		*checkpoint, *addr, *replicas, *maxBatch, *batchWait, *cache)
	if err := s.ListenAndServe(*addr); err != nil {
		fatal(err)
	}
	// A nil return only happens when the signal handler started the drain —
	// wait for its verdict before reporting.
	<-drained
	st := s.Stats()
	fmt.Printf("melissa-serve: served %d responses in %d batches, %d cache hits, %d reloads, %d shed, %s\n",
		st.Responses, st.Batches, st.Hits, st.Reloads, st.Shed, drainOutcome(st.Drain))
}

// drainOutcome renders Stats.Drain for the exit line.
func drainOutcome(d uint32) string {
	switch d {
	case serve.DrainClean:
		return "drained clean"
	case serve.DrainForced:
		return "drain forced"
	case serve.DrainActive:
		return "drain interrupted"
	default:
		return "closed without drain"
	}
}

func avg(sum, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "melissa-serve:", err)
	os.Exit(1)
}
