// Command melissa-serve answers surrogate predictions over the wire
// protocol: it loads a self-describing checkpoint (written by
// Surrogate.SaveFile, melissa.PublishSurrogate, or melissa-server's
// -surrogate-out) and serves PredictRequest frames with adaptive
// micro-batching, a replica pool sharing one weight slab, an LRU prediction
// cache, and hot checkpoint reload.
//
// Typical deployment next to a training run:
//
//	melissa-server ... -surrogate-out model.mlsg -publish-every 500 &
//	melissa-serve -checkpoint model.mlsg -addr :9200 -watch 2s
//
// The server hot-reloads every checkpoint the trainer publishes — queries
// keep flowing across the swap, each answered entirely by one checkpoint
// generation. Reloads can also be requested over the wire (an admin Reload
// frame, e.g. client.PredictConn.Reload).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"melissa/internal/serve"
)

func main() {
	var (
		checkpoint = flag.String("checkpoint", "", "surrogate checkpoint to serve (required, self-describing .mlsg)")
		addr       = flag.String("addr", "127.0.0.1:9200", "listen address")
		replicas   = flag.Int("replicas", 2, "batch workers, each with an inference replica sharing the weight slab")
		maxBatch   = flag.Int("max-batch", 32, "requests coalesced into one fused forward pass")
		batchWait  = flag.Duration("batch-wait", 500*time.Microsecond, "micro-batch latency budget (SLO knob; batches close at -max-batch or this deadline)")
		cache      = flag.Int("cache", 4096, "prediction cache entries (0 disables)")
		cacheKeep  = flag.Int("cache-keep-epochs", 0, "serve cache entries up to N reload epochs stale instead of flushing on reload (0 flushes)")
		cacheTTL   = flag.Duration("cache-ttl", 0, "expire cache entries this long after insert (0 disables)")
		watch      = flag.Duration("watch", 0, "poll the checkpoint file and hot-reload new publishes (0 disables)")
		statsEvery = flag.Duration("stats-every", 0, "print serving stats at this interval (0 disables)")
	)
	flag.Parse()
	if *checkpoint == "" {
		fatal(fmt.Errorf("-checkpoint is required"))
	}

	s, err := serve.LoadServer(serve.Config{
		CheckpointPath:  *checkpoint,
		Replicas:        *replicas,
		MaxBatch:        *maxBatch,
		BatchWait:       *batchWait,
		CacheEntries:    *cache,
		CacheKeepEpochs: *cacheKeep,
		CacheTTL:        *cacheTTL,
		WatchInterval:   *watch,
	})
	if err != nil {
		fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "melissa-serve: shutting down")
		s.Close()
	}()

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := s.Stats()
				fmt.Printf("melissa-serve: epoch %d, %d req, %d resp, %d batches (%.1f rows/batch), cache %d/%d/%d/%d hit/miss/evict/expire, %d reloads, %d errors\n",
					st.Epoch, st.Requests, st.Responses, st.Batches, avg(st.BatchRows, st.Batches),
					st.Hits, st.Misses, st.Evictions, st.Expired, st.Reloads, st.Errors)
			}
		}()
	}

	fmt.Printf("melissa-serve: serving %s on %s (%d replicas, batch<=%d within %v, cache %d)\n",
		*checkpoint, *addr, *replicas, *maxBatch, *batchWait, *cache)
	if err := s.ListenAndServe(*addr); err != nil {
		fatal(err)
	}
	st := s.Stats()
	fmt.Printf("melissa-serve: served %d responses in %d batches, %d cache hits, %d reloads\n",
		st.Responses, st.Batches, st.Hits, st.Reloads)
}

func avg(sum, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "melissa-serve:", err)
	os.Exit(1)
}
