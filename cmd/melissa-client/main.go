// Command melissa-client runs one ensemble member: it simulates the
// selected problem for sampled (or explicit) parameters and streams every
// computed time step to the training server whose rank addresses are
// published in -addr-file. This is the standalone-process counterpart of
// the in-process clients the launcher spawns.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"melissa"
	"melissa/internal/client"
	"melissa/internal/sampling"
	"melissa/internal/solver"
)

func main() {
	var (
		id       = flag.Int("id", 0, "client / simulation id (also selects sampled parameters)")
		problem  = flag.String("problem", "heat", "registered problem to simulate ("+strings.Join(melissa.Problems(), "|")+")")
		gridN    = flag.Int("grid", 16, "solver grid side")
		steps    = flag.Int("steps", 20, "time steps to produce")
		dt       = flag.Float64("dt", 0, "seconds per time step (0 = problem default)")
		workers  = flag.Int("workers", 1, "solver domain partitions (heat only)")
		addrFile = flag.String("addr-file", "melissa-addrs.txt", "file with server rank addresses")
		seed     = flag.Uint64("seed", 2023, "experimental-design seed (must match the ensemble)")
		design   = flag.String("design", "monte-carlo", "monte-carlo|latin-hypercube|halton")
		restart  = flag.Int("restart", 0, "restart count (server discards replayed steps)")
		reconn   = flag.Bool("reconnect", false, "survive server rank deaths: dial only reachable ranks, redial dead ones in the background, drop their frames meanwhile (elastic server groups)")
		ckptDir  = flag.String("checkpoint-dir", "", "resume from solver checkpoints in this directory")
		tic      = flag.Float64("tic", -1, "explicit initial temperature (heat only; overrides the design)")
		tx1      = flag.Float64("tx1", -1, "explicit boundary x=0")
		ty1      = flag.Float64("ty1", -1, "explicit boundary y=0")
		tx2      = flag.Float64("tx2", -1, "explicit boundary x=L")
		ty2      = flag.Float64("ty2", -1, "explicit boundary y=L")
	)
	flag.Parse()

	prob, err := melissa.ProblemByName(*problem)
	if err != nil {
		fatal(err)
	}
	if *dt <= 0 {
		*dt = melissa.DefaultDtFor(prob)
	}

	data, err := os.ReadFile(*addrFile)
	if err != nil {
		fatal(fmt.Errorf("reading %s (is the server running?): %w", *addrFile, err))
	}
	var addrs []string
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			addrs = append(addrs, line)
		}
	}

	if *tic >= 0 && *problem != melissa.HeatName {
		fatal(fmt.Errorf("explicit temperature flags (-tic/-tx1/...) only apply to -problem %s", melissa.HeatName))
	}

	var params []float64
	if *problem == melissa.HeatName && *tic >= 0 {
		params = melissa.HeatParams{TIC: *tic, TX1: *tx1, TY1: *ty1, TX2: *tx2, TY2: *ty2}.Vector()
	} else {
		// Re-derive this client's parameters from the shared seeded
		// design: draw and discard the first id points.
		min, max := prob.ParamBounds()
		space, err := sampling.NewSpace(min, max)
		if err != nil {
			fatal(err)
		}
		s, err := sampling.New(sampling.Kind(*design), space.Dim(), *seed, 0)
		if err != nil {
			fatal(err)
		}
		var point []float64
		for i := 0; i <= *id; i++ {
			point = s.Next()
		}
		params = space.Scale(point)
	}

	mcfg := melissa.Config{GridN: *gridN, StepsPerSim: *steps, Dt: *dt, Workers: *workers}
	job := client.Job{
		Client: client.Config{
			ClientID:          *id,
			SimID:             *id,
			ServerAddrs:       addrs,
			HeartbeatInterval: 2 * time.Second,
			Restart:           *restart,
			Reconnect:         *reconn,
		},
		NewSim: func() (solver.Simulator, error) { return prob.NewSimulator(mcfg, params) },
		Params: params,
		Steps:  *steps,
		Dt:     *dt,
	}
	if *ckptDir != "" {
		job.Checkpoint = &client.FileCheckpointer{Dir: *ckptDir, Every: 5}
	}
	fmt.Printf("melissa-client %d: problem %s, params %v, %d steps on %d-rank server\n",
		*id, prob.Name(), params, *steps, len(addrs))
	if err := client.Run(context.Background(), job); err != nil {
		fatal(err)
	}
	fmt.Printf("melissa-client %d: done\n", *id)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "melissa-client:", err)
	os.Exit(1)
}
