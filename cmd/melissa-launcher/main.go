// Command melissa-launcher runs the complete online-training workflow on
// the local machine: it brings up the training server, submits the ensemble
// clients with bounded concurrency, recovers from client failures, and
// writes the trained surrogate.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"melissa"
)

func main() {
	var (
		problem    = flag.String("problem", "heat", "registered problem ("+strings.Join(melissa.Problems(), "|")+")")
		sims       = flag.Int("simulations", 20, "ensemble size")
		gridN      = flag.Int("grid", 16, "solver grid side")
		steps      = flag.Int("steps", 20, "time steps per simulation")
		dt         = flag.Float64("dt", 0.01, "seconds per step")
		concurrent = flag.Int("concurrent", 4, "max simultaneous clients")
		ranks      = flag.Int("ranks", 1, "data-parallel training replicas")
		hidden     = flag.String("hidden", "64,64", "hidden layer widths")
		batch      = flag.Int("batch", 10, "batch size per rank")
		policy     = flag.String("buffer", "Reservoir", "FIFO|FIRO|Reservoir")
		capacity   = flag.Int("capacity", 200, "buffer capacity per rank")
		threshold  = flag.Int("threshold", 30, "buffer threshold")
		valSims    = flag.Int("validation-sims", 2, "held-out validation simulations")
		seed       = flag.Uint64("seed", 2023, "global seed")
		out        = flag.String("out", "surrogate.bin", "trained weights output")
		timeout    = flag.Duration("timeout", 0, "overall run timeout (0 = none)")
	)
	flag.Parse()

	cfg := melissa.DefaultConfig()
	prob, err := melissa.ProblemByName(*problem)
	if err != nil {
		fatal(err)
	}
	cfg.Problem = prob
	cfg.Simulations = *sims
	cfg.GridN = *gridN
	cfg.StepsPerSim = *steps
	cfg.Dt = *dt
	cfg.MaxConcurrentClients = *concurrent
	cfg.Ranks = *ranks
	cfg.BatchSize = *batch
	cfg.Buffer = melissa.BufferPolicy(*policy)
	cfg.Capacity = *capacity
	cfg.Threshold = *threshold
	cfg.ValidationSims = *valSims
	cfg.Seed = *seed
	cfg.Hidden = nil
	for _, part := range strings.Split(*hidden, ",") {
		var h int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &h); err != nil || h < 1 {
			fatal(fmt.Errorf("invalid -hidden %q", *hidden))
		}
		cfg.Hidden = append(cfg.Hidden, h)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	res, err := melissa.RunOnline(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ensemble complete in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  batches:          %d\n", res.Batches)
	fmt.Printf("  samples trained:  %d (%d unique)\n", res.Samples, res.UniqueSamples)
	fmt.Printf("  throughput:       %.1f samples/s\n", res.Throughput)
	fmt.Printf("  validation MSE:   %.6f (%.1f K²)\n", res.ValidationMSE, res.ValidationMSEKelvin)
	fmt.Printf("  restarts:         %d client, %d server\n", res.ClientRestarts, res.ServerRestarts)
	if *out != "" {
		if err := res.Surrogate.SaveFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("  surrogate saved:  %s (%d parameters)\n", *out, res.Surrogate.NumParams())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "melissa-launcher:", err)
	os.Exit(1)
}
