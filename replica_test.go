package melissa

import (
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"melissa/internal/nn"
)

// randQueries draws n in-range float32 queries for a problem.
func randQueries(prob Problem, n int, rng *rand.Rand) (params [][]float32, ts []float32) {
	min, max := prob.ParamBounds()
	params = make([][]float32, n)
	ts = make([]float32, n)
	for i := range params {
		p := make([]float32, len(min))
		for j := range p {
			p[j] = float32(min[j] + rng.Float64()*(max[j]-min[j]))
		}
		params[i] = p
		ts[i] = float32(rng.IntN(6)) + 1
	}
	return params, ts
}

// TestReplicaBatchInvariant: with the forward shape pinned at MaxBatch, a
// query's answer must be bit-identical no matter which other requests it is
// coalesced with, which batch slot it lands in, or which replica runs it —
// the invariant the serving tier's micro-batcher and prediction cache are
// built on. Also sanity-checks the answers against the Predict reference
// path within floating-point tolerance (the two paths may legitimately pick
// different GEMM kernels for their different batch shapes).
func TestReplicaBatchInvariant(t *testing.T) {
	for _, prob := range []Problem{Heat(), GrayScott()} {
		s := freshSurrogate(prob)
		rep := s.NewReplica(16)
		rng := rand.New(rand.NewPCG(3, 5))
		params, ts := randQueries(prob, 16, rng)
		// Reference answers: each query alone in slot 0 of a fresh replica.
		ref := make([][]float32, len(params))
		other := s.NewReplica(16)
		for q := range params {
			err := other.PredictBatchRaw(1,
				func(int) ([]float32, float32) { return params[q], ts[q] },
				func(_ int, field []float32) { ref[q] = append([]float32(nil), field...) })
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, n := range []int{1, 2, 3, 7, 8, 13, 16} {
			// Shift the queries so each batch size exercises different slots.
			off := rng.IntN(len(params))
			err := rep.PredictBatchRaw(n,
				func(i int) ([]float32, float32) { q := (off + i) % len(params); return params[q], ts[q] },
				func(i int, field []float32) {
					q := (off + i) % len(params)
					if len(field) != len(ref[q]) {
						t.Fatalf("%s n=%d: field length %d, want %d", prob.Name(), n, len(field), len(ref[q]))
					}
					for j := range field {
						if math.Float32bits(field[j]) != math.Float32bits(ref[q][j]) {
							t.Fatalf("%s n=%d slot %d query %d: field[%d] = %x, reference %x",
								prob.Name(), n, i, q, j, math.Float32bits(field[j]), math.Float32bits(ref[q][j]))
						}
					}
				})
			if err != nil {
				t.Fatalf("%s n=%d: %v", prob.Name(), n, err)
			}
		}
		// Cross-check against the float64 Predict path within tolerance.
		for q := range params {
			p64 := make([]float64, len(params[q]))
			for j, v := range params[q] {
				p64[j] = float64(v)
			}
			want := s.Predict(p64, float64(ts[q]))
			for j := range want {
				if d := math.Abs(float64(ref[q][j]) - want[j]); d > 1e-3+1e-3*math.Abs(want[j]) {
					t.Fatalf("%s query %d: field[%d] = %v, Predict gives %v", prob.Name(), q, j, ref[q][j], want[j])
				}
			}
		}
	}
}

// TestReplicaSharesWeights: NewReplica must not copy the weight slab — the
// whole point of the replica pool is N workers against one model's memory.
func TestReplicaSharesWeights(t *testing.T) {
	s := freshSurrogate(Heat())
	rep := s.NewReplica(4)
	sp := s.net.Params()
	rp := rep.net.Params()
	if len(sp) != len(rp) {
		t.Fatalf("param count %d vs %d", len(rp), len(sp))
	}
	for i := range sp {
		if &sp[i].Value.Data[0] != &rp[i].Value.Data[0] {
			t.Fatalf("param %q: replica has private weight storage", sp[i].Name)
		}
	}
}

// TestReplicaBatchZeroAlloc gates the serving compute hot path: once the
// activation shape caches are warm, a replica batch call must not allocate.
func TestReplicaBatchZeroAlloc(t *testing.T) {
	s := freshSurrogate(Heat())
	rep := s.NewReplica(8)
	rng := rand.New(rand.NewPCG(7, 9))
	params, ts := randQueries(Heat(), 8, rng)
	query := func(i int) ([]float32, float32) { return params[i], ts[i] }
	emit := func(i int, field []float32) { _ = field[0] }
	for i := 0; i < 2; i++ { // warm the (single, fixed-shape) activation caches
		if err := rep.PredictBatchRaw(8, query, emit); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []int{1, 3, 8} {
		avg := testing.AllocsPerRun(100, func() {
			if err := rep.PredictBatchRaw(n, query, emit); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("batch of %d allocates %.2f allocs/op, want 0", n, avg)
		}
	}
}

// TestReplicaNarrowOutput: a surrogate whose OutputDim is smaller than its
// InputDim (a near-scalar field) must still batch-predict — regression for
// staging the raw input row in a buffer sized only to the output.
func TestReplicaNarrowOutput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Problem = Heat()
	cfg.GridN = 1 // OutputDim 1 < InputDim (ParamDim+1)
	cfg.StepsPerSim = 6
	cfg.Hidden = []int{8}
	norm := cfg.Problem.Normalizer(cfg)
	net := nn.ArchitectureMLP(norm.InputDim(), cfg.Hidden, norm.OutputDim(), cfg.Seed)
	s := newSurrogate(net, norm, surrogateMeta(cfg, cfg.Problem))
	if s.OutputDim() >= norm.InputDim() {
		t.Fatalf("test wants OutputDim < InputDim, got %d >= %d", s.OutputDim(), norm.InputDim())
	}
	rep := s.NewReplica(4)
	rng := rand.New(rand.NewPCG(1, 2))
	params, ts := randQueries(Heat(), 4, rng)
	emitted := 0
	err := rep.PredictBatchRaw(4,
		func(i int) ([]float32, float32) { return params[i], ts[i] },
		func(i int, field []float32) {
			emitted++
			if len(field) != s.OutputDim() {
				t.Fatalf("field length %d, want %d", len(field), s.OutputDim())
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 4 {
		t.Fatalf("emit called %d times, want 4", emitted)
	}
}

// TestReplicaRejectsBadBatch: out-of-range sizes and wrong parameter counts
// must error without panicking mid-batch.
func TestReplicaRejectsBadBatch(t *testing.T) {
	s := freshSurrogate(Heat())
	rep := s.NewReplica(3)
	if rep.MaxBatch() != 3 {
		t.Fatalf("MaxBatch = %d, want 3", rep.MaxBatch())
	}
	noEmit := func(int, []float32) { t.Fatal("emit called for rejected batch") }
	if err := rep.PredictBatchRaw(0, nil, noEmit); err == nil {
		t.Fatal("batch of 0 accepted")
	}
	if err := rep.PredictBatchRaw(4, nil, noEmit); err == nil {
		t.Fatal("batch beyond MaxBatch accepted")
	}
	bad := func(i int) ([]float32, float32) { return []float32{1}, 1 }
	if err := rep.PredictBatchRaw(1, bad, noEmit); err == nil {
		t.Fatal("wrong parameter count accepted")
	}
}

// TestPublishSurrogate: the atomic publisher must produce a loadable
// self-describing checkpoint and leave no temporary droppings behind.
func TestPublishSurrogate(t *testing.T) {
	s := freshSurrogate(Heat())
	dir := t.TempDir()
	path := filepath.Join(dir, "surrogate.mlsg")
	for i := 0; i < 2; i++ { // second publish overwrites the first in place
		if err := PublishSurrogate(s, path); err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := LoadSurrogateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p := midPoint(Heat())
	want := s.Predict(p, 1)
	got := loaded.Predict(p, 1)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("published checkpoint diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("publish left %d files in dir, want 1", len(entries))
	}
}
