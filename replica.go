package melissa

import (
	"fmt"
	"os"
	"path/filepath"

	"melissa/internal/nn"
	"melissa/internal/tensor"
)

// Replica is a dedicated inference worker bound to a Surrogate: it shares
// the surrogate's weight storage (no copy — see nn.Network.CloneShared) and
// owns all forward scratch, so a pool of replicas evaluates batches
// concurrently against one weight slab. Unlike Predict/PredictBatch it
// speaks float32 end to end, matching the wire protocol, and its batch call
// is allocation-free at steady state — it exists for the serving tier's
// micro-batcher, where per-request conversions and pool round-trips would
// dominate small-batch latency.
//
// A Replica is not safe for concurrent use; give each serving goroutine its
// own. The surrogate's weights must not be mutated while replicas exist.
type Replica struct {
	s        *Surrogate
	net      *nn.Network
	maxBatch int
	in       *tensor.Matrix // maxBatch × inputDim staging for normalized rows
	// row is shared per-row scratch, sized max(InputDim, OutputDim): the
	// input loop stages raw (params, t) rows in row[:InputDim], the output
	// loop denormalizes into row[:OutputDim] and hands that to emit. The
	// max sizing matters — a scalar-output surrogate has OutputDim smaller
	// than InputDim, so neither dimension alone covers both uses.
	row []float32
}

// NewReplica returns an inference replica sharing this surrogate's weights.
// maxBatch bounds the rows of a single PredictBatchRaw call. Every forward
// pass runs at exactly maxBatch rows regardless of how many queries the
// batch carries (see PredictBatchRaw), so pick the micro-batcher's size cap
// and share it across all replicas of a deployment.
func (s *Surrogate) NewReplica(maxBatch int) *Replica {
	if maxBatch < 1 {
		panic(fmt.Sprintf("melissa: NewReplica maxBatch %d, want >= 1", maxBatch))
	}
	return &Replica{
		s:        s,
		net:      s.net.CloneShared(),
		maxBatch: maxBatch,
		in:       tensor.New(maxBatch, s.norm.InputDim()),
		row:      make([]float32, max(s.norm.InputDim(), s.norm.OutputDim())),
	}
}

// MaxBatch returns the largest query count one PredictBatchRaw call
// accepts — and the fixed row count every forward pass runs at.
func (r *Replica) MaxBatch() int { return r.maxBatch }

// ParamDim returns the number of design parameters each query must supply.
func (r *Replica) ParamDim() int { return r.s.ParamDim() }

// OutputDim returns the flattened field length each query produces.
func (r *Replica) OutputDim() int { return r.s.OutputDim() }

// PredictBatchRaw evaluates n queries in one fused forward pass. query(i)
// must return query i's design parameters (length ParamDim, float32, wire
// order) and physical time; emit(i, field) receives the denormalized field
// for query i and must copy or encode it before returning — the buffer is
// reused for the next row.
//
// The forward pass always runs at MaxBatch rows: unused rows carry stale
// inputs from earlier batches and their outputs are discarded. Padding to a
// fixed shape costs wasted flops at partial occupancy, but buys the
// property the serving tier is built on: the GEMM kernel selection and
// every row's accumulation order depend only on the matrix shapes, so with
// the shape pinned each answer is a pure function of (weights, query,
// MaxBatch) — bit-identical no matter which requests were coalesced
// together, which replica ran them, or what position the query landed in.
// That exactness is what lets a cache hit stand in for a fresh compute and
// lets the hot-reload test demand old-bits-or-new-bits, never a blend. A
// single activation shape also means the layers' shape-keyed scratch caches
// hold one entry each, so the steady-state call performs no allocations.
func (r *Replica) PredictBatchRaw(n int, query func(i int) (params []float32, t float32), emit func(i int, field []float32)) error {
	if n < 1 || n > r.maxBatch {
		return fmt.Errorf("melissa: replica batch of %d rows, want 1..%d", n, r.maxBatch)
	}
	dim := r.s.ParamDim()
	width := r.s.norm.InputDim()
	for i := 0; i < n; i++ {
		params, t := query(i)
		if len(params) != dim {
			return fmt.Errorf("melissa: query %d has %d parameters, problem %q wants %d", i, len(params), r.s.meta.Problem, dim)
		}
		raw := r.row[:width]
		copy(raw, params)
		raw[dim] = t
		r.s.norm.NormalizeInput(raw, r.in.Data[i*width:(i+1)*width])
	}
	pred := r.net.Forward(r.in)
	out := r.s.norm.OutputDim()
	for i := 0; i < n; i++ {
		field := r.row[:out]
		copy(field, pred.Data[i*out:(i+1)*out])
		r.s.norm.DenormalizeField(field)
		emit(i, field)
	}
	return nil
}

// PublishSurrogate atomically writes the surrogate's self-describing
// checkpoint to path: the bytes go to a temporary file in the same
// directory, which is fsynced and renamed into place, so a concurrent
// reader (melissa-serve's checkpoint watcher, most importantly) sees either
// the previous complete file or the new complete file and never a torn
// prefix. This is the training→serving handoff primitive: publish from a
// training hook, and a watching server hot-reloads it.
func PublishSurrogate(s *Surrogate, path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := s.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
