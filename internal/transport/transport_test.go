package transport

import (
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"melissa/internal/protocol"
)

const dialTimeout = 2 * time.Second

func TestSingleClientSingleRank(t *testing.T) {
	l, err := Listen("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	c, err := Dial([]string{l.Addr()}, dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	want := protocol.TimeStep{SimID: 1, Step: 2, Input: []float32{3}, Field: []float32{4, 5}}
	if err := c.Send(0, want); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-l.Incoming():
		got, ok := env.Msg.(*protocol.TimeStep)
		if !ok || got.SimID != 1 || got.Step != 2 || got.Field[1] != 5 {
			t.Fatalf("got %+v", env.Msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never arrived")
	}
}

func TestMultipleRanksRoundRobin(t *testing.T) {
	const ranks = 3
	listeners := make([]*RankListener, ranks)
	addrs := make([]string, ranks)
	for i := range listeners {
		l, err := Listen("127.0.0.1:0", 0)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		listeners[i] = l
		addrs[i] = l.Addr()
	}
	c, err := Dial(addrs, dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Ranks() != ranks {
		t.Fatalf("ranks %d", c.Ranks())
	}

	// Distribute steps round-robin as the client library does.
	for step := 0; step < 6; step++ {
		if err := c.Send(step%ranks, protocol.TimeStep{SimID: 0, Step: int32(step)}); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < ranks; r++ {
		var got []int32
		for i := 0; i < 2; i++ {
			select {
			case env := <-listeners[r].Incoming():
				got = append(got, env.Msg.(*protocol.TimeStep).Step)
			case <-time.After(2 * time.Second):
				t.Fatalf("rank %d: timed out", r)
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if got[0] != int32(r) || got[1] != int32(r+3) {
			t.Fatalf("rank %d received %v", r, got)
		}
	}
}

func TestSendAll(t *testing.T) {
	const ranks = 2
	listeners := make([]*RankListener, ranks)
	addrs := make([]string, ranks)
	for i := range listeners {
		l, err := Listen("127.0.0.1:0", 0)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		listeners[i] = l
		addrs[i] = l.Addr()
	}
	c, err := Dial(addrs, dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendAll(protocol.Hello{ClientID: 9, Steps: 10}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		select {
		case env := <-listeners[r].Incoming():
			if h, ok := env.Msg.(protocol.Hello); !ok || h.ClientID != 9 {
				t.Fatalf("rank %d: %+v", r, env.Msg)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("rank %d never got hello", r)
		}
	}
}

func TestManyConcurrentClients(t *testing.T) {
	l, err := Listen("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const clients = 8
	const perClient = 20
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial([]string{l.Addr()}, dialTimeout)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for s := 0; s < perClient; s++ {
				if err := c.Send(0, protocol.TimeStep{SimID: int32(id), Step: int32(s)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}

	received := map[int32]int{}
	for i := 0; i < clients*perClient; i++ {
		select {
		case env := <-l.Incoming():
			received[env.Msg.(*protocol.TimeStep).SimID]++
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d messages", i)
		}
	}
	wg.Wait()
	for id := int32(0); id < clients; id++ {
		if received[id] != perClient {
			t.Fatalf("client %d delivered %d/%d", id, received[id], perClient)
		}
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial([]string{"127.0.0.1:1"}, 200*time.Millisecond); err == nil {
		t.Fatal("expected connection error")
	}
	if _, err := Dial(nil, dialTimeout); err == nil {
		t.Fatal("expected error for empty address list")
	}
}

func TestSendInvalidRank(t *testing.T) {
	l, err := Listen("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := Dial([]string{l.Addr()}, dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(5, protocol.Heartbeat{}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := c.Send(-1, protocol.Heartbeat{}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestSendAfterClose(t *testing.T) {
	l, err := Listen("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := Dial([]string{l.Addr()}, dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Send(0, protocol.Heartbeat{}); err == nil {
		t.Fatal("expected error after close")
	}
}

func TestGarbageBytesDropConnection(t *testing.T) {
	l, err := Listen("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	raw, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// A corrupt frame must not crash the listener or emit a message.
	raw.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	raw.Close()

	// The listener still serves new clients.
	c, err := Dial([]string{l.Addr()}, dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(0, protocol.Heartbeat{ClientID: 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-l.Incoming():
		if hb, ok := env.Msg.(protocol.Heartbeat); !ok || hb.ClientID != 3 {
			t.Fatalf("got %+v", env.Msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("listener stopped serving after garbage input")
	}
}

func TestListenerCloseClosesIncoming(t *testing.T) {
	l, err := Listen("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial([]string{l.Addr()}, dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	l.Close()
	select {
	case _, open := <-l.Incoming():
		if open {
			// Drain until closed.
			for range l.Incoming() {
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Incoming never closed")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestSendBufferedRequiresFlush pins the coalescing contract: buffered
// frames stay in the client writer until an explicit flush point.
func TestSendBufferedRequiresFlush(t *testing.T) {
	l, err := Listen("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := Dial([]string{l.Addr()}, dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for s := 0; s < 3; s++ {
		if err := c.SendBuffered(0, protocol.TimeStep{SimID: 1, Step: int32(s), Input: []float32{1}, Field: []float32{2}}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case env := <-l.Incoming():
		t.Fatalf("frame arrived before flush: %+v", env.Msg)
	case <-time.After(50 * time.Millisecond):
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		select {
		case env := <-l.Incoming():
			ts := env.Msg.(*protocol.TimeStep)
			if ts.Step != int32(s) {
				t.Fatalf("step %d out of order: %+v", s, ts)
			}
			protocol.RecycleTimeStep(ts)
		case <-time.After(2 * time.Second):
			t.Fatalf("buffered frame %d never arrived after flush", s)
		}
	}
}

func TestWatchdog(t *testing.T) {
	w := NewWatchdog(time.Minute)
	now := time.Unix(1000, 0)
	w.SetClock(func() time.Time { return now })

	w.Beat(1)
	w.Beat(2)
	if got := w.Watched(); got != 2 {
		t.Fatalf("watched %d", got)
	}
	if exp := w.Expired(); len(exp) != 0 {
		t.Fatalf("premature expiry: %v", exp)
	}

	now = now.Add(30 * time.Second)
	w.Beat(2) // client 2 stays alive
	now = now.Add(45 * time.Second)
	exp := w.Expired()
	if len(exp) != 1 || exp[0] != 1 {
		t.Fatalf("expired %v, want [1]", exp)
	}
	// Expiry is reported once.
	if exp := w.Expired(); len(exp) != 0 {
		t.Fatalf("repeated expiry: %v", exp)
	}

	w.Remove(2)
	if w.Watched() != 0 {
		t.Fatal("remove failed")
	}
}

func TestWatchdogConcurrentBeats(t *testing.T) {
	w := NewWatchdog(time.Minute)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int32) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				w.Beat(id)
			}
		}(int32(i))
	}
	wg.Wait()
	if w.Watched() != 8 {
		t.Fatalf("watched %d", w.Watched())
	}
}
