package transport

// The rank ring: dedicated TCP connections between training ranks running
// as separate processes, carrying gradient collectives (ddp.TCPComm). Every
// rank listens on a pre-agreed address, dials its successor and accepts its
// predecessor, forming the same directed ring the in-process channel
// communicator uses. Frames reuse the protocol package's length framing
// ([length u32 | type u8 | payload], little-endian).
//
// Sends are asynchronous: the caller's goroutine stages the frame into a
// recycled buffer (so the caller's slab is never aliased after Send*
// returns) and a persistent writer goroutine performs the socket write.
// This is what keeps the ring deadlock-free — during a collective every
// rank sends before it receives, so a blocking send of a chunk larger than
// the socket buffers would wedge the whole ring. Two staging buffers
// rotate through a free list, making steady-state collectives
// allocation-free, exactly like the channel backend's recycled links.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync/atomic"
	"time"

	"melissa/internal/protocol"
)

// ringHeaderLen is the frame header size: payload length u32 + type u8.
const ringHeaderLen = 5

// ringSendDepth is the number of in-flight staged frames per ring link.
const ringSendDepth = 2

// RingListener is the bound-but-unconnected half of a rank's ring
// endpoint. Binding first and connecting second lets tests use ephemeral
// ports: every rank learns all addresses before any rank dials.
type RingListener struct {
	ln net.Listener
}

// ListenRing binds a rank's collective endpoint on addr
// (use "127.0.0.1:0" for an ephemeral port).
func ListenRing(addr string) (*RingListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: ring listen %s: %w", addr, err)
	}
	return &RingListener{ln: ln}, nil
}

// Addr returns the listener's bound address.
func (l *RingListener) Addr() string { return l.ln.Addr().String() }

// Close releases the endpoint without forming a ring.
func (l *RingListener) Close() error { return l.ln.Close() }

// Ring is one rank's pair of directed ring connections: next carries this
// rank's sends to rank+1, prev carries rank−1's sends to this rank. A ring
// of size 1 has no connections and all operations are no-ops. A Ring is
// owned by one goroutine at a time; Close must not race in-flight
// collectives.
type Ring struct {
	rank, size int
	next       net.Conn // to successor (nil when size == 1)
	prev       net.Conn // from predecessor (nil when size == 1)

	sendData   chan []byte // framed messages awaiting the writer
	sendFree   chan []byte // recycled staging buffers
	writerDone chan struct{}
	sendErr    atomic.Pointer[error] // first write failure, surfaced on later sends

	recvBuf []byte // recycled payload staging for RecvFloats
	hdr     [ringHeaderLen]byte
}

// Connect forms the ring: the listener's rank dials addrs[(rank+1)%size]
// (retrying until timeout, so processes may start in any order) and accepts
// one connection from its predecessor, verified by a RingHello handshake.
// The listener is consumed: it is closed once the ring is established.
func (l *RingListener) Connect(rank int, addrs []string, timeout time.Duration) (*Ring, error) {
	size := len(addrs)
	if rank < 0 || rank >= size {
		l.ln.Close()
		return nil, fmt.Errorf("transport: ring rank %d out of range [0,%d)", rank, size)
	}
	r := &Ring{rank: rank, size: size}
	if size == 1 {
		l.ln.Close()
		return r, nil
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)

	// Dial the successor in the background while accepting the
	// predecessor: with two ranks each side must do both at once.
	type dialResult struct {
		conn net.Conn
		err  error
	}
	dialed := make(chan dialResult, 1)
	go func() {
		succ := addrs[(rank+1)%size]
		var lastErr error
		for time.Now().Before(deadline) {
			conn, err := net.DialTimeout("tcp", succ, time.Second)
			if err == nil {
				// Identify ourselves so the acceptor can verify ring order.
				if err := writeRingHello(conn, rank); err != nil {
					conn.Close()
					dialed <- dialResult{err: err}
					return
				}
				dialed <- dialResult{conn: conn}
				return
			}
			lastErr = err
			time.Sleep(50 * time.Millisecond)
		}
		dialed <- dialResult{err: fmt.Errorf("transport: dialing ring successor %s: %w", succ, lastErr)}
	}()

	fail := func(err error) (*Ring, error) {
		l.ln.Close()
		if d := <-dialed; d.conn != nil {
			d.conn.Close()
		}
		return nil, err
	}

	if tl, ok := l.ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	conn, err := l.ln.Accept()
	if err != nil {
		return fail(fmt.Errorf("transport: accepting ring predecessor: %w", err))
	}
	from, err := readRingHello(conn)
	if err != nil {
		conn.Close()
		return fail(err)
	}
	want := (rank - 1 + size) % size
	if from != want {
		conn.Close()
		return fail(fmt.Errorf("transport: ring rank %d accepted rank %d, want predecessor %d", rank, from, want))
	}
	r.prev = conn
	l.ln.Close()

	d := <-dialed
	if d.err != nil {
		r.prev.Close()
		return nil, d.err
	}
	r.next = d.conn

	r.sendData = make(chan []byte, ringSendDepth)
	r.sendFree = make(chan []byte, ringSendDepth)
	for i := 0; i < ringSendDepth; i++ {
		r.sendFree <- nil // sized lazily on first send
	}
	r.writerDone = make(chan struct{})
	go r.writeLoop()
	return r, nil
}

// writeLoop is the persistent writer: it drains staged frames in order and
// recycles their buffers. On a write failure it records the error and keeps
// draining so stagers never block.
func (r *Ring) writeLoop() {
	defer close(r.writerDone)
	for buf := range r.sendData {
		if r.sendErr.Load() == nil {
			if _, err := r.next.Write(buf); err != nil {
				werr := fmt.Errorf("transport: ring send to rank %d: %w", (r.rank+1)%r.size, err)
				r.sendErr.Store(&werr)
			}
		}
		r.sendFree <- buf
	}
}

// stage frames typ+payload into a recycled buffer and hands it to the
// writer. fill writes the payload into the staging buffer.
func (r *Ring) stage(typ protocol.MsgType, payloadLen int, fill func(dst []byte)) error {
	if payloadLen+1 > protocol.MaxFrameSize {
		// Caught on the sender so the receiver never misreads an
		// oversized frame as stream corruption (or a >4 GiB length as a
		// wrapped u32).
		return fmt.Errorf("transport: ring payload %d bytes exceeds frame limit %d", payloadLen, protocol.MaxFrameSize-1)
	}
	if err := r.sendErr.Load(); err != nil {
		return *err
	}
	buf := <-r.sendFree
	need := ringHeaderLen + payloadLen
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	binary.LittleEndian.PutUint32(buf, uint32(1+payloadLen))
	buf[4] = byte(typ)
	if fill != nil {
		fill(buf[ringHeaderLen:])
	}
	r.sendData <- buf
	return nil
}

// Rank returns this endpoint's ring position.
func (r *Ring) Rank() int { return r.rank }

// Size returns the number of ranks in the ring.
func (r *Ring) Size() int { return r.size }

// Close stops the writer and tears both ring connections down. It must not
// race an in-flight collective.
func (r *Ring) Close() error {
	if r.sendData != nil {
		close(r.sendData)
		<-r.writerDone
		r.sendData = nil
	}
	var first error
	for _, c := range []net.Conn{r.next, r.prev} {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	r.next, r.prev = nil, nil
	return first
}

// SendFloats stages vals as a RingFloats frame for the successor. vals is
// fully copied before SendFloats returns, so the caller may overwrite it
// immediately.
func (r *Ring) SendFloats(vals []float32) error {
	return r.stage(protocol.TypeRingFloats, 4*len(vals), func(dst []byte) {
		for i, v := range vals {
			binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
		}
	})
}

// RecvFloats reads one RingFloats frame from the predecessor into dst,
// which must have exactly the sent length (collectives are lockstep, so
// lengths always agree). The payload staging buffer is recycled.
func (r *Ring) RecvFloats(dst []float32) error {
	typ, payload, err := r.readFrame()
	if err != nil {
		return err
	}
	if typ != protocol.TypeRingFloats {
		return fmt.Errorf("transport: ring rank %d: unexpected frame type %d, want floats", r.rank, typ)
	}
	if len(payload) != 4*len(dst) {
		return fmt.Errorf("transport: ring rank %d: float frame %d bytes, want %d", r.rank, len(payload), 4*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return nil
}

// SendToken stages a zero-payload barrier token for the successor.
func (r *Ring) SendToken() error {
	return r.stage(protocol.TypeRingToken, 0, nil)
}

// RecvToken reads one barrier token from the predecessor.
func (r *Ring) RecvToken() error {
	typ, payload, err := r.readFrame()
	if err != nil {
		return err
	}
	if typ != protocol.TypeRingToken || len(payload) != 0 {
		return fmt.Errorf("transport: ring rank %d: unexpected frame type %d, want token", r.rank, typ)
	}
	return nil
}

// readFrame reads one [length | type | payload] frame from the predecessor
// into the recycled receive buffer.
func (r *Ring) readFrame() (protocol.MsgType, []byte, error) {
	if _, err := io.ReadFull(r.prev, r.hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("transport: ring recv header: %w", err)
	}
	size := binary.LittleEndian.Uint32(r.hdr[:4])
	if size == 0 || size > protocol.MaxFrameSize {
		return 0, nil, fmt.Errorf("transport: ring frame size %d", size)
	}
	typ := protocol.MsgType(r.hdr[4])
	n := int(size) - 1
	if cap(r.recvBuf) < n {
		r.recvBuf = make([]byte, n)
	}
	payload := r.recvBuf[:n]
	if _, err := io.ReadFull(r.prev, payload); err != nil {
		return 0, nil, fmt.Errorf("transport: ring recv payload: %w", err)
	}
	return typ, payload, nil
}

// writeRingHello sends the one-shot rank handshake on a dialed connection.
func writeRingHello(conn net.Conn, rank int) error {
	var buf [ringHeaderLen + 4]byte
	binary.LittleEndian.PutUint32(buf[:], 5)
	buf[4] = byte(protocol.TypeRingHello)
	binary.LittleEndian.PutUint32(buf[ringHeaderLen:], uint32(rank))
	if _, err := conn.Write(buf[:]); err != nil {
		return fmt.Errorf("transport: ring hello: %w", err)
	}
	return nil
}

// readRingHello reads the rank handshake from an accepted connection.
func readRingHello(conn net.Conn) (int, error) {
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	defer conn.SetReadDeadline(time.Time{})
	var buf [ringHeaderLen + 4]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return 0, fmt.Errorf("transport: reading ring hello: %w", err)
	}
	if binary.LittleEndian.Uint32(buf[:4]) != 5 || protocol.MsgType(buf[4]) != protocol.TypeRingHello {
		return 0, fmt.Errorf("transport: malformed ring hello")
	}
	return int(binary.LittleEndian.Uint32(buf[ringHeaderLen:])), nil
}
