package transport

// The rank ring: dedicated TCP connections between training ranks running
// as separate processes, carrying gradient collectives (ddp.TCPComm). Every
// rank listens on a pre-agreed address, dials its successor and accepts its
// predecessor, forming the same directed ring the in-process channel
// communicator uses. Frames reuse the protocol package's length framing
// ([length u32 | type u8 | payload], little-endian).
//
// Sends are asynchronous: the caller's goroutine stages the frame into a
// recycled buffer (so the caller's slab is never aliased after Send*
// returns) and a persistent writer goroutine performs the socket write.
// This is what keeps the ring deadlock-free — during a collective every
// rank sends before it receives, so a blocking send of a chunk larger than
// the socket buffers would wedge the whole ring. Two staging buffers
// rotate through a free list, making steady-state collectives
// allocation-free, exactly like the channel backend's recycled links.
//
// # Failure model
//
// A ring link is declared dead when it makes no progress for IOTimeout:
// every socket read and write carries a deadline, and a background
// heartbeat goroutine stages a zero-payload RingPing frame every
// HeartbeatInterval (with HeartbeatInterval well below IOTimeout), so on a
// healthy link the predecessor is never silent long enough to trip the
// read deadline — even between collectives. Receivers discard ping frames
// at frame boundaries. Any link failure (deadline expiry, reset, EOF,
// malformed frame) surfaces as an error wrapping ErrLinkDead instead of a
// panic; once a link has failed, every subsequent operation on the Ring
// fails too. Abort force-closes both connections and is safe to call
// concurrently with in-flight collectives — it is how a membership
// controller unwedges a rank that is blocked mid-collective on a dead
// group.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"melissa/internal/protocol"
)

// ringHeaderLen is the frame header size: payload length u32 + type u8.
const ringHeaderLen = 5

// ringSendDepth is the number of in-flight staged frames per ring link.
const ringSendDepth = 2

// ringReadChunk bounds how much payload is read (and how much the receive
// buffer grows) per read deadline. Chunked reads make the payload timeout
// progress-based — a large frame over a slow link is fine as long as bytes
// keep arriving — and cap what a lying length prefix can make the receiver
// allocate ahead of bytes actually received.
const ringReadChunk = 1 << 20

// ringRecvBufSize is the read-ahead buffer on the predecessor link. One
// kernel read typically delivers a frame header together with (much of)
// its payload, so the per-frame receive cost drops from two-plus syscalls
// to about one — a fixed cost shared by both wire codecs.
const ringRecvBufSize = 64 << 10

// Dial backoff bounds for ring formation (see RingListener.Connect).
const (
	ringDialBackoffBase = 20 * time.Millisecond
	ringDialBackoffMax  = 500 * time.Millisecond
)

// ErrLinkDead marks a failure of an established ring link: the peer went
// silent past the IO timeout, reset the connection, or sent a malformed
// frame. It is fatal for the current ring — the group must re-form
// (ddp.Classify reports it as FaultFatal).
var ErrLinkDead = errors.New("transport: ring link dead")

// ErrRingAborted marks an operation interrupted by Ring.Abort. It is the
// expected error inside ranks being torn down deliberately during group
// reconfiguration.
var ErrRingAborted = errors.New("transport: ring aborted")

// RingOptions tunes a ring's failure detection and lets tests inject
// faults. The zero value gives production defaults.
type RingOptions struct {
	// IOTimeout bounds the silence tolerated on a link before it is
	// declared dead, and bounds each socket write. 0 means 30s.
	IOTimeout time.Duration
	// HeartbeatInterval is the period of background RingPing frames.
	// 0 means IOTimeout/4; negative disables heartbeats (then the read
	// deadline only makes sense while a collective is in flight).
	HeartbeatInterval time.Duration
	// Identity is carried in the RingHello handshake and verified by the
	// acceptor: ring formation fails unless both ends agree. Hierarchical
	// groups use it to encode the topology (e.g. local ranks per process),
	// so a process launched with a mismatched -local-ranks fails loudly at
	// formation instead of desynchronizing mid-collective.
	Identity uint32
	// Codec selects the wire encoding of collective float frames
	// (SendFloats16/RecvFloats16 are only legal on a compressed ring). It
	// rides the RingHello handshake next to Identity and is verified the
	// same way: peers disagreeing on compression — or on error feedback,
	// which is part of the codec — fail at formation instead of training
	// divergent trajectories.
	Codec Codec
	// Wrap, when set, wraps each established ring connection after the
	// handshake — the chaos layer's hook (see Chaos.Wrap).
	Wrap func(net.Conn) net.Conn
}

func (o RingOptions) withDefaults() RingOptions {
	if o.IOTimeout <= 0 {
		o.IOTimeout = 30 * time.Second
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = o.IOTimeout / 4
	}
	return o
}

// RingListener is the bound-but-unconnected half of a rank's ring
// endpoint. Binding first and connecting second lets tests use ephemeral
// ports: every rank learns all addresses before any rank dials.
type RingListener struct {
	ln net.Listener
}

// ListenRing binds a rank's collective endpoint on addr
// (use "127.0.0.1:0" for an ephemeral port).
func ListenRing(addr string) (*RingListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: ring listen %s: %w", addr, err)
	}
	return &RingListener{ln: ln}, nil
}

// Addr returns the listener's bound address.
func (l *RingListener) Addr() string { return l.ln.Addr().String() }

// Close releases the endpoint without forming a ring.
func (l *RingListener) Close() error { return l.ln.Close() }

// Ring is one rank's pair of directed ring connections: next carries this
// rank's sends to rank+1, prev carries rank−1's sends to this rank. A ring
// of size 1 has no connections and all operations are no-ops. Collectives
// on a Ring are owned by one goroutine at a time; Close must not race
// in-flight collectives, but Abort may.
type Ring struct {
	rank, size int
	next       net.Conn // to successor (nil when size == 1)
	prev       net.Conn // from predecessor (nil when size == 1)
	ioTimeout  time.Duration
	codec      Codec

	// Wire-byte counters over established links (frame header + payload,
	// heartbeats included), read via WireBytes. They make the compressed
	// codec's byte cut observable in production metrics, not just in
	// benchmarks.
	wireSent atomic.Uint64
	wireRecv atomic.Uint64

	sendData   chan []byte // framed messages awaiting the writer
	sendFree   chan []byte // recycled staging buffers
	writerDone chan struct{}
	sendErr    atomic.Pointer[error] // first write failure, surfaced on later sends

	pingStop chan struct{}
	pingDone chan struct{}

	closeMu sync.Mutex // guards conn closing (Close vs Abort)
	aborted atomic.Bool

	rd      *ringReader // buffered, byte-counted reads from prev
	recvBuf []byte      // recycled payload staging for RecvFloats
	hdr     [ringHeaderLen]byte
}

// ringReader is the predecessor link's buffered reader. Every kernel read
// carries a fresh deadline (the link timeout stays progress-based) and is
// counted into the ring's wire-byte counter at syscall granularity; reads
// at least as large as the buffer bypass it to avoid double copying.
type ringReader struct {
	conn    net.Conn
	timeout time.Duration
	count   *atomic.Uint64
	buf     []byte
	lo, hi  int
}

func (br *ringReader) Read(p []byte) (int, error) {
	if br.lo == br.hi {
		br.conn.SetReadDeadline(time.Now().Add(br.timeout))
		if len(p) >= len(br.buf) {
			n, err := br.conn.Read(p)
			br.count.Add(uint64(n))
			return n, err
		}
		n, err := br.conn.Read(br.buf)
		br.count.Add(uint64(n))
		br.lo, br.hi = 0, n
		if n == 0 {
			return 0, err
		}
	}
	n := copy(p, br.buf[br.lo:br.hi])
	br.lo += n
	return n, nil
}

// Connect forms the ring with default options and no cancellation; see
// ConnectContext. The listener is consumed: it is closed on every path,
// success or failure.
func (l *RingListener) Connect(rank int, addrs []string, timeout time.Duration) (*Ring, error) {
	return l.ConnectContext(context.Background(), rank, addrs, timeout, RingOptions{})
}

// ConnectContext forms the ring: the listener's rank dials
// addrs[(rank+1)%size] — retrying with exponential backoff and jitter
// until timeout or ctx cancellation, so processes may start in any order —
// and accepts one connection from its predecessor, verified by a RingHello
// handshake. The listener is consumed: it is closed once the ring is
// established, and on every error path.
func (l *RingListener) ConnectContext(ctx context.Context, rank int, addrs []string, timeout time.Duration, opts RingOptions) (*Ring, error) {
	size := len(addrs)
	if rank < 0 || rank >= size {
		l.ln.Close()
		return nil, fmt.Errorf("transport: ring rank %d out of range [0,%d)", rank, size)
	}
	opts = opts.withDefaults()
	r := &Ring{rank: rank, size: size, ioTimeout: opts.IOTimeout, codec: opts.Codec}
	if size == 1 {
		l.ln.Close()
		return r, nil
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	dctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	// Dial the successor in the background while accepting the
	// predecessor: with two ranks each side must do both at once.
	type dialResult struct {
		conn net.Conn
		err  error
	}
	dialed := make(chan dialResult, 1)
	go func() {
		succ := addrs[(rank+1)%size]
		conn, err := dialRing(dctx, succ, rank, opts.Identity, opts.Codec)
		dialed <- dialResult{conn: conn, err: err}
	}()

	fail := func(err error) (*Ring, error) {
		l.ln.Close()
		if d := <-dialed; d.conn != nil {
			d.conn.Close()
		}
		return nil, err
	}

	// Unblock Accept on ctx cancellation as well as on the deadline.
	if tl, ok := l.ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	stopWatch := context.AfterFunc(dctx, func() { l.ln.Close() })
	conn, err := l.ln.Accept()
	stopWatch()
	if err != nil {
		if cerr := context.Cause(ctx); cerr != nil {
			err = cerr
		}
		return fail(fmt.Errorf("transport: accepting ring predecessor: %w", err))
	}
	from, identity, codec, err := readRingHello(conn)
	if err != nil {
		conn.Close()
		return fail(err)
	}
	want := (rank - 1 + size) % size
	if from != want {
		conn.Close()
		return fail(fmt.Errorf("transport: ring rank %d accepted rank %d, want predecessor %d", rank, from, want))
	}
	if identity != opts.Identity {
		conn.Close()
		return fail(fmt.Errorf("transport: ring rank %d: predecessor %d identity %#x, want %#x (mismatched topology config?)", rank, from, identity, opts.Identity))
	}
	if codec != opts.Codec {
		conn.Close()
		return fail(fmt.Errorf("transport: ring rank %d: predecessor %d codec %v, want %v (mismatched -grad-compress config?)", rank, from, codec, opts.Codec))
	}
	r.prev = conn
	l.ln.Close()

	d := <-dialed
	if d.err != nil {
		r.prev.Close()
		return nil, d.err
	}
	r.next = d.conn

	if opts.Wrap != nil {
		r.prev = opts.Wrap(r.prev)
		r.next = opts.Wrap(r.next)
	}
	r.rd = &ringReader{
		conn:    r.prev,
		timeout: r.ioTimeout,
		count:   &r.wireRecv,
		buf:     make([]byte, ringRecvBufSize),
	}

	r.sendData = make(chan []byte, ringSendDepth)
	r.sendFree = make(chan []byte, ringSendDepth)
	for i := 0; i < ringSendDepth; i++ {
		r.sendFree <- nil // sized lazily on first send
	}
	r.writerDone = make(chan struct{})
	go r.writeLoop()
	if opts.HeartbeatInterval > 0 {
		r.pingStop = make(chan struct{})
		r.pingDone = make(chan struct{})
		go r.pingLoop(opts.HeartbeatInterval)
	}
	return r, nil
}

// dialRing dials the successor with exponential backoff and jitter until
// ctx expires, then sends the identifying RingHello.
func dialRing(ctx context.Context, succ string, rank int, identity uint32, codec Codec) (net.Conn, error) {
	var dialer net.Dialer
	backoff := ringDialBackoffBase
	var lastErr error
	for {
		conn, err := dialer.DialContext(ctx, "tcp", succ)
		if err == nil {
			// Identify ourselves so the acceptor can verify ring order.
			if err := writeRingHello(conn, rank, identity, codec); err != nil {
				conn.Close()
				return nil, err
			}
			return conn, nil
		}
		if ctx.Err() != nil {
			if lastErr == nil {
				lastErr = err
			}
			return nil, fmt.Errorf("transport: dialing ring successor %s: %w (last error: %v)", succ, context.Cause(ctx), lastErr)
		}
		lastErr = err
		// Full jitter in [backoff/2, 3*backoff/2): desynchronizes ranks
		// that all started (or all restarted) at the same instant.
		sleep := backoff/2 + time.Duration(rand.Int64N(int64(backoff)))
		select {
		case <-ctx.Done():
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > ringDialBackoffMax {
			backoff = ringDialBackoffMax
		}
	}
}

// writeLoop is the persistent writer: it drains staged frames in order and
// recycles their buffers. Every write carries a deadline, so a wedged or
// partitioned successor turns into a recorded error (surfaced on later
// sends) rather than a permanently blocked ring. On failure it keeps
// draining so stagers never block.
func (r *Ring) writeLoop() {
	defer close(r.writerDone)
	for buf := range r.sendData {
		if r.sendErr.Load() == nil {
			r.next.SetWriteDeadline(time.Now().Add(r.ioTimeout))
			if n, err := r.next.Write(buf); err != nil {
				r.wireSent.Add(uint64(n))
				werr := r.linkErr(fmt.Sprintf("send to rank %d", (r.rank+1)%r.size), err)
				r.sendErr.Store(&werr)
			} else {
				r.wireSent.Add(uint64(n))
			}
		}
		r.sendFree <- buf
	}
}

// pingLoop stages a heartbeat frame every interval so the successor's read
// deadline only expires when this rank is actually gone. It stops on Close,
// Abort, or the first send failure.
func (r *Ring) pingLoop(interval time.Duration) {
	defer close(r.pingDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-r.pingStop:
			return
		case <-tick.C:
			if r.stage(protocol.TypeRingPing, 0, nil) != nil {
				return
			}
		}
	}
}

// stage frames typ+payload into a recycled buffer and hands it to the
// writer. fill writes the payload into the staging buffer. Safe for
// concurrent use (collective sends interleave with heartbeats at frame
// granularity).
func (r *Ring) stage(typ protocol.MsgType, payloadLen int, fill func(dst []byte)) error {
	if payloadLen+1 > protocol.MaxFrameSize {
		// Caught on the sender so the receiver never misreads an
		// oversized frame as stream corruption (or a >4 GiB length as a
		// wrapped u32).
		return fmt.Errorf("transport: ring payload %d bytes exceeds frame limit %d", payloadLen, protocol.MaxFrameSize-1)
	}
	if r.aborted.Load() {
		return fmt.Errorf("transport: ring rank %d send: %w", r.rank, ErrRingAborted)
	}
	if err := r.sendErr.Load(); err != nil {
		return *err
	}
	buf := <-r.sendFree
	need := ringHeaderLen + payloadLen
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	binary.LittleEndian.PutUint32(buf, uint32(1+payloadLen))
	buf[4] = byte(typ)
	if fill != nil {
		fill(buf[ringHeaderLen:])
	}
	r.sendData <- buf
	return nil
}

// Rank returns this endpoint's ring position.
func (r *Ring) Rank() int { return r.rank }

// Size returns the number of ranks in the ring.
func (r *Ring) Size() int { return r.size }

// Codec returns the negotiated wire codec for collective float frames.
// Both ends of every link agreed on it during the handshake.
func (r *Ring) Codec() Codec { return r.codec }

// WireBytes returns the cumulative bytes written to and read from the
// ring links (frame headers + payloads + heartbeats). Safe to call
// concurrently with in-flight collectives.
func (r *Ring) WireBytes() (sent, recv uint64) {
	return r.wireSent.Load(), r.wireRecv.Load()
}

// Abort force-closes both ring connections. Unlike Close it is safe to
// call concurrently with in-flight collectives: blocked reads and writes
// fail immediately with errors wrapping ErrRingAborted. The membership
// controller uses it to unwedge ranks blocked mid-collective on a dead
// group. Close must still be called afterwards to stop the writer.
func (r *Ring) Abort() {
	if r.aborted.Swap(true) {
		return
	}
	r.closeMu.Lock()
	defer r.closeMu.Unlock()
	for _, c := range []net.Conn{r.next, r.prev} {
		if c != nil {
			c.Close()
		}
	}
}

// Close stops the heartbeat and writer goroutines and tears both ring
// connections down. It must not race an in-flight collective (use Abort to
// interrupt one first).
func (r *Ring) Close() error {
	if r.pingStop != nil {
		close(r.pingStop)
		<-r.pingDone
		r.pingStop = nil
	}
	if r.sendData != nil {
		close(r.sendData)
		<-r.writerDone
		r.sendData = nil
	}
	aborted := r.aborted.Load()
	r.closeMu.Lock()
	var first error
	for _, c := range []net.Conn{r.next, r.prev} {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil && !aborted {
			first = err
		}
	}
	r.next, r.prev = nil, nil
	r.closeMu.Unlock()
	return first
}

// linkErr classifies a socket failure on an established link: every
// failure is fatal for this ring, wrapping ErrRingAborted when Abort
// caused it and ErrLinkDead otherwise (with deadline expiry spelled out as
// peer silence, since heartbeats make the two equivalent).
func (r *Ring) linkErr(op string, err error) error {
	if r.aborted.Load() {
		return fmt.Errorf("transport: ring rank %d %s: %w", r.rank, op, ErrRingAborted)
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return fmt.Errorf("transport: ring rank %d %s: no traffic for %v (peer dead or partitioned): %w", r.rank, op, r.ioTimeout, ErrLinkDead)
	}
	return fmt.Errorf("transport: ring rank %d %s: %v: %w", r.rank, op, err, ErrLinkDead)
}

// SendFloats stages vals as a RingFloats frame for the successor. vals is
// fully copied before SendFloats returns, so the caller may overwrite it
// immediately. The byte shuffle runs through the protocol package's
// unrolled bulk codec — on gradient-slab-sized chunks it sustains several
// times the bandwidth of the scalar per-element loop.
func (r *Ring) SendFloats(vals []float32) error {
	return r.stage(protocol.TypeRingFloats, 4*len(vals), func(dst []byte) {
		protocol.EncodeF32s(dst, vals)
	})
}

// RecvFloats reads one RingFloats frame from the predecessor into dst,
// which must have exactly the sent length (collectives are lockstep, so
// lengths always agree). The payload staging buffer is recycled.
func (r *Ring) RecvFloats(dst []float32) error {
	typ, payload, err := r.readFrame()
	if err != nil {
		return err
	}
	if typ != protocol.TypeRingFloats {
		return fmt.Errorf("transport: ring rank %d: unexpected frame type %d, want floats: %w", r.rank, typ, ErrLinkDead)
	}
	if len(payload) != 4*len(dst) {
		return fmt.Errorf("transport: ring rank %d: float frame %d bytes, want %d: %w", r.rank, len(payload), 4*len(dst), ErrLinkDead)
	}
	protocol.DecodeF32s(dst, payload)
	return nil
}

// RecvFloatsAdd is RecvFloats fused with the reduce step: the incoming
// frame is accumulated element-wise into dst instead of overwriting it,
// saving the collective layer a scratch buffer and a second pass.
func (r *Ring) RecvFloatsAdd(dst []float32) error {
	typ, payload, err := r.readFrame()
	if err != nil {
		return err
	}
	if typ != protocol.TypeRingFloats {
		return fmt.Errorf("transport: ring rank %d: unexpected frame type %d, want floats: %w", r.rank, typ, ErrLinkDead)
	}
	if len(payload) != 4*len(dst) {
		return fmt.Errorf("transport: ring rank %d: float frame %d bytes, want %d: %w", r.rank, len(payload), 4*len(dst), ErrLinkDead)
	}
	protocol.AddF32s(dst, payload)
	return nil
}

// SendFloats16 stages vals as a RingFloats16 frame — 2 bytes per element,
// quantized to binary16 with round-to-nearest-even by the protocol
// package's bulk codec. Like SendFloats, vals is fully copied (and
// encoded) before SendFloats16 returns. Values already representable in
// binary16 travel losslessly, which is what keeps forwarded all-gather
// chunks identical on every rank.
func (r *Ring) SendFloats16(vals []float32) error {
	return r.stage(protocol.TypeRingFloats16, 2*len(vals), func(dst []byte) {
		protocol.EncodeF16s(dst, vals)
	})
}

// RecvFloats16 reads one RingFloats16 frame from the predecessor,
// expanding into dst, which must have exactly the sent length. A frame of
// the wrong type (e.g. a peer that fell back to full-width sends) is a
// protocol violation and kills the link.
func (r *Ring) RecvFloats16(dst []float32) error {
	typ, payload, err := r.readFrame()
	if err != nil {
		return err
	}
	if typ != protocol.TypeRingFloats16 {
		return fmt.Errorf("transport: ring rank %d: unexpected frame type %d, want floats16: %w", r.rank, typ, ErrLinkDead)
	}
	if len(payload) != 2*len(dst) {
		return fmt.Errorf("transport: ring rank %d: float16 frame %d bytes, want %d: %w", r.rank, len(payload), 2*len(dst), ErrLinkDead)
	}
	protocol.DecodeF16s(dst, payload)
	return nil
}

// RecvFloats16Add is RecvFloats16 fused with the reduce step: the decoded
// frame is accumulated element-wise into dst (one decode+add pass through
// the F16C kernel where present).
func (r *Ring) RecvFloats16Add(dst []float32) error {
	typ, payload, err := r.readFrame()
	if err != nil {
		return err
	}
	if typ != protocol.TypeRingFloats16 {
		return fmt.Errorf("transport: ring rank %d: unexpected frame type %d, want floats16: %w", r.rank, typ, ErrLinkDead)
	}
	if len(payload) != 2*len(dst) {
		return fmt.Errorf("transport: ring rank %d: float16 frame %d bytes, want %d: %w", r.rank, len(payload), 2*len(dst), ErrLinkDead)
	}
	protocol.AddF16s(dst, payload)
	return nil
}

// SendToken stages a zero-payload barrier token for the successor.
func (r *Ring) SendToken() error {
	return r.stage(protocol.TypeRingToken, 0, nil)
}

// RecvToken reads one barrier token from the predecessor.
func (r *Ring) RecvToken() error {
	typ, payload, err := r.readFrame()
	if err != nil {
		return err
	}
	if typ != protocol.TypeRingToken || len(payload) != 0 {
		return fmt.Errorf("transport: ring rank %d: unexpected frame type %d, want token: %w", r.rank, typ, ErrLinkDead)
	}
	return nil
}

// readFrame reads one [length | type | payload] frame from the predecessor
// into the recycled receive buffer, discarding heartbeat frames. Each read
// carries a deadline: a predecessor silent for IOTimeout (no data, no
// pings) is declared dead.
func (r *Ring) readFrame() (protocol.MsgType, []byte, error) {
	for {
		if _, err := io.ReadFull(r.rd, r.hdr[:]); err != nil {
			return 0, nil, r.linkErr("recv header", err)
		}
		size := binary.LittleEndian.Uint32(r.hdr[:4])
		if size == 0 || size > protocol.MaxFrameSize {
			return 0, nil, fmt.Errorf("transport: ring rank %d: frame size %d: %w", r.rank, size, ErrLinkDead)
		}
		typ := protocol.MsgType(r.hdr[4])
		n := int(size) - 1
		if typ == protocol.TypeRingPing {
			if n != 0 {
				return 0, nil, fmt.Errorf("transport: ring rank %d: ping frame with %d-byte payload: %w", r.rank, n, ErrLinkDead)
			}
			continue
		}
		payload, err := r.readPayload(n)
		if err != nil {
			return 0, nil, err
		}
		return typ, payload, nil
	}
}

// readPayload reads n payload bytes into the recycled receive buffer in
// ringReadChunk pieces, refreshing the read deadline per piece (the
// timeout is progress-based) and growing the buffer only as bytes actually
// arrive — a lying length prefix cannot force a large up-front allocation.
func (r *Ring) readPayload(n int) ([]byte, error) {
	buf := r.recvBuf
	if cap(buf) >= n {
		buf = buf[:n]
	} else {
		buf = buf[:cap(buf)]
	}
	for have := 0; have < n; {
		want := have + ringReadChunk
		if want > n {
			want = n
		}
		if want > cap(buf) {
			newCap := 2 * cap(buf)
			if newCap < want {
				newCap = want
			}
			if newCap > n {
				newCap = n
			}
			nb := make([]byte, newCap)
			copy(nb, buf[:have])
			buf = nb
		}
		buf = buf[:want]
		if _, err := io.ReadFull(r.rd, buf[have:want]); err != nil {
			return nil, r.linkErr("recv payload", err)
		}
		have = want
	}
	r.recvBuf = buf
	return buf[:n], nil
}

// writeRingHello sends the one-shot rank handshake on a dialed connection:
// the dialer's ring rank, its topology identity, and its wire codec.
func writeRingHello(conn net.Conn, rank int, identity uint32, codec Codec) error {
	var buf [ringHeaderLen + 12]byte
	binary.LittleEndian.PutUint32(buf[:], 13)
	buf[4] = byte(protocol.TypeRingHello)
	binary.LittleEndian.PutUint32(buf[ringHeaderLen:], uint32(rank))
	binary.LittleEndian.PutUint32(buf[ringHeaderLen+4:], identity)
	binary.LittleEndian.PutUint32(buf[ringHeaderLen+8:], uint32(codec))
	conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	defer conn.SetWriteDeadline(time.Time{})
	if _, err := conn.Write(buf[:]); err != nil {
		return fmt.Errorf("transport: ring hello: %w", err)
	}
	return nil
}

// readRingHello reads the rank+identity+codec handshake from an accepted
// connection.
func readRingHello(conn net.Conn) (rank int, identity uint32, codec Codec, err error) {
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	defer conn.SetReadDeadline(time.Time{})
	var buf [ringHeaderLen + 12]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return 0, 0, 0, fmt.Errorf("transport: reading ring hello: %w", err)
	}
	if binary.LittleEndian.Uint32(buf[:4]) != 13 || protocol.MsgType(buf[4]) != protocol.TypeRingHello {
		return 0, 0, 0, fmt.Errorf("transport: malformed ring hello")
	}
	rank = int(binary.LittleEndian.Uint32(buf[ringHeaderLen:]))
	identity = binary.LittleEndian.Uint32(buf[ringHeaderLen+4:])
	codec = Codec(binary.LittleEndian.Uint32(buf[ringHeaderLen+8:]))
	return rank, identity, codec, nil
}
