package transport

import (
	"sync"
	"time"
)

// Watchdog tracks client liveness. The server beats it on every received
// message (including heartbeats); the launcher polls Expired to find
// unresponsive clients and "properly kill and restart faulty ones" (§3.1).
type Watchdog struct {
	mu      sync.Mutex
	last    map[int32]time.Time
	timeout time.Duration
	now     func() time.Time // injectable clock for tests
}

// NewWatchdog builds a watchdog with the given liveness timeout.
func NewWatchdog(timeout time.Duration) *Watchdog {
	return &Watchdog{
		last:    make(map[int32]time.Time),
		timeout: timeout,
		now:     time.Now,
	}
}

// SetClock overrides the time source; tests use a fake clock.
func (w *Watchdog) SetClock(now func() time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.now = now
}

// Beat records activity from a client.
func (w *Watchdog) Beat(clientID int32) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.last[clientID] = w.now()
}

// Remove forgets a client (after Goodbye or a deliberate kill).
func (w *Watchdog) Remove(clientID int32) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.last, clientID)
}

// Watched returns the number of clients currently tracked.
func (w *Watchdog) Watched() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.last)
}

// Expired returns the clients whose last activity is older than the
// timeout. Expired clients are removed from tracking, so each expiry is
// reported once; callers restart the client, which re-registers it via
// Beat.
func (w *Watchdog) Expired() []int32 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []int32
	now := w.now()
	for id, last := range w.last {
		if now.Sub(last) > w.timeout {
			out = append(out, id)
			delete(w.last, id)
		}
	}
	return out
}
