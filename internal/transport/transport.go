// Package transport provides the messaging layer between ensemble clients
// and the training server: length-framed protocol messages over TCP, one
// listener per server rank, and client-side fan-out connections to every
// rank. It replaces the paper's ZMQ transport (§3.1) while keeping its
// properties: dynamic N×M client/server connections, non-blocking ingest
// into per-rank queues, and client failure detection via liveness
// timeouts.
//
// The receive path is zero-copy: each connection reader decodes frames
// through a protocol.Reader, so TimeStep envelopes carry leased
// *protocol.TimeStep payloads that the consumer must hand back with
// protocol.RecycleTimeStep once copied out. The send path buffers frames
// in per-rank bufio writers with explicit flush points, so a burst of
// messages (hello + first steps, heartbeat + time step) coalesces into few
// write syscalls and the frame encoding reuses a per-rank scratch buffer.
//
// # Failure model
//
// Client links are supervised by the server's Watchdog: any received
// message beats it, and the launcher kills and restarts clients that go
// silent. Inter-rank ring links (Ring) are supervised by link-level
// heartbeats and IO deadlines: a link silent for RingOptions.IOTimeout is
// declared dead and every ring operation fails with an error wrapping
// ErrLinkDead (never a panic); deliberate teardown during group
// reconfiguration uses Ring.Abort and surfaces as ErrRingAborted. The ddp
// package classifies these errors (transient connection-establishment
// faults retry with backoff; established-link faults are fatal for the
// ring epoch), and the elastic package re-forms the group over survivors.
// The Chaos wrapper injects deterministic, seeded faults (drop / delay /
// duplicate / partition / kill-after-N-writes) into both link kinds for
// the chaos test suite; set MELISSA_CHAOS_SEED to replay a CI failure.
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"melissa/internal/protocol"
)

// Envelope is a decoded message tagged with its connection origin.
// TimeStep messages arrive as leased *protocol.TimeStep values (see the
// package comment); everything else arrives by value.
type Envelope struct {
	Msg  protocol.Message
	Addr string
}

// RankListener accepts client connections for one server rank, decoding
// frames into the Incoming channel. The channel is buffered: it plays the
// role of the ZMQ receive queue in which "newly produced data sent by the
// clients still accumulate" while the trainer holds the buffer lock (§4.4).
type RankListener struct {
	ln       net.Listener
	incoming chan Envelope

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// Listen starts a rank listener on addr (use "127.0.0.1:0" to pick a free
// port). queueLen sizes the ingest channel.
func Listen(addr string, queueLen int) (*RankListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	if queueLen <= 0 {
		queueLen = 1024
	}
	l := &RankListener{
		ln:       ln,
		incoming: make(chan Envelope, queueLen),
		conns:    make(map[net.Conn]struct{}),
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listener's bound address.
func (l *RankListener) Addr() string { return l.ln.Addr().String() }

// Incoming returns the stream of decoded messages from every connected
// client. It is closed after Close once all connection readers exit.
func (l *RankListener) Incoming() <-chan Envelope { return l.incoming }

// Close stops accepting, closes every client connection, and closes the
// Incoming channel once drained.
func (l *RankListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.ln.Close()
	for c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
	go func() {
		l.wg.Wait()
		close(l.incoming)
	}()
	return err
}

func (l *RankListener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = struct{}{}
		l.mu.Unlock()
		l.wg.Add(1)
		go l.readLoop(conn)
	}
}

func (l *RankListener) readLoop(conn net.Conn) {
	defer l.wg.Done()
	defer func() {
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
		conn.Close()
	}()
	addr := conn.RemoteAddr().String()
	rd := protocol.NewReader(conn)
	for {
		msg, err := rd.Next()
		if err != nil {
			// EOF on client disconnect, decode errors on corruption:
			// either way this connection is done; the launcher's
			// watchdog handles the consequences.
			return
		}
		l.mu.Lock()
		closed := l.closed
		l.mu.Unlock()
		if closed {
			return
		}
		l.incoming <- Envelope{Msg: msg, Addr: addr}
	}
}

// clientWriterSize is the per-rank send buffer. One heat-equation TimeStep
// frame is a few KiB, so a handful of frames coalesce per flush; frames
// larger than the buffer are written through by bufio without copying.
const clientWriterSize = 1 << 15

// rankConn is one buffered connection to a server rank: the socket, its
// bufio writer, and a recycled frame-encoding scratch buffer, all guarded
// by one mutex so concurrent senders never interleave frames.
type rankConn struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	enc  []byte
}

// ClientConn is a client's fan-out to all server ranks. The paper's clients
// connect "to all the ranks of the server" and spread time steps across
// them round-robin (§3.2.2). Rank indices are positions in the original
// address list and never move: with an elastic server group the address
// list is the initial membership's listeners, a dead rank's position stays
// addressable (sends fail until Redial succeeds), and the round-robin data
// distribution stays aligned with the server's reception accounting.
type ClientConn struct {
	addrs []string
	wrap  func(net.Conn) net.Conn
	ranks []rankConn
}

// Dial connects to every rank address. On failure it closes any partial
// connections and returns the error.
func Dial(addrs []string, timeout time.Duration) (*ClientConn, error) {
	if len(addrs) == 0 {
		return nil, errors.New("transport: no rank addresses")
	}
	c := &ClientConn{addrs: append([]string(nil), addrs...), ranks: make([]rankConn, len(addrs))}
	for i, addr := range addrs {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: dial rank %d (%s): %w", i, addr, err)
		}
		c.ranks[i].conn = conn
		c.ranks[i].bw = bufio.NewWriterSize(conn, clientWriterSize)
	}
	return c, nil
}

// DialAvailable connects to every reachable rank address, leaving
// unreachable ranks down (their slots stay addressable and Redial can
// bring them up later), and returns the indices of the ranks it could not
// reach. It fails only when no rank is reachable. Reconnect-mode clients
// use it so a simulation launched while part of an elastic server group is
// dead or re-forming still joins the survivors instead of failing fast.
func DialAvailable(addrs []string, timeout time.Duration) (*ClientConn, []int, error) {
	if len(addrs) == 0 {
		return nil, nil, errors.New("transport: no rank addresses")
	}
	c := &ClientConn{addrs: append([]string(nil), addrs...), ranks: make([]rankConn, len(addrs))}
	var down []int
	for i, addr := range addrs {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			down = append(down, i)
			continue
		}
		c.ranks[i].conn = conn
		c.ranks[i].bw = bufio.NewWriterSize(conn, clientWriterSize)
	}
	if len(down) == len(addrs) {
		c.Close()
		return nil, nil, fmt.Errorf("transport: no server rank reachable (%d addresses)", len(addrs))
	}
	return c, down, nil
}

// MarkDown closes the rank's connection (if any) and leaves the slot
// empty; subsequent sends to the rank fail until Redial succeeds. Used by
// the client's reconnect policy after a send error.
func (c *ClientConn) MarkDown(rank int) {
	rc, err := c.rank(rank)
	if err != nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.conn != nil {
		rc.conn.Close()
		rc.conn = nil
	}
}

// Redial re-establishes the rank's connection to its original address,
// applying the connection wrapper Dial was configured with. Frames
// buffered for the dead connection are discarded — the server's dedup log
// makes the re-sent stream idempotent.
func (c *ClientConn) Redial(rank int, timeout time.Duration) error {
	rc, err := c.rank(rank)
	if err != nil {
		return err
	}
	conn, err := net.DialTimeout("tcp", c.addrs[rank], timeout)
	if err != nil {
		return fmt.Errorf("transport: redial rank %d (%s): %w", rank, c.addrs[rank], err)
	}
	if c.wrap != nil {
		conn = c.wrap(conn)
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.conn != nil {
		rc.conn.Close()
	}
	rc.conn = conn
	if rc.bw == nil {
		rc.bw = bufio.NewWriterSize(conn, clientWriterSize)
	} else {
		rc.bw.Reset(conn)
	}
	return nil
}

// Up reports whether the rank currently has a live connection.
func (c *ClientConn) Up(rank int) bool {
	rc, err := c.rank(rank)
	if err != nil {
		return false
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.conn != nil
}

// Ranks returns the number of connected server ranks.
func (c *ClientConn) Ranks() int { return len(c.ranks) }

// rank validates and returns the rank's connection record.
func (c *ClientConn) rank(rank int) (*rankConn, error) {
	if rank < 0 || rank >= len(c.ranks) {
		return nil, fmt.Errorf("transport: rank %d out of range [0,%d)", rank, len(c.ranks))
	}
	return &c.ranks[rank], nil
}

// Send frames msg into the rank's write buffer and flushes it to the
// socket. Safe for concurrent use; writes to the same rank are serialized
// to keep frames intact.
func (c *ClientConn) Send(rank int, msg protocol.Message) error {
	return c.send(rank, msg, true)
}

// SendBuffered frames msg into the rank's write buffer without flushing,
// so a burst of messages coalesces into few syscalls. The caller must
// eventually Flush (or Send) on the same rank for the data to reach the
// server.
func (c *ClientConn) SendBuffered(rank int, msg protocol.Message) error {
	return c.send(rank, msg, false)
}

func (c *ClientConn) send(rank int, msg protocol.Message, flush bool) error {
	rc, err := c.rank(rank)
	if err != nil {
		return err
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.conn == nil {
		return fmt.Errorf("transport: rank %d connection closed", rank)
	}
	rc.enc = protocol.AppendEncode(rc.enc[:0], msg)
	if _, err := rc.bw.Write(rc.enc); err != nil {
		return err
	}
	if flush {
		return rc.bw.Flush()
	}
	return nil
}

// Flush pushes the rank's buffered frames to the socket.
func (c *ClientConn) Flush(rank int) error {
	rc, err := c.rank(rank)
	if err != nil {
		return err
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.conn == nil {
		return fmt.Errorf("transport: rank %d connection closed", rank)
	}
	return rc.bw.Flush()
}

// FlushAll flushes every rank's buffered frames.
func (c *ClientConn) FlushAll() error {
	for rank := range c.ranks {
		if err := c.Flush(rank); err != nil {
			return err
		}
	}
	return nil
}

// SendAll writes msg to every rank (Hello and Goodbye go to all ranks) and
// flushes each connection.
func (c *ClientConn) SendAll(msg protocol.Message) error {
	for rank := range c.ranks {
		if err := c.Send(rank, msg); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes every rank connection.
func (c *ClientConn) Close() error {
	var first error
	for i := range c.ranks {
		rc := &c.ranks[i]
		rc.mu.Lock()
		if rc.conn != nil {
			if rc.bw != nil {
				if err := rc.bw.Flush(); err != nil && first == nil {
					first = err
				}
			}
			if err := rc.conn.Close(); err != nil && first == nil {
				first = err
			}
			rc.conn = nil
		}
		rc.mu.Unlock()
	}
	return first
}
