// Package transport provides the messaging layer between ensemble clients
// and the training server: length-framed protocol messages over TCP, one
// listener per server rank, and client-side fan-out connections to every
// rank. It replaces the paper's ZMQ transport (§3.1) while keeping its
// properties: dynamic N×M client/server connections, non-blocking ingest
// into per-rank queues, and client failure detection via liveness
// timeouts.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"melissa/internal/protocol"
)

// Envelope is a decoded message tagged with its connection origin.
type Envelope struct {
	Msg  protocol.Message
	Addr string
}

// RankListener accepts client connections for one server rank, decoding
// frames into the Incoming channel. The channel is buffered: it plays the
// role of the ZMQ receive queue in which "newly produced data sent by the
// clients still accumulate" while the trainer holds the buffer lock (§4.4).
type RankListener struct {
	ln       net.Listener
	incoming chan Envelope

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// Listen starts a rank listener on addr (use "127.0.0.1:0" to pick a free
// port). queueLen sizes the ingest channel.
func Listen(addr string, queueLen int) (*RankListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	if queueLen <= 0 {
		queueLen = 1024
	}
	l := &RankListener{
		ln:       ln,
		incoming: make(chan Envelope, queueLen),
		conns:    make(map[net.Conn]struct{}),
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listener's bound address.
func (l *RankListener) Addr() string { return l.ln.Addr().String() }

// Incoming returns the stream of decoded messages from every connected
// client. It is closed after Close once all connection readers exit.
func (l *RankListener) Incoming() <-chan Envelope { return l.incoming }

// Close stops accepting, closes every client connection, and closes the
// Incoming channel once drained.
func (l *RankListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.ln.Close()
	for c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
	go func() {
		l.wg.Wait()
		close(l.incoming)
	}()
	return err
}

func (l *RankListener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = struct{}{}
		l.mu.Unlock()
		l.wg.Add(1)
		go l.readLoop(conn)
	}
}

func (l *RankListener) readLoop(conn net.Conn) {
	defer l.wg.Done()
	defer func() {
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
		conn.Close()
	}()
	addr := conn.RemoteAddr().String()
	for {
		msg, err := protocol.Read(conn)
		if err != nil {
			// EOF on client disconnect, decode errors on corruption:
			// either way this connection is done; the launcher's
			// watchdog handles the consequences.
			return
		}
		l.mu.Lock()
		closed := l.closed
		l.mu.Unlock()
		if closed {
			return
		}
		l.incoming <- Envelope{Msg: msg, Addr: addr}
	}
}

// ClientConn is a client's fan-out to all server ranks. The paper's clients
// connect "to all the ranks of the server" and spread time steps across
// them round-robin (§3.2.2).
type ClientConn struct {
	conns []net.Conn
	locks []sync.Mutex
}

// Dial connects to every rank address. On failure it closes any partial
// connections and returns the error.
func Dial(addrs []string, timeout time.Duration) (*ClientConn, error) {
	if len(addrs) == 0 {
		return nil, errors.New("transport: no rank addresses")
	}
	c := &ClientConn{conns: make([]net.Conn, len(addrs)), locks: make([]sync.Mutex, len(addrs))}
	for i, addr := range addrs {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: dial rank %d (%s): %w", i, addr, err)
		}
		c.conns[i] = conn
	}
	return c, nil
}

// Ranks returns the number of connected server ranks.
func (c *ClientConn) Ranks() int { return len(c.conns) }

// Send writes msg to the given rank. Safe for concurrent use; writes to the
// same rank are serialized to keep frames intact.
func (c *ClientConn) Send(rank int, msg protocol.Message) error {
	if rank < 0 || rank >= len(c.conns) {
		return fmt.Errorf("transport: rank %d out of range [0,%d)", rank, len(c.conns))
	}
	if c.conns[rank] == nil {
		return fmt.Errorf("transport: rank %d connection closed", rank)
	}
	c.locks[rank].Lock()
	defer c.locks[rank].Unlock()
	return protocol.Write(c.conns[rank], msg)
}

// SendAll writes msg to every rank (Hello and Goodbye go to all ranks).
func (c *ClientConn) SendAll(msg protocol.Message) error {
	for rank := range c.conns {
		if err := c.Send(rank, msg); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every rank connection.
func (c *ClientConn) Close() error {
	var first error
	for i, conn := range c.conns {
		if conn == nil {
			continue
		}
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
		c.conns[i] = nil
	}
	return first
}
