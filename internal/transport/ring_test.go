package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math"
	"net"
	"strings"
	"sync"
	"time"

	"testing"

	"melissa/internal/protocol"
)

// byteConn is a net.Conn whose read side replays a fixed byte stream —
// the harness for feeding readFrame arbitrary wire bytes without sockets.
// Reads return io.EOF once the stream is exhausted; writes are discarded.
type byteConn struct {
	r *bytes.Reader
}

func newByteConn(data []byte) *byteConn { return &byteConn{r: bytes.NewReader(data)} }

func (c *byteConn) Read(b []byte) (int, error)         { return c.r.Read(b) }
func (c *byteConn) Write(b []byte) (int, error)        { return len(b), nil }
func (c *byteConn) Close() error                       { return nil }
func (c *byteConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *byteConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *byteConn) SetDeadline(t time.Time) error      { return nil }
func (c *byteConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *byteConn) SetWriteDeadline(t time.Time) error { return nil }

// frameReaderOver builds a receive-only Ring over a canned byte stream.
func frameReaderOver(data []byte) *Ring {
	r := &Ring{
		rank:      0,
		size:      2,
		prev:      newByteConn(data),
		ioTimeout: time.Second,
	}
	r.rd = &ringReader{
		conn:    r.prev,
		timeout: r.ioTimeout,
		count:   &r.wireRecv,
		buf:     make([]byte, ringRecvBufSize),
	}
	return r
}

// ringFrame encodes one [length | type | payload] wire frame.
func ringFrame(typ protocol.MsgType, payload []byte) []byte {
	buf := make([]byte, ringHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(1+len(payload)))
	buf[4] = byte(typ)
	copy(buf[ringHeaderLen:], payload)
	return buf
}

func TestRingFrameRoundTrip(t *testing.T) {
	vals := []float32{1.5, -2.25, 3.75}
	payload := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(payload[4*i:], math.Float32bits(v))
	}
	stream := append(ringFrame(protocol.TypeRingPing, nil), ringFrame(protocol.TypeRingFloats, payload)...)
	stream = append(stream, ringFrame(protocol.TypeRingToken, nil)...)

	r := frameReaderOver(stream)
	dst := make([]float32, len(vals))
	if err := r.RecvFloats(dst); err != nil { // the leading ping is skipped
		t.Fatal(err)
	}
	for i, v := range vals {
		if dst[i] != v {
			t.Fatalf("float %d: got %v want %v", i, dst[i], v)
		}
	}
	if err := r.RecvToken(); err != nil {
		t.Fatal(err)
	}
	if err := r.RecvToken(); !errors.Is(err, ErrLinkDead) {
		t.Fatalf("EOF after stream end: got %v, want ErrLinkDead", err)
	}
}

func TestRingFrameMalformed(t *testing.T) {
	oversized := make([]byte, ringHeaderLen)
	binary.LittleEndian.PutUint32(oversized, uint32(protocol.MaxFrameSize+1))
	oversized[4] = byte(protocol.TypeRingFloats)

	zeroSize := make([]byte, ringHeaderLen)
	zeroSize[4] = byte(protocol.TypeRingFloats)

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated header", []byte{5, 0}},
		{"zero size", zeroSize},
		{"oversized", oversized},
		{"truncated payload", ringFrame(protocol.TypeRingFloats, make([]byte, 64))[:ringHeaderLen+10]},
		{"ping with payload", ringFrame(protocol.TypeRingPing, []byte{1, 2, 3})},
		{"garbage", []byte("this is not a ring frame at all, not even close......")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := frameReaderOver(tc.data)
			if _, _, err := r.readFrame(); !errors.Is(err, ErrLinkDead) {
				t.Fatalf("readFrame(%q) err = %v, want ErrLinkDead", tc.data, err)
			}
		})
	}
}

// TestRingFrameLyingLengthBounded pins the anti-DoS property: a header
// claiming a huge payload with few bytes behind it must error without the
// receiver allocating anywhere near the claimed size up front.
func TestRingFrameLyingLengthBounded(t *testing.T) {
	lying := make([]byte, ringHeaderLen, ringHeaderLen+16)
	binary.LittleEndian.PutUint32(lying, uint32(512<<20)) // claims 512 MiB
	lying[4] = byte(protocol.TypeRingFloats)
	lying = append(lying, make([]byte, 16)...) // only 16 bytes follow

	r := frameReaderOver(lying)
	if _, _, err := r.readFrame(); !errors.Is(err, ErrLinkDead) {
		t.Fatalf("lying length: err = %v, want ErrLinkDead", err)
	}
	if cap(r.recvBuf) > 2*ringReadChunk {
		t.Fatalf("receive buffer grew to %d for a lying prefix; chunked reads should bound it near %d", cap(r.recvBuf), ringReadChunk)
	}
}

// FuzzRingFrame throws arbitrary bytes at the ring frame reader: it must
// return frames or ErrLinkDead-wrapped errors, never panic, never yield a
// payload beyond the protocol bound, and never allocate far beyond the
// bytes actually present (a lying length prefix is chunk-bounded).
func FuzzRingFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(ringFrame(protocol.TypeRingToken, nil))
	f.Add(ringFrame(protocol.TypeRingFloats, []byte{1, 2, 3, 4, 5, 6, 7, 8}))
	f.Add(append(ringFrame(protocol.TypeRingPing, nil), ringFrame(protocol.TypeRingToken, nil)...))
	f.Add(ringFrame(protocol.TypeRingFloats, make([]byte, 64))[:ringHeaderLen+10])
	lying := make([]byte, ringHeaderLen)
	binary.LittleEndian.PutUint32(lying, uint32(protocol.MaxFrameSize))
	lying[4] = byte(protocol.TypeRingFloats)
	f.Add(lying)
	f.Add([]byte("garbage garbage garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := frameReaderOver(data)
		for {
			typ, payload, err := r.readFrame()
			if err != nil {
				if !errors.Is(err, ErrLinkDead) {
					t.Fatalf("non-link error from readFrame: %v", err)
				}
				break
			}
			if typ == protocol.TypeRingPing {
				t.Fatal("readFrame surfaced a ping frame")
			}
			if len(payload) > len(data) {
				t.Fatalf("payload %d bytes from a %d-byte stream", len(payload), len(data))
			}
		}
		if cap(r.recvBuf) > len(data)+2*ringReadChunk {
			t.Fatalf("receive buffer %d for %d input bytes", cap(r.recvBuf), len(data))
		}
	})
}

// TestChaosDeterministicStreams pins replayability: two Chaos values with
// the same seed and connection label make identical drop decisions, and a
// different label yields an independent stream.
func TestChaosDeterministicStreams(t *testing.T) {
	pattern := func(seed uint64, label string) []bool {
		var sink countConn
		conn := NewChaos(ChaosConfig{Seed: seed, DropRate: 0.5}).WrapLabeled(label, &sink)
		out := make([]bool, 200)
		for i := range out {
			before := sink.writes
			if _, err := conn.Write([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			out[i] = sink.writes > before // true when the write got through
		}
		return out
	}
	a := pattern(7, "link")
	b := pattern(7, "link")
	c := pattern(7, "other")
	if !equalBools(a, b) {
		t.Fatal("same seed+label produced different drop patterns")
	}
	if equalBools(a, c) {
		t.Fatal("different labels produced identical drop patterns")
	}
}

// countConn counts writes that reach the underlying connection.
type countConn struct {
	byteConn
	writes int
}

func (c *countConn) Write(b []byte) (int, error) {
	c.writes++
	return len(b), nil
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRingIdentityMismatch: ring formation must fail loudly when the two
// ends of a link were launched with different topology identities (e.g.
// mismatched -local-ranks), instead of forming a ring that desynchronizes
// mid-collective.
func TestRingIdentityMismatch(t *testing.T) {
	l0, err := ListenRing("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l1, err := ListenRing("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{l0.Addr(), l1.Addr()}
	identities := []uint32{1, 2} // rank 0 thinks local=1, rank 1 thinks local=2
	rings := make([]*Ring, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r, l := range []*RingListener{l0, l1} {
		wg.Add(1)
		go func(rank int, l *RingListener) {
			defer wg.Done()
			rings[rank], errs[rank] = l.ConnectContext(context.Background(), rank, addrs,
				3*time.Second, RingOptions{Identity: identities[rank]})
		}(r, l)
	}
	wg.Wait()
	for r := range rings {
		if rings[r] != nil {
			rings[r].Close()
		}
	}
	if errs[0] == nil && errs[1] == nil {
		t.Fatal("mismatched identities formed a ring")
	}
	for r, err := range errs {
		if err != nil && !strings.Contains(err.Error(), "identity") {
			t.Fatalf("rank %d failed with %v, want an identity mismatch error", r, err)
		}
	}
}

// TestRingFloats16RoundTrip exercises the compressed frame path over a
// canned stream: a RingFloats16 frame decodes to the quantized values, the
// fused RecvFloats16Add accumulates instead of overwriting, and a
// full-width frame arriving where a compressed one is expected (codec
// desync) kills the link.
func TestRingFloats16RoundTrip(t *testing.T) {
	vals := []float32{1.5, -2.25, 3.75, 0.1}
	payload := make([]byte, 2*len(vals))
	protocol.EncodeF16s(payload, vals)
	stream := append(ringFrame(protocol.TypeRingFloats16, payload), ringFrame(protocol.TypeRingFloats16, payload)...)
	stream = append(stream, ringFrame(protocol.TypeRingFloats, make([]byte, 4*len(vals)))...)

	r := frameReaderOver(stream)
	dst := make([]float32, len(vals))
	if err := r.RecvFloats16(dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if want := protocol.RoundF16(v); dst[i] != want {
			t.Fatalf("float %d: got %v want %v", i, dst[i], want)
		}
	}
	if err := r.RecvFloats16Add(dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if want := protocol.RoundF16(v) * 2; dst[i] != want {
			t.Fatalf("accumulated float %d: got %v want %v", i, dst[i], want)
		}
	}
	if err := r.RecvFloats16(dst); !errors.Is(err, ErrLinkDead) {
		t.Fatalf("full-width frame on a compressed receive: got %v, want ErrLinkDead", err)
	}
}

// TestRingCodecMismatch: ring formation must fail loudly when the two ends
// of a link were launched with different wire codecs (e.g. mismatched
// -grad-compress), instead of forming a ring whose ranks would train
// different trajectories.
func TestRingCodecMismatch(t *testing.T) {
	l0, err := ListenRing("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l1, err := ListenRing("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{l0.Addr(), l1.Addr()}
	codecs := []Codec{CodecF32, CodecF16}
	rings := make([]*Ring, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r, l := range []*RingListener{l0, l1} {
		wg.Add(1)
		go func(rank int, l *RingListener) {
			defer wg.Done()
			rings[rank], errs[rank] = l.ConnectContext(context.Background(), rank, addrs,
				3*time.Second, RingOptions{Codec: codecs[rank]})
		}(r, l)
	}
	wg.Wait()
	for r := range rings {
		if rings[r] != nil {
			rings[r].Close()
		}
	}
	if errs[0] == nil && errs[1] == nil {
		t.Fatal("mismatched codecs formed a ring")
	}
	for r, err := range errs {
		if err != nil && !strings.Contains(err.Error(), "codec") {
			t.Fatalf("rank %d failed with %v, want a codec mismatch error", r, err)
		}
	}
}

// TestChaosF16Ring drives a compressed 2-rank ring through the chaos layer
// with heavy deterministic frame drops: the ranks must fail with a link
// error (starved read deadline) rather than wedge or panic — the same
// failure contract the full-width path honors, which is what lets the
// elastic runtime treat compressed rings identically during re-formation.
func TestChaosF16Ring(t *testing.T) {
	chaos := NewChaos(ChaosConfig{Seed: 42, DropRate: 0.3})
	l0, err := ListenRing("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l1, err := ListenRing("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{l0.Addr(), l1.Addr()}
	opts := RingOptions{
		Codec:             CodecF16,
		IOTimeout:         300 * time.Millisecond,
		HeartbeatInterval: -1, // only data keeps the link alive
		Wrap:              chaos.Wrap,
	}
	rings := make([]*Ring, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r, l := range []*RingListener{l0, l1} {
		wg.Add(1)
		go func(rank int, l *RingListener) {
			defer wg.Done()
			rings[rank], errs[rank] = l.ConnectContext(context.Background(), rank, addrs, 5*time.Second, opts)
		}(r, l)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d formation: %v", r, err)
		}
	}
	defer rings[0].Close()
	defer rings[1].Close()

	// Pump compressed frames until the drops starve a receiver. Every
	// rank must observe a link error within a bounded number of rounds.
	pump := func(r *Ring) error {
		vals := make([]float32, 256)
		for i := 0; i < 10000; i++ {
			if err := r.SendFloats16(vals); err != nil {
				return err
			}
			if err := r.RecvFloats16(vals); err != nil {
				return err
			}
		}
		return nil
	}
	for r := range rings {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = pump(rings[rank])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d survived 10000 rounds at 30%% frame drop", r)
		}
		if !errors.Is(err, ErrLinkDead) {
			t.Fatalf("rank %d failed with %v, want ErrLinkDead", r, err)
		}
	}
}
