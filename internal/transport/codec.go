package transport

import "fmt"

// Codec selects the wire encoding of collective float frames on a ring.
// It is negotiated in the ring handshake (RingOptions.Codec): both ends of
// every link must agree, or formation fails like an identity mismatch —
// a codec disagreement would not desynchronize the frame stream (frame
// types distinguish the encodings), but it would silently train different
// trajectories on different ranks, which is strictly worse.
//
// The error-feedback distinction (CodecF16 vs CodecF16Raw) lives in the
// codec enum for the same reason: whether residuals are carried changes
// the training trajectory, so two processes disagreeing about it must be
// rejected at connect, not discovered by divergence.
type Codec uint8

const (
	// CodecF32 ships raw float32 — the exact, default wire format.
	CodecF32 Codec = iota
	// CodecF16 compresses collective chunks to IEEE 754 binary16 on the
	// wire, with the collective layer carrying per-slab error-feedback
	// residuals so quantization error is re-injected into the next step
	// instead of lost.
	CodecF16
	// CodecF16Raw is CodecF16 without error feedback — the ablation mode:
	// quantization error is simply dropped.
	CodecF16Raw
)

// Compressed reports whether float frames are reduced below 4 bytes per
// element on the wire.
func (c Codec) Compressed() bool { return c == CodecF16 || c == CodecF16Raw }

// String returns the flag-friendly name (ParseCodec's input).
func (c Codec) String() string {
	switch c {
	case CodecF32:
		return "none"
	case CodecF16:
		return "f16"
	case CodecF16Raw:
		return "f16-noef"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// ParseCodec maps a -grad-compress flag value to a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "none", "f32":
		return CodecF32, nil
	case "f16":
		return CodecF16, nil
	case "f16-noef", "f16-raw":
		return CodecF16Raw, nil
	default:
		return CodecF32, fmt.Errorf("transport: unknown codec %q (want none, f16 or f16-noef)", s)
	}
}
