package transport

// Deterministic fault injection for the chaos test suite. A Chaos value
// wraps net.Conn's (ring links via RingOptions.Wrap, client fan-out via
// DialWrapped) and perturbs their traffic according to a seeded PRNG:
// dropped writes, delayed writes, duplicated writes, a toggleable full
// partition, and kill-after-N-writes. Every decision stream derives from
// ChaosConfig.Seed plus the connection's label, so a failing run replays
// exactly by re-running with the same seed (see ChaosSeed and the
// MELISSA_CHAOS_SEED environment knob).
//
// Faults are write-granular. The ring writer stages exactly one frame per
// socket write, so a dropped ring write loses one collective frame (the
// receiver times out or desyncs — a fatal link fault, by design) and a
// duplicated ring write repeats one frame. The client sender coalesces
// frames in bufio, so a dropped client write loses a burst of messages —
// the server-side dedup/clamp logic is what tolerates it.

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosConfig selects which faults a Chaos injects. Rates are
// probabilities in [0, 1] evaluated independently per write.
type ChaosConfig struct {
	// Seed drives every probabilistic decision. Two Chaos values with the
	// same Seed and the same connection labels make identical decisions.
	Seed uint64
	// DropRate is the probability a write is silently discarded.
	DropRate float64
	// DuplicateRate is the probability a write is applied twice.
	DuplicateRate float64
	// DelayRate is the probability a write is stalled by Delay first.
	DelayRate float64
	Delay     time.Duration
	// KillAfterWrites closes the connection after that many non-dropped
	// writes (0 = never): a deterministic mid-collective kill switch.
	KillAfterWrites int
	// StallReadsAfter freezes the connection's read side after that many
	// successful reads (0 = never): the peer keeps accepting our writes but
	// we stop consuming its responses — a wedged client from the serving
	// tier's point of view. Stalled reads honor the read deadline and
	// Close, like a partition.
	StallReadsAfter int
	// ReadDelayRate is the probability each read is stalled by ReadDelay
	// before touching the socket: a slow-drip client that drains responses
	// far slower than it issues requests.
	ReadDelayRate float64
	ReadDelay     time.Duration
	// HalfOpenAfterWrites turns the connection half-open after that many
	// non-dropped writes (0 = never): subsequent writes are blackholed
	// (claiming success, like a peer that vanished without a RST) and
	// reads stall until the deadline.
	HalfOpenAfterWrites int
}

// Chaos injects faults into wrapped connections. The zero ChaosConfig
// wraps transparently (useful to pre-wire chaos and enable faults later
// via Partition).
type Chaos struct {
	cfg         ChaosConfig
	partitioned atomic.Bool
	nextLabel   atomic.Int64
}

// NewChaos builds a fault injector.
func NewChaos(cfg ChaosConfig) *Chaos { return &Chaos{cfg: cfg} }

// ChaosSeed returns the seed to use for a chaos run: the value of the
// MELISSA_CHAOS_SEED environment variable when set (so a CI failure is
// replayable locally), def otherwise.
func ChaosSeed(def uint64) uint64 {
	if s := os.Getenv("MELISSA_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

// Partition toggles a full partition: while on, every wrapped connection
// blackholes writes and stalls reads (returning a timeout once the read
// deadline passes, exactly like a silent peer).
func (c *Chaos) Partition(on bool) { c.partitioned.Store(on) }

// Partitioned reports whether the injected partition is active.
func (c *Chaos) Partitioned() bool { return c.partitioned.Load() }

// Wrap wraps conn with an auto-assigned label (its wrap-order index).
// When wrap order is itself nondeterministic (concurrent dials), use
// WrapLabeled with a stable label for exact replay.
func (c *Chaos) Wrap(conn net.Conn) net.Conn {
	return c.WrapLabeled(fmt.Sprintf("conn-%d", c.nextLabel.Add(1)-1), conn)
}

// WrapLabeled wraps conn with a per-connection decision stream derived
// from the chaos seed and label (FNV-1a, so the stream is stable across
// processes and runs — unlike maphash, whose seed is process-random).
func (c *Chaos) WrapLabeled(label string, conn net.Conn) net.Conn {
	h := fnv.New64a()
	h.Write([]byte(label))
	return &chaosConn{
		Conn: conn,
		c:    c,
		rng:  rand.New(rand.NewPCG(c.cfg.Seed, h.Sum64())),
		// Reads draw from their own stream: read and write goroutines
		// interleave nondeterministically, so sharing one rng would make
		// both streams depend on scheduling.
		rrng: rand.New(rand.NewPCG(c.cfg.Seed+1, h.Sum64())),
	}
}

// chaosTimeoutError is the net.Error a partitioned read returns at its
// deadline, indistinguishable from a genuinely silent peer.
type chaosTimeoutError struct{}

func (chaosTimeoutError) Error() string   { return "chaos: partitioned: deadline exceeded" }
func (chaosTimeoutError) Timeout() bool   { return true }
func (chaosTimeoutError) Temporary() bool { return true }

// chaosConn is one wrapped connection.
type chaosConn struct {
	net.Conn
	c    *Chaos
	rng  *rand.Rand // write-fault decisions (guarded by mu)
	rrng *rand.Rand // read-fault decisions (guarded by rmu)

	mu     sync.Mutex // serializes writes and the rng
	writes int
	killed bool

	rmu      sync.Mutex // serializes reads and the rrng
	reads    int64
	halfOpen atomic.Bool

	readDL atomic.Pointer[time.Time]
}

// stalled reports whether the read side is frozen: a partition, a
// half-open link, or the stalled-reader threshold.
func (cc *chaosConn) stalled() bool {
	if cc.c.partitioned.Load() || cc.halfOpen.Load() {
		return true
	}
	n := cc.c.cfg.StallReadsAfter
	return n > 0 && atomic.LoadInt64(&cc.reads) >= int64(n)
}

// Read forwards to the wrapped connection, except when the read side is
// stalled (partition, half-open, stalled reader), where it blocks until
// the stall lifts or the read deadline passes. A slow-drip delay, when
// configured, is applied before the real read.
func (cc *chaosConn) Read(b []byte) (int, error) {
	for cc.stalled() {
		cc.mu.Lock()
		killed := cc.killed
		cc.mu.Unlock()
		if killed {
			return 0, net.ErrClosed
		}
		if dl := cc.readDL.Load(); dl != nil && !dl.IsZero() && time.Now().After(*dl) {
			return 0, chaosTimeoutError{}
		}
		time.Sleep(2 * time.Millisecond)
	}
	cfg := &cc.c.cfg
	if cfg.ReadDelayRate > 0 && cfg.ReadDelay > 0 {
		cc.rmu.Lock()
		drip := cc.rrng.Float64() < cfg.ReadDelayRate
		cc.rmu.Unlock()
		if drip {
			time.Sleep(cfg.ReadDelay)
		}
	}
	n, err := cc.Conn.Read(b)
	if err == nil {
		atomic.AddInt64(&cc.reads, 1)
	}
	return n, err
}

// Write applies the configured faults, then forwards.
func (cc *chaosConn) Write(b []byte) (int, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.killed {
		return 0, net.ErrClosed
	}
	if cc.c.partitioned.Load() || cc.halfOpen.Load() {
		return len(b), nil // blackhole: the sender never learns
	}
	cfg := &cc.c.cfg
	if cfg.DropRate > 0 && cc.rng.Float64() < cfg.DropRate {
		return len(b), nil
	}
	if cfg.DelayRate > 0 && cc.rng.Float64() < cfg.DelayRate && cfg.Delay > 0 {
		time.Sleep(cfg.Delay)
	}
	n, err := cc.Conn.Write(b)
	if err != nil {
		return n, err
	}
	if cfg.DuplicateRate > 0 && cc.rng.Float64() < cfg.DuplicateRate {
		cc.Conn.Write(b)
	}
	cc.writes++
	if cfg.KillAfterWrites > 0 && cc.writes >= cfg.KillAfterWrites {
		cc.killed = true
		cc.Conn.Close()
	}
	if cfg.HalfOpenAfterWrites > 0 && cc.writes >= cfg.HalfOpenAfterWrites {
		cc.halfOpen.Store(true)
	}
	return n, nil
}

// SetReadDeadline tracks the deadline (for partition emulation) and
// forwards it.
func (cc *chaosConn) SetReadDeadline(t time.Time) error {
	cc.readDL.Store(&t)
	return cc.Conn.SetReadDeadline(t)
}

// SetDeadline tracks the read half and forwards.
func (cc *chaosConn) SetDeadline(t time.Time) error {
	cc.readDL.Store(&t)
	return cc.Conn.SetDeadline(t)
}

// Close marks the connection killed and closes the underlying conn.
func (cc *chaosConn) Close() error {
	cc.mu.Lock()
	cc.killed = true
	cc.mu.Unlock()
	return cc.Conn.Close()
}

// DialWrapped is Dial with a connection wrapper applied to every rank
// connection — the chaos layer's hook into the client fan-out (wrap is
// typically Chaos.Wrap). A nil wrap is identical to Dial.
func DialWrapped(addrs []string, timeout time.Duration, wrap func(net.Conn) net.Conn) (*ClientConn, error) {
	c, err := Dial(addrs, timeout)
	if err != nil || wrap == nil {
		return c, err
	}
	c.wrap = wrap
	for i := range c.ranks {
		rc := &c.ranks[i]
		rc.conn = wrap(rc.conn)
		rc.bw.Reset(rc.conn)
	}
	return c, nil
}
