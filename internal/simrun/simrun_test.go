package simrun

import (
	"math"
	"testing"

	"melissa/internal/buffer"
	"melissa/internal/cluster"
)

func baseOpts(kind buffer.Kind) Options {
	return Options{
		Model:          cluster.JeanZay(),
		Simulations:    20,
		StepsPerSim:    25,
		CoresPerClient: 20,
		TotalCores:     200, // 10 concurrent clients
		GPUs:           1,
		BatchSize:      10,
		Buffer:         buffer.Config{Kind: kind, Capacity: 120, Threshold: 20, Seed: 1},
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Options){
		func(o *Options) { o.Simulations = 0 },
		func(o *Options) { o.GPUs = 0 },
		func(o *Options) { o.BatchSize = 0 },
		func(o *Options) { o.CoresPerClient = 0 },
		func(o *Options) { o.TotalCores = 10 }, // < cores per client
		func(o *Options) { o.Series = []int{5, 5} },
		func(o *Options) { o.Series = []int{20, 0} },
	}
	for i, mutate := range bad {
		o := baseOpts(buffer.FIFOKind)
		mutate(&o)
		if _, err := Run(o); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestFIFOConservation(t *testing.T) {
	o := baseOpts(buffer.FIFOKind)
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	want := o.Simulations * o.StepsPerSim
	if res.Unique != want {
		t.Fatalf("unique %d, want %d", res.Unique, want)
	}
	if res.Samples != want { // FIFO: every sample exactly once
		t.Fatalf("samples %d, want %d", res.Samples, want)
	}
	for k, c := range res.Occurrences {
		if c != 1 {
			t.Fatalf("sample %v consumed %d times", k, c)
		}
	}
	if res.TrainingEnd <= 0 || res.GenerationEnd <= 0 {
		t.Fatalf("times not recorded: %+v", res)
	}
	if res.TrainingEnd < res.GenerationEnd {
		t.Fatal("training cannot finish before the last sample is produced")
	}
}

func TestFIROConservation(t *testing.T) {
	res, err := Run(baseOpts(buffer.FIROKind))
	if err != nil {
		t.Fatal(err)
	}
	want := 20 * 25
	if res.Unique != want || res.Samples != want {
		t.Fatalf("unique %d samples %d, want %d each", res.Unique, res.Samples, want)
	}
}

func TestReservoirRepeatsAndCoverage(t *testing.T) {
	res, err := Run(baseOpts(buffer.ReservoirKind))
	if err != nil {
		t.Fatal(err)
	}
	want := 20 * 25
	if res.Unique != want {
		t.Fatalf("unique %d, want %d (no unseen data dropped)", res.Unique, want)
	}
	if res.Samples <= want {
		t.Fatalf("samples %d: Reservoir should repeat when the GPU outpaces production", res.Samples)
	}
}

// TestReservoirOutperformsFIFO is the core Figure 2 claim at miniature
// scale: with production slower than GPU capacity, the Reservoir sustains a
// higher mean throughput than FIFO on the same workload.
func TestReservoirOutperformsFIFO(t *testing.T) {
	fifo, err := Run(baseOpts(buffer.FIFOKind))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(baseOpts(buffer.ReservoirKind))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanThroughput() <= fifo.MeanThroughput()*1.1 {
		t.Fatalf("Reservoir %.1f vs FIFO %.1f samples/s: expected ≥10%% advantage",
			res.MeanThroughput(), fifo.MeanThroughput())
	}
}

func TestSeriesSubmissionGaps(t *testing.T) {
	o := baseOpts(buffer.FIFOKind)
	o.Series = []int{10, 10}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	// Two series of 10 concurrent clients, ~23.4 s per sim, plus the 10 s
	// inter-series gap: generation must take at least two waves + gap.
	simSec := o.Model.SimulationSec(o.CoresPerClient, o.StepsPerSim)
	min := 2*simSec + o.Model.SeriesGapSec
	if res.GenerationEnd < min*0.95 {
		t.Fatalf("generation end %.1f < expected ≥ %.1f", res.GenerationEnd, min)
	}
	if res.Unique != 500 {
		t.Fatalf("unique %d", res.Unique)
	}
}

func TestMultiGPUDistribution(t *testing.T) {
	o := baseOpts(buffer.FIFOKind)
	o.GPUs = 4
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unique != 500 || res.Samples != 500 {
		t.Fatalf("unique %d samples %d", res.Unique, res.Samples)
	}
}

func TestReservoirScalesWithGPUs(t *testing.T) {
	// Table 1's scaling claim: at fixed production, only the Reservoir's
	// throughput grows with the number of GPUs.
	run := func(kind buffer.Kind, gpus int) float64 {
		o := baseOpts(kind)
		o.GPUs = gpus
		o.Simulations = 40
		res, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanThroughput()
	}
	r1 := run(buffer.ReservoirKind, 1)
	r4 := run(buffer.ReservoirKind, 4)
	if r4 < 2.5*r1 {
		t.Fatalf("Reservoir 4-GPU throughput %.1f not ≥2.5× 1-GPU %.1f", r4, r1)
	}
	f1 := run(buffer.FIFOKind, 1)
	f4 := run(buffer.FIFOKind, 4)
	if f4 > 1.5*f1 {
		t.Fatalf("FIFO should not scale with GPUs (production-bound): %.1f vs %.1f", f4, f1)
	}
}

func TestOnTrainStepCallback(t *testing.T) {
	o := baseOpts(buffer.FIFOKind)
	total := 0
	o.OnTrainStep = func(step int, batches [][]buffer.Sample) {
		for _, b := range batches {
			total += len(b)
		}
	}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if total != res.Samples {
		t.Fatalf("callback saw %d samples, result says %d", total, res.Samples)
	}
}

func TestMakeClientGeneratesPayload(t *testing.T) {
	o := baseOpts(buffer.FIFOKind)
	o.Simulations = 3
	o.StepsPerSim = 4
	o.MakeClient = func(simID int) func(step int) buffer.Sample {
		return func(step int) buffer.Sample {
			return buffer.Sample{SimID: simID, Step: step, Input: []float32{float32(simID)}, Output: []float32{float32(step)}}
		}
	}
	saw := 0
	o.OnTrainStep = func(_ int, batches [][]buffer.Sample) {
		for _, b := range batches {
			for _, s := range b {
				if len(s.Input) != 1 || len(s.Output) != 1 {
					t.Error("payload missing")
				}
				saw++
			}
		}
	}
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}
	if saw != 12 {
		t.Fatalf("saw %d samples, want 12", saw)
	}
}

func TestMaxStepsBoundsTraining(t *testing.T) {
	o := baseOpts(buffer.ReservoirKind)
	o.MaxSteps = 7
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 7 {
		t.Fatalf("batches %d, want 7", res.Batches)
	}
}

func TestThroughputSeries(t *testing.T) {
	res, err := Run(baseOpts(buffer.ReservoirKind))
	if err != nil {
		t.Fatal(err)
	}
	times, rates := res.ThroughputSeries(10)
	if len(times) == 0 || len(times) != len(rates) {
		t.Fatalf("series lengths %d/%d", len(times), len(rates))
	}
	for i, r := range rates {
		if r <= 0 || math.IsInf(r, 0) {
			t.Fatalf("rate[%d] = %v", i, r)
		}
	}
	// Times must be increasing.
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatal("non-monotone series times")
		}
	}
}

func TestTracePopulationBounded(t *testing.T) {
	o := baseOpts(buffer.ReservoirKind)
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	for _, tp := range res.Trace {
		if tp.Total > o.Buffer.Capacity {
			t.Fatalf("population %d exceeds capacity %d", tp.Total, o.Buffer.Capacity)
		}
		if tp.Seen+tp.Unseen != tp.Total {
			t.Fatalf("trace inconsistency: %+v", tp)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(baseOpts(buffer.ReservoirKind))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseOpts(buffer.ReservoirKind))
	if err != nil {
		t.Fatal(err)
	}
	if a.Samples != b.Samples || a.Batches != b.Batches || a.TrainingEnd != b.TrainingEnd {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

// TestOverproductionBackpressure drives far more production than the GPU
// consumes through a small buffer, exercising the network-queue stall path
// (regression: batch assembly must stay non-reentrant and bounded).
func TestOverproductionBackpressure(t *testing.T) {
	o := baseOpts(buffer.FIFOKind)
	o.Buffer.Capacity = 20
	o.Buffer.Threshold = 4
	o.TotalCores = 400 // every client concurrent: production ≫ consumption
	maxBatch := 0
	o.OnTrainStep = func(_ int, batches [][]buffer.Sample) {
		for _, b := range batches {
			if len(b) > maxBatch {
				maxBatch = len(b)
			}
		}
	}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if maxBatch > o.BatchSize {
		t.Fatalf("batch grew to %d, cap %d (reentrant pump)", maxBatch, o.BatchSize)
	}
	want := o.Simulations * o.StepsPerSim
	if res.Unique != want || res.Samples != want {
		t.Fatalf("conservation broken: unique %d samples %d want %d", res.Unique, res.Samples, want)
	}
	// Throughput bounded by the GPU model, not inflated by queue bursts.
	if thr := res.MeanThroughput(); thr > 150 {
		t.Fatalf("throughput %.1f exceeds the 1-GPU bound ≈148", thr)
	}
}

// TestOverproductionReservoirCoverage: same regime through the Reservoir —
// full coverage, bounded throughput, repetition present.
func TestOverproductionReservoirCoverage(t *testing.T) {
	o := baseOpts(buffer.ReservoirKind)
	o.Buffer.Capacity = 50
	o.Buffer.Threshold = 10
	o.TotalCores = 400
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	want := o.Simulations * o.StepsPerSim
	if res.Unique != want {
		t.Fatalf("unique %d, want %d (unseen data must survive backpressure)", res.Unique, want)
	}
	if thr := res.MeanThroughput(); thr > 150 {
		t.Fatalf("throughput %.1f exceeds the GPU bound", thr)
	}
}
