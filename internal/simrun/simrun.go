// Package simrun replays the paper's ensemble-training runs on the
// discrete-event cluster simulator: scheduled clients produce time steps at
// the calibrated solver rate, stream them round-robin into per-rank
// training buffers (the real policies from internal/buffer), and
// synchronized "GPU" training steps consume batches at the calibrated
// device rate. Timing-only runs use key-only samples and reproduce the
// throughput dynamics of Figure 2 and Tables 1-2; quality runs plug real
// solver data and a real training callback into the same machinery for
// Figures 4-6.
package simrun

import (
	"errors"
	"fmt"

	"melissa/internal/buffer"
	"melissa/internal/cluster"
	"melissa/internal/des"
	"melissa/internal/scheduler"
)

// Options configures a simulated ensemble run.
type Options struct {
	Model cluster.PerfModel

	// Ensemble shape.
	Simulations    int
	StepsPerSim    int
	CoresPerClient int
	// TotalCores is the client partition size; concurrency is
	// TotalCores/CoresPerClient (the paper's c concurrent clients).
	TotalCores int
	// Series optionally splits submission into successive groups (Fig 2:
	// 100, 100, 50); the next series starts SeriesGapSec after the
	// previous one fully finishes. Empty = one series.
	Series []int

	// Server shape.
	GPUs      int
	BatchSize int
	Buffer    buffer.Config // per-rank; seed offset by rank

	// MakeClient returns the sample generator for one simulation; nil
	// uses key-only samples (timing studies). Called once per client at
	// its (re)start on the virtual clock.
	MakeClient func(simID int) func(step int) buffer.Sample

	// OnTrainStep, when set, receives every synchronized step's per-rank
	// batches — the hook quality experiments use to run real training.
	OnTrainStep func(step int, batches [][]buffer.Sample)

	// MaxSteps optionally bounds the number of synchronized training
	// steps (0 = until drained).
	MaxSteps int

	// LeanResult disables the population trace and per-sample occurrence
	// map, bounding memory for very large runs (Table 2's 2M-sample
	// ensemble); Unique is then tracked with a counting set of keys only.
	LeanResult bool
}

func (o Options) validate() error {
	if o.Simulations < 1 || o.StepsPerSim < 1 {
		return fmt.Errorf("simrun: ensemble %d sims × %d steps invalid", o.Simulations, o.StepsPerSim)
	}
	if o.GPUs < 1 || o.BatchSize < 1 {
		return fmt.Errorf("simrun: %d GPUs batch %d invalid", o.GPUs, o.BatchSize)
	}
	if o.CoresPerClient < 1 || o.TotalCores < o.CoresPerClient {
		return fmt.Errorf("simrun: cores %d/%d invalid", o.CoresPerClient, o.TotalCores)
	}
	if len(o.Series) > 0 {
		sum := 0
		for _, s := range o.Series {
			if s < 1 {
				return errors.New("simrun: series sizes must be positive")
			}
			sum += s
		}
		if sum != o.Simulations {
			return fmt.Errorf("simrun: series sum %d != simulations %d", sum, o.Simulations)
		}
	}
	return nil
}

// TracePoint samples the state of rank 0's buffer over virtual time
// (Figure 2 bottom panel).
type TracePoint struct {
	T      des.Time
	Seen   int
	Unseen int
	Total  int
}

// StepPoint records one synchronized training step (Figure 2 top panel is
// derived from these).
type StepPoint struct {
	T       des.Time // completion time
	Samples int      // consumed across ranks this step
}

// Result summarizes a simulated run.
type Result struct {
	// TrainingEnd is the virtual time the last training step completed.
	TrainingEnd des.Time
	// GenerationEnd is the virtual time the last client finished.
	GenerationEnd des.Time
	Batches       int
	Samples       int // consumed, including Reservoir repetitions
	Unique        int // distinct samples consumed at least once
	Occurrences   map[buffer.Key]int
	Steps         []StepPoint
	Trace         []TracePoint
}

// MeanThroughput is consumed samples per virtual second of training.
func (r *Result) MeanThroughput() float64 {
	if r.TrainingEnd <= 0 {
		return 0
	}
	return float64(r.Samples) / r.TrainingEnd
}

// ThroughputSeries computes the paper's Figure 2 metric: throughput
// measured over each window of `window` successive batches.
func (r *Result) ThroughputSeries(window int) (times []des.Time, rates []float64) {
	if window < 1 {
		window = 10
	}
	var t0 des.Time
	samples := 0
	for i, sp := range r.Steps {
		samples += sp.Samples
		if (i+1)%window == 0 {
			dt := sp.T - t0
			if dt > 0 {
				times = append(times, sp.T)
				rates = append(rates, float64(samples)/dt)
			}
			t0 = sp.T
			samples = 0
		}
	}
	return times, rates
}

// Run executes the simulated ensemble run to completion.
func Run(opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	s := newState(opts)
	s.submitSeries(0)
	s.sim.Run()
	if !s.done {
		return nil, errors.New("simrun: event queue drained before training completed (likely a stall: production stopped below buffer threshold)")
	}
	return s.result, nil
}

type state struct {
	opts  Options
	sim   *des.Simulation
	sched *scheduler.Cluster

	policies []buffer.Policy
	queues   [][]buffer.Sample // per-rank network ("ZMQ") queues

	goodbyes int
	ended    bool

	// trainer state
	batches   [][]buffer.Sample
	inStep    bool
	done      bool
	stepCount int

	uniqueSet map[buffer.Key]struct{} // LeanResult mode
	result    *Result
}

func newState(opts Options) *state {
	sim := des.New()
	st := &state{
		opts:  opts,
		sim:   sim,
		sched: scheduler.New(sim, opts.TotalCores),
	}
	if opts.LeanResult {
		st.uniqueSet = make(map[buffer.Key]struct{})
		st.result = &Result{}
	} else {
		st.result = &Result{Occurrences: make(map[buffer.Key]int)}
	}
	st.sched.SubmitOverheadSec = opts.Model.LauncherSubmitSec
	st.policies = make([]buffer.Policy, opts.GPUs)
	st.queues = make([][]buffer.Sample, opts.GPUs)
	st.batches = make([][]buffer.Sample, opts.GPUs)
	for r := range st.policies {
		cfg := opts.Buffer
		cfg.Seed += uint64(r) * 1000003
		p, err := buffer.New(cfg)
		if err != nil {
			panic(err) // validated kinds only reach here
		}
		st.policies[r] = p
	}
	return st
}

// series returns the submission groups.
func (s *state) series() []int {
	if len(s.opts.Series) > 0 {
		return s.opts.Series
	}
	return []int{s.opts.Simulations}
}

// submitSeries schedules the idx-th client series; the next series is
// submitted SeriesGapSec after this one fully completes (§4.3).
func (s *state) submitSeries(idx int) {
	series := s.series()
	if idx >= len(series) {
		return
	}
	base := 0
	for i := 0; i < idx; i++ {
		base += series[i]
	}
	remaining := series[idx]
	for i := 0; i < series[idx]; i++ {
		simID := base + i
		s.sched.Submit(s.opts.CoresPerClient, func(release func()) {
			s.runClient(simID, func() {
				release()
				remaining--
				if remaining == 0 {
					if idx+1 < len(series) {
						s.sim.After(s.opts.Model.SeriesGapSec, func() { s.submitSeries(idx + 1) })
					} else {
						s.result.GenerationEnd = s.sim.Now()
						s.clientDoneAll()
					}
				}
			})
		})
	}
}

// runClient emits one step every SolverStepSec, round-robin across ranks
// starting at the client id (§3.2.2), then signals a goodbye.
func (s *state) runClient(simID int, done func()) {
	gen := func(step int) buffer.Sample { return buffer.Sample{SimID: simID, Step: step} }
	if s.opts.MakeClient != nil {
		gen = s.opts.MakeClient(simID)
	}
	stepSec := s.opts.Model.SolverStepSec(s.opts.CoresPerClient)
	var produce func(step int)
	produce = func(step int) {
		if step > s.opts.StepsPerSim {
			s.goodbye()
			done()
			return
		}
		s.sim.After(stepSec, func() {
			rank := (simID + step) % s.opts.GPUs
			s.queues[rank] = append(s.queues[rank], gen(step))
			s.deliver(rank)
			s.pump()
			produce(step + 1)
		})
	}
	produce(1)
}

func (s *state) goodbye() {
	s.goodbyes++
}

// clientDoneAll fires when every series has finished: all goodbyes are in,
// reception ends on every rank and thresholds lift (§3.2.3).
func (s *state) clientDoneAll() {
	if s.ended {
		return
	}
	s.ended = true
	for _, p := range s.policies {
		p.EndReception()
	}
	s.pump()
}

// deliver moves queued samples into the rank's buffer while it accepts
// them; a full buffer suspends delivery (the paper's production stall) and
// retries after the trainer consumes. It never re-enters the trainer:
// callers invoke pump explicitly, keeping batch assembly non-reentrant.
func (s *state) deliver(rank int) {
	q := s.queues[rank]
	i := 0
	for i < len(q) && s.policies[rank].Put(q[i]) {
		i++
	}
	s.queues[rank] = q[i:]
}

// pump advances the synchronized trainer: fill per-rank batches from the
// policies, and when every rank is ready (full batch, or draining), charge
// one TrainStepSec to the clock.
func (s *state) pump() {
	if s.inStep || s.done {
		return
	}
	if s.opts.MaxSteps > 0 && s.stepCount >= s.opts.MaxSteps {
		s.finish()
		return
	}
	ready := true
	for r := range s.batches {
		for len(s.batches[r]) < s.opts.BatchSize {
			sample, ok := s.policies[r].TryGet()
			if !ok {
				// Extraction may have freed buffer space (FIFO/FIRO
				// evict on read): retry stalled deliveries, then the
				// policy, before giving up on this rank.
				before := len(s.queues[r])
				s.deliver(r)
				if len(s.queues[r]) == before {
					break
				}
				continue
			}
			s.batches[r] = append(s.batches[r], sample)
			s.deliver(r) // consuming may unblock a stalled producer queue
		}
		if len(s.batches[r]) < s.opts.BatchSize && !s.policies[r].Drained() {
			ready = false
		}
	}
	if !ready {
		s.recordTrace()
		return
	}
	total := 0
	for r := range s.batches {
		total += len(s.batches[r])
	}
	if total == 0 {
		s.finish()
		return
	}
	s.inStep = true
	s.recordTrace()
	s.sim.After(s.opts.Model.TrainStepSec(s.opts.GPUs), func() { s.completeStep() })
}

func (s *state) completeStep() {
	s.stepCount++
	total := 0
	for r := range s.batches {
		total += len(s.batches[r])
		for _, sample := range s.batches[r] {
			if s.opts.LeanResult {
				s.uniqueSet[sample.Key()] = struct{}{}
			} else {
				s.result.Occurrences[sample.Key()]++
			}
		}
	}
	if s.opts.OnTrainStep != nil {
		s.opts.OnTrainStep(s.stepCount, s.batches)
	}
	s.result.Batches++
	s.result.Samples += total
	s.result.Steps = append(s.result.Steps, StepPoint{T: s.sim.Now(), Samples: total})
	for r := range s.batches {
		s.batches[r] = s.batches[r][:0]
	}
	s.inStep = false
	s.recordTrace()
	// Consuming freed space: retry stalled deliveries before refilling.
	for r := range s.queues {
		s.deliver(r)
	}
	s.pump()
}

func (s *state) finish() {
	if s.done {
		return
	}
	s.done = true
	s.result.TrainingEnd = s.sim.Now()
	if s.opts.LeanResult {
		s.result.Unique = len(s.uniqueSet)
	} else {
		s.result.Unique = len(s.result.Occurrences)
	}
}

// recordTrace appends rank 0's buffer population at the current time.
func (s *state) recordTrace() {
	if s.opts.LeanResult {
		return
	}
	p := s.policies[0]
	tp := TracePoint{T: s.sim.Now(), Total: p.Len()}
	if pc, ok := p.(buffer.PopulationCounter); ok {
		tp.Seen = pc.SeenCount()
		tp.Unseen = pc.UnseenCount()
	} else {
		tp.Unseen = p.Len()
	}
	s.result.Trace = append(s.result.Trace, tp)
}
