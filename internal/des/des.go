// Package des is a minimal discrete-event simulation core: a virtual clock
// and an event queue ordered by (time, insertion sequence). The cluster
// simulator uses it to replay the paper's supercomputer-scale timing
// experiments (thousands of cores, hours of wall time) in milliseconds,
// while running the real buffer and scheduler algorithms.
//
// Event callbacks run sequentially on the caller's goroutine; they may
// schedule further events. Determinism: two events at the same virtual
// time fire in scheduling order.
package des

import "container/heap"

// Time is virtual seconds since simulation start.
type Time = float64

// Simulation owns the clock and the pending event queue.
type Simulation struct {
	now   Time
	queue eventHeap
	seq   int64
}

// New creates an empty simulation at time zero.
func New() *Simulation { return &Simulation{} }

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// At schedules fn at absolute virtual time t. Scheduling in the past (or
// present) fires the event at the current time, after already-pending
// events for that time.
func (s *Simulation) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (s *Simulation) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Step executes the next pending event, advancing the clock. It reports
// whether an event was executed.
func (s *Simulation) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue empties.
func (s *Simulation) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time ≤ t, then sets the clock to t.
func (s *Simulation) RunUntil(t Time) {
	for s.queue.Len() > 0 && s.queue[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending returns the number of queued events.
func (s *Simulation) Pending() int { return s.queue.Len() }

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
