package des

import "testing"

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v", order)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("clock %v", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	s := New()
	var fired []Time
	s.After(1, func() {
		fired = append(fired, s.Now())
		s.After(2, func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired %v", fired)
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	s := New()
	var at Time = -1
	s.At(5, func() {
		s.At(2, func() { at = s.Now() }) // past: fires "now"
	})
	s.Run()
	if at != 5 {
		t.Fatalf("past event fired at %v, want 5", at)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i), func() { count++ })
	}
	s.RunUntil(5.5)
	if count != 5 {
		t.Fatalf("executed %d events, want 5", count)
	}
	if s.Now() != 5.5 {
		t.Fatalf("clock %v, want 5.5", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending %d", s.Pending())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("executed %d events total", count)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestManyEventsStaySorted(t *testing.T) {
	s := New()
	// Insert pseudo-random times; execution must be monotone.
	last := Time(-1)
	x := uint64(12345)
	for i := 0; i < 2000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		tm := Time(x % 10000)
		s.At(tm, func() {
			if s.Now() < last {
				t.Errorf("time went backwards: %v after %v", s.Now(), last)
			}
			last = s.Now()
		})
	}
	s.Run()
}
