package ddp

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"

	"melissa/internal/nn"
	"melissa/internal/opt"
	"melissa/internal/tensor"
)

// runRanks launches one goroutine per rank and waits for completion.
func runRanks(n int, fn func(rank int)) {
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(rank)
		}(r)
	}
	wg.Wait()
}

func TestChunkBounds(t *testing.T) {
	b := chunkBounds(10, 3)
	want := []int{0, 4, 7, 10}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
	b = chunkBounds(2, 4) // more ranks than elements: some chunks empty
	if b[0] != 0 || b[4] != 2 {
		t.Fatalf("bounds = %v", b)
	}
	for i := 0; i < 4; i++ {
		if b[i+1] < b[i] {
			t.Fatalf("non-monotonic bounds %v", b)
		}
	}
}

func TestAllReduceSumSmall(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		c := NewCommunicator(n)
		bufs := make([][]float32, n)
		for r := range bufs {
			bufs[r] = []float32{float32(r + 1), float32(10 * (r + 1)), float32(100 * (r + 1))}
		}
		var wantSum [3]float32
		for _, b := range bufs {
			for i, v := range b {
				wantSum[i] += v
			}
		}
		runRanks(n, func(rank int) { c.AllReduceSum(rank, bufs[rank]) })
		for r := 0; r < n; r++ {
			for i := 0; i < 3; i++ {
				if bufs[r][i] != wantSum[i] {
					t.Fatalf("n=%d rank %d: got %v, want %v", n, r, bufs[r], wantSum)
				}
			}
		}
	}
}

func TestAllReduceLenNotDivisible(t *testing.T) {
	// Buffer length 5 across 4 ranks exercises uneven and empty chunks.
	n := 4
	c := NewCommunicator(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = make([]float32, 5)
		for i := range bufs[r] {
			bufs[r][i] = float32(r*5 + i)
		}
	}
	want := make([]float32, 5)
	for _, b := range bufs {
		for i, v := range b {
			want[i] += v
		}
	}
	runRanks(n, func(rank int) { c.AllReduceSum(rank, bufs[rank]) })
	for r := 0; r < n; r++ {
		for i := range want {
			if bufs[r][i] != want[i] {
				t.Fatalf("rank %d elem %d: %v want %v", r, i, bufs[r][i], want[i])
			}
		}
	}
}

func TestAllReduceBufferShorterThanRanks(t *testing.T) {
	n := 5
	c := NewCommunicator(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = []float32{1, 2} // only 2 elements, 5 ranks
	}
	runRanks(n, func(rank int) { c.AllReduceSum(rank, bufs[rank]) })
	for r := 0; r < n; r++ {
		if bufs[r][0] != 5 || bufs[r][1] != 10 {
			t.Fatalf("rank %d: %v", r, bufs[r])
		}
	}
}

func TestAllReduceMean(t *testing.T) {
	n := 4
	c := NewCommunicator(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = []float32{float32(r)} // 0,1,2,3 → mean 1.5
	}
	runRanks(n, func(rank int) { c.AllReduceMean(rank, bufs[rank]) })
	for r := 0; r < n; r++ {
		if bufs[r][0] != 1.5 {
			t.Fatalf("rank %d: %v, want 1.5", r, bufs[r][0])
		}
	}
}

// Property: all ranks end with identical buffers equal to the element-wise
// sum (within float tolerance), for random sizes and rank counts.
func TestAllReduceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 1 + int(seed%6)
		length := int(seed>>3%64) + 1
		c := NewCommunicator(n)
		bufs := make([][]float32, n)
		want := make([]float64, length)
		for r := range bufs {
			bufs[r] = make([]float32, length)
			for i := range bufs[r] {
				bufs[r][i] = float32(rng.NormFloat64())
				want[i] += float64(bufs[r][i])
			}
		}
		runRanks(n, func(rank int) { c.AllReduceSum(rank, bufs[rank]) })
		for r := 1; r < n; r++ {
			for i := range bufs[r] {
				if bufs[r][i] != bufs[0][i] {
					return false // ranks must agree bit-exactly
				}
			}
		}
		for i := range want {
			if math.Abs(float64(bufs[0][i])-want[i]) > 1e-4*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast(t *testing.T) {
	n := 4
	c := NewCommunicator(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = []float32{float32(r), float32(r)}
	}
	runRanks(n, func(rank int) { c.Broadcast(rank, 2, bufs[rank]) })
	for r := 0; r < n; r++ {
		if bufs[r][0] != 2 || bufs[r][1] != 2 {
			t.Fatalf("rank %d: %v", r, bufs[r])
		}
	}
}

func TestBarrier(t *testing.T) {
	n := 8
	c := NewCommunicator(n)
	var mu sync.Mutex
	phase1 := 0
	fail := false
	runRanks(n, func(rank int) {
		mu.Lock()
		phase1++
		mu.Unlock()
		c.Barrier()
		mu.Lock()
		if phase1 != n {
			fail = true
		}
		mu.Unlock()
		c.Barrier() // reusable
	})
	if fail {
		t.Fatal("barrier released before all ranks arrived")
	}
}

func TestGradBufferRoundtrip(t *testing.T) {
	net := nn.ArchitectureMLP(3, []int{4}, 2, 1)
	params := net.Params()
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = float32(i + 1)
		}
	}
	buf := NewGradBuffer(params)
	if buf.Len() != net.NumParams() {
		t.Fatalf("buffer len %d, want %d", buf.Len(), net.NumParams())
	}
	buf.Gather(params)
	for _, p := range params {
		p.Grad.Zero()
	}
	buf.Scatter(params)
	for _, p := range params {
		for i, g := range p.Grad.Data {
			if g != float32(i+1) {
				t.Fatalf("param %s grad not restored", p.Name)
			}
		}
	}
}

// TestDataParallelEquivalence verifies the core DDP property: n replicas
// training on n disjoint batch shards with gradient averaging produce
// exactly the same weights as a single model trained on the concatenated
// batch. This is what keeps the paper's multi-GPU runs semantically
// equivalent to large-batch single-GPU training.
func TestDataParallelEquivalence(t *testing.T) {
	const n = 4
	const shardSize = 5
	rng := rand.New(rand.NewPCG(21, 22))

	build := func() *nn.Network { return nn.ArchitectureMLP(3, []int{8}, 2, 77) }

	// Shared input: n shards of shardSize rows each.
	shards := make([]*tensor.Matrix, n)
	targets := make([]*tensor.Matrix, n)
	full := tensor.New(n*shardSize, 3)
	fullTarget := tensor.New(n*shardSize, 2)
	for s := 0; s < n; s++ {
		shards[s] = tensor.New(shardSize, 3)
		targets[s] = tensor.New(shardSize, 2)
		for r := 0; r < shardSize; r++ {
			for c := 0; c < 3; c++ {
				v := float32(rng.NormFloat64())
				shards[s].Set(r, c, v)
				full.Set(s*shardSize+r, c, v)
			}
			for c := 0; c < 2; c++ {
				v := float32(rng.NormFloat64())
				targets[s].Set(r, c, v)
				fullTarget.Set(s*shardSize+r, c, v)
			}
		}
	}

	// Reference: single model, full batch, SGD.
	ref := build()
	loss := nn.NewMSELoss()
	const lr = 0.1
	const steps = 5
	for i := 0; i < steps; i++ {
		ref.ZeroGrad()
		ref.Backward(loss.Backward(ref.Forward(full), fullTarget))
		for _, p := range ref.Params() {
			tensor.Axpy(-lr, p.Grad.Data, p.Value.Data)
		}
	}

	// DDP: n replicas on shards with gradient mean.
	comm := NewCommunicator(n)
	replicas := make([]*nn.Network, n)
	for r := range replicas {
		replicas[r] = build()
	}
	runRanks(n, func(rank int) {
		net := replicas[rank]
		l := nn.NewMSELoss()
		gbuf := NewGradBuffer(net.Params())
		for i := 0; i < steps; i++ {
			net.ZeroGrad()
			net.Backward(l.Backward(net.Forward(shards[rank]), targets[rank]))
			SyncGradients(comm, rank, net.Params(), gbuf)
			for _, p := range net.Params() {
				tensor.Axpy(-lr, p.Grad.Data, p.Value.Data)
			}
		}
	})

	// All replicas identical.
	for r := 1; r < n; r++ {
		pa, pb := replicas[0].Params(), replicas[r].Params()
		for i := range pa {
			for j := range pa[i].Value.Data {
				if pa[i].Value.Data[j] != pb[i].Value.Data[j] {
					t.Fatalf("replicas 0 and %d diverged at param %d[%d]", r, i, j)
				}
			}
		}
	}
	// Replica ≈ reference (float reduction order differs, so tolerance).
	pr, p0 := ref.Params(), replicas[0].Params()
	for i := range pr {
		for j := range pr[i].Value.Data {
			d := math.Abs(float64(pr[i].Value.Data[j] - p0[i].Value.Data[j]))
			if d > 1e-4 {
				t.Fatalf("DDP diverged from large-batch reference: param %d[%d] diff %v", i, j, d)
			}
		}
	}
}

// TestDDPWithAdam checks that replicas stay bit-identical across Adam steps
// (each replica applies the same averaged gradient to the same state).
func TestDDPWithAdam(t *testing.T) {
	const n = 3
	comm := NewCommunicator(n)
	replicas := make([]*nn.Network, n)
	for r := range replicas {
		replicas[r] = nn.ArchitectureMLP(2, []int{4}, 2, 55)
	}
	rng := rand.New(rand.NewPCG(1, 9))
	inputs := make([]*tensor.Matrix, n)
	targets := make([]*tensor.Matrix, n)
	for r := 0; r < n; r++ {
		inputs[r] = tensor.New(4, 2)
		targets[r] = tensor.New(4, 2)
		for i := range inputs[r].Data {
			inputs[r].Data[i] = float32(rng.NormFloat64())
			targets[r].Data[i] = float32(rng.NormFloat64())
		}
	}
	runRanks(n, func(rank int) {
		net := replicas[rank]
		l := nn.NewMSELoss()
		a := opt.NewAdam(1e-3)
		gbuf := NewGradBuffer(net.Params())
		for i := 0; i < 10; i++ {
			net.ZeroGrad()
			net.Backward(l.Backward(net.Forward(inputs[rank]), targets[rank]))
			SyncGradients(comm, rank, net.Params(), gbuf)
			a.Step(net.Params())
		}
	})
	for r := 1; r < n; r++ {
		pa, pb := replicas[0].Params(), replicas[r].Params()
		for i := range pa {
			for j := range pa[i].Value.Data {
				if pa[i].Value.Data[j] != pb[i].Value.Data[j] {
					t.Fatalf("Adam replicas diverged (rank %d, param %d[%d])", r, i, j)
				}
			}
		}
	}
}

func BenchmarkAllReduce4Ranks(b *testing.B) {
	const n = 4
	c := NewCommunicator(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = make([]float32, 1<<16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runRanks(n, func(rank int) { c.AllReduceSum(rank, bufs[rank]) })
	}
}
