package ddp

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"

	"melissa/internal/nn"
	"melissa/internal/opt"
	"melissa/internal/tensor"
)

// runRanks launches one goroutine per rank and waits for completion.
func runRanks(n int, fn func(rank int)) {
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(rank)
		}(r)
	}
	wg.Wait()
}

func TestChunkRange(t *testing.T) {
	wantLo := []int{0, 4, 7}
	wantHi := []int{4, 7, 10}
	for i := 0; i < 3; i++ {
		lo, hi := chunkRange(10, 3, i)
		if lo != wantLo[i] || hi != wantHi[i] {
			t.Fatalf("chunkRange(10,3,%d) = [%d,%d), want [%d,%d)", i, lo, hi, wantLo[i], wantHi[i])
		}
	}
	// More ranks than elements: some chunks empty, bounds monotone and
	// tiling [0, length).
	prev := 0
	for i := 0; i < 4; i++ {
		lo, hi := chunkRange(2, 4, i)
		if lo != prev || hi < lo {
			t.Fatalf("chunkRange(2,4,%d) = [%d,%d), prev end %d", i, lo, hi, prev)
		}
		prev = hi
	}
	if prev != 2 {
		t.Fatalf("chunks do not cover length: end %d", prev)
	}
}

func TestAllReduceSumSmall(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		c := NewCommunicator(n)
		bufs := make([][]float32, n)
		for r := range bufs {
			bufs[r] = []float32{float32(r + 1), float32(10 * (r + 1)), float32(100 * (r + 1))}
		}
		var wantSum [3]float32
		for _, b := range bufs {
			for i, v := range b {
				wantSum[i] += v
			}
		}
		runRanks(n, func(rank int) { c.AllReduceSum(rank, bufs[rank]) })
		for r := 0; r < n; r++ {
			for i := 0; i < 3; i++ {
				if bufs[r][i] != wantSum[i] {
					t.Fatalf("n=%d rank %d: got %v, want %v", n, r, bufs[r], wantSum)
				}
			}
		}
	}
}

func TestAllReduceLenNotDivisible(t *testing.T) {
	// Buffer length 5 across 4 ranks exercises uneven and empty chunks.
	n := 4
	c := NewCommunicator(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = make([]float32, 5)
		for i := range bufs[r] {
			bufs[r][i] = float32(r*5 + i)
		}
	}
	want := make([]float32, 5)
	for _, b := range bufs {
		for i, v := range b {
			want[i] += v
		}
	}
	runRanks(n, func(rank int) { c.AllReduceSum(rank, bufs[rank]) })
	for r := 0; r < n; r++ {
		for i := range want {
			if bufs[r][i] != want[i] {
				t.Fatalf("rank %d elem %d: %v want %v", r, i, bufs[r][i], want[i])
			}
		}
	}
}

func TestAllReduceBufferShorterThanRanks(t *testing.T) {
	n := 5
	c := NewCommunicator(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = []float32{1, 2} // only 2 elements, 5 ranks
	}
	runRanks(n, func(rank int) { c.AllReduceSum(rank, bufs[rank]) })
	for r := 0; r < n; r++ {
		if bufs[r][0] != 5 || bufs[r][1] != 10 {
			t.Fatalf("rank %d: %v", r, bufs[r])
		}
	}
}

func TestAllReduceMean(t *testing.T) {
	n := 4
	c := NewCommunicator(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = []float32{float32(r)} // 0,1,2,3 → mean 1.5
	}
	runRanks(n, func(rank int) { c.AllReduceMean(rank, bufs[rank]) })
	for r := 0; r < n; r++ {
		if bufs[r][0] != 1.5 {
			t.Fatalf("rank %d: %v, want 1.5", r, bufs[r][0])
		}
	}
}

// Property: all ranks end with identical buffers equal to the element-wise
// sum (within float tolerance), for random sizes and rank counts.
func TestAllReduceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 1 + int(seed%6)
		length := int(seed>>3%64) + 1
		c := NewCommunicator(n)
		bufs := make([][]float32, n)
		want := make([]float64, length)
		for r := range bufs {
			bufs[r] = make([]float32, length)
			for i := range bufs[r] {
				bufs[r][i] = float32(rng.NormFloat64())
				want[i] += float64(bufs[r][i])
			}
		}
		runRanks(n, func(rank int) { c.AllReduceSum(rank, bufs[rank]) })
		for r := 1; r < n; r++ {
			for i := range bufs[r] {
				if bufs[r][i] != bufs[0][i] {
					return false // ranks must agree bit-exactly
				}
			}
		}
		for i := range want {
			if math.Abs(float64(bufs[0][i])-want[i]) > 1e-4*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast(t *testing.T) {
	n := 4
	c := NewCommunicator(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = []float32{float32(r), float32(r)}
	}
	runRanks(n, func(rank int) { c.Broadcast(rank, 2, bufs[rank]) })
	for r := 0; r < n; r++ {
		if bufs[r][0] != 2 || bufs[r][1] != 2 {
			t.Fatalf("rank %d: %v", r, bufs[r])
		}
	}
}

func TestBarrier(t *testing.T) {
	n := 8
	c := NewCommunicator(n)
	var mu sync.Mutex
	phase1 := 0
	fail := false
	runRanks(n, func(rank int) {
		mu.Lock()
		phase1++
		mu.Unlock()
		c.Barrier(rank)
		mu.Lock()
		if phase1 != n {
			fail = true
		}
		mu.Unlock()
		c.Barrier(rank) // reusable
	})
	if fail {
		t.Fatal("barrier released before all ranks arrived")
	}
}

// TestFlatGradSlabViews verifies the invariant SyncGradients relies on: a
// network's parameter gradients are contiguous views into the slab that
// FlatGrads exposes, in Params() order.
func TestFlatGradSlabViews(t *testing.T) {
	net := nn.ArchitectureMLP(3, []int{4}, 2, 1)
	flat := net.FlatGrads()
	if len(flat) != net.NumParams() {
		t.Fatalf("grad slab len %d, want %d", len(flat), net.NumParams())
	}
	for i := range flat {
		flat[i] = float32(i + 1)
	}
	off := 0
	for _, p := range net.Params() {
		for i, g := range p.Grad.Data {
			if g != float32(off+i+1) {
				t.Fatalf("param %s grad[%d] = %v, not a slab view", p.Name, i, g)
			}
		}
		off += p.Size()
	}
}

// TestDataParallelEquivalence verifies the core DDP property: n replicas
// training on n disjoint batch shards with gradient averaging produce
// exactly the same weights as a single model trained on the concatenated
// batch. This is what keeps the paper's multi-GPU runs semantically
// equivalent to large-batch single-GPU training.
func TestDataParallelEquivalence(t *testing.T) {
	const n = 4
	const shardSize = 5
	rng := rand.New(rand.NewPCG(21, 22))

	build := func() *nn.Network { return nn.ArchitectureMLP(3, []int{8}, 2, 77) }

	// Shared input: n shards of shardSize rows each.
	shards := make([]*tensor.Matrix, n)
	targets := make([]*tensor.Matrix, n)
	full := tensor.New(n*shardSize, 3)
	fullTarget := tensor.New(n*shardSize, 2)
	for s := 0; s < n; s++ {
		shards[s] = tensor.New(shardSize, 3)
		targets[s] = tensor.New(shardSize, 2)
		for r := 0; r < shardSize; r++ {
			for c := 0; c < 3; c++ {
				v := float32(rng.NormFloat64())
				shards[s].Set(r, c, v)
				full.Set(s*shardSize+r, c, v)
			}
			for c := 0; c < 2; c++ {
				v := float32(rng.NormFloat64())
				targets[s].Set(r, c, v)
				fullTarget.Set(s*shardSize+r, c, v)
			}
		}
	}

	// Reference: single model, full batch, SGD.
	ref := build()
	loss := nn.NewMSELoss()
	const lr = 0.1
	const steps = 5
	for i := 0; i < steps; i++ {
		ref.ZeroGrad()
		ref.Backward(loss.Backward(ref.Forward(full), fullTarget))
		for _, p := range ref.Params() {
			tensor.Axpy(-lr, p.Grad.Data, p.Value.Data)
		}
	}

	// DDP: n replicas on shards with gradient mean.
	comm := NewCommunicator(n)
	replicas := make([]*nn.Network, n)
	for r := range replicas {
		replicas[r] = build()
	}
	runRanks(n, func(rank int) {
		net := replicas[rank]
		l := nn.NewMSELoss()
		for i := 0; i < steps; i++ {
			net.ZeroGrad()
			net.Backward(l.Backward(net.Forward(shards[rank]), targets[rank]))
			SyncGradients(comm, rank, net.FlatGrads())
			tensor.Axpy(-lr, net.FlatGrads(), net.FlatParams())
		}
	})

	// All replicas identical.
	for r := 1; r < n; r++ {
		pa, pb := replicas[0].Params(), replicas[r].Params()
		for i := range pa {
			for j := range pa[i].Value.Data {
				if pa[i].Value.Data[j] != pb[i].Value.Data[j] {
					t.Fatalf("replicas 0 and %d diverged at param %d[%d]", r, i, j)
				}
			}
		}
	}
	// Replica ≈ reference (float reduction order differs, so tolerance).
	pr, p0 := ref.Params(), replicas[0].Params()
	for i := range pr {
		for j := range pr[i].Value.Data {
			d := math.Abs(float64(pr[i].Value.Data[j] - p0[i].Value.Data[j]))
			if d > 1e-4 {
				t.Fatalf("DDP diverged from large-batch reference: param %d[%d] diff %v", i, j, d)
			}
		}
	}
}

// TestDDPWithAdam checks that replicas stay bit-identical across Adam steps
// (each replica applies the same averaged gradient to the same state).
func TestDDPWithAdam(t *testing.T) {
	const n = 3
	comm := NewCommunicator(n)
	replicas := make([]*nn.Network, n)
	for r := range replicas {
		replicas[r] = nn.ArchitectureMLP(2, []int{4}, 2, 55)
	}
	rng := rand.New(rand.NewPCG(1, 9))
	inputs := make([]*tensor.Matrix, n)
	targets := make([]*tensor.Matrix, n)
	for r := 0; r < n; r++ {
		inputs[r] = tensor.New(4, 2)
		targets[r] = tensor.New(4, 2)
		for i := range inputs[r].Data {
			inputs[r].Data[i] = float32(rng.NormFloat64())
			targets[r].Data[i] = float32(rng.NormFloat64())
		}
	}
	runRanks(n, func(rank int) {
		net := replicas[rank]
		l := nn.NewMSELoss()
		a := opt.NewAdam(1e-3)
		for i := 0; i < 10; i++ {
			net.ZeroGrad()
			net.Backward(l.Backward(net.Forward(inputs[rank]), targets[rank]))
			SyncGradients(comm, rank, net.FlatGrads())
			a.StepFlat(net.FlatParams(), net.FlatGrads())
		}
	})
	for r := 1; r < n; r++ {
		pa, pb := replicas[0].Params(), replicas[r].Params()
		for i := range pa {
			for j := range pa[i].Value.Data {
				if pa[i].Value.Data[j] != pb[i].Value.Data[j] {
					t.Fatalf("Adam replicas diverged (rank %d, param %d[%d])", r, i, j)
				}
			}
		}
	}
}
