package ddp

// Tests for the compressed (binary16 wire codec) collectives: cross-rank
// agreement and tolerance across backends and shapes, the exactness
// carve-outs (small collectives, Broadcast), error-feedback behaviour over
// repeated steps, repeat determinism, and the halved-bytes property the
// compression exists for.

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"melissa/internal/transport"
)

// compressGroups builds the backend × shape matrix for a given codec:
// flat TCP rings for local=1 shapes and hierarchical groups for local=2,
// covering procs ∈ {2,4} like TestHierBitIdenticalToFlat.
func compressGroups(tb testing.TB, codec transport.Codec) map[string]commGroup {
	groups := map[string]commGroup{}
	for _, procs := range []int{2, 4} {
		groups[fmt.Sprintf("tcp/procs=%d", procs)] = newTCPGroupCodec(tb, procs, codec)
		for _, local := range []int{1, 2} {
			groups[fmt.Sprintf("hier/procs=%d/local=%d", procs, local)] = newHierGroupCodec(tb, procs, local, codec)
		}
	}
	return groups
}

// TestCompressedAllReduceTolerance checks the f16 range collective on every
// backend × shape: all ranks must agree bitwise, and the result must stay
// within the quantization error budget of the exact float64 sum. Both the
// error-fed and raw codecs are covered.
func TestCompressedAllReduceTolerance(t *testing.T) {
	const length = 4096
	for _, codec := range []transport.Codec{transport.CodecF16, transport.CodecF16Raw} {
		for name, g := range compressGroups(t, codec) {
			t.Run(fmt.Sprintf("%s/%s", codec, name), func(t *testing.T) {
				n := len(g)
				bufs, want := fillRankBufs(n, length, 23)
				runGroup(g, func(rank int, c Communicator) {
					if err := c.AllReduceSumRange(rank, bufs[rank], 0, length); err != nil {
						t.Error(err)
					}
				})
				// Budget: one input quantization per rank plus one partial-sum
				// requantization per network hop. Inputs are N(0,1), so sums
				// stay well under 16 and the f16 ULP under 2^-6.
				tol := float64(n+n) * math.Ldexp(1, -7)
				for r := 0; r < n; r++ {
					for i := range want {
						if bufs[r][i] != bufs[0][i] {
							t.Fatalf("rank %d differs from rank 0 at elem %d: %v vs %v", r, i, bufs[r][i], bufs[0][i])
						}
						if d := math.Abs(float64(bufs[0][i]) - want[i]); d > tol {
							t.Fatalf("elem %d: got %v, want %v (err %g > %g)", i, bufs[0][i], want[i], d, tol)
						}
					}
				}
			})
		}
	}
}

// TestCompressedSmallCollectiveExact pins the compressMinFloats carve-out:
// collectives below the threshold (like the trainer's 2-float status
// all-reduce) must stay exact float32 even on a compressed ring, bit-equal
// to the channel backend.
func TestCompressedSmallCollectiveExact(t *testing.T) {
	const n = 4
	length := compressMinFloats - 1
	f16Bufs, _ := fillRankBufs(n, length, 5)
	refBufs, _ := fillRankBufs(n, length, 5)
	g := newTCPGroupCodec(t, n, transport.CodecF16)
	ref := backendFactories["chan"](t, n)
	runGroup(g, func(rank int, c Communicator) { c.AllReduceSumRange(rank, f16Bufs[rank], 0, length) })
	runGroup(ref, func(rank int, c Communicator) { c.AllReduceSumRange(rank, refBufs[rank], 0, length) })
	for r := 0; r < n; r++ {
		for i := 0; i < length; i++ {
			if f16Bufs[r][i] != refBufs[r][i] {
				t.Fatalf("rank %d elem %d: f16 ring %v vs exact %v", r, i, f16Bufs[r][i], refBufs[r][i])
			}
		}
	}
}

// TestCompressedBroadcastExact pins that Broadcast ships exact float32 on a
// compressed ring — it carries weights, not gradients — including through
// the chunked streaming path for buffers beyond broadcastChunkFloats.
func TestCompressedBroadcastExact(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-megabyte broadcast")
	}
	const procs = 2
	length := broadcastChunkFloats + 12345 // forces the second chunk, uneven tail
	for name, build := range map[string]func(testing.TB) commGroup{
		"tcp":  func(tb testing.TB) commGroup { return newTCPGroupCodec(tb, procs, transport.CodecF16) },
		"hier": func(tb testing.TB) commGroup { return newHierGroupCodec(tb, procs, 2, transport.CodecF16) },
	} {
		t.Run(name, func(t *testing.T) {
			g := build(t)
			n := len(g)
			rng := rand.New(rand.NewPCG(1, 2))
			root := make([]float32, length)
			for i := range root {
				// Values with mantissa bits far beyond binary16 precision, so
				// any lossy hop would be caught.
				root[i] = float32(rng.NormFloat64()) * 1e-3
			}
			bufs := make([][]float32, n)
			for r := range bufs {
				if r == 0 {
					bufs[r] = append([]float32(nil), root...)
				} else {
					bufs[r] = make([]float32, length)
				}
			}
			runGroup(g, func(rank int, c Communicator) {
				if err := c.Broadcast(rank, 0, bufs[rank]); err != nil {
					t.Error(err)
				}
			})
			for r := 0; r < n; r++ {
				for i := range root {
					if bufs[r][i] != root[i] {
						t.Fatalf("rank %d elem %d: %v, want %v — broadcast was lossy", r, i, bufs[r][i], root[i])
					}
				}
			}
		})
	}
}

// TestCompressedRepeatDeterminism pins the determinism contract: two
// freshly built groups running the same call sequence produce bit-identical
// results, for both compressed codecs and both backends.
func TestCompressedRepeatDeterminism(t *testing.T) {
	const length = 2048
	const steps = 3
	run := func(g commGroup) [][]float32 {
		n := len(g)
		out := make([][]float32, n)
		bufs := make([][]float32, n)
		for s := 0; s < steps; s++ {
			step, _ := fillRankBufs(n, length, uint64(100+s))
			for r := range bufs {
				bufs[r] = step[r]
			}
			runGroup(g, func(rank int, c Communicator) {
				if err := c.AllReduceSumRange(rank, bufs[rank], 0, length); err != nil {
					t.Error(err)
				}
			})
		}
		for r := range bufs {
			out[r] = bufs[r]
		}
		return out
	}
	for _, codec := range []transport.Codec{transport.CodecF16, transport.CodecF16Raw} {
		t.Run(codec.String(), func(t *testing.T) {
			for name, build := range map[string]func(testing.TB) commGroup{
				"tcp":  func(tb testing.TB) commGroup { return newTCPGroupCodec(tb, 4, codec) },
				"hier": func(tb testing.TB) commGroup { return newHierGroupCodec(tb, 2, 2, codec) },
			} {
				t.Run(name, func(t *testing.T) {
					a := run(build(t))
					b := run(build(t))
					for r := range a {
						for i := range a[r] {
							if a[r][i] != b[r][i] {
								t.Fatalf("rank %d elem %d: run A %v vs run B %v", r, i, a[r][i], b[r][i])
							}
						}
					}
				})
			}
		})
	}
}

// TestCompressedErrorFeedback pins why CodecF16 carries residuals: with a
// persistent per-step gradient bias, raw quantization loses the same error
// every step, while error feedback re-injects it — so the accumulated sum
// over many steps tracks the exact accumulation strictly better. The same
// fixed per-rank "gradients" are reduced repeatedly (the worst case for
// dropped error) and the running totals compared against exact float64.
func TestCompressedErrorFeedback(t *testing.T) {
	const n = 4
	const length = 4096
	const steps = 20
	grads, _ := fillRankBufs(n, length, 77)
	// Exact per-step sum in float64.
	exact := make([]float64, length)
	for r := 0; r < n; r++ {
		for i, v := range grads[r] {
			exact[i] += float64(v)
		}
	}

	accumulate := func(codec transport.Codec) []float64 {
		g := newTCPGroupCodec(t, n, codec)
		acc := make([]float64, length)
		bufs := make([][]float32, n)
		for r := range bufs {
			bufs[r] = make([]float32, length)
		}
		for s := 0; s < steps; s++ {
			for r := range bufs {
				copy(bufs[r], grads[r])
			}
			runGroup(g, func(rank int, c Communicator) {
				if err := c.AllReduceSumRange(rank, bufs[rank], 0, length); err != nil {
					t.Error(err)
				}
			})
			for i, v := range bufs[0] {
				acc[i] += float64(v)
			}
		}
		return acc
	}

	l2err := func(acc []float64) float64 {
		var sum float64
		for i := range acc {
			d := acc[i]/steps - exact[i]
			sum += d * d
		}
		return math.Sqrt(sum)
	}

	efErr := l2err(accumulate(transport.CodecF16))
	rawErr := l2err(accumulate(transport.CodecF16Raw))
	t.Logf("mean-step L2 error over %d steps: ef=%g raw=%g", steps, efErr, rawErr)
	// EF annihilates the input-quantization bias but not the hop-wise
	// requantization of partial sums (which is identical in both modes and
	// not error-fed — see docs/communication.md), so the win is a solid
	// fraction, not orders of magnitude. The run is fully deterministic;
	// the margin below has real headroom over the observed ratio.
	if efErr >= 0.85*rawErr {
		t.Fatalf("error feedback did not help enough: ef L2 %g vs raw L2 %g", efErr, rawErr)
	}
}

// TestCompressedWireBytesHalved pins the point of the whole exercise: the
// same collective moves about half the bytes on a CodecF16 ring. Framing
// overhead keeps it from exactly 2×, so assert a ≥1.9× reduction.
func TestCompressedWireBytesHalved(t *testing.T) {
	const n = 4
	const length = 1 << 14
	measure := func(codec transport.Codec) uint64 {
		g := newTCPGroupCodec(t, n, codec)
		bufs := make([][]float32, n)
		for r := range bufs {
			bufs[r] = make([]float32, length)
		}
		runGroup(g, func(rank int, c Communicator) { c.AllReduceSumRange(rank, bufs[rank], 0, length) })
		sent, _ := g[0].(WireCompression).WireBytes()
		return sent
	}
	f32 := measure(transport.CodecF32)
	f16 := measure(transport.CodecF16)
	t.Logf("wire bytes per rank: f32=%d f16=%d (ratio %.2f)", f32, f16, float64(f32)/float64(f16))
	if float64(f32) < 1.9*float64(f16) {
		t.Fatalf("f16 ring sent %d bytes vs f32's %d: less than 1.9x reduction", f16, f32)
	}
}

// TestWireCompressionInterface pins which backends expose wire compression
// introspection and what they report.
func TestWireCompressionInterface(t *testing.T) {
	g := newTCPGroupCodec(t, 2, transport.CodecF16)
	wc, ok := g[0].(WireCompression)
	if !ok {
		t.Fatal("TCPComm does not implement WireCompression")
	}
	if wc.WireCodec() != transport.CodecF16 {
		t.Fatalf("codec %v, want f16", wc.WireCodec())
	}
	h := newHierGroupCodec(t, 2, 2, transport.CodecF16Raw)
	hw, ok := h[0].(WireCompression)
	if !ok {
		t.Fatal("HierComm does not implement WireCompression")
	}
	if hw.WireCodec() != transport.CodecF16Raw {
		t.Fatalf("codec %v, want f16-noef", hw.WireCodec())
	}
	var c Communicator = NewCommunicator(2)
	if _, ok := c.(WireCompression); ok {
		t.Fatal("ChanComm unexpectedly implements WireCompression")
	}
}
