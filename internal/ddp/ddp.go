// Package ddp implements distributed data-parallel primitives: collective
// operations (all-reduce, broadcast, barrier) over a fixed group of
// training ranks, behind a pluggable Communicator interface with two
// backends.
//
// The paper's server trains with "distributed data parallelism … After each
// batch backpropagation, the locally computed vector of weight updates is
// all-reduced between all processes and applied to each local NN copy to
// keep them identical" (§3.1). Both backends run the same bandwidth-optimal
// ring scatter-reduce/all-gather pattern NCCL uses, so their cost model
// (2(n−1)/n · bytes) is also what the cluster simulator charges for
// gradient synchronization:
//
//   - ChanComm connects ranks that are goroutines of one process (the
//     stand-in for GPU training processes) through channels with recycled
//     message buffers.
//   - TCPComm connects ranks that are separate OS processes through a TCP
//     ring (transport.Ring), reusing the transport package's length-framed
//     wire format and the same recycled-buffer discipline.
//
// Collectives operate directly on the caller's flat buffer — for training,
// nn.Network.FlatGrads — so there is no gather/scatter staging copy, and
// both backends are allocation-free in steady state.
//
// # Bucketed overlap
//
// The range collectives (AllReduceSumRange) exist so the trainer can
// overlap gradient synchronization with backpropagation: the flat gradient
// slab is bucketed by layer boundaries (nn.Network.GradBuckets), and each
// bucket's all-reduce is launched as soon as its layer's gradients are
// final, while earlier layers are still back-propagating. Each range
// collective is an independent ring reduction over buf[lo:hi]; all ranks
// must issue the same sequence of ranges in the same order. Because every
// bucket's reduction order is fixed by its own ring chunking, launching
// buckets eagerly (overlapped) or after the full backward pass (serially)
// produces bit-identical results.
//
// # Wire compression
//
// The transport backends optionally compress collective payloads to IEEE
// 754 binary16 on the wire (transport.Codec, negotiated per ring in the
// identity handshake), halving inter-node all-reduce bytes while every
// rank keeps accumulating in float32. AllReduceSumRange feeds the rounding
// error of each rank's own contribution back into the next step's
// gradients (error feedback, CodecF16) or drops it (CodecF16Raw);
// broadcasts and sub-compressMinFloats frames always travel exact.
// Communicators on a compressed ring expose the negotiated codec and
// socket-level byte counters through WireCompression, which
// core.NewTrainer validates against TrainerConfig.GradCompress so a
// codec mismatch fails at construction. The codec math, determinism
// contract and tuning guidance live in docs/communication.md.
//
// # Failure model
//
// Collectives return errors instead of panicking. ChanComm cannot fail.
// TCPComm fails when a ring link does: the transport layer's heartbeats
// and IO deadlines (transport.RingOptions) detect a dead or partitioned
// peer within one IO timeout, and the error propagates out of whichever
// collective is in flight. Classify sorts errors into transient
// (connection establishment — retry with backoff, e.g. via Retry, as
// ConnectTCP's dial loop already does), aborted (deliberate local
// teardown via TCPComm.Abort during group reconfiguration), and fatal
// (established-link death — the ring epoch is unusable; the group must
// re-form over the survivors and roll back to the last group checkpoint,
// the protocol the internal/elastic membership controller implements). A
// communicator that returned a non-nil error is poisoned and must be
// closed, never reused.
package ddp

import (
	"fmt"
	"sync"
)

// Communicator connects a fixed group of ranks for collective operations.
// Every collective must be entered by all ranks concurrently (one goroutine
// or process per rank), like an MPI communicator, and with matching
// arguments (equal buffer lengths, identical ranges, same root). Rank
// identifies the caller in the global rank space [0, Size).
//
// Collectives return an error when the communicator's links fail: the
// in-process backend cannot fail (it always returns nil, and the nil
// result costs nothing on the hot path), while the transport backend
// surfaces broken ring links as errors instead of the pre-elastic panic.
// Callers classify the error (Classify): transient faults may be retried,
// fatal ones mean this ring epoch is dead and the group must re-form over
// the survivors (internal/elastic). After any non-nil error the
// communicator is poisoned — no further collective on it may be issued.
type Communicator interface {
	// Size returns the number of ranks in the group.
	Size() int
	// AllReduceSum replaces buf on every rank with the element-wise sum
	// across ranks. Deterministic: results are identical on every rank and
	// across repeated runs.
	AllReduceSum(rank int, buf []float32) error
	// AllReduceSumRange all-reduces the subrange buf[lo:hi] as an
	// independent collective, leaving the rest of buf untouched. This is
	// the bucketed-overlap primitive: all ranks must issue the same
	// sequence of ranges in the same order.
	AllReduceSumRange(rank int, buf []float32, lo, hi int) error
	// AllReduceMean is AllReduceSum followed by division by the rank
	// count — gradient averaging across data-parallel replicas.
	AllReduceMean(rank int, buf []float32) error
	// Broadcast copies rank root's buffer into every other rank's buffer.
	Broadcast(rank, root int, buf []float32) error
	// Barrier blocks until every rank has entered it.
	Barrier(rank int) error
}

// link is one directed channel of the ring (or one broadcast fan-out arm)
// together with its recycled message buffers. Senders draw an owned buffer
// from free, fill it and pass it through data; receivers consume it and
// return it to free. Two buffers keep the pipeline full without ever
// sharing a buffer between writer and reader.
type link struct {
	data chan []float32
	free chan []float32
}

func newLink() link {
	l := link{
		data: make(chan []float32, linkDepth),
		free: make(chan []float32, linkDepth),
	}
	for i := 0; i < linkDepth; i++ {
		l.free <- nil // sized lazily on first send
	}
	return l
}

// linkDepth is the number of in-flight message buffers per link.
const linkDepth = 2

// send fills a recycled buffer with msg and passes it down the link.
func (l *link) send(msg []float32) {
	buf := <-l.free
	if cap(buf) < len(msg) {
		buf = make([]float32, len(msg))
	}
	buf = buf[:len(msg)]
	copy(buf, msg)
	l.data <- buf
}

// ChanComm is the in-process Communicator backend: ranks are goroutines
// connected by channels. It is the backend the single-process server and
// the tests use.
type ChanComm struct {
	n     int
	links []link // links[r] carries messages rank r → rank (r+1)%n
	bcast []link // one link per rank for broadcast fan-out
	bar   *barrier
}

var _ Communicator = (*ChanComm)(nil)

// NewCommunicator creates an in-process channel communicator for n ranks.
func NewCommunicator(n int) *ChanComm {
	if n <= 0 {
		panic(fmt.Sprintf("ddp: invalid communicator size %d", n))
	}
	c := &ChanComm{
		n:     n,
		links: make([]link, n),
		bcast: make([]link, n),
		bar:   newBarrier(n),
	}
	for i := range c.links {
		c.links[i] = newLink()
		c.bcast[i] = newLink()
	}
	return c
}

// Size implements Communicator.
func (c *ChanComm) Size() int { return c.n }

// chunkRange returns the bounds [lo, hi) of the i-th of n near-equal
// contiguous chunks of a length-sized buffer. Pure arithmetic — no
// boundary slice is materialized on the hot path.
func chunkRange(length, n, i int) (lo, hi int) {
	base, rem := length/n, length%n
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// AllReduceSum implements Communicator, using a ring scatter-reduce
// followed by a ring all-gather. The reduction order for each chunk is
// fixed by ring position, so results are deterministic and identical on
// every rank.
func (c *ChanComm) AllReduceSum(rank int, buf []float32) error {
	if c.n == 1 {
		return nil
	}
	n := c.n
	chunk := func(i int) []float32 {
		lo, hi := chunkRange(len(buf), n, ((i%n)+n)%n)
		return buf[lo:hi]
	}

	send := &c.links[rank]
	recv := &c.links[(rank-1+n)%n]

	// Scatter-reduce: after step s, rank r has accumulated s+1 terms into
	// chunk (r-s). After n-1 steps, chunk (r+1) holds the complete sum.
	for s := 0; s < n-1; s++ {
		send.send(chunk(rank - s))
		in := <-recv.data
		dst := chunk(rank - s - 1)
		for i := range dst {
			dst[i] += in[i]
		}
		recv.free <- in
	}
	// All-gather: circulate the completed chunks.
	for s := 0; s < n-1; s++ {
		send.send(chunk(rank + 1 - s))
		in := <-recv.data
		copy(chunk(rank-s), in)
		recv.free <- in
	}
	return nil
}

// AllReduceSumRange implements Communicator: an independent ring reduction
// over buf[lo:hi]. The chunking is relative to the range, so the same
// range must be issued by every rank.
func (c *ChanComm) AllReduceSumRange(rank int, buf []float32, lo, hi int) error {
	return c.AllReduceSum(rank, buf[lo:hi])
}

// AllReduceMean implements Communicator.
func (c *ChanComm) AllReduceMean(rank int, buf []float32) error {
	if err := c.AllReduceSum(rank, buf); err != nil {
		return err
	}
	if c.n > 1 {
		inv := 1 / float32(c.n)
		for i := range buf {
			buf[i] *= inv
		}
	}
	return nil
}

// SyncGradients averages a network's gradient slab (nn.Network.FlatGrads)
// across all ranks of comm. Every rank must call it concurrently after its
// local backward pass; on return each replica holds identical averaged
// gradients, matching the all-reduce step of §3.1. The collective operates
// on the slab in place — no gather/scatter staging.
func SyncGradients(comm Communicator, rank int, grads []float32) error {
	return comm.AllReduceMean(rank, grads)
}

// Broadcast implements Communicator. All ranks must call it concurrently;
// buffers must have equal length.
func (c *ChanComm) Broadcast(rank, root int, buf []float32) error {
	if c.n == 1 {
		return nil
	}
	if rank == root {
		for r := 0; r < c.n; r++ {
			if r != root {
				c.bcast[r].send(buf)
			}
		}
	} else {
		in := <-c.bcast[rank].data
		copy(buf, in)
		c.bcast[rank].free <- in
	}
	return c.Barrier(rank)
}

// Barrier implements Communicator.
func (c *ChanComm) Barrier(int) error {
	c.bar.wait()
	return nil
}

// barrier is a reusable n-party barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for b.phase == phase {
		b.cond.Wait()
	}
}
