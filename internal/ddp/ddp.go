// Package ddp implements distributed data-parallel primitives: a ring
// all-reduce over per-rank gradient slabs, broadcast, and barriers.
//
// The paper's server trains with "distributed data parallelism … After each
// batch backpropagation, the locally computed vector of weight updates is
// all-reduced between all processes and applied to each local NN copy to
// keep them identical" (§3.1). Ranks here are goroutines (the stand-in for
// GPU training processes) connected by channels; the ring algorithm is the
// same bandwidth-optimal scatter-reduce/all-gather pattern NCCL uses, so
// its cost model (2(n−1)/n · bytes) is also what the cluster simulator
// charges for gradient synchronization.
//
// Collectives operate directly on the caller's flat buffer — for training,
// nn.Network.FlatGrads — so there is no gather/scatter staging copy. Every
// link recycles its message buffers through a free list, making
// AllReduceSum, AllReduceMean and Broadcast allocation-free in steady
// state: a buffer is only written by a rank that holds it, and ownership
// passes data → receiver → free list → sender, so reuse is race-free by
// construction.
package ddp

import (
	"fmt"
	"sync"
)

// link is one directed channel of the ring (or one broadcast fan-out arm)
// together with its recycled message buffers. Senders draw an owned buffer
// from free, fill it and pass it through data; receivers consume it and
// return it to free. Two buffers keep the pipeline full without ever
// sharing a buffer between writer and reader.
type link struct {
	data chan []float32
	free chan []float32
}

func newLink() link {
	l := link{
		data: make(chan []float32, linkDepth),
		free: make(chan []float32, linkDepth),
	}
	for i := 0; i < linkDepth; i++ {
		l.free <- nil // sized lazily on first send
	}
	return l
}

// linkDepth is the number of in-flight message buffers per link.
const linkDepth = 2

// send fills a recycled buffer with msg and passes it down the link.
func (l *link) send(msg []float32) {
	buf := <-l.free
	if cap(buf) < len(msg) {
		buf = make([]float32, len(msg))
	}
	buf = buf[:len(msg)]
	copy(buf, msg)
	l.data <- buf
}

// Communicator connects a fixed group of ranks for collective operations.
// Every collective must be entered by all ranks concurrently (one goroutine
// per rank), like an MPI communicator.
type Communicator struct {
	n     int
	links []link // links[r] carries messages rank r → rank (r+1)%n
	bcast []link // one link per rank for broadcast fan-out
	bar   *barrier
}

// NewCommunicator creates a communicator for n ranks.
func NewCommunicator(n int) *Communicator {
	if n <= 0 {
		panic(fmt.Sprintf("ddp: invalid communicator size %d", n))
	}
	c := &Communicator{
		n:     n,
		links: make([]link, n),
		bcast: make([]link, n),
		bar:   newBarrier(n),
	}
	for i := range c.links {
		c.links[i] = newLink()
		c.bcast[i] = newLink()
	}
	return c
}

// Size returns the number of ranks.
func (c *Communicator) Size() int { return c.n }

// chunkRange returns the bounds [lo, hi) of the i-th of n near-equal
// contiguous chunks of a length-sized buffer. Pure arithmetic — no
// boundary slice is materialized on the hot path.
func chunkRange(length, n, i int) (lo, hi int) {
	base, rem := length/n, length%n
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// AllReduceSum replaces buf on every rank with the element-wise sum across
// ranks, using a ring scatter-reduce followed by a ring all-gather. All
// ranks must call it concurrently with equal-length buffers. The reduction
// order for each chunk is fixed by ring position, so results are
// deterministic and identical on every rank.
func (c *Communicator) AllReduceSum(rank int, buf []float32) {
	if c.n == 1 {
		return
	}
	n := c.n
	chunk := func(i int) []float32 {
		lo, hi := chunkRange(len(buf), n, ((i%n)+n)%n)
		return buf[lo:hi]
	}

	send := &c.links[rank]
	recv := &c.links[(rank-1+n)%n]

	// Scatter-reduce: after step s, rank r has accumulated s+1 terms into
	// chunk (r-s). After n-1 steps, chunk (r+1) holds the complete sum.
	for s := 0; s < n-1; s++ {
		send.send(chunk(rank - s))
		in := <-recv.data
		dst := chunk(rank - s - 1)
		for i := range dst {
			dst[i] += in[i]
		}
		recv.free <- in
	}
	// All-gather: circulate the completed chunks.
	for s := 0; s < n-1; s++ {
		send.send(chunk(rank + 1 - s))
		in := <-recv.data
		copy(chunk(rank-s), in)
		recv.free <- in
	}
}

// AllReduceMean is AllReduceSum followed by division by the rank count,
// which is how gradients are averaged across data-parallel replicas.
func (c *Communicator) AllReduceMean(rank int, buf []float32) {
	c.AllReduceSum(rank, buf)
	if c.n > 1 {
		inv := 1 / float32(c.n)
		for i := range buf {
			buf[i] *= inv
		}
	}
}

// SyncGradients averages a network's gradient slab (nn.Network.FlatGrads)
// across all ranks of comm. Every rank must call it concurrently after its
// local backward pass; on return each replica holds identical averaged
// gradients, matching the all-reduce step of §3.1. The collective operates
// on the slab in place — no gather/scatter staging.
func SyncGradients(comm *Communicator, rank int, grads []float32) {
	comm.AllReduceMean(rank, grads)
}

// Broadcast copies rank root's buffer into every other rank's buffer. All
// ranks must call it concurrently; buffers must have equal length.
func (c *Communicator) Broadcast(rank, root int, buf []float32) {
	if c.n == 1 {
		return
	}
	if rank == root {
		for r := 0; r < c.n; r++ {
			if r != root {
				c.bcast[r].send(buf)
			}
		}
	} else {
		in := <-c.bcast[rank].data
		copy(buf, in)
		c.bcast[rank].free <- in
	}
	c.Barrier()
}

// Barrier blocks until every rank has entered it.
func (c *Communicator) Barrier() { c.bar.wait() }

// barrier is a reusable n-party barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for b.phase == phase {
		b.cond.Wait()
	}
}
