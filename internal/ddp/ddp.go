// Package ddp implements distributed data-parallel primitives: a ring
// all-reduce over per-rank gradient buffers, broadcast, and barriers.
//
// The paper's server trains with "distributed data parallelism … After each
// batch backpropagation, the locally computed vector of weight updates is
// all-reduced between all processes and applied to each local NN copy to
// keep them identical" (§3.1). Ranks here are goroutines (the stand-in for
// GPU training processes) connected by channels; the ring algorithm is the
// same bandwidth-optimal scatter-reduce/all-gather pattern NCCL uses, so
// its cost model (2(n−1)/n · bytes) is also what the cluster simulator
// charges for gradient synchronization.
package ddp

import (
	"fmt"
	"sync"
)

// Communicator connects a fixed group of ranks for collective operations.
// Every collective must be entered by all ranks concurrently (one goroutine
// per rank), like an MPI communicator.
type Communicator struct {
	n     int
	links []chan []float32 // links[r] carries messages rank r → rank (r+1)%n
	bcast []chan []float32 // one channel per rank for broadcast fan-out
	bar   *barrier
}

// NewCommunicator creates a communicator for n ranks.
func NewCommunicator(n int) *Communicator {
	if n <= 0 {
		panic(fmt.Sprintf("ddp: invalid communicator size %d", n))
	}
	c := &Communicator{
		n:     n,
		links: make([]chan []float32, n),
		bcast: make([]chan []float32, n),
		bar:   newBarrier(n),
	}
	for i := range c.links {
		c.links[i] = make(chan []float32, 1)
		c.bcast[i] = make(chan []float32, 1)
	}
	return c
}

// Size returns the number of ranks.
func (c *Communicator) Size() int { return c.n }

// AllReduceSum replaces buf on every rank with the element-wise sum across
// ranks, using a ring scatter-reduce followed by a ring all-gather. All
// ranks must call it concurrently with equal-length buffers. The reduction
// order for each chunk is fixed by ring position, so results are
// deterministic and identical on every rank.
func (c *Communicator) AllReduceSum(rank int, buf []float32) {
	if c.n == 1 {
		return
	}
	n := c.n
	bounds := chunkBounds(len(buf), n)
	chunk := func(i int) []float32 {
		i = ((i % n) + n) % n
		return buf[bounds[i]:bounds[i+1]]
	}

	send := c.links[rank]
	recv := c.links[(rank-1+n)%n]

	// Scatter-reduce: after step s, rank r has accumulated s+1 terms into
	// chunk (r-s). After n-1 steps, chunk (r+1) holds the complete sum.
	for s := 0; s < n-1; s++ {
		out := chunk(rank - s)
		msg := make([]float32, len(out))
		copy(msg, out)
		send <- msg
		in := <-recv
		dst := chunk(rank - s - 1)
		for i := range dst {
			dst[i] += in[i]
		}
	}
	// All-gather: circulate the completed chunks.
	for s := 0; s < n-1; s++ {
		out := chunk(rank + 1 - s)
		msg := make([]float32, len(out))
		copy(msg, out)
		send <- msg
		in := <-recv
		copy(chunk(rank-s), in)
	}
}

// AllReduceMean is AllReduceSum followed by division by the rank count,
// which is how gradients are averaged across data-parallel replicas.
func (c *Communicator) AllReduceMean(rank int, buf []float32) {
	c.AllReduceSum(rank, buf)
	if c.n > 1 {
		inv := 1 / float32(c.n)
		for i := range buf {
			buf[i] *= inv
		}
	}
}

// Broadcast copies rank root's buffer into every other rank's buffer. All
// ranks must call it concurrently; buffers must have equal length.
func (c *Communicator) Broadcast(rank, root int, buf []float32) {
	if c.n == 1 {
		return
	}
	if rank == root {
		msg := make([]float32, len(buf))
		copy(msg, buf)
		for r := 0; r < c.n; r++ {
			if r != root {
				c.bcast[r] <- msg
			}
		}
	} else {
		copy(buf, <-c.bcast[rank])
	}
	c.Barrier()
}

// Barrier blocks until every rank has entered it.
func (c *Communicator) Barrier() { c.bar.wait() }

// chunkBounds splits length len into n contiguous chunks as evenly as
// possible and returns the n+1 boundary offsets.
func chunkBounds(length, n int) []int {
	bounds := make([]int, n+1)
	base, rem := length/n, length%n
	off := 0
	for i := 0; i < n; i++ {
		bounds[i] = off
		off += base
		if i < rem {
			off++
		}
	}
	bounds[n] = length
	return bounds
}

// barrier is a reusable n-party barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for b.phase == phase {
		b.cond.Wait()
	}
}
