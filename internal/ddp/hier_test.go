package ddp

// Tests for the hierarchical communicator: correctness across process/
// local-rank shapes, bit-identity with the flat ring backends (the property
// server.Config relies on when -local-ranks changes the physical topology
// without changing the training trajectory), and the leader-hop benchmark.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"melissa/internal/transport"
)

// newHierGroup wires procs HierComm endpoints over a loopback ring, each
// hosting local consecutive global ranks, and expands them into the
// per-rank commGroup shape the shared helpers expect.
func newHierGroup(tb testing.TB, procs, local int) commGroup {
	return newHierGroupCodec(tb, procs, local, transport.CodecF32)
}

// newHierGroupCodec is newHierGroup with an explicit wire codec for the
// inter-process ring (channel hops are always exact).
func newHierGroupCodec(tb testing.TB, procs, local int, codec transport.Codec) commGroup {
	tb.Helper()
	listeners := make([]*transport.RingListener, procs)
	addrs := make([]string, procs)
	for p := range listeners {
		l, err := transport.ListenRing("127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		listeners[p] = l
		addrs[p] = l.Addr()
	}
	comms := make([]*HierComm, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for p := range comms {
		wg.Add(1)
		go func(proc int) {
			defer wg.Done()
			ring, err := listeners[proc].ConnectContext(tb.Context(), proc, addrs, 10*time.Second,
				transport.RingOptions{Identity: GroupIdentity(local), Codec: codec})
			if err != nil {
				errs[proc] = err
				return
			}
			comms[proc] = NewHierComm(ring, local)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			tb.Fatal(err)
		}
	}
	tb.Cleanup(func() {
		for _, c := range comms {
			c.Close()
		}
	})
	g := make(commGroup, procs*local)
	for p, c := range comms {
		for l := 0; l < local; l++ {
			g[p*local+l] = c
		}
	}
	return g
}

// TestHierCollectives runs the core collective checks across process ×
// local-rank shapes, including the degenerate single-process ring (where
// every hop stays on channel links).
func TestHierCollectives(t *testing.T) {
	for _, shape := range []struct{ procs, local int }{
		{1, 1}, {1, 3}, {2, 1}, {2, 2}, {3, 2}, {4, 2},
	} {
		t.Run(fmt.Sprintf("procs=%d/local=%d", shape.procs, shape.local), func(t *testing.T) {
			g := newHierGroup(t, shape.procs, shape.local)
			n := shape.procs * shape.local

			// Length 7 exercises uneven (and, for n>7, empty) chunks.
			bufs, want := fillRankBufs(n, 7, 42)
			runGroup(g, func(rank int, c Communicator) { c.AllReduceSum(rank, bufs[rank]) })
			for r := 0; r < n; r++ {
				for i := range want {
					if bufs[r][i] != bufs[0][i] {
						t.Fatalf("rank %d differs from rank 0 at %d", r, i)
					}
					if d := float64(bufs[0][i]) - want[i]; d > 1e-4 || d < -1e-4 {
						t.Fatalf("elem %d: got %v, want %v", i, bufs[0][i], want[i])
					}
				}
			}

			// Broadcast from a mid-group root.
			root := (n - 1) / 2
			bbufs := make([][]float32, n)
			for r := range bbufs {
				bbufs[r] = []float32{float32(r), float32(r)}
			}
			runGroup(g, func(rank int, c Communicator) { c.Broadcast(rank, root, bbufs[rank]) })
			for r := 0; r < n; r++ {
				if bbufs[r][0] != float32(root) || bbufs[r][1] != float32(root) {
					t.Fatalf("rank %d: %v, want root %d", r, bbufs[r], root)
				}
			}

			// Barrier: no rank may pass before all enter.
			var mu sync.Mutex
			entered := 0
			fail := false
			runGroup(g, func(rank int, c Communicator) {
				mu.Lock()
				entered++
				mu.Unlock()
				c.Barrier(rank)
				mu.Lock()
				if entered != n {
					fail = true
				}
				mu.Unlock()
				c.Barrier(rank) // reusable
			})
			if fail {
				t.Fatal("barrier released before all ranks arrived")
			}

			// RankSpan: each endpoint serves its process's contiguous span.
			for p := 0; p < shape.procs; p++ {
				h := g[p*shape.local].(*HierComm)
				if h.RankOffset() != p*shape.local || h.LocalRanks() != shape.local {
					t.Fatalf("proc %d span [%d,+%d), want [%d,+%d)",
						p, h.RankOffset(), h.LocalRanks(), p*shape.local, shape.local)
				}
			}
		})
	}
}

// TestHierBitIdenticalToFlat pins the property the unified server runtime
// is built on: a hierarchical group computes exactly the same floats as the
// flat channel ring AND the flat one-rank-per-process TCP ring of the same
// total size, for every procs × local shape. Changing how ranks are packed
// into processes must never perturb a training trajectory.
func TestHierBitIdenticalToFlat(t *testing.T) {
	const length = 1000
	for _, procs := range []int{2, 4} {
		for _, local := range []int{1, 2} {
			t.Run(fmt.Sprintf("procs=%d/local=%d", procs, local), func(t *testing.T) {
				n := procs * local
				hierBufs, _ := fillRankBufs(n, length, 7)
				chanBufs, _ := fillRankBufs(n, length, 7)
				tcpBufs, _ := fillRankBufs(n, length, 7)

				hierGroup := newHierGroup(t, procs, local)
				chanGroup := backendFactories["chan"](t, n)
				tcpGroup := newTCPGroup(t, n)
				runGroup(hierGroup, func(rank int, c Communicator) { c.AllReduceMean(rank, hierBufs[rank]) })
				runGroup(chanGroup, func(rank int, c Communicator) { c.AllReduceMean(rank, chanBufs[rank]) })
				runGroup(tcpGroup, func(rank int, c Communicator) { c.AllReduceMean(rank, tcpBufs[rank]) })
				for r := 0; r < n; r++ {
					for i := 0; i < length; i++ {
						if hierBufs[r][i] != chanBufs[r][i] {
							t.Fatalf("rank %d elem %d: hier %v vs chan %v", r, i, hierBufs[r][i], chanBufs[r][i])
						}
						if hierBufs[r][i] != tcpBufs[r][i] {
							t.Fatalf("rank %d elem %d: hier %v vs tcp %v", r, i, hierBufs[r][i], tcpBufs[r][i])
						}
					}
				}
			})
		}
	}
}

// TestGroupFromRingShapes checks the one constructor behind every
// multi-process topology: one local rank gets the flat TCP backend, several
// get the hierarchical one, and the offsets land each process's span at
// ring-rank × localRanks.
func TestGroupFromRingShapes(t *testing.T) {
	g := newHierGroup(t, 2, 1) // builds HierComm even for local=1; fine for span checks
	if g[0].(*HierComm).Size() != 2 {
		t.Fatalf("size %d, want 2", g[0].(*HierComm).Size())
	}
	// GroupFromRing's backend choice is checked directly over a fresh ring.
	l0, err := transport.ListenRing("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l1, err := transport.ListenRing("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{l0.Addr(), l1.Addr()}
	rings := make([]*transport.Ring, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for p, l := range []*transport.RingListener{l0, l1} {
		wg.Add(1)
		go func(proc int, l *transport.RingListener) {
			defer wg.Done()
			rings[proc], errs[proc] = l.Connect(proc, addrs, 10*time.Second)
		}(p, l)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	defer rings[0].Close()
	defer rings[1].Close()

	flat := GroupFromRing(rings[0], 1)
	if _, ok := flat.Comm.(*TCPComm); !ok {
		t.Fatalf("localRanks=1 built %T, want *TCPComm", flat.Comm)
	}
	if flat.Offset != 0 {
		t.Fatalf("proc 0 offset %d, want 0", flat.Offset)
	}
	hier := GroupFromRing(rings[1], 3)
	h, ok := hier.Comm.(*HierComm)
	if !ok {
		t.Fatalf("localRanks=3 built %T, want *HierComm", hier.Comm)
	}
	if hier.Offset != 3 || h.Size() != 6 {
		t.Fatalf("proc 1 offset %d size %d, want 3 and 6", hier.Offset, h.Size())
	}
}

// BenchmarkAllReduceHier measures the hierarchical all-reduce on the same
// 64k-element buffer as BenchmarkAllReduce (channel) and
// BenchmarkAllReduceTCP (flat 4-rank loopback ring), under each wire codec.
// procs=4/local=1 is the flat-equivalent shape (no regression expected vs
// TCP); procs=2/local=2 has the same total rank count with half the network
// hops per step.
func BenchmarkAllReduceHier(b *testing.B) {
	const elems = 1 << 16
	for _, shape := range []struct {
		procs, local int
		codec        transport.Codec
	}{
		{4, 1, transport.CodecF32}, {2, 2, transport.CodecF32}, {2, 4, transport.CodecF32},
		{4, 1, transport.CodecF16}, {2, 2, transport.CodecF16},
	} {
		b.Run(fmt.Sprintf("procs=%d/local=%d/%s", shape.procs, shape.local, shape.codec), func(b *testing.B) {
			n := shape.procs * shape.local
			g := newHierGroupCodec(b, shape.procs, shape.local, shape.codec)
			bufs := make([][]float32, n)
			for r := range bufs {
				bufs[r] = make([]float32, elems)
			}
			var wg sync.WaitGroup
			for r := 1; r < n; r++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					for i := 0; i < b.N+1; i++ {
						g[rank].AllReduceSum(rank, bufs[rank])
					}
				}(r)
			}
			g[0].AllReduceSum(0, bufs[0]) // warm the recycled buffers
			b.SetBytes(4 * elems)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g[0].AllReduceSum(0, bufs[0])
			}
			b.StopTimer()
			wg.Wait()
		})
	}
}
