package ddp

import (
	"sync"
	"testing"
)

// spawnPeers launches ranks 1..n-1 running iters lockstep collective calls
// each, returning a WaitGroup to join them. The caller drives rank 0.
func spawnPeers(n, iters int, fn func(rank int)) *sync.WaitGroup {
	var wg sync.WaitGroup
	for r := 1; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fn(rank)
			}
		}(r)
	}
	return &wg
}

// TestAllReduceZeroAlloc pins the steady-state allocation behaviour of the
// ring all-reduce: after the first call sizes the recycled link buffers,
// AllReduceSum must not allocate. Peer ranks run in pre-spawned goroutines
// so only the collective itself is measured; their allocations still count
// (the runtime counter is global), which is exactly what we want.
func TestAllReduceZeroAlloc(t *testing.T) {
	const n = 4
	const runs = 100
	c := NewCommunicator(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = make([]float32, 1<<12)
	}
	// AllocsPerRun invokes f runs+1 times (one warm-up round sizes the
	// buffers); the peers must iterate exactly as often to stay in
	// lockstep.
	wg := spawnPeers(n, runs+1, func(rank int) { c.AllReduceSum(rank, bufs[rank]) })
	avg := testing.AllocsPerRun(runs, func() { c.AllReduceSum(0, bufs[0]) })
	wg.Wait()
	if avg != 0 {
		t.Fatalf("AllReduceSum: %v allocs per call in steady state, want 0", avg)
	}
}

// TestBroadcastZeroAlloc is the same regression gate for Broadcast.
func TestBroadcastZeroAlloc(t *testing.T) {
	const n = 4
	const runs = 100
	c := NewCommunicator(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = make([]float32, 1<<10)
	}
	wg := spawnPeers(n, runs+1, func(rank int) { c.Broadcast(rank, 0, bufs[rank]) })
	avg := testing.AllocsPerRun(runs, func() { c.Broadcast(0, 0, bufs[0]) })
	wg.Wait()
	if avg != 0 {
		t.Fatalf("Broadcast: %v allocs per call in steady state, want 0", avg)
	}
}

// TestAllReduceSumRangeZeroAlloc pins the steady-state allocation
// behaviour of the bucketed range collectives: once the recycled link
// buffers are sized, a fixed sequence of AllReduceSumRange calls (the
// per-layer gradient buckets of the overlap path) must not allocate.
func TestAllReduceSumRangeZeroAlloc(t *testing.T) {
	const n = 4
	const runs = 100
	c := NewCommunicator(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = make([]float32, 1<<12)
	}
	// Two buckets of different sizes, issued in the same order by every
	// rank — the shape of a two-layer network's overlap sync.
	buckets := [][2]int{{0, 3000}, {3000, 1 << 12}}
	syncBuckets := func(rank int) {
		for _, bk := range buckets {
			c.AllReduceSumRange(rank, bufs[rank], bk[0], bk[1])
		}
	}
	wg := spawnPeers(n, runs+1, syncBuckets)
	avg := testing.AllocsPerRun(runs, func() { syncBuckets(0) })
	wg.Wait()
	if avg != 0 {
		t.Fatalf("AllReduceSumRange: %v allocs per bucket sweep in steady state, want 0", avg)
	}
}

// BenchmarkAllReduceRange measures the bucketed collective sweep the
// overlap path issues per step (two layer buckets over a 64k slab),
// against BenchmarkAllReduce's single full-slab collective.
func BenchmarkAllReduceRange(b *testing.B) {
	const n = 4
	const elems = 1 << 16
	c := NewCommunicator(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = make([]float32, elems)
	}
	buckets := [][2]int{{0, elems / 3}, {elems / 3, elems}}
	syncBuckets := func(rank int) {
		for _, bk := range buckets {
			c.AllReduceSumRange(rank, bufs[rank], bk[0], bk[1])
		}
	}
	wg := spawnPeers(n, b.N+1, syncBuckets)
	syncBuckets(0) // size the recycled link buffers
	b.SetBytes(4 * elems)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syncBuckets(0)
	}
	b.StopTimer()
	wg.Wait()
}

// BenchmarkAllReduce measures the steady-state ring all-reduce across 4
// ranks on a 64k-element buffer (the scale of the paper's surrogate
// gradient slab). Peer ranks run in persistent goroutines, so the timed
// loop contains only collective work — no spawn cost, 0 allocs/op.
func BenchmarkAllReduce(b *testing.B) {
	const n = 4
	const elems = 1 << 16
	c := NewCommunicator(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = make([]float32, elems)
	}
	wg := spawnPeers(n, b.N+1, func(rank int) { c.AllReduceSum(rank, bufs[rank]) })
	// One warm-up round sizes the recycled link buffers.
	c.AllReduceSum(0, bufs[0])
	b.SetBytes(4 * elems)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AllReduceSum(0, bufs[0])
	}
	b.StopTimer()
	wg.Wait()
}
