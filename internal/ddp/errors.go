package ddp

// Error classification and retry policy for the failure model introduced
// with the elastic training group: collectives and connection setup return
// errors instead of panicking, callers classify them, and only transient
// faults are retried in place — fatal faults require tearing the ring down
// and re-forming the group over the surviving ranks (internal/elastic).

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"syscall"
	"time"

	"melissa/internal/transport"
)

// FaultClass partitions communicator errors by the recovery they admit.
type FaultClass int

const (
	// FaultNone: no error.
	FaultNone FaultClass = iota
	// FaultTransient: a connection-establishment failure (refused,
	// unreachable, dial timeout). The peer may simply not be up yet —
	// retry with backoff.
	FaultTransient
	// FaultAborted: the local ring was deliberately torn down
	// (transport.Ring.Abort) — expected during group reconfiguration, not
	// a peer failure. Do not retry; rejoin at the next epoch.
	FaultAborted
	// FaultFatal: an established link failed (peer silent past the IO
	// timeout, reset, EOF, corrupt frame). The ring epoch is dead; the
	// group must re-form over survivors and roll back to the last group
	// checkpoint.
	FaultFatal
)

// String implements fmt.Stringer.
func (c FaultClass) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultTransient:
		return "transient"
	case FaultAborted:
		return "aborted"
	case FaultFatal:
		return "fatal"
	default:
		return fmt.Sprintf("FaultClass(%d)", int(c))
	}
}

// Classify maps an error from a collective or from communicator setup to
// its fault class. Established-link faults are checked first: a ring read
// deadline expiry is a dead peer (heartbeats make silence equivalent to
// death), not a retryable timeout.
func Classify(err error) FaultClass {
	if err == nil {
		return FaultNone
	}
	if errors.Is(err, transport.ErrRingAborted) {
		return FaultAborted
	}
	if errors.Is(err, transport.ErrLinkDead) {
		return FaultFatal
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.EHOSTUNREACH) || errors.Is(err, syscall.ENETUNREACH) {
		return FaultTransient
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return FaultTransient
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return FaultTransient
	}
	return FaultFatal
}

// Retry runs fn up to attempts times, sleeping between attempts with
// exponential backoff and full jitter (base, 2·base, … capped at 32·base)
// as long as the error classifies as transient. The first nil, non-retryable,
// or final error is returned; ctx cancellation stops the loop early.
func Retry(ctx context.Context, attempts int, base time.Duration, fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	backoff := base
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil || Classify(err) != FaultTransient {
			return err
		}
		if i == attempts-1 {
			break
		}
		sleep := backoff/2 + time.Duration(rand.Int64N(int64(backoff)))
		select {
		case <-ctx.Done():
			return fmt.Errorf("ddp: retry canceled: %w (last error: %v)", context.Cause(ctx), err)
		case <-time.After(sleep):
		}
		if backoff < 32*base {
			backoff *= 2
		}
	}
	return fmt.Errorf("ddp: %d attempts exhausted: %w", attempts, err)
}
