package ddp

// The backend-parametrized collective suite: every Communicator backend
// must pass identical correctness checks, and the transport backend must
// produce bit-identical results to the channel ring (same algorithm, same
// chunking, same reduction order).

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"melissa/internal/transport"
)

// commGroup is n per-rank communicator handles: the channel backend shares
// one object across ranks, the TCP backend builds one ring endpoint per
// rank over loopback.
type commGroup []Communicator

// backendFactories builds each backend's n-rank group.
var backendFactories = map[string]func(tb testing.TB, n int) commGroup{
	"chan": func(tb testing.TB, n int) commGroup {
		c := NewCommunicator(n)
		g := make(commGroup, n)
		for r := range g {
			g[r] = c
		}
		return g
	},
	"tcp": newTCPGroup,
}

// newTCPGroup wires n TCPComm ranks over loopback: every rank binds an
// ephemeral port first, then all connect concurrently.
func newTCPGroup(tb testing.TB, n int) commGroup {
	return newTCPGroupCodec(tb, n, transport.CodecF32)
}

// newTCPGroupCodec is newTCPGroup with an explicit wire codec, for the
// compressed-collective tests and benchmarks.
func newTCPGroupCodec(tb testing.TB, n int, codec transport.Codec) commGroup {
	tb.Helper()
	listeners := make([]*transport.RingListener, n)
	addrs := make([]string, n)
	for r := range listeners {
		l, err := transport.ListenRing("127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		listeners[r] = l
		addrs[r] = l.Addr()
	}
	g := make(commGroup, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := range g {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ring, err := listeners[rank].ConnectContext(tb.Context(), rank, addrs, 10*time.Second,
				transport.RingOptions{Codec: codec})
			if err != nil {
				errs[rank] = err
				return
			}
			g[rank] = NewTCPComm(ring)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			tb.Fatal(err)
		}
	}
	tb.Cleanup(func() {
		for _, c := range g {
			if tc, ok := c.(*TCPComm); ok {
				tc.Close()
			}
		}
	})
	return g
}

// runGroup launches one goroutine per rank and waits for completion.
func runGroup(g commGroup, fn func(rank int, c Communicator)) {
	var wg sync.WaitGroup
	for r := range g {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(rank, g[rank])
		}(r)
	}
	wg.Wait()
}

// fillRankBufs builds deterministic per-rank buffers of the given length
// and their element-wise float64 sum.
func fillRankBufs(n, length int, seed uint64) (bufs [][]float32, sum []float64) {
	rng := rand.New(rand.NewPCG(seed, 17))
	bufs = make([][]float32, n)
	sum = make([]float64, length)
	for r := range bufs {
		bufs[r] = make([]float32, length)
		for i := range bufs[r] {
			bufs[r][i] = float32(rng.NormFloat64())
			sum[i] += float64(bufs[r][i])
		}
	}
	return bufs, sum
}

// TestCollectiveSuite runs the same correctness checks against every
// backend and rank count.
func TestCollectiveSuite(t *testing.T) {
	for name, factory := range backendFactories {
		for _, n := range []int{1, 2, 3, 5} {
			t.Run(fmt.Sprintf("%s/n=%d", name, n), func(t *testing.T) {
				g := factory(t, n)

				t.Run("AllReduceSum", func(t *testing.T) {
					// Length 7 exercises uneven (and, for n=5, empty) chunks.
					bufs, want := fillRankBufs(n, 7, 42)
					runGroup(g, func(rank int, c Communicator) { c.AllReduceSum(rank, bufs[rank]) })
					for r := 0; r < n; r++ {
						for i := range want {
							if bufs[r][i] != bufs[0][i] {
								t.Fatalf("rank %d differs from rank 0 at %d", r, i)
							}
							if d := float64(bufs[0][i]) - want[i]; d > 1e-4 || d < -1e-4 {
								t.Fatalf("elem %d: got %v, want %v", i, bufs[0][i], want[i])
							}
						}
					}
				})

				t.Run("AllReduceMean", func(t *testing.T) {
					bufs := make([][]float32, n)
					for r := range bufs {
						bufs[r] = []float32{float32(r), float32(2 * r)}
					}
					runGroup(g, func(rank int, c Communicator) { c.AllReduceMean(rank, bufs[rank]) })
					wantMean := float32(n-1) / 2
					for r := 0; r < n; r++ {
						if bufs[r][0] != wantMean || bufs[r][1] != 2*wantMean {
							t.Fatalf("rank %d: %v, want mean %v", r, bufs[r], wantMean)
						}
					}
				})

				t.Run("AllReduceSumRange", func(t *testing.T) {
					// The range collective must reduce [lo,hi) and leave the
					// rest of the buffer untouched.
					const length, lo, hi = 13, 3, 11
					bufs, want := fillRankBufs(n, length, 99)
					orig := make([][]float32, n)
					for r := range bufs {
						orig[r] = append([]float32(nil), bufs[r]...)
					}
					runGroup(g, func(rank int, c Communicator) { c.AllReduceSumRange(rank, bufs[rank], lo, hi) })
					for r := 0; r < n; r++ {
						for i := 0; i < length; i++ {
							switch {
							case i < lo || i >= hi:
								if bufs[r][i] != orig[r][i] {
									t.Fatalf("rank %d: elem %d outside range was modified", r, i)
								}
							default:
								if bufs[r][i] != bufs[0][i] {
									t.Fatalf("rank %d differs from rank 0 at %d", r, i)
								}
								if d := float64(bufs[0][i]) - want[i]; d > 1e-4 || d < -1e-4 {
									t.Fatalf("elem %d: got %v, want %v", i, bufs[0][i], want[i])
								}
							}
						}
					}
				})

				t.Run("Broadcast", func(t *testing.T) {
					root := (n - 1) / 2
					bufs := make([][]float32, n)
					for r := range bufs {
						bufs[r] = []float32{float32(r), float32(r)}
					}
					runGroup(g, func(rank int, c Communicator) { c.Broadcast(rank, root, bufs[rank]) })
					for r := 0; r < n; r++ {
						if bufs[r][0] != float32(root) || bufs[r][1] != float32(root) {
							t.Fatalf("rank %d: %v, want root %d", r, bufs[r], root)
						}
					}
				})

				t.Run("Barrier", func(t *testing.T) {
					var mu sync.Mutex
					entered := 0
					fail := false
					runGroup(g, func(rank int, c Communicator) {
						mu.Lock()
						entered++
						mu.Unlock()
						c.Barrier(rank)
						mu.Lock()
						if entered != n {
							fail = true
						}
						mu.Unlock()
						c.Barrier(rank) // reusable
					})
					if fail {
						t.Fatal("barrier released before all ranks arrived")
					}
				})
			})
		}
	}
}

// TestBackendsBitIdentical pins that the TCP backend computes exactly the
// same floats as the channel backend: same ring algorithm, same chunking,
// same reduction order — so switching transports cannot perturb a training
// trajectory.
func TestBackendsBitIdentical(t *testing.T) {
	const n, length = 4, 1000
	chanBufs, _ := fillRankBufs(n, length, 7)
	tcpBufs, _ := fillRankBufs(n, length, 7)

	chanGroup := backendFactories["chan"](t, n)
	tcpGroup := newTCPGroup(t, n)
	runGroup(chanGroup, func(rank int, c Communicator) { c.AllReduceMean(rank, chanBufs[rank]) })
	runGroup(tcpGroup, func(rank int, c Communicator) { c.AllReduceMean(rank, tcpBufs[rank]) })
	for r := 0; r < n; r++ {
		for i := range chanBufs[r] {
			if chanBufs[r][i] != tcpBufs[r][i] {
				t.Fatalf("rank %d elem %d: chan %v vs tcp %v", r, i, chanBufs[r][i], tcpBufs[r][i])
			}
		}
	}
}

// BenchmarkAllReduceTCP measures the TCP ring all-reduce across 4
// loopback-connected ranks on the 64k-element buffer BenchmarkAllReduce
// uses for the channel backend, under each wire codec. bytes/op is the
// logical float payload, so MB/s is effective bandwidth and directly
// comparable across codecs; wire-B/op reports what actually crossed the
// socket per operation (halved under f16).
func BenchmarkAllReduceTCP(b *testing.B) {
	const n = 4
	const elems = 1 << 16
	for _, codec := range []transport.Codec{transport.CodecF32, transport.CodecF16} {
		b.Run(codec.String(), func(b *testing.B) {
			g := newTCPGroupCodec(b, n, codec)
			bufs := make([][]float32, n)
			for r := range bufs {
				bufs[r] = make([]float32, elems)
			}
			var wg sync.WaitGroup
			for r := 1; r < n; r++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					for i := 0; i < b.N+1; i++ {
						g[rank].AllReduceSum(rank, bufs[rank])
					}
				}(r)
			}
			g[0].AllReduceSum(0, bufs[0]) // warm the recycled buffers
			sent0, _ := g[0].(WireCompression).WireBytes()
			b.SetBytes(4 * elems)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g[0].AllReduceSum(0, bufs[0])
			}
			b.StopTimer()
			sent1, _ := g[0].(WireCompression).WireBytes()
			b.ReportMetric(float64(sent1-sent0)/float64(b.N), "wire-B/op")
			wg.Wait()
		})
	}
}
