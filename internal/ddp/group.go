package ddp

import (
	"context"
	"fmt"
	"time"

	"melissa/internal/transport"
)

// RankSpan is implemented by communicator backends that serve a fixed
// contiguous span of global ranks per endpoint (HierComm). Consumers use
// it, like SingleRank, to reject configurations that would drive an
// endpoint from ranks it does not own.
type RankSpan interface {
	// RankOffset returns the first global rank the endpoint serves.
	RankOffset() int
	// LocalRanks returns how many consecutive global ranks it serves.
	LocalRanks() int
}

// RankGroup binds a collective backend to the contiguous block of global
// ranks one process drives: local rank l of the process is global rank
// Offset+l on Comm. It is the single handle the trainer and server take in
// place of the old raw Comm+RankOffset pair, so every backend — in-process
// channels, a flat TCP ring, or the hierarchical communicator — is wired
// identically. The zero value means "in-process, standalone": consumers
// substitute a fresh LocalGroup of their configured rank count.
type RankGroup struct {
	// Comm is the collective backend shared by the group. nil means
	// standalone: the consumer creates an in-process communicator sized to
	// its local rank count (LocalGroup).
	Comm Communicator
	// Offset is the first global rank this process drives on Comm.
	Offset int
}

// LocalGroup is the standalone group: n in-process ranks over a channel
// communicator, offset 0. It is what consumers substitute for a zero
// RankGroup.
func LocalGroup(n int) RankGroup {
	return RankGroup{Comm: NewCommunicator(n)}
}

// World returns the total rank count of the group, or 0 for the zero
// value (whose world is the consumer's local rank count).
func (g RankGroup) World() int {
	if g.Comm == nil {
		return 0
	}
	return g.Comm.Size()
}

// Validate checks that this process may drive local consecutive ranks
// starting at Offset: the span must fit the communicator, and endpoint
// backends that declare their span (RankSpan) or single rank (SingleRank)
// must agree with it.
func (g RankGroup) Validate(local int) error {
	if local <= 0 {
		return fmt.Errorf("ddp: rank group local count %d, want >= 1", local)
	}
	if g.Comm == nil {
		if g.Offset != 0 {
			return fmt.Errorf("ddp: rank offset %d requires an explicit communicator", g.Offset)
		}
		return nil
	}
	if g.Offset < 0 || g.Offset+local > g.Comm.Size() {
		return fmt.Errorf("ddp: ranks [%d,%d) exceed communicator size %d", g.Offset, g.Offset+local, g.Comm.Size())
	}
	if span, ok := g.Comm.(RankSpan); ok {
		if g.Offset != span.RankOffset() || local != span.LocalRanks() {
			return fmt.Errorf("ddp: communicator serves ranks [%d,%d), group configured for [%d,%d)",
				span.RankOffset(), span.RankOffset()+span.LocalRanks(), g.Offset, g.Offset+local)
		}
	} else if sr, ok := g.Comm.(SingleRank); ok {
		if local != 1 {
			return fmt.Errorf("ddp: single-rank communicator cannot drive %d local ranks", local)
		}
		if g.Offset != sr.Rank() {
			return fmt.Errorf("ddp: rank offset %d does not match communicator rank %d", g.Offset, sr.Rank())
		}
	}
	return nil
}

// Close releases the group's network resources, when it has any. It must
// not race in-flight collectives; Abort first to interrupt them.
func (g RankGroup) Close() error {
	if c, ok := g.Comm.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// Abort poisons the group's communicator (when the backend supports it),
// failing in-flight collectives on every local rank. Safe to call from any
// goroutine.
func (g RankGroup) Abort() {
	if a, ok := g.Comm.(interface{ Abort() }); ok {
		a.Abort()
	}
}

// GroupIdentity encodes the hierarchical topology into a ring handshake
// identity (transport.RingOptions.Identity), so two processes that
// disagree on -local-ranks fail at ring formation instead of exchanging
// misaligned collective chunks.
func GroupIdentity(localRanks int) uint32 {
	return uint32(localRanks)
}

// GroupFromRing wraps a connected inter-process ring as the rank group for
// localRanks consecutive global ranks per process — the one constructor
// behind every multi-process shape. One local rank gets the flat
// single-rank TCP backend; several get the hierarchical communicator,
// whose results are bit-identical to the flat ring of the same total size.
func GroupFromRing(ring *transport.Ring, localRanks int) RankGroup {
	if localRanks == 1 {
		return RankGroup{Comm: NewTCPComm(ring), Offset: ring.Rank()}
	}
	return RankGroup{Comm: NewHierComm(ring, localRanks), Offset: ring.Rank() * localRanks}
}

// ConnectGroup is the one-call setup for one process of a
// len(addrs)-process group with localRanks ranks per process: it forms the
// inter-process ring (stamped with the topology identity) and wraps it via
// GroupFromRing. See ConnectGroupContext for cancellation and ring tuning.
func ConnectGroup(proc int, addrs []string, localRanks int, timeout time.Duration) (RankGroup, error) {
	return ConnectGroupContext(context.Background(), proc, addrs, localRanks, timeout, transport.RingOptions{})
}

// ConnectGroupContext is ConnectGroup with a cancellation context and
// explicit ring options. The options' Identity is overwritten with the
// topology identity so mismatched localRanks configurations fail loudly at
// formation.
func ConnectGroupContext(ctx context.Context, proc int, addrs []string, localRanks int, timeout time.Duration, opts transport.RingOptions) (RankGroup, error) {
	if localRanks <= 0 {
		return RankGroup{}, fmt.Errorf("ddp: local rank count %d, want >= 1", localRanks)
	}
	if proc < 0 || proc >= len(addrs) {
		return RankGroup{}, fmt.Errorf("ddp: process %d out of range [0,%d)", proc, len(addrs))
	}
	opts.Identity = GroupIdentity(localRanks)
	l, err := transport.ListenRing(addrs[proc])
	if err != nil {
		return RankGroup{}, err
	}
	ring, err := l.ConnectContext(ctx, proc, addrs, timeout, opts)
	if err != nil {
		return RankGroup{}, err
	}
	return GroupFromRing(ring, localRanks), nil
}
