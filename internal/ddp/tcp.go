package ddp

import (
	"context"
	"fmt"
	"time"

	"melissa/internal/transport"
)

// TCPComm is the transport-backed Communicator: ranks are separate OS
// processes connected in a directed TCP ring (transport.Ring). It runs
// exactly the same bandwidth-optimal ring scatter-reduce/all-gather as
// ChanComm — same chunking, same reduction order — so a group of TCPComm
// ranks computes bit-identical collective results to an in-process channel
// group of the same size. Each process owns one TCPComm for its single
// global rank; the rank argument of every collective must match.
//
// A broken rank link surfaces as an error from the in-flight collective
// (see the package's failure model): heartbeat/deadline expiry, resets and
// EOF all wrap transport.ErrLinkDead, a deliberate Abort wraps
// transport.ErrRingAborted. Steady-state collectives are allocation-free —
// frames are staged into the ring's recycled buffers, the decode scratch
// below is reused across calls, and the success path returns a nil error.
type TCPComm struct {
	ring    *transport.Ring
	scratch []float32 // recycled decode buffer for the scatter-reduce phase
}

var _ Communicator = (*TCPComm)(nil)

// NewTCPComm wraps a connected rank ring as a Communicator.
func NewTCPComm(ring *transport.Ring) *TCPComm {
	return &TCPComm{ring: ring}
}

// ConnectTCP is the one-call setup for a rank process: it binds
// addrs[rank], dials the successor with exponential backoff and jitter,
// and accepts the predecessor (so processes may start in any order),
// returning the connected communicator. See ConnectTCPContext for
// cancellation and ring tuning.
func ConnectTCP(rank int, addrs []string, timeout time.Duration) (*TCPComm, error) {
	return ConnectTCPContext(context.Background(), rank, addrs, timeout, transport.RingOptions{})
}

// ConnectTCPContext is ConnectTCP with a cancellation context and explicit
// ring options (IO timeout, heartbeat interval, fault-injection wrapper).
// The underlying listener is closed on every path, success or failure.
func ConnectTCPContext(ctx context.Context, rank int, addrs []string, timeout time.Duration, opts transport.RingOptions) (*TCPComm, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("ddp: rank %d out of range [0,%d)", rank, len(addrs))
	}
	l, err := transport.ListenRing(addrs[rank])
	if err != nil {
		return nil, err
	}
	ring, err := l.ConnectContext(ctx, rank, addrs, timeout, opts)
	if err != nil {
		return nil, err
	}
	return NewTCPComm(ring), nil
}

// Close tears the ring down. It must not race an in-flight collective;
// call Abort first to interrupt one.
func (c *TCPComm) Close() error { return c.ring.Close() }

// Abort force-closes the ring's connections, failing any in-flight
// collective with an error wrapping transport.ErrRingAborted. Safe to call
// from any goroutine — it is the reconfiguration path's way of unwedging a
// rank blocked mid-collective on a dead group.
func (c *TCPComm) Abort() { c.ring.Abort() }

// Size implements Communicator.
func (c *TCPComm) Size() int { return c.ring.Size() }

// Rank returns the single global rank this endpoint serves. Consumers use
// it (via the SingleRank interface) to reject configurations that would
// drive one TCPComm from several local ranks.
func (c *TCPComm) Rank() int { return c.ring.Rank() }

// SingleRank is implemented by communicator backends that serve exactly
// one rank per endpoint (TCPComm). Backends without it (ChanComm) accept
// collective calls from any rank of the group.
type SingleRank interface {
	Rank() int
}

// check validates that the caller is this process's rank. A mismatch is a
// programming error, not a link fault, so it still panics.
func (c *TCPComm) check(rank int) {
	if rank != c.ring.Rank() {
		panic(fmt.Sprintf("ddp: TCPComm for rank %d called as rank %d", c.ring.Rank(), rank))
	}
}

// grow returns the recycled decode scratch with at least n elements.
func (c *TCPComm) grow(n int) []float32 {
	if cap(c.scratch) < n {
		c.scratch = make([]float32, n)
	}
	return c.scratch[:n]
}

// AllReduceSum implements Communicator: the ring scatter-reduce/all-gather
// of ChanComm.AllReduceSum over TCP links.
func (c *TCPComm) AllReduceSum(rank int, buf []float32) error {
	c.check(rank)
	n := c.ring.Size()
	if n == 1 {
		return nil
	}
	chunk := func(i int) []float32 {
		lo, hi := chunkRange(len(buf), n, ((i%n)+n)%n)
		return buf[lo:hi]
	}
	// Scatter-reduce: incoming partial sums accumulate into the local
	// chunk. Sends are staged copies, so mutating the next chunk while the
	// previous frame is still being written is safe.
	for s := 0; s < n-1; s++ {
		if err := c.ring.SendFloats(chunk(rank - s)); err != nil {
			return err
		}
		dst := chunk(rank - s - 1)
		in := c.grow(len(dst))
		if err := c.ring.RecvFloats(in); err != nil {
			return err
		}
		for i := range dst {
			dst[i] += in[i]
		}
	}
	// All-gather: circulate the completed chunks, decoding straight into
	// the destination ranges.
	for s := 0; s < n-1; s++ {
		if err := c.ring.SendFloats(chunk(rank + 1 - s)); err != nil {
			return err
		}
		if err := c.ring.RecvFloats(chunk(rank - s)); err != nil {
			return err
		}
	}
	return nil
}

// AllReduceSumRange implements Communicator.
func (c *TCPComm) AllReduceSumRange(rank int, buf []float32, lo, hi int) error {
	return c.AllReduceSum(rank, buf[lo:hi])
}

// AllReduceMean implements Communicator.
func (c *TCPComm) AllReduceMean(rank int, buf []float32) error {
	if err := c.AllReduceSum(rank, buf); err != nil {
		return err
	}
	if n := c.ring.Size(); n > 1 {
		inv := 1 / float32(n)
		for i := range buf {
			buf[i] *= inv
		}
	}
	return nil
}

// Broadcast implements Communicator: the root's buffer travels around the
// ring, each rank copying and forwarding, followed by a barrier so the
// call is collective like the channel backend's.
func (c *TCPComm) Broadcast(rank, root int, buf []float32) error {
	c.check(rank)
	n := c.ring.Size()
	if n == 1 {
		return nil
	}
	if rank == root {
		if err := c.ring.SendFloats(buf); err != nil {
			return err
		}
	} else {
		if err := c.ring.RecvFloats(buf); err != nil {
			return err
		}
		if (rank+1)%n != root {
			if err := c.ring.SendFloats(buf); err != nil {
				return err
			}
		}
	}
	return c.Barrier(rank)
}

// Barrier implements Communicator: a two-round ring token. The first round
// proves every rank entered; the second releases them.
func (c *TCPComm) Barrier(rank int) error {
	c.check(rank)
	if c.ring.Size() == 1 {
		return nil
	}
	if rank == 0 {
		for round := 0; round < 2; round++ {
			if err := c.ring.SendToken(); err != nil {
				return err
			}
			if err := c.ring.RecvToken(); err != nil {
				return err
			}
		}
	} else {
		for round := 0; round < 2; round++ {
			if err := c.ring.RecvToken(); err != nil {
				return err
			}
			if err := c.ring.SendToken(); err != nil {
				return err
			}
		}
	}
	return nil
}
