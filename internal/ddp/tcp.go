package ddp

import (
	"fmt"
	"time"

	"melissa/internal/transport"
)

// TCPComm is the transport-backed Communicator: ranks are separate OS
// processes connected in a directed TCP ring (transport.Ring). It runs
// exactly the same bandwidth-optimal ring scatter-reduce/all-gather as
// ChanComm — same chunking, same reduction order — so a group of TCPComm
// ranks computes bit-identical collective results to an in-process channel
// group of the same size. Each process owns one TCPComm for its single
// global rank; the rank argument of every collective must match.
//
// A broken rank link is fatal: collectives panic with the transport error,
// matching MPI's abort-on-communicator-failure semantics. Steady-state
// collectives are allocation-free — frames are staged into the ring's
// recycled buffers, and the decode scratch below is reused across calls.
type TCPComm struct {
	ring    *transport.Ring
	scratch []float32 // recycled decode buffer for the scatter-reduce phase
}

var _ Communicator = (*TCPComm)(nil)

// NewTCPComm wraps a connected rank ring as a Communicator.
func NewTCPComm(ring *transport.Ring) *TCPComm {
	return &TCPComm{ring: ring}
}

// ConnectTCP is the one-call setup for a rank process: it binds
// addrs[rank], dials the successor, accepts the predecessor (retrying
// until timeout so processes may start in any order), and returns the
// connected communicator.
func ConnectTCP(rank int, addrs []string, timeout time.Duration) (*TCPComm, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("ddp: rank %d out of range [0,%d)", rank, len(addrs))
	}
	l, err := transport.ListenRing(addrs[rank])
	if err != nil {
		return nil, err
	}
	ring, err := l.Connect(rank, addrs, timeout)
	if err != nil {
		return nil, err
	}
	return NewTCPComm(ring), nil
}

// Close tears the ring down. It must not race an in-flight collective.
func (c *TCPComm) Close() error { return c.ring.Close() }

// Size implements Communicator.
func (c *TCPComm) Size() int { return c.ring.Size() }

// Rank returns the single global rank this endpoint serves. Consumers use
// it (via the SingleRank interface) to reject configurations that would
// drive one TCPComm from several local ranks.
func (c *TCPComm) Rank() int { return c.ring.Rank() }

// SingleRank is implemented by communicator backends that serve exactly
// one rank per endpoint (TCPComm). Backends without it (ChanComm) accept
// collective calls from any rank of the group.
type SingleRank interface {
	Rank() int
}

// check validates that the caller is this process's rank.
func (c *TCPComm) check(rank int) {
	if rank != c.ring.Rank() {
		panic(fmt.Sprintf("ddp: TCPComm for rank %d called as rank %d", c.ring.Rank(), rank))
	}
}

// must turns a transport failure into the documented fatal panic.
func (c *TCPComm) must(err error) {
	if err != nil {
		panic(fmt.Sprintf("ddp: rank %d collective failed: %v", c.ring.Rank(), err))
	}
}

// grow returns the recycled decode scratch with at least n elements.
func (c *TCPComm) grow(n int) []float32 {
	if cap(c.scratch) < n {
		c.scratch = make([]float32, n)
	}
	return c.scratch[:n]
}

// AllReduceSum implements Communicator: the ring scatter-reduce/all-gather
// of ChanComm.AllReduceSum over TCP links.
func (c *TCPComm) AllReduceSum(rank int, buf []float32) {
	c.check(rank)
	n := c.ring.Size()
	if n == 1 {
		return
	}
	chunk := func(i int) []float32 {
		lo, hi := chunkRange(len(buf), n, ((i%n)+n)%n)
		return buf[lo:hi]
	}
	// Scatter-reduce: incoming partial sums accumulate into the local
	// chunk. Sends are staged copies, so mutating the next chunk while the
	// previous frame is still being written is safe.
	for s := 0; s < n-1; s++ {
		c.must(c.ring.SendFloats(chunk(rank - s)))
		dst := chunk(rank - s - 1)
		in := c.grow(len(dst))
		c.must(c.ring.RecvFloats(in))
		for i := range dst {
			dst[i] += in[i]
		}
	}
	// All-gather: circulate the completed chunks, decoding straight into
	// the destination ranges.
	for s := 0; s < n-1; s++ {
		c.must(c.ring.SendFloats(chunk(rank + 1 - s)))
		c.must(c.ring.RecvFloats(chunk(rank - s)))
	}
}

// AllReduceSumRange implements Communicator.
func (c *TCPComm) AllReduceSumRange(rank int, buf []float32, lo, hi int) {
	c.AllReduceSum(rank, buf[lo:hi])
}

// AllReduceMean implements Communicator.
func (c *TCPComm) AllReduceMean(rank int, buf []float32) {
	c.AllReduceSum(rank, buf)
	if n := c.ring.Size(); n > 1 {
		inv := 1 / float32(n)
		for i := range buf {
			buf[i] *= inv
		}
	}
}

// Broadcast implements Communicator: the root's buffer travels around the
// ring, each rank copying and forwarding, followed by a barrier so the
// call is collective like the channel backend's.
func (c *TCPComm) Broadcast(rank, root int, buf []float32) {
	c.check(rank)
	n := c.ring.Size()
	if n == 1 {
		return
	}
	if rank == root {
		c.must(c.ring.SendFloats(buf))
	} else {
		c.must(c.ring.RecvFloats(buf))
		if (rank+1)%n != root {
			c.must(c.ring.SendFloats(buf))
		}
	}
	c.Barrier(rank)
}

// Barrier implements Communicator: a two-round ring token. The first round
// proves every rank entered; the second releases them.
func (c *TCPComm) Barrier(rank int) {
	c.check(rank)
	if c.ring.Size() == 1 {
		return
	}
	if rank == 0 {
		for round := 0; round < 2; round++ {
			c.must(c.ring.SendToken())
			c.must(c.ring.RecvToken())
		}
	} else {
		for round := 0; round < 2; round++ {
			c.must(c.ring.RecvToken())
			c.must(c.ring.SendToken())
		}
	}
}
