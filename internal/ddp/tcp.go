package ddp

import (
	"context"
	"fmt"
	"time"

	"melissa/internal/protocol"
	"melissa/internal/transport"
)

// compressMinFloats is the smallest collective (total elements) that rides
// the compressed wire format on a compressed ring. Tiny collectives — the
// trainer's 2-float status reduction, barrier-adjacent control values — are
// latency-bound, save nothing from half-width frames, and often carry
// counts whose exactness matters, so they stay full-width float32. The
// threshold is a pure function of the collective's total length, which
// every rank knows identically, so senders and receivers always agree on
// the frame type.
const compressMinFloats = 16

// broadcastChunkFloats bounds one Broadcast frame: slab-sized broadcasts
// are split into pieces staged through the ring's double-buffered send
// path, so a model bigger than protocol.MaxFrameSize/4 parameters cannot
// hit the sender-side frame bound, and forwarding ranks pipeline chunk k
// while chunk k+1 is still in flight.
const broadcastChunkFloats = 1 << 20

// WireCompression is implemented by transport-backed communicators. It
// reports the ring's negotiated wire codec and the cumulative bytes moved
// over the network links, so the trainer can validate its configuration
// against the group's actual wire format and surface the byte counters in
// metrics.
type WireCompression interface {
	WireCodec() transport.Codec
	WireBytes() (sent, recv uint64)
}

// TCPComm is the transport-backed Communicator: ranks are separate OS
// processes connected in a directed TCP ring (transport.Ring). It runs
// exactly the same bandwidth-optimal ring scatter-reduce/all-gather as
// ChanComm — same chunking, same reduction order — so on a default
// (CodecF32) ring a group of TCPComm ranks computes bit-identical
// collective results to an in-process channel group of the same size. On a
// compressed ring (transport.CodecF16/CodecF16Raw) all-reduce chunks
// travel as binary16 — halving wire bytes at a bounded, error-fed
// precision cost (see docs/communication.md) — while Broadcast, Barrier
// and sub-threshold collectives stay exact. Each process owns one TCPComm
// for its single global rank; the rank argument of every collective must
// match.
//
// A broken rank link surfaces as an error from the in-flight collective
// (see the package's failure model): heartbeat/deadline expiry, resets and
// EOF all wrap transport.ErrLinkDead, a deliberate Abort wraps
// transport.ErrRingAborted. Steady-state collectives are allocation-free —
// frames are staged into the ring's recycled buffers, the decode scratch
// below is reused across calls, and the success path returns a nil error.
type TCPComm struct {
	ring  *transport.Ring
	codec transport.Codec

	// res is the error-feedback residual slab for compressed range
	// collectives (CodecF16): res[i] carries the quantization error of
	// slab offset i from the previous step into the next one. Range
	// collectives index it by their absolute [lo,hi) offsets, which is
	// why AllReduceSumRange — whose caller contract is "ranges into one
	// persistent slab" — is the error-fed entry point, while plain
	// AllReduceSum (arbitrary transient buffers) compresses without
	// residuals.
	res []float32
}

var _ Communicator = (*TCPComm)(nil)
var _ WireCompression = (*TCPComm)(nil)

// NewTCPComm wraps a connected rank ring as a Communicator, adopting the
// wire codec the ring negotiated at formation.
func NewTCPComm(ring *transport.Ring) *TCPComm {
	return &TCPComm{ring: ring, codec: ring.Codec()}
}

// WireCodec implements WireCompression.
func (c *TCPComm) WireCodec() transport.Codec { return c.codec }

// WireBytes implements WireCompression.
func (c *TCPComm) WireBytes() (sent, recv uint64) { return c.ring.WireBytes() }

// ConnectTCP is the one-call setup for a rank process: it binds
// addrs[rank], dials the successor with exponential backoff and jitter,
// and accepts the predecessor (so processes may start in any order),
// returning the connected communicator. See ConnectTCPContext for
// cancellation and ring tuning.
func ConnectTCP(rank int, addrs []string, timeout time.Duration) (*TCPComm, error) {
	return ConnectTCPContext(context.Background(), rank, addrs, timeout, transport.RingOptions{})
}

// ConnectTCPContext is ConnectTCP with a cancellation context and explicit
// ring options (IO timeout, heartbeat interval, fault-injection wrapper).
// The underlying listener is closed on every path, success or failure.
func ConnectTCPContext(ctx context.Context, rank int, addrs []string, timeout time.Duration, opts transport.RingOptions) (*TCPComm, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("ddp: rank %d out of range [0,%d)", rank, len(addrs))
	}
	l, err := transport.ListenRing(addrs[rank])
	if err != nil {
		return nil, err
	}
	ring, err := l.ConnectContext(ctx, rank, addrs, timeout, opts)
	if err != nil {
		return nil, err
	}
	return NewTCPComm(ring), nil
}

// Close tears the ring down. It must not race an in-flight collective;
// call Abort first to interrupt one.
func (c *TCPComm) Close() error { return c.ring.Close() }

// Abort force-closes the ring's connections, failing any in-flight
// collective with an error wrapping transport.ErrRingAborted. Safe to call
// from any goroutine — it is the reconfiguration path's way of unwedging a
// rank blocked mid-collective on a dead group.
func (c *TCPComm) Abort() { c.ring.Abort() }

// Size implements Communicator.
func (c *TCPComm) Size() int { return c.ring.Size() }

// Rank returns the single global rank this endpoint serves. Consumers use
// it (via the SingleRank interface) to reject configurations that would
// drive one TCPComm from several local ranks.
func (c *TCPComm) Rank() int { return c.ring.Rank() }

// SingleRank is implemented by communicator backends that serve exactly
// one rank per endpoint (TCPComm). Backends without it (ChanComm) accept
// collective calls from any rank of the group.
type SingleRank interface {
	Rank() int
}

// check validates that the caller is this process's rank. A mismatch is a
// programming error, not a link fault, so it still panics.
func (c *TCPComm) check(rank int) {
	if rank != c.ring.Rank() {
		panic(fmt.Sprintf("ddp: TCPComm for rank %d called as rank %d", c.ring.Rank(), rank))
	}
}

// compressed reports whether a collective over total elements rides the
// half-width wire format. Every rank computes the same answer (codec is
// ring-negotiated, total is part of the collective contract), so senders
// and receivers always pick matching frame types.
func (c *TCPComm) compressed(total int) bool {
	return c.codec.Compressed() && total >= compressMinFloats
}

// residual returns the persistent error-feedback slab view for absolute
// offsets [lo,hi), growing (zero-extended) on demand.
func (c *TCPComm) residual(lo, hi int) []float32 {
	if hi > len(c.res) {
		grown := make([]float32, hi)
		copy(grown, c.res)
		c.res = grown
	}
	return c.res[lo:hi]
}

// AllReduceSum implements Communicator: the ring scatter-reduce/all-gather
// of ChanComm.AllReduceSum over TCP links. On a compressed ring the chunks
// travel as binary16 (without error feedback — see AllReduceSumRange for
// the error-fed gradient path).
func (c *TCPComm) AllReduceSum(rank int, buf []float32) error {
	return c.allReduce(rank, buf, nil)
}

// AllReduceSumRange implements Communicator. On a CodecF16 ring this is
// the error-fed path: the range offsets index a persistent per-rank
// residual slab (the caller contract — one stable slab, e.g. the flat
// gradient slab — is what makes residuals meaningful across steps).
func (c *TCPComm) AllReduceSumRange(rank int, buf []float32, lo, hi int) error {
	sub := buf[lo:hi]
	var res []float32
	if c.codec == transport.CodecF16 && c.compressed(len(sub)) {
		res = c.residual(lo, hi)
	}
	return c.allReduce(rank, sub, res)
}

// allReduce runs the ring scatter-reduce/all-gather over buf. res, when
// non-nil, is the aligned error-feedback residual view (compressed range
// collectives only).
//
// Compressed mode keeps all arithmetic in float32: wire chunks are
// quantized per hop, receivers expand and accumulate at full width. After
// scatter-reduce, each rank re-quantizes the one chunk it finished in
// place before gathering — binary16 values re-encode losslessly, so every
// rank reconstructs bit-identical results even though intermediate partial
// sums crossed the wire at reduced precision.
func (c *TCPComm) allReduce(rank int, buf []float32, res []float32) error {
	c.check(rank)
	n := c.ring.Size()
	if n == 1 {
		return nil
	}
	comp := c.compressed(len(buf))
	if comp && res != nil {
		// Error-feedback pre-pass: quantize local contribution + carried
		// residual, store the fresh quantization error back (fused kernel).
		protocol.QuantizeEF(buf, res)
	}
	chunk := func(i int) []float32 {
		lo, hi := chunkRange(len(buf), n, ((i%n)+n)%n)
		return buf[lo:hi]
	}
	send := c.ring.SendFloats
	recvAdd := c.ring.RecvFloatsAdd
	recv := c.ring.RecvFloats
	if comp {
		send = c.ring.SendFloats16
		recvAdd = c.ring.RecvFloats16Add
		recv = c.ring.RecvFloats16
	}
	// Scatter-reduce: incoming partial sums accumulate straight into the
	// local chunk (fused decode+add — no scratch pass). Sends are staged
	// copies, so mutating the next chunk while the previous frame is still
	// being written is safe.
	for s := 0; s < n-1; s++ {
		if err := send(chunk(rank - s)); err != nil {
			return err
		}
		if err := recvAdd(chunk(rank - s - 1)); err != nil {
			return err
		}
	}
	if comp {
		// Quantize the chunk this rank finished reducing, so the values it
		// keeps locally are bit-identical to the ones every other rank
		// receives through the (lossless for binary16 inputs) gather hops.
		protocol.RoundF16s(chunk(rank + 1))
	}
	// All-gather: circulate the completed chunks, decoding straight into
	// the destination ranges.
	for s := 0; s < n-1; s++ {
		if err := send(chunk(rank + 1 - s)); err != nil {
			return err
		}
		if err := recv(chunk(rank - s)); err != nil {
			return err
		}
	}
	return nil
}

// AllReduceMean implements Communicator.
func (c *TCPComm) AllReduceMean(rank int, buf []float32) error {
	if err := c.AllReduceSum(rank, buf); err != nil {
		return err
	}
	if n := c.ring.Size(); n > 1 {
		inv := 1 / float32(n)
		for i := range buf {
			buf[i] *= inv
		}
	}
	return nil
}

// Broadcast implements Communicator: the root's buffer travels around the
// ring in broadcastChunkFloats pieces — each rank copying and forwarding
// chunk k while chunk k+1 is still in flight — followed by a barrier so
// the call is collective like the channel backend's. Broadcast always
// ships full-width float32 regardless of the ring codec: it carries
// weights, whose replicas must stay bit-identical.
func (c *TCPComm) Broadcast(rank, root int, buf []float32) error {
	c.check(rank)
	n := c.ring.Size()
	if n == 1 {
		return nil
	}
	for lo := 0; ; lo += broadcastChunkFloats {
		hi := min(lo+broadcastChunkFloats, len(buf))
		piece := buf[lo:hi]
		if rank == root {
			if err := c.ring.SendFloats(piece); err != nil {
				return err
			}
		} else {
			if err := c.ring.RecvFloats(piece); err != nil {
				return err
			}
			if (rank+1)%n != root {
				if err := c.ring.SendFloats(piece); err != nil {
					return err
				}
			}
		}
		if hi == len(buf) {
			break
		}
	}
	return c.Barrier(rank)
}

// Barrier implements Communicator: a two-round ring token. The first round
// proves every rank entered; the second releases them.
func (c *TCPComm) Barrier(rank int) error {
	c.check(rank)
	if c.ring.Size() == 1 {
		return nil
	}
	if rank == 0 {
		for round := 0; round < 2; round++ {
			if err := c.ring.SendToken(); err != nil {
				return err
			}
			if err := c.ring.RecvToken(); err != nil {
				return err
			}
		}
	} else {
		for round := 0; round < 2; round++ {
			if err := c.ring.RecvToken(); err != nil {
				return err
			}
			if err := c.ring.SendToken(); err != nil {
				return err
			}
		}
	}
	return nil
}
