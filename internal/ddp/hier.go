package ddp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"melissa/internal/protocol"
	"melissa/internal/transport"
)

// HierComm is the hierarchical Communicator backend: one process hosts
// several consecutive global ranks (goroutines), and processes are joined
// by a single inter-process TCP ring (transport.Ring). It runs the literal
// flat-ring scatter-reduce/all-gather over all procs×local virtual ranks —
// same chunking, same accumulation order — so its collective results are
// bit-identical to a flat ring (ChanComm or one-rank-per-process TCPComm)
// of the same total size. The hierarchy is purely physical: hops between
// local ranks are channel links, and only the leader hop (local rank
// local−1 → the next process's local rank 0) crosses the network, so a
// host running M ranks needs one ring connection pair instead of M.
//
// Failure model: a ring link failure (or Abort) poisons the whole
// communicator. The first error is recorded and the down channel closed,
// which unwedges local ranks blocked on channel hops mid-collective —
// without it, only the boundary ranks would observe the network fault and
// the middle ranks would block forever. After any non-nil error the
// communicator must be closed, never reused (see the package failure
// model).
type HierComm struct {
	ring   *transport.Ring
	codec  transport.Codec
	procs  int // ring size (1 means no network hop: the ring closes locally)
	local  int // ranks hosted in this process
	offset int // first global rank hosted here: ring.Rank() * local
	size   int // procs * local

	// links[l] carries messages local rank l → local rank l+1. With a
	// single process the last link wraps around (local−1 → 0) in place of
	// the network hop.
	links []link

	// res[l] is local rank l's error-feedback residual slab for compressed
	// range collectives (see TCPComm.res); each slab is touched only by
	// its rank's goroutine.
	res [][]float32

	down     chan struct{}         // closed on first failure; unwedges channel hops
	failOnce sync.Once
	firstErr atomic.Pointer[error]
}

var _ Communicator = (*HierComm)(nil)
var _ RankSpan = (*HierComm)(nil)
var _ WireCompression = (*HierComm)(nil)

// WireCodec implements WireCompression: the ring's negotiated wire codec.
// Channel hops between co-hosted ranks always carry exact float32; the codec
// applies only to the leader hop that crosses the network.
func (h *HierComm) WireCodec() transport.Codec { return h.codec }

// WireBytes implements WireCompression: bytes moved over the inter-process
// ring (channel hops are free and uncounted).
func (h *HierComm) WireBytes() (sent, recv uint64) { return h.ring.WireBytes() }

// compressed reports whether a collective over total floats uses the f16
// wire encoding on its network hops. Identical on every rank (the codec is
// handshake-negotiated and total is a collective invariant), so ranks agree
// frame types without extra coordination.
func (h *HierComm) compressed(total int) bool {
	return h.codec.Compressed() && h.procs > 1 && total >= compressMinFloats
}

// residual returns local rank l's error-feedback slab view for absolute
// offsets [lo,hi), growing (zero-extended) on demand. Each local rank only
// ever touches its own slab, so concurrent collectives across the hosted
// ranks don't race.
func (h *HierComm) residual(l, lo, hi int) []float32 {
	if hi > len(h.res[l]) {
		grown := make([]float32, hi)
		copy(grown, h.res[l])
		h.res[l] = grown
	}
	return h.res[l][lo:hi]
}

// NewHierComm wraps a connected inter-process ring as the collective
// backend for localRanks consecutive global ranks hosted in this process.
// The global group has ring.Size()·localRanks ranks; this process serves
// [ring.Rank()·localRanks, (ring.Rank()+1)·localRanks). ring may be a
// size-1 ring, in which case every hop stays in-process.
func NewHierComm(ring *transport.Ring, localRanks int) *HierComm {
	if localRanks <= 0 {
		panic(fmt.Sprintf("ddp: invalid local rank count %d", localRanks))
	}
	h := &HierComm{
		ring:   ring,
		codec:  ring.Codec(),
		procs:  ring.Size(),
		local:  localRanks,
		offset: ring.Rank() * localRanks,
		size:   ring.Size() * localRanks,
		links:  make([]link, localRanks),
		res:    make([][]float32, localRanks),
		down:   make(chan struct{}),
	}
	for i := range h.links {
		h.links[i] = newLink()
	}
	return h
}

// Size implements Communicator: the total rank count across all processes.
func (h *HierComm) Size() int { return h.size }

// RankOffset implements RankSpan: the first global rank this endpoint
// serves.
func (h *HierComm) RankOffset() int { return h.offset }

// LocalRanks implements RankSpan: the number of consecutive global ranks
// this endpoint serves.
func (h *HierComm) LocalRanks() int { return h.local }

// Close tears the inter-process ring down. It must not race in-flight
// collectives; call Abort first to interrupt them.
func (h *HierComm) Close() error { return h.ring.Close() }

// Abort poisons the communicator and force-closes the ring connections:
// every in-flight collective on every local rank fails with an error
// wrapping transport.ErrRingAborted. Safe to call from any goroutine.
func (h *HierComm) Abort() {
	h.ring.Abort()
	h.fail(fmt.Errorf("ddp: hierarchical group aborted: %w", transport.ErrRingAborted))
}

// localOf validates that rank is hosted by this endpoint and returns its
// local index. A mismatch is a programming error, not a link fault.
func (h *HierComm) localOf(rank int) int {
	if rank < h.offset || rank >= h.offset+h.local {
		panic(fmt.Sprintf("ddp: HierComm for ranks [%d,%d) called as rank %d", h.offset, h.offset+h.local, rank))
	}
	return rank - h.offset
}

// fail records the first error and closes the down channel, unwedging
// local ranks blocked on channel hops. Returns the recorded first error.
func (h *HierComm) fail(err error) error {
	h.firstErr.CompareAndSwap(nil, &err)
	h.failOnce.Do(func() { close(h.down) })
	return *h.firstErr.Load()
}

// poisoned returns the recorded failure, if any.
func (h *HierComm) poisoned() error {
	if p := h.firstErr.Load(); p != nil {
		return *p
	}
	return nil
}

// sendHop sends vals to local rank l's ring successor: a channel link for
// interior ranks, the network (or wrap-around link for a single process)
// for the leader. comp selects the binary16 wire encoding on the network
// hop only — channel hops always move exact float32, so compression costs
// nothing between co-hosted ranks.
func (h *HierComm) sendHop(l int, vals []float32, comp bool) error {
	if l == h.local-1 && h.procs > 1 {
		var err error
		if comp {
			err = h.ring.SendFloats16(vals)
		} else {
			err = h.ring.SendFloats(vals)
		}
		if err != nil {
			return h.fail(err)
		}
		return nil
	}
	lk := &h.links[l]
	var buf []float32
	select {
	case buf = <-lk.free:
	case <-h.down:
		return h.poisoned()
	}
	if cap(buf) < len(vals) {
		buf = make([]float32, len(vals))
	}
	buf = buf[:len(vals)]
	copy(buf, vals)
	select {
	case lk.data <- buf:
	case <-h.down:
		return h.poisoned()
	}
	return nil
}

// recvHop receives the predecessor's message for local rank l into dst,
// accumulating element-wise when accumulate is set and copying otherwise.
// dst length is the collective's chunk length, which the lockstep protocol
// guarantees matches the sender's. comp must match the sender's sendHop
// argument — on a compressed collective the network hop decodes binary16
// and accumulates in float32.
func (h *HierComm) recvHop(l int, dst []float32, accumulate, comp bool) error {
	if l == 0 && h.procs > 1 {
		var err error
		switch {
		case accumulate && comp:
			err = h.ring.RecvFloats16Add(dst) // fused decode+accumulate
		case accumulate:
			err = h.ring.RecvFloatsAdd(dst)
		case comp:
			err = h.ring.RecvFloats16(dst)
		default:
			err = h.ring.RecvFloats(dst)
		}
		if err != nil {
			return h.fail(err)
		}
		return nil
	}
	lk := &h.links[(l-1+h.local)%h.local]
	var in []float32
	select {
	case in = <-lk.data:
	case <-h.down:
		return h.poisoned()
	}
	if accumulate {
		for i := range dst {
			dst[i] += in[i]
		}
	} else {
		copy(dst, in)
	}
	lk.free <- in
	return nil
}

// sendTokenHop forwards a zero-length barrier token to the successor.
func (h *HierComm) sendTokenHop(l int) error {
	if l == h.local-1 && h.procs > 1 {
		if err := h.ring.SendToken(); err != nil {
			return h.fail(err)
		}
		return nil
	}
	return h.sendHop(l, nil, false)
}

// recvTokenHop consumes a barrier token from the predecessor.
func (h *HierComm) recvTokenHop(l int) error {
	if l == 0 && h.procs > 1 {
		if err := h.ring.RecvToken(); err != nil {
			return h.fail(err)
		}
		return nil
	}
	return h.recvHop(l, nil, false, false)
}

// AllReduceSum implements Communicator: the flat ring scatter-reduce and
// all-gather of ChanComm.AllReduceSum over the hybrid hop topology. Every
// hosted rank must enter concurrently (each from its own goroutine, with
// its own buffer), exactly like ranks of a ChanComm group. On a compressed
// ring the network hops travel as binary16 (without error feedback — see
// AllReduceSumRange for the error-fed gradient path).
func (h *HierComm) AllReduceSum(rank int, buf []float32) error {
	return h.allReduce(rank, buf, nil)
}

// AllReduceSumRange implements Communicator. On a CodecF16 ring this is
// the error-fed path: the range offsets index a persistent per-local-rank
// residual slab (the caller contract — one stable slab per rank, e.g. the
// flat gradient slab — is what makes residuals meaningful across steps).
func (h *HierComm) AllReduceSumRange(rank int, buf []float32, lo, hi int) error {
	sub := buf[lo:hi]
	var res []float32
	if h.codec == transport.CodecF16 && h.compressed(len(sub)) {
		res = h.residual(h.localOf(rank), lo, hi)
	}
	return h.allReduce(rank, sub, res)
}

// allReduce runs the ring sum over the hybrid topology. res, when non-nil,
// is this rank's error-feedback residual aliasing buf's span; it implies a
// compressed ring. As in TCPComm.allReduce, a compressed run quantizes the
// finished owner chunk in place before the all-gather so every rank ends
// with bit-identical results regardless of how many network hops each
// chunk crossed (re-encoding an already-quantized chunk is lossless).
func (h *HierComm) allReduce(rank int, buf []float32, res []float32) error {
	l := h.localOf(rank)
	if err := h.poisoned(); err != nil {
		return err
	}
	n := h.size
	if n == 1 {
		return nil
	}
	comp := h.compressed(len(buf))
	if comp && res != nil {
		protocol.QuantizeEF(buf, res)
	}
	chunk := func(i int) []float32 {
		lo, hi := chunkRange(len(buf), n, ((i%n)+n)%n)
		return buf[lo:hi]
	}
	// Scatter-reduce: after step s, rank r has accumulated s+1 terms into
	// chunk (r-s); after n-1 steps chunk (r+1) holds the complete sum.
	for s := 0; s < n-1; s++ {
		if err := h.sendHop(l, chunk(rank-s), comp); err != nil {
			return err
		}
		if err := h.recvHop(l, chunk(rank-s-1), true, comp); err != nil {
			return err
		}
	}
	if comp {
		protocol.RoundF16s(chunk(rank + 1))
	}
	// All-gather: circulate the completed chunks.
	for s := 0; s < n-1; s++ {
		if err := h.sendHop(l, chunk(rank+1-s), comp); err != nil {
			return err
		}
		if err := h.recvHop(l, chunk(rank-s), false, comp); err != nil {
			return err
		}
	}
	return nil
}

// AllReduceMean implements Communicator.
func (h *HierComm) AllReduceMean(rank int, buf []float32) error {
	if err := h.AllReduceSum(rank, buf); err != nil {
		return err
	}
	if h.size > 1 {
		inv := 1 / float32(h.size)
		for i := range buf {
			buf[i] *= inv
		}
	}
	return nil
}

// Broadcast implements Communicator: the root's buffer travels around the
// virtual ring, each rank copying and forwarding, followed by a barrier so
// the call is collective like the other backends'. Broadcast always ships
// exact float32 regardless of the ring codec — it carries model weights,
// where lossy compression would skew every replica identically but
// permanently. Large buffers stream in broadcastChunkFloats pieces so a
// full model does not need a second buffer-sized staging copy per hop.
func (h *HierComm) Broadcast(rank, root int, buf []float32) error {
	l := h.localOf(rank)
	if err := h.poisoned(); err != nil {
		return err
	}
	n := h.size
	if n == 1 {
		return nil
	}
	for lo := 0; ; lo += broadcastChunkFloats {
		hi := min(lo+broadcastChunkFloats, len(buf))
		piece := buf[lo:hi]
		if rank == root {
			if err := h.sendHop(l, piece, false); err != nil {
				return err
			}
		} else {
			if err := h.recvHop(l, piece, false, false); err != nil {
				return err
			}
			if (rank+1)%n != root {
				if err := h.sendHop(l, piece, false); err != nil {
					return err
				}
			}
		}
		if hi == len(buf) {
			break
		}
	}
	return h.Barrier(rank)
}

// Barrier implements Communicator: the two-round ring token of
// TCPComm.Barrier over the hybrid topology. Global rank 0 initiates; the
// first round proves every rank entered, the second releases them.
func (h *HierComm) Barrier(rank int) error {
	l := h.localOf(rank)
	if err := h.poisoned(); err != nil {
		return err
	}
	if h.size == 1 {
		return nil
	}
	if rank == 0 {
		for round := 0; round < 2; round++ {
			if err := h.sendTokenHop(l); err != nil {
				return err
			}
			if err := h.recvTokenHop(l); err != nil {
				return err
			}
		}
	} else {
		for round := 0; round < 2; round++ {
			if err := h.recvTokenHop(l); err != nil {
				return err
			}
			if err := h.sendTokenHop(l); err != nil {
				return err
			}
		}
	}
	return nil
}
