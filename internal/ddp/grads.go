package ddp

import (
	"melissa/internal/nn"
)

// GradBuffer is a reusable flat view of a network's gradients, used to
// all-reduce every parameter in a single collective instead of one
// collective per tensor (mirroring PyTorch DDP's gradient bucketing).
type GradBuffer struct {
	flat []float32
}

// NewGradBuffer sizes a flat buffer for the given parameter list.
func NewGradBuffer(params []*nn.Param) *GradBuffer {
	total := 0
	for _, p := range params {
		total += p.Size()
	}
	return &GradBuffer{flat: make([]float32, total)}
}

// Len returns the number of scalar gradients in the buffer.
func (g *GradBuffer) Len() int { return len(g.flat) }

// Flat exposes the underlying buffer for collectives.
func (g *GradBuffer) Flat() []float32 { return g.flat }

// Gather copies every parameter gradient into the flat buffer.
func (g *GradBuffer) Gather(params []*nn.Param) {
	off := 0
	for _, p := range params {
		copy(g.flat[off:], p.Grad.Data)
		off += p.Size()
	}
}

// Scatter copies the flat buffer back into the parameter gradients.
func (g *GradBuffer) Scatter(params []*nn.Param) {
	off := 0
	for _, p := range params {
		copy(p.Grad.Data, g.flat[off:off+p.Size()])
		off += p.Size()
	}
}

// SyncGradients averages the gradients of params across all ranks of comm.
// Every rank must call it concurrently after its local backward pass; on
// return each replica holds identical averaged gradients, matching the
// all-reduce step of §3.1.
func SyncGradients(comm *Communicator, rank int, params []*nn.Param, buf *GradBuffer) {
	buf.Gather(params)
	comm.AllReduceMean(rank, buf.Flat())
	buf.Scatter(params)
}
