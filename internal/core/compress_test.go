package core

// Training-trajectory tests for compressed gradient collectives
// (TrainerConfig.GradCompress): f16 runs must stay within tolerance of the
// exact fp32 trajectory across process × local-rank shapes, repeat runs
// must be bit-identical (the codec is deterministic), overlapped and
// serial bucket sync must agree bit-for-bit under compression, and the
// config validation must reject groups whose ring disagrees with the
// declared codec.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"melissa/internal/buffer"
	"melissa/internal/ddp"
	"melissa/internal/transport"
)

// codecTrainerGroup builds one trainer per process over a loopback ring
// with the given wire codec: procs processes hosting local ranks each
// (ddp.GroupFromRing picks TCPComm for local=1, HierComm otherwise). bufs
// holds procs·local buffers, assigned in global rank order.
func codecTrainerGroup(t *testing.T, procs, local int, codec transport.Codec, mode GradSyncMode,
	bufs []*buffer.Blocking, spec ModelSpec, norm Normalizer) []*Trainer {
	t.Helper()
	listeners := make([]*transport.RingListener, procs)
	addrs := make([]string, procs)
	for p := range listeners {
		l, err := transport.ListenRing("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[p] = l
		addrs[p] = l.Addr()
	}
	groups := make([]ddp.RankGroup, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for p := range groups {
		wg.Add(1)
		go func(proc int) {
			defer wg.Done()
			ring, err := listeners[proc].ConnectContext(context.Background(), proc, addrs, 10*time.Second,
				transport.RingOptions{Identity: ddp.GroupIdentity(local), Codec: codec})
			if err != nil {
				errs[proc] = err
				return
			}
			groups[proc] = ddp.GroupFromRing(ring, local)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, g := range groups {
			if closer, ok := g.Comm.(interface{ Close() error }); ok {
				closer.Close()
			}
		}
	})
	trainers := make([]*Trainer, procs)
	for p := range trainers {
		tr, err := NewTrainer(TrainerConfig{
			Ranks:        local,
			Group:        groups[p],
			BatchSize:    5,
			GradSync:     mode,
			GradCompress: codec,
			Model:        spec,
			Normalizer:   norm,
		}, bufs[p*local:(p+1)*local])
		if err != nil {
			t.Fatal(err)
		}
		trainers[p] = tr
	}
	return trainers
}

// runTrainerGroup runs every process's trainer in lockstep and returns the
// global rank-0 loss trajectory and final weights.
func runTrainerGroup(t *testing.T, trainers []*Trainer) ([]LossPoint, []float32) {
	t.Helper()
	errs := make([]error, len(trainers))
	var wg sync.WaitGroup
	for p, tr := range trainers {
		wg.Add(1)
		go func(proc int, tr *Trainer) {
			defer wg.Done()
			errs[proc] = tr.Run(context.Background())
		}(p, tr)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", p, err)
		}
	}
	weights := append([]float32(nil), trainers[0].Network().FlatParams()...)
	return trainers[0].Metrics().TrainLoss(), weights
}

// runCodecShape trains the given shape/codec/mode over the same model and
// stream as runSyncMode — so its output is directly comparable to the
// in-process channel reference — and returns trajectory + final weights.
func runCodecShape(t *testing.T, procs, local int, codec transport.Codec, mode GradSyncMode) ([]LossPoint, []float32) {
	t.Helper()
	norm := NewHeatNormalizer(48, 1)
	spec := ModelSpec{InputDim: norm.InputDim(), Hidden: []int{24, 24}, OutputDim: norm.OutputDim(), Seed: 13}
	bufs := fifoRankBufs(t, norm, procs*local, 87)
	trainers := codecTrainerGroup(t, procs, local, codec, mode, bufs, spec, norm)
	return runTrainerGroup(t, trainers)
}

// weightDelta is the RMS difference between two weight vectors.
func weightDelta(a, b []float32) float64 {
	var sum float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a)))
}

// TestTrainCompressedMatrix runs f16 training across flat-TCP and
// hierarchical shapes against the exact in-process fp32 reference: the
// compressed trajectory must track the exact one within a quantization
// tolerance at every step, and the fp32 transport run must match the
// channel reference bit-for-bit (compression off is exactly off).
func TestTrainCompressedMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shape training matrix")
	}
	type shape struct{ procs, local int }
	for _, sh := range []shape{{2, 1}, {4, 1}, {2, 2}} {
		t.Run(fmt.Sprintf("procs=%d/local=%d", sh.procs, sh.local), func(t *testing.T) {
			refLoss, refW := runSyncMode(t, SyncOverlap, sh.procs*sh.local)

			f32Loss, f32W := runCodecShape(t, sh.procs, sh.local, transport.CodecF32, SyncOverlap)
			if len(f32Loss) != len(refLoss) {
				t.Fatalf("fp32 trajectory length %d, reference %d", len(f32Loss), len(refLoss))
			}
			for i := range refLoss {
				if f32Loss[i].Value != refLoss[i].Value {
					t.Fatalf("fp32 step %d: loss %v, reference %v", i, f32Loss[i].Value, refLoss[i].Value)
				}
			}
			for i := range refW {
				if f32W[i] != refW[i] {
					t.Fatalf("fp32 weight %d: %v, reference %v", i, f32W[i], refW[i])
				}
			}

			f16Loss, f16W := runCodecShape(t, sh.procs, sh.local, transport.CodecF16, SyncOverlap)
			if len(f16Loss) != len(refLoss) {
				t.Fatalf("f16 trajectory length %d, reference %d", len(f16Loss), len(refLoss))
			}
			for i := range refLoss {
				d := math.Abs(f16Loss[i].Value - refLoss[i].Value)
				tol := 2e-2 * (1 + refLoss[i].Value)
				if d > tol {
					t.Fatalf("f16 step %d: loss %v vs exact %v (diff %v > tol %v)",
						i, f16Loss[i].Value, refLoss[i].Value, d, tol)
				}
			}
			if rms := weightDelta(f16W, refW); rms > 2e-3 {
				t.Fatalf("f16 final weights drifted RMS %v from exact", rms)
			}
		})
	}
}

// TestTrainCompressedDeterminism pins reproducibility: two fresh f16 runs
// with identical configuration and streams produce bit-identical
// trajectories and weights — the codec is deterministic, so compression
// never costs repeatability.
func TestTrainCompressedDeterminism(t *testing.T) {
	loss1, w1 := runCodecShape(t, 2, 2, transport.CodecF16, SyncOverlap)
	loss2, w2 := runCodecShape(t, 2, 2, transport.CodecF16, SyncOverlap)
	if len(loss1) == 0 || len(loss1) != len(loss2) {
		t.Fatalf("trajectory lengths %d vs %d", len(loss1), len(loss2))
	}
	for i := range loss1 {
		if loss1[i].Value != loss2[i].Value {
			t.Fatalf("step %d: run1 loss %v, run2 %v", i, loss1[i].Value, loss2[i].Value)
		}
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("weight %d: run1 %v, run2 %v", i, w1[i], w2[i])
		}
	}
}

// TestTrainCompressedOverlapMatchesSerial extends the overlap equivalence
// gate to compressed collectives: each rank's bucket all-reduces run in
// the same order on the same error-feedback residuals whether launched
// during backward or after it, so the trajectories must agree bit-for-bit.
func TestTrainCompressedOverlapMatchesSerial(t *testing.T) {
	overlapLoss, overlapW := runCodecShape(t, 2, 1, transport.CodecF16, SyncOverlap)
	serialLoss, serialW := runCodecShape(t, 2, 1, transport.CodecF16, SyncSerial)
	if len(overlapLoss) == 0 || len(overlapLoss) != len(serialLoss) {
		t.Fatalf("trajectory lengths %d vs %d", len(overlapLoss), len(serialLoss))
	}
	for i := range overlapLoss {
		if overlapLoss[i].Value != serialLoss[i].Value {
			t.Fatalf("step %d: overlap loss %v, serial %v", i, overlapLoss[i].Value, serialLoss[i].Value)
		}
	}
	for i := range overlapW {
		if overlapW[i] != serialW[i] {
			t.Fatalf("weight %d: overlap %v, serial %v", i, overlapW[i], serialW[i])
		}
	}
}

// TestTrainCompressedErrorFeedback compares error-fed f16 against raw f16
// on the same stream: both must stay within the matrix tolerance of the
// exact run, and the two trajectories must actually differ — proving the
// residual path engages. On this well-conditioned problem both land at
// noise-level drift, so the quantitative EF-beats-raw gate lives in the
// ddp-level test with fixed adversarial gradients; here we only pin that
// neither mode harms training.
func TestTrainCompressedErrorFeedback(t *testing.T) {
	if testing.Short() {
		t.Skip("three full training runs")
	}
	_, refW := runSyncMode(t, SyncOverlap, 2)
	_, efW := runCodecShape(t, 2, 1, transport.CodecF16, SyncOverlap)
	_, rawW := runCodecShape(t, 2, 1, transport.CodecF16Raw, SyncOverlap)

	efErr := weightDelta(efW, refW)
	rawErr := weightDelta(rawW, refW)
	t.Logf("final-weight RMS vs exact: ef=%.3g raw=%.3g", efErr, rawErr)
	if efErr > 2e-3 || rawErr > 2e-3 {
		t.Fatalf("compressed runs drifted beyond tolerance: ef=%v raw=%v", efErr, rawErr)
	}
	if weightDelta(efW, rawW) == 0 {
		t.Fatal("error-feedback and raw f16 produced identical weights: residual path never engaged")
	}
}

// TestGradCompressValidation pins the fail-fast contract: a compressed
// declaration without a transport-backed group, or any declaration that
// disagrees with the ring's negotiated codec, must fail at construction.
func TestGradCompressValidation(t *testing.T) {
	norm := NewHeatNormalizer(32, 1)
	spec := ModelSpec{InputDim: norm.InputDim(), Hidden: []int{16}, OutputDim: norm.OutputDim(), Seed: 23}
	mk := func(cfg TrainerConfig) error {
		cfg.BatchSize = 5
		cfg.Model = spec
		cfg.Normalizer = norm
		bufs := fifoRankBufs(t, norm, cfg.Ranks, 10)
		_, err := NewTrainer(cfg, bufs)
		return err
	}

	// Channel group: compression is meaningless, must be rejected.
	if err := mk(TrainerConfig{Ranks: 2, GradCompress: transport.CodecF16}); err == nil {
		t.Fatal("f16 over an in-process channel group was accepted")
	}

	// Transport group whose ring negotiated a different codec.
	bufs := fifoRankBufs(t, norm, 2, 10)
	trainers := codecTrainerGroup(t, 2, 1, transport.CodecF16, SyncOverlap, bufs, spec, norm)
	comm := trainers[0].comm
	_, err := NewTrainer(TrainerConfig{
		Ranks: 1, BatchSize: 5, Model: spec, Normalizer: norm,
		Group:        ddp.RankGroup{Comm: comm},
		GradCompress: transport.CodecF32,
	}, bufs[:1])
	if err == nil {
		t.Fatal("fp32 declaration over an f16 ring was accepted")
	}
}
