package core

// Equivalence tests and benchmarks for the bucketed-overlap gradient sync:
// overlap must be bit-identical to the serial bucketed path across ranks
// and tail batches, a transport-backed multi-process rank group must train
// the exact same trajectory as the in-process channel group, and the
// overlapped step must stay allocation-free.

import (
	"context"
	"sync"
	"testing"
	"time"

	"melissa/internal/buffer"
	"melissa/internal/ddp"
	"melissa/internal/transport"
)

// fifoRankBufs splits nSamples deterministic samples round-robin across
// ranks FIFO buffers and closes reception, so extraction order is fixed
// and the last step of each rank is a tail batch when counts don't divide.
func fifoRankBufs(t testing.TB, norm HeatNormalizer, ranks, nSamples int) []*buffer.Blocking {
	t.Helper()
	samples := hotPathSamples(norm, nSamples)
	bufs := make([]*buffer.Blocking, ranks)
	for r := range bufs {
		bufs[r] = buffer.NewBlocking(buffer.NewFIFO(0))
	}
	for i, s := range samples {
		if !bufs[i%ranks].TryPut(s) {
			t.Fatal("put rejected")
		}
	}
	for _, b := range bufs {
		b.EndReception()
	}
	return bufs
}

// runSyncMode trains a fresh multi-rank trainer over a deterministic
// stream with the given sync mode and returns the loss trajectory and the
// final rank-0 weights.
func runSyncMode(t *testing.T, mode GradSyncMode, ranks int) ([]LossPoint, []float32) {
	t.Helper()
	norm := NewHeatNormalizer(48, 1)
	// 87 samples over 4 ranks at batch 5: every rank ends on a short tail.
	bufs := fifoRankBufs(t, norm, ranks, 87)
	tr, err := NewTrainer(TrainerConfig{
		Ranks:     ranks,
		BatchSize: 5,
		GradSync:  mode,
		Model: ModelSpec{
			InputDim:  norm.InputDim(),
			Hidden:    []int{24, 24},
			OutputDim: norm.OutputDim(),
			Seed:      13,
		},
		Normalizer: norm,
	}, bufs)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	weights := append([]float32(nil), tr.Network().FlatParams()...)
	return tr.Metrics().TrainLoss(), weights
}

// TestOverlapMatchesSerial pins the headline equivalence of the overlap
// refactor: launching each layer bucket's all-reduce during backward
// produces bit-for-bit the same trajectory as running the same bucket
// collectives serially after the full backward pass — across 4 ranks,
// including tail batches.
func TestOverlapMatchesSerial(t *testing.T) {
	overlapLoss, overlapW := runSyncMode(t, SyncOverlap, 4)
	serialLoss, serialW := runSyncMode(t, SyncSerial, 4)
	if len(overlapLoss) == 0 || len(overlapLoss) != len(serialLoss) {
		t.Fatalf("trajectory lengths %d vs %d", len(overlapLoss), len(serialLoss))
	}
	for i := range overlapLoss {
		if overlapLoss[i].Value != serialLoss[i].Value {
			t.Fatalf("step %d: overlap loss %v, serial %v", i, overlapLoss[i].Value, serialLoss[i].Value)
		}
	}
	for i := range overlapW {
		if overlapW[i] != serialW[i] {
			t.Fatalf("weight %d diverged: overlap %v vs serial %v", i, overlapW[i], serialW[i])
		}
	}
}

// TestOverlapCloseToFlat sanity-checks that the bucketed modes stay within
// float tolerance of the legacy full-slab all-reduce: the math is the
// same, only the per-chunk reduction order moves with the bucket
// boundaries.
func TestOverlapCloseToFlat(t *testing.T) {
	overlapLoss, _ := runSyncMode(t, SyncOverlap, 4)
	flatLoss, _ := runSyncMode(t, SyncFlat, 4)
	if len(overlapLoss) != len(flatLoss) {
		t.Fatalf("trajectory lengths %d vs %d", len(overlapLoss), len(flatLoss))
	}
	for i := range overlapLoss {
		d := overlapLoss[i].Value - flatLoss[i].Value
		if d < 0 {
			d = -d
		}
		tol := 1e-5 * (1 + flatLoss[i].Value)
		if d > tol {
			t.Fatalf("step %d: overlap %v vs flat %v (diff %v)", i, overlapLoss[i].Value, flatLoss[i].Value, d)
		}
	}
}

// tcpTrainerGroup builds one single-local-rank trainer per global rank,
// all joined by loopback TCP communicators — the in-process replica of the
// multi-process melissa-server deployment.
func tcpTrainerGroup(t *testing.T, ranks int, bufs []*buffer.Blocking, spec ModelSpec, norm Normalizer) []*Trainer {
	t.Helper()
	listeners := make([]*transport.RingListener, ranks)
	addrs := make([]string, ranks)
	for r := range listeners {
		l, err := transport.ListenRing("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[r] = l
		addrs[r] = l.Addr()
	}
	comms := make([]*ddp.TCPComm, ranks)
	var wg sync.WaitGroup
	errs := make([]error, ranks)
	for r := range comms {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ring, err := listeners[rank].Connect(rank, addrs, 10*time.Second)
			if err != nil {
				errs[rank] = err
				return
			}
			comms[rank] = ddp.NewTCPComm(ring)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, c := range comms {
			c.Close()
		}
	})

	trainers := make([]*Trainer, ranks)
	for r := range trainers {
		tr, err := NewTrainer(TrainerConfig{
			Ranks:      1,
			Group:      ddp.RankGroup{Comm: comms[r], Offset: r},
			BatchSize:  5,
			Model:      spec,
			Normalizer: norm,
		}, bufs[r:r+1])
		if err != nil {
			t.Fatal(err)
		}
		trainers[r] = tr
	}
	return trainers
}

// TestTCPRanksMatchInProcessRanks is the transport-equivalence test: two
// single-rank trainers synchronized over real TCP sockets must train the
// exact same loss trajectory and weights as one two-rank in-process
// trainer fed identical per-rank streams.
func TestTCPRanksMatchInProcessRanks(t *testing.T) {
	const ranks = 2
	const nSamples = 53 // tail batches on both ranks
	norm := NewHeatNormalizer(32, 1)
	spec := ModelSpec{InputDim: norm.InputDim(), Hidden: []int{16}, OutputDim: norm.OutputDim(), Seed: 23}

	// Reference: both ranks in one trainer over the channel backend.
	refBufs := fifoRankBufs(t, norm, ranks, nSamples)
	ref, err := NewTrainer(TrainerConfig{
		Ranks: ranks, BatchSize: 5, Model: spec, Normalizer: norm,
	}, refBufs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// TCP group: one trainer per rank, identical streams, run in lockstep.
	tcpBufs := fifoRankBufs(t, norm, ranks, nSamples)
	trainers := tcpTrainerGroup(t, ranks, tcpBufs, spec, norm)
	var wg sync.WaitGroup
	errs := make([]error, ranks)
	for r, tr := range trainers {
		wg.Add(1)
		go func(rank int, tr *Trainer) {
			defer wg.Done()
			errs[rank] = tr.Run(context.Background())
		}(r, tr)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("tcp rank %d: %v", r, err)
		}
	}

	refLoss := ref.Metrics().TrainLoss()
	tcpLoss := trainers[0].Metrics().TrainLoss() // global rank 0 owns metrics
	if len(refLoss) == 0 || len(refLoss) != len(tcpLoss) {
		t.Fatalf("trajectory lengths: in-process %d vs tcp %d", len(refLoss), len(tcpLoss))
	}
	for i := range refLoss {
		if refLoss[i].Value != tcpLoss[i].Value {
			t.Fatalf("step %d: in-process loss %v, tcp %v", i, refLoss[i].Value, tcpLoss[i].Value)
		}
	}
	for r, tr := range trainers {
		got := tr.Network().FlatParams()
		want := ref.nets[r].FlatParams()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tcp rank %d weight %d: %v, want %v", r, i, got[i], want[i])
			}
		}
	}
}

// multiRankHotTrainer wires a ranks-wide trainer to preloaded Reservoirs
// that never drain, for lockstep step-level benchmarks and alloc gates.
func multiRankHotTrainer(tb testing.TB, ranks int, mode GradSyncMode, fieldDim int, hidden []int, batch int) (*Trainer, []*rankState) {
	tb.Helper()
	norm := NewHeatNormalizer(fieldDim, 1)
	bufs := make([]*buffer.Blocking, ranks)
	for r := range bufs {
		bb := buffer.NewBlocking(buffer.NewReservoir(4096, 0, uint64(7+r)))
		for _, s := range hotPathSamples(norm, 256) {
			if !bb.TryPut(s) {
				tb.Fatal("prefill rejected")
			}
		}
		bufs[r] = bb
	}
	tr, err := NewTrainer(TrainerConfig{
		Ranks:     ranks,
		BatchSize: batch,
		GradSync:  mode,
		Model: ModelSpec{
			InputDim:  norm.InputDim(),
			Hidden:    hidden,
			OutputDim: norm.OutputDim(),
			Seed:      1,
		},
		Normalizer: norm,
	}, bufs)
	if err != nil {
		tb.Fatal(err)
	}
	sts := make([]*rankState, ranks)
	for r := range sts {
		sts[r] = tr.newRankState(r)
		tb.Cleanup(sts[r].close)
	}
	return tr, sts
}

// TestTrainStepZeroAllocOverlap4Ranks extends the zero-allocation gate to
// the overlapped multi-rank path: a steady-state synchronized step — batch
// extraction, forward, hook-launched bucket collectives, drain, fused Adam
// — performs no heap allocations on any rank.
func TestTrainStepZeroAllocOverlap4Ranks(t *testing.T) {
	const ranks = 4
	const runs = 100
	tr, sts := multiRankHotTrainer(t, ranks, SyncOverlap, 64, []int{32, 32}, 8)
	var wg sync.WaitGroup
	for r := 1; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < runs+1+5; i++ {
				if !step1(tr, sts[rank]) {
					t.Error("peer rank stopped")
					return
				}
			}
		}(r)
	}
	for i := 0; i < 5; i++ { // warm scratch, slabs, link buffers
		if !step1(tr, sts[0]) {
			t.Fatal("trainer stopped during warm-up")
		}
	}
	avg := testing.AllocsPerRun(runs, func() {
		if !step1(tr, sts[0]) {
			t.Fatal("trainer stopped during measurement")
		}
	})
	wg.Wait()
	if avg != 0 {
		t.Fatalf("overlapped train step: %v allocs per step in steady state, want 0", avg)
	}
}

// benchMultiRankTrainStep measures one synchronized multi-rank step at the
// paper's surrogate shape, with peer ranks in lockstep goroutines so the
// timed loop sees the full collective cost.
func benchMultiRankTrainStep(b *testing.B, mode GradSyncMode) {
	const ranks = 4
	tr, sts := multiRankHotTrainer(b, ranks, mode, 1024, []int{256, 256}, 10)
	var wg sync.WaitGroup
	for r := 1; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < b.N+3; i++ {
				step1(tr, sts[rank])
			}
		}(r)
	}
	for i := 0; i < 3; i++ {
		step1(tr, sts[0])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !step1(tr, sts[0]) {
			b.Fatal("trainer stopped")
		}
	}
	b.StopTimer()
	wg.Wait()
}

// BenchmarkTrainStepOverlap4Ranks: bucket all-reduces launched during
// backward (the default mode).
func BenchmarkTrainStepOverlap4Ranks(b *testing.B) {
	benchMultiRankTrainStep(b, SyncOverlap)
}

// BenchmarkTrainStepSerial4Ranks: the same bucket collectives issued after
// the full backward pass — the overlap win is the gap to this baseline.
func BenchmarkTrainStepSerial4Ranks(b *testing.B) {
	benchMultiRankTrainStep(b, SyncSerial)
}

// BenchmarkTrainStepFlat4Ranks: the legacy single full-slab all-reduce.
func BenchmarkTrainStepFlat4Ranks(b *testing.B) {
	benchMultiRankTrainStep(b, SyncFlat)
}
