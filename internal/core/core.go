// Package core implements the online-training engine that is the paper's
// primary contribution: per-rank training threads that extract batches from
// the training buffers, run forward/backward on replica networks,
// synchronize gradients across ranks (the "GPUs"), and apply the shared
// learning-rate schedule — all fed concurrently by data aggregators. The
// live server (internal/server) and the cluster simulator
// (internal/experiments) both build on these pieces.
package core

import (
	"fmt"

	"melissa/internal/buffer"
	"melissa/internal/nn"
	"melissa/internal/sampling"
	"melissa/internal/tensor"
)

// ModelSpec describes the surrogate architecture (§4.1: an MLP from the
// simulation parameters and time to the flattened field).
type ModelSpec struct {
	InputDim  int
	Hidden    []int
	OutputDim int
	Seed      uint64
}

// Build constructs the seeded network.
func (m ModelSpec) Build() (*nn.Network, error) {
	if m.InputDim <= 0 || m.OutputDim <= 0 {
		return nil, fmt.Errorf("core: invalid model dims in=%d out=%d", m.InputDim, m.OutputDim)
	}
	return nn.ArchitectureMLP(m.InputDim, m.Hidden, m.OutputDim, m.Seed), nil
}

// Normalizer maps raw streamed samples (physical units) into network input
// and target rows. Keeping normalization on the training side leaves the
// wire data faithful to the solver output.
type Normalizer interface {
	InputDim() int
	OutputDim() int
	// Apply writes the normalized input and target for s.
	Apply(s buffer.Sample, inRow, outRow []float32)
}

// RowNormalizer is the row-oriented half of the public normalizer
// contract: it maps one raw input vector and one raw field to normalized
// rows, without knowing about the streamed Sample framing. The root
// package's Normalizer interface satisfies it.
type RowNormalizer interface {
	InputDim() int
	OutputDim() int
	NormalizeInput(raw, dst []float32)
	NormalizeOutput(raw, dst []float32)
}

// AdaptNormalizer bridges a row-oriented normalizer to the trainer-side
// sample interface. Normalizers that already implement Normalizer (like
// FieldNormalizer) pass through unwrapped.
func AdaptNormalizer(n RowNormalizer) Normalizer {
	if cn, ok := n.(Normalizer); ok {
		return cn
	}
	return rowAdapter{n}
}

type rowAdapter struct{ n RowNormalizer }

func (a rowAdapter) InputDim() int  { return a.n.InputDim() }
func (a rowAdapter) OutputDim() int { return a.n.OutputDim() }
func (a rowAdapter) Apply(s buffer.Sample, inRow, outRow []float32) {
	a.n.NormalizeInput(s.Input, inRow)
	a.n.NormalizeOutput(s.Output, outRow)
}

// FieldNormalizer is the generic affine normalizer every field-predicting
// problem shares: design parameters map to [0,1] over their sampled box,
// physical time to [0,1] over the simulation horizon, and the flattened
// field to [0,1] over its physical bounds. The heat equation (paper setup)
// and Gray–Scott both instantiate it with their own ranges.
type FieldNormalizer struct {
	// Space is the parameter design space (heat paper: [100,500] K per dim).
	Space sampling.Space
	// TimeMax is the simulation horizon Steps·Δt.
	TimeMax float64
	// FieldMin/FieldMax bound the physical field values (for the heat
	// equation the maximum principle guarantees the field stays within the
	// sampled temperature range).
	FieldMin, FieldMax float64
	// FieldDim is the flattened field length (channels × grid points).
	FieldDim int
}

// NewFieldNormalizer builds a normalizer from a problem's geometry.
func NewFieldNormalizer(space sampling.Space, timeMax, fieldMin, fieldMax float64, fieldDim int) FieldNormalizer {
	return FieldNormalizer{
		Space:    space,
		TimeMax:  timeMax,
		FieldMin: fieldMin,
		FieldMax: fieldMax,
		FieldDim: fieldDim,
	}
}

// HeatNormalizer is the paper's heat-equation instantiation of the generic
// field normalizer; the alias keeps the original name working.
type HeatNormalizer = FieldNormalizer

// NewHeatNormalizer builds the normalizer for the paper's setup.
func NewHeatNormalizer(fieldDim int, timeMax float64) FieldNormalizer {
	return NewFieldNormalizer(sampling.HeatSpace(), timeMax, 100, 500, fieldDim)
}

// InputDim implements Normalizer: the parameters plus the time input.
func (h FieldNormalizer) InputDim() int { return h.Space.Dim() + 1 }

// OutputDim implements Normalizer.
func (h FieldNormalizer) OutputDim() int { return h.FieldDim }

// NormalizeInput writes the normalized network input for one raw input
// vector (the physical parameters followed by the physical time).
func (h FieldNormalizer) NormalizeInput(raw, dst []float32) {
	d := h.Space.Dim()
	for i := 0; i < d; i++ {
		span := h.Space.Max[i] - h.Space.Min[i]
		dst[i] = float32((float64(raw[i]) - h.Space.Min[i]) / span)
	}
	if h.TimeMax > 0 {
		dst[d] = float32(float64(raw[d]) / h.TimeMax)
	} else {
		dst[d] = raw[d]
	}
}

// NormalizeOutput writes the normalized training target for one raw field.
func (h FieldNormalizer) NormalizeOutput(raw, dst []float32) {
	span := float32(h.FieldMax - h.FieldMin)
	min := float32(h.FieldMin)
	for i, v := range raw {
		dst[i] = (v - min) / span
	}
}

// Apply implements Normalizer.
func (h FieldNormalizer) Apply(s buffer.Sample, inRow, outRow []float32) {
	h.NormalizeInput(s.Input, inRow)
	h.NormalizeOutput(s.Output, outRow)
}

// DenormalizeField maps a normalized prediction back to physical units in
// place.
func (h FieldNormalizer) DenormalizeField(field []float32) {
	span := float32(h.FieldMax - h.FieldMin)
	min := float32(h.FieldMin)
	for i := range field {
		field[i] = field[i]*span + min
	}
}

// RawMSE converts a normalized-unit MSE into physical units² (Kelvin² for
// the heat equation), for comparing against the paper's raw-scale loss
// values.
func (h FieldNormalizer) RawMSE(normalizedMSE float64) float64 {
	span := h.FieldMax - h.FieldMin
	return normalizedMSE * span * span
}

// KelvinMSE is RawMSE under its original heat-equation name.
func (h FieldNormalizer) KelvinMSE(normalizedMSE float64) float64 {
	return h.RawMSE(normalizedMSE)
}

// BuildBatch fills the in/out matrices (rows = len(batch)) from samples.
// The matrices must have matching widths; they are allocated by the caller
// and reused across batches.
func BuildBatch(norm Normalizer, batch []buffer.Sample, in, out *tensor.Matrix) {
	if in.Rows != len(batch) || out.Rows != len(batch) {
		panic(fmt.Sprintf("core: batch size %d, matrices %dx? %dx?", len(batch), in.Rows, out.Rows))
	}
	for i, s := range batch {
		norm.Apply(s, in.Row(i), out.Row(i))
	}
}

// BatchTensors allocates and fills fresh input/target matrices for a batch
// — the convenience used by offline training loops that cannot reuse
// fixed-size buffers (final partial batches vary in size).
func BatchTensors(norm Normalizer, batch []buffer.Sample) (in, out *tensor.Matrix) {
	in = tensor.New(len(batch), norm.InputDim())
	out = tensor.New(len(batch), norm.OutputDim())
	BuildBatch(norm, batch, in, out)
	return in, out
}

// ValidationSet is a held-out dataset in normalized units, evaluated
// periodically to measure generalization (§4.4: "10 simulations generated
// offline and never seen during training").
type ValidationSet struct {
	In  *tensor.Matrix
	Out *tensor.Matrix

	// view is the reusable chunk-view header handed to Forward. It lives
	// on the set rather than Validate's stack because layers retain the
	// pointer (lastX), which would otherwise force a fresh heap header per
	// call. Consequently a ValidationSet must not be validated from two
	// goroutines at once — already required, since the network isn't
	// concurrency-safe either.
	view tensor.Matrix
}

// NewValidationSet normalizes raw samples into an evaluation set.
func NewValidationSet(norm Normalizer, samples []buffer.Sample) *ValidationSet {
	in := tensor.New(len(samples), norm.InputDim())
	out := tensor.New(len(samples), norm.OutputDim())
	for i, s := range samples {
		norm.Apply(s, in.Row(i), out.Row(i))
	}
	return &ValidationSet{In: in, Out: out}
}

// Len returns the number of validation samples.
func (v *ValidationSet) Len() int { return v.In.Rows }

// Validate computes the validation MSE of net over the set, evaluated in
// chunks to bound peak memory.
func Validate(net *nn.Network, set *ValidationSet, chunk int) float64 {
	if set == nil || set.Len() == 0 {
		return 0
	}
	if chunk <= 0 {
		chunk = 32
	}
	var sum float64
	var count int
	// One reusable view header (set.view) serves every chunk; the
	// network's layers pool their activations per chunk shape, so repeated
	// validation passes allocate nothing.
	for start := 0; start < set.In.Rows; start += chunk {
		end := start + chunk
		if end > set.In.Rows {
			end = set.In.Rows
		}
		rows := end - start
		set.In.ViewRows(&set.view, start, end)
		want := set.Out.Data[start*set.Out.Cols : end*set.Out.Cols]
		pred := net.Forward(&set.view)
		for i, p := range pred.Data {
			d := float64(p) - float64(want[i])
			sum += d * d
		}
		count += rows * set.Out.Cols
	}
	return sum / float64(count)
}
