// Package core implements the online-training engine that is the paper's
// primary contribution: per-rank training threads that extract batches from
// the training buffers, run forward/backward on replica networks,
// synchronize gradients across ranks (the "GPUs"), and apply the shared
// learning-rate schedule — all fed concurrently by data aggregators. The
// live server (internal/server) and the cluster simulator
// (internal/experiments) both build on these pieces.
package core

import (
	"fmt"

	"melissa/internal/buffer"
	"melissa/internal/nn"
	"melissa/internal/sampling"
	"melissa/internal/tensor"
)

// ModelSpec describes the surrogate architecture (§4.1: an MLP from the
// simulation parameters and time to the flattened field).
type ModelSpec struct {
	InputDim  int
	Hidden    []int
	OutputDim int
	Seed      uint64
}

// Build constructs the seeded network.
func (m ModelSpec) Build() (*nn.Network, error) {
	if m.InputDim <= 0 || m.OutputDim <= 0 {
		return nil, fmt.Errorf("core: invalid model dims in=%d out=%d", m.InputDim, m.OutputDim)
	}
	return nn.ArchitectureMLP(m.InputDim, m.Hidden, m.OutputDim, m.Seed), nil
}

// Normalizer maps raw streamed samples (physical units) into network input
// and target rows. Keeping normalization on the training side leaves the
// wire data faithful to the solver output.
type Normalizer interface {
	InputDim() int
	OutputDim() int
	// Apply writes the normalized input and target for s.
	Apply(s buffer.Sample, inRow, outRow []float32)
}

// HeatNormalizer normalizes the heat-equation problem: the five temperature
// parameters and the field to [0,1] over the sampled range, and physical
// time to [0,1] over the simulation horizon.
type HeatNormalizer struct {
	// Space is the parameter design space (paper: [100,500] K per dim).
	Space sampling.Space
	// TimeMax is the simulation horizon Steps·Δt in seconds.
	TimeMax float64
	// FieldMin/FieldMax bound the temperature field (the maximum principle
	// guarantees the field stays within the sampled temperature range).
	FieldMin, FieldMax float64
	// FieldDim is the flattened field length N².
	FieldDim int
}

// NewHeatNormalizer builds the normalizer for the paper's setup.
func NewHeatNormalizer(fieldDim int, timeMax float64) HeatNormalizer {
	return HeatNormalizer{
		Space:    sampling.HeatSpace(),
		TimeMax:  timeMax,
		FieldMin: 100,
		FieldMax: 500,
		FieldDim: fieldDim,
	}
}

// InputDim implements Normalizer: the parameters plus the time input.
func (h HeatNormalizer) InputDim() int { return h.Space.Dim() + 1 }

// OutputDim implements Normalizer.
func (h HeatNormalizer) OutputDim() int { return h.FieldDim }

// Apply implements Normalizer.
func (h HeatNormalizer) Apply(s buffer.Sample, inRow, outRow []float32) {
	d := h.Space.Dim()
	for i := 0; i < d; i++ {
		span := h.Space.Max[i] - h.Space.Min[i]
		inRow[i] = float32((float64(s.Input[i]) - h.Space.Min[i]) / span)
	}
	if h.TimeMax > 0 {
		inRow[d] = float32(float64(s.Input[d]) / h.TimeMax)
	} else {
		inRow[d] = s.Input[d]
	}
	span := float32(h.FieldMax - h.FieldMin)
	min := float32(h.FieldMin)
	for i, v := range s.Output {
		outRow[i] = (v - min) / span
	}
}

// DenormalizeField maps a normalized prediction back to Kelvin in place.
func (h HeatNormalizer) DenormalizeField(field []float32) {
	span := float32(h.FieldMax - h.FieldMin)
	min := float32(h.FieldMin)
	for i := range field {
		field[i] = field[i]*span + min
	}
}

// KelvinMSE converts a normalized-unit MSE into Kelvin² units, for
// comparing against the paper's raw-scale loss values.
func (h HeatNormalizer) KelvinMSE(normalizedMSE float64) float64 {
	span := h.FieldMax - h.FieldMin
	return normalizedMSE * span * span
}

// BuildBatch fills the in/out matrices (rows = len(batch)) from samples.
// The matrices must have matching widths; they are allocated by the caller
// and reused across batches.
func BuildBatch(norm Normalizer, batch []buffer.Sample, in, out *tensor.Matrix) {
	if in.Rows != len(batch) || out.Rows != len(batch) {
		panic(fmt.Sprintf("core: batch size %d, matrices %dx? %dx?", len(batch), in.Rows, out.Rows))
	}
	for i, s := range batch {
		norm.Apply(s, in.Row(i), out.Row(i))
	}
}

// BatchTensors allocates and fills fresh input/target matrices for a batch
// — the convenience used by offline training loops that cannot reuse
// fixed-size buffers (final partial batches vary in size).
func BatchTensors(norm Normalizer, batch []buffer.Sample) (in, out *tensor.Matrix) {
	in = tensor.New(len(batch), norm.InputDim())
	out = tensor.New(len(batch), norm.OutputDim())
	BuildBatch(norm, batch, in, out)
	return in, out
}

// ValidationSet is a held-out dataset in normalized units, evaluated
// periodically to measure generalization (§4.4: "10 simulations generated
// offline and never seen during training").
type ValidationSet struct {
	In  *tensor.Matrix
	Out *tensor.Matrix
}

// NewValidationSet normalizes raw samples into an evaluation set.
func NewValidationSet(norm Normalizer, samples []buffer.Sample) *ValidationSet {
	in := tensor.New(len(samples), norm.InputDim())
	out := tensor.New(len(samples), norm.OutputDim())
	for i, s := range samples {
		norm.Apply(s, in.Row(i), out.Row(i))
	}
	return &ValidationSet{In: in, Out: out}
}

// Len returns the number of validation samples.
func (v *ValidationSet) Len() int { return v.In.Rows }

// Validate computes the validation MSE of net over the set, evaluated in
// chunks to bound peak memory.
func Validate(net *nn.Network, set *ValidationSet, chunk int) float64 {
	if set == nil || set.Len() == 0 {
		return 0
	}
	if chunk <= 0 {
		chunk = 32
	}
	var sum float64
	var count int
	// One reusable view header serves every chunk; the network's layers
	// pool their activations per chunk shape, so repeated validation
	// passes allocate nothing.
	var in tensor.Matrix
	for start := 0; start < set.In.Rows; start += chunk {
		end := start + chunk
		if end > set.In.Rows {
			end = set.In.Rows
		}
		rows := end - start
		set.In.ViewRows(&in, start, end)
		want := set.Out.Data[start*set.Out.Cols : end*set.Out.Cols]
		pred := net.Forward(&in)
		for i, p := range pred.Data {
			d := float64(p) - float64(want[i])
			sum += d * d
		}
		count += rows * set.Out.Cols
	}
	return sum / float64(count)
}
