package core

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"melissa/internal/buffer"
	"melissa/internal/opt"
	"melissa/internal/tensor"
)

const testFieldDim = 16

// synthSample builds a deterministic raw sample whose field is a smooth
// function of the parameters, standing in for the solver output.
func synthSample(simID, step int, rng *rand.Rand) buffer.Sample {
	params := make([]float32, 5)
	for i := range params {
		params[i] = float32(100 + 400*rng.Float64())
	}
	tSec := float64(step) * 0.01
	input := append(params, float32(tSec))
	field := make([]float32, testFieldDim)
	for i := range field {
		field[i] = 100 + 0.5*(params[0]+params[i%5])*float32(0.5+0.5*math.Exp(-tSec))
	}
	return buffer.Sample{SimID: simID, Step: step, Input: input, Output: field}
}

func synthSamples(n int, seed uint64) []buffer.Sample {
	rng := rand.New(rand.NewPCG(seed, 1))
	out := make([]buffer.Sample, n)
	for i := range out {
		out[i] = synthSample(i/10, i%10+1, rng)
	}
	return out
}

func testNormalizer() HeatNormalizer { return NewHeatNormalizer(testFieldDim, 1.0) }

func TestHeatNormalizerApply(t *testing.T) {
	norm := testNormalizer()
	if norm.InputDim() != 6 || norm.OutputDim() != testFieldDim {
		t.Fatalf("dims %d/%d", norm.InputDim(), norm.OutputDim())
	}
	s := buffer.Sample{
		Input:  []float32{100, 300, 500, 200, 400, 0.5},
		Output: make([]float32, testFieldDim),
	}
	for i := range s.Output {
		s.Output[i] = 300 // mid-range
	}
	in := make([]float32, 6)
	out := make([]float32, testFieldDim)
	norm.Apply(s, in, out)
	wantIn := []float32{0, 0.5, 1, 0.25, 0.75, 0.5}
	for i := range wantIn {
		if math.Abs(float64(in[i]-wantIn[i])) > 1e-6 {
			t.Fatalf("in = %v, want %v", in, wantIn)
		}
	}
	for _, v := range out {
		if math.Abs(float64(v)-0.5) > 1e-6 {
			t.Fatalf("out = %v, want all 0.5", out)
		}
	}
}

func TestHeatNormalizerDenormalize(t *testing.T) {
	norm := testNormalizer()
	f := []float32{0, 0.5, 1}
	norm.DenormalizeField(f)
	want := []float32{100, 300, 500}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("denorm %v", f)
		}
	}
}

func TestKelvinMSE(t *testing.T) {
	norm := testNormalizer()
	if got := norm.KelvinMSE(1); got != 160000 {
		t.Fatalf("KelvinMSE(1) = %v, want 400²", got)
	}
}

func TestBuildBatch(t *testing.T) {
	norm := testNormalizer()
	batch := synthSamples(4, 3)
	in := tensor.New(4, norm.InputDim())
	out := tensor.New(4, norm.OutputDim())
	BuildBatch(norm, batch, in, out)
	// Every normalized value must be finite and inputs within [0,1]+slack.
	for _, v := range in.Data {
		if v < -0.01 || v > 1.01 {
			t.Fatalf("input out of range: %v", v)
		}
	}
	for _, v := range out.Data {
		if math.IsNaN(float64(v)) {
			t.Fatal("NaN in normalized output")
		}
	}
}

func TestModelSpecBuild(t *testing.T) {
	spec := ModelSpec{InputDim: 6, Hidden: []int{8, 8}, OutputDim: testFieldDim, Seed: 1}
	net, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if net.NumParams() == 0 {
		t.Fatal("empty network")
	}
	if _, err := (ModelSpec{InputDim: 0, OutputDim: 1}).Build(); err == nil {
		t.Fatal("expected error for invalid dims")
	}
}

func TestValidate(t *testing.T) {
	norm := testNormalizer()
	samples := synthSamples(20, 5)
	set := NewValidationSet(norm, samples)
	if set.Len() != 20 {
		t.Fatalf("set len %d", set.Len())
	}
	net, _ := ModelSpec{InputDim: 6, Hidden: []int{4}, OutputDim: testFieldDim, Seed: 2}.Build()
	// Chunked evaluation must match single-shot evaluation.
	a := Validate(net, set, 3)
	b := Validate(net, set, 1000)
	if math.Abs(a-b) > 1e-6 {
		t.Fatalf("chunked %v vs full %v", a, b)
	}
	if a <= 0 {
		t.Fatal("validation loss should be positive for an untrained net")
	}
	if v := Validate(net, nil, 8); v != 0 {
		t.Fatal("nil set must give 0")
	}
}

func TestValidateZeroAlloc(t *testing.T) {
	norm := testNormalizer()
	// 20 samples at chunk 8 exercises both chunk shapes (8 and the final
	// partial 4), so the gate covers the activation pools for each.
	set := NewValidationSet(norm, synthSamples(20, 5))
	net, _ := ModelSpec{InputDim: 6, Hidden: []int{8, 8}, OutputDim: testFieldDim, Seed: 2}.Build()
	Validate(net, set, 8) // warm the per-shape activation pools
	allocs := testing.AllocsPerRun(20, func() {
		Validate(net, set, 8)
	})
	if allocs != 0 {
		t.Fatalf("Validate allocates %.0f objects per pass, want 0 (reusable view header regression)", allocs)
	}
}

func newTestTrainer(t *testing.T, ranks, maxBatches int, kind buffer.Kind) (*Trainer, []*buffer.Blocking) {
	t.Helper()
	norm := testNormalizer()
	bufs := make([]*buffer.Blocking, ranks)
	for r := range bufs {
		p, err := buffer.New(buffer.Config{Kind: kind, Capacity: 1000, Threshold: 5, Seed: uint64(r + 1)})
		if err != nil {
			t.Fatal(err)
		}
		bufs[r] = buffer.NewBlocking(p)
	}
	tr, err := NewTrainer(TrainerConfig{
		Ranks:            ranks,
		BatchSize:        4,
		Model:            ModelSpec{InputDim: norm.InputDim(), Hidden: []int{16}, OutputDim: norm.OutputDim(), Seed: 9},
		Normalizer:       norm,
		LearningRate:     1e-3,
		Schedule:         opt.Halving{Initial: 1e-3, EverySamples: 1 << 20},
		Validation:       NewValidationSet(norm, synthSamples(12, 99)),
		ValidateEvery:    5,
		MaxBatches:       maxBatches,
		TrackOccurrences: true,
	}, bufs)
	if err != nil {
		t.Fatal(err)
	}
	return tr, bufs
}

func TestTrainerSingleRankDrains(t *testing.T) {
	tr, bufs := newTestTrainer(t, 1, 0, buffer.FIFOKind)
	samples := synthSamples(60, 7)
	for _, s := range samples {
		bufs[0].Put(s)
	}
	bufs[0].EndReception()
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := tr.Metrics()
	if m.Batches() != 15 { // 60 samples / batch 4
		t.Fatalf("batches %d, want 15", m.Batches())
	}
	if m.Samples() != 60 {
		t.Fatalf("samples %d, want 60", m.Samples())
	}
	if len(m.TrainLoss()) != 15 {
		t.Fatalf("train loss points %d", len(m.TrainLoss()))
	}
	if len(m.Validation()) != 3 { // every 5 batches
		t.Fatalf("validation points %d", len(m.Validation()))
	}
	if _, ok := m.MinValidation(); !ok {
		t.Fatal("no min validation")
	}
}

func TestTrainerLossDecreases(t *testing.T) {
	tr, bufs := newTestTrainer(t, 1, 0, buffer.ReservoirKind)
	go func() {
		// Stream the same distribution repeatedly; the Reservoir repeats
		// samples, giving the optimizer enough steps to converge.
		samples := synthSamples(200, 11)
		for _, s := range samples {
			bufs[0].Put(s)
		}
		bufs[0].EndReception()
	}()
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	val := tr.Metrics().Validation()
	if len(val) < 2 {
		t.Fatalf("need ≥2 validation points, got %d", len(val))
	}
	first, last := val[0].Value, val[len(val)-1].Value
	if last >= first {
		t.Fatalf("validation did not improve: %v -> %v", first, last)
	}
}

func TestTrainerMultiRankReplicasIdentical(t *testing.T) {
	const ranks = 3
	tr, bufs := newTestTrainer(t, ranks, 0, buffer.FIFOKind)
	samples := synthSamples(72, 13)
	for i, s := range samples {
		bufs[i%ranks].Put(s)
	}
	for _, b := range bufs {
		b.EndReception()
	}
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// All replicas must hold identical weights after synchronized training.
	p0 := tr.nets[0].Params()
	for r := 1; r < ranks; r++ {
		pr := tr.nets[r].Params()
		for i := range p0 {
			for j := range p0[i].Value.Data {
				if p0[i].Value.Data[j] != pr[i].Value.Data[j] {
					t.Fatalf("rank %d diverged at param %d[%d]", r, i, j)
				}
			}
		}
	}
	if tr.Metrics().Samples() != 72 {
		t.Fatalf("samples %d, want 72", tr.Metrics().Samples())
	}
}

func TestTrainerUnevenRankDrain(t *testing.T) {
	// One rank gets twice the data: the other rank must keep joining
	// collectives with zero gradients until both drain.
	const ranks = 2
	tr, bufs := newTestTrainer(t, ranks, 0, buffer.FIFOKind)
	for _, s := range synthSamples(40, 17) {
		bufs[0].Put(s)
	}
	for _, s := range synthSamples(8, 18) {
		bufs[1].Put(s)
	}
	for _, b := range bufs {
		b.EndReception()
	}
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := tr.Metrics().Samples(); got != 48 {
		t.Fatalf("samples %d, want 48", got)
	}
	if got := tr.Metrics().Batches(); got != 10 { // max(40,8)/4
		t.Fatalf("batches %d, want 10", got)
	}
}

func TestTrainerMaxBatches(t *testing.T) {
	tr, bufs := newTestTrainer(t, 2, 3, buffer.ReservoirKind)
	for i, s := range synthSamples(100, 19) {
		bufs[i%2].Put(s)
	}
	// No EndReception: without MaxBatches this would run indefinitely.
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := tr.Metrics().Batches(); got != 3 {
		t.Fatalf("batches %d, want 3", got)
	}
}

func TestTrainerContextCancel(t *testing.T) {
	tr, bufs := newTestTrainer(t, 1, 0, buffer.ReservoirKind)
	for _, s := range synthSamples(50, 23) {
		bufs[0].Put(s)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tr.Run(ctx) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("trainer did not stop after cancellation")
	}
}

func TestTrainerOccurrenceTracking(t *testing.T) {
	tr, bufs := newTestTrainer(t, 1, 0, buffer.ReservoirKind)
	samples := synthSamples(20, 29)
	go func() {
		for _, s := range samples {
			bufs[0].Put(s)
		}
		// Delay EndReception so the Reservoir repeats samples for a while.
		time.Sleep(100 * time.Millisecond)
		bufs[0].EndReception()
	}()
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	occ := tr.Metrics().Occurrences()
	if len(occ) == 0 || len(occ) > 20 {
		t.Fatalf("unique occurrences %d", len(occ))
	}
	hist := tr.Metrics().OccurrenceHistogram()
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != len(occ) {
		t.Fatalf("histogram total %d != unique %d", total, len(occ))
	}
}

func TestTrainerConfigValidation(t *testing.T) {
	norm := testNormalizer()
	good := TrainerConfig{Ranks: 1, BatchSize: 1, Normalizer: norm,
		Model: ModelSpec{InputDim: 6, OutputDim: testFieldDim}}
	cases := []func(*TrainerConfig){
		func(c *TrainerConfig) { c.Ranks = 0 },
		func(c *TrainerConfig) { c.BatchSize = 0 },
		func(c *TrainerConfig) { c.Normalizer = nil },
	}
	for i, mutate := range cases {
		cfg := good
		mutate(&cfg)
		bufs := []*buffer.Blocking{buffer.NewBlocking(buffer.NewFIFO(0))}
		if cfg.Ranks == 0 {
			bufs = nil
		}
		if _, err := NewTrainer(cfg, bufs); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Buffer count mismatch.
	if _, err := NewTrainer(good, nil); err == nil {
		t.Fatal("expected buffer count error")
	}
}
