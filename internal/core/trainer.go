package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"

	"melissa/internal/buffer"
	"melissa/internal/ddp"
	"melissa/internal/nn"
	"melissa/internal/opt"
	"melissa/internal/tensor"
	"melissa/internal/transport"
)

// GradSyncMode selects how per-batch gradients are synchronized across
// ranks.
type GradSyncMode int

const (
	// SyncOverlap (the default) buckets the gradient slab by layer
	// boundaries and launches each bucket's all-reduce as soon as backward
	// finalizes that layer's gradients, overlapping communication with the
	// remaining backpropagation. Bit-identical to SyncSerial. With fused
	// Dense+activation layers every bucket is one weight+bias pair, so the
	// overlap granularity is unchanged from the unfused structure.
	SyncOverlap GradSyncMode = iota
	// SyncSerial runs the same per-bucket collectives, but only after the
	// full backward pass — the paper's §3.1 ordering. It exists as the
	// reference for the overlap equivalence tests and benchmarks.
	SyncSerial
	// SyncFlat is the legacy single full-slab all-reduce. Its float
	// reduction order differs from the bucketed modes (ring chunk
	// boundaries fall elsewhere), so trajectories match only within float
	// tolerance.
	SyncFlat
)

// TrainerConfig configures the data-parallel online training loop.
type TrainerConfig struct {
	Ranks     int // learner replicas ("GPUs") in this process; one training buffer each
	BatchSize int // samples per rank per synchronized step (paper: 10)

	// Group places this process's ranks in the data-parallel group: its
	// communicator carries the gradient collectives and its offset maps
	// local rank 0 into the global rank space. The zero value builds an
	// in-process channel ring over Ranks. Supplying a transport-backed
	// group (ddp.GroupFromRing, ddp.ConnectGroup) lets several processes
	// train as one group: Ranks then counts only this process's local
	// replicas. Metrics, validation and checkpoints belong to global
	// rank 0.
	Group ddp.RankGroup

	// Metrics, when non-nil, is the collector the trainer records into
	// instead of a fresh one — the elastic server threads one instance
	// through the per-epoch trainers so counters and loss curves span
	// group re-formations.
	Metrics *Metrics

	// GradSync selects overlapped-bucketed (default), serial-bucketed, or
	// legacy full-slab gradient synchronization.
	GradSync GradSyncMode

	// GradCompress declares the wire codec the gradient collectives are
	// expected to ride (transport.CodecF16 halves inter-node all-reduce
	// bytes; see docs/communication.md). The codec itself is a property of
	// the group's ring, negotiated at connection time — this field is the
	// trainer-side declaration, validated against the group's actual wire
	// format so a process whose ring and training config disagree fails at
	// construction instead of training a surprising trajectory. Leave zero
	// (CodecF32) for exact full-width collectives and for in-process
	// channel groups.
	GradCompress transport.Codec

	Model      ModelSpec
	Normalizer Normalizer
	// InitialWeights, when non-nil, warm-starts every replica from a
	// saved checkpoint (nn weight format) instead of the seeded random
	// init — the paper's §5 production workflow: "combine pre-training …
	// from a static reduced dataset and few online re-training at scale".
	InitialWeights []byte
	LearningRate   float64      // initial (paper: 1e-3)
	Schedule       opt.Schedule // may be nil for a constant rate

	Validation    *ValidationSet
	ValidateEvery int // in global batches (paper: 100); 0 disables

	// MaxBatches stops training after this many synchronized steps;
	// 0 trains until every buffer drains.
	MaxBatches int

	TrackOccurrences bool

	// OnBatchEnd, when set, runs on global rank 0 after every synchronized
	// step (other ranks stall at the next collective meanwhile). The
	// server uses it to take periodic checkpoints at a consistent
	// boundary.
	OnBatchEnd func(batches int)

	// OnLocalBatchEnd, when set, runs on every local rank after each
	// synchronized step, once the optimizer update has been applied, with
	// the rank's local index and batch count. Unlike OnBatchEnd it fires
	// on every rank: the elastic group checkpoints use it to write
	// per-rank shards at a consistent step boundary.
	OnLocalBatchEnd func(rank, batches int)
}

func (c TrainerConfig) validate() error {
	if c.Ranks < 1 {
		return fmt.Errorf("core: ranks=%d must be ≥ 1", c.Ranks)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("core: batch size=%d must be ≥ 1", c.BatchSize)
	}
	if c.Normalizer == nil {
		return errors.New("core: normalizer required")
	}
	if err := c.Group.Validate(c.Ranks); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// Trainer runs the paper's training threads: each rank extracts batches
// from its own buffer, computes gradients on its replica, all-reduces them
// with the other ranks, and applies identical Adam updates (§3.1). With
// the default overlapped mode, each layer's gradient bucket is all-reduced
// concurrently with the backpropagation of earlier layers.
type Trainer struct {
	cfg     TrainerConfig
	bufs    []*buffer.Blocking
	nets    []*nn.Network
	opts    []*opt.Adam
	comm    ddp.Communicator
	metrics *Metrics

	// buckets are the gradient-slab ranges in backward-completion order,
	// identical across replicas; bucketOfLayer maps a layer index to its
	// bucket (or -1).
	buckets       []nn.GradBucket
	bucketOfLayer []int

	// localSamples[r] mirrors the global cumulative sample count on local
	// rank r; the value advances identically on every rank because it is
	// derived from the all-reduced per-step count.
	localSamples []int

	// startBatches/startSamples seed the counters after a checkpoint
	// restore so learning-rate schedules resume where they left off.
	startBatches int
	startSamples int
}

// NewTrainer builds the replicas (identical weights from the seeded spec)
// and wires them to the per-rank buffers. len(bufs) must equal cfg.Ranks.
func NewTrainer(cfg TrainerConfig, bufs []*buffer.Blocking) (*Trainer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(bufs) != cfg.Ranks {
		return nil, fmt.Errorf("core: %d buffers for %d ranks", len(bufs), cfg.Ranks)
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 1e-3
	}
	base, err := cfg.Model.Build()
	if err != nil {
		return nil, err
	}
	comm := cfg.Group.Comm
	if comm == nil {
		comm = ddp.NewCommunicator(cfg.Ranks)
	}
	// The declared gradient codec must match the wire format the group's
	// ring actually negotiated: a mismatch means the process was launched
	// with inconsistent flags, and silently training at the other precision
	// is the one outcome nobody wants.
	wc, _ := comm.(ddp.WireCompression)
	switch {
	case cfg.GradCompress.Compressed() && wc == nil:
		return nil, fmt.Errorf("core: grad compression %v requires a transport-backed group (in-process channel groups are always exact)", cfg.GradCompress)
	case wc != nil && wc.WireCodec() != cfg.GradCompress:
		return nil, fmt.Errorf("core: grad compression %v does not match the group ring's negotiated codec %v", cfg.GradCompress, wc.WireCodec())
	}
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = NewMetrics(cfg.TrackOccurrences)
	}
	t := &Trainer{
		cfg:          cfg,
		bufs:         bufs,
		nets:         make([]*nn.Network, cfg.Ranks),
		opts:         make([]*opt.Adam, cfg.Ranks),
		comm:         comm,
		metrics:      metrics,
		localSamples: make([]int, cfg.Ranks),
	}
	if cfg.InitialWeights != nil {
		if err := base.LoadWeights(bytes.NewReader(cfg.InitialWeights)); err != nil {
			return nil, fmt.Errorf("core: loading initial weights: %w", err)
		}
	}
	for r := 0; r < cfg.Ranks; r++ {
		if r == 0 {
			t.nets[r] = base
		} else {
			t.nets[r] = base.Clone()
		}
		t.opts[r] = opt.NewAdam(cfg.LearningRate)
	}
	// The bucket layout is a property of the architecture; all replicas
	// share it. Networks without slab fusion cannot bucket and fall back
	// to the full-slab collective.
	t.buckets = base.GradBuckets()
	if t.buckets == nil {
		t.cfg.GradSync = SyncFlat
	}
	t.bucketOfLayer = make([]int, len(base.Layers))
	for i := range t.bucketOfLayer {
		t.bucketOfLayer[i] = -1
	}
	for b, bk := range t.buckets {
		if bk.Layer >= 0 {
			t.bucketOfLayer[bk.Layer] = b
		}
	}
	return t, nil
}

// Network returns the local rank-0 replica (identical to all others after
// every synchronized step).
func (t *Trainer) Network() *nn.Network { return t.nets[0] }

// Optimizer returns the rank-0 optimizer, used by server checkpoints.
func (t *Trainer) Optimizer() *opt.Adam { return t.opts[0] }

// Metrics returns the shared metrics collector. Counters advance only on
// the trainer owning global rank 0.
func (t *Trainer) Metrics() *Metrics { return t.metrics }

// Run trains until every rank's buffer is drained (or MaxBatches is hit),
// spawning one goroutine per local rank. Cancelling ctx ends reception on
// every buffer, so ranks finish the remaining data and stop.
func (t *Trainer) Run(ctx context.Context) error {
	t.metrics.Begin()
	defer t.metrics.Finish()

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			select {
			case <-stop:
				// Run already finished; a late cancellation must not end
				// reception on buffers that outlive this trainer (the
				// elastic server reuses them across group epochs).
				return
			default:
			}
			for _, b := range t.bufs {
				b.EndReception()
			}
		case <-stop:
		}
	}()

	errs := make([]error, t.cfg.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < t.cfg.Ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = t.rankLoop(rank)
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// rankState is the per-rank training-thread state. Everything the hot loop
// touches is preallocated here once, so a steady-state synchronized step
// performs no heap allocations: the batch slice, the batch matrices (plus
// reusable prefix-view headers for short tail batches), the status buffer,
// and the bucket-sync channels are all reused across steps.
type rankState struct {
	rank      int // local rank (buffer/replica index)
	grank     int // global rank in the communicator's rank space
	net       *nn.Network
	optimizer *opt.Adam
	lossFn    *nn.MSELoss

	in, out         *tensor.Matrix // full-batch input/target storage
	viewIn, viewOut tensor.Matrix  // reusable prefix views for tail batches
	// keys records the identities of this step's samples for the
	// occurrence metrics; fill normalizes sample i straight into row i of
	// the batch matrices while the buffer lock is held (the payload may
	// alias an arena row that is recycled as soon as the callback
	// returns). Both are allocated once so the step stays allocation-free.
	keys         []buffer.Key
	fill         func(i int, s buffer.Sample)
	status       [2]float32 // [active ranks, samples this step]
	localBatches int

	// Overlap machinery: hook enqueues a finished layer's bucket on jobs;
	// the persistent syncer goroutine runs the bucket collectives in
	// order and acknowledges each on acks (nil on success, the collective
	// error otherwise). launched counts this step's in-flight buckets.
	jobs     chan int
	acks     chan error
	hook     func(layer int)
	launched int

	// lastWireSent/Recv are global rank 0's previous snapshot of the
	// communicator's wire-byte counters; per-step deltas feed the shared
	// metrics so totals survive elastic ring replacement.
	lastWireSent uint64
	lastWireRecv uint64
}

// newRankState preallocates the per-rank training state and starts the
// rank's gradient-sync goroutine. close releases it.
func (t *Trainer) newRankState(rank int) *rankState {
	norm := t.cfg.Normalizer
	st := &rankState{
		rank:         rank,
		grank:        t.cfg.Group.Offset + rank,
		net:          t.nets[rank],
		optimizer:    t.opts[rank],
		lossFn:       nn.NewMSELoss(),
		in:           tensor.New(t.cfg.BatchSize, norm.InputDim()),
		out:          tensor.New(t.cfg.BatchSize, norm.OutputDim()),
		keys:         make([]buffer.Key, t.cfg.BatchSize),
		localBatches: t.startBatches,
		jobs:         make(chan int, len(t.buckets)),
		acks:         make(chan error, len(t.buckets)),
	}
	st.fill = func(i int, s buffer.Sample) {
		norm.Apply(s, st.in.Row(i), st.out.Row(i))
		st.keys[i] = s.Key()
	}
	st.hook = func(layer int) {
		if b := t.bucketOfLayer[layer]; b >= 0 {
			st.jobs <- b
			st.launched++
		}
	}
	go t.syncLoop(st)
	t.localSamples[rank] = t.startSamples
	return st
}

// close stops the rank's gradient-sync goroutine.
func (st *rankState) close() { close(st.jobs) }

// syncLoop is the per-rank communication thread: it executes bucket
// all-reduces in launch order, so collectives stay matched across ranks
// while the training thread continues backpropagating. Once a collective
// fails the communicator is poisoned, so later buckets are acknowledged
// with the same error without touching the ring again.
func (t *Trainer) syncLoop(st *rankState) {
	grads := st.net.FlatGrads()
	var failed error
	for b := range st.jobs {
		if failed == nil {
			failed = t.comm.AllReduceSumRange(st.grank, grads, t.buckets[b].Lo, t.buckets[b].Hi)
		}
		st.acks <- failed
	}
}

// rankLoop is the per-rank training thread. Collective calls must stay in
// lock-step across ranks: every iteration performs exactly one status
// all-reduce and, while any rank is active, one gradient sync (a fixed
// sequence of bucket collectives, or one full-slab collective for
// SyncFlat). A collective failure (dead peer, aborted ring) ends the loop
// with that error; the weights hold the state of the last completed step.
func (t *Trainer) rankLoop(rank int) error {
	st := t.newRankState(rank)
	defer st.close()
	for {
		cont, err := t.step(st)
		if err != nil {
			return fmt.Errorf("core: rank %d stopped at batch %d: %w", st.grank, st.localBatches, err)
		}
		if !cont {
			return nil
		}
	}
}

// step performs one synchronized training step and reports whether the
// rank should continue. It is the measured unit of BenchmarkTrainStep and
// is allocation-free in steady state. On a communicator error the step is
// abandoned before the optimizer update, so replica state stays at the
// last completed step.
func (t *Trainer) step(st *rankState) (bool, error) {
	if t.cfg.MaxBatches > 0 && st.localBatches >= t.cfg.MaxBatches {
		// The batch counter advances identically on every rank, so all
		// ranks exit here on the same iteration.
		return false, nil
	}
	// Batch assembly copies straight from the buffer (arena rows for the
	// live server) into the preallocated batch matrices, normalizing in
	// the same pass; the callback runs under the buffer lock, which is
	// what makes reading recycled-in-place payloads safe.
	n, ok := t.bufs[st.rank].GetBatchEach(t.cfg.BatchSize, st.fill)

	st.status[0], st.status[1] = 0, 0
	if ok {
		st.status[0] = 1
		st.status[1] = float32(n)
	}
	if err := t.comm.AllReduceSum(st.grank, st.status[:]); err != nil {
		return false, err
	}
	if st.status[0] == 0 {
		return false, nil // every buffer drained
	}
	stepSamples := int(st.status[1] + 0.5)

	var trainLoss float64
	st.net.ZeroGrad()
	overlap := t.cfg.GradSync == SyncOverlap
	if ok {
		bi, bo := st.in, st.out
		if n != t.cfg.BatchSize {
			// Tail batch: view the leading rows of the preallocated
			// matrices instead of allocating shorter ones.
			st.in.ViewRows(&st.viewIn, 0, n)
			st.out.ViewRows(&st.viewOut, 0, n)
			bi, bo = &st.viewIn, &st.viewOut
		}
		pred := st.net.Forward(bi)
		trainLoss = st.lossFn.Forward(pred, bo)
		dy := st.lossFn.Backward(pred, bo)
		if overlap {
			// Each layer's bucket is handed to the syncer the moment its
			// gradients are final, overlapping the all-reduce with the
			// rest of the backward pass.
			st.net.BackwardWithHook(dy, st.hook)
		} else {
			st.net.Backward(dy)
		}
		t.metrics.CountKeys(st.keys[:n])
	} else if overlap {
		// Drained ranks contribute zero gradients but must join every
		// collective, in the same bucket order the hook produces.
		for b := range t.buckets {
			st.jobs <- b
			st.launched++
		}
	}
	if err := t.syncGradients(st); err != nil {
		return false, err
	}

	st.localBatches++
	var globalBatch, globalSamples int
	if st.grank == 0 {
		globalBatch, globalSamples = t.metrics.RecordStep(stepSamples)
		if ok {
			t.metrics.RecordTrainLoss(globalBatch, globalSamples, trainLoss)
		}
		if wc, okc := t.comm.(ddp.WireCompression); okc {
			sent, recv := wc.WireBytes()
			t.metrics.AddWireBytes(sent-st.lastWireSent, recv-st.lastWireRecv)
			st.lastWireSent, st.lastWireRecv = sent, recv
		}
		t.sampleCounterLocal(st.rank, stepSamples) // keep the mirror in step
	} else {
		// Mirror the counters locally; the schedule needs the global
		// sample count, which advances identically on every rank.
		globalSamples = t.sampleCounterLocal(st.rank, stepSamples)
	}
	if t.cfg.Schedule != nil {
		st.optimizer.SetLR(t.cfg.Schedule.LR(globalSamples))
	}
	st.optimizer.StepFlat(st.net.FlatParams(), st.net.FlatGrads())

	if st.grank == 0 && t.cfg.Validation != nil && t.cfg.ValidateEvery > 0 && st.localBatches%t.cfg.ValidateEvery == 0 {
		// §4.4: validation runs on the training thread while holding
		// the buffer mutex; incoming data queue up in the transport.
		t.bufs[0].WithLock(func(buffer.Policy) {
			v := Validate(st.net, t.cfg.Validation, t.cfg.BatchSize*4)
			t.metrics.RecordValidation(st.localBatches, globalSamples, v)
		})
	}
	if t.cfg.OnLocalBatchEnd != nil {
		t.cfg.OnLocalBatchEnd(st.rank, st.localBatches)
	}
	if st.grank == 0 && t.cfg.OnBatchEnd != nil {
		t.cfg.OnBatchEnd(st.localBatches)
	}
	return true, nil
}

// syncGradients completes the step's gradient synchronization: it drains
// the in-flight bucket collectives (overlap), or runs them now (serial),
// or all-reduces the whole slab (flat), then averages. On return every
// replica holds identical averaged gradients, matching the all-reduce step
// of §3.1. The collectives operate on the slab in place — no
// gather/scatter staging. On a collective failure the first error is
// returned — after draining every in-flight bucket, so the syncer
// goroutine is never left blocked — and the gradients are unusable.
func (t *Trainer) syncGradients(st *rankState) error {
	grads := st.net.FlatGrads()
	var failed error
	switch t.cfg.GradSync {
	case SyncOverlap:
		for st.launched > 0 {
			if err := <-st.acks; err != nil && failed == nil {
				failed = err
			}
			st.launched--
		}
	case SyncSerial:
		for _, bk := range t.buckets {
			if err := t.comm.AllReduceSumRange(st.grank, grads, bk.Lo, bk.Hi); err != nil {
				return err
			}
		}
	case SyncFlat:
		// Run the flat slab as a range collective so it shares the bucketed
		// modes' error-feedback path on a compressed ring; the trailing
		// Scal is the AllReduceMean division, element-wise identical.
		if err := t.comm.AllReduceSumRange(st.grank, grads, 0, len(grads)); err != nil {
			return err
		}
	}
	if failed != nil {
		return failed
	}
	if n := t.comm.Size(); n > 1 {
		tensor.Scal(1/float32(n), grads)
	}
	return nil
}

// RestoreState loads checkpointed weights and optimizer state into every
// replica and seeds the global counters, so a restarted server resumes the
// exact training trajectory (§3.1). Must be called before Run.
func (t *Trainer) RestoreState(weights, optState []byte, batches, samples int) error {
	for r, net := range t.nets {
		if err := net.LoadWeights(bytes.NewReader(weights)); err != nil {
			return fmt.Errorf("core: restoring rank %d weights: %w", r, err)
		}
		if err := t.opts[r].LoadState(bytes.NewReader(optState)); err != nil {
			return fmt.Errorf("core: restoring rank %d optimizer: %w", r, err)
		}
	}
	t.startBatches = batches
	t.startSamples = samples
	t.metrics.RestoreCounts(batches, samples)
	return nil
}

// CaptureState serializes the rank-0 weights and optimizer state for a
// checkpoint. Call only from OnBatchEnd (a consistent step boundary) or
// after Run returns.
func (t *Trainer) CaptureState() (weights, optState []byte, err error) {
	var wbuf, obuf bytes.Buffer
	if err := t.nets[0].SaveWeights(&wbuf); err != nil {
		return nil, nil, err
	}
	if err := t.opts[0].SaveState(&obuf); err != nil {
		return nil, nil, err
	}
	return wbuf.Bytes(), obuf.Bytes(), nil
}

// sampleCounterLocal maintains per-rank mirrors of the global sample count
// without touching the shared metrics (which global rank 0 owns). Each
// rank only accesses its own slot.
func (t *Trainer) sampleCounterLocal(rank, add int) int {
	t.localSamples[rank] += add
	return t.localSamples[rank]
}

// LocalSamples returns local rank r's mirror of the global cumulative
// sample count. It advances identically on every rank (it derives from the
// all-reduced per-step count), so any rank can checkpoint it. Call it only
// from OnLocalBatchEnd or after Run returns — it reads the rank's counter
// without synchronization.
func (t *Trainer) LocalSamples(rank int) int { return t.localSamples[rank] }
