package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"

	"melissa/internal/buffer"
	"melissa/internal/ddp"
	"melissa/internal/nn"
	"melissa/internal/opt"
	"melissa/internal/tensor"
)

// TrainerConfig configures the data-parallel online training loop.
type TrainerConfig struct {
	Ranks     int // learner replicas ("GPUs"); one training buffer each
	BatchSize int // samples per rank per synchronized step (paper: 10)

	Model      ModelSpec
	Normalizer Normalizer
	// InitialWeights, when non-nil, warm-starts every replica from a
	// saved checkpoint (nn weight format) instead of the seeded random
	// init — the paper's §5 production workflow: "combine pre-training …
	// from a static reduced dataset and few online re-training at scale".
	InitialWeights []byte
	LearningRate   float64      // initial (paper: 1e-3)
	Schedule       opt.Schedule // may be nil for a constant rate

	Validation    *ValidationSet
	ValidateEvery int // in global batches (paper: 100); 0 disables

	// MaxBatches stops training after this many synchronized steps;
	// 0 trains until every buffer drains.
	MaxBatches int

	TrackOccurrences bool

	// OnBatchEnd, when set, runs on rank 0 after every synchronized step
	// (other ranks stall at the next collective meanwhile). The server
	// uses it to take periodic checkpoints at a consistent boundary.
	OnBatchEnd func(batches int)
}

func (c TrainerConfig) validate() error {
	if c.Ranks < 1 {
		return fmt.Errorf("core: ranks=%d must be ≥ 1", c.Ranks)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("core: batch size=%d must be ≥ 1", c.BatchSize)
	}
	if c.Normalizer == nil {
		return errors.New("core: normalizer required")
	}
	return nil
}

// Trainer runs the paper's training threads: each rank extracts batches
// from its own buffer, computes gradients on its replica, all-reduces them
// with the other ranks, and applies identical Adam updates (§3.1).
type Trainer struct {
	cfg     TrainerConfig
	bufs    []*buffer.Blocking
	nets    []*nn.Network
	opts    []*opt.Adam
	comm    *ddp.Communicator
	metrics *Metrics

	// localSamples[r] mirrors the global cumulative sample count on rank
	// r; the value advances identically on every rank because it is
	// derived from the all-reduced per-step count.
	localSamples []int

	// startBatches/startSamples seed the counters after a checkpoint
	// restore so learning-rate schedules resume where they left off.
	startBatches int
	startSamples int
}

// NewTrainer builds the replicas (identical weights from the seeded spec)
// and wires them to the per-rank buffers. len(bufs) must equal cfg.Ranks.
func NewTrainer(cfg TrainerConfig, bufs []*buffer.Blocking) (*Trainer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(bufs) != cfg.Ranks {
		return nil, fmt.Errorf("core: %d buffers for %d ranks", len(bufs), cfg.Ranks)
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 1e-3
	}
	base, err := cfg.Model.Build()
	if err != nil {
		return nil, err
	}
	t := &Trainer{
		cfg:          cfg,
		bufs:         bufs,
		nets:         make([]*nn.Network, cfg.Ranks),
		opts:         make([]*opt.Adam, cfg.Ranks),
		comm:         ddp.NewCommunicator(cfg.Ranks),
		metrics:      NewMetrics(cfg.TrackOccurrences),
		localSamples: make([]int, cfg.Ranks),
	}
	if cfg.InitialWeights != nil {
		if err := base.LoadWeights(bytes.NewReader(cfg.InitialWeights)); err != nil {
			return nil, fmt.Errorf("core: loading initial weights: %w", err)
		}
	}
	for r := 0; r < cfg.Ranks; r++ {
		if r == 0 {
			t.nets[r] = base
		} else {
			t.nets[r] = base.Clone()
		}
		t.opts[r] = opt.NewAdam(cfg.LearningRate)
	}
	return t, nil
}

// Network returns the rank-0 replica (identical to all others after every
// synchronized step).
func (t *Trainer) Network() *nn.Network { return t.nets[0] }

// Optimizer returns the rank-0 optimizer, used by server checkpoints.
func (t *Trainer) Optimizer() *opt.Adam { return t.opts[0] }

// Metrics returns the shared metrics collector.
func (t *Trainer) Metrics() *Metrics { return t.metrics }

// Run trains until every rank's buffer is drained (or MaxBatches is hit),
// spawning one goroutine per rank. Cancelling ctx ends reception on every
// buffer, so ranks finish the remaining data and stop.
func (t *Trainer) Run(ctx context.Context) error {
	t.metrics.Begin()
	defer t.metrics.Finish()

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			for _, b := range t.bufs {
				b.EndReception()
			}
		case <-stop:
		}
	}()

	errs := make([]error, t.cfg.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < t.cfg.Ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = t.rankLoop(rank)
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// rankState is the per-rank training-thread state. Everything the hot loop
// touches is preallocated here once, so a steady-state synchronized step
// performs no heap allocations: the batch slice, the batch matrices (plus
// reusable prefix-view headers for short tail batches) and the status
// buffer are all reused across steps.
type rankState struct {
	rank      int
	net       *nn.Network
	optimizer *opt.Adam
	lossFn    *nn.MSELoss

	in, out         *tensor.Matrix // full-batch input/target storage
	viewIn, viewOut tensor.Matrix  // reusable prefix views for tail batches
	batch           []buffer.Sample
	status          [2]float32 // [active ranks, samples this step]
	localBatches    int
}

// newRankState preallocates the per-rank training state.
func (t *Trainer) newRankState(rank int) *rankState {
	norm := t.cfg.Normalizer
	st := &rankState{
		rank:         rank,
		net:          t.nets[rank],
		optimizer:    t.opts[rank],
		lossFn:       nn.NewMSELoss(),
		in:           tensor.New(t.cfg.BatchSize, norm.InputDim()),
		out:          tensor.New(t.cfg.BatchSize, norm.OutputDim()),
		batch:        make([]buffer.Sample, 0, t.cfg.BatchSize),
		localBatches: t.startBatches,
	}
	t.localSamples[rank] = t.startSamples
	return st
}

// rankLoop is the per-rank training thread. Collective calls must stay in
// lock-step across ranks: every iteration performs exactly one status
// all-reduce and, while any rank is active, one gradient all-reduce.
func (t *Trainer) rankLoop(rank int) error {
	st := t.newRankState(rank)
	for t.step(st) {
	}
	return nil
}

// step performs one synchronized training step and reports whether the
// rank should continue. It is the measured unit of BenchmarkTrainStep and
// is allocation-free in steady state.
func (t *Trainer) step(st *rankState) bool {
	rank := st.rank
	if t.cfg.MaxBatches > 0 && st.localBatches >= t.cfg.MaxBatches {
		// The batch counter advances identically on every rank, so all
		// ranks exit here on the same iteration.
		return false
	}
	norm := t.cfg.Normalizer
	batch, ok := t.bufs[rank].GetBatchInto(st.batch, t.cfg.BatchSize)
	if ok {
		st.batch = batch[:0] // keep (possibly grown) storage for reuse
	}

	st.status[0], st.status[1] = 0, 0
	if ok {
		st.status[0] = 1
		st.status[1] = float32(len(batch))
	}
	t.comm.AllReduceSum(rank, st.status[:])
	if st.status[0] == 0 {
		return false // every buffer drained
	}
	stepSamples := int(st.status[1] + 0.5)

	var trainLoss float64
	st.net.ZeroGrad()
	if ok {
		bi, bo := st.in, st.out
		if len(batch) != t.cfg.BatchSize {
			// Tail batch: view the leading rows of the preallocated
			// matrices instead of allocating shorter ones.
			st.in.ViewRows(&st.viewIn, 0, len(batch))
			st.out.ViewRows(&st.viewOut, 0, len(batch))
			bi, bo = &st.viewIn, &st.viewOut
		}
		BuildBatch(norm, batch, bi, bo)
		pred := st.net.Forward(bi)
		trainLoss = st.lossFn.Forward(pred, bo)
		st.net.Backward(st.lossFn.Backward(pred, bo))
		t.metrics.CountBatch(batch)
	}
	// Drained ranks contribute zero gradients but must join the
	// collective so active ranks can proceed. The all-reduce runs in
	// place on the network's gradient slab.
	ddp.SyncGradients(t.comm, rank, st.net.FlatGrads())

	st.localBatches++
	var globalBatch, globalSamples int
	if rank == 0 {
		globalBatch, globalSamples = t.metrics.RecordStep(stepSamples)
		if ok {
			t.metrics.RecordTrainLoss(globalBatch, globalSamples, trainLoss)
		}
	} else {
		// Mirror the counters locally; the schedule needs the global
		// sample count, which advances identically on every rank.
		globalSamples = t.sampleCounterLocal(rank, stepSamples)
	}
	if t.cfg.Schedule != nil {
		st.optimizer.SetLR(t.cfg.Schedule.LR(globalSamples))
	}
	st.optimizer.StepFlat(st.net.FlatParams(), st.net.FlatGrads())

	if rank == 0 && t.cfg.Validation != nil && t.cfg.ValidateEvery > 0 && st.localBatches%t.cfg.ValidateEvery == 0 {
		// §4.4: validation runs on the training thread while holding
		// the buffer mutex; incoming data queue up in the transport.
		t.bufs[0].WithLock(func(buffer.Policy) {
			v := Validate(st.net, t.cfg.Validation, t.cfg.BatchSize*4)
			t.metrics.RecordValidation(st.localBatches, globalSamples, v)
		})
	}
	if rank == 0 && t.cfg.OnBatchEnd != nil {
		t.cfg.OnBatchEnd(st.localBatches)
	}
	return true
}

// RestoreState loads checkpointed weights and optimizer state into every
// replica and seeds the global counters, so a restarted server resumes the
// exact training trajectory (§3.1). Must be called before Run.
func (t *Trainer) RestoreState(weights, optState []byte, batches, samples int) error {
	for r, net := range t.nets {
		if err := net.LoadWeights(bytes.NewReader(weights)); err != nil {
			return fmt.Errorf("core: restoring rank %d weights: %w", r, err)
		}
		if err := t.opts[r].LoadState(bytes.NewReader(optState)); err != nil {
			return fmt.Errorf("core: restoring rank %d optimizer: %w", r, err)
		}
	}
	t.startBatches = batches
	t.startSamples = samples
	t.metrics.RestoreCounts(batches, samples)
	return nil
}

// CaptureState serializes the rank-0 weights and optimizer state for a
// checkpoint. Call only from OnBatchEnd (a consistent step boundary) or
// after Run returns.
func (t *Trainer) CaptureState() (weights, optState []byte, err error) {
	var wbuf, obuf bytes.Buffer
	if err := t.nets[0].SaveWeights(&wbuf); err != nil {
		return nil, nil, err
	}
	if err := t.opts[0].SaveState(&obuf); err != nil {
		return nil, nil, err
	}
	return wbuf.Bytes(), obuf.Bytes(), nil
}

// sampleCounterLocal maintains per-rank mirrors of the global sample count
// without touching the shared metrics (which rank 0 owns). Each rank only
// accesses its own slot.
func (t *Trainer) sampleCounterLocal(rank, add int) int {
	t.localSamples[rank] += add
	return t.localSamples[rank]
}
