package core

import (
	"sync"
	"time"

	"melissa/internal/buffer"
)

// LossPoint is one point of a training or validation curve.
type LossPoint struct {
	Batch   int     // global batch counter when recorded
	Samples int     // cumulative samples (with repetition) across ranks
	Value   float64 // MSE in normalized units
}

// Metrics aggregates training statistics across ranks. All methods are safe
// for concurrent use; the trainer's rank goroutines share one instance.
type Metrics struct {
	mu sync.Mutex

	batches int
	samples int

	trainLoss  []LossPoint
	validation []LossPoint

	occurrences map[buffer.Key]int

	clientRestarts map[int32]int

	// Elasticity events (the group's view, recorded by the elastic server):
	// current membership epoch, how many times the group re-formed, and the
	// batch counter the last re-formation rolled back to (-1 when none).
	groupEpoch        int
	reforms           int
	lastRollbackBatch int

	// Gradient-collective wire traffic (bytes over the group's network
	// links, both directions), accumulated across group re-formations. With
	// a compressed codec (-grad-compress=f16) these run at about half the
	// full-width figures — the observable payoff of the wire codec.
	wireSent uint64
	wireRecv uint64

	start, end time.Time
}

// NewMetrics builds an empty collector. trackOccurrences enables the
// per-sample repetition histogram of Figure 3.
func NewMetrics(trackOccurrences bool) *Metrics {
	m := &Metrics{lastRollbackBatch: -1}
	if trackOccurrences {
		m.occurrences = make(map[buffer.Key]int)
	}
	return m
}

// SetGroupEpoch records the elastic group's current membership epoch.
func (m *Metrics) SetGroupEpoch(epoch int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.groupEpoch = epoch
}

// RecordReform tallies one group re-formation and the batch counter it
// rolled the trainer back to (-1 when the re-formation had no committed
// checkpoint to restore), so operators can see elasticity events in the
// periodic log line.
func (m *Metrics) RecordReform(epoch, rollbackBatch int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.groupEpoch = epoch
	m.reforms++
	m.lastRollbackBatch = rollbackBatch
}

// GroupEpoch returns the elastic group's current membership epoch (0 for a
// static group).
func (m *Metrics) GroupEpoch() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.groupEpoch
}

// Reforms returns how many times the group re-formed around a failure or
// membership change.
func (m *Metrics) Reforms() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reforms
}

// LastRollbackBatch returns the batch counter the most recent re-formation
// restored, or -1 when it had nothing committed to restore (or the group
// never re-formed at all).
func (m *Metrics) LastRollbackBatch() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastRollbackBatch
}

// AddWireBytes accumulates gradient-collective wire traffic. The trainer
// records per-step deltas of the communicator's counters, so totals stay
// monotonic across elastic group re-formations (each new ring restarts its
// own counters at zero).
func (m *Metrics) AddWireBytes(sent, recv uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.wireSent += sent
	m.wireRecv += recv
}

// WireBytes returns the cumulative gradient-collective wire traffic (zero
// for in-process channel groups, which never touch a network link).
func (m *Metrics) WireBytes() (sent, recv uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.wireSent, m.wireRecv
}

// Begin stamps the training start time.
func (m *Metrics) Begin() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.start = time.Now()
}

// Finish stamps the training end time.
func (m *Metrics) Finish() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.end = time.Now()
}

// RestoreCounts seeds the counters from a checkpoint.
func (m *Metrics) RestoreCounts(batches, samples int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches = batches
	m.samples = samples
}

// RecordStep accumulates one synchronized training step: the global batch
// increment and the samples consumed across ranks.
func (m *Metrics) RecordStep(samples int) (batch, totalSamples int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	m.samples += samples
	return m.batches, m.samples
}

// RecordTrainLoss appends a training-loss point.
func (m *Metrics) RecordTrainLoss(batch, samples int, v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trainLoss = append(m.trainLoss, LossPoint{Batch: batch, Samples: samples, Value: v})
}

// RecordValidation appends a validation-loss point.
func (m *Metrics) RecordValidation(batch, samples int, v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.validation = append(m.validation, LossPoint{Batch: batch, Samples: samples, Value: v})
}

// CountBatch tallies sample occurrences for the Figure 3 histogram.
func (m *Metrics) CountBatch(batch []buffer.Sample) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.occurrences == nil {
		return
	}
	for _, s := range batch {
		m.occurrences[s.Key()]++
	}
}

// CountKeys is CountBatch over bare sample identities — the trainer
// records keys during batch assembly (payloads may alias recycled arena
// rows, so the Sample values themselves are not retained).
func (m *Metrics) CountKeys(keys []buffer.Key) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.occurrences == nil {
		return
	}
	for _, k := range keys {
		m.occurrences[k]++
	}
}

// RecordClientRestart tallies one restart of an ensemble client; the
// launcher records these as it retries failed or unresponsive clients.
func (m *Metrics) RecordClientRestart(clientID int32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.clientRestarts == nil {
		m.clientRestarts = make(map[int32]int)
	}
	m.clientRestarts[clientID]++
}

// ClientRestarts returns the per-client restart counts (a copy; empty map
// when no client was ever restarted).
func (m *Metrics) ClientRestarts() map[int32]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int32]int, len(m.clientRestarts))
	for id, n := range m.clientRestarts {
		out[id] = n
	}
	return out
}

// Batches returns the global number of synchronized steps.
func (m *Metrics) Batches() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.batches
}

// Samples returns the cumulative samples consumed across ranks, including
// Reservoir repetitions.
func (m *Metrics) Samples() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.samples
}

// TrainLoss returns the recorded training curve.
func (m *Metrics) TrainLoss() []LossPoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]LossPoint(nil), m.trainLoss...)
}

// Validation returns the recorded validation curve.
func (m *Metrics) Validation() []LossPoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]LossPoint(nil), m.validation...)
}

// FinalValidation returns the last validation value, or NaN-free zero when
// none was recorded.
func (m *Metrics) FinalValidation() (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.validation) == 0 {
		return 0, false
	}
	return m.validation[len(m.validation)-1].Value, true
}

// MinValidation returns the lowest recorded validation loss — the paper's
// "Min. MSE" column of Table 1.
func (m *Metrics) MinValidation() (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.validation) == 0 {
		return 0, false
	}
	min := m.validation[0].Value
	for _, p := range m.validation[1:] {
		if p.Value < min {
			min = p.Value
		}
	}
	return min, true
}

// Occurrences returns a copy of the per-sample selection counts.
func (m *Metrics) Occurrences() map[buffer.Key]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[buffer.Key]int, len(m.occurrences))
	for k, v := range m.occurrences {
		out[k] = v
	}
	return out
}

// OccurrenceHistogram buckets occurrence counts: hist[k] = number of unique
// samples selected exactly k times (Figure 3).
func (m *Metrics) OccurrenceHistogram() map[int]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	hist := make(map[int]int)
	for _, c := range m.occurrences {
		hist[c]++
	}
	return hist
}

// WallTime returns the measured training duration.
func (m *Metrics) WallTime() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.start.IsZero() {
		return 0
	}
	end := m.end
	if end.IsZero() {
		end = time.Now()
	}
	return end.Sub(m.start)
}

// Throughput returns consumed samples per wall-clock second, the metric of
// the paper's Figure 2 and throughput columns.
func (m *Metrics) Throughput() float64 {
	wall := m.WallTime().Seconds()
	if wall <= 0 {
		return 0
	}
	return float64(m.Samples()) / wall
}
