package core

// Regression tests and micro-benchmarks for the zero-allocation training
// hot path: the flat parameter/gradient slabs, the fused Adam step, the
// recycled batch storage, and the in-place gradient all-reduce.

import (
	"context"
	"testing"

	"melissa/internal/buffer"
	"melissa/internal/nn"
	"melissa/internal/opt"
	"melissa/internal/tensor"
)

// step1 runs one synchronized step and reports continuation, panicking on
// a collective error (impossible for the in-process backend and the
// healthy TCP rings these tests use).
func step1(tr *Trainer, st *rankState) bool {
	cont, err := tr.step(st)
	if err != nil {
		panic(err)
	}
	return cont
}

// hotPathSamples generates deterministic in-range heat samples.
func hotPathSamples(norm HeatNormalizer, count int) []buffer.Sample {
	samples := make([]buffer.Sample, count)
	d := norm.Space.Dim()
	for i := range samples {
		in := make([]float32, d+1)
		for j := 0; j < d; j++ {
			in[j] = float32(100 + (7*i+13*j)%400)
		}
		in[d] = float32(i%10) * 0.1
		out := make([]float32, norm.FieldDim)
		for j := range out {
			out[j] = float32(100 + (11*i+3*j)%400)
		}
		samples[i] = buffer.Sample{SimID: i, Step: i % 10, Input: in, Output: out}
	}
	return samples
}

// newHotPathTrainer wires a single-rank trainer to a Reservoir preloaded
// with enough population to yield batches indefinitely (reception stays
// open, so samples recirculate with replacement).
func newHotPathTrainer(tb testing.TB, fieldDim int, hidden []int, batch int) (*Trainer, *rankState) {
	tb.Helper()
	norm := NewHeatNormalizer(fieldDim, 1)
	res := buffer.NewReservoir(4096, 0, 7)
	bb := buffer.NewBlocking(res)
	for _, s := range hotPathSamples(norm, 512) {
		if !bb.TryPut(s) {
			tb.Fatal("prefill rejected")
		}
	}
	cfg := TrainerConfig{
		Ranks:     1,
		BatchSize: batch,
		Model: ModelSpec{
			InputDim:  norm.InputDim(),
			Hidden:    hidden,
			OutputDim: norm.OutputDim(),
			Seed:      1,
		},
		Normalizer: norm,
	}
	tr, err := NewTrainer(cfg, []*buffer.Blocking{bb})
	if err != nil {
		tb.Fatal(err)
	}
	st := tr.newRankState(0)
	tb.Cleanup(st.close)
	return tr, st
}

// TestTrainStepZeroAlloc pins the headline property of the flat-slab
// refactor: one full synchronized training step — batch extraction, batch
// assembly, forward, backward, gradient sync, fused Adam update, metrics —
// performs zero steady-state heap allocations. (The loss-curve append is
// amortized geometric growth and stays far below one allocation per step.)
func TestTrainStepZeroAlloc(t *testing.T) {
	tr, st := newHotPathTrainer(t, 64, []int{32, 32}, 8)
	for i := 0; i < 5; i++ { // warm scratch, slabs and moment state
		if !step1(tr, st) {
			t.Fatal("trainer stopped during warm-up")
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if !step1(tr, st) {
			t.Fatal("trainer stopped during measurement")
		}
	})
	if avg != 0 {
		t.Fatalf("train step: %v allocs per step in steady state, want 0", avg)
	}
}

// legacyGradSync emulates the pre-refactor ddp.GradBuffer path: gather
// every per-parameter gradient into a staging buffer and scatter it back
// (the single-rank all-reduce itself was a no-op). Bit-wise this is the
// identity the flat-slab path replaced.
func legacyGradSync(params []*nn.Param, staging []float32) {
	off := 0
	for _, p := range params {
		copy(staging[off:], p.Grad.Data)
		off += p.Size()
	}
	off = 0
	for _, p := range params {
		copy(p.Grad.Data, staging[off:off+p.Size()])
		off += p.Size()
	}
}

// TestFlatStepMatchesLegacyPerParamPath locks the bit-for-bit equivalence
// of the fused slab update against the pre-refactor trajectory: staged
// gather/scatter gradient sync followed by the per-parameter Adam walk.
// Any reordering of the float math in the fused kernel fails this test.
func TestFlatStepMatchesLegacyPerParamPath(t *testing.T) {
	const steps = 25
	var norm Normalizer = NewHeatNormalizer(48, 1)
	samples := hotPathSamples(NewHeatNormalizer(48, 1), 7*steps)

	flatNet := nn.ArchitectureMLP(norm.InputDim(), []int{24, 24}, norm.OutputDim(), 9)
	legacyNet := nn.ArchitectureMLP(norm.InputDim(), []int{24, 24}, norm.OutputDim(), 9)
	flatOpt := opt.NewAdam(1e-3)
	legacyOpt := opt.NewAdam(1e-3)
	loss := nn.NewMSELoss()
	staging := make([]float32, legacyNet.NumParams())

	for s := 0; s < steps; s++ {
		batch := samples[s*7 : (s+1)*7]
		in, out := BatchTensors(norm, batch)

		flatNet.ZeroGrad()
		pred := flatNet.Forward(in)
		flatLoss := loss.Forward(pred, out)
		flatNet.Backward(loss.Backward(pred, out))
		flatOpt.StepFlat(flatNet.FlatParams(), flatNet.FlatGrads())

		legacyNet.ZeroGrad()
		pred = legacyNet.Forward(in)
		legacyLoss := loss.Forward(pred, out)
		legacyNet.Backward(loss.Backward(pred, out))
		legacyGradSync(legacyNet.Params(), staging)
		legacyOpt.Step(legacyNet.Params())

		if flatLoss != legacyLoss {
			t.Fatalf("step %d: loss diverged: flat %v vs legacy %v", s, flatLoss, legacyLoss)
		}
	}
	flat, legacy := flatNet.FlatParams(), legacyNet.FlatParams()
	for i := range flat {
		if flat[i] != legacy[i] {
			t.Fatalf("weight %d diverged: flat %v vs legacy %v", i, flat[i], legacy[i])
		}
	}
}

// TestTrainerMatchesLegacyLoopWithTailBatch drives the full Trainer over a
// FIFO stream whose length is not divisible by the batch size, and checks
// the recorded loss trajectory bit-for-bit against a hand-rolled legacy
// loop that allocates fresh tensors for the tail batch and steps Adam
// per-parameter. This pins both the prefix-view tail handling and the
// end-to-end fixed-seed determinism of the refactored loop.
func TestTrainerMatchesLegacyLoopWithTailBatch(t *testing.T) {
	const batchSize = 10
	const nSamples = 53 // 5 full batches + tail of 3
	var norm Normalizer = NewHeatNormalizer(32, 1)
	samples := hotPathSamples(NewHeatNormalizer(32, 1), nSamples)
	spec := ModelSpec{InputDim: norm.InputDim(), Hidden: []int{16}, OutputDim: norm.OutputDim(), Seed: 3}

	// Legacy reference: FIFO order is insertion order, so consecutive
	// chunks replicate the buffer's batching exactly.
	refNet, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	refOpt := opt.NewAdam(1e-3)
	loss := nn.NewMSELoss()
	var refLosses []float64
	for start := 0; start < nSamples; start += batchSize {
		end := min(start+batchSize, nSamples)
		in, out := BatchTensors(norm, samples[start:end])
		refNet.ZeroGrad()
		pred := refNet.Forward(in)
		refLosses = append(refLosses, loss.Forward(pred, out))
		refNet.Backward(loss.Backward(pred, out))
		refOpt.Step(refNet.Params())
	}

	// Refactored trainer over the same stream.
	bb := buffer.NewBlocking(buffer.NewFIFO(0))
	for _, s := range samples {
		if !bb.TryPut(s) {
			t.Fatal("put rejected")
		}
	}
	bb.EndReception()
	tr, err := NewTrainer(TrainerConfig{
		Ranks: 1, BatchSize: batchSize, Model: spec, Normalizer: norm,
	}, []*buffer.Blocking{bb})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	got := tr.Metrics().TrainLoss()
	if len(got) != len(refLosses) {
		t.Fatalf("trainer recorded %d steps, legacy loop %d", len(got), len(refLosses))
	}
	for i, p := range got {
		if p.Value != refLosses[i] {
			t.Fatalf("step %d: loss %v, legacy %v", i, p.Value, refLosses[i])
		}
	}
	refFlat, gotFlat := refNet.FlatParams(), tr.Network().FlatParams()
	for i := range refFlat {
		if refFlat[i] != gotFlat[i] {
			t.Fatalf("weight %d diverged after tail batch: %v vs %v", i, gotFlat[i], refFlat[i])
		}
	}
}

// TestTrainerRunDeterministic re-runs an identical multi-rank configuration
// and requires bit-identical loss trajectories — the fixed-seed determinism
// the paper's reproducibility protocol relies on (§3.1).
func TestTrainerRunDeterministic(t *testing.T) {
	run := func() []LossPoint {
		var norm Normalizer = NewHeatNormalizer(32, 1)
		samples := hotPathSamples(NewHeatNormalizer(32, 1), 160)
		spec := ModelSpec{InputDim: norm.InputDim(), Hidden: []int{16}, OutputDim: norm.OutputDim(), Seed: 11}
		bufs := make([]*buffer.Blocking, 2)
		for r := range bufs {
			bufs[r] = buffer.NewBlocking(buffer.NewReservoir(256, 0, uint64(21+r)))
		}
		for i, s := range samples {
			if !bufs[i%2].TryPut(s) {
				t.Fatal("put rejected")
			}
		}
		for _, b := range bufs {
			b.EndReception()
		}
		tr, err := NewTrainer(TrainerConfig{
			Ranks: 2, BatchSize: 10, Model: spec, Normalizer: norm,
		}, bufs)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return tr.Metrics().TrainLoss()
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("trajectory lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Value != b[i].Value {
			t.Fatalf("step %d: %v vs %v", i, a[i].Value, b[i].Value)
		}
	}
}

// BenchmarkTrainStep measures one synchronized training step at the
// paper's surrogate shape (6 → 256 → 256 → field) on a single rank:
// Reservoir batch extraction, batch assembly, forward, backward, gradient
// sync and the fused Adam update. 0 allocs/op in steady state.
func BenchmarkTrainStep(b *testing.B) {
	tr, st := newHotPathTrainer(b, 1024, []int{256, 256}, 10)
	for i := 0; i < 3; i++ {
		step1(tr, st)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !step1(tr, st) {
			b.Fatal("trainer stopped")
		}
	}
}

// BenchmarkAdamStep measures the fused flat-slab Adam update at the
// paper's parameter count (≈330k parameters).
func BenchmarkAdamStep(b *testing.B) {
	net := nn.ArchitectureMLP(6, []int{256, 256}, 1024, 1)
	grads := net.FlatGrads()
	for i := range grads {
		grads[i] = 0.01
	}
	a := opt.NewAdam(1e-3)
	a.StepFlat(net.FlatParams(), grads) // size moment slabs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.StepFlat(net.FlatParams(), grads)
	}
}

// BenchmarkAdamStepPerParam is the unfused per-parameter walk, kept as the
// comparison point for the fused kernel.
func BenchmarkAdamStepPerParam(b *testing.B) {
	net := nn.ArchitectureMLP(6, []int{256, 256}, 1024, 1)
	grads := net.FlatGrads()
	for i := range grads {
		grads[i] = 0.01
	}
	a := opt.NewAdam(1e-3)
	a.Step(net.Params())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Step(net.Params())
	}
}

// BenchmarkBuildBatch measures normalized batch assembly into preallocated
// matrices (10 samples × 1k field).
func BenchmarkBuildBatch(b *testing.B) {
	var norm Normalizer = NewHeatNormalizer(1024, 1)
	samples := hotPathSamples(NewHeatNormalizer(1024, 1), 10)
	in := tensor.New(len(samples), norm.InputDim())
	out := tensor.New(len(samples), norm.OutputDim())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildBatch(norm, samples, in, out)
	}
}
