// Package launcher orchestrates and monitors the whole workflow (§3.1): it
// starts the training server, submits client jobs to the available
// execution slots (optionally in successive series, like the paper's
// 100/100/50 submission pattern), restarts failed or unresponsive clients,
// and — when the server itself dies — kills the running clients and brings
// up a replacement server from the last checkpoint, re-running only the
// simulations whose data is incomplete.
//
// In this in-process live mode, "jobs" are goroutines and "the batch
// scheduler" is a slot semaphore; the discrete-event Slurm model used by
// the timing experiments lives in internal/scheduler.
package launcher

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"melissa/internal/client"
	"melissa/internal/core"
	"melissa/internal/nn"
	"melissa/internal/sampling"
	"melissa/internal/server"
	"melissa/internal/solver"
)

// Config assembles an ensemble run.
type Config struct {
	Server server.Config

	// NewSim constructs one ensemble member's simulator for drawn physical
	// parameters — the problem-plugin hook: the launcher never sees the
	// concrete PDE. Steps and Dt describe the emitted trajectories.
	NewSim func(params []float64) (solver.Simulator, error)
	Steps  int
	Dt     float64
	// Design draws simulation parameters; seeded for reproducibility.
	Design sampling.Sampler
	// Space maps unit design points to physical parameters.
	Space sampling.Space
	// Simulations is the ensemble size (paper: 250 small runs, 20,000 at
	// scale).
	Simulations int

	// MaxConcurrentClients bounds simultaneously running clients — the
	// finite resource c behind the paper's inter-simulation bias (§3.2.1).
	MaxConcurrentClients int
	// Series optionally splits submission into successive groups (the
	// paper submits 100, then 100, then 50); the launcher waits for a
	// series to finish before submitting the next. Sizes must sum to
	// Simulations. Empty means one series.
	Series []int
	// InterSeriesDelay models the scheduler gap between series.
	InterSeriesDelay time.Duration

	// MaxClientRetries bounds restarts per client.
	MaxClientRetries int
	// ClientRestartBackoff is the base delay before a failed client's
	// first restart; it doubles on every further attempt (capped at
	// maxClientBackoff) so a persistently crashing client cannot hot-loop
	// through its retry budget and hammer the server. 0 selects the
	// 100ms default; negative disables backoff entirely.
	ClientRestartBackoff time.Duration
	// MaxServerRestarts bounds server recoveries from checkpoint.
	MaxServerRestarts int

	// HeartbeatInterval for clients; 0 disables heartbeats.
	HeartbeatInterval time.Duration
	// ClientCheckpoints enables solver-state checkpoints so restarted
	// clients resume mid-run.
	ClientCheckpoints client.Checkpointer

	// JobHook, when set, may mutate a job before each attempt —
	// fault-injection entry point for tests.
	JobHook func(simID, attempt int, job *client.Job)

	// InjectServerFailureAfterBatches, when > 0, simulates a server crash
	// after that many batches on the first server instance (test hook for
	// the recovery path).
	InjectServerFailureAfterBatches int
}

// Result summarizes a completed ensemble run.
type Result struct {
	Network        *nn.Network
	Metrics        *core.Metrics
	ClientRestarts int
	ServerRestarts int
}

const (
	defaultClientBackoff = 100 * time.Millisecond
	maxClientBackoff     = 5 * time.Second
)

// Launcher runs one configured ensemble.
type Launcher struct {
	cfg    Config
	params [][]float64
	slots  *semaphore

	clientRestarts atomic.Int64

	// sleep waits for the backoff delay (or the context); tests inject a
	// recorder here so backoff behavior is asserted without wall-clock
	// waits. Reports false when the context ended the wait.
	sleep func(ctx context.Context, d time.Duration) bool
}

// restartBackoff returns the delay before retrying a client that has
// already run attempt times (attempt ≥ 1), or 0 when backoff is disabled.
func (l *Launcher) restartBackoff(attempt int) time.Duration {
	base := l.cfg.ClientRestartBackoff
	if base < 0 {
		return 0
	}
	if base == 0 {
		base = defaultClientBackoff
	}
	d := base
	for i := 1; i < attempt && d < maxClientBackoff; i++ {
		d *= 2
	}
	return min(d, maxClientBackoff)
}

// Resize changes the number of concurrent client slots while the ensemble
// runs — the paper's elasticity (§3.1). Growing admits queued clients
// immediately; shrinking takes effect as running clients complete.
func (l *Launcher) Resize(concurrent int) { l.slots.Resize(concurrent) }

// ConcurrentClients reports the clients currently running.
func (l *Launcher) ConcurrentClients() int { return l.slots.InUse() }

// New validates the configuration and pre-draws the ensemble parameters
// from the design so that restarted runs reuse identical inputs.
func New(cfg Config) (*Launcher, error) {
	if cfg.Simulations < 1 {
		return nil, errors.New("launcher: Simulations must be ≥ 1")
	}
	if cfg.MaxConcurrentClients < 1 {
		cfg.MaxConcurrentClients = 1
	}
	if cfg.Design == nil {
		return nil, errors.New("launcher: Design sampler required")
	}
	if cfg.NewSim == nil {
		return nil, errors.New("launcher: NewSim simulator factory required")
	}
	if cfg.Steps < 1 {
		return nil, fmt.Errorf("launcher: Steps=%d must be ≥ 1", cfg.Steps)
	}
	if len(cfg.Series) > 0 {
		total := 0
		for _, s := range cfg.Series {
			if s <= 0 {
				return nil, fmt.Errorf("launcher: series size %d must be positive", s)
			}
			total += s
		}
		if total != cfg.Simulations {
			return nil, fmt.Errorf("launcher: series sum %d != simulations %d", total, cfg.Simulations)
		}
	}
	l := &Launcher{
		cfg:    cfg,
		params: make([][]float64, cfg.Simulations),
		slots:  newSemaphore(cfg.MaxConcurrentClients),
		sleep: func(ctx context.Context, d time.Duration) bool {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return false
			case <-t.C:
				return true
			}
		},
	}
	for i := range l.params {
		pt := cfg.Design.Next()
		if len(pt) != cfg.Space.Dim() {
			// Custom designs are user code; surface the mismatch as an
			// error instead of letting Space.Scale panic mid-ensemble.
			return nil, fmt.Errorf("launcher: design returned a %d-dimensional point, problem wants %d", len(pt), cfg.Space.Dim())
		}
		l.params[i] = cfg.Space.Scale(pt)
	}
	cfg.Server.ExpectedClients = cfg.Simulations
	l.cfg = cfg
	return l, nil
}

// Params exposes the pre-drawn ensemble parameters (examples print them).
func (l *Launcher) Params() [][]float64 { return l.params }

// Run executes the ensemble to completion, recovering from client and
// server failures within the configured budgets.
func (l *Launcher) Run(ctx context.Context) (*Result, error) {
	serverRestarts := 0
	for attempt := 0; ; attempt++ {
		srv, injected, err := l.runServerAttempt(ctx, attempt)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if err == nil && !injected {
			return &Result{
				Network:        srv.Trainer().Network(),
				Metrics:        srv.Metrics(),
				ClientRestarts: int(l.clientRestarts.Load()),
				ServerRestarts: serverRestarts,
			}, nil
		}
		if err != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if serverRestarts >= l.cfg.MaxServerRestarts {
			if err == nil {
				err = errors.New("launcher: injected server failure")
			}
			return nil, fmt.Errorf("launcher: server failed permanently after %d restarts: %w", serverRestarts, err)
		}
		serverRestarts++
	}
}

// runServerAttempt brings up one server instance (restoring the checkpoint
// on non-first attempts), drives the pending clients against it, and waits
// for it to finish. injected reports a simulated server crash.
func (l *Launcher) runServerAttempt(ctx context.Context, attempt int) (srv *server.Server, injected bool, err error) {
	scfg := l.cfg.Server
	restartCh := make(chan int32, l.cfg.Simulations)
	scfg.OnUnresponsive = func(id int32) { restartCh <- id }

	serverCtx, failServer := context.WithCancel(ctx)
	defer failServer()
	var injectedFlag atomic.Bool
	if attempt == 0 && l.cfg.InjectServerFailureAfterBatches > 0 {
		limit := l.cfg.InjectServerFailureAfterBatches
		prev := scfg.Trainer.OnBatchEnd
		scfg.Trainer.OnBatchEnd = func(batches int) {
			if batches == limit {
				injectedFlag.Store(true)
				failServer() // the "crash": training stops mid-ensemble
			}
			if prev != nil {
				prev(batches)
			}
		}
	}

	srv, err = server.New(scfg)
	if err != nil {
		return nil, false, err
	}
	if attempt > 0 && scfg.CheckpointPath != "" {
		if rerr := srv.RestoreCheckpoint(scfg.CheckpointPath); rerr != nil {
			return nil, false, fmt.Errorf("launcher: restoring server checkpoint: %w", rerr)
		}
	}

	// The paper's launcher kills all running clients when the server
	// dies; cancelling this context is that kill switch.
	clientCtx, killClients := context.WithCancel(ctx)
	defer killClients()

	var clientWG sync.WaitGroup
	clientWG.Add(1)
	go func() {
		defer clientWG.Done()
		l.submitClients(clientCtx, srv, restartCh)
	}()

	runErr := srv.Run(serverCtx)
	killClients()
	clientWG.Wait()
	return srv, injectedFlag.Load(), runErr
}

// submitClients pushes the pending simulations through the execution slots,
// series by series, restarting failures up to the retry budget.
func (l *Launcher) submitClients(ctx context.Context, srv *server.Server, restartCh <-chan int32) {
	completed := srv.CompletedSims()

	// Per-client cancel functions let the watchdog path kill a hung
	// client so its slot frees up for the restart.
	var mu sync.Mutex
	running := map[int]context.CancelFunc{}
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case id := <-restartCh:
				mu.Lock()
				if cancel, ok := running[int(id)]; ok {
					cancel()
				}
				mu.Unlock()
			}
		}
	}()

	series := l.cfg.Series
	if len(series) == 0 {
		series = []int{l.cfg.Simulations}
	}
	simID := 0
	for si, size := range series {
		if si > 0 && l.cfg.InterSeriesDelay > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(l.cfg.InterSeriesDelay):
			}
		}
		var seriesWG sync.WaitGroup
		for i := 0; i < size; i++ {
			id := simID
			simID++
			if completed[int32(id)] {
				continue // data already complete from a previous server
			}
			if err := l.slots.Acquire(ctx); err != nil {
				return
			}
			seriesWG.Add(1)
			go func() {
				defer seriesWG.Done()
				defer l.slots.Release()
				l.runClientWithRetries(ctx, srv, id, running, &mu)
			}()
		}
		seriesWG.Wait()
	}
}

func (l *Launcher) runClientWithRetries(ctx context.Context, srv *server.Server, simID int, running map[int]context.CancelFunc, mu *sync.Mutex) {
	for attempt := 0; attempt <= l.cfg.MaxClientRetries; attempt++ {
		if ctx.Err() != nil {
			return
		}
		params := l.params[simID]
		job := client.Job{
			Client: client.Config{
				ClientID:          simID,
				SimID:             simID,
				ServerAddrs:       srv.Addrs(),
				HeartbeatInterval: l.cfg.HeartbeatInterval,
				Restart:           attempt,
			},
			NewSim:     func() (solver.Simulator, error) { return l.cfg.NewSim(params) },
			Params:     params,
			Steps:      l.cfg.Steps,
			Dt:         l.cfg.Dt,
			Checkpoint: l.cfg.ClientCheckpoints,
		}
		if l.cfg.JobHook != nil {
			l.cfg.JobHook(simID, attempt, &job)
		}
		cctx, cancel := context.WithCancel(ctx)
		mu.Lock()
		running[simID] = cancel
		mu.Unlock()
		err := client.Run(cctx, job)
		mu.Lock()
		delete(running, simID)
		mu.Unlock()
		cancel()
		if err == nil {
			return
		}
		if ctx.Err() != nil {
			return // launcher shutdown, not a client fault
		}
		l.clientRestarts.Add(1)
		srv.Metrics().RecordClientRestart(int32(simID))
		if attempt < l.cfg.MaxClientRetries {
			if d := l.restartBackoff(attempt + 1); d > 0 && !l.sleep(ctx, d) {
				return
			}
		}
	}
}
