package launcher

import (
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"melissa/internal/buffer"
	"melissa/internal/client"
	"melissa/internal/core"
	"melissa/internal/opt"
	"melissa/internal/sampling"
	"melissa/internal/server"
	"melissa/internal/solver"
)

const (
	gridN  = 6
	steps  = 6
	nField = gridN * gridN
)

func testConfig(sims int, kind buffer.Kind) Config {
	norm := core.NewHeatNormalizer(nField, float64(steps)*0.01)
	return Config{
		Server: server.Config{
			Ranks:  1,
			Buffer: buffer.Config{Kind: kind, Capacity: 400, Threshold: 2, Seed: 3},
			Trainer: core.TrainerConfig{
				BatchSize:        4,
				Model:            core.ModelSpec{InputDim: norm.InputDim(), Hidden: []int{12}, OutputDim: norm.OutputDim(), Seed: 5},
				Normalizer:       norm,
				LearningRate:     1e-3,
				Schedule:         opt.Constant(1e-3),
				TrackOccurrences: true,
			},
		},
		NewSim: func(params []float64) (solver.Simulator, error) {
			p, err := solver.ParamsFromVector(params)
			if err != nil {
				return nil, err
			}
			return solver.New(solver.Config{N: gridN, Steps: steps, Dt: 0.01}, p)
		},
		Steps:                steps,
		Dt:                   0.01,
		Design:               sampling.NewMonteCarlo(5, 11),
		Space:                sampling.HeatSpace(),
		Simulations:          sims,
		MaxConcurrentClients: 2,
		MaxClientRetries:     3,
		MaxServerRestarts:    2,
	}
}

func TestLauncherValidation(t *testing.T) {
	cfg := testConfig(4, buffer.FIFOKind)
	cfg.Simulations = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for 0 simulations")
	}
	cfg = testConfig(4, buffer.FIFOKind)
	cfg.Design = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for missing design")
	}
	cfg = testConfig(4, buffer.FIFOKind)
	cfg.Series = []int{2, 1} // doesn't sum to 4
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for series mismatch")
	}
	cfg = testConfig(4, buffer.FIFOKind)
	cfg.Series = []int{2, -2, 4}
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for negative series size")
	}
	cfg = testConfig(4, buffer.FIFOKind)
	cfg.NewSim = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for missing simulator factory")
	}
	cfg = testConfig(4, buffer.FIFOKind)
	cfg.Design = sampling.NewMonteCarlo(3, 11) // wrong dimensionality
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for design/space dimension mismatch")
	}
}

func TestLauncherHappyPath(t *testing.T) {
	cfg := testConfig(5, buffer.FIFOKind)
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Params()) != 5 {
		t.Fatal("ensemble parameters not drawn")
	}
	res, err := l.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.ClientRestarts != 0 || res.ServerRestarts != 0 {
		t.Fatalf("unexpected restarts: %+v", res)
	}
	occ := res.Metrics.Occurrences()
	if len(occ) != 5*steps {
		t.Fatalf("unique samples %d, want %d", len(occ), 5*steps)
	}
	if res.Network == nil {
		t.Fatal("no trained network")
	}
}

func TestLauncherSeriesSubmission(t *testing.T) {
	cfg := testConfig(6, buffer.ReservoirKind)
	cfg.Series = []int{3, 2, 1}
	cfg.InterSeriesDelay = 10 * time.Millisecond
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Metrics.Occurrences()); got != 6*steps {
		t.Fatalf("unique samples %d, want %d", got, 6*steps)
	}
}

func TestLauncherRestartsFailedClients(t *testing.T) {
	cfg := testConfig(4, buffer.FIFOKind)
	// Sim 2 fails on its first two attempts, succeeds on the third.
	cfg.JobHook = func(simID, attempt int, job *client.Job) {
		if simID == 2 && attempt < 2 {
			job.FailAtStep = 3
		}
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.ClientRestarts != 2 {
		t.Fatalf("client restarts %d, want 2", res.ClientRestarts)
	}
	occ := res.Metrics.Occurrences()
	if len(occ) != 4*steps {
		t.Fatalf("unique samples %d, want %d (dedup across restarts)", len(occ), 4*steps)
	}
	for k, c := range occ {
		if c != 1 {
			t.Fatalf("sample %v trained %d times", k, c)
		}
	}
}

// TestLauncherRestartBackoff asserts the delay schedule between client
// restart attempts — exponential from the configured base, recorded per
// client in the metrics — using an injected sleep hook instead of
// wall-clock waits.
func TestLauncherRestartBackoff(t *testing.T) {
	cfg := testConfig(3, buffer.FIFOKind)
	cfg.MaxClientRetries = 3
	cfg.ClientRestartBackoff = 40 * time.Millisecond
	// Sim 1 fails on its first three attempts, succeeds on the fourth.
	cfg.JobHook = func(simID, attempt int, job *client.Job) {
		if simID == 1 && attempt < 3 {
			job.FailAtStep = 2
		}
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var slept []time.Duration
	l.sleep = func(ctx context.Context, d time.Duration) bool {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
		return true
	}
	res, err := l.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.ClientRestarts != 3 {
		t.Fatalf("client restarts %d, want 3", res.ClientRestarts)
	}
	want := []time.Duration{40 * time.Millisecond, 80 * time.Millisecond, 160 * time.Millisecond}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != len(want) {
		t.Fatalf("backoff sleeps %v, want %v", slept, want)
	}
	for i, d := range want {
		if slept[i] != d {
			t.Fatalf("backoff sleeps %v, want %v", slept, want)
		}
	}
	if got := res.Metrics.ClientRestarts(); len(got) != 1 || got[1] != 3 {
		t.Fatalf("per-client restart counts %v, want map[1:3]", got)
	}
}

// TestLauncherBackoffCapAndDisable pins the backoff schedule's edges: the
// doubling caps at maxClientBackoff, and a negative base disables delays.
func TestLauncherBackoffCapAndDisable(t *testing.T) {
	l := &Launcher{cfg: Config{ClientRestartBackoff: time.Second}}
	if got := l.restartBackoff(1); got != time.Second {
		t.Fatalf("attempt 1 backoff %v, want 1s", got)
	}
	if got := l.restartBackoff(10); got != maxClientBackoff {
		t.Fatalf("attempt 10 backoff %v, want cap %v", got, maxClientBackoff)
	}
	l = &Launcher{cfg: Config{}}
	if got := l.restartBackoff(1); got != defaultClientBackoff {
		t.Fatalf("default backoff %v, want %v", got, defaultClientBackoff)
	}
	l = &Launcher{cfg: Config{ClientRestartBackoff: -1}}
	if got := l.restartBackoff(3); got != 0 {
		t.Fatalf("disabled backoff %v, want 0", got)
	}
}

func TestLauncherWatchdogKillsHungClient(t *testing.T) {
	cfg := testConfig(2, buffer.FIFOKind)
	cfg.Server.WatchdogTimeout = 150 * time.Millisecond
	cfg.HeartbeatInterval = 0 // silence between steps
	// Sim 1 hangs (huge per-step delay) on attempt 0 only.
	cfg.JobHook = func(simID, attempt int, job *client.Job) {
		if simID == 1 && attempt == 0 {
			job.StepDelay = time.Hour
		}
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := l.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.ClientRestarts < 1 {
		t.Fatalf("expected at least one watchdog-driven restart, got %d", res.ClientRestarts)
	}
	if got := len(res.Metrics.Occurrences()); got != 2*steps {
		t.Fatalf("unique samples %d, want %d", got, 2*steps)
	}
}

func TestLauncherServerRecovery(t *testing.T) {
	cfg := testConfig(4, buffer.FIFOKind)
	cfg.Server.CheckpointPath = filepath.Join(t.TempDir(), "srv.ckpt")
	cfg.Server.CheckpointEveryBatches = 1
	cfg.InjectServerFailureAfterBatches = 2
	// Pace the clients so trajectories are still in flight when the
	// injected crash fires: on a fast ingestion path an unpaced ensemble
	// can complete entirely before batch 2, leaving the recovered server
	// legitimately nothing to train and the test nothing to observe.
	cfg.JobHook = func(simID, attempt int, job *client.Job) {
		job.StepDelay = 5 * time.Millisecond
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerRestarts != 1 {
		t.Fatalf("server restarts %d, want 1", res.ServerRestarts)
	}
	// The second instance must finish the ensemble; at-least-once training
	// across the crash boundary.
	occ := res.Metrics.Occurrences()
	keys := map[buffer.Key]bool{}
	for k := range occ {
		keys[k] = true
	}
	// The restored instance re-trains what was lost after the last
	// checkpoint; the final instance alone must still have seen the tail
	// of every simulation (completion implies all goodbyes arrived).
	if res.Metrics.Batches() == 0 {
		t.Fatal("no training on recovered server")
	}
	if len(keys) == 0 {
		t.Fatal("no samples trained on recovered server")
	}
}

func TestLauncherRespectsContextCancel(t *testing.T) {
	cfg := testConfig(3, buffer.FIFOKind)
	cfg.JobHook = func(simID, attempt int, job *client.Job) {
		job.StepDelay = 50 * time.Millisecond // slow everything down
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	if _, err := l.Run(ctx); err == nil {
		t.Fatal("expected cancellation error")
	}
}
