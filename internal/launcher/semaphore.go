package launcher

import (
	"context"
	"sync"
)

// semaphore is a resizable counting semaphore. It backs the launcher's
// client slots and implements the paper's elasticity (§3.1: "The number of
// running clients can evolve with time according to the resources available
// on the supercomputer, making the application elastic"): growing the
// capacity admits more concurrent clients immediately, shrinking lets
// running clients finish and admits fewer afterwards.
type semaphore struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int
	used int
}

func newSemaphore(capacity int) *semaphore {
	if capacity < 1 {
		capacity = 1
	}
	s := &semaphore{cap: capacity}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Acquire blocks until a slot is free or ctx is cancelled.
func (s *semaphore) Acquire(ctx context.Context) error {
	// Wake waiters on cancellation; Broadcast is cheap relative to job
	// granularity.
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	for s.used >= s.cap {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		s.cond.Wait()
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	s.used++
	return nil
}

// Release returns a slot.
func (s *semaphore) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.used == 0 {
		panic("launcher: semaphore release without acquire")
	}
	s.used--
	s.cond.Broadcast()
}

// Resize changes the capacity. Growing wakes waiters; shrinking below the
// current usage lets running holders drain naturally.
func (s *semaphore) Resize(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cap = capacity
	s.cond.Broadcast()
}

// Capacity returns the current slot count.
func (s *semaphore) Capacity() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cap
}

// InUse returns the number of held slots.
func (s *semaphore) InUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}
