package launcher

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSemaphoreBasic(t *testing.T) {
	s := newSemaphore(2)
	ctx := context.Background()
	if err := s.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if s.InUse() != 2 || s.Capacity() != 2 {
		t.Fatalf("state %d/%d", s.InUse(), s.Capacity())
	}

	acquired := make(chan struct{})
	go func() {
		s.Acquire(ctx)
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("third acquire should block")
	case <-time.After(20 * time.Millisecond):
	}
	s.Release()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("release did not wake waiter")
	}
}

func TestSemaphoreResizeGrows(t *testing.T) {
	s := newSemaphore(1)
	ctx := context.Background()
	s.Acquire(ctx)
	done := make(chan struct{})
	go func() {
		s.Acquire(ctx)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	s.Resize(2) // elasticity: more resources became available
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("resize did not admit the waiter")
	}
}

func TestSemaphoreResizeShrinks(t *testing.T) {
	s := newSemaphore(3)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		s.Acquire(ctx)
	}
	s.Resize(1)
	// Releasing two still leaves the semaphore full at the new capacity.
	s.Release()
	s.Release()
	acquired := make(chan struct{})
	go func() {
		s.Acquire(ctx)
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("acquire should block at shrunken capacity")
	case <-time.After(20 * time.Millisecond):
	}
	s.Release()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("final release did not admit waiter")
	}
}

func TestSemaphoreAcquireCancellation(t *testing.T) {
	s := newSemaphore(1)
	s.Acquire(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- s.Acquire(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("expected cancellation error")
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled acquire never returned")
	}
}

func TestSemaphoreReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newSemaphore(1).Release()
}

func TestSemaphoreConcurrentStress(t *testing.T) {
	s := newSemaphore(4)
	var inUse, maxInUse atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := s.Acquire(context.Background()); err != nil {
					t.Error(err)
					return
				}
				cur := inUse.Add(1)
				for {
					max := maxInUse.Load()
					if cur <= max || maxInUse.CompareAndSwap(max, cur) {
						break
					}
				}
				inUse.Add(-1)
				s.Release()
			}
		}()
	}
	wg.Wait()
	if maxInUse.Load() > 4 {
		t.Fatalf("capacity violated: %d concurrent holders", maxInUse.Load())
	}
}

// TestLauncherElasticity grows the slot pool mid-run and verifies the run
// completes with all data trained (the paper's elasticity property).
func TestLauncherElasticity(t *testing.T) {
	cfg := testConfig(8, "Reservoir")
	cfg.MaxConcurrentClients = 1
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		l.Resize(4) // resources freed up on the "cluster"
	}()
	res, err := l.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Metrics.Occurrences()); got != 8*steps {
		t.Fatalf("unique samples %d, want %d", got, 8*steps)
	}
}
