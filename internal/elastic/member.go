package elastic

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"melissa/internal/ddp"
	"melissa/internal/transport"
)

// MemberConfig configures one elastic rank.
type MemberConfig struct {
	// ID is the member's stable identity across restarts. Ring rank within
	// an epoch is the member's position in the ascending-ID membership.
	ID int
	// Coordinator is the control-plane address.
	Coordinator string
	// Dir is the shared group checkpoint directory.
	Dir string
	// BindAddr is the address pattern for ring listeners (a fresh listener
	// is bound per epoch). Empty means "127.0.0.1:0".
	BindAddr string
	// ConnectTimeout bounds ring formation per epoch; 0 means 10s.
	ConnectTimeout time.Duration
	// LocalRanks is how many consecutive global training ranks this member
	// hosts (0 means 1). Every member of a group must agree — the value is
	// stamped into the ring handshake identity, so a mismatch fails at
	// ring formation. With several local ranks the session's group wraps
	// the ring in a hierarchical communicator (ddp.HierComm).
	LocalRanks int
	// RingOptions, when set, supplies per-epoch ring tuning (IO timeout,
	// heartbeat interval, chaos wrapper). Nil uses transport defaults. The
	// Identity field is overwritten with the topology identity.
	RingOptions func(epoch int) transport.RingOptions
	// Run is the application callback, invoked once per epoch the member
	// participates in. It must watch Session.Aborted (or the collective
	// errors) and return promptly when the epoch is torn down; a nil
	// return reports the epoch's work complete, non-nil reports a fault.
	Run func(ctx context.Context, s *Session) error
	// OnCommit, when set, is invoked whenever the coordinator commits a
	// group checkpoint manifest, with the committed batch. It runs on the
	// control-plane reader goroutine — possibly concurrently with Run —
	// and must return quickly. The elastic server uses it to prune replay
	// journals kept only for rollbacks to older boundaries.
	OnCommit func(batch int)
}

// Member is one elastic rank's runtime: it keeps the control connection to
// the coordinator, forms the per-epoch ring, runs the application
// callback, and handles abort/rejoin transitions. Create with NewMember,
// drive with Run.
type Member struct {
	cfg    MemberConfig
	conn   net.Conn
	enc    *gob.Encoder
	encMu  sync.Mutex
	events chan ctrlMsg

	mu            sync.Mutex
	sess          *Session
	listener      *transport.RingListener
	latestPrepare int // highest prepare epoch seen; sessions at or below it are dead on arrival
	killed        bool
}

// NewMember validates the config. The control connection is established by
// Run.
func NewMember(cfg MemberConfig) (*Member, error) {
	if cfg.Run == nil {
		return nil, errors.New("elastic: member Run callback required")
	}
	if cfg.BindAddr == "" {
		cfg.BindAddr = "127.0.0.1:0"
	}
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = defaultConnectTimeout
	}
	if cfg.LocalRanks <= 0 {
		cfg.LocalRanks = 1
	}
	return &Member{cfg: cfg, events: make(chan ctrlMsg, 16)}, nil
}

// Kill simulates the rank process dying: the ring and control connections
// are closed without any goodbye, and Run returns ErrKilled. The rest of
// the group finds out the way it would with a real process — dead links.
func (m *Member) Kill() {
	m.mu.Lock()
	m.killed = true
	sess := m.sess
	l := m.listener
	m.listener = nil
	conn := m.conn
	m.mu.Unlock()
	if sess != nil {
		sess.abort()
	}
	if l != nil {
		l.Close()
	}
	if conn != nil {
		conn.Close()
	}
}

// Run connects to the coordinator and participates in the group until it
// completes (nil), the member is killed (ErrKilled), the context is
// canceled, or the control plane is lost.
func (m *Member) Run(ctx context.Context) error {
	conn, err := m.dialCoordinator(ctx)
	if err != nil {
		return fmt.Errorf("elastic: member %d: %w", m.cfg.ID, err)
	}
	m.mu.Lock()
	if m.killed {
		m.mu.Unlock()
		conn.Close()
		return ErrKilled
	}
	m.conn = conn
	m.mu.Unlock()
	defer conn.Close()
	m.enc = gob.NewEncoder(conn)
	if err := m.send(ctrlMsg{Kind: kindHello, ID: m.cfg.ID}); err != nil {
		return fmt.Errorf("elastic: member %d hello: %w", m.cfg.ID, err)
	}
	go m.readLoop(conn)

	for {
		var msg ctrlMsg
		var ok bool
		select {
		case msg, ok = <-m.events:
			if !ok {
				if m.isKilled() {
					return ErrKilled
				}
				return fmt.Errorf("elastic: member %d lost the coordinator", m.cfg.ID)
			}
		case <-ctx.Done():
			return ctx.Err()
		}
		switch msg.Kind {
		case kindPrepare:
			if err := m.bindAndJoin(msg.Epoch); err != nil {
				if m.isKilled() {
					return ErrKilled
				}
				return fmt.Errorf("elastic: member %d join epoch %d: %w", m.cfg.ID, msg.Epoch, err)
			}
		case kindConfig:
			m.runEpoch(ctx, msg)
			if m.isKilled() {
				return ErrKilled
			}
		case kindStop:
			return nil
		}
	}
}

// readLoop decodes coordinator messages. Prepare and stop abort the
// current session immediately — before the main loop gets the message —
// so a member wedged in a collective on a dead ring is freed.
func (m *Member) readLoop(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	for {
		var msg ctrlMsg
		if err := dec.Decode(&msg); err != nil {
			m.abortSession(1 << 30)
			close(m.events)
			return
		}
		if msg.Kind == kindPrepare || msg.Kind == kindStop {
			epoch := msg.Epoch
			if msg.Kind == kindStop {
				epoch = 1 << 30
			}
			m.abortSession(epoch)
		}
		if msg.Kind == kindCommit {
			// Commits arrive while the main loop is inside an epoch; they
			// are delivered here so pruning is not deferred to epoch end.
			if m.cfg.OnCommit != nil {
				m.cfg.OnCommit(msg.Batch)
			}
			continue
		}
		select {
		case m.events <- msg:
		default:
			// The main loop is far behind (it only ever queues a handful
			// of messages); drop rather than deadlock the reader. Prepare
			// and stop were already acted upon above.
		}
	}
}

// abortSession tears down any session at an epoch below the given prepare
// epoch, and records the prepare so a session that is still being built
// is aborted the moment it registers.
func (m *Member) abortSession(prepareEpoch int) {
	m.mu.Lock()
	if prepareEpoch > m.latestPrepare {
		m.latestPrepare = prepareEpoch
	}
	sess := m.sess
	m.mu.Unlock()
	if sess != nil && sess.epoch < prepareEpoch {
		sess.abort()
	}
}

// bindAndJoin answers a prepare: bind a fresh ring listener and report
// its address for the new epoch.
func (m *Member) bindAndJoin(epoch int) error {
	m.mu.Lock()
	if old := m.listener; old != nil {
		old.Close()
		m.listener = nil
	}
	m.mu.Unlock()
	l, err := transport.ListenRing(m.cfg.BindAddr)
	if err != nil {
		return err
	}
	m.mu.Lock()
	if m.killed {
		m.mu.Unlock()
		l.Close()
		return ErrKilled
	}
	m.listener = l
	m.mu.Unlock()
	return m.send(ctrlMsg{Kind: kindJoin, ID: m.cfg.ID, Epoch: epoch, Addr: l.Addr()})
}

// runEpoch forms the ring for a config, runs the application callback,
// and reports done or fault. Ring-formation failures are reported as
// faults (the coordinator re-forms), not returned — only kill terminates
// the member from here.
func (m *Member) runEpoch(ctx context.Context, cfg ctrlMsg) {
	m.mu.Lock()
	l := m.listener
	m.listener = nil
	m.mu.Unlock()
	if l == nil {
		return // killed, or a stale config with no bound listener
	}
	rank := -1
	for i, id := range cfg.Members {
		if id == m.cfg.ID {
			rank = i
		}
	}
	if rank < 0 {
		l.Close()
		return
	}
	var opts transport.RingOptions
	if m.cfg.RingOptions != nil {
		opts = m.cfg.RingOptions(cfg.Epoch)
	}
	opts.Identity = ddp.GroupIdentity(m.cfg.LocalRanks)
	ring, err := l.ConnectContext(ctx, rank, cfg.Addrs, m.cfg.ConnectTimeout, opts)
	if err != nil {
		if debugElastic {
			fmt.Printf("[m%d] connect epoch %d failed: %v\n", m.cfg.ID, cfg.Epoch, err)
		}
		m.send(ctrlMsg{Kind: kindFault, ID: m.cfg.ID, Epoch: cfg.Epoch})
		return
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sess := &Session{
		m:       m,
		epoch:   cfg.Epoch,
		rank:    rank,
		members: cfg.Members,
		restore: cfg.Batch,
		group:   ddp.GroupFromRing(ring, m.cfg.LocalRanks),
		aborted: make(chan struct{}),
		cancel:  cancel,
	}

	m.mu.Lock()
	dead := m.killed || m.latestPrepare > sess.epoch
	if !dead {
		m.sess = sess
	}
	m.mu.Unlock()
	if dead {
		// A newer prepare (or kill) raced ring formation: this epoch is
		// already obsolete.
		sess.group.Close()
		return
	}

	runErr := m.cfg.Run(sctx, sess)

	m.mu.Lock()
	m.sess = nil
	m.mu.Unlock()
	if runErr != nil {
		// Failed epoch: force-close the links so Close cannot stall
		// flushing frames to a dead peer. On a clean finish the ring must
		// shut down gracefully instead — the peers' final collective may
		// still be draining frames this rank staged, and an abort here
		// would cut them off mid-step.
		sess.abort()
	}
	sess.group.Close()
	if m.isKilled() {
		return
	}
	if runErr == nil {
		if debugElastic {
			fmt.Printf("[m%d] epoch %d app done\n", m.cfg.ID, cfg.Epoch)
		}
		m.send(ctrlMsg{Kind: kindDone, ID: m.cfg.ID, Epoch: cfg.Epoch})
	} else {
		if debugElastic {
			fmt.Printf("[m%d] epoch %d app error: %v\n", m.cfg.ID, cfg.Epoch, runErr)
		}
		m.send(ctrlMsg{Kind: kindFault, ID: m.cfg.ID, Epoch: cfg.Epoch})
	}
}

func (m *Member) isKilled() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.killed
}

func (m *Member) send(msg ctrlMsg) error {
	m.encMu.Lock()
	defer m.encMu.Unlock()
	m.conn.SetWriteDeadline(time.Now().Add(ctrlWriteTimeout))
	err := m.enc.Encode(&msg)
	m.conn.SetWriteDeadline(time.Time{})
	return err
}

// dialCoordinator dials the control plane with the ddp retry/backoff
// policy, so members may start before the coordinator.
func (m *Member) dialCoordinator(ctx context.Context) (net.Conn, error) {
	var conn net.Conn
	err := ddp.Retry(ctx, 10, 50*time.Millisecond, func() error {
		d := net.Dialer{Timeout: 2 * time.Second}
		var err error
		conn, err = d.DialContext(ctx, "tcp", m.cfg.Coordinator)
		return err
	})
	return conn, err
}

// Session is one epoch's view of the group, handed to the application
// callback.
type Session struct {
	m       *Member
	epoch   int
	rank    int
	members []int
	restore int
	group   ddp.RankGroup

	aborted   chan struct{}
	abortOnce sync.Once
	cancel    context.CancelFunc
}

// Epoch returns the group epoch this session belongs to.
func (s *Session) Epoch() int { return s.epoch }

// Rank returns this member's ring rank within the epoch.
func (s *Session) Rank() int { return s.rank }

// World returns the epoch's group size in members. The global training
// rank space is World()·LocalRanks wide; see Group.
func (s *Session) World() int { return len(s.members) }

// Members returns the member IDs in ring-rank order.
func (s *Session) Members() []int { return s.members }

// Comm returns the epoch's communicator. It is poisoned the moment the
// epoch is torn down; collectives then return errors wrapping
// transport.ErrRingAborted.
func (s *Session) Comm() ddp.Communicator { return s.group.Comm }

// Group returns the epoch's rank group: the communicator plus this
// member's global rank offset (ring rank · LocalRanks). It is the handle
// trainer and server configs take.
func (s *Session) Group() ddp.RankGroup { return s.group }

// RestoreBatch returns the batch boundary to restore from (the committed
// group checkpoint), or -1 for a fresh start.
func (s *Session) RestoreBatch() int { return s.restore }

// Aborted is closed when the epoch is being torn down (a newer prepare
// arrived, or the member was killed). Application code blocked outside a
// collective must select on it.
func (s *Session) Aborted() <-chan struct{} { return s.aborted }

// abort tears the epoch down: the aborted channel closes, in-flight
// collectives fail with ErrRingAborted, and the application context is
// canceled (which covers single-member rings, where Abort has no
// connections to close).
func (s *Session) abort() {
	s.abortOnce.Do(func() {
		close(s.aborted)
		s.group.Abort()
		if s.cancel != nil {
			s.cancel()
		}
	})
}

// SaveShard atomically writes this member's shard of a group checkpoint
// and reports it to the coordinator, which commits a manifest at batch B
// once every member has reported a shard at B.
func (s *Session) SaveShard(st *State) error {
	st.Epoch = s.epoch
	if err := writeShard(s.m.cfg.Dir, s.m.cfg.ID, st); err != nil {
		return err
	}
	return s.m.send(ctrlMsg{Kind: kindShard, ID: s.m.cfg.ID, Epoch: s.epoch, Batch: st.Batch})
}

// LoadState resolves this member's restore state at the epoch's rollback
// point: weights, optimizer slab and counters come from the shard at
// RestoreBatch — the member's own if it has one, else the first member's
// in ring order (the rejoin path: a member absent at the checkpoint
// adopts a peer's replica state, which is identical across ranks by
// construction). Buffer contents come from the member's own newest shard
// at or before the rollback point; Buf fields are nil when it has none
// (the caller keeps its initial fill).
func (s *Session) LoadState() (*State, error) {
	b := s.restore
	if b < 0 {
		return nil, errors.New("elastic: no restore point for a fresh epoch")
	}
	dir := s.m.cfg.Dir
	st, err := loadShard(dir, s.m.cfg.ID, b)
	if errors.Is(err, os.ErrNotExist) {
		for _, id := range s.members {
			if st, err = loadShard(dir, id, b); err == nil {
				break
			} else if !errors.Is(err, os.ErrNotExist) {
				return nil, err
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("elastic: member %d: no shard at batch %d: %w", s.m.cfg.ID, b, err)
	}
	// The weight-source shard may be a peer's; buffer contents and the
	// application payload are only ever the member's own.
	st.BufSeen, st.BufUnseen, st.App = nil, nil, nil
	if ownB, ok := latestShardAtOrBefore(dir, s.m.cfg.ID, b); ok {
		own, err := loadShard(dir, s.m.cfg.ID, ownB)
		if err != nil {
			return nil, err
		}
		st.BufSeen, st.BufUnseen, st.App = own.BufSeen, own.BufUnseen, own.App
	}
	return st, nil
}
