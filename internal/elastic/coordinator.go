package elastic

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync/atomic"
	"time"
)

// CoordinatorConfig configures the membership controller.
type CoordinatorConfig struct {
	// Addr is the control-plane listen address (e.g. "127.0.0.1:0").
	Addr string
	// World is the initial group size: the first epoch forms once this
	// many distinct member IDs have connected.
	World int
	// Dir is the group checkpoint directory (shards + manifest), shared
	// with the members.
	Dir string
	// FormTimeout bounds one formation round: a prepared member that has
	// not joined within it is dropped and formation restarts without it.
	// 0 means a 15s default.
	FormTimeout time.Duration
}

// Coordinator is the elastic group's membership controller: it owns the
// epoch counter, detects member death (control-connection drop or an
// explicit fault report), re-forms the ring over the survivors with a
// rollback to the last committed manifest, admits rejoining members, and
// commits group checkpoint manifests as shard reports come in. One
// coordinator serves one training group; members find it via Addr.
type Coordinator struct {
	cfg    CoordinatorConfig
	ln     net.Listener
	events chan coordEvent
	done   chan struct{}
	err    error

	// Observability mirrors of the event loop's state (atomic because the
	// loop owns the real state).
	epochNow    atomic.Int64
	manifestNow atomic.Int64 // committed manifest batch, -1 before any commit
}

// memberConn is one control connection. serial disambiguates an old
// connection's trailing disconnect event from a replacement connection of
// the same member ID (a restarted rank reconnecting).
type memberConn struct {
	id     int
	serial int64
	conn   net.Conn
	enc    *gob.Encoder
}

type coordEvent struct {
	msg  ctrlMsg
	mc   *memberConn
	gone bool // reader terminated (conn dropped)
}

// NewCoordinator starts the control-plane listener and the event loop. If
// Dir already holds a committed manifest, the first epoch restores from it
// (whole-group crash restart); otherwise the first epoch starts fresh.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.World < 1 {
		return nil, fmt.Errorf("elastic: world %d must be ≥ 1", cfg.World)
	}
	if cfg.FormTimeout <= 0 {
		cfg.FormTimeout = defaultFormTimeout
	}
	manifest, haveManifest, err := loadManifest(cfg.Dir)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:    cfg,
		ln:     ln,
		events: make(chan coordEvent, 64),
		done:   make(chan struct{}),
	}
	c.manifestNow.Store(-1)
	if haveManifest {
		c.manifestNow.Store(int64(manifest.Batch))
	}
	go c.acceptLoop()
	go c.run(manifest, haveManifest)
	return c, nil
}

// Addr returns the control-plane address members dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Epoch returns the current (or forming) group epoch.
func (c *Coordinator) Epoch() int { return int(c.epochNow.Load()) }

// ManifestBatch returns the batch of the last committed group checkpoint
// manifest, or -1 when none has been committed yet.
func (c *Coordinator) ManifestBatch() int { return int(c.manifestNow.Load()) }

// Wait blocks until the group completes (every member of the final epoch
// reported done) or fails, returning the terminal error if any.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		return c.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close tears the coordinator down; Wait unblocks with whatever state the
// group reached.
func (c *Coordinator) Close() { c.ln.Close() }

func (c *Coordinator) acceptLoop() {
	var serial int64
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		serial++
		mc := &memberConn{serial: serial, conn: conn, enc: gob.NewEncoder(conn)}
		go c.readLoop(mc)
	}
}

// readLoop decodes one member's control stream into the event channel.
// The first message must be hello; everything after is forwarded, and the
// terminal decode error becomes a gone event.
func (c *Coordinator) readLoop(mc *memberConn) {
	dec := gob.NewDecoder(mc.conn)
	var hello ctrlMsg
	if err := dec.Decode(&hello); err != nil || hello.Kind != kindHello {
		mc.conn.Close()
		return
	}
	mc.id = hello.ID
	c.post(coordEvent{msg: hello, mc: mc})
	for {
		var msg ctrlMsg
		if err := dec.Decode(&msg); err != nil {
			c.post(coordEvent{mc: mc, gone: true})
			return
		}
		c.post(coordEvent{msg: msg, mc: mc})
	}
}

func (c *Coordinator) post(ev coordEvent) {
	select {
	case c.events <- ev:
	case <-c.done:
	}
}

// coordState is the event loop's single-goroutine view of the group.
type coordState struct {
	members      map[int]*memberConn
	epoch        int
	forming      bool
	target       []int          // membership of the current (or forming) epoch
	joins        map[int]string // member → ring addr collected this formation
	shards       map[int]int    // member → latest shard batch on disk
	dones        map[int]bool
	manifest     Manifest
	haveManifest bool
}

// run is the coordinator's event loop. All membership state is confined
// to this goroutine; connection readers only post events.
func (c *Coordinator) run(manifest Manifest, haveManifest bool) {
	st := &coordState{
		members:      make(map[int]*memberConn),
		shards:       make(map[int]int),
		manifest:     manifest,
		haveManifest: haveManifest,
	}
	formTimer := time.NewTimer(time.Hour)
	formTimer.Stop()
	defer formTimer.Stop()

	fail := func(err error) {
		c.err = err
		for _, mc := range st.members {
			mc.conn.Close()
		}
		c.ln.Close()
		close(c.done)
	}

	for {
		select {
		case ev := <-c.events:
			if ev.gone {
				cur, ok := st.members[ev.mc.id]
				if !ok || cur.serial != ev.mc.serial {
					break // a stale connection's trailing event
				}
				delete(st.members, ev.mc.id)
				ev.mc.conn.Close()
				if st.epoch > 0 {
					c.reform(st, formTimer)
				}
				break
			}
			switch ev.msg.Kind {
			case kindHello:
				if old, ok := st.members[ev.mc.id]; ok {
					old.conn.Close() // replaced by the reconnect
				}
				st.members[ev.mc.id] = ev.mc
				if st.epoch == 0 {
					if len(st.members) >= c.cfg.World {
						c.reform(st, formTimer)
					}
				} else {
					// A rejoiner (or a replaced connection): fold it into
					// the group at the next epoch.
					c.reform(st, formTimer)
				}
			case kindJoin:
				if !st.forming || ev.msg.Epoch != st.epoch {
					break // stale formation round
				}
				if _, ok := st.members[ev.msg.ID]; !ok {
					break
				}
				st.joins[ev.msg.ID] = ev.msg.Addr
				if len(st.joins) == len(st.target) {
					c.finishFormation(st, formTimer)
				}
			case kindFault:
				if st.forming || ev.msg.Epoch != st.epoch {
					break // stale: the reconfiguration is already underway
				}
				if debugElastic {
					fmt.Printf("[coord] fault from %d epoch %d\n", ev.msg.ID, ev.msg.Epoch)
				}
				c.reform(st, formTimer)
			case kindShard:
				if prev, ok := st.shards[ev.msg.ID]; !ok || ev.msg.Batch > prev {
					st.shards[ev.msg.ID] = ev.msg.Batch
				}
				c.tryCommit(st)
			case kindDone:
				if st.forming || ev.msg.Epoch != st.epoch {
					break
				}
				st.dones[ev.msg.ID] = true
				all := true
				for _, id := range st.target {
					if !st.dones[id] {
						all = false
						break
					}
				}
				if all {
					for _, id := range st.target {
						c.send(st, id, ctrlMsg{Kind: kindStop})
					}
					fail(nil)
					return
				}
			}
		case <-formTimer.C:
			if !st.forming {
				break
			}
			// Drop prepared members that never joined and try again with
			// whoever is left.
			for _, id := range st.target {
				if _, joined := st.joins[id]; !joined {
					if mc, ok := st.members[id]; ok {
						mc.conn.Close()
						delete(st.members, id)
					}
				}
			}
			c.reform(st, formTimer)
		case <-c.done:
			return
		}
		select {
		case <-c.done:
			return
		default:
		}
		if len(st.members) == 0 && st.epoch > 0 {
			fail(errors.New("elastic: no members left"))
			return
		}
	}
}

// reform starts a new formation round: bump the epoch, reset the rollback
// point bookkeeping, and ask every connected member to abort its ring and
// rejoin.
func (c *Coordinator) reform(st *coordState, formTimer *time.Timer) {
	if debugElastic {
		fmt.Printf("[coord] reform -> epoch %d (members %v)\n", st.epoch+1, len(st.members))
	}
	st.epoch++
	c.epochNow.Store(int64(st.epoch))
	st.forming = true
	st.joins = make(map[int]string)
	st.dones = make(map[int]bool)
	st.target = st.target[:0]
	for id := range st.members {
		st.target = append(st.target, id)
	}
	sort.Ints(st.target)

	// Roll the on-disk shard state back to the committed manifest: shards
	// past it belong to the discarded trajectory suffix.
	rollback := -1
	if st.haveManifest {
		rollback = st.manifest.Batch
	}
	purgeShardsAbove(c.cfg.Dir, max(rollback, 0))
	for id, b := range st.shards {
		if b > rollback {
			if rollback >= 0 {
				st.shards[id] = rollback
			} else {
				delete(st.shards, id)
			}
		}
	}

	for _, id := range st.target {
		c.send(st, id, ctrlMsg{Kind: kindPrepare, Epoch: st.epoch})
	}
	if !formTimer.Stop() {
		select {
		case <-formTimer.C:
		default:
		}
	}
	formTimer.Reset(c.cfg.FormTimeout)
}

// finishFormation distributes the epoch configuration once every target
// member has joined: ring order is ascending member ID, and the restore
// point is the committed manifest (or -1 for a fresh start).
func (c *Coordinator) finishFormation(st *coordState, formTimer *time.Timer) {
	st.forming = false
	formTimer.Stop()
	restore := -1
	if st.haveManifest {
		restore = st.manifest.Batch
	}
	addrs := make([]string, len(st.target))
	for i, id := range st.target {
		addrs[i] = st.joins[id]
	}
	cfgMsg := ctrlMsg{
		Kind:    kindConfig,
		Epoch:   st.epoch,
		Batch:   restore,
		Members: append([]int(nil), st.target...),
		Addrs:   addrs,
	}
	for _, id := range st.target {
		c.send(st, id, cfgMsg)
	}
}

// tryCommit advances the manifest to the largest batch for which every
// current member has a shard on disk, then announces the new rollback
// point to the group (kindCommit) so members can drop replay state kept
// only for rollbacks to older boundaries.
func (c *Coordinator) tryCommit(st *coordState) {
	if len(st.target) == 0 {
		return
	}
	lo := -1
	for _, id := range st.target {
		b, ok := st.shards[id]
		if !ok {
			return // a member (e.g. a fresh rejoiner) has no shard yet
		}
		if lo < 0 || b < lo {
			lo = b
		}
	}
	if st.haveManifest && lo <= st.manifest.Batch {
		return
	}
	m := Manifest{Epoch: st.epoch, Batch: lo, Members: append([]int(nil), st.target...)}
	if err := writeManifest(c.cfg.Dir, m); err != nil {
		return // leave the previous manifest as the rollback point
	}
	st.manifest = m
	st.haveManifest = true
	c.manifestNow.Store(int64(m.Batch))
	for _, id := range st.target {
		c.send(st, id, ctrlMsg{Kind: kindCommit, Epoch: st.epoch, Batch: m.Batch})
	}
}

// send writes a control message to one member with a bounded deadline; a
// failed write is treated as the member's death.
func (c *Coordinator) send(st *coordState, id int, msg ctrlMsg) {
	mc, ok := st.members[id]
	if !ok {
		return
	}
	mc.conn.SetWriteDeadline(time.Now().Add(ctrlWriteTimeout))
	if err := mc.enc.Encode(&msg); err != nil {
		mc.conn.Close() // the reader's gone event handles removal
	}
	mc.conn.SetWriteDeadline(time.Time{})
}
