package elastic

import "os"

var debugElastic = os.Getenv("ELASTIC_DEBUG") != ""
