package elastic_test

// Chaos tests for the elastic training group. Each test drives a
// ≥3-member loopback TCP group through a deterministic fault — a rank
// killed mid-run, a restarted rank rejoining, a partitioned ring — and
// asserts the recovery contract: the group re-forms over the survivors at
// a new epoch, rolls back to the last committed group checkpoint, and
// finishes with final weights bit-identical to an unfaulted reference run
// of the same effective schedule (built piecewise from in-process ChanComm
// trainers, which are pinned bit-identical to the TCP backend).

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"melissa/internal/buffer"
	"melissa/internal/core"
	"melissa/internal/elastic"
	"melissa/internal/transport"
)

const (
	egWorld      = 3
	egBatch      = 4
	egMaxBatches = 12
	egCkptEvery  = 4
	egFieldDim   = 16
)

func egNormalizer() core.FieldNormalizer { return core.NewHeatNormalizer(egFieldDim, 1) }

func egSpec(norm core.FieldNormalizer) core.ModelSpec {
	return core.ModelSpec{InputDim: norm.InputDim(), Hidden: []int{12}, OutputDim: norm.OutputDim(), Seed: 7}
}

// memberSamples generates member m's deterministic training stream: the
// same values every run and in every process, keyed only by the member ID,
// so an elastic member and its reference-trainer counterpart consume
// identical data.
func memberSamples(norm core.FieldNormalizer, member, count int) []buffer.Sample {
	d := norm.Space.Dim()
	samples := make([]buffer.Sample, count)
	for i := range samples {
		in := make([]float32, d+1)
		for j := 0; j < d; j++ {
			in[j] = float32(100 + (7*i+13*j+31*member)%400)
		}
		in[d] = float32(i%10) * 0.1
		out := make([]float32, norm.OutputDim())
		for j := range out {
			out[j] = float32(150 + (11*i+5*j+17*member)%300)
		}
		samples[i] = buffer.Sample{SimID: member, Step: i, Input: in, Output: out}
	}
	return samples
}

// memberBuf builds member m's FIFO training buffer with its full stream
// preloaded and reception closed, optionally rewound to a checkpoint
// snapshot. Prefill before restore mirrors the elastic app exactly.
func memberBuf(t testing.TB, norm core.FieldNormalizer, member int, snap *bufSnap) *buffer.Blocking {
	t.Helper()
	bb := buffer.NewBlocking(buffer.NewFIFO(0))
	for _, s := range memberSamples(norm, member, egMaxBatches*egBatch) {
		if !bb.TryPut(s) {
			t.Fatal("prefill rejected")
		}
	}
	bb.EndReception()
	if snap != nil {
		bb.WithLock(func(p buffer.Policy) {
			p.(buffer.Snapshotter).RestoreSnapshot(snap.seen, snap.unseen)
		})
	}
	return bb
}

type bufSnap struct{ seen, unseen []buffer.Sample }

// refPoint is a boundary of the reference trajectory: full trainer state
// plus every participating member's buffer snapshot.
type refPoint struct {
	flat     []float32 // final weights, for comparison
	weights  []byte
	optState []byte
	batches  int
	samples  int
	bufs     map[int]*bufSnap
}

// runPhase runs the in-process reference trainer for one membership
// stretch — members' ranks in ascending-ID order over the channel backend,
// exactly the collective group an elastic epoch forms over TCP — from an
// optional start point to maxBatches, and captures the end point.
func runPhase(t *testing.T, members []int, start *refPoint, bufSrc map[int]*bufSnap, maxBatches int) *refPoint {
	t.Helper()
	norm := egNormalizer()
	bufs := make([]*buffer.Blocking, len(members))
	for i, m := range members {
		var snap *bufSnap
		if bufSrc != nil {
			snap = bufSrc[m]
		}
		bufs[i] = memberBuf(t, norm, m, snap)
	}
	tr, err := core.NewTrainer(core.TrainerConfig{
		Ranks:      len(members),
		BatchSize:  egBatch,
		Model:      egSpec(norm),
		Normalizer: norm,
		MaxBatches: maxBatches,
	}, bufs)
	if err != nil {
		t.Fatal(err)
	}
	if start != nil {
		if err := tr.RestoreState(start.weights, start.optState, start.batches, start.samples); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	w, o, err := tr.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	pt := &refPoint{
		flat:     append([]float32(nil), tr.Network().FlatParams()...),
		weights:  w,
		optState: o,
		batches:  tr.Metrics().Batches(),
		samples:  tr.Metrics().Samples(),
		bufs:     make(map[int]*bufSnap, len(members)),
	}
	for i, m := range members {
		s := &bufSnap{}
		bufs[i].WithLock(func(p buffer.Policy) {
			s.seen, s.unseen = p.(buffer.Snapshotter).Snapshot()
		})
		pt.bufs[m] = s
	}
	return pt
}

// groupHarness runs a coordinator plus elastic members whose app callback
// is the checkpointing trainer loop, and records what each member observed.
type groupHarness struct {
	t     *testing.T
	dir   string
	coord *elastic.Coordinator

	mu       sync.Mutex
	finalW   map[int][]float32       // member → weights of its last clean finish
	sessions map[int][]sessionRecord // member → sessions it participated in
	hook     func(memberID int, sess *elastic.Session, batches int)
	ringOpts func(memberID int) func(epoch int) transport.RingOptions
}

type sessionRecord struct {
	epoch, world, restore int
}

func newGroupHarness(t *testing.T, world int) *groupHarness {
	t.Helper()
	dir := t.TempDir()
	coord, err := elastic.NewCoordinator(elastic.CoordinatorConfig{
		Addr:        "127.0.0.1:0",
		World:       world,
		Dir:         dir,
		FormTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	return &groupHarness{
		t:        t,
		dir:      dir,
		coord:    coord,
		finalW:   make(map[int][]float32),
		sessions: make(map[int][]sessionRecord),
	}
}

// app is one member's per-epoch callback: build the member's buffer,
// restore from the group checkpoint when the epoch has one, train with
// per-boundary shard writes, and record a clean finish.
func (h *groupHarness) app(memberID int) func(ctx context.Context, sess *elastic.Session) error {
	norm := egNormalizer()
	return func(ctx context.Context, sess *elastic.Session) error {
		h.mu.Lock()
		h.sessions[memberID] = append(h.sessions[memberID], sessionRecord{
			epoch: sess.Epoch(), world: sess.World(), restore: sess.RestoreBatch(),
		})
		h.mu.Unlock()

		var restored *elastic.State
		var snap *bufSnap
		if sess.RestoreBatch() >= 0 {
			st, err := sess.LoadState()
			if err != nil {
				return err
			}
			restored = st
			if st.BufSeen != nil || st.BufUnseen != nil {
				snap = &bufSnap{seen: st.BufSeen, unseen: st.BufUnseen}
			}
		}
		bb := memberBuf(h.t, norm, memberID, snap)

		var tr *core.Trainer
		cfg := core.TrainerConfig{
			Ranks:      1,
			Group:      sess.Group(),
			BatchSize:  egBatch,
			Model:      egSpec(norm),
			Normalizer: norm,
			MaxBatches: egMaxBatches,
		}
		cfg.OnLocalBatchEnd = func(_, batches int) {
			if batches%egCkptEvery == 0 {
				w, o, err := tr.CaptureState()
				if err != nil {
					panic(err)
				}
				var seen, unseen []buffer.Sample
				bb.WithLock(func(p buffer.Policy) {
					seen, unseen = p.(buffer.Snapshotter).Snapshot()
				})
				// A save can fail only during teardown (control conn gone);
				// the group checkpoint protocol tolerates the missing shard.
				sess.SaveShard(&elastic.State{
					Batch:     batches,
					Samples:   tr.LocalSamples(0),
					Weights:   w,
					OptState:  o,
					BufSeen:   seen,
					BufUnseen: unseen,
				})
			}
			if h.hook != nil {
				h.hook(memberID, sess, batches)
			}
		}
		var err error
		tr, err = core.NewTrainer(cfg, []*buffer.Blocking{bb})
		if err != nil {
			return err
		}
		if restored != nil {
			if err := tr.RestoreState(restored.Weights, restored.OptState, restored.Batch, restored.Samples); err != nil {
				return err
			}
		}
		if err := tr.Run(ctx); err != nil {
			return err
		}
		// A clean finish means the schedule completed (the buffers hold
		// exactly MaxBatches of data), so these are final weights. Only
		// global rank 0 advances Metrics, hence no counter check here.
		h.mu.Lock()
		h.finalW[memberID] = append([]float32(nil), tr.Network().FlatParams()...)
		h.mu.Unlock()
		return nil
	}
}

func (h *groupHarness) newMember(memberID int) *elastic.Member {
	h.t.Helper()
	cfg := elastic.MemberConfig{
		ID:          memberID,
		Coordinator: h.coord.Addr(),
		Dir:         h.dir,
		Run:         h.app(memberID),
	}
	if h.ringOpts != nil {
		cfg.RingOptions = h.ringOpts(memberID)
	} else {
		cfg.RingOptions = func(int) transport.RingOptions {
			return transport.RingOptions{IOTimeout: 5 * time.Second, HeartbeatInterval: 100 * time.Millisecond}
		}
	}
	m, err := elastic.NewMember(cfg)
	if err != nil {
		h.t.Fatal(err)
	}
	return m
}

func (h *groupHarness) records(memberID int) []sessionRecord {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]sessionRecord(nil), h.sessions[memberID]...)
}

func (h *groupHarness) final(memberID int) []float32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.finalW[memberID]
}

func assertWeights(t *testing.T, label string, got, want []float32) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: no final weights recorded", label)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: weight count %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: weight %d diverged: %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestElasticKillRollbackFinish is the headline robustness test: one rank
// of a 3-member TCP group is killed mid-run (after batch 6, past the
// batch-4 group checkpoint). The survivors must detect the death, re-form
// as a 2-member group at epoch 2, roll back to batch 4, finish the
// schedule, and end with weights bit-identical to an unfaulted reference
// run of the same effective schedule.
func TestElasticKillRollbackFinish(t *testing.T) {
	h := newGroupHarness(t, egWorld)
	members := make([]*elastic.Member, egWorld)
	var killOnce sync.Once
	h.hook = func(memberID int, sess *elastic.Session, batches int) {
		if memberID == 1 && sess.Epoch() == 1 && batches == 6 {
			killOnce.Do(members[1].Kill)
		}
	}
	for i := range members {
		members[i] = h.newMember(i)
	}
	runErrs := make([]error, egWorld)
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *elastic.Member) {
			defer wg.Done()
			runErrs[i] = m.Run(context.Background())
		}(i, m)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := h.coord.Wait(ctx); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	wg.Wait()

	if !errors.Is(runErrs[1], elastic.ErrKilled) {
		t.Fatalf("killed member returned %v, want ErrKilled", runErrs[1])
	}
	for _, i := range []int{0, 2} {
		if runErrs[i] != nil {
			t.Fatalf("survivor %d: %v", i, runErrs[i])
		}
		recs := h.records(i)
		last := recs[len(recs)-1]
		if last.epoch < 2 || last.world != 2 || last.restore != egCkptEvery {
			t.Fatalf("survivor %d final session %+v, want epoch ≥ 2, world 2, restore %d", i, last, egCkptEvery)
		}
	}

	// Reference: 3 ranks to the batch-4 checkpoint, then the two survivors
	// from that state to the end of the schedule.
	ph1 := runPhase(t, []int{0, 1, 2}, nil, nil, egCkptEvery)
	ph2 := runPhase(t, []int{0, 2}, ph1, ph1.bufs, egMaxBatches)
	assertWeights(t, "survivor 0", h.final(0), ph2.flat)
	assertWeights(t, "survivor 2", h.final(2), ph2.flat)
}

// TestElasticRejoinAfterRestart extends the kill scenario with recovery:
// after the survivors re-form and checkpoint at batch 8, the killed rank
// restarts, reconnects, and must be folded into a 3-member epoch that
// rolls back to batch 8 — the rejoiner adopting a peer's replica state and
// its own last buffer snapshot — and the group finishes bit-identical to
// the piecewise reference.
func TestElasticRejoinAfterRestart(t *testing.T) {
	h := newGroupHarness(t, egWorld)
	members := make([]*elastic.Member, egWorld)
	var killOnce sync.Once
	gateReached := make(chan int, 2*egWorld)
	h.hook = func(memberID int, sess *elastic.Session, batches int) {
		if memberID == 1 && sess.Epoch() == 1 && batches == 6 {
			killOnce.Do(members[1].Kill)
		}
		// Park the 2-member recovery epoch at batch 10 (with the batch-8
		// checkpoint committed) until the restarted member's arrival tears
		// the epoch down for the 3-member rejoin epoch.
		if sess.World() == 2 && batches == 10 {
			gateReached <- memberID
			<-sess.Aborted()
		}
	}
	for i := range members {
		members[i] = h.newMember(i)
	}
	runErrs := make([]error, egWorld+1)
	var wg sync.WaitGroup
	run := func(slot int, m *elastic.Member) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runErrs[slot] = m.Run(context.Background())
		}()
	}
	for i, m := range members {
		run(i, m)
	}

	// Wait for both survivors to park past the batch-8 checkpoint.
	for i := 0; i < 2; i++ {
		select {
		case <-gateReached:
		case <-time.After(30 * time.Second):
			t.Fatal("survivors never reached the rejoin gate")
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for h.coord.ManifestBatch() < 2*egCkptEvery {
		if time.Now().After(deadline) {
			t.Fatalf("manifest stuck at %d, want %d", h.coord.ManifestBatch(), 2*egCkptEvery)
		}
		time.Sleep(5 * time.Millisecond)
	}

	restarted := h.newMember(1)
	run(egWorld, restarted)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := h.coord.Wait(ctx); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	wg.Wait()

	if !errors.Is(runErrs[1], elastic.ErrKilled) {
		t.Fatalf("killed member returned %v, want ErrKilled", runErrs[1])
	}
	for _, slot := range []int{0, 2, egWorld} {
		if runErrs[slot] != nil {
			t.Fatalf("member slot %d: %v", slot, runErrs[slot])
		}
	}
	// The restarted member must have been admitted at a later epoch with
	// the rolled-back restore point.
	recs := h.records(1)
	last := recs[len(recs)-1]
	if last.epoch < 3 || last.world != egWorld || last.restore != 2*egCkptEvery {
		t.Fatalf("rejoiner final session %+v, want epoch ≥ 3, world %d, restore %d", last, egWorld, 2*egCkptEvery)
	}

	// Reference: 3 ranks to batch 4, survivors to batch 8, then all three
	// from batch 8 — the rejoiner's buffer resuming from its own batch-4
	// snapshot, exactly what LoadState reconstructs.
	ph1 := runPhase(t, []int{0, 1, 2}, nil, nil, egCkptEvery)
	ph2 := runPhase(t, []int{0, 2}, ph1, ph1.bufs, 2*egCkptEvery)
	ph3Bufs := map[int]*bufSnap{0: ph2.bufs[0], 1: ph1.bufs[1], 2: ph2.bufs[2]}
	ph3 := runPhase(t, []int{0, 1, 2}, ph2, ph3Bufs, egMaxBatches)
	for _, id := range []int{0, 1, 2} {
		assertWeights(t, fmt.Sprintf("member %d", id), h.final(id), ph3.flat)
	}
}

// TestElasticPartitionReform cuts one member's ring links with the
// deterministic chaos wrapper mid-epoch: every member's collectives must
// time out (no panics), the group re-forms — same membership, new epoch,
// clean links — rolls back to the checkpoint, and finishes bit-identical
// to an unfaulted run.
func TestElasticPartitionReform(t *testing.T) {
	h := newGroupHarness(t, egWorld)
	chaos := transport.NewChaos(transport.ChaosConfig{Seed: transport.ChaosSeed(42)})
	h.ringOpts = func(memberID int) func(epoch int) transport.RingOptions {
		return func(epoch int) transport.RingOptions {
			o := transport.RingOptions{IOTimeout: 500 * time.Millisecond, HeartbeatInterval: 50 * time.Millisecond}
			if memberID == 1 && epoch == 1 {
				o.Wrap = chaos.Wrap // only the first epoch's links are faulty
			}
			return o
		}
	}
	h.hook = func(memberID int, sess *elastic.Session, batches int) {
		if memberID == 1 && sess.Epoch() == 1 && batches == 6 {
			chaos.Partition(true)
		}
	}
	members := make([]*elastic.Member, egWorld)
	for i := range members {
		members[i] = h.newMember(i)
	}
	runErrs := make([]error, egWorld)
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *elastic.Member) {
			defer wg.Done()
			runErrs[i] = m.Run(context.Background())
		}(i, m)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := h.coord.Wait(ctx); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	wg.Wait()

	for i, err := range runErrs {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		recs := h.records(i)
		last := recs[len(recs)-1]
		if last.epoch < 2 || last.world != egWorld || last.restore != egCkptEvery {
			t.Fatalf("member %d final session %+v, want epoch ≥ 2, world %d, restore %d", i, last, egWorld, egCkptEvery)
		}
	}

	// Unfaulted reference of the same effective schedule: to the batch-4
	// checkpoint, then restored to the end — the same two-leg trajectory
	// the re-formed group trains.
	ph1 := runPhase(t, []int{0, 1, 2}, nil, nil, egCkptEvery)
	ph2 := runPhase(t, []int{0, 1, 2}, ph1, ph1.bufs, egMaxBatches)
	for _, id := range []int{0, 1, 2} {
		assertWeights(t, fmt.Sprintf("member %d", id), h.final(id), ph2.flat)
	}
}
