package elastic

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"melissa/internal/buffer"
)

// State is one member's shard of a group checkpoint: everything the rank
// needs to re-enter the trajectory at a batch boundary. Weights and
// OptState use the nn/opt binary formats (core.Trainer.CaptureState);
// BufSeen/BufUnseen are the member's buffer snapshot (buffer.Snapshotter),
// nil when the member keeps its initial fill. App is an opaque
// member-local payload for the application embedding the group — the
// elastic server rides its per-local-rank ingest state here (per-sim
// dedup bitsets and arena buffer snapshots), so server ingestion rolls
// back on exactly the same shards as the replica weights. Like the Buf
// fields, App is never adopted from a peer's shard on restore.
type State struct {
	Epoch   int // group epoch the shard was written under
	Batch   int // synchronized steps completed
	Samples int // cumulative sample count at Batch

	Weights  []byte
	OptState []byte

	BufSeen   []buffer.Sample
	BufUnseen []buffer.Sample

	App []byte
}

// shardPath names member m's shard at a batch boundary. The batch is part
// of the name so shards from different boundaries coexist and a rollback
// can purge only the stale future ones.
func shardPath(dir string, member, batch int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-m%d-b%d.ckpt", member, batch))
}

// writeShard persists one member's shard atomically (temp file + rename),
// so a crash mid-write never leaves a half shard where a restore could
// find it.
func writeShard(dir string, member int, st *State) error {
	path := shardPath(dir, member, st.Batch)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(st); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// loadShard reads member m's shard at exactly batch, or os.ErrNotExist.
func loadShard(dir string, member, batch int) (*State, error) {
	f, err := os.Open(shardPath(dir, member, batch))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var st State
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return nil, fmt.Errorf("elastic: decode shard m%d b%d: %w", member, batch, err)
	}
	return &st, nil
}

// shardBatches lists the batch boundaries for which member m has a shard
// on disk, in no particular order.
func shardBatches(dir string, member int) ([]int, error) {
	glob := filepath.Join(dir, fmt.Sprintf("shard-m%d-b*.ckpt", member))
	paths, err := filepath.Glob(glob)
	if err != nil {
		return nil, err
	}
	var batches []int
	for _, p := range paths {
		var m, b int
		if _, err := fmt.Sscanf(filepath.Base(p), "shard-m%d-b%d.ckpt", &m, &b); err == nil && m == member {
			batches = append(batches, b)
		}
	}
	return batches, nil
}

// latestShardAtOrBefore returns the newest batch ≤ maxBatch for which
// member m has a shard, or ok=false.
func latestShardAtOrBefore(dir string, member, maxBatch int) (int, bool) {
	batches, err := shardBatches(dir, member)
	if err != nil {
		return 0, false
	}
	best, ok := 0, false
	for _, b := range batches {
		if b <= maxBatch && (!ok || b > best) {
			best, ok = b, true
		}
	}
	return best, ok
}

// purgeShardsAbove deletes every shard past the rollback point. Run during
// reconfiguration, before any member restores, so a shard written beyond
// the committed manifest (by a rank that advanced further than the group
// checkpoint before the fault) can never be mistaken for current state.
func purgeShardsAbove(dir string, batch int) error {
	paths, err := filepath.Glob(filepath.Join(dir, "shard-m*-b*.ckpt"))
	if err != nil {
		return err
	}
	var firstErr error
	for _, p := range paths {
		var m, b int
		if _, err := fmt.Sscanf(filepath.Base(p), "shard-m%d-b%d.ckpt", &m, &b); err != nil {
			continue
		}
		if b > batch {
			if err := os.Remove(p); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Manifest is the committed group checkpoint: the coordinator writes it
// once every current member has reported a shard at Batch, making Batch
// the group-wide rollback point.
type Manifest struct {
	Epoch   int
	Batch   int
	Members []int // membership whose shards at Batch form the checkpoint
}

func manifestPath(dir string) string { return filepath.Join(dir, "MANIFEST") }

// writeManifest commits a manifest atomically.
func writeManifest(dir string, m Manifest) error {
	tmp := manifestPath(dir) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(&m); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, manifestPath(dir))
}

// loadManifest reads the committed manifest; ok=false means no group
// checkpoint has ever been committed (a fresh run).
func loadManifest(dir string) (Manifest, bool, error) {
	f, err := os.Open(manifestPath(dir))
	if errors.Is(err, fs.ErrNotExist) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, err
	}
	defer f.Close()
	var m Manifest
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return Manifest{}, false, fmt.Errorf("elastic: decode manifest: %w", err)
	}
	return m, true, nil
}
