// Package elastic makes the multi-process training group survive rank
// death: an epoch-numbered membership controller (Coordinator) plus a
// per-rank member runtime (Member) that together detect failures, re-form
// the TCP ring over the survivors, roll every rank back to the last group
// checkpoint, and let a restarted rank rejoin at a later epoch.
//
// The paper treats fault tolerance as a first-class property of the
// framework — heartbeats, checkpointing and restart keep an ensemble run
// alive on real clusters (§3.1) — and this package extends that guarantee
// from the ingestion side to the data-parallel training group itself.
//
// # Protocol
//
// Group life is divided into epochs, each with a fixed membership and one
// TCP ring. The coordinator owns the epoch counter and a TCP control
// plane; every member keeps one control connection to it.
//
//	member                      coordinator
//	  │ ── hello{id} ─────────────▶ │  (collect until the initial world
//	  │ ◀─ prepare{epoch} ───────── │   is complete, or a rejoin/fault
//	  │ ── join{id,epoch,addr} ───▶ │   triggers a new formation round)
//	  │ ◀─ config{epoch,members,   │
//	  │        addrs,restoreBatch}  │
//	  │    … forms ring, restores   │
//	  │      shard, trains …        │
//	  │ ── shard{id,epoch,batch} ─▶ │  (manifest commits at min batch)
//	  │ ── done{epoch} ───────────▶ │  or fault{epoch} on a link failure
//	  │ ◀─ stop ─────────────────── │  (when every member reported done)
//
// Failure detection is layered: the ring's link heartbeats surface a dead
// or partitioned peer to the survivors as a collective error within one IO
// timeout (they report fault), and the dead member's control connection
// drops at the coordinator. Either signal starts a new formation round:
// the coordinator bumps the epoch, sends prepare (which makes every
// member abort its current ring mid-collective if necessary), collects
// fresh ring listener addresses, and distributes the new configuration
// with the rollback point — the batch of the last committed group
// checkpoint manifest. A restarted member simply connects and says hello;
// inclusion in the next epoch is the rejoin path.
//
// # Group checkpoints
//
// Each member writes its own shard (weights, optimizer slab, counters and
// its buffer snapshot — see State) atomically at a batch boundary, tagged
// with the epoch, and reports it. The coordinator commits a manifest at
// batch B once every current member has a shard at B, making B the
// group-wide rollback point; shards past the manifest are purged during
// reconfiguration so a stale future shard can never be restored. On
// restore, a member takes weights/optimizer/counters from the shard at
// the manifest batch (its own, or ring-order-first peer's when it was
// absent at B) and its buffer contents from its own newest shard at or
// before B — so a rejoiner resumes with exactly the training data it held
// when it last checkpointed. Because every restore source is a bitwise
// snapshot of a deterministic trajectory, a faulted-and-recovered run
// finishes with weights bit-identical to an unfaulted run of the same
// effective schedule (pinned by this package's tests).
package elastic

import (
	"errors"
	"time"
)

// ctrlKind discriminates control-plane messages.
type ctrlKind int

const (
	kindHello   ctrlKind = iota + 1 // member → coordinator: I exist
	kindJoin                        // member → coordinator: ready for epoch, ring addr attached
	kindFault                       // member → coordinator: my ring epoch died
	kindShard                       // member → coordinator: shard written at batch
	kindDone                        // member → coordinator: epoch finished cleanly
	kindPrepare                     // coordinator → member: abort ring, rebind, join epoch
	kindConfig                      // coordinator → member: epoch configuration
	kindStop                        // coordinator → member: group complete
	kindCommit                      // coordinator → member: manifest committed at batch
)

// ctrlMsg is the single gob-encoded control-plane message shape; Kind
// selects which fields are meaningful.
type ctrlMsg struct {
	Kind  ctrlKind
	ID    int    // sender member ID (hello/join/fault/shard/done)
	Epoch int    // epoch the message refers to
	Addr  string // join: the member's fresh ring listener address
	Batch int    // shard: checkpoint batch; config: restore batch (-1 = fresh); commit: manifest batch

	// Config payload: member IDs in ring order and their ring addresses.
	Members []int
	Addrs   []string
}

// ErrKilled is returned by Member.Run after Kill — the in-process
// equivalent of the rank process dying.
var ErrKilled = errors.New("elastic: member killed")

const (
	defaultFormTimeout    = 15 * time.Second
	defaultConnectTimeout = 10 * time.Second
	ctrlWriteTimeout      = 5 * time.Second
)
