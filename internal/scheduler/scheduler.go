// Package scheduler is a Slurm/OAR-style batch scheduler over the virtual
// clock of internal/des: jobs request cores, wait in a FIFO queue, start
// when resources free up, and release on completion. It also implements the
// paper's schedule-in-schedule pattern (§3.1): a pilot job reserves a large
// allocation and sub-jobs are scheduled inside it, avoiding per-job
// scheduler overheads for short ensemble members.
package scheduler

import (
	"fmt"

	"melissa/internal/des"
)

// Cluster is a pool of cores managed by a FIFO scheduler.
type Cluster struct {
	sim   *des.Simulation
	total int
	free  int
	queue []*job
	// SubmitOverheadSec is charged between submission and eligibility,
	// modelling batch-scheduler latency.
	SubmitOverheadSec float64

	started, finished int
}

// New creates a cluster with totalCores cores scheduled on sim's clock.
func New(sim *des.Simulation, totalCores int) *Cluster {
	if totalCores < 1 {
		panic(fmt.Sprintf("scheduler: invalid core count %d", totalCores))
	}
	return &Cluster{sim: sim, total: totalCores, free: totalCores}
}

// TotalCores returns the cluster capacity.
func (c *Cluster) TotalCores() int { return c.total }

// FreeCores returns the currently idle cores.
func (c *Cluster) FreeCores() int { return c.free }

// Started and Finished report job counts, for monitoring.
func (c *Cluster) Started() int  { return c.started }
func (c *Cluster) Finished() int { return c.finished }

type job struct {
	cores int
	start func(release func())
}

// Submit queues a job needing cores. When resources are available, start is
// invoked on the virtual clock; the job must call release exactly once when
// done, returning its cores to the pool. Jobs larger than the cluster are
// rejected with a panic — a configuration bug, as in real Slurm.
func (c *Cluster) Submit(cores int, start func(release func())) {
	if cores > c.total {
		panic(fmt.Sprintf("scheduler: job wants %d cores, cluster has %d", cores, c.total))
	}
	if cores < 1 {
		cores = 1
	}
	j := &job{cores: cores, start: start}
	c.sim.After(c.SubmitOverheadSec, func() {
		c.queue = append(c.queue, j)
		c.tryStart()
	})
}

// tryStart launches queued jobs in FIFO order while resources allow.
// Strict FIFO (no backfill): a large job at the head blocks smaller ones,
// as in the paper's description of busy partitions.
func (c *Cluster) tryStart() {
	for len(c.queue) > 0 && c.queue[0].cores <= c.free {
		j := c.queue[0]
		c.queue = c.queue[1:]
		c.free -= j.cores
		c.started++
		released := false
		j.start(func() {
			if released {
				panic("scheduler: double release")
			}
			released = true
			c.free += j.cores
			c.finished++
			c.tryStart()
		})
	}
}

// QueueLen returns the number of jobs waiting for resources.
func (c *Cluster) QueueLen() int { return len(c.queue) }

// Reserve implements schedule-in-schedule: it submits a pilot job for
// cores and, once it starts, hands the caller a nested Cluster managing
// that allocation. The caller schedules ensemble members into the pilot
// without further interaction with the outer scheduler and calls release
// when the whole series is done.
func (c *Cluster) Reserve(cores int, onReady func(pilot *Cluster, release func())) {
	c.Submit(cores, func(release func()) {
		pilot := New(c.sim, cores)
		onReady(pilot, release)
	})
}
