package scheduler

import (
	"testing"

	"melissa/internal/des"
)

// finishAfter makes a job that runs for d virtual seconds.
func finishAfter(sim *des.Simulation, d des.Time, onDone func()) func(release func()) {
	return func(release func()) {
		sim.After(d, func() {
			if onDone != nil {
				onDone()
			}
			release()
		})
	}
}

func TestJobsRunWhenResourcesFree(t *testing.T) {
	sim := des.New()
	c := New(sim, 40)
	var doneAt []des.Time
	record := func() { doneAt = append(doneAt, sim.Now()) }
	// Three 20-core 10-second jobs on 40 cores: two run immediately, the
	// third waits for a release.
	for i := 0; i < 3; i++ {
		c.Submit(20, finishAfter(sim, 10, record))
	}
	sim.Run()
	if len(doneAt) != 3 {
		t.Fatalf("finished %d jobs", len(doneAt))
	}
	if doneAt[0] != 10 || doneAt[1] != 10 || doneAt[2] != 20 {
		t.Fatalf("completion times %v, want [10 10 20]", doneAt)
	}
	if c.FreeCores() != 40 {
		t.Fatalf("cores leaked: %d free", c.FreeCores())
	}
	if c.Started() != 3 || c.Finished() != 3 {
		t.Fatalf("counters %d/%d", c.Started(), c.Finished())
	}
}

func TestFIFOOrderNoBackfill(t *testing.T) {
	sim := des.New()
	c := New(sim, 40)
	var order []string
	c.Submit(40, finishAfter(sim, 5, func() { order = append(order, "big") }))
	// Head-of-line blocking: big job (40 cores) queued again behind,
	// then a small one that could run but must not overtake.
	c.Submit(40, finishAfter(sim, 5, func() { order = append(order, "big2") }))
	c.Submit(1, finishAfter(sim, 1, func() { order = append(order, "small") }))
	sim.Run()
	if order[0] != "big" || order[1] != "big2" || order[2] != "small" {
		t.Fatalf("order %v, want strict FIFO", order)
	}
}

func TestSubmitOverheadDelaysStart(t *testing.T) {
	sim := des.New()
	c := New(sim, 10)
	c.SubmitOverheadSec = 3
	var startedAt des.Time = -1
	c.Submit(1, func(release func()) {
		startedAt = sim.Now()
		release()
	})
	sim.Run()
	if startedAt != 3 {
		t.Fatalf("started at %v, want 3", startedAt)
	}
}

func TestOversizedJobPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(des.New(), 10).Submit(11, func(func()) {})
}

func TestDoubleReleasePanics(t *testing.T) {
	sim := des.New()
	c := New(sim, 4)
	c.Submit(1, func(release func()) {
		release()
		defer func() {
			if recover() == nil {
				t.Error("expected panic on double release")
			}
		}()
		release()
	})
	sim.Run()
}

func TestQueueLen(t *testing.T) {
	sim := des.New()
	c := New(sim, 10)
	c.Submit(10, func(release func()) { sim.After(100, release) })
	c.Submit(10, func(release func()) { release() })
	c.Submit(10, func(release func()) { release() })
	sim.RunUntil(50)
	if c.QueueLen() != 2 {
		t.Fatalf("queue length %d, want 2", c.QueueLen())
	}
	sim.Run()
	if c.QueueLen() != 0 {
		t.Fatalf("queue not drained")
	}
}

// TestScheduleInSchedule exercises the paper's pilot-allocation pattern:
// a 40-core pilot hosts many short 10-core jobs without touching the outer
// scheduler.
func TestScheduleInSchedule(t *testing.T) {
	sim := des.New()
	outer := New(sim, 100)
	outerStartsBefore := 0
	done := 0
	outer.Reserve(40, func(pilot *Cluster, release func()) {
		outerStartsBefore = outer.Started()
		remaining := 8
		for i := 0; i < 8; i++ {
			pilot.Submit(10, finishAfter(sim, 10, func() {
				done++
				remaining--
				if remaining == 0 {
					release()
				}
			}))
		}
	})
	sim.Run()
	if done != 8 {
		t.Fatalf("inner jobs done %d", done)
	}
	// The outer scheduler saw exactly one job: the pilot.
	if outerStartsBefore != 1 || outer.Started() != 1 {
		t.Fatalf("outer started %d jobs, want 1", outer.Started())
	}
	if outer.FreeCores() != 100 {
		t.Fatalf("pilot cores not released: %d", outer.FreeCores())
	}
}

// TestPilotParallelism: 8 × 10-core jobs of 10 s inside a 40-core pilot run
// 4 at a time → 20 s total.
func TestPilotParallelism(t *testing.T) {
	sim := des.New()
	outer := New(sim, 40)
	var endAt des.Time
	outer.Reserve(40, func(pilot *Cluster, release func()) {
		remaining := 8
		for i := 0; i < 8; i++ {
			pilot.Submit(10, finishAfter(sim, 10, func() {
				remaining--
				if remaining == 0 {
					endAt = sim.Now()
					release()
				}
			}))
		}
	})
	sim.Run()
	if endAt != 20 {
		t.Fatalf("pilot series finished at %v, want 20", endAt)
	}
}
