package experiments

import (
	"fmt"
	"io"

	"melissa/internal/buffer"
	"melissa/internal/core"
	"melissa/internal/stats"
	"melissa/internal/trace"
)

// Figure4Result reproduces Figure 4: training and validation losses for
// FIFO, FIRO and Reservoir online training on 1 GPU, against offline
// training over one epoch on the same unique data. The paper's findings:
// FIFO shows low training loss with high validation loss (overfitting to
// the stream), FIRO mitigates it, Reservoir is stable and reaches a
// validation loss on par with the offline reference.
type Figure4Result struct {
	Scale Scale
	Runs  []*QualityRun // FIFO, FIRO, Reservoir, Offline-1-epoch
}

// Figure4 generates the ensemble with the real solver and trains the four
// settings.
func Figure4(scale Scale) (*Figure4Result, error) {
	data, err := GenerateEnsemble(scale, scale.SimsSmall, 0)
	if err != nil {
		return nil, err
	}
	valSet, err := ValidationSet(scale)
	if err != nil {
		return nil, err
	}
	res := &Figure4Result{Scale: scale}
	sched := paperFig5Schedule(scale)

	for _, kind := range []buffer.Kind{buffer.FIFOKind, buffer.FIROKind, buffer.ReservoirKind} {
		l, err := newLearner(scale, valSet, sched, true)
		if err != nil {
			return nil, err
		}
		if _, err := runOnlineQuality(smallTopology(scale, kind, 1), data, l); err != nil {
			return nil, fmt.Errorf("figure4 %s: %w", kind, err)
		}
		res.Runs = append(res.Runs, newQualityRun(string(kind), l))
	}

	l, err := newLearner(scale, valSet, sched, true)
	if err != nil {
		return nil, err
	}
	runOffline1Epoch(scale, data, l, 1)
	res.Runs = append(res.Runs, newQualityRun("Offline-1epoch", l))
	return res, nil
}

// Run returns the named run, nil if absent.
func (r *Figure4Result) Run(label string) *QualityRun {
	for _, run := range r.Runs {
		if run.Label == label {
			return run
		}
	}
	return nil
}

// Render prints the summary and decimated loss curves.
func (r *Figure4Result) Render(w io.Writer) {
	norm := r.Scale.Normalizer()
	tb := trace.NewTable("Figure 4 — training quality per buffer (1 GPU)",
		"Setting", "Batches", "Samples", "FinalTrainMSE", "FinalValMSE", "MinValMSE", "ValMSE(raw²)")
	for _, run := range r.Runs {
		finalTrain := 0.0
		if len(run.Train) > 0 {
			finalTrain = run.Train[len(run.Train)-1].Value
		}
		tb.AddRow(run.Label, run.Batches, run.Samples, finalTrain, run.FinalVal, run.MinVal, norm.RawMSE(run.FinalVal))
	}
	tb.Render(w)

	for _, run := range r.Runs {
		xs := make([]float64, len(run.Val))
		ys := make([]float64, len(run.Val))
		for i, p := range run.Val {
			xs[i] = float64(p.Batch)
			ys[i] = p.Value
		}
		dx, dy := stats.Decimate(xs, ys, 12)
		st := trace.NewTable("validation(batch) — "+run.Label, "batch", "val MSE")
		for i := range dx {
			st.AddRow(dx[i], dy[i])
		}
		st.Render(w)
	}
}

// CSV writes the loss curves for plotting.
func (r *Figure4Result) CSV(dir string) error {
	for _, run := range r.Runs {
		writeCurve := func(name string, pts []core.LossPoint) error {
			xs := make([]float64, len(pts))
			ys := make([]float64, len(pts))
			for i, p := range pts {
				xs[i] = float64(p.Batch)
				ys[i] = p.Value
			}
			return trace.WriteCSV(fmt.Sprintf("%s/fig4_%s_%s.csv", dir, name, run.Label), []string{"batch", "mse"}, xs, ys)
		}
		if err := writeCurve("train", run.Train); err != nil {
			return err
		}
		if err := writeCurve("val", run.Val); err != nil {
			return err
		}
	}
	return nil
}
