package experiments

import (
	"melissa/internal/buffer"
	"melissa/internal/cluster"
	"melissa/internal/simrun"
)

// PaperEnsemble describes the §4.3 throughput experiment at full paper
// scale: 250 simulations of 100 steps, submitted in series of 100/100/50
// concurrent clients of 20 cores each (50 nodes), a 6,000-sample buffer
// with a 1,000-sample threshold, batch size 10.
type PaperEnsemble struct {
	Simulations    int
	StepsPerSim    int
	CoresPerClient int
	TotalCores     int
	Series         []int
	BatchSize      int
	Capacity       int
	Threshold      int
	Seed           uint64
}

// SmallPaperEnsemble is the Table 1 / Figures 2-5 setting.
func SmallPaperEnsemble() PaperEnsemble {
	return PaperEnsemble{
		Simulations:    250,
		StepsPerSim:    100,
		CoresPerClient: 20,
		TotalCores:     2000, // 100 concurrent clients on 50 nodes
		Series:         []int{100, 100, 50},
		BatchSize:      10,
		Capacity:       6000,
		Threshold:      1000,
		Seed:           2023,
	}
}

// LargePaperEnsemble is the Table 2 online setting: 20,000 simulations,
// 512 concurrent clients of 10 cores (128 nodes, 5,120 cores).
func LargePaperEnsemble() PaperEnsemble {
	return PaperEnsemble{
		Simulations:    20000,
		StepsPerSim:    100,
		CoresPerClient: 10,
		TotalCores:     5120,
		Series:         nil, // one series; concurrency is resource-bound
		BatchSize:      10,
		Capacity:       6000,
		Threshold:      1000,
		Seed:           2023,
	}
}

// TinyPaperEnsemble scales the Table 2 online setting down ~20× while
// keeping its shape (resource-bound single series). Short-mode tests use it
// to smoke the paper-scale pipelines in well under a second.
func TinyPaperEnsemble() PaperEnsemble {
	return PaperEnsemble{
		Simulations:    1000,
		StepsPerSim:    100,
		CoresPerClient: 10,
		TotalCores:     1280,
		Series:         nil,
		BatchSize:      10,
		Capacity:       6000,
		Threshold:      1000,
		Seed:           2023,
	}
}

// Options assembles the cluster-simulator options for a buffer kind and GPU
// count.
func (p PaperEnsemble) Options(kind buffer.Kind, gpus int) simrun.Options {
	return simrun.Options{
		Model:          cluster.JeanZay(),
		Simulations:    p.Simulations,
		StepsPerSim:    p.StepsPerSim,
		CoresPerClient: p.CoresPerClient,
		TotalCores:     p.TotalCores,
		Series:         append([]int(nil), p.Series...),
		GPUs:           gpus,
		BatchSize:      p.BatchSize,
		Buffer:         buffer.Config{Kind: kind, Capacity: p.Capacity, Threshold: p.Threshold, Seed: p.Seed},
	}
}

// RunTiming executes the timing-only cluster simulation.
func (p PaperEnsemble) RunTiming(kind buffer.Kind, gpus int) (*simrun.Result, error) {
	return simrun.Run(p.Options(kind, gpus))
}
