package experiments

import (
	"fmt"
	"io"

	"melissa/internal/buffer"
	"melissa/internal/trace"
)

// Figure5Result reproduces Figure 5: validation loss against the number of
// training samples for FIFO/FIRO/Reservoir across 1, 2 and 4 GPUs, with an
// offline single-epoch reference. The paper's finding: Reservoir
// consistently achieves the lowest validation loss at every GPU count —
// often less than half of FIRO's — and with 4 GPUs beats the one-epoch
// offline reference thanks to its extra optimization steps.
type Figure5Result struct {
	Scale   Scale
	GPUs    []int
	Kinds   []buffer.Kind
	Online  map[string]*QualityRun // key: kindLabel(kind, gpus)
	Offline *QualityRun
}

// Figure5 runs the 3×3 online grid plus the offline reference.
func Figure5(scale Scale) (*Figure5Result, error) {
	data, err := GenerateEnsemble(scale, scale.SimsSmall, 0)
	if err != nil {
		return nil, err
	}
	valSet, err := ValidationSet(scale)
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{
		Scale:  scale,
		GPUs:   []int{1, 2, 4},
		Kinds:  []buffer.Kind{buffer.FIFOKind, buffer.FIROKind, buffer.ReservoirKind},
		Online: make(map[string]*QualityRun),
	}
	sched := paperFig5Schedule(scale)
	for _, kind := range res.Kinds {
		for _, gpus := range res.GPUs {
			l, err := newLearner(scale, valSet, sched, true)
			if err != nil {
				return nil, err
			}
			if _, err := runOnlineQuality(smallTopology(scale, kind, gpus), data, l); err != nil {
				return nil, fmt.Errorf("figure5 %s %dGPU: %w", kind, gpus, err)
			}
			res.Online[kindLabel(kind, gpus)] = newQualityRun(kindLabel(kind, gpus), l)
		}
	}
	l, err := newLearner(scale, valSet, sched, true)
	if err != nil {
		return nil, err
	}
	runOffline1Epoch(scale, data, l, 1)
	res.Offline = newQualityRun("Offline-1epoch", l)
	return res, nil
}

// Run fetches an online run by kind and GPU count.
func (r *Figure5Result) Run(kind buffer.Kind, gpus int) *QualityRun {
	return r.Online[kindLabel(kind, gpus)]
}

// Render prints the final validation losses in the paper's grid layout.
func (r *Figure5Result) Render(w io.Writer) {
	tb := trace.NewTable("Figure 5 — final validation MSE by buffer × GPUs",
		"Buffer", "1 GPU", "2 GPUs", "4 GPUs")
	for _, kind := range r.Kinds {
		row := []any{string(kind)}
		for _, gpus := range r.GPUs {
			row = append(row, r.Run(kind, gpus).FinalVal)
		}
		tb.AddRow(row...)
	}
	tb.AddRow("Offline-1epoch", r.Offline.FinalVal, "", "")
	tb.Render(w)

	st := trace.NewTable("samples consumed (repetition visible for Reservoir)",
		"Buffer", "1 GPU", "2 GPUs", "4 GPUs")
	for _, kind := range r.Kinds {
		row := []any{string(kind)}
		for _, gpus := range r.GPUs {
			row = append(row, r.Run(kind, gpus).Samples)
		}
		st.AddRow(row...)
	}
	st.Render(w)
}

// CSV writes validation-vs-samples series per run.
func (r *Figure5Result) CSV(dir string) error {
	dump := func(run *QualityRun) error {
		xs := make([]float64, len(run.Val))
		ys := make([]float64, len(run.Val))
		for i, p := range run.Val {
			xs[i] = float64(p.Samples)
			ys[i] = p.Value
		}
		return trace.WriteCSV(fmt.Sprintf("%s/fig5_val_%s.csv", dir, run.Label), []string{"samples", "mse"}, xs, ys)
	}
	for _, run := range r.Online {
		if err := dump(run); err != nil {
			return err
		}
	}
	return dump(r.Offline)
}
