package experiments

import (
	"fmt"
	"io"

	"melissa/internal/buffer"
	"melissa/internal/cluster"
	"melissa/internal/trace"
)

// Table1Row is one line of Table 1: a buffer (or the offline baseline) at a
// GPU count.
type Table1Row struct {
	Buffer         string
	GPUs           int
	GenerationH    float64 // offline only; 0 for online rows (—)
	TotalH         float64
	MinMSE         float64 // from the quality runs (normalized units)
	ThroughputSmps float64
	Samples        int
	Unique         int
}

// Table1Result reproduces Table 1: training and throughput performance for
// Offline/FIFO/FIRO/Reservoir across 1, 2 and 4 GPUs. Timing comes from
// the paper-scale cluster simulation; the MSE column from real training at
// the reduced quality scale.
type Table1Result struct {
	Scale Scale
	Rows  []Table1Row
}

// Table1 runs the full grid. When withQuality is false the MSE column is
// left at zero (used by quick tests; benches run the full version).
func Table1(scale Scale, withQuality bool) (*Table1Result, error) {
	ens := SmallPaperEnsemble()
	model := cluster.JeanZay()
	res := &Table1Result{Scale: scale}

	// Quality runs for the MSE column.
	type key struct {
		kind buffer.Kind
		gpus int
	}
	minMSE := map[key]float64{}
	offlineMSE := map[int]float64{}
	if withQuality {
		data, err := GenerateEnsemble(scale, scale.SimsSmall, 0)
		if err != nil {
			return nil, err
		}
		valSet, err := ValidationSet(scale)
		if err != nil {
			return nil, err
		}
		sched := paperFig5Schedule(scale)
		for _, kind := range []buffer.Kind{buffer.FIFOKind, buffer.FIROKind, buffer.ReservoirKind} {
			for _, gpus := range []int{1, 2, 4} {
				l, err := newLearner(scale, valSet, sched, false)
				if err != nil {
					return nil, err
				}
				if _, err := runOnlineQuality(smallTopology(scale, kind, gpus), data, l); err != nil {
					return nil, fmt.Errorf("table1 %s %dGPU: %w", kind, gpus, err)
				}
				minMSE[key{kind, gpus}] = l.MinValidation()
			}
		}
		for _, gpus := range []int{1, 2, 4} {
			l, err := newLearner(scale, valSet, sched, false)
			if err != nil {
				return nil, err
			}
			runOffline1Epoch(scale, data, l, gpus)
			offlineMSE[gpus] = l.MinValidation()
		}
	}

	// Offline timing: paper-scale dataset of 25,000 samples (100 GB), one
	// epoch, generation on 2,000 cores writing ~450 GB of raw step files.
	paperSamples := float64(ens.Simulations * ens.StepsPerSim)
	genSec := model.GenerationSec(ens.Simulations, ens.StepsPerSim, ens.CoresPerClient, ens.TotalCores, 450e9)
	for _, gpus := range []int{1, 2, 4} {
		thr := model.OfflineSamplesPerSec(gpus, ens.BatchSize)
		trainSec := paperSamples / thr
		res.Rows = append(res.Rows, Table1Row{
			Buffer:         "Offline",
			GPUs:           gpus,
			GenerationH:    genSec / 3600,
			TotalH:         (genSec + trainSec) / 3600,
			MinMSE:         offlineMSE[gpus],
			ThroughputSmps: thr,
			Samples:        int(paperSamples),
			Unique:         int(paperSamples),
		})
		for _, kind := range []buffer.Kind{buffer.FIFOKind, buffer.FIROKind, buffer.ReservoirKind} {
			run, err := ens.RunTiming(kind, gpus)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Table1Row{
				Buffer:         string(kind),
				GPUs:           gpus,
				TotalH:         run.TrainingEnd / 3600,
				MinMSE:         minMSE[key{kind, gpus}],
				ThroughputSmps: run.MeanThroughput(),
				Samples:        run.Samples,
				Unique:         run.Unique,
			})
		}
	}
	return res, nil
}

// Row fetches a row by buffer name and GPU count.
func (r *Table1Result) Row(buf string, gpus int) *Table1Row {
	for i := range r.Rows {
		if r.Rows[i].Buffer == buf && r.Rows[i].GPUs == gpus {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render prints the table in the paper's layout.
func (r *Table1Result) Render(w io.Writer) {
	tb := trace.NewTable("Table 1 — training and throughput by buffer × GPUs (timing at paper scale; MSE at quality scale)",
		"Buffer", "GPUs", "Generation(h)", "Total(h)", "MinMSE", "Throughput(samples/s)")
	for _, row := range r.Rows {
		gen := any("—")
		if row.GenerationH > 0 {
			gen = row.GenerationH
		}
		mse := any("—")
		if row.MinMSE > 0 {
			mse = row.MinMSE
		}
		tb.AddRow(row.Buffer, row.GPUs, gen, row.TotalH, mse, row.ThroughputSmps)
	}
	tb.Render(w)
}
