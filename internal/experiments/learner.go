package experiments

import (
	"melissa/internal/buffer"
	"melissa/internal/core"
	"melissa/internal/nn"
	"melissa/internal/opt"
	"melissa/internal/tensor"
)

// learner performs real gradient descent for the quality experiments, both
// inside the cluster simulator (online runs: its Step method is the
// OnTrainStep hook) and for the offline baselines. Multi-GPU data
// parallelism is applied in its mathematically equivalent form: the
// concatenation of the per-rank batches trained as one large batch — with
// equal rank batches, averaging per-rank MSE gradients is identical to the
// gradient of the concatenated batch.
type learner struct {
	scale Scale
	norm  core.Normalizer
	net   *nn.Network
	adam  *opt.Adam
	loss  *nn.MSELoss
	sched opt.Schedule

	valSet        *core.ValidationSet
	valEverySmpls int
	nextVal       int

	// Grow-on-demand batch storage plus reusable view headers, so the
	// per-batch assembly allocates nothing once the largest batch size
	// has been seen.
	inBuf, outBuf   *tensor.Matrix
	inView, outView tensor.Matrix

	batches    int
	samples    int
	trainCurve []core.LossPoint
	valCurve   []core.LossPoint
	occ        map[buffer.Key]int
}

// batchTensors returns rows-row views over the learner's reusable batch
// storage, growing it when a larger batch arrives.
func (l *learner) batchTensors(rows int) (in, out *tensor.Matrix) {
	if l.inBuf == nil || l.inBuf.Rows < rows {
		l.inBuf = tensor.New(rows, l.norm.InputDim())
		l.outBuf = tensor.New(rows, l.norm.OutputDim())
	}
	l.inBuf.ViewRows(&l.inView, 0, rows)
	l.outBuf.ViewRows(&l.outView, 0, rows)
	return &l.inView, &l.outView
}

func newLearner(scale Scale, valSet *core.ValidationSet, sched opt.Schedule, trackOcc bool) (*learner, error) {
	net, err := scale.ModelSpec().Build()
	if err != nil {
		return nil, err
	}
	l := &learner{
		scale:         scale,
		norm:          scale.CoreNormalizer(),
		net:           net,
		adam:          opt.NewAdam(1e-3),
		loss:          nn.NewMSELoss(),
		sched:         sched,
		valSet:        valSet,
		valEverySmpls: scale.ValidateEverySamples,
		nextVal:       scale.ValidateEverySamples,
	}
	if trackOcc {
		l.occ = make(map[buffer.Key]int)
	}
	return l, nil
}

// Step trains on the concatenation of the per-rank batches; it is shaped to
// plug directly into simrun.Options.OnTrainStep.
func (l *learner) Step(_ int, batches [][]buffer.Sample) {
	flat := batches[0]
	if len(batches) > 1 {
		flat = nil
		for _, b := range batches {
			flat = append(flat, b...)
		}
	}
	l.TrainBatch(flat)
}

// TrainBatch performs one forward/backward/update on a raw batch.
func (l *learner) TrainBatch(batch []buffer.Sample) {
	if len(batch) == 0 {
		return
	}
	in, out := l.batchTensors(len(batch))
	core.BuildBatch(l.norm, batch, in, out)

	l.net.ZeroGrad()
	pred := l.net.Forward(in)
	lossVal := l.loss.Forward(pred, out)
	l.net.Backward(l.loss.Backward(pred, out))
	if l.sched != nil {
		l.adam.SetLR(l.sched.LR(l.samples))
	}
	l.adam.StepFlat(l.net.FlatParams(), l.net.FlatGrads())

	l.batches++
	l.samples += len(batch)
	l.trainCurve = append(l.trainCurve, core.LossPoint{Batch: l.batches, Samples: l.samples, Value: lossVal})
	if l.occ != nil {
		for _, s := range batch {
			l.occ[s.Key()]++
		}
	}
	if l.valSet != nil && l.valEverySmpls > 0 && l.samples >= l.nextVal {
		l.Validate()
		for l.nextVal <= l.samples {
			l.nextVal += l.valEverySmpls
		}
	}
}

// Validate records one validation point now.
func (l *learner) Validate() float64 {
	v := core.Validate(l.net, l.valSet, 4*l.scale.BatchSize)
	l.valCurve = append(l.valCurve, core.LossPoint{Batch: l.batches, Samples: l.samples, Value: v})
	return v
}

// FinalValidation returns the last recorded validation loss, validating on
// demand when none was recorded yet.
func (l *learner) FinalValidation() float64 {
	if len(l.valCurve) == 0 {
		return l.Validate()
	}
	return l.valCurve[len(l.valCurve)-1].Value
}

// MinValidation returns the lowest recorded validation loss (Table 1's
// "Min. MSE" column).
func (l *learner) MinValidation() float64 {
	if len(l.valCurve) == 0 {
		return l.Validate()
	}
	min := l.valCurve[0].Value
	for _, p := range l.valCurve[1:] {
		if p.Value < min {
			min = p.Value
		}
	}
	return min
}

// Curve accessors.
func (l *learner) TrainCurve() []core.LossPoint { return l.trainCurve }
func (l *learner) ValCurve() []core.LossPoint   { return l.valCurve }
func (l *learner) Batches() int                 { return l.batches }
func (l *learner) Samples() int                 { return l.samples }
func (l *learner) Occurrences() map[buffer.Key]int {
	return l.occ
}

// paperFig4Schedule is the Figure 4 learning-rate schedule: "the learning
// rate, initially set to 1e-3, is halved every 1000 batches" — i.e. every
// 1000×batch samples at one GPU.
func paperFig4Schedule(scale Scale) opt.Schedule {
	return opt.Halving{Initial: 1e-3, EverySamples: 1000 * scale.BatchSize}
}

// paperFig5Schedule is the §4.5 schedule: halve every 10,000 samples with a
// 2.5e-4 floor, making GPU counts comparable. The sample budget is scaled
// relative to the paper's 25,000-sample ensemble so smaller presets see the
// same number of decay steps.
func paperFig5Schedule(scale Scale) opt.Schedule {
	paperEnsemble := 25000.0
	ours := float64(scale.SimsSmall * scale.StepsPerSim)
	every := int(10000 * ours / paperEnsemble)
	if every < 1 {
		every = 1
	}
	return opt.Halving{Initial: 1e-3, EverySamples: every, Min: 2.5e-4}
}
