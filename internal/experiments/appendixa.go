package experiments

import (
	"io"
	"math"

	"melissa/internal/buffer"
	"melissa/internal/trace"
)

// AppendixARow compares the measured mean residency of a sample in a full
// Reservoir (insertions until eviction) against the paper's closed form
// 𝔼[τ] = n − 1 (Appendix A).
type AppendixARow struct {
	Capacity  int
	Measured  float64
	Predicted float64
	RelError  float64
}

// AppendixAResult holds the sweep over capacities.
type AppendixAResult struct {
	Rows []AppendixARow
}

// AppendixA measures residency empirically: a Reservoir is filled, kept in
// the all-seen regime, and streamed with `inserts` further samples; each
// eviction's survival time is recorded.
func AppendixA(capacities []int, inserts int) *AppendixAResult {
	if len(capacities) == 0 {
		capacities = []int{16, 64, 256}
	}
	res := &AppendixAResult{}
	for _, n := range capacities {
		measured := measureResidency(n, inserts)
		predicted := float64(n - 1)
		res.Rows = append(res.Rows, AppendixARow{
			Capacity:  n,
			Measured:  measured,
			Predicted: predicted,
			RelError:  math.Abs(measured-predicted) / predicted,
		})
	}
	return res
}

func measureResidency(n, inserts int) float64 {
	r := buffer.NewReservoir(n, 0, uint64(n)*7919+13)
	insertedAt := make(map[buffer.Key]int)
	for i := 0; i < n; i++ {
		s := buffer.Sample{SimID: 0, Step: i}
		r.Put(s)
		insertedAt[s.Key()] = 0
	}
	markSeen := func() {
		for r.UnseenCount() > 0 {
			r.TryGet()
		}
	}
	markSeen()

	present := func() map[buffer.Key]bool {
		seen, unseen := r.Snapshot()
		out := make(map[buffer.Key]bool, len(seen)+len(unseen))
		for _, s := range seen {
			out[s.Key()] = true
		}
		for _, s := range unseen {
			out[s.Key()] = true
		}
		return out
	}

	var total float64
	var evictions int
	before := present()
	for i := 1; i <= inserts; i++ {
		s := buffer.Sample{SimID: 1, Step: i}
		r.Put(s)
		markSeen()
		after := present()
		for k := range before {
			if !after[k] {
				total += float64(i - insertedAt[k])
				evictions++
			}
		}
		insertedAt[s.Key()] = i
		before = after
	}
	if evictions == 0 {
		return 0
	}
	return total / float64(evictions)
}

// Render prints the comparison table.
func (r *AppendixAResult) Render(w io.Writer) {
	tb := trace.NewTable("Appendix A — expected Reservoir residency 𝔼[τ] = n−1",
		"Capacity n", "Measured mean", "Predicted n−1", "RelError")
	for _, row := range r.Rows {
		tb.AddRow(row.Capacity, row.Measured, row.Predicted, row.RelError)
	}
	tb.Render(w)
}
