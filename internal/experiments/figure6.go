package experiments

import (
	"fmt"
	"io"
	"os"

	"melissa/internal/buffer"
	"melissa/internal/dataset"
	"melissa/internal/trace"
)

// Figure6Result reproduces Figure 6 (and the quality half of Table 2):
// online Reservoir training on a large streamed ensemble versus offline
// multi-epoch training on a fixed small dataset read back from disk, both
// on 4 GPUs. The paper's finding: the offline run overfits (validation
// plateaus above the still-falling training loss) while online training on
// ever-fresh data keeps improving, ending with a validation loss improved
// by ~47%.
type Figure6Result struct {
	Scale   Scale
	Online  *QualityRun
	Offline *QualityRun
	// OfflineBytes is the on-disk size of the offline dataset.
	OfflineBytes int64
	// Improvement is 1 − online/offline final validation MSE.
	Improvement float64
}

// Figure6 runs both settings at the given scale. The offline baseline
// writes the small ensemble to disk (one binary file per simulation) and
// trains through the multi-worker loader for Scale.OfflineEpochs; the
// online run streams Scale.SimsLarge fresh simulations through the
// Reservoir on the cluster simulator.
func Figure6(scale Scale) (*Figure6Result, error) {
	valSet, err := ValidationSet(scale)
	if err != nil {
		return nil, err
	}
	sched := paperFig5Schedule(scale)
	res := &Figure6Result{Scale: scale}
	const gpus = 4

	// Offline: a fixed small ensemble, many epochs, data from disk. The
	// dataset is sized (Scale.OfflineSims) so that the reduced-capacity
	// model is in the same memorization regime as the paper's
	// 514M-parameter network on 25,000 samples.
	small, err := GenerateEnsemble(scale, scale.OfflineSims(), 0)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "melissa-fig6-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	norm := scale.Normalizer()
	for sim := 0; sim < small.Sims(); sim++ {
		w, err := dataset.Create(dir, sim, scale.StepsPerSim, norm.InputDim(), scale.FieldDim())
		if err != nil {
			return nil, err
		}
		for step := 1; step <= scale.StepsPerSim; step++ {
			s := small.Sample(sim, step)
			if err := w.WriteStep(s.Input, s.Output); err != nil {
				return nil, err
			}
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	ds, err := dataset.OpenDir(dir)
	if err != nil {
		return nil, err
	}
	defer ds.Close()
	res.OfflineBytes = ds.Bytes()

	offLearner, err := newLearner(scale, valSet, sched, false)
	if err != nil {
		return nil, err
	}
	loader := dataset.NewLoader(ds, scale.BatchSize*gpus, 8, scale.Seed^0xd15c)
	for epoch := 0; epoch < scale.OfflineEpochs; epoch++ {
		err := loader.Epoch(func(batch []buffer.Sample) error {
			offLearner.TrainBatch(batch)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("figure6 offline epoch %d: %w", epoch, err)
		}
	}
	res.Offline = newQualityRun(fmt.Sprintf("Offline-%depochs", scale.OfflineEpochs), offLearner)

	// Online: large fresh ensemble streamed through the Reservoir.
	large, err := GenerateEnsemble(scale, scale.SimsLarge, 0xb16)
	if err != nil {
		return nil, err
	}
	onLearner, err := newLearner(scale, valSet, sched, true)
	if err != nil {
		return nil, err
	}
	if _, err := runOnlineQuality(largeTopology(scale, gpus), large, onLearner); err != nil {
		return nil, fmt.Errorf("figure6 online: %w", err)
	}
	res.Online = newQualityRun("Online-Reservoir", onLearner)

	if res.Offline.FinalVal > 0 {
		res.Improvement = 1 - res.Online.FinalVal/res.Offline.FinalVal
	}
	return res, nil
}

// Render prints the comparison.
func (r *Figure6Result) Render(w io.Writer) {
	norm := r.Scale.Normalizer()
	tb := trace.NewTable("Figure 6 — online (large ensemble) vs offline (multi-epoch)",
		"Setting", "UniqueSamples", "SamplesTrained", "Batches", "FinalValMSE", "ValMSE(raw²)")
	off := r.Offline
	tb.AddRow(off.Label, r.Scale.OfflineSims()*r.Scale.StepsPerSim, off.Samples, off.Batches, off.FinalVal, norm.RawMSE(off.FinalVal))
	on := r.Online
	tb.AddRow(on.Label, on.Unique, on.Samples, on.Batches, on.FinalVal, norm.RawMSE(on.FinalVal))
	tb.Render(w)
	fmt.Fprintf(w, "online validation improvement over offline: %.1f%% (paper: 47%%)\n", 100*r.Improvement)
}

// CSV dumps both validation curves against batches.
func (r *Figure6Result) CSV(dir string) error {
	for _, run := range []*QualityRun{r.Online, r.Offline} {
		xs := make([]float64, len(run.Val))
		ys := make([]float64, len(run.Val))
		for i, p := range run.Val {
			xs[i] = float64(p.Batch)
			ys[i] = p.Value
		}
		if err := trace.WriteCSV(fmt.Sprintf("%s/fig6_val_%s.csv", dir, run.Label), []string{"batch", "mse"}, xs, ys); err != nil {
			return err
		}
	}
	return nil
}
