package experiments

import (
	"fmt"
	"io"

	"melissa/internal/buffer"
	"melissa/internal/cluster"
	"melissa/internal/simrun"
	"melissa/internal/trace"
)

// Table2Result reproduces Table 2: the headline comparison between offline
// multi-epoch training on a fixed 25,000-sample dataset and online
// Reservoir training on a 20,000-simulation (2M-sample, 8 TB) ensemble,
// both on 4 GPUs. Timing and volume come from the paper-scale cluster
// simulation; the MSE column reuses the Figure 6 quality runs.
type Table2Result struct {
	Scale Scale

	OnlineTotalH     float64
	OnlineThroughput float64
	OnlineUnique     int
	OnlineBytes      float64

	OfflineGenerationH float64
	OfflineTotalH      float64
	OfflineThroughput  float64
	OfflineUnique      int
	OfflineBytes       float64

	ThroughputRatio float64

	// Quality is the Figure 6 result the MSE column is read from (nil
	// when run without quality).
	Quality *Figure6Result
}

// paperOfflineEpochs is the §4.6 offline baseline epoch count.
const paperOfflineEpochs = 100

// Table2 runs the timing simulations (always) and the Figure 6 quality
// comparison (when withQuality).
func Table2(scale Scale, withQuality bool) (*Table2Result, error) {
	return table2Ensemble(LargePaperEnsemble(), scale, withQuality)
}

// table2Ensemble is Table2 with the online ensemble injected, so short-mode
// tests can drive the identical pipeline at TinyPaperEnsemble scale.
func table2Ensemble(large PaperEnsemble, scale Scale, withQuality bool) (*Table2Result, error) {
	model := cluster.JeanZay()
	res := &Table2Result{Scale: scale}

	// Online: the paper's 20,000 simulations on 5,120 cores, Reservoir,
	// 4 GPUs.
	opts := large.Options(buffer.ReservoirKind, 4)
	opts.LeanResult = true
	run, err := simrun.Run(opts)
	if err != nil {
		return nil, err
	}
	res.OnlineTotalH = run.TrainingEnd / 3600
	res.OnlineThroughput = run.MeanThroughput()
	res.OnlineUnique = run.Unique
	res.OnlineBytes = float64(run.Unique) * model.SampleBytes

	// Offline: Table 1's dataset trained for 100 epochs.
	small := SmallPaperEnsemble()
	samples := float64(small.Simulations * small.StepsPerSim)
	genSec := model.GenerationSec(small.Simulations, small.StepsPerSim, small.CoresPerClient, small.TotalCores, 450e9)
	thr := model.OfflineSamplesPerSec(4, small.BatchSize)
	trainSec := paperOfflineEpochs * samples / thr
	res.OfflineGenerationH = genSec / 3600
	res.OfflineTotalH = (genSec + trainSec) / 3600
	res.OfflineThroughput = thr
	res.OfflineUnique = int(samples)
	res.OfflineBytes = samples * model.SampleBytes
	res.ThroughputRatio = res.OnlineThroughput / res.OfflineThroughput

	if withQuality {
		q, err := Figure6(scale)
		if err != nil {
			return nil, err
		}
		res.Quality = q
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table2Result) Render(w io.Writer) {
	tb := trace.NewTable("Table 2 — offline vs online Reservoir at 4 GPUs (timing at paper scale)",
		"Setting", "Generation(h)", "Total(h)", "Dataset(GB)", "UniqueSamples", "MSE", "Throughput(samples/s)")
	offMSE, onMSE := any("—"), any("—")
	if r.Quality != nil {
		offMSE = r.Quality.Offline.FinalVal
		onMSE = r.Quality.Online.FinalVal
	}
	tb.AddRow("Offline (100 epochs)", r.OfflineGenerationH, r.OfflineTotalH, r.OfflineBytes/1e9, r.OfflineUnique, offMSE, r.OfflineThroughput)
	tb.AddRow("Reservoir (online)", "—", r.OnlineTotalH, r.OnlineBytes/1e9, r.OnlineUnique, onMSE, r.OnlineThroughput)
	tb.Render(w)
	fmt.Fprintf(w, "online/offline batch throughput ratio: %.1f× (paper: ≈12.5×)\n", r.ThroughputRatio)
	if r.Quality != nil {
		fmt.Fprintf(w, "online validation improvement: %.1f%% (paper: 47%%)\n", 100*r.Quality.Improvement)
	}
}
