package experiments

import (
	"io"

	"melissa/internal/buffer"
	"melissa/internal/cluster"
	"melissa/internal/des"
	"melissa/internal/scheduler"
	"melissa/internal/simrun"
	"melissa/internal/trace"
)

// Jean-Zay accounting used by the paper's conclusion (§5): "1 kh/core CPU =
// 6€, 1 kh/GPU V100 = 360€, 1TB (SSD storage) = 56€".
const (
	EuroPerCoreHour = 6.0 / 1000
	EuroPerGPUHour  = 360.0 / 1000
	EuroPerTB       = 56.0
)

// CostRow is one line of the §5 cost comparison.
type CostRow struct {
	Setting    string
	CPUEuro    float64
	GPUEuro    float64
	StorageEur float64
	TotalEuro  float64
	PaperEuro  float64 // the figure reported in §5 (0 = not reported)
}

// CostAnalysisResult reproduces the paper's cost accounting for the Table 2
// experiment: online training at scale vs offline generation+training, the
// repeated-offline case, and the hypothetical storage bill of materializing
// the online run's 8 TB dataset.
type CostAnalysisResult struct {
	Rows []CostRow
}

// CostAnalysis derives every cost from the same simulations that produce
// Table 2 (no new fitting): resource-hours × the paper's tariffs.
func CostAnalysis() (*CostAnalysisResult, error) {
	return costAnalysisEnsemble(LargePaperEnsemble())
}

// costAnalysisEnsemble is CostAnalysis with the online ensemble injected,
// so short-mode tests can smoke the pipeline at TinyPaperEnsemble scale.
func costAnalysisEnsemble(large PaperEnsemble) (*CostAnalysisResult, error) {
	model := cluster.JeanZay()

	// Online: the ensemble's cores for the whole run plus 4 GPUs.
	opts := large.Options(buffer.ReservoirKind, 4)
	opts.LeanResult = true
	run, err := simrun.Run(opts)
	if err != nil {
		return nil, err
	}
	// Table 2's resource column: clients on 5,120 cores; the training
	// server holds a 40-core, 4-GPU node for the whole run.
	const serverCores = 40
	onlineHours := run.TrainingEnd / 3600
	online := CostRow{
		Setting:   "Online Reservoir (Table 2)",
		CPUEuro:   (float64(large.TotalCores) + serverCores) * onlineHours * EuroPerCoreHour,
		GPUEuro:   4 * onlineHours * EuroPerGPUHour,
		PaperEuro: 63.8,
	}
	online.TotalEuro = online.CPUEuro + online.GPUEuro

	// Offline: generation on 2,000 cores, 100-epoch training on 4 GPUs,
	// compressed dataset (95.5 GB in the paper) stored on SSD.
	small := SmallPaperEnsemble()
	genSec := model.GenerationSec(small.Simulations, small.StepsPerSim, small.CoresPerClient, small.TotalCores, 450e9)
	genHours := genSec / 3600
	samples := float64(small.Simulations * small.StepsPerSim)
	trainHours := paperOfflineEpochs * samples / model.OfflineSamplesPerSec(4, small.BatchSize) / 3600
	datasetTB := samples * model.SampleBytes / 1e12
	offline := CostRow{
		Setting:    "Offline gen+train (100 epochs)",
		CPUEuro:    float64(small.TotalCores)*genHours*EuroPerCoreHour + serverCores*trainHours*EuroPerCoreHour,
		GPUEuro:    4 * trainHours * EuroPerGPUHour,
		StorageEur: datasetTB * EuroPerTB,
		PaperEuro:  49.1,
	}
	offline.TotalEuro = offline.CPUEuro + offline.GPUEuro + offline.StorageEur

	// Repeated offline training: the dataset already exists.
	repeat := CostRow{
		Setting:   "Offline re-train (no gen/storage)",
		CPUEuro:   serverCores * trainHours * EuroPerCoreHour,
		GPUEuro:   4 * trainHours * EuroPerGPUHour,
		PaperEuro: 41.16,
	}
	repeat.TotalEuro = repeat.CPUEuro + repeat.GPUEuro

	// Storing the online run's dataset offline: the paper's 8 TB bill.
	storage8TB := CostRow{
		Setting:    "Storage of the 8 TB online dataset",
		StorageEur: float64(run.Unique) * model.SampleBytes / 1e12 * EuroPerTB,
		PaperEuro:  480,
	}
	storage8TB.TotalEuro = storage8TB.StorageEur

	return &CostAnalysisResult{Rows: []CostRow{online, offline, repeat, storage8TB}}, nil
}

// Render prints the cost table with the paper's figures alongside.
func (r *CostAnalysisResult) Render(w io.Writer) {
	tb := trace.NewTable("§5 cost analysis (1 kh/core = 6€, 1 kh/GPU = 360€, 1 TB = 56€)",
		"Setting", "CPU €", "GPU €", "Storage €", "Total €", "Paper €")
	for _, row := range r.Rows {
		tb.AddRow(row.Setting, row.CPUEuro, row.GPUEuro, row.StorageEur, row.TotalEuro, row.PaperEuro)
	}
	tb.Render(w)
}

// ReservationRow is one strategy in the §3.1 reservation-order experiment.
type ReservationRow struct {
	Strategy   string
	GPUIdleH   float64
	CPUIdleH   float64
	WastedEuro float64
}

// ReservationOrder reproduces the heterogeneous-job scheduling lesson of
// §3.1: the workflow needs a GPU allocation (server) and a much larger CPU
// allocation (clients) from two independently-loaded partitions. Reserving
// GPUs first leaves them idle while the busy CPU partition queues the
// client job; reversing the order ("the most economical approach to
// preserve our compute hour budget") idles cheap CPU cores briefly instead.
// Partition congestion is simulated with background jobs on the DES
// scheduler; cpuBacklogHours controls how long the CPU queue is.
func ReservationOrder(cpuBacklogHours float64) ([]ReservationRow, error) {
	const (
		gpus     = 4
		cores    = 5120
		gpuWaitH = 0.05 // lightly loaded GPU partition
	)
	runStrategy := func(gpuFirst bool) ReservationRow {
		sim := des.New()
		gpuPart := scheduler.New(sim, gpus)
		cpuPart := scheduler.New(sim, cores)

		// Congestion: a backlog job occupies the full CPU partition for
		// cpuBacklogHours, and a small one delays the GPU partition.
		cpuPart.Submit(cores, func(release func()) {
			sim.After(cpuBacklogHours*3600, release)
		})
		gpuPart.Submit(gpus, func(release func()) {
			sim.After(gpuWaitH*3600, release)
		})

		var gpuStart, cpuStart des.Time = -1, -1
		done := func() bool { return gpuStart >= 0 && cpuStart >= 0 }
		_ = done
		if gpuFirst {
			gpuPart.Submit(gpus, func(release func()) {
				gpuStart = sim.Now()
				cpuPart.Submit(cores, func(release2 func()) {
					cpuStart = sim.Now()
					release2()
					release()
				})
			})
		} else {
			cpuPart.Submit(cores, func(release func()) {
				cpuStart = sim.Now()
				gpuPart.Submit(gpus, func(release2 func()) {
					gpuStart = sim.Now()
					release2()
					release()
				})
			})
		}
		sim.Run()

		row := ReservationRow{Strategy: "CPU first"}
		if gpuFirst {
			row.Strategy = "GPU first"
		}
		if gpuStart >= 0 && cpuStart > gpuStart {
			row.GPUIdleH = (cpuStart - gpuStart) / 3600
		}
		if cpuStart >= 0 && gpuStart > cpuStart {
			row.CPUIdleH = (gpuStart - cpuStart) / 3600
		}
		row.WastedEuro = row.GPUIdleH*float64(gpus)*EuroPerGPUHour + row.CPUIdleH*float64(cores)*EuroPerCoreHour
		return row
	}
	return []ReservationRow{runStrategy(true), runStrategy(false)}, nil
}

// RenderReservation prints the comparison.
func RenderReservation(w io.Writer, rows []ReservationRow) {
	tb := trace.NewTable("§3.1 reservation order on loaded partitions",
		"Strategy", "GPU idle (h)", "CPU idle (h)", "Wasted €")
	for _, row := range rows {
		tb.AddRow(row.Strategy, row.GPUIdleH, row.CPUIdleH, row.WastedEuro)
	}
	tb.Render(w)
}
