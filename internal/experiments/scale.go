// Package experiments reproduces every table and figure of the paper's
// evaluation (§4). Timing experiments (Figure 2, the throughput columns of
// Tables 1-2) run at the paper's full scale on the discrete-event cluster
// simulator with the calibrated Jean-Zay performance model; training
// quality experiments (Figures 4-6, the MSE columns) run real gradient
// descent on solver-generated data at a reduced grid size, preserving the
// ratios that drive the paper's conclusions (clients : GPUs : buffer
// capacity : dataset multiplicity). EXPERIMENTS.md records paper-vs-
// measured values for each.
package experiments

import (
	"fmt"

	"melissa"
	"melissa/internal/buffer"
	"melissa/internal/core"
	"melissa/internal/sampling"
	"melissa/internal/solver"
)

// Scale selects the size of the quality experiments.
type Scale struct {
	Name string

	// Problem selects the simulation scenario the quality experiments
	// train on; nil means the paper's heat equation. All presets are
	// problem-agnostic: the ensemble generator, the learner and the
	// normalization all route through the Problem API.
	Problem melissa.Problem

	GridN       int // solver grid side (paper: 1000)
	StepsPerSim int // time steps per simulation (paper: 100)
	Dt          float64

	SimsSmall int // the "250-simulation" ensemble analogue
	SimsLarge int // the "20,000-simulation" ensemble analogue (Fig 6)
	// SimsOffline sizes the fixed dataset of the Figure 6 / Table 2
	// offline baseline (0 = SimsSmall). The paper's offline run overfits
	// because its 514M-parameter model can memorize the 25,000-sample
	// dataset over 100 epochs; at reduced model capacity the equivalent
	// memorization regime needs a proportionally smaller dataset — the
	// offline-data-size ablation sweeps the crossover.
	SimsOffline int
	ValSims     int // held-out validation simulations (paper: 10)

	Hidden    []int // MLP hidden widths (paper: 256, 256)
	BatchSize int   // per GPU (paper: 10)

	BufferCapacity  int // paper: 6,000 ≈ a quarter of the small ensemble
	BufferThreshold int // paper: 1,000

	OfflineEpochs int // Fig 6 offline baseline (paper: 100)

	ValidateEverySamples int // validation cadence in samples (paper: 100 batches × 10)

	Seed uint64
}

// Tiny is the unit-test scale: everything completes in well under a second.
func Tiny() Scale {
	return Scale{
		Name:  "tiny",
		GridN: 8, StepsPerSim: 10, Dt: 0.01,
		SimsSmall: 10, SimsLarge: 30, ValSims: 3,
		Hidden: []int{16}, BatchSize: 5,
		BufferCapacity: 50, BufferThreshold: 10,
		OfflineEpochs:        3,
		ValidateEverySamples: 100,
		Seed:                 2023,
	}
}

// Default is the bench scale: quality experiments take seconds to a couple
// of minutes on a laptop core while keeping the paper's ratios
// (capacity ≈ ¼ of the small ensemble, threshold ≈ capacity/6, large
// ensemble = 10× small).
func Default() Scale {
	return Scale{
		Name:  "default",
		GridN: 32, StepsPerSim: 50, Dt: 0.01,
		SimsSmall: 100, SimsLarge: 1000, SimsOffline: 15, ValSims: 10,
		Hidden: []int{128, 128}, BatchSize: 10,
		BufferCapacity: 1250, BufferThreshold: 200,
		OfflineEpochs:        133, // ≈100k offline samples, matching the online budget
		ValidateEverySamples: 1000,
		Seed:                 2023,
	}
}

// Large pushes closer to the paper's ensemble counts; minutes per figure.
func Large() Scale {
	return Scale{
		Name:  "large",
		GridN: 32, StepsPerSim: 100, Dt: 0.01,
		SimsSmall: 250, SimsLarge: 2000, SimsOffline: 30, ValSims: 10,
		Hidden: []int{256, 256}, BatchSize: 10,
		BufferCapacity: 6000, BufferThreshold: 1000,
		OfflineEpochs:        70,
		ValidateEverySamples: 1000,
		Seed:                 2023,
	}
}

// ScaleByName resolves a preset.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny(), nil
	case "default", "":
		return Default(), nil
	case "large":
		return Large(), nil
	default:
		return Scale{}, fmt.Errorf("experiments: unknown scale %q (tiny|default|large)", name)
	}
}

// problem resolves the scenario, defaulting to the paper's heat equation.
func (s Scale) problem() melissa.Problem {
	if s.Problem != nil {
		return s.Problem
	}
	return melissa.Heat()
}

// Config returns the melissa configuration the scale's problem geometry is
// evaluated against.
func (s Scale) Config() melissa.Config {
	return melissa.Config{
		Problem:     s.problem(),
		GridN:       s.GridN,
		StepsPerSim: s.StepsPerSim,
		Dt:          s.Dt,
		Hidden:      s.Hidden,
	}
}

// FieldDim returns the flattened field length (channels × grid points).
func (s Scale) FieldDim() int {
	dim := 1
	for _, d := range s.problem().FieldShape(s.Config()) {
		dim *= d
	}
	return dim
}

// OfflineSims returns the Figure 6 offline dataset size.
func (s Scale) OfflineSims() int {
	if s.SimsOffline > 0 {
		return s.SimsOffline
	}
	return s.SimsSmall
}

// Normalizer returns the problem's normalizer for this scale.
func (s Scale) Normalizer() melissa.Normalizer {
	return s.problem().Normalizer(s.Config())
}

// CoreNormalizer adapts the problem normalizer to the trainer-side sample
// interface.
func (s Scale) CoreNormalizer() core.Normalizer {
	return core.AdaptNormalizer(s.Normalizer())
}

// ModelSpec returns the surrogate architecture for this scale.
func (s Scale) ModelSpec() core.ModelSpec {
	norm := s.Normalizer()
	return core.ModelSpec{
		InputDim:  norm.InputDim(),
		Hidden:    s.Hidden,
		OutputDim: norm.OutputDim(),
		Seed:      s.Seed,
	}
}

// BufferConfig returns the buffer configuration for a policy kind.
func (s Scale) BufferConfig(kind buffer.Kind) buffer.Config {
	return buffer.Config{Kind: kind, Capacity: s.BufferCapacity, Threshold: s.BufferThreshold, Seed: s.Seed}
}

// EnsembleData holds solver-generated trajectories for quality experiments.
type EnsembleData struct {
	Scale Scale
	// Params[sim] is the physical parameter vector, in the problem's
	// canonical ParamNames order.
	Params [][]float64
	// fields[sim][step-1] is the float32 field of (sim, step).
	fields [][][]float32
}

// GenerateEnsemble runs the scale's problem solver for sims parameter
// draws from the seeded Monte Carlo design over the problem's parameter
// box (seedOffset decorrelates training vs validation ensembles).
func GenerateEnsemble(scale Scale, sims int, seedOffset uint64) (*EnsembleData, error) {
	prob := scale.problem()
	min, max := prob.ParamBounds()
	space, err := sampling.NewSpace(min, max)
	if err != nil {
		return nil, fmt.Errorf("experiments: problem %q bounds: %w", prob.Name(), err)
	}
	design := sampling.NewMonteCarlo(space.Dim(), scale.Seed+seedOffset)
	e := &EnsembleData{
		Scale:  scale,
		Params: make([][]float64, sims),
		fields: make([][][]float32, sims),
	}
	cfg := scale.Config()
	for i := 0; i < sims; i++ {
		params := space.Scale(design.Next())
		e.Params[i] = params
		sim, err := prob.NewSimulator(cfg, params)
		if err != nil {
			return nil, err
		}
		e.fields[i] = make([][]float32, scale.StepsPerSim)
		err = solver.Run(sim, scale.StepsPerSim, func(step int, field []float64) {
			f := make([]float32, len(field))
			for j, v := range field {
				f[j] = float32(v)
			}
			e.fields[i][step-1] = f
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s sim %d: %w", prob.Name(), i, err)
		}
	}
	return e, nil
}

// Sims returns the ensemble size.
func (e *EnsembleData) Sims() int { return len(e.fields) }

// Sample assembles the raw training sample for (simID, 1-based step): the
// parameter vector plus the physical time, then the flattened field — the
// same wire layout the streaming clients produce.
func (e *EnsembleData) Sample(simID, step int) buffer.Sample {
	p := e.Params[simID]
	input := make([]float32, len(p)+1)
	for i, v := range p {
		input[i] = float32(v)
	}
	input[len(p)] = float32(float64(step) * e.Scale.Dt)
	return buffer.Sample{SimID: simID, Step: step, Input: input, Output: e.fields[simID][step-1]}
}

// AllSamples flattens the ensemble in (sim, step) order.
func (e *EnsembleData) AllSamples() []buffer.Sample {
	out := make([]buffer.Sample, 0, e.Sims()*e.Scale.StepsPerSim)
	for sim := 0; sim < e.Sims(); sim++ {
		for step := 1; step <= e.Scale.StepsPerSim; step++ {
			out = append(out, e.Sample(sim, step))
		}
	}
	return out
}

// ValidationSet generates the held-out set: ValSims fresh simulations
// "generated offline and never seen during training" (§4.4).
func ValidationSet(scale Scale) (*core.ValidationSet, error) {
	val, err := GenerateEnsemble(scale, scale.ValSims, 0x5eed0ff5)
	if err != nil {
		return nil, err
	}
	return core.NewValidationSet(scale.CoreNormalizer(), val.AllSamples()), nil
}
