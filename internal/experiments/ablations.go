package experiments

import (
	"io"

	"melissa/internal/buffer"
	"melissa/internal/cluster"
	"melissa/internal/trace"
)

// Ablations probe the design choices DESIGN.md calls out: the Reservoir's
// capacity and threshold, and the all-reduce cost model behind multi-GPU
// scaling. All run at paper scale on the cluster simulator.

// AblationCapacityRow records one capacity setting.
type AblationCapacityRow struct {
	Capacity   int
	Throughput float64
	Repetition float64 // samples consumed / unique samples
	PeakPop    int
}

// AblationCapacity sweeps the Reservoir capacity (paper default: 6,000).
// Larger buffers store more history and allow more repetition, raising
// throughput at the cost of memory; the sweep locates the knee.
func AblationCapacity(capacities []int) ([]AblationCapacityRow, error) {
	if len(capacities) == 0 {
		capacities = []int{750, 1500, 3000, 6000, 12000, 24000}
	}
	ens := SmallPaperEnsemble()
	var rows []AblationCapacityRow
	for _, c := range capacities {
		ens.Capacity = c
		if ens.Threshold >= c {
			ens.Threshold = c / 6
		}
		run, err := ens.RunTiming(buffer.ReservoirKind, 1)
		if err != nil {
			return nil, err
		}
		peak := 0
		for _, tp := range run.Trace {
			if tp.Total > peak {
				peak = tp.Total
			}
		}
		rows = append(rows, AblationCapacityRow{
			Capacity:   c,
			Throughput: run.MeanThroughput(),
			Repetition: float64(run.Samples) / float64(run.Unique),
			PeakPop:    peak,
		})
	}
	return rows, nil
}

// AblationThresholdRow records one threshold setting.
type AblationThresholdRow struct {
	Threshold    int
	Throughput   float64
	FirstBatchAt float64 // virtual seconds until the first training step
}

// AblationThreshold sweeps the extraction threshold (paper default: 1,000).
// A higher threshold delays the first batches (more diverse early training)
// but postpones GPU work.
func AblationThreshold(thresholds []int) ([]AblationThresholdRow, error) {
	if len(thresholds) == 0 {
		thresholds = []int{0, 100, 500, 1000, 2000, 4000}
	}
	ens := SmallPaperEnsemble()
	var rows []AblationThresholdRow
	for _, th := range thresholds {
		ens.Threshold = th
		run, err := ens.RunTiming(buffer.ReservoirKind, 1)
		if err != nil {
			return nil, err
		}
		first := 0.0
		if len(run.Steps) > 0 {
			first = run.Steps[0].T
		}
		rows = append(rows, AblationThresholdRow{
			Threshold:    th,
			Throughput:   run.MeanThroughput(),
			FirstBatchAt: first,
		})
	}
	return rows, nil
}

// AblationEvictionRow contrasts the Reservoir's seen-only eviction with a
// uniform-eviction ablation on the same workload.
type AblationEvictionRow struct {
	Policy     string
	Unique     int     // distinct samples that reached training
	Produced   int     // samples the ensemble generated
	Coverage   float64 // Unique / Produced
	Throughput float64
}

// AblationEviction runs the paper-scale ensemble through the real
// Reservoir and through the UniformEvict ablation. The Reservoir guarantees
// full coverage — "avoiding discarding any unseen data" (§3.2.3) — by
// stalling production instead of evicting unseen samples; the ablation
// keeps producers unblocked but silently loses data.
func AblationEviction() ([]AblationEvictionRow, error) {
	// Overproduction regime: 400 concurrent clients feed a single GPU
	// (production ≈ 427 samples/s vs consumption ≈ 148), so the buffer is
	// persistently full and eviction pressure is constant.
	ens := SmallPaperEnsemble()
	ens.TotalCores = 8000
	ens.Series = nil
	produced := ens.Simulations * ens.StepsPerSim
	var rows []AblationEvictionRow
	for _, kind := range []buffer.Kind{buffer.ReservoirKind, buffer.UniformEvictKind} {
		run, err := ens.RunTiming(kind, 1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationEvictionRow{
			Policy:     string(kind),
			Unique:     run.Unique,
			Produced:   produced,
			Coverage:   float64(run.Unique) / float64(produced),
			Throughput: run.MeanThroughput(),
		})
	}
	return rows, nil
}

// AblationOfflineDataRow records one offline-dataset size in the Figure 6
// crossover sweep.
type AblationOfflineDataRow struct {
	OfflineSims    int
	OfflineSamples int
	Epochs         int
	OfflineVal     float64
	OnlineVal      float64
	Improvement    float64 // 1 − online/offline; positive = online wins
}

// AblationOfflineData sweeps the offline baseline's dataset size at a fixed
// training budget, locating the crossover the paper's Figure 6 sits beyond:
// when the model can memorize the dataset over many epochs, offline
// overfits and online training on fresh data wins; with abundant offline
// data the multi-epoch baseline catches up. The online run is shared across
// rows.
func AblationOfflineData(scale Scale, simCounts []int) ([]AblationOfflineDataRow, error) {
	if len(simCounts) == 0 {
		simCounts = []int{5, 15, 50}
	}
	budget := scale.OfflineEpochs * scale.OfflineSims() * scale.StepsPerSim
	if budget <= 0 {
		budget = 100000
	}

	valSet, err := ValidationSet(scale)
	if err != nil {
		return nil, err
	}
	sched := paperFig5Schedule(scale)

	// One shared online reference run.
	large, err := GenerateEnsemble(scale, scale.SimsLarge, 0xb16)
	if err != nil {
		return nil, err
	}
	onLearner, err := newLearner(scale, valSet, sched, false)
	if err != nil {
		return nil, err
	}
	if _, err := runOnlineQuality(largeTopology(scale, 4), large, onLearner); err != nil {
		return nil, err
	}
	onlineVal := onLearner.FinalValidation()

	var rows []AblationOfflineDataRow
	for _, sims := range simCounts {
		data, err := GenerateEnsemble(scale, sims, 0)
		if err != nil {
			return nil, err
		}
		samples := sims * scale.StepsPerSim
		epochs := budget / samples
		if epochs < 1 {
			epochs = 1
		}
		l, err := newLearner(scale, valSet, sched, false)
		if err != nil {
			return nil, err
		}
		all := data.AllSamples()
		for e := 0; e < epochs; e++ {
			shuffleOffline(scale, all, uint64(e))
			step := scale.BatchSize * 4
			for start := 0; start < len(all); start += step {
				end := start + step
				if end > len(all) {
					end = len(all)
				}
				l.TrainBatch(all[start:end])
			}
		}
		offVal := l.FinalValidation()
		rows = append(rows, AblationOfflineDataRow{
			OfflineSims:    sims,
			OfflineSamples: samples,
			Epochs:         epochs,
			OfflineVal:     offVal,
			OnlineVal:      onlineVal,
			Improvement:    1 - onlineVal/offVal,
		})
	}
	return rows, nil
}

// RenderOfflineDataAblation prints the crossover sweep.
func RenderOfflineDataAblation(w io.Writer, rows []AblationOfflineDataRow) {
	tb := trace.NewTable("Ablation — Figure 6 crossover vs offline dataset size (fixed budget, 4 GPUs)",
		"OfflineSims", "Samples", "Epochs", "OfflineValMSE", "OnlineValMSE", "OnlineImprovement")
	for _, r := range rows {
		tb.AddRow(r.OfflineSims, r.OfflineSamples, r.Epochs, r.OfflineVal, r.OnlineVal, r.Improvement)
	}
	tb.Render(w)
}

// AblationAllReduceRow compares modeled multi-GPU throughput against ideal
// linear scaling, isolating the gradient-synchronization cost.
type AblationAllReduceRow struct {
	GPUs       int
	StepSec    float64
	Throughput float64
	Ideal      float64
	Efficiency float64
}

// AblationAllReduce evaluates the ring all-reduce model for 1–8 GPUs.
func AblationAllReduce() []AblationAllReduceRow {
	m := cluster.JeanZay()
	base := m.GPUBoundSamplesPerSec(1, 10)
	var rows []AblationAllReduceRow
	for _, n := range []int{1, 2, 4, 8} {
		thr := m.GPUBoundSamplesPerSec(n, 10)
		ideal := base * float64(n)
		rows = append(rows, AblationAllReduceRow{
			GPUs:       n,
			StepSec:    m.TrainStepSec(n),
			Throughput: thr,
			Ideal:      ideal,
			Efficiency: thr / ideal,
		})
	}
	return rows
}

// RenderEvictionAblation prints the eviction-policy comparison.
func RenderEvictionAblation(w io.Writer, rows []AblationEvictionRow) {
	tb := trace.NewTable("Ablation — eviction policy under overproduction (400 clients, 1 GPU)",
		"Policy", "Unique", "Produced", "Coverage", "Throughput(samples/s)")
	for _, r := range rows {
		tb.AddRow(r.Policy, r.Unique, r.Produced, r.Coverage, r.Throughput)
	}
	tb.Render(w)
}

// RenderAblations prints all three tables.
func RenderAblations(w io.Writer, caps []AblationCapacityRow, ths []AblationThresholdRow, ars []AblationAllReduceRow) {
	tb := trace.NewTable("Ablation — Reservoir capacity (paper: 6,000)",
		"Capacity", "Throughput(samples/s)", "Repetition", "PeakPopulation")
	for _, r := range caps {
		tb.AddRow(r.Capacity, r.Throughput, r.Repetition, r.PeakPop)
	}
	tb.Render(w)

	tb = trace.NewTable("Ablation — Reservoir threshold (paper: 1,000)",
		"Threshold", "Throughput(samples/s)", "FirstBatch(s)")
	for _, r := range ths {
		tb.AddRow(r.Threshold, r.Throughput, r.FirstBatchAt)
	}
	tb.Render(w)

	tb = trace.NewTable("Ablation — ring all-reduce scaling",
		"GPUs", "StepTime(s)", "Throughput(samples/s)", "Ideal", "Efficiency")
	for _, r := range ars {
		tb.AddRow(r.GPUs, r.StepSec, r.Throughput, r.Ideal, r.Efficiency)
	}
	tb.Render(w)
}
