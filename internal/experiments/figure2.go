package experiments

import (
	"io"

	"melissa/internal/buffer"
	"melissa/internal/simrun"
	"melissa/internal/stats"
	"melissa/internal/trace"
)

// Figure2Result reproduces Figure 2: training throughput and buffer
// population over time for the FIFO, FIRO and Reservoir buffers on one GPU,
// with the ensemble submitted in three client series (100/100/50).
type Figure2Result struct {
	Ensemble PaperEnsemble
	Runs     map[buffer.Kind]*simrun.Result
	Kinds    []buffer.Kind
}

// Figure2 runs the §4.3 throughput experiment at full paper scale on the
// cluster simulator.
func Figure2() (*Figure2Result, error) {
	ens := SmallPaperEnsemble()
	res := &Figure2Result{
		Ensemble: ens,
		Runs:     make(map[buffer.Kind]*simrun.Result),
		Kinds:    []buffer.Kind{buffer.FIFOKind, buffer.FIROKind, buffer.ReservoirKind},
	}
	for _, kind := range res.Kinds {
		r, err := ens.RunTiming(kind, 1)
		if err != nil {
			return nil, err
		}
		res.Runs[kind] = r
	}
	return res, nil
}

// Render prints the summary table and decimated series in the layout of
// Figure 2 (top: throughput; bottom: population).
func (r *Figure2Result) Render(w io.Writer) {
	tb := trace.NewTable("Figure 2 — throughput per buffer (1 GPU, series 100/100/50)",
		"Buffer", "MeanThroughput(samples/s)", "PeakPopulation", "TrainingEnd(s)", "Samples", "Unique")
	for _, kind := range r.Kinds {
		run := r.Runs[kind]
		peak := 0
		for _, tp := range run.Trace {
			if tp.Total > peak {
				peak = tp.Total
			}
		}
		tb.AddRow(string(kind), run.MeanThroughput(), peak, run.TrainingEnd, run.Samples, run.Unique)
	}
	tb.Render(w)

	for _, kind := range r.Kinds {
		run := r.Runs[kind]
		times, rates := run.ThroughputSeries(10)
		dx, dy := stats.Decimate(times, rates, 16)
		st := trace.NewTable("throughput(t) — "+string(kind), "t(s)", "samples/s")
		for i := range dx {
			st.AddRow(dx[i], dy[i])
		}
		st.Render(w)
	}
}

// CSV writes the full-resolution series for plotting.
func (r *Figure2Result) CSV(dir string) error {
	for _, kind := range r.Kinds {
		run := r.Runs[kind]
		times, rates := run.ThroughputSeries(10)
		if err := trace.WriteCSV(dir+"/fig2_throughput_"+string(kind)+".csv", []string{"t", "samples_per_s"}, times, rates); err != nil {
			return err
		}
		pt := make([]float64, len(run.Trace))
		pop := make([]float64, len(run.Trace))
		for i, tp := range run.Trace {
			pt[i] = tp.T
			pop[i] = float64(tp.Total)
		}
		if err := trace.WriteCSV(dir+"/fig2_population_"+string(kind)+".csv", []string{"t", "population"}, pt, pop); err != nil {
			return err
		}
	}
	return nil
}

// MeanThroughput returns a run's mean throughput, for assertions.
func (r *Figure2Result) MeanThroughput(kind buffer.Kind) float64 {
	return r.Runs[kind].MeanThroughput()
}
