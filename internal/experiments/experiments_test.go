package experiments

import (
	"strings"
	"testing"

	"melissa"
	"melissa/internal/buffer"
)

func TestScalePresets(t *testing.T) {
	for _, name := range []string{"tiny", "default", "large"} {
		s, err := ScaleByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != name {
			t.Fatalf("name %q", s.Name)
		}
		if s.FieldDim() != s.GridN*s.GridN {
			t.Fatal("field dim")
		}
		if s.BufferThreshold >= s.BufferCapacity {
			t.Fatalf("%s: threshold %d ≥ capacity %d", name, s.BufferThreshold, s.BufferCapacity)
		}
		if s.SimsLarge <= s.SimsSmall {
			t.Fatalf("%s: large ensemble not larger", name)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Fatal("expected error")
	}
	if s, _ := ScaleByName(""); s.Name != "default" {
		t.Fatal("empty name should default")
	}
}

func TestGenerateEnsemble(t *testing.T) {
	scale := Tiny()
	e, err := GenerateEnsemble(scale, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Sims() != 4 {
		t.Fatalf("sims %d", e.Sims())
	}
	s := e.Sample(2, 5)
	if s.SimID != 2 || s.Step != 5 {
		t.Fatalf("sample key %+v", s.Key())
	}
	if len(s.Input) != 6 || len(s.Output) != scale.FieldDim() {
		t.Fatalf("sample dims %d/%d", len(s.Input), len(s.Output))
	}
	// Physical sanity: field temperatures within the sampled range.
	for _, v := range s.Output {
		if v < 99 || v > 501 {
			t.Fatalf("field value %v outside design range", v)
		}
	}
	all := e.AllSamples()
	if len(all) != 4*scale.StepsPerSim {
		t.Fatalf("all samples %d", len(all))
	}
	// Determinism: same seeds, same data.
	e2, err := GenerateEnsemble(scale, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2 := e2.Sample(2, 5)
	for i := range s.Output {
		if s.Output[i] != s2.Output[i] {
			t.Fatal("ensemble generation not deterministic")
		}
	}
	// Different offsets decorrelate.
	e3, err := GenerateEnsemble(scale, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range e.Params[0] {
		if e3.Params[0][i] != e.Params[0][i] {
			same = false
		}
	}
	if same {
		t.Fatal("seed offset had no effect")
	}
}

func TestValidationSetShape(t *testing.T) {
	scale := Tiny()
	vs, err := ValidationSet(scale)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Len() != scale.ValSims*scale.StepsPerSim {
		t.Fatalf("validation size %d", vs.Len())
	}
}

func TestFigure2Shapes(t *testing.T) {
	res, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	fifo := res.MeanThroughput(buffer.FIFOKind)
	firo := res.MeanThroughput(buffer.FIROKind)
	reservoir := res.MeanThroughput(buffer.ReservoirKind)

	// Paper Table 1 row shape: Reservoir ≈ 147.6 > FIFO ≈ 118 ≈ FIRO ≈ 114.
	if reservoir <= fifo || reservoir <= firo {
		t.Fatalf("Reservoir %.1f must beat FIFO %.1f and FIRO %.1f", reservoir, fifo, firo)
	}
	if reservoir < 130 || reservoir > 160 {
		t.Fatalf("Reservoir throughput %.1f outside paper band [130,160]", reservoir)
	}
	// Paper reports 118; our mean includes the inter-series idle gaps, so
	// the band extends below (production rate ≈ 107 minus gap time).
	if fifo < 70 || fifo > 135 {
		t.Fatalf("FIFO throughput %.1f outside band [70,135]", fifo)
	}

	// Every sample produced is consumed at least once; FIFO exactly once.
	for _, kind := range res.Kinds {
		if got := res.Runs[kind].Unique; got != 25000 {
			t.Fatalf("%s unique %d, want 25000", kind, got)
		}
	}
	if res.Runs[buffer.FIFOKind].Samples != 25000 {
		t.Fatal("FIFO must consume each sample exactly once")
	}
	if res.Runs[buffer.ReservoirKind].Samples <= 25000 {
		t.Fatal("Reservoir must repeat samples")
	}

	// Reservoir population approaches capacity; FIRO stays near threshold.
	peak := func(kind buffer.Kind) int {
		p := 0
		for _, tp := range res.Runs[kind].Trace {
			if tp.Total > p {
				p = tp.Total
			}
		}
		return p
	}
	if p := peak(buffer.ReservoirKind); p < 5500 {
		t.Fatalf("Reservoir peak population %d, want ≈6000", p)
	}
	if p := peak(buffer.FIROKind); p > 2500 {
		t.Fatalf("FIRO peak population %d, should hover near threshold 1000", p)
	}

	// FIFO throughput dips at the series transitions (§4.3): the minimum
	// windowed throughput is well below the steady rate.
	times, rates := res.Runs[buffer.FIFOKind].ThroughputSeries(10)
	if len(times) == 0 {
		t.Fatal("no throughput series")
	}
	min, max := rates[0], rates[0]
	for _, r := range rates {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if min > 0.7*max {
		t.Fatalf("FIFO throughput never dipped (min %.1f, max %.1f); series gaps not visible", min, max)
	}

	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Reservoir") {
		t.Fatal("render missing rows")
	}
}

func TestFigure3Shapes(t *testing.T) {
	res, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	// Repetition grows with GPU count at fixed production.
	if !(res.MeanOcc[1] < res.MeanOcc[2] && res.MeanOcc[2] < res.MeanOcc[4]) {
		t.Fatalf("mean occurrences not increasing: %v", res.MeanOcc)
	}
	// Paper: most samples seen a couple of times, rarely more than ~8
	// at 1 GPU.
	h1 := res.Histograms[1]
	if h1.Total() != 25000 {
		t.Fatalf("1-GPU histogram total %d", h1.Total())
	}
	if h1.Max() > 16 {
		t.Fatalf("1-GPU max occurrence %d, expected small tail", h1.Max())
	}
	if res.MeanOcc[1] < 1.05 || res.MeanOcc[1] > 3 {
		t.Fatalf("1-GPU mean occurrence %.2f outside plausible band", res.MeanOcc[1])
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Occurrences") {
		t.Fatal("render broken")
	}
}

func TestFigure4TinyMechanics(t *testing.T) {
	scale := Tiny()
	res, err := Figure4(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("runs %d", len(res.Runs))
	}
	unique := scale.SimsSmall * scale.StepsPerSim
	for _, run := range res.Runs {
		if run.Batches == 0 || len(run.Val) == 0 {
			t.Fatalf("%s: empty run", run.Label)
		}
		if run.FinalVal <= 0 {
			t.Fatalf("%s: non-positive validation %v", run.Label, run.FinalVal)
		}
		if run.Label != "Offline-1epoch" && run.Unique != unique {
			t.Fatalf("%s: unique %d, want %d", run.Label, run.Unique, unique)
		}
	}
	// FIFO and offline see each sample exactly once.
	if res.Run("FIFO").Samples != unique {
		t.Fatal("FIFO sample count")
	}
	// Reservoir trains on more batches via repetition.
	if res.Run("Reservoir").Samples <= unique {
		t.Fatal("Reservoir did not repeat")
	}
	// Reservoir's extra optimization steps give it the lowest loss here.
	if res.Run("Reservoir").FinalVal >= res.Run("FIFO").FinalVal {
		t.Fatal("Reservoir should beat FIFO at tiny scale")
	}
}

func TestFigure6TinyMechanics(t *testing.T) {
	res, err := Figure6(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Online.Unique <= Tiny().SimsSmall*Tiny().StepsPerSim {
		t.Fatal("online must see more unique data than the offline dataset")
	}
	if res.OfflineBytes <= 0 {
		t.Fatal("offline dataset bytes missing")
	}
	if res.Improvement <= 0 {
		t.Fatalf("online should improve on offline at matched seeds; got %.2f", res.Improvement)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "improvement") {
		t.Fatal("render broken")
	}
}

func TestTable1Timing(t *testing.T) {
	res, err := Table1(Tiny(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows %d, want 12", len(res.Rows))
	}
	// Reservoir throughput scales with GPUs; FIFO/FIRO do not (paper's
	// central Table 1 finding).
	r1 := res.Row("Reservoir", 1).ThroughputSmps
	r4 := res.Row("Reservoir", 4).ThroughputSmps
	if r4 < 2.5*r1 {
		t.Fatalf("Reservoir 4-GPU %.1f not ≥2.5× 1-GPU %.1f", r4, r1)
	}
	f1 := res.Row("FIFO", 1).ThroughputSmps
	f4 := res.Row("FIFO", 4).ThroughputSmps
	if f4 > 1.3*f1 {
		t.Fatalf("FIFO should stay production-bound: %.1f vs %.1f", f4, f1)
	}
	// Offline is far slower than every online setting at 4 GPUs and pays
	// generation up front.
	off := res.Row("Offline", 4)
	if off.ThroughputSmps > res.Row("FIFO", 4).ThroughputSmps {
		t.Fatal("offline throughput should be I/O bound below online")
	}
	if off.GenerationH <= 0 {
		t.Fatal("offline generation hours missing")
	}
	if off.TotalH <= res.Row("Reservoir", 4).TotalH {
		t.Fatal("offline total time should exceed online")
	}
	// Paper band checks (±15%): offline 1-GPU ≈ 13.2 samples/s,
	// Reservoir 1 GPU ≈ 147.6.
	if v := res.Row("Offline", 1).ThroughputSmps; v < 11 || v > 16 {
		t.Fatalf("offline 1-GPU throughput %.1f outside paper band", v)
	}
	if v := r1; v < 130 || v > 160 {
		t.Fatalf("Reservoir 1-GPU throughput %.1f outside paper band", v)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Reservoir") {
		t.Fatal("render broken")
	}
}

func TestTable2Timing(t *testing.T) {
	if testing.Short() {
		// Tiny-scale fallback: the identical pipeline on the ~20×
		// smaller ensemble, checking structure instead of paper bands.
		res, err := table2Ensemble(TinyPaperEnsemble(), Tiny(), false)
		if err != nil {
			t.Fatal(err)
		}
		if res.OnlineUnique != 1000*100 {
			t.Fatalf("tiny online unique %d", res.OnlineUnique)
		}
		if res.OnlineTotalH <= 0 || res.OfflineTotalH <= 0 {
			t.Fatalf("non-positive hours: %+v", res)
		}
		if res.ThroughputRatio <= 1 {
			t.Fatalf("online should out-throughput offline: ratio %.2f", res.ThroughputRatio)
		}
		var sb strings.Builder
		res.Render(&sb)
		if !strings.Contains(sb.String(), "ratio") {
			t.Fatal("render broken")
		}
		return
	}
	res, err := Table2(Tiny(), false)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 2,000,000 unique samples, 8 TB, ≈1.97 h online vs ≈24.5 h
	// offline, throughput 476.7 vs 38.2 (12.5×).
	if res.OnlineUnique != 2000000 {
		t.Fatalf("online unique %d", res.OnlineUnique)
	}
	if res.OnlineBytes < 7.5e12 || res.OnlineBytes > 8.5e12 {
		t.Fatalf("online dataset %.2f TB, want ≈8", res.OnlineBytes/1e12)
	}
	if res.OnlineTotalH < 1.7 || res.OnlineTotalH > 2.4 {
		t.Fatalf("online total %.2f h, paper ≈1.97", res.OnlineTotalH)
	}
	if res.OfflineTotalH < 15 || res.OfflineTotalH > 30 {
		t.Fatalf("offline total %.2f h, paper ≈24.5", res.OfflineTotalH)
	}
	if res.ThroughputRatio < 10 || res.ThroughputRatio > 16 {
		t.Fatalf("throughput ratio %.1f, paper ≈12.5", res.ThroughputRatio)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "ratio") {
		t.Fatal("render broken")
	}
}

func TestAppendixA(t *testing.T) {
	res := AppendixA([]int{16, 64}, 20000)
	if len(res.Rows) != 2 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.RelError > 0.15 {
			t.Fatalf("capacity %d: measured %.1f vs predicted %.1f (err %.1f%%)",
				row.Capacity, row.Measured, row.Predicted, 100*row.RelError)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Residency") && !strings.Contains(sb.String(), "residency") {
		t.Fatal("render broken")
	}
}

func TestAblationCapacity(t *testing.T) {
	rows, err := AblationCapacity([]int{1500, 6000, 24000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	// Larger capacity → more repetition headroom → throughput non-decreasing.
	for i := 1; i < len(rows); i++ {
		if rows[i].Throughput < rows[i-1].Throughput*0.98 {
			t.Fatalf("throughput dropped with capacity: %+v", rows)
		}
	}
	for _, r := range rows {
		if r.Repetition < 1 {
			t.Fatalf("repetition %v < 1", r.Repetition)
		}
		if r.PeakPop > r.Capacity {
			t.Fatalf("peak population %d exceeds capacity %d", r.PeakPop, r.Capacity)
		}
	}
}

func TestAblationThreshold(t *testing.T) {
	rows, err := AblationThreshold([]int{0, 1000, 4000})
	if err != nil {
		t.Fatal(err)
	}
	// Higher threshold delays the first batch.
	for i := 1; i < len(rows); i++ {
		if rows[i].FirstBatchAt < rows[i-1].FirstBatchAt {
			t.Fatalf("first batch time not increasing with threshold: %+v", rows)
		}
	}
}

func TestAblationAllReduce(t *testing.T) {
	rows := AblationAllReduce()
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[0].Efficiency != 1 {
		t.Fatalf("1-GPU efficiency %v", rows[0].Efficiency)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Efficiency >= rows[i-1].Efficiency {
			t.Fatalf("efficiency should fall with GPU count: %+v", rows)
		}
		if rows[i].Efficiency < 0.5 {
			t.Fatalf("efficiency %v implausibly low", rows[i].Efficiency)
		}
	}
}

// TestFigure4DefaultShapes pins the paper's qualitative Figure 4 findings
// at the default quality scale. Skipped with -short (≈20 s).
func TestFigure4DefaultShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale quality run (~14 s); the tiny-scale fallback is TestFigure4TinyMechanics")
	}
	res, err := Figure4(Default())
	if err != nil {
		t.Fatal(err)
	}
	fifo := res.Run("FIFO")
	firo := res.Run("FIRO")
	reservoir := res.Run("Reservoir")
	offline := res.Run("Offline-1epoch")

	// FIFO overfits: validation ≫ training loss.
	fifoTrain := fifo.Train[len(fifo.Train)-1].Value
	if fifo.FinalVal < 5*fifoTrain {
		t.Fatalf("FIFO should overfit: val %.3g vs train %.3g", fifo.FinalVal, fifoTrain)
	}
	// Ordering: Reservoir < FIRO ≤ FIFO on validation.
	if !(reservoir.FinalVal < firo.FinalVal && firo.FinalVal <= fifo.FinalVal*1.05) {
		t.Fatalf("validation ordering broken: R=%.3g FIRO=%.3g FIFO=%.3g",
			reservoir.FinalVal, firo.FinalVal, fifo.FinalVal)
	}
	// Reservoir on par with (here: better than) the offline reference.
	if reservoir.FinalVal > offline.FinalVal {
		t.Fatalf("Reservoir %.3g worse than offline %.3g", reservoir.FinalVal, offline.FinalVal)
	}
}

func TestAblationEviction(t *testing.T) {
	rows, err := AblationEviction()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	reservoir, uniform := rows[0], rows[1]
	if reservoir.Policy != "Reservoir" || uniform.Policy != "UniformEvict" {
		t.Fatalf("row order: %+v", rows)
	}
	// The Reservoir never discards unseen data (§3.2.3); the ablation does.
	if reservoir.Coverage < 0.9999 {
		t.Fatalf("Reservoir coverage %.4f, want 1.0", reservoir.Coverage)
	}
	if uniform.Coverage > 0.95 {
		t.Fatalf("UniformEvict coverage %.4f: expected substantial data loss under overproduction", uniform.Coverage)
	}
	var sb strings.Builder
	RenderEvictionAblation(&sb, rows)
	if !strings.Contains(sb.String(), "UniformEvict") {
		t.Fatal("render broken")
	}
}

func TestAblationOfflineDataTiny(t *testing.T) {
	rows, err := AblationOfflineData(Tiny(), []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.OfflineVal <= 0 || r.OnlineVal <= 0 {
			t.Fatalf("invalid row %+v", r)
		}
		if r.Epochs < 1 {
			t.Fatalf("epoch computation broken: %+v", r)
		}
	}
	// Online value is shared across rows.
	if rows[0].OnlineVal != rows[1].OnlineVal {
		t.Fatal("online reference should be shared")
	}
	var sb strings.Builder
	RenderOfflineDataAblation(&sb, rows)
	if !strings.Contains(sb.String(), "crossover") {
		t.Fatal("render broken")
	}
}

// TestFigure6DefaultShapes pins the paper's Figure 6 finding at the default
// quality scale: the offline multi-epoch baseline overfits its fixed
// dataset while online training on fresh streamed data generalizes better
// (paper: 47% lower validation MSE; this scale reproduces ≈50%).
func TestFigure6DefaultShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale quality run (~50 s); the tiny-scale fallback is TestFigure6TinyMechanics")
	}
	res, err := Figure6(Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Improvement < 0.2 || res.Improvement > 0.9 {
		t.Fatalf("online improvement %.1f%% outside [20%%, 90%%] (paper: 47%%)", 100*res.Improvement)
	}
	// Offline must show the overfitting signature: validation well above
	// its final training loss.
	offTrain := res.Offline.Train[len(res.Offline.Train)-1].Value
	if res.Offline.FinalVal < 5*offTrain {
		t.Fatalf("offline baseline did not overfit: train %.3g val %.3g", offTrain, res.Offline.FinalVal)
	}
}

func TestCostAnalysis(t *testing.T) {
	if testing.Short() {
		// Tiny-scale fallback: smoke the accounting pipeline on the
		// small ensemble; euro figures only make sense at paper scale.
		res, err := costAnalysisEnsemble(TinyPaperEnsemble())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 4 {
			t.Fatalf("rows %d", len(res.Rows))
		}
		for _, row := range res.Rows {
			if row.TotalEuro <= 0 {
				t.Fatalf("non-positive cost row %+v", row)
			}
			if sum := row.CPUEuro + row.GPUEuro + row.StorageEur; sum != row.TotalEuro {
				t.Fatalf("row %q total %.4f != parts %.4f", row.Setting, row.TotalEuro, sum)
			}
		}
		return
	}
	res, err := CostAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	within := func(name string, got, want, tol float64) {
		t.Helper()
		if got < want*(1-tol) || got > want*(1+tol) {
			t.Fatalf("%s = %.1f€, paper %.1f€ (±%.0f%%)", name, got, want, tol*100)
		}
	}
	// §5 figures: 63.8€ online, ~49€ offline, 41€ repeated, 480€ storage.
	within("online", res.Rows[0].TotalEuro, 63.8, 0.15)
	within("offline", res.Rows[1].TotalEuro, 49.1, 0.35)
	within("repeat", res.Rows[2].TotalEuro, 41.16, 0.35)
	within("storage", res.Rows[3].TotalEuro, 480, 0.10)
	// The paper's qualitative claim: online costs only modestly more than
	// one offline generation+training pass.
	ratio := res.Rows[0].TotalEuro / res.Rows[1].TotalEuro
	if ratio < 1.0 || ratio > 2.0 {
		t.Fatalf("online/offline cost ratio %.2f outside [1,2] (paper: 1.29)", ratio)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "cost analysis") {
		t.Fatal("render broken")
	}
}

func TestReservationOrder(t *testing.T) {
	rows, err := ReservationOrder(1.5) // busy CPU partition: 1.5 h backlog
	if err != nil {
		t.Fatal(err)
	}
	gpuFirst, cpuFirst := rows[0], rows[1]
	if gpuFirst.Strategy != "GPU first" || cpuFirst.Strategy != "CPU first" {
		t.Fatalf("rows %+v", rows)
	}
	// GPU-first idles the expensive GPUs for the CPU backlog duration.
	if gpuFirst.GPUIdleH < 1.0 {
		t.Fatalf("GPU-first idle %.2f h, expected ≈ backlog", gpuFirst.GPUIdleH)
	}
	// CPU-first only idles cores for the short GPU wait.
	if cpuFirst.CPUIdleH > 0.2 {
		t.Fatalf("CPU-first idle %.2f h, expected ≈ GPU wait", cpuFirst.CPUIdleH)
	}
	// §3.1's conclusion: CPU-first is "the most economical approach".
	if gpuFirst.WastedEuro <= 0 {
		t.Fatalf("GPU-first waste not accounted: %+v", rows)
	}
	if cpuFirst.WastedEuro >= gpuFirst.WastedEuro {
		t.Fatalf("CPU-first (%.2f€) should undercut GPU-first (%.2f€)",
			cpuFirst.WastedEuro, gpuFirst.WastedEuro)
	}
	var sb strings.Builder
	RenderReservation(&sb, rows)
	if !strings.Contains(sb.String(), "GPU first") {
		t.Fatal("render broken")
	}
}

// TestGrayScottScale verifies the presets are really problem-agnostic
// after the Problem-API staleness fix: with the Gray–Scott problem
// selected, ensemble generation, normalization, the model spec and the
// learner all follow the problem's two-channel geometry instead of
// silently assuming the heat equation.
func TestGrayScottScale(t *testing.T) {
	scale := Tiny()
	scale.Problem = melissa.GrayScott()
	scale.Dt = 1 // Gray–Scott's stable step size at the tiny grid

	wantDim := 2 * scale.GridN * scale.GridN
	if scale.FieldDim() != wantDim {
		t.Fatalf("field dim %d, want two channels %d", scale.FieldDim(), wantDim)
	}
	norm := scale.Normalizer()
	if norm.InputDim() != 5 { // F, k, Du, Dv + time
		t.Fatalf("input dim %d, want 5", norm.InputDim())
	}
	if norm.OutputDim() != wantDim {
		t.Fatalf("output dim %d, want %d", norm.OutputDim(), wantDim)
	}
	if spec := scale.ModelSpec(); spec.OutputDim != wantDim {
		t.Fatalf("model output %d, want %d", spec.OutputDim, wantDim)
	}

	data, err := GenerateEnsemble(scale, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := data.Sample(1, 3)
	if len(s.Input) != 5 || len(s.Output) != wantDim {
		t.Fatalf("sample dims %d/%d, want 5/%d", len(s.Input), len(s.Output), wantDim)
	}

	// The learner trains on the problem's geometry end to end.
	l, err := newLearner(scale, nil, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	l.TrainBatch(data.AllSamples()[:scale.BatchSize])
	if l.Batches() != 1 || l.Samples() != scale.BatchSize {
		t.Fatalf("learner recorded %d batches / %d samples", l.Batches(), l.Samples())
	}
}
