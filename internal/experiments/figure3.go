package experiments

import (
	"io"

	"melissa/internal/buffer"
	"melissa/internal/stats"
	"melissa/internal/trace"
)

// Figure3Result reproduces Figure 3: the histogram of how many times each
// simulation time step appears in training batches under the Reservoir, for
// 1, 2 and 4 GPUs. More GPUs consume faster at fixed production, so
// repetition increases with GPU count.
type Figure3Result struct {
	Ensemble   PaperEnsemble
	GPUs       []int
	Histograms map[int]*stats.Histogram // gpu count → occurrence histogram
	MeanOcc    map[int]float64
}

// Figure3 runs the Reservoir timing simulation per GPU count and buckets
// sample occurrences.
func Figure3() (*Figure3Result, error) {
	ens := SmallPaperEnsemble()
	res := &Figure3Result{
		Ensemble:   ens,
		GPUs:       []int{1, 2, 4},
		Histograms: make(map[int]*stats.Histogram),
		MeanOcc:    make(map[int]float64),
	}
	for _, n := range res.GPUs {
		run, err := ens.RunTiming(buffer.ReservoirKind, n)
		if err != nil {
			return nil, err
		}
		h := stats.NewHistogram()
		for _, c := range run.Occurrences {
			h.Add(c)
		}
		res.Histograms[n] = h
		res.MeanOcc[n] = h.Mean()
	}
	return res, nil
}

// Render prints the per-GPU histograms side by side.
func (r *Figure3Result) Render(w io.Writer) {
	maxOcc := 0
	for _, h := range r.Histograms {
		if h.Max() > maxOcc {
			maxOcc = h.Max()
		}
	}
	headers := []string{"Occurrences"}
	for _, n := range r.GPUs {
		headers = append(headers, sprintGPU(n))
	}
	tb := trace.NewTable("Figure 3 — sample occurrences in batches (Reservoir)", headers...)
	for occ := 1; occ <= maxOcc; occ++ {
		row := []any{occ}
		for _, n := range r.GPUs {
			row = append(row, r.Histograms[n].Count(occ))
		}
		tb.AddRow(row...)
	}
	mean := []any{"mean"}
	for _, n := range r.GPUs {
		mean = append(mean, r.MeanOcc[n])
	}
	tb.AddRow(mean...)
	tb.Render(w)
}

func sprintGPU(n int) string {
	if n == 1 {
		return "1 GPU"
	}
	return string(rune('0'+n)) + " GPUs"
}
