package experiments

import (
	"fmt"
	"math/rand/v2"

	"melissa/internal/buffer"
	"melissa/internal/cluster"
	"melissa/internal/core"
	"melissa/internal/simrun"
)

// QualityRun is one real-training curve produced by a quality experiment.
type QualityRun struct {
	Label    string
	Train    []core.LossPoint
	Val      []core.LossPoint
	FinalVal float64
	MinVal   float64
	Batches  int
	Samples  int
	Unique   int
}

func newQualityRun(label string, l *learner) *QualityRun {
	qr := &QualityRun{
		Label:    label,
		Train:    l.TrainCurve(),
		Val:      l.ValCurve(),
		FinalVal: l.FinalValidation(),
		MinVal:   l.MinValidation(),
		Batches:  l.Batches(),
		Samples:  l.Samples(),
	}
	if occ := l.Occurrences(); occ != nil {
		qr.Unique = len(occ)
	}
	return qr
}

// smallTopology maps a scale's small ensemble onto the cluster simulator,
// preserving the paper's §4.3 ratios: 40% of the ensemble runs concurrently
// (100 of 250), 20 cores per client, submission in 40/40/20% series.
func smallTopology(scale Scale, kind buffer.Kind, gpus int) simrun.Options {
	sims := scale.SimsSmall
	s1 := (sims*2 + 4) / 5 // 40%
	s2 := s1
	s3 := sims - s1 - s2
	series := []int{s1, s2, s3}
	if s3 <= 0 {
		series = []int{sims}
		s1 = sims
	}
	return simrun.Options{
		Model:          cluster.JeanZay(),
		Simulations:    sims,
		StepsPerSim:    scale.StepsPerSim,
		CoresPerClient: 20,
		TotalCores:     20 * s1,
		Series:         series,
		GPUs:           gpus,
		BatchSize:      scale.BatchSize,
		Buffer:         scale.BufferConfig(kind),
	}
}

// largeTopology maps the large ensemble (Fig 6 / Table 2 analogue): half
// the ensemble concurrent, 10 cores per client — reproducing the paper's
// production:consumption ratio (≈273 vs 476 samples/s at 4 GPUs).
func largeTopology(scale Scale, gpus int) simrun.Options {
	sims := scale.SimsLarge
	concurrent := (sims + 1) / 2
	if concurrent < 1 {
		concurrent = 1
	}
	return simrun.Options{
		Model:          cluster.JeanZay(),
		Simulations:    sims,
		StepsPerSim:    scale.StepsPerSim,
		CoresPerClient: 10,
		TotalCores:     10 * concurrent,
		GPUs:           gpus,
		BatchSize:      scale.BatchSize,
		Buffer:         scale.BufferConfig(buffer.ReservoirKind),
	}
}

// runOnlineQuality executes a cluster-simulated online run with real
// training: virtual clients stream real solver data through the buffer
// policy while every synchronized step trains the surrogate.
func runOnlineQuality(opts simrun.Options, data *EnsembleData, l *learner) (*simrun.Result, error) {
	opts.MakeClient = func(simID int) func(step int) buffer.Sample {
		return func(step int) buffer.Sample { return data.Sample(simID, step) }
	}
	opts.OnTrainStep = l.Step
	return simrun.Run(opts)
}

// runOffline1Epoch trains the paper's offline reference: batches uniformly
// drawn without replacement from the full in-memory dataset, one epoch
// (§4.4: "offline training performed over one epoch with data read from
// files (data are seen only once)").
func runOffline1Epoch(scale Scale, data *EnsembleData, l *learner, gpus int) {
	samples := data.AllSamples()
	shuffleOffline(scale, samples, 0)
	step := scale.BatchSize * gpus
	for start := 0; start < len(samples); start += step {
		end := start + step
		if end > len(samples) {
			end = len(samples)
		}
		l.TrainBatch(samples[start:end])
	}
}

// shuffleOffline applies the seeded uniform shuffle of epoch e in place.
func shuffleOffline(scale Scale, samples []buffer.Sample, epoch uint64) {
	rng := rand.New(rand.NewPCG(scale.Seed^0x0ff1e, 77+epoch))
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
}

func kindLabel(kind buffer.Kind, gpus int) string {
	if gpus == 1 {
		return string(kind)
	}
	return fmt.Sprintf("%s-%dGPU", kind, gpus)
}
