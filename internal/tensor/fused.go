package tensor

import "math"

// sqrt32 is the float32 square root via the hardware float64 instruction,
// matching the rounding of the historical per-parameter Adam loop.
func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// AdamStep applies one fused Adam update over flat parameter slabs:
//
//	m = β1·m + (1−β1)·g
//	v = β2·v + (1−β2)·g²
//	w −= α·m/(√v + ε)
//
// with α the bias-corrected step size. All four slices must have equal
// length. The pass is a single sweep over the slabs, parallelized over
// contiguous chunks through the worker pool when the slab exceeds the
// elementwise work threshold (work is counted in elements); every element
// is independent, so the result is bit-identical to the serial
// per-parameter loop.
func AdamStep(values, grads, m, v []float32, alpha, beta1, beta2, eps float32) {
	if len(grads) != len(values) || len(m) != len(values) || len(v) != len(values) {
		panic("tensor: AdamStep slab length mismatch")
	}
	parallel(len(values), len(values), task{
		op: opAdam, vals: values, grads: grads, m: m, v: v,
		alpha: alpha, beta1: beta1, beta2: beta2, eps: eps,
	})
}

func adamRange(values, grads, m, v []float32, alpha, b1, b2, eps float32, i0, i1 int) {
	values = values[i0:i1]
	grads = grads[i0:i1]
	m = m[i0:i1]
	v = v[i0:i1]
	for j, g := range grads {
		m[j] = b1*m[j] + (1-b1)*g
		v[j] = b2*v[j] + (1-b2)*g*g
		values[j] -= alpha * m[j] / (sqrt32(v[j]) + eps)
	}
}
