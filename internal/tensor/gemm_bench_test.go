package tensor

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// The GEMM benchmark grid covers the training-shaped sizes of the paper's
// surrogate (batch×hidden×field): the forward input layer, the wide output
// layer at several batch sizes, and the backward operand forms. Every entry
// reports GFLOP/s via b.ReportMetric so CI bench smoke runs leave a
// throughput trajectory (see BENCH_PR4.json for the PR 4 snapshot), and
// -benchmem pins the 0 allocs/op steady state.

// gemmGrid is the training-shaped size grid: m = batch (paper: 10, plus
// larger offline/validation batches), k/n = hidden widths and the flattened
// field.
var gemmGrid = [][3]int{
	{10, 256, 256},
	{10, 256, 1024},
	{64, 256, 1024},
	{256, 256, 1024},
}

func benchGemmShape(b *testing.B, m, k, n int, mode gemmModeT, run func(dst, a, bb *Matrix, bias []float32)) {
	old := gemmMode
	gemmMode = mode
	defer func() { gemmMode = old }()
	rng := rand.New(rand.NewPCG(1, 2))
	a := randMatrix(rng, m, k)
	bb := randMatrix(rng, k, n)
	bias := make([]float32, n)
	dst := New(m, n)
	run(dst, a, bb, bias) // warm the scratch freelist outside the timer
	flops := 2 * float64(m) * float64(k) * float64(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(dst, a, bb, bias)
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkMatMul is the headline grid on the blocked kernel.
func BenchmarkMatMul(b *testing.B) {
	for _, s := range gemmGrid {
		b.Run(fmt.Sprintf("%dx%dx%d", s[0], s[1], s[2]), func(b *testing.B) {
			benchGemmShape(b, s[0], s[1], s[2], gemmAuto, func(dst, a, bb *Matrix, _ []float32) {
				MatMul(dst, a, bb)
			})
		})
	}
}

// BenchmarkMatMulNaive is the same grid on the reference kernels — the
// PR 3 baseline the ≥1.5× acceptance gate compares against.
func BenchmarkMatMulNaive(b *testing.B) {
	for _, s := range gemmGrid {
		b.Run(fmt.Sprintf("%dx%dx%d", s[0], s[1], s[2]), func(b *testing.B) {
			benchGemmShape(b, s[0], s[1], s[2], gemmNaive, func(dst, a, bb *Matrix, _ []float32) {
				MatMul(dst, a, bb)
			})
		})
	}
}

// BenchmarkMatMulBiasReLU measures the fused forward epilogue at the
// paper's hidden-layer shape.
func BenchmarkMatMulBiasReLU(b *testing.B) {
	for _, s := range [][3]int{{10, 256, 256}, {64, 256, 1024}} {
		b.Run(fmt.Sprintf("%dx%dx%d", s[0], s[1], s[2]), func(b *testing.B) {
			benchGemmShape(b, s[0], s[1], s[2], gemmAuto, func(dst, a, bb *Matrix, bias []float32) {
				MatMulBiasReLU(dst, a, bb, bias)
			})
		})
	}
}

// BenchmarkMatMulABT measures the dX = dY·Wᵀ backward form at the output
// layer (batch 10, field 1024, hidden 256).
func BenchmarkMatMulABT(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	dy := randMatrix(rng, 10, 1024)
	w := randMatrix(rng, 256, 1024)
	dst := New(10, 256)
	MatMulABT(dst, dy, w)
	flops := 2.0 * 10 * 1024 * 256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulABT(dst, dy, w)
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkMatMulATBAdd measures the dW += Xᵀ·dY backward form at the
// output layer (k = batch = 10, the short-reduction case).
func BenchmarkMatMulATBAdd(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	x := randMatrix(rng, 10, 256)
	dy := randMatrix(rng, 10, 1024)
	dst := New(256, 1024)
	MatMulATBAdd(dst, x, dy)
	flops := 2.0 * 10 * 256 * 1024
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulATBAdd(dst, x, dy)
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkAdamStepSizes measures the fused elementwise Adam kernel per
// element across slab sizes — the measurement behind
// elemwiseParallelThreshold (≈3 ns/elem on the CI-class Xeon).
func BenchmarkAdamStepSizes(b *testing.B) {
	for _, n := range []int{4096, 16384, 262144} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			vals := make([]float32, n)
			grads := make([]float32, n)
			m := make([]float32, n)
			v := make([]float32, n)
			for i := range grads {
				grads[i] = 0.01
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				AdamStep(vals, grads, m, v, 1e-3, 0.9, 0.999, 1e-8)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/elem")
		})
	}
}
