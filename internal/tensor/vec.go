package tensor

// Axpy computes y += a*x element-wise. The four-way unrolled body helps the
// compiler keep the accumulator stream in registers; it is the hot loop of
// both GEMM and the optimizers.
func Axpy(a float32, x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += a * x[i]
	}
}

// Dot returns the inner product of x and y, accumulated in float64 for
// stability on long vectors: each float32 product is exact in float64, so
// the only rounding is the final sum and the closing float32 conversion.
// Four independent accumulator chains keep the conversion off the loop's
// critical path.
func Dot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += float64(x[i]) * float64(y[i])
		s1 += float64(x[i+1]) * float64(y[i+1])
		s2 += float64(x[i+2]) * float64(y[i+2])
		s3 += float64(x[i+3]) * float64(y[i+3])
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(x); i++ {
		s += float64(x[i]) * float64(y[i])
	}
	return float32(s)
}

// Scal multiplies every element of x by a in place.
func Scal(a float32, x []float32) {
	for i := range x {
		x[i] *= a
	}
}

// SumF64 returns the sum of x accumulated in float64.
func SumF64(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return s
}

// Zero clears x in place.
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}
