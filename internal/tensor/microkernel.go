package tensor

// The register-tiled micro-kernel at the heart of the blocked GEMM (see the
// package comment for the full blocking scheme). It computes a single
// mr×nr = 4×16 output tile
//
//	c[0:4, 0:16] += pa · pb
//
// over packed operand panels: pa holds kc steps of 4 A-values (column of the
// A micro-panel per step), pb holds kc steps of 16 B-values (row of the
// B micro-panel per step). Both panels are contiguous and zero-padded to the
// full tile size by the packing routines (pack.go), so the kernel always
// runs the full 4×16 tile and edge clipping happens at store time.
//
// Per k-step the kernel performs 4 broadcasts, 2 vector loads and 8
// fused multiply-adds with the 64 accumulators held in registers (8 YMM on
// amd64) — no loads or stores of c inside the k-loop, which is what lifts
// throughput past the scalar axpy kernel's 2-flops-per-cycle memory-op
// ceiling.

const (
	microM = 4  // micro-tile rows (mr)
	microN = 16 // micro-tile cols (nr)
)

// kern4x16 is the active micro-kernel: c[r*ldc : r*ldc+16] += row r of
// pa·pb for r in [0,4). On amd64 with AVX2+FMA it is the assembly kernel in
// microkernel_amd64.s; everywhere else (or with the feature bits absent) it
// is the portable Go kernel below. The two differ in rounding — the FMA
// kernel rounds once per multiply-add, the portable one twice — which is
// one reason blocked-vs-reference equivalence is tolerance-based. On any
// single machine the choice is fixed at process start, so fixed-shape
// results stay bit-reproducible across runs and ranks.
var kern4x16 = kern4x16Go

// kern4x16Go is the portable micro-kernel. The accumulator tile lives in a
// fixed-size stack array; the compiler keeps the hot row in registers and
// the array in L1, preserving the no-c-traffic property of the design even
// without SIMD.
func kern4x16Go(kc int, pa, pb, c []float32, ldc int) {
	var acc [microM][microN]float32
	for p := 0; p < kc; p++ {
		bp := pb[microN*p : microN*p+microN : microN*p+microN]
		ap := pa[microM*p : microM*p+microM : microM*p+microM]
		for r := 0; r < microM; r++ {
			a := ap[r]
			cr := &acc[r]
			for j := 0; j < microN; j++ {
				cr[j] += a * bp[j]
			}
		}
	}
	for r := 0; r < microM; r++ {
		cr := c[r*ldc : r*ldc+microN : r*ldc+microN]
		ar := &acc[r]
		for j := 0; j < microN; j++ {
			cr[j] += ar[j]
		}
	}
}
