package tensor

import (
	"fmt"
)

// gemmParallelThreshold is the minimum number of multiply-adds before a
// kernel fans work out to the worker pool; below it the dispatch cost
// dominates.
const gemmParallelThreshold = 1 << 16

// MatMul computes dst = a·b. dst must be preallocated with shape
// a.Rows×b.Cols and must not alias a or b. The kernel iterates i,k,j so the
// inner loop walks rows of b sequentially, which keeps accesses
// cache-friendly for row-major storage. Work is split across row blocks of
// dst via the allocation-free worker pool when the problem is large enough
// and GOMAXPROCS > 1.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	parallel(a.Rows, a.Rows*a.Cols*b.Cols, task{op: opMatMul, dst: dst, a: a, b: b})
}

func matMulRange(dst, a, b *Matrix, r0, r1 int) {
	n := b.Cols
	for i := r0; i < r1; i++ {
		ci := dst.Data[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		ai := a.Data[i*a.Cols : (i+1)*a.Cols]
		for k, aik := range ai {
			if aik == 0 {
				continue
			}
			bk := b.Data[k*n : (k+1)*n]
			Axpy(aik, bk, ci)
		}
	}
}

// MatMulABT computes dst = a·bᵀ. dst must have shape a.Rows×b.Rows. Used in
// backprop for dX = dY·Wᵀ without materializing the transpose.
func MatMulABT(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulABT inner dims %d vs %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulABT dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	parallel(a.Rows, a.Rows*a.Cols*b.Rows, task{op: opMatMulABT, dst: dst, a: a, b: b})
}

func matMulABTRange(dst, a, b *Matrix, r0, r1 int) {
	for i := r0; i < r1; i++ {
		ai := a.Data[i*a.Cols : (i+1)*a.Cols]
		di := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := 0; j < b.Rows; j++ {
			bj := b.Data[j*b.Cols : (j+1)*b.Cols]
			di[j] = Dot(ai, bj)
		}
	}
}

// MatMulATBAdd computes dst += aᵀ·b. dst must have shape a.Cols×b.Cols. The
// accumulate form matches gradient accumulation for dW += Xᵀ·dY.
func MatMulATBAdd(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulATBAdd inner dims %d vs %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulATBAdd dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	// Parallelize over rows of dst (columns of a) so writers never overlap.
	parallel(a.Cols, a.Rows*a.Cols*b.Cols, task{op: opMatMulATBAdd, dst: dst, a: a, b: b})
}

func matMulATBAddRange(dst, a, b *Matrix, c0, c1 int) {
	for k := 0; k < a.Rows; k++ {
		ak := a.Data[k*a.Cols : (k+1)*a.Cols]
		bk := b.Data[k*b.Cols : (k+1)*b.Cols]
		for c := c0; c < c1; c++ {
			if aik := ak[c]; aik != 0 {
				Axpy(aik, bk, dst.Data[c*dst.Cols:(c+1)*dst.Cols])
			}
		}
	}
}
