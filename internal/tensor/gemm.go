package tensor

import (
	"fmt"
	"math"
	"os"
)

// GEMM comes in two implementations selected once at startup (see
// gemmModeFromEnv) and then by problem size:
//
//   - The blocked kernel tiles the output into blockM×blockN macro-tiles,
//     walks the shared dimension in blockK slabs, packs each operand slab
//     into micro-kernel order (pack.go) and drives the register-tiled 4×16
//     micro-kernel (microkernel.go) over the packed panels, applying any
//     fused epilogue while the tile is still cache-hot. Pool parallelism is
//     over macro-tiles, so the tile decomposition — and therefore every
//     float's accumulation order — depends only on the matrix shapes, never
//     on worker count or scheduling: fixed-shape results are bit-identical
//     across runs and ranks.
//   - The naive kernels are the original i,k,j / dot / axpy loops, kept as
//     the reference implementation for the equivalence suite and as the
//     small-problem fast path (packing and tile setup dominate below
//     naiveMaxWork multiply-adds).
//
// Blocked and naive results differ only in floating-point rounding (the
// blocked micro-kernel may use fused multiply-add); see the package comment
// for the tolerance contract.

// Blocking parameters: macro-tiles are blockM×blockN, the shared dimension
// is walked in blockK slabs. Sized so one packed A block (blockM·blockK
// floats = 64 KiB), one packed B panel (blockK·blockN floats = 256 KiB) and
// the output tile stay L2-resident while each 16-column B micro-panel
// (blockK·16 floats = 16 KiB) stays L1-resident across the row sweep.
// blockM must be a multiple of microM and blockN of microN.
const (
	blockM = 64
	blockK = 256
	blockN = 256
)

// naiveMaxWork is the multiply-add count below which the naive kernels beat
// the blocked path (packing + tile setup amortize poorly). Measured on the
// CI-class Xeon the crossover sits near 8×8×8 = 512 madds: 4×4×4 runs 105 ns
// naive vs 171 ns blocked while 8×8×8 runs 520 ns vs 345 ns.
const naiveMaxWork = 1 << 9

// Epilogue selects the fused transformation applied to each output tile
// after accumulation, while it is still cache-hot: nothing, a bias-row add,
// or bias plus the layer activation.
type Epilogue uint8

const (
	EpNone Epilogue = iota
	EpBias
	EpBiasReLU
	EpBiasTanh
)

// gemmKind selects the operand form shared by the blocked driver.
type gemmKind uint8

const (
	gemmNN    gemmKind = iota // dst = a·b
	gemmNT                    // dst = a·bᵀ
	gemmTNAdd                 // dst += aᵀ·b
)

type gemmModeT uint8

const (
	gemmAuto gemmModeT = iota
	gemmNaive
	gemmBlocked
)

// gemmMode is read once at startup from MELISSA_GEMM so a perf regression
// can be bisected to the kernel without rebuilding: "naive" forces the
// reference kernels, "blocked" forces the blocked path even for tiny
// shapes, anything else (or unset) picks by problem size.
var gemmMode = gemmModeFromEnv(os.Getenv("MELISSA_GEMM"))

func gemmModeFromEnv(v string) gemmModeT {
	switch v {
	case "naive":
		return gemmNaive
	case "blocked":
		return gemmBlocked
	}
	return gemmAuto
}

func useBlocked(m, n, k int) bool {
	switch gemmMode {
	case gemmNaive:
		return false
	case gemmBlocked:
		return true
	}
	return m*n*k >= naiveMaxWork
}

// MatMul computes dst = a·b. dst must be preallocated with shape
// a.Rows×b.Cols and must not alias a or b.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", a.Cols, b.Rows))
	}
	checkDst(dst, a.Rows, b.Cols, "MatMul")
	gemm(gemmNN, dst, a, b, nil, EpNone)
}

// MatMulBias computes dst = a·b + bias with the bias row (length b.Cols)
// broadcast over the batch, fused into the GEMM epilogue — the dense-layer
// forward without the extra full pass of AddRowVector.
func MatMulBias(dst, a, b *Matrix, bias []float32) {
	matMulEpilogue(dst, a, b, bias, EpBias)
}

// MatMulBiasReLU computes dst = relu(a·b + bias) in one fused pass.
func MatMulBiasReLU(dst, a, b *Matrix, bias []float32) {
	matMulEpilogue(dst, a, b, bias, EpBiasReLU)
}

// MatMulBiasTanh computes dst = tanh(a·b + bias) in one fused pass.
func MatMulBiasTanh(dst, a, b *Matrix, bias []float32) {
	matMulEpilogue(dst, a, b, bias, EpBiasTanh)
}

func matMulEpilogue(dst, a, b *Matrix, bias []float32, ep Epilogue) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", a.Cols, b.Rows))
	}
	checkDst(dst, a.Rows, b.Cols, "MatMul")
	if len(bias) != b.Cols {
		panic(fmt.Sprintf("tensor: bias length %d != cols %d", len(bias), b.Cols))
	}
	gemm(gemmNN, dst, a, b, bias, ep)
}

// MatMulABT computes dst = a·bᵀ. dst must have shape a.Rows×b.Rows. Used in
// backprop for dX = dY·Wᵀ without materializing the transpose.
func MatMulABT(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulABT inner dims %d vs %d", a.Cols, b.Cols))
	}
	checkDst(dst, a.Rows, b.Rows, "MatMulABT")
	gemm(gemmNT, dst, a, b, nil, EpNone)
}

// MatMulATBAdd computes dst += aᵀ·b. dst must have shape a.Cols×b.Cols. The
// accumulate form matches gradient accumulation for dW += Xᵀ·dY.
func MatMulATBAdd(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulATBAdd inner dims %d vs %d", a.Rows, b.Rows))
	}
	checkDst(dst, a.Cols, b.Cols, "MatMulATBAdd")
	gemm(gemmTNAdd, dst, a, b, nil, EpNone)
}

func checkDst(dst *Matrix, rows, cols int, op string) {
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("tensor: %s dst %dx%d, want %dx%d", op, dst.Rows, dst.Cols, rows, cols))
	}
}

// gemmDims returns the op-space dimensions (m×k)·(k×n) for a kind.
func gemmDims(kind gemmKind, a, b *Matrix) (m, n, k int) {
	switch kind {
	case gemmNT:
		return a.Rows, b.Rows, a.Cols
	case gemmTNAdd:
		return a.Cols, b.Cols, a.Rows
	}
	return a.Rows, b.Cols, a.Cols
}

// gemm routes one validated GEMM to the blocked or naive implementation.
func gemm(kind gemmKind, dst, a, b *Matrix, bias []float32, ep Epilogue) {
	m, n, k := gemmDims(kind, a, b)
	if m == 0 || n == 0 {
		return
	}
	if useBlocked(m, n, k) {
		rowTiles := (m + blockM - 1) / blockM
		colTiles := (n + blockN - 1) / blockN
		if rowTiles > 1 {
			// Several macro-tiles stack on each B panel: pack the whole
			// panel row once per k-slab (cooperatively, across the pool)
			// and let every row tile consume the shared packing, instead
			// of re-packing the panel per tile.
			gemmSharedB(kind, dst, a, b, bias, ep, k, rowTiles, colTiles)
			return
		}
		parallel(rowTiles*colTiles, m*n*k, task{op: opGemmTile, dst: dst, a: a, b: b, bias: bias, gk: kind, ep: ep})
		return
	}
	switch kind {
	case gemmNN:
		parallel(m, m*n*k, task{op: opMatMul, dst: dst, a: a, b: b})
	case gemmNT:
		parallel(m, m*n*k, task{op: opMatMulABT, dst: dst, a: a, b: b})
	case gemmTNAdd:
		// Parallelize over rows of dst (columns of a) so writers never
		// overlap.
		parallel(m, m*n*k, task{op: opMatMulATBAdd, dst: dst, a: a, b: b})
	}
	if ep != EpNone {
		applyEpilogue(dst, 0, m, 0, n, bias, ep)
	}
}

// gemmSharedB is the blocked driver for outputs taller than one macro-tile
// (backward's dW = Xᵀ·dY is the training-shaped case: 256×1024 over a
// batch-sized k). Per blockK slab it runs two pool phases: packBRange
// packs every column panel of the slab into one shared buffer (parallel
// over panels — the satellite ROADMAP item for many-core hosts), then
// gemmTileSharedRange sweeps all macro-tiles against the shared packing.
// Each output element still accumulates its k-slabs in ascending order and
// each tile's math is fixed by shape alone, so results stay bit-identical
// to the per-tile-packing driver regardless of worker count.
func gemmSharedB(kind gemmKind, dst, a, b *Matrix, bias []float32, ep Epilogue, k, rowTiles, colTiles int) {
	m, n, _ := gemmDims(kind, a, b)
	for k0 := 0; k0 < k; k0 += blockK {
		kc := min(blockK, k-k0)
		pb := getSharedB(colTiles * blockN * kc)
		t := task{dst: dst, a: a, b: b, bias: bias, gk: kind, ep: ep, shared: pb, k0: k0, kc: kc}
		t.op = opPackB
		parallel(colTiles, kc*n, t)
		t.op = opGemmTileShared
		parallel(rowTiles*colTiles, m*n*kc, t)
		putSharedB(pb)
	}
}

// packBRange packs column panels [p0, p1) of the current k-slab into the
// shared buffer at stride blockN·kc. Panels are disjoint regions and their
// packed bytes depend only on the operands, so any split across workers
// produces identical contents.
func packBRange(t *task, p0, p1 int) {
	_, n, _ := gemmDims(t.gk, t.a, t.b)
	for p := p0; p < p1; p++ {
		j0 := p * blockN
		nblk := min(blockN, n-j0)
		panel := t.shared[p*blockN*t.kc : (p+1)*blockN*t.kc]
		if t.gk == gemmNT {
			packBT(panel, t.b, t.k0, j0, t.kc, nblk)
		} else {
			packBNN(panel, t.b, t.k0, j0, t.kc, nblk)
		}
	}
}

// gemmTileSharedRange executes macro-tiles [t0, t1) against the shared
// packed B slab: pack the tile's A block privately, zero the output on the
// first slab, accumulate, and apply the epilogue after the last slab.
func gemmTileSharedRange(t *task, t0, t1 int) {
	m, n, k := gemmDims(t.gk, t.a, t.b)
	tilesPerRow := (n + blockN - 1) / blockN
	s := getGemmScratch()
	for ti := t0; ti < t1; ti++ {
		i0 := (ti / tilesPerRow) * blockM
		pcol := ti % tilesPerRow
		j0 := pcol * blockN
		mblk, nblk := min(blockM, m-i0), min(blockN, n-j0)
		dst, ld := t.dst, t.dst.Cols
		if t.k0 == 0 && t.gk != gemmTNAdd {
			for i := i0; i < i0+mblk; i++ {
				Zero(dst.Data[i*ld+j0 : i*ld+j0+nblk])
			}
		}
		switch t.gk {
		case gemmTNAdd:
			packAT(s.pa, t.a, i0, t.k0, mblk, t.kc)
		default:
			packANN(s.pa, t.a, i0, t.k0, mblk, t.kc)
		}
		sweepTile(t, s, s.pa, t.shared[pcol*blockN*t.kc:], i0, j0, mblk, nblk, t.kc)
		if t.k0+t.kc >= k && t.ep != EpNone {
			applyEpilogue(dst, i0, i0+mblk, j0, j0+nblk, t.bias, t.ep)
		}
	}
	putGemmScratch(s)
}

// gemmTileRange executes macro-tiles [t0, t1) of the blocked decomposition;
// it is the opGemmTile kernel the worker pool dispatches. Tiles are
// enumerated row-major over the ⌈m/blockM⌉×⌈n/blockN⌉ grid, each tile owns
// a disjoint output region, and the per-tile loop nest is fully
// deterministic — results do not depend on which worker runs which tile.
func gemmTileRange(t *task, t0, t1 int) {
	m, n, k := gemmDims(t.gk, t.a, t.b)
	tilesPerRow := (n + blockN - 1) / blockN
	s := getGemmScratch()
	for ti := t0; ti < t1; ti++ {
		i0 := (ti / tilesPerRow) * blockM
		j0 := (ti % tilesPerRow) * blockN
		runMacroTile(t, s, i0, j0, min(blockM, m-i0), min(blockN, n-j0), k)
	}
	putGemmScratch(s)
}

// runMacroTile computes one blockM×blockN output tile: zero it (overwrite
// forms only), accumulate packed panel products over every blockK slab of
// the shared dimension, then apply the fused epilogue while the tile is
// still cache-hot.
func runMacroTile(t *task, s *gemmScratch, i0, j0, mblk, nblk, k int) {
	dst := t.dst
	ld := dst.Cols
	if t.gk != gemmTNAdd {
		for i := i0; i < i0+mblk; i++ {
			Zero(dst.Data[i*ld+j0 : i*ld+j0+nblk])
		}
	}
	for k0 := 0; k0 < k; k0 += blockK {
		kc := min(blockK, k-k0)
		switch t.gk {
		case gemmNN:
			packANN(s.pa, t.a, i0, k0, mblk, kc)
			packBNN(s.pb, t.b, k0, j0, kc, nblk)
		case gemmNT:
			packANN(s.pa, t.a, i0, k0, mblk, kc)
			packBT(s.pb, t.b, k0, j0, kc, nblk)
		case gemmTNAdd:
			packAT(s.pa, t.a, i0, k0, mblk, kc)
			packBNN(s.pb, t.b, k0, j0, kc, nblk)
		}
		sweepTile(t, s, s.pa, s.pb, i0, j0, mblk, nblk, kc)
	}
	if t.ep != EpNone {
		applyEpilogue(dst, i0, i0+mblk, j0, j0+nblk, t.bias, t.ep)
	}
}

// sweepTile drives the micro-kernel over one macro-tile's packed panels:
// B micro-panel outer, A micro-panel inner, so the 16-column panel stays
// L1-resident across the row sweep. Shared by the per-tile-packing and
// shared-B drivers.
func sweepTile(t *task, s *gemmScratch, packedA, packedB []float32, i0, j0, mblk, nblk, kc int) {
	dst := t.dst
	ld := dst.Cols
	for jr := 0; jr < nblk; jr += microN {
		nv := min(microN, nblk-jr)
		pb := packedB[jr*kc:]
		for ir := 0; ir < mblk; ir += microM {
			mv := min(microM, mblk-ir)
			pa := packedA[ir*kc:]
			cbase := (i0+ir)*ld + j0 + jr
			if mv == microM && nv == microN {
				kern4x16(kc, pa, pb, dst.Data[cbase:], ld)
			} else {
				edgeTile(s, kc, pa, pb, dst.Data, cbase, ld, mv, nv)
			}
		}
	}
}

// edgeTile runs the full 4×16 micro-kernel into the scratch edge buffer
// (operand panels are zero-padded, so the extra lanes compute zeros) and
// adds only the valid mv×nv region into dst.
func edgeTile(s *gemmScratch, kc int, pa, pb, dstData []float32, cbase, ld, mv, nv int) {
	Zero(s.edge[:])
	kern4x16(kc, pa, pb, s.edge[:], microN)
	for r := 0; r < mv; r++ {
		cr := dstData[cbase+r*ld : cbase+r*ld+nv]
		er := s.edge[r*microN : r*microN+nv]
		for j := range cr {
			cr[j] += er[j]
		}
	}
}

// applyEpilogue applies the fused bias/activation to the dst region
// [i0,i1)×[j0,j1). Bias is indexed by absolute column, matching a
// length-n bias row.
func applyEpilogue(dst *Matrix, i0, i1, j0, j1 int, bias []float32, ep Epilogue) {
	bv := bias[j0:j1]
	for i := i0; i < i1; i++ {
		row := dst.Data[i*dst.Cols+j0 : i*dst.Cols+j1]
		switch ep {
		case EpBias:
			for j, v := range bv {
				row[j] += v
			}
		case EpBiasReLU:
			for j, v := range bv {
				if x := row[j] + v; x > 0 {
					row[j] = x
				} else {
					row[j] = 0
				}
			}
		case EpBiasTanh:
			for j, v := range bv {
				row[j] = float32(math.Tanh(float64(row[j] + v)))
			}
		}
	}
}

// The naive kernels below are the reference implementation: plain loop
// nests whose accumulation order (ascending k per output element) the
// equivalence suite checks the blocked path against, and the fast path for
// problems too small to amortize packing.

func matMulRange(dst, a, b *Matrix, r0, r1 int) {
	n := b.Cols
	for i := r0; i < r1; i++ {
		ci := dst.Data[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		ai := a.Data[i*a.Cols : (i+1)*a.Cols]
		for k, aik := range ai {
			if aik == 0 {
				continue
			}
			bk := b.Data[k*n : (k+1)*n]
			Axpy(aik, bk, ci)
		}
	}
}

func matMulABTRange(dst, a, b *Matrix, r0, r1 int) {
	for i := r0; i < r1; i++ {
		ai := a.Data[i*a.Cols : (i+1)*a.Cols]
		di := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := 0; j < b.Rows; j++ {
			bj := b.Data[j*b.Cols : (j+1)*b.Cols]
			di[j] = Dot(ai, bj)
		}
	}
}

func matMulATBAddRange(dst, a, b *Matrix, c0, c1 int) {
	for k := 0; k < a.Rows; k++ {
		ak := a.Data[k*a.Cols : (k+1)*a.Cols]
		bk := b.Data[k*b.Cols : (k+1)*b.Cols]
		for c := c0; c < c1; c++ {
			if aik := ak[c]; aik != 0 {
				Axpy(aik, bk, dst.Data[c*dst.Cols:(c+1)*dst.Cols])
			}
		}
	}
}
