package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// gemmParallelThreshold is the minimum number of multiply-adds before MatMul
// fans work out to multiple goroutines; below it the spawn cost dominates.
const gemmParallelThreshold = 1 << 16

// MatMul computes dst = a·b. dst must be preallocated with shape
// a.Rows×b.Cols and must not alias a or b. The kernel iterates i,k,j so the
// inner loop walks rows of b sequentially, which keeps accesses
// cache-friendly for row-major storage. Work is split across row blocks of
// dst when the problem is large enough and GOMAXPROCS > 1.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	parallelRows(a.Rows, a.Rows*a.Cols*b.Cols, func(r0, r1 int) {
		matMulRange(dst, a, b, r0, r1)
	})
}

func matMulRange(dst, a, b *Matrix, r0, r1 int) {
	n := b.Cols
	for i := r0; i < r1; i++ {
		ci := dst.Data[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		ai := a.Data[i*a.Cols : (i+1)*a.Cols]
		for k, aik := range ai {
			if aik == 0 {
				continue
			}
			bk := b.Data[k*n : (k+1)*n]
			Axpy(aik, bk, ci)
		}
	}
}

// MatMulABT computes dst = a·bᵀ. dst must have shape a.Rows×b.Rows. Used in
// backprop for dX = dY·Wᵀ without materializing the transpose.
func MatMulABT(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulABT inner dims %d vs %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulABT dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	parallelRows(a.Rows, a.Rows*a.Cols*b.Rows, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			di := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for j := 0; j < b.Rows; j++ {
				bj := b.Data[j*b.Cols : (j+1)*b.Cols]
				di[j] = Dot(ai, bj)
			}
		}
	})
}

// MatMulATBAdd computes dst += aᵀ·b. dst must have shape a.Cols×b.Cols. The
// accumulate form matches gradient accumulation for dW += Xᵀ·dY.
func MatMulATBAdd(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulATBAdd inner dims %d vs %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulATBAdd dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	// Parallelize over rows of dst (columns of a) so writers never overlap.
	parallelRows(a.Cols, a.Rows*a.Cols*b.Cols, func(c0, c1 int) {
		for k := 0; k < a.Rows; k++ {
			ak := a.Data[k*a.Cols : (k+1)*a.Cols]
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for c := c0; c < c1; c++ {
				if aik := ak[c]; aik != 0 {
					Axpy(aik, bk, dst.Data[c*dst.Cols:(c+1)*dst.Cols])
				}
			}
		}
	})
}

// parallelRows splits [0, rows) into contiguous chunks and runs fn on each,
// in parallel when the estimated work is large enough.
func parallelRows(rows, work int, fn func(r0, r1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || work < gemmParallelThreshold {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for r0 := 0; r0 < rows; r0 += chunk {
		r1 := r0 + chunk
		if r1 > rows {
			r1 = rows
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			fn(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}
