package tensor

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
)

// forceGemmMode runs the test body with the kernel selection pinned,
// restoring the startup mode afterwards.
func forceGemmMode(t *testing.T, mode gemmModeT) {
	t.Helper()
	old := gemmMode
	gemmMode = mode
	t.Cleanup(func() { gemmMode = old })
}

// refGemm computes the float64-accumulated reference for any operand form.
func refGemm(kind gemmKind, dst, a, b *Matrix) {
	m, n, k := gemmDims(kind, a, b)
	at := func(i, p int) float64 {
		if kind == gemmTNAdd {
			return float64(a.At(p, i))
		}
		return float64(a.At(i, p))
	}
	bt := func(p, j int) float64 {
		if kind == gemmNT {
			return float64(b.At(j, p))
		}
		return float64(b.At(p, j))
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += at(i, p) * bt(p, j)
			}
			if kind == gemmTNAdd {
				dst.Data[i*n+j] += float32(s)
			} else {
				dst.Data[i*n+j] = float32(s)
			}
		}
	}
}

// gemmTol is the documented equivalence bound between any GEMM kernel in
// this package and the float64-accumulated reference: per output element
// the float32 accumulation over k terms (with or without fused rounding)
// keeps |err| ≤ (k+4)·ε₃₂·max|a|·max|b|. See the package comment.
func gemmTol(k int, a, b *Matrix) float64 {
	amax, bmax := 0.0, 0.0
	for _, v := range a.Data {
		amax = math.Max(amax, math.Abs(float64(v)))
	}
	for _, v := range b.Data {
		bmax = math.Max(bmax, math.Abs(float64(v)))
	}
	return float64(k+4) * 1.2e-7 * math.Max(amax*bmax, 1e-6)
}

func maxAbsDiffSlices(x, y []float32) float64 {
	var max float64
	for i := range x {
		if d := math.Abs(float64(x[i]) - float64(y[i])); d > max {
			max = d
		}
	}
	return max
}

// randShape draws a GEMM shape biased toward the awkward cases: tiny dims,
// odd sizes, micro-tile tails (m%4, n%16 ≠ 0) and straddlers of every
// block boundary (blockM rows, and blockN/blockK so multi-column-tile and
// multi-k-slab decompositions are exercised in all operand positions).
func randShape(rng *rand.Rand) (m, k, n int) {
	pick := func() int {
		switch rng.IntN(6) {
		case 0:
			return 1 + rng.IntN(4) // tiny
		case 1:
			return microM*(1+rng.IntN(3)) + rng.IntN(microM) // row-tile tail
		case 2:
			return microN*(1+rng.IntN(2)) + rng.IntN(microN) // col-tile tail
		case 3:
			return blockM + rng.IntN(9) - 4 // row macro-block straddle
		case 4:
			return blockN + rng.IntN(9) - 4 // column-tile / k-slab straddle
		default:
			return 1 + rng.IntN(70)
		}
	}
	return pick(), pick(), pick()
}

// TestBlockedGemmMatchesReferenceRandomShapes is the property suite for the
// blocked path: for every operand form, random awkward shapes must match
// the float64 reference within the documented tolerance, and the inputs
// must come back bit-identical (no aliasing or scratch leaks into
// operands).
func TestBlockedGemmMatchesReferenceRandomShapes(t *testing.T) {
	forceGemmMode(t, gemmBlocked)
	rng := rand.New(rand.NewPCG(42, 43))
	for iter := 0; iter < 200; iter++ {
		m, k, n := randShape(rng)
		for _, kind := range []gemmKind{gemmNN, gemmNT, gemmTNAdd} {
			var a, b *Matrix
			switch kind {
			case gemmNN:
				a, b = randMatrix(rng, m, k), randMatrix(rng, k, n)
			case gemmNT:
				a, b = randMatrix(rng, m, k), randMatrix(rng, n, k)
			case gemmTNAdd:
				a, b = randMatrix(rng, k, m), randMatrix(rng, k, n)
			}
			aCopy, bCopy := a.Clone(), b.Clone()
			got := randMatrix(rng, m, n) // nonzero so overwrite bugs show
			want := got.Clone()
			if kind != gemmTNAdd {
				want.Zero()
			}
			refGemm(kind, want, a, b)
			switch kind {
			case gemmNN:
				MatMul(got, a, b)
			case gemmNT:
				MatMulABT(got, a, b)
			case gemmTNAdd:
				MatMulATBAdd(got, a, b)
			}
			tol := gemmTol(k, a, b)
			if kind == gemmTNAdd {
				tol = gemmTol(k+1, a, b) // one extra add against prior dst
			}
			if d := got.MaxAbsDiff(want); d > tol {
				t.Fatalf("iter %d kind %d shape %dx%dx%d: max diff %v > tol %v", iter, kind, m, k, n, d, tol)
			}
			if maxAbsDiffSlices(a.Data, aCopy.Data) != 0 || maxAbsDiffSlices(b.Data, bCopy.Data) != 0 {
				t.Fatalf("iter %d kind %d shape %dx%dx%d: inputs modified", iter, kind, m, k, n)
			}
		}
	}
}

// TestFusedEpiloguesMatchUnfusedComposition pins the fused epilogue
// contract: bias and activation are applied after the full k accumulation,
// so the fused call must be bit-identical to MatMul followed by the
// separate bias and activation passes — under both kernels.
func TestFusedEpiloguesMatchUnfusedComposition(t *testing.T) {
	for _, mode := range []gemmModeT{gemmNaive, gemmBlocked} {
		name := map[gemmModeT]string{gemmNaive: "naive", gemmBlocked: "blocked"}[mode]
		t.Run(name, func(t *testing.T) {
			forceGemmMode(t, mode)
			rng := rand.New(rand.NewPCG(7, uint64(mode)))
			for iter := 0; iter < 60; iter++ {
				m, k, n := randShape(rng)
				a, b := randMatrix(rng, m, k), randMatrix(rng, k, n)
				bias := make([]float32, n)
				for i := range bias {
					bias[i] = float32(rng.NormFloat64())
				}
				unfused := New(m, n)
				MatMul(unfused, a, b)
				unfused.AddRowVector(bias)

				got := New(m, n)
				MatMulBias(got, a, b, bias)
				if d := got.MaxAbsDiff(unfused); d != 0 {
					t.Fatalf("iter %d %dx%dx%d: MatMulBias differs from composition by %v", iter, m, k, n, d)
				}

				MatMulBiasReLU(got, a, b, bias)
				for i, v := range unfused.Data {
					want := v
					if want < 0 {
						want = 0
					}
					if got.Data[i] != want {
						t.Fatalf("iter %d: relu epilogue element %d: %v want %v", iter, i, got.Data[i], want)
					}
				}

				MatMulBiasTanh(got, a, b, bias)
				for i, v := range unfused.Data {
					want := float32(math.Tanh(float64(v)))
					if got.Data[i] != want {
						t.Fatalf("iter %d: tanh epilogue element %d: %v want %v", iter, i, got.Data[i], want)
					}
				}
			}
		})
	}
}

// TestBlockedGemmZeroDims covers the degenerate shapes: zero rows or
// columns are no-ops, and a zero inner dimension must still zero the
// destination for the overwrite forms (and leave it alone for the
// accumulate form).
func TestBlockedGemmZeroDims(t *testing.T) {
	for _, mode := range []gemmModeT{gemmNaive, gemmBlocked} {
		forceGemmMode(t, mode)
		// k = 0: overwrite forms zero dst.
		dst := New(3, 5)
		dst.Fill(9)
		MatMul(dst, New(3, 0), New(0, 5))
		for _, v := range dst.Data {
			if v != 0 {
				t.Fatalf("mode %d: k=0 MatMul left %v, want 0", mode, v)
			}
		}
		dst.Fill(9)
		MatMulABT(dst, New(3, 0), New(5, 0))
		for _, v := range dst.Data {
			if v != 0 {
				t.Fatalf("mode %d: k=0 MatMulABT left %v, want 0", mode, v)
			}
		}
		// k = 0 accumulate form: dst untouched.
		dst.Fill(2)
		MatMulATBAdd(dst, New(0, 3), New(0, 5))
		for _, v := range dst.Data {
			if v != 2 {
				t.Fatalf("mode %d: k=0 MatMulATBAdd changed dst to %v", mode, v)
			}
		}
		// k = 0 with fused epilogue: dst = act(bias).
		bias := []float32{-1, 2, -3, 4, -5}
		MatMulBiasReLU(dst, New(3, 0), New(0, 5), bias)
		for i, v := range dst.Data {
			want := bias[i%5]
			if want < 0 {
				want = 0
			}
			if v != want {
				t.Fatalf("mode %d: k=0 epilogue element %d = %v, want %v", mode, i, v, want)
			}
		}
		// m = 0 / n = 0: nothing to do, must not panic.
		MatMul(New(0, 5), New(0, 7), New(7, 5))
		MatMul(New(5, 0), New(5, 7), New(7, 0))
		MatMulATBAdd(New(0, 4), New(6, 0), New(6, 4))
	}
}

// TestBlockedGemmDeterministicRepeat pins fixed-shape bit-reproducibility:
// repeated runs on identical inputs — dispatched through the worker pool
// with whatever scheduling happens — must produce byte-identical output,
// the property the DDP overlap/serial equivalence gates build on.
func TestBlockedGemmDeterministicRepeat(t *testing.T) {
	forceGemmMode(t, gemmBlocked)
	rng := rand.New(rand.NewPCG(5, 6))
	a := randMatrix(rng, 65, 300)
	b := randMatrix(rng, 300, 130)
	bias := make([]float32, 130)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	first := New(65, 130)
	MatMulBiasReLU(first, a, b, bias)
	got := New(65, 130)
	for run := 0; run < 10; run++ {
		got.Fill(float32(run))
		MatMulBiasReLU(got, a, b, bias)
		if d := got.MaxAbsDiff(first); d != 0 {
			t.Fatalf("run %d: diverged by %v from first run", run, d)
		}
	}
}

// TestGemmModeFromEnv checks the MELISSA_GEMM parsing contract: the two
// documented values select a kernel, anything else falls back to the
// size-based auto policy.
func TestGemmModeFromEnv(t *testing.T) {
	cases := map[string]gemmModeT{
		"naive":   gemmNaive,
		"blocked": gemmBlocked,
		"":        gemmAuto,
		"auto":    gemmAuto,
		"bogus":   gemmAuto,
	}
	for v, want := range cases {
		if got := gemmModeFromEnv(v); got != want {
			t.Fatalf("gemmModeFromEnv(%q) = %d, want %d", v, got, want)
		}
	}
}

// TestUseBlockedPolicy pins the auto dispatch: tiny problems stay on the
// naive kernels, training-shaped ones go blocked, and the forced modes win
// regardless of size.
func TestUseBlockedPolicy(t *testing.T) {
	forceGemmMode(t, gemmAuto)
	if useBlocked(4, 4, 4) {
		t.Fatal("4x4x4 should use the naive fast path")
	}
	if !useBlocked(10, 256, 256) {
		t.Fatal("training shapes should use the blocked kernel")
	}
	gemmMode = gemmNaive
	if useBlocked(256, 256, 1024) {
		t.Fatal("MELISSA_GEMM=naive must force the reference kernel")
	}
	gemmMode = gemmBlocked
	if !useBlocked(2, 2, 2) {
		t.Fatal("MELISSA_GEMM=blocked must force the blocked kernel")
	}
}

// TestGemmZeroAllocSteadyState verifies the packing-scratch freelist: after
// warm-up, blocked GEMM calls (all forms, fused epilogues included) perform
// zero heap allocations.
func TestGemmZeroAllocSteadyState(t *testing.T) {
	forceGemmMode(t, gemmBlocked)
	rng := rand.New(rand.NewPCG(8, 9))
	x := randMatrix(rng, 10, 256)
	w := randMatrix(rng, 256, 300)
	bias := make([]float32, 300)
	y := New(10, 300)
	dy := randMatrix(rng, 10, 300)
	dw := New(256, 300)
	dx := New(10, 256)
	step := func() {
		MatMulBiasReLU(y, x, w, bias)
		MatMulATBAdd(dw, x, dy)
		MatMulABT(dx, dy, w)
	}
	step() // warm the scratch freelist
	if avg := testing.AllocsPerRun(50, step); avg != 0 {
		t.Fatalf("blocked GEMM allocates %v per step in steady state, want 0", avg)
	}
}

// TestDotFloat64Accumulation pins the documented Dot contract on a
// long vector designed to defeat float32 accumulation: alternating huge and
// tiny terms whose float32 running sum loses the tiny ones entirely.
func TestDotFloat64Accumulation(t *testing.T) {
	const n = 1 << 16
	x := make([]float32, n)
	y := make([]float32, n)
	var want float64
	for i := range x {
		if i%2 == 0 {
			x[i], y[i] = 4096, 4096 // product 2^24: float32 ulp is 2
		} else {
			x[i], y[i] = 1, 0.5 // product 0.5: absorbed by a float32 sum
		}
		want += float64(x[i]) * float64(y[i])
	}
	got := float64(Dot(x, y))
	// float64 accumulation keeps every 0.5; a float32 sum would drop all
	// n/2 of them (a 16384.0 deficit here).
	if math.Abs(got-want) > want*1e-7 {
		t.Fatalf("Dot = %v, want %v (err %v): float32 accumulation?", got, want, got-want)
	}
	// Deterministic sanity on a short vector with an odd tail.
	if d := Dot([]float32{1, 2, 3, 4, 5}, []float32{1, 1, 1, 1, 1}); d != 15 {
		t.Fatalf("Dot tail handling: got %v, want 15", d)
	}
}

// TestMicroKernelsAgree compares the active micro-kernel (FMA assembly
// where available) against the portable Go kernel on random panels,
// within the fused-rounding tolerance.
func TestMicroKernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 11))
	for _, kc := range []int{0, 1, 3, 17, 256} {
		pa := make([]float32, microM*max(kc, 1))
		pb := make([]float32, microN*max(kc, 1))
		for i := range pa {
			pa[i] = float32(rng.NormFloat64())
		}
		for i := range pb {
			pb[i] = float32(rng.NormFloat64())
		}
		cActive := make([]float32, microM*microN)
		cGo := make([]float32, microM*microN)
		for i := range cActive {
			cActive[i] = float32(i) * 0.25
			cGo[i] = float32(i) * 0.25
		}
		kern4x16(kc, pa, pb, cActive, microN)
		kern4x16Go(kc, pa, pb, cGo, microN)
		tol := float64(kc+4) * 1.2e-7 * 16
		if d := maxAbsDiffSlices(cActive, cGo); d > tol {
			t.Fatalf("kc=%d: kernels differ by %v > %v", kc, d, tol)
		}
	}
}

// TestBlockedLargeK exercises multiple blockK slabs (k > 2·blockK) so the
// k-panel accumulation across packing rounds is covered.
func TestBlockedLargeK(t *testing.T) {
	forceGemmMode(t, gemmBlocked)
	rng := rand.New(rand.NewPCG(12, 13))
	m, k, n := 9, 2*blockK+37, 21
	a, b := randMatrix(rng, m, k), randMatrix(rng, k, n)
	got := New(m, n)
	MatMul(got, a, b)
	want := New(m, n)
	refGemm(gemmNN, want, a, b)
	if d := got.MaxAbsDiff(want); d > gemmTol(k, a, b) {
		t.Fatalf("large-k blocked: diff %v > tol %v", d, gemmTol(k, a, b))
	}
}

// TestBlockedMultiColumnTiles pins the n > blockN decomposition — several
// column macro-tiles per row, the production output-layer shape — for all
// three operand forms and a fused epilogue, including the j0 > 0 paths of
// packBNN/packBT and the bias[j0:j1] epilogue slicing.
func TestBlockedMultiColumnTiles(t *testing.T) {
	forceGemmMode(t, gemmBlocked)
	rng := rand.New(rand.NewPCG(14, 15))
	m, k, n := 10, blockK+29, 2*blockN+37 // tails in every block dimension
	for _, kind := range []gemmKind{gemmNN, gemmNT, gemmTNAdd} {
		var a, b *Matrix
		switch kind {
		case gemmNN:
			a, b = randMatrix(rng, m, k), randMatrix(rng, k, n)
		case gemmNT:
			a, b = randMatrix(rng, m, k), randMatrix(rng, n, k)
		case gemmTNAdd:
			a, b = randMatrix(rng, k, m), randMatrix(rng, k, n)
		}
		gm, gn, gk := gemmDims(kind, a, b)
		got := randMatrix(rng, gm, gn)
		want := got.Clone()
		if kind != gemmTNAdd {
			want.Zero()
		}
		refGemm(kind, want, a, b)
		switch kind {
		case gemmNN:
			MatMul(got, a, b)
		case gemmNT:
			MatMulABT(got, a, b)
		case gemmTNAdd:
			MatMulATBAdd(got, a, b)
		}
		if d := got.MaxAbsDiff(want); d > gemmTol(gk+1, a, b) {
			t.Fatalf("kind %d %dx%dx%d: diff %v > tol %v", kind, gm, gk, gn, d, gemmTol(gk+1, a, b))
		}
	}
	// Fused epilogue across column tiles: bit-identical to the unfused
	// composition at the same width.
	a, b := randMatrix(rng, m, k), randMatrix(rng, k, n)
	bias := make([]float32, n)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	unfused := New(m, n)
	MatMul(unfused, a, b)
	unfused.AddRowVector(bias)
	got := New(m, n)
	MatMulBiasReLU(got, a, b, bias)
	for i, v := range unfused.Data {
		want := v
		if want < 0 {
			want = 0
		}
		if got.Data[i] != want {
			t.Fatalf("fused relu epilogue across column tiles: element %d = %v, want %v", i, got.Data[i], want)
		}
	}
}

// TestNaiveMatchesReferenceRandomShapes keeps the reference kernels honest
// against the float64 oracle too — they are both the equivalence baseline
// and the small-size fast path.
func TestNaiveMatchesReferenceRandomShapes(t *testing.T) {
	forceGemmMode(t, gemmNaive)
	rng := rand.New(rand.NewPCG(77, 78))
	for iter := 0; iter < 40; iter++ {
		m, k, n := randShape(rng)
		a, b := randMatrix(rng, m, k), randMatrix(rng, k, n)
		got := New(m, n)
		MatMul(got, a, b)
		want := New(m, n)
		refGemm(gemmNN, want, a, b)
		if d := got.MaxAbsDiff(want); d > gemmTol(k, a, b) {
			t.Fatalf("iter %d shape %dx%dx%d: naive diff %v", iter, m, k, n, d)
		}
	}
}

func ExampleMatMulBiasReLU() {
	a := FromSlice(1, 2, []float32{1, 2})
	w := FromSlice(2, 2, []float32{1, -1, 1, -1})
	dst := New(1, 2)
	MatMulBiasReLU(dst, a, w, []float32{0.5, 0.5})
	fmt.Println(dst.Data)
	// Output: [3.5 0]
}
