package tensor

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			out.Set(i, j, float32(s))
		}
	}
	return out
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %v, want 7", got)
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row(1)[2] = %v, want 7", row[2])
	}
	row[0] = 3 // Row must alias storage.
	if m.At(1, 0) != 3 {
		t.Fatal("Row does not alias matrix storage")
	}
}

func TestFromSliceAliases(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, data)
	data[0] = 9
	if m.At(0, 0) != 9 {
		t.Fatal("FromSlice should not copy")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 3, make([]float32, 5))
}

func TestCloneIndependent(t *testing.T) {
	m := New(2, 2)
	m.Fill(1)
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{10, 20, 30})
	a.Add(b)
	want := []float32{11, 22, 33}
	for i, v := range a.Data {
		if v != want[i] {
			t.Fatalf("Add: got %v want %v", a.Data, want)
		}
	}
	a.Sub(b)
	for i, v := range a.Data {
		if v != float32(i+1) {
			t.Fatalf("Sub: got %v", a.Data)
		}
	}
	a.Scale(2)
	for i, v := range a.Data {
		if v != 2*float32(i+1) {
			t.Fatalf("Scale: got %v", a.Data)
		}
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Add(New(2, 3))
}

func TestAddRowVector(t *testing.T) {
	m := New(2, 3)
	m.AddRowVector([]float32{1, 2, 3})
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			if m.At(r, c) != float32(c+1) {
				t.Fatalf("AddRowVector: got %v", m.Data)
			}
		}
	}
}

func TestSumRowsInto(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 10, 20, 30})
	dst := make([]float32, 3)
	m.SumRowsInto(dst)
	want := []float32{11, 22, 33}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("SumRowsInto: got %v want %v", dst, want)
		}
	}
	// Accumulates rather than overwrites.
	m.SumRowsInto(dst)
	if dst[0] != 22 {
		t.Fatalf("SumRowsInto should accumulate, got %v", dst)
	}
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("shape %dx%d", tr.Rows, tr.Cols)
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			if m.At(r, c) != tr.At(c, r) {
				t.Fatal("transpose mismatch")
			}
		}
	}
}

func TestNorm2(t *testing.T) {
	m := FromSlice(1, 2, []float32{3, 4})
	if got := m.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 1, 7}, {16, 16, 16}, {33, 17, 9}, {64, 128, 32}}
	for _, s := range shapes {
		a := randMatrix(rng, s[0], s[1])
		b := randMatrix(rng, s[1], s[2])
		got := New(s[0], s[2])
		MatMul(got, a, b)
		want := naiveMatMul(a, b)
		if d := got.MaxAbsDiff(want); d > 1e-3 {
			t.Fatalf("shape %v: max diff %v", s, d)
		}
	}
}

func TestMatMulOverwritesDst(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := randMatrix(rng, 4, 5)
	b := randMatrix(rng, 5, 6)
	dst := New(4, 6)
	dst.Fill(99)
	MatMul(dst, a, b)
	want := naiveMatMul(a, b)
	if d := dst.MaxAbsDiff(want); d > 1e-3 {
		t.Fatalf("MatMul must overwrite dst; diff %v", d)
	}
}

func TestMatMulABTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := randMatrix(rng, 7, 11)
	b := randMatrix(rng, 9, 11)
	got := New(7, 9)
	MatMulABT(got, a, b)
	want := naiveMatMul(a, b.Transpose())
	if d := got.MaxAbsDiff(want); d > 1e-3 {
		t.Fatalf("max diff %v", d)
	}
}

func TestMatMulATBAddAccumulates(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	a := randMatrix(rng, 11, 5)
	b := randMatrix(rng, 11, 6)
	got := New(5, 6)
	got.Fill(1)
	MatMulATBAdd(got, a, b)
	want := naiveMatMul(a.Transpose(), b)
	for i := range want.Data {
		want.Data[i]++
	}
	if d := got.MaxAbsDiff(want); d > 1e-3 {
		t.Fatalf("max diff %v", d)
	}
}

func TestMatMulDimPanics(t *testing.T) {
	cases := []func(){
		func() { MatMul(New(2, 2), New(2, 3), New(4, 2)) },
		func() { MatMul(New(3, 2), New(2, 3), New(3, 2)) },
		func() { MatMulABT(New(2, 2), New(2, 3), New(2, 4)) },
		func() { MatMulATBAdd(New(2, 2), New(3, 2), New(4, 2)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: (A·B)·C == A·(B·C) within float tolerance, exercised by quick.
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		n := 2 + int(seed%6)
		a, b, c := randMatrix(rng, n, n), randMatrix(rng, n, n), randMatrix(rng, n, n)
		ab, bc := New(n, n), New(n, n)
		MatMul(ab, a, b)
		MatMul(bc, b, c)
		left, right := New(n, n), New(n, n)
		MatMul(left, ab, c)
		MatMul(right, a, bc)
		return left.MaxAbsDiff(right) < 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAxpyDotScal(t *testing.T) {
	x := []float32{1, 2, 3, 4, 5}
	y := []float32{10, 20, 30, 40, 50}
	Axpy(2, x, y)
	want := []float32{12, 24, 36, 48, 60}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy: got %v want %v", y, want)
		}
	}
	if d := Dot(x, x); d != 55 {
		t.Fatalf("Dot = %v, want 55", d)
	}
	Scal(0.5, y)
	if y[0] != 6 {
		t.Fatalf("Scal: got %v", y)
	}
	if s := SumF64(x); s != 15 {
		t.Fatalf("SumF64 = %v", s)
	}
	Zero(x)
	for _, v := range x {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestAxpyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Axpy(1, make([]float32, 3), make([]float32, 4))
}

// Property: Dot is symmetric and linear in its first argument.
func TestDotLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		n := 1 + int(seed%32)
		x, y := make([]float32, n), make([]float32, n)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
			y[i] = float32(rng.NormFloat64())
		}
		if math.Abs(float64(Dot(x, y)-Dot(y, x))) > 1e-3 {
			return false
		}
		x2 := make([]float32, n)
		copy(x2, x)
		Scal(3, x2)
		return math.Abs(float64(Dot(x2, y)-3*Dot(x, y))) < 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	x := randMatrix(rng, 256, 256)
	y := randMatrix(rng, 256, 256)
	dst := New(256, 256)
	b.SetBytes(int64(256 * 256 * 256 * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, x, y)
	}
}
