//go:build amd64

package tensor

// Runtime selection of the AVX2+FMA micro-kernel. The Go toolchain does not
// auto-vectorize, so the 16-wide tile columns only pay off through the
// hand-written kernel in microkernel_amd64.s; it is enabled once at process
// start when CPUID reports FMA+AVX2 and the OS has enabled YMM state
// (OSXSAVE with XCR0 SSE+AVX bits). Everything is stdlib-free so the tensor
// package stays dependency-less.

//go:noescape
func kern4x16FMA(kc int, pa, pb, c []float32, ldc int)

//go:noescape
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv() (eax, edx uint32)

const (
	cpuidOSXSAVE = 1 << 27 // leaf 1 ECX
	cpuidFMA     = 1 << 12 // leaf 1 ECX
	cpuidAVX2    = 1 << 5  // leaf 7 EBX
	xcr0AVXState = 0x6     // XMM + YMM state enabled by the OS
)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&cpuidOSXSAVE == 0 || ecx1&cpuidFMA == 0 {
		return
	}
	_, ebx7, _, _ := cpuid(7, 0)
	if ebx7&cpuidAVX2 == 0 {
		return
	}
	if eax, _ := xgetbv(); eax&xcr0AVXState != xcr0AVXState {
		return
	}
	kern4x16 = kern4x16FMA
}
