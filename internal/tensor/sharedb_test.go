package tensor

import (
	"math/rand/v2"
	"testing"
)

// TestSharedBMatchesPerTilePacking pins that the shared-B driver (packs
// each k-slab's B panels once, cooperatively) is bit-identical to the
// original per-tile-packing driver it replaced for multi-row-tile outputs:
// same tile decomposition, same per-element accumulation order, only the
// packing reuse differs.
func TestSharedBMatchesPerTilePacking(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 23))
	shapes := []struct{ m, n, k int }{
		{65, 130, 300},     // tails on every axis, 2 k-slabs
		{256, 300, 10},     // training dW shape: 4 row tiles, short k
		{2 * blockM, blockN, blockK}, // exact block multiples
		{blockM + 1, 2*blockN + 3, 2*blockK + 5},
	}
	for _, kind := range []gemmKind{gemmNN, gemmNT, gemmTNAdd} {
		for _, sh := range shapes {
			var a, b *Matrix
			switch kind {
			case gemmNN:
				a, b = randMatrix(rng, sh.m, sh.k), randMatrix(rng, sh.k, sh.n)
			case gemmNT:
				a, b = randMatrix(rng, sh.m, sh.k), randMatrix(rng, sh.n, sh.k)
			case gemmTNAdd:
				a, b = randMatrix(rng, sh.k, sh.m), randMatrix(rng, sh.k, sh.n)
			}
			bias := make([]float32, sh.n)
			for i := range bias {
				bias[i] = float32(rng.NormFloat64())
			}
			ep := EpNone
			if kind == gemmNN {
				ep = EpBiasReLU // epilogue only on the overwrite form
			}

			seed := randMatrix(rng, sh.m, sh.n) // gemmTNAdd accumulates
			want := New(sh.m, sh.n)
			copy(want.Data, seed.Data)
			got := New(sh.m, sh.n)
			copy(got.Data, seed.Data)

			// Reference: the per-tile-packing driver, run directly.
			rowTiles := (sh.m + blockM - 1) / blockM
			colTiles := (sh.n + blockN - 1) / blockN
			ref := task{op: opGemmTile, dst: want, a: a, b: b, bias: bias, gk: kind, ep: ep}
			gemmTileRange(&ref, 0, rowTiles*colTiles)

			gemmSharedB(kind, got, a, b, bias, ep, sh.k, rowTiles, colTiles)

			if d := got.MaxAbsDiff(want); d != 0 {
				t.Fatalf("kind %d shape %dx%dx%d: shared-B diverges from per-tile packing by %v",
					kind, sh.m, sh.n, sh.k, d)
			}
		}
	}
}
