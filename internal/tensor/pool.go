package tensor

import (
	"runtime"
	"sync"
)

// The kernels in this package parallelize across independent work ranges: a
// blocked GEMM fans out macro-tiles, the naive kernels fan out row (or
// column) ranges, and the fused optimizer fans out slab chunks. A naive
// `go func` per range allocates a closure and a goroutine per call, which
// puts garbage on the training hot path. Instead a fixed pool of worker
// goroutines consumes op-coded task descriptors from a channel: descriptors
// are plain structs sent by value, so steady-state dispatch performs zero
// allocations.

// op selects the kernel a worker runs for a task.
type op uint8

const (
	opMatMul op = iota
	opMatMulABT
	opMatMulATBAdd
	opGemmTile
	opPackB
	opGemmTileShared
	opAdam
)

// Per-op minimum work before a kernel fans out to the pool; below it the
// dispatch cost dominates. GEMM work is counted in multiply-adds (each ~1
// load + 1 FMA through the micro-kernel). Elementwise work is counted in
// elements: one Adam element costs ~3 ns on the CI-class Xeon (see
// BenchmarkAdamStepSizes), so 1<<14 elements ≈ 50 µs of work per split —
// comfortably above the ~2 µs dispatch+join overhead, while still
// parallelizing every real layer of the paper's surrogate (the smallest,
// 6×256, sits just below and correctly stays inline).
const (
	gemmParallelThreshold     = 1 << 16
	elemwiseParallelThreshold = 1 << 14
)

// threshold returns the op's minimum fan-out work in the op's own units.
func (t *task) threshold() int {
	if t.op == opAdam {
		return elemwiseParallelThreshold
	}
	return gemmParallelThreshold
}

// task is one contiguous index range [i0, i1) of a parallel kernel — rows,
// columns, macro-tiles or slab elements depending on op — plus the operands
// the kernel needs. It is sent by value; the struct must stay free of
// per-call heap references beyond the operands themselves.
type task struct {
	op        op
	dst, a, b *Matrix
	bias      []float32
	gk        gemmKind
	ep        Epilogue
	// shared is the slab-wide packed B buffer of the shared-B driver;
	// k0/kc locate the current blockK slab of the shared dimension.
	shared []float32
	k0, kc int
	vals   []float32
	grads     []float32
	m, v      []float32
	alpha     float32
	beta1     float32
	beta2     float32
	eps       float32
	i0, i1    int
	wg        *sync.WaitGroup
}

// run executes the task's range.
func (t *task) run() {
	switch t.op {
	case opMatMul:
		matMulRange(t.dst, t.a, t.b, t.i0, t.i1)
	case opMatMulABT:
		matMulABTRange(t.dst, t.a, t.b, t.i0, t.i1)
	case opMatMulATBAdd:
		matMulATBAddRange(t.dst, t.a, t.b, t.i0, t.i1)
	case opGemmTile:
		gemmTileRange(t, t.i0, t.i1)
	case opPackB:
		packBRange(t, t.i0, t.i1)
	case opGemmTileShared:
		gemmTileSharedRange(t, t.i0, t.i1)
	case opAdam:
		adamRange(t.vals, t.grads, t.m, t.v, t.alpha, t.beta1, t.beta2, t.eps, t.i0, t.i1)
	}
}

var (
	poolOnce sync.Once
	poolSize int
	poolCh   chan task

	// wgPool recycles the per-call WaitGroups so dispatch itself does not
	// allocate. (A stack WaitGroup would escape into the channel.)
	wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}
)

// startPool launches the worker goroutines on first use. The pool is sized
// to GOMAXPROCS at startup; tasks are tiny and independent, so a queue a few
// times deeper than the pool keeps every worker fed.
func startPool() {
	poolSize = runtime.GOMAXPROCS(0)
	poolCh = make(chan task, 4*poolSize)
	for i := 0; i < poolSize; i++ {
		go func() {
			for t := range poolCh {
				t.run()
				t.wg.Done()
			}
		}()
	}
}

// parallel splits [0, n) into contiguous chunks and runs t's kernel on each.
// Below the op's work threshold (or single-proc) it runs inline. The
// caller's goroutine executes the final chunk itself, and any chunk that
// cannot be enqueued without blocking (pool saturated by other ranks) also
// runs inline, so the scheme cannot deadlock and never waits on a full
// queue. Every kernel is element-independent across chunks — GEMM
// macro-tiles own disjoint output regions whose per-tile math is fixed by
// shape alone — so results are bit-identical to a serial run regardless of
// chunk boundaries or which worker runs which chunk.
func parallel(n, work int, t task) {
	poolOnce.Do(startPool)
	if n < 1 {
		return
	}
	workers := poolSize
	if workers > n {
		workers = n
	}
	if workers <= 1 || work < t.threshold() {
		t.i0, t.i1 = 0, n
		t.run()
		return
	}
	wg := wgPool.Get().(*sync.WaitGroup)
	t.wg = wg
	chunk := (n + workers - 1) / workers
	last := 0
	for i0 := chunk; i0 < n; i0 += chunk {
		// Enqueue the previous chunk, keeping the final one for this
		// goroutine.
		t.i0, t.i1 = last, i0
		wg.Add(1)
		select {
		case poolCh <- t:
		default:
			t.run()
			wg.Done()
		}
		last = i0
	}
	t.i0, t.i1 = last, n
	t.run()
	wg.Wait()
	wgPool.Put(wg)
}
