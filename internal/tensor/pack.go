package tensor

// Operand packing for the blocked GEMM. Each macro-tile pass copies the
// A-block and B-panel it needs into contiguous, micro-kernel-ordered scratch
// ("packed panels"):
//
//   - the A block (mblk×kc) becomes ⌈mblk/4⌉ micro-panels of 4 rows, each
//     laid out k-major: 4 consecutive values per k-step, zero-padded when
//     the block has a row tail;
//   - the B panel (kc×nblk) becomes ⌈nblk/16⌉ micro-panels of 16 columns,
//     each laid out k-major: 16 consecutive values per k-step, zero-padded
//     on a column tail.
//
// Packing makes the micro-kernel's two input streams perfectly sequential
// (no strides, no tail branches) and is what lets the transposed operand
// forms (A·Bᵀ, Aᵀ·B) share the one micro-kernel: the transpose happens
// during the copy. The scratch buffers are recycled through a freelist so
// steady-state GEMM stays allocation-free.

// packANN packs rows [i0, i0+mblk) × cols [k0, k0+kc) of a into 4-row
// micro-panels.
func packANN(pa []float32, a *Matrix, i0, k0, mblk, kc int) {
	for ir := 0; ir < mblk; ir += microM {
		rows := min(microM, mblk-ir)
		panel := pa[ir*kc : ir*kc+microM*kc]
		if rows < microM {
			Zero(panel)
		}
		for r := 0; r < rows; r++ {
			base := (i0+ir+r)*a.Cols + k0
			src := a.Data[base : base+kc]
			for p, v := range src {
				panel[p*microM+r] = v
			}
		}
	}
}

// packAT packs the aᵀ block with op-rows [i0, i0+mblk) (columns of a) and
// op-cols [k0, k0+kc) (rows of a) into 4-row micro-panels. Reads sweep rows
// of a sequentially; the transpose happens in the scatter.
func packAT(pa []float32, a *Matrix, i0, k0, mblk, kc int) {
	if mblk%microM != 0 {
		tail := (mblk / microM) * microM
		Zero(pa[tail*kc : tail*kc+microM*kc])
	}
	for p := 0; p < kc; p++ {
		base := (k0+p)*a.Cols + i0
		row := a.Data[base : base+mblk]
		for ir := 0; ir < mblk; ir += microM {
			rows := min(microM, mblk-ir)
			copy(pa[ir*kc+p*microM:ir*kc+p*microM+rows], row[ir:ir+rows])
		}
	}
}

// packBNN packs rows [k0, k0+kc) × cols [j0, j0+nblk) of b into 16-column
// micro-panels.
func packBNN(pb []float32, b *Matrix, k0, j0, kc, nblk int) {
	for p := 0; p < kc; p++ {
		base := (k0+p)*b.Cols + j0
		row := b.Data[base : base+nblk]
		for jr := 0; jr < nblk; jr += microN {
			cols := min(microN, nblk-jr)
			d := pb[jr*kc+p*microN : jr*kc+p*microN+microN]
			copy(d, row[jr:jr+cols])
			for j := cols; j < microN; j++ {
				d[j] = 0
			}
		}
	}
}

// packBT packs the bᵀ panel with op-rows [k0, k0+kc) (columns of b) and
// op-cols [j0, j0+nblk) (rows of b) into 16-column micro-panels.
func packBT(pb []float32, b *Matrix, k0, j0, kc, nblk int) {
	for jr := 0; jr < nblk; jr += microN {
		cols := min(microN, nblk-jr)
		panel := pb[jr*kc : jr*kc+microN*kc]
		if cols < microN {
			Zero(panel)
		}
		for j := 0; j < cols; j++ {
			base := (j0+jr+j)*b.Cols + k0
			src := b.Data[base : base+kc]
			for p, v := range src {
				panel[p*microN+j] = v
			}
		}
	}
}

// gemmScratch is one executor's packing workspace: the packed A block, the
// packed B panel, and the zero-initialized edge tile the micro-kernel
// accumulates into when the output tile is clipped. Buffers are sized for
// the largest macro-tile, so every block shape fits.
type gemmScratch struct {
	pa   []float32
	pb   []float32
	edge [microM * microN]float32
}

// scratchFree recycles packing workspaces across GEMM calls and pool
// workers. A buffered channel (not a sync.Pool) guarantees steady-state
// reuse even across GC cycles, keeping the training hot path at zero
// allocations; the capacity bounds how many workspaces are retained, and a
// put into a full freelist simply drops the workspace.
var scratchFree = make(chan *gemmScratch, 64)

func getGemmScratch() *gemmScratch {
	select {
	case s := <-scratchFree:
		return s
	default:
		return &gemmScratch{
			pa: make([]float32, blockM*blockK),
			pb: make([]float32, blockK*blockN),
		}
	}
}

func putGemmScratch(s *gemmScratch) {
	select {
	case scratchFree <- s:
	default:
	}
}

// sharedBFree recycles the slab-wide packed B buffers of the shared-B
// driver. Retained buffers only ever grow (an undersized pop is dropped
// and replaced by a power-of-two-rounded allocation), so after warmup a
// training loop's mixed layer shapes all hit the freelist and steady state
// stays allocation-free.
var sharedBFree = make(chan []float32, 8)

func getSharedB(n int) []float32 {
	select {
	case s := <-sharedBFree:
		if cap(s) >= n {
			return s[:n]
		}
	default:
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return make([]float32, n, c)
}

func putSharedB(s []float32) {
	select {
	case sharedBFree <- s:
	default:
	}
}
