// Package tensor provides dense float32 matrices and the linear-algebra
// kernels used by the neural-network training stack. It is deliberately
// small: row-major matrices, a cache-blocked register-tiled GEMM with fused
// epilogues, a fused Adam update over flat parameter slabs, and the vector
// primitives needed by optimizers and all-reduce. Everything is
// allocation-explicit so training loops can reuse buffers across batches,
// and parallel kernels dispatch op-coded tasks to a persistent worker pool
// (see pool.go) rather than spawning goroutines, so the training hot path
// stays allocation-free.
//
// # GEMM blocking scheme
//
// The three GEMM forms (A·B, A·Bᵀ, and the accumulating Aᵀ·B) share one
// blocked driver (gemm.go). The output is tiled into blockM×blockN
// macro-tiles and the shared dimension is walked in blockK slabs; for each
// slab the operands are copied into packed panels (pack.go) — contiguous,
// zero-padded, micro-kernel-ordered scratch recycled through a freelist —
// and a register-tiled 4×16 micro-kernel (microkernel.go, AVX2+FMA assembly
// on capable amd64, portable Go elsewhere) accumulates each output tile
// without touching memory for C inside the k-loop. Fused epilogues apply
// bias-add and the layer activation to each tile right after accumulation,
// while it is still cache-hot (MatMulBias, MatMulBiasReLU, MatMulBiasTanh),
// replacing what used to be separate full passes over the activations.
// The worker pool parallelizes over macro-tiles; tiles own disjoint output
// regions and their decomposition depends only on the matrix shapes.
//
// The original naive kernels remain as the reference implementation and as
// the fast path for problems too small to amortize packing, selectable at
// startup via MELISSA_GEMM=naive|blocked (anything else: size-based auto).
//
// # Tolerance contract
//
// For a fixed shape, kernel choice and machine, every GEMM is bit-exactly
// reproducible across calls, runs and ranks: the blocked decomposition and
// per-element accumulation order are functions of the shapes alone, never
// of worker count or scheduling. Across kernels (blocked vs naive, FMA vs
// portable) results differ only in floating-point rounding: both accumulate
// each output element over k in ascending order, but the blocked
// micro-kernel may fuse the multiply-add rounding. Each kernel stays within
//
//	|err| ≤ (k+4)·ε₃₂·max|A|·max|B|
//
// of the float64-accumulated reference, the bound the property suite in
// gemm_test.go enforces; any cross-kernel comparison must budget twice it.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major float32 matrix. Data has length Rows*Cols;
// element (r, c) lives at Data[r*Cols+c].
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows×cols matrix without copying. The slice
// length must equal rows*cols.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// ViewRows points dst at rows [r0, r1) of m, sharing storage. Writing
// through dst writes m. The dst header is caller-owned so hot loops can
// reuse one header for varying batch prefixes without allocating.
func (m *Matrix) ViewRows(dst *Matrix, r0, r1 int) {
	if r0 < 0 || r1 < r0 || r1 > m.Rows {
		panic(fmt.Sprintf("tensor: ViewRows [%d,%d) of %d rows", r0, r1, m.Rows))
	}
	dst.Rows, dst.Cols = r1-r0, m.Cols
	dst.Data = m.Data[r0*m.Cols : r1*m.Cols]
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a slice sharing the matrix storage.
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.mustSameShape(src)
	copy(m.Data, src.Data)
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Add accumulates src into m element-wise.
func (m *Matrix) Add(src *Matrix) {
	m.mustSameShape(src)
	Axpy(1, src.Data, m.Data)
}

// Sub subtracts src from m element-wise.
func (m *Matrix) Sub(src *Matrix) {
	m.mustSameShape(src)
	Axpy(-1, src.Data, m.Data)
}

// Scale multiplies every element by a.
func (m *Matrix) Scale(a float32) { Scal(a, m.Data) }

// AddRowVector adds the vector v (length Cols) to every row of m. Used for
// bias broadcast in dense layers.
func (m *Matrix) AddRowVector(v []float32) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector length %d != cols %d", len(v), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, x := range v {
			row[c] += x
		}
	}
}

// SumRowsInto accumulates the column sums of m into dst (length Cols).
// Used for bias gradients.
func (m *Matrix) SumRowsInto(dst []float32) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: SumRowsInto length %d != cols %d", len(dst), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, x := range row {
			dst[c] += x
		}
	}
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Data[c*m.Rows+r] = m.Data[r*m.Cols+c]
		}
	}
	return out
}

// MaxAbsDiff returns the largest absolute element-wise difference between m
// and other. Useful in tests.
func (m *Matrix) MaxAbsDiff(other *Matrix) float64 {
	m.mustSameShape(other)
	var max float64
	for i, v := range m.Data {
		d := math.Abs(float64(v) - float64(other.Data[i]))
		if d > max {
			max = d
		}
	}
	return max
}

// Norm2 returns the Frobenius norm of m, accumulated in float64.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

func (m *Matrix) mustSameShape(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}
