//go:build amd64

#include "textflag.h"

// func kern4x16FMA(kc int, pa, pb, c []float32, ldc int)
//
// 4×16 register-tiled GEMM micro-kernel over packed panels:
//
//	c[r*ldc : r*ldc+16] += Σ_p pa[4p+r] * pb[16p : 16p+16]   r = 0..3
//
// The eight YMM accumulators (Y0–Y7, two per row) stay resident for the
// whole k-loop; each step issues 2 panel loads, 4 broadcasts and 8
// vfmadd231ps. Panels are packed contiguously (pack.go) so both streams are
// sequential. Summation order per element is identical to the portable
// kernel (ascending p); only the fused rounding differs.
TEXT ·kern4x16FMA(SB), NOSPLIT, $0-88
	MOVQ kc+0(FP), CX
	MOVQ pa_base+8(FP), SI
	MOVQ pb_base+32(FP), DI
	MOVQ c_base+56(FP), DX
	MOVQ ldc+80(FP), BX
	SHLQ $2, BX             // row stride in bytes

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

	TESTQ CX, CX
	JZ    store

loop:
	VMOVUPS      (DI), Y12      // pb[16p : 16p+8]
	VMOVUPS      32(DI), Y13    // pb[16p+8 : 16p+16]
	VBROADCASTSS (SI), Y14      // pa[4p+0]
	VBROADCASTSS 4(SI), Y15     // pa[4p+1]
	VFMADD231PS  Y12, Y14, Y0
	VFMADD231PS  Y13, Y14, Y1
	VFMADD231PS  Y12, Y15, Y2
	VFMADD231PS  Y13, Y15, Y3
	VBROADCASTSS 8(SI), Y14     // pa[4p+2]
	VBROADCASTSS 12(SI), Y15    // pa[4p+3]
	VFMADD231PS  Y12, Y14, Y4
	VFMADD231PS  Y13, Y14, Y5
	VFMADD231PS  Y12, Y15, Y6
	VFMADD231PS  Y13, Y15, Y7
	ADDQ         $16, SI
	ADDQ         $64, DI
	DECQ         CX
	JNZ          loop

store:
	VMOVUPS (DX), Y14
	VADDPS  Y0, Y14, Y14
	VMOVUPS Y14, (DX)
	VMOVUPS 32(DX), Y15
	VADDPS  Y1, Y15, Y15
	VMOVUPS Y15, 32(DX)
	ADDQ    BX, DX

	VMOVUPS (DX), Y14
	VADDPS  Y2, Y14, Y14
	VMOVUPS Y14, (DX)
	VMOVUPS 32(DX), Y15
	VADDPS  Y3, Y15, Y15
	VMOVUPS Y15, 32(DX)
	ADDQ    BX, DX

	VMOVUPS (DX), Y14
	VADDPS  Y4, Y14, Y14
	VMOVUPS Y14, (DX)
	VMOVUPS 32(DX), Y15
	VADDPS  Y5, Y15, Y15
	VMOVUPS Y15, 32(DX)
	ADDQ    BX, DX

	VMOVUPS (DX), Y14
	VADDPS  Y6, Y14, Y14
	VMOVUPS Y14, (DX)
	VMOVUPS 32(DX), Y15
	VADDPS  Y7, Y15, Y15
	VMOVUPS Y15, 32(DX)

	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
