package protocol

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"testing/quick"
)

func roundtrip(t *testing.T, msg Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestHelloRoundtrip(t *testing.T) {
	in := Hello{ClientID: 7, SimID: 9, Steps: 100, Restart: 2}
	got := roundtrip(t, in)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestTimeStepRoundtrip(t *testing.T) {
	in := TimeStep{
		SimID: 3,
		Step:  42,
		Input: []float32{100.5, 200.25, 300, 400, 500, 0.42},
		Field: []float32{1, 2, 3, 4, 5, 6, 7, 8, 9},
	}
	got := roundtrip(t, in)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestTimeStepEmptySlices(t *testing.T) {
	in := TimeStep{SimID: 1, Step: 1, Input: []float32{}, Field: []float32{}}
	got := roundtrip(t, in).(TimeStep)
	if len(got.Input) != 0 || len(got.Field) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestGoodbyeHeartbeatRoundtrip(t *testing.T) {
	if got := roundtrip(t, Goodbye{ClientID: 11, SimID: 4}); !reflect.DeepEqual(got, Goodbye{ClientID: 11, SimID: 4}) {
		t.Fatalf("goodbye: %+v", got)
	}
	if got := roundtrip(t, Heartbeat{ClientID: 5}); !reflect.DeepEqual(got, Heartbeat{ClientID: 5}) {
		t.Fatalf("heartbeat: %+v", got)
	}
}

func TestMultipleMessagesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		Hello{ClientID: 1, SimID: 1, Steps: 2},
		TimeStep{SimID: 1, Step: 1, Input: []float32{1}, Field: []float32{2, 3}},
		TimeStep{SimID: 1, Step: 2, Input: []float32{1}, Field: []float32{4, 5}},
		Goodbye{ClientID: 1, SimID: 1},
	}
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("message %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// slowReader returns one byte at a time, exercising partial-read handling.
type slowReader struct{ data []byte }

func (s *slowReader) Read(p []byte) (int, error) {
	if len(s.data) == 0 {
		return 0, io.EOF
	}
	p[0] = s.data[0]
	s.data = s.data[1:]
	return 1, nil
}

func TestReadFromSlowReader(t *testing.T) {
	in := TimeStep{SimID: 2, Step: 3, Input: []float32{9, 8}, Field: []float32{7}}
	got, err := Read(&slowReader{data: Encode(in)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("got %+v", got)
	}
}

func TestReadErrors(t *testing.T) {
	// Truncated header.
	if _, err := Read(bytes.NewReader([]byte{1, 0})); err == nil {
		t.Fatal("expected error for truncated header")
	}
	// Zero-size frame.
	if _, err := Read(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("expected error for zero-length frame")
	}
	// Oversized frame.
	if _, err := Read(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Fatal("expected error for oversized frame")
	}
	// Truncated body.
	frame := Encode(Heartbeat{ClientID: 1})
	if _, err := Read(bytes.NewReader(frame[:len(frame)-2])); err == nil {
		t.Fatal("expected error for truncated body")
	}
	// Unknown type.
	if _, err := Read(bytes.NewReader([]byte{1, 0, 0, 0, 99})); err == nil {
		t.Fatal("expected error for unknown type")
	}
	// TimeStep with short float payload.
	bad := []byte{10, 0, 0, 0, byte(TypeTimeStep), 1, 0, 0, 0, 2, 0, 0, 0, 9}
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("expected error for short float payload")
	}
}

func TestCleanEOFBetweenFrames(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

// Property: TimeStep roundtrips for arbitrary slice contents and lengths.
func TestTimeStepRoundtripProperty(t *testing.T) {
	f := func(simID, step int32, input, field []float32) bool {
		in := TimeStep{SimID: simID, Step: step, Input: input, Field: field}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		ts, ok := got.(TimeStep)
		if !ok || ts.SimID != simID || ts.Step != step {
			return false
		}
		if len(ts.Input) != len(input) || len(ts.Field) != len(field) {
			return false
		}
		for i := range input {
			// NaN compares unequal to itself; compare bit patterns via
			// the simple check of both-NaN.
			if ts.Input[i] != input[i] && !(input[i] != input[i] && ts.Input[i] != ts.Input[i]) {
				return false
			}
		}
		for i := range field {
			if ts.Field[i] != field[i] && !(field[i] != field[i] && ts.Field[i] != ts.Field[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeTimeStep(b *testing.B) {
	msg := TimeStep{SimID: 1, Step: 1, Input: make([]float32, 6), Field: make([]float32, 1024)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(msg)
	}
}
