package protocol

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestF16DecodeEncodeExhaustive sweeps every one of the 65536 binary16 bit
// patterns: decoding to float32 and re-encoding must reproduce the exact
// pattern — including quiet NaN payloads, ±Inf, ±0 and every subnormal.
// Signaling NaNs (which the encoder never emits) are the one carve-out:
// they come back quieted, matching F16C hardware. This idempotence is what
// makes re-encoding an already-quantized collective chunk lossless.
func TestF16DecodeEncodeExhaustive(t *testing.T) {
	for h := 0; h <= 0xffff; h++ {
		v := F32FromF16(uint16(h))
		back := F16FromF32(v)
		want := uint16(h)
		if want&0x7c00 == 0x7c00 && want&0x3ff != 0 {
			want |= 0x200 // NaN payloads come back quieted
		}
		if back != want {
			t.Fatalf("bit pattern %#04x decoded to %v, re-encoded to %#04x, want %#04x", h, v, back, want)
		}
	}
}

// TestF16BulkMatchesScalarExhaustive cross-checks the bulk codec — the F16C
// kernels where the CPU has them, the portable fallback otherwise — against
// the scalar conversions over every binary16 pattern: decode must agree
// bitwise on all 65536 inputs, and encoding the decoded values must agree
// bitwise too. With the hardware path active this pins the claim that the
// scalar Go code implements exactly the F16C semantics.
func TestF16BulkMatchesScalarExhaustive(t *testing.T) {
	const n = 1 << 16
	src := make([]byte, 2*n)
	for h := 0; h < n; h++ {
		src[2*h] = byte(h)
		src[2*h+1] = byte(h >> 8)
	}
	dec := make([]float32, n)
	DecodeF16s(dec, src)
	for h := 0; h < n; h++ {
		want := F32FromF16(uint16(h))
		if math.Float32bits(dec[h]) != math.Float32bits(want) {
			t.Fatalf("bulk decode %#04x = %v (bits %#08x), scalar %v (bits %#08x)",
				h, dec[h], math.Float32bits(dec[h]), want, math.Float32bits(want))
		}
	}
	enc := make([]byte, 2*n)
	EncodeF16s(enc, dec)
	for h := 0; h < n; h++ {
		got := uint16(enc[2*h]) | uint16(enc[2*h+1])<<8
		want := F16FromF32(dec[h])
		if got != want {
			t.Fatalf("bulk encode of %v = %#04x, scalar %#04x", dec[h], got, want)
		}
	}
}

// TestF16SpecialValues pins the IEEE edge cases of the float32→binary16
// direction.
func TestF16SpecialValues(t *testing.T) {
	inf32 := float32(math.Inf(1))
	cases := []struct {
		name string
		in   float32
		want uint16
	}{
		{"zero", 0, 0x0000},
		{"neg-zero", float32(math.Copysign(0, -1)), 0x8000},
		{"one", 1, 0x3c00},
		{"neg-two", -2, 0xc000},
		{"inf", inf32, 0x7c00},
		{"neg-inf", -inf32, 0xfc00},
		{"max-normal", 65504, 0x7bff},
		{"overflow-to-inf", 65520, 0x7c00},
		{"large-overflow", 1e20, 0x7c00},
		{"min-normal", float32(math.Ldexp(1, -14)), 0x0400},
		{"max-subnormal", float32(math.Ldexp(1023, -24)), 0x03ff},
		{"min-subnormal", float32(math.Ldexp(1, -24)), 0x0001},
		{"half-min-subnormal-ties-to-zero", float32(math.Ldexp(1, -25)), 0x0000},
		{"just-above-half-min-subnormal", float32(math.Ldexp(3, -26)), 0x0001},
		{"underflow-to-zero", float32(math.Ldexp(1, -26)), 0x0000},
		{"neg-underflow-keeps-sign", float32(math.Ldexp(-1, -26)), 0x8000},
		{"f32-subnormal-underflows", math.Float32frombits(1), 0x0000},
	}
	for _, tc := range cases {
		if got := F16FromF32(tc.in); got != tc.want {
			t.Errorf("%s: F16FromF32(%v) = %#04x, want %#04x", tc.name, tc.in, got, tc.want)
		}
	}
	// NaN: any input NaN must stay NaN (never collapse to Inf), with the
	// quiet bit riding through the payload truncation.
	for _, bits := range []uint32{0x7fc00000, 0x7f800001, 0xffc12345} {
		h := F16FromF32(math.Float32frombits(bits))
		if h&0x7c00 != 0x7c00 || h&0x3ff == 0 {
			t.Errorf("NaN %#08x encoded to %#04x, not a NaN", bits, h)
		}
		if v := F32FromF16(h); !math.IsNaN(float64(v)) {
			t.Errorf("NaN %#08x round-tripped to %v", bits, v)
		}
	}
}

// TestF16RoundToNearestEven pins tie-breaking at the halfway points of the
// 13 dropped mantissa bits.
func TestF16RoundToNearestEven(t *testing.T) {
	ulp := 1.0 / 1024 // binary16 mantissa step at exponent 0
	cases := []struct {
		name string
		in   float64
		want float64
	}{
		{"tie-to-even-down", 1 + ulp/2, 1},         // between man 0 and 1 → even 0
		{"tie-to-even-up", 1 + 3*ulp/2, 1 + 2*ulp}, // between man 1 and 2 → even 2
		{"above-tie-rounds-up", 1 + ulp/2 + ulp/8, 1 + ulp},
		{"below-tie-rounds-down", 1 + ulp/2 - ulp/8, 1},
	}
	for _, tc := range cases {
		got := float64(F32FromF16(F16FromF32(float32(tc.in))))
		if got != tc.want {
			t.Errorf("%s: %v quantized to %v, want %v", tc.name, tc.in, got, tc.want)
		}
	}
}

// TestF16NearestOverRandomValues cross-checks the conversion against a
// brute-force nearest-neighbor search: for random finite inputs, no other
// binary16 value may be strictly closer than the chosen one, and exact
// ties must have landed on the even mantissa.
func TestF16NearestOverRandomValues(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 17))
	dist := func(h uint16, v float64) float64 {
		d := float64(F32FromF16(h)) - v
		return math.Abs(d)
	}
	for trial := 0; trial < 200000; trial++ {
		// Spread across the interesting exponent range, including the
		// subnormal and overflow boundaries. The input of record is the
		// float32 (what the codec actually sees), not the double it was
		// drawn from.
		v := float64(float32((rng.Float64()*2 - 1) * math.Ldexp(1, rng.IntN(36)-20)))
		h := F16FromF32(float32(v))
		if h&0x7c00 == 0x7c00 { // rounded to Inf: only above the midpoint to max
			if math.Abs(v) < 65520 {
				t.Fatalf("%v rounded to Inf below the overflow threshold", v)
			}
			continue
		}
		d := dist(h, v)
		// Compare against both neighbors in value order (same sign:
		// bit pattern ±1; across zero: the opposite-signed zero's neighbor).
		for _, nb := range []uint16{h + 1, h - 1, h ^ 0x8000, (h ^ 0x8000) + 1} {
			if nb&0x7c00 == 0x7c00 {
				continue // Inf/NaN are not nearer-value candidates
			}
			nd := dist(nb, v)
			if nd < d {
				t.Fatalf("%v → %#04x (err %g) but neighbor %#04x is closer (err %g)", v, h, d, nb, nd)
			}
			if nd == d && d != 0 && nb&1 == 1 && h&1 == 1 {
				t.Fatalf("%v tied between two odd mantissas %#04x and %#04x", v, h, nb)
			}
		}
		if d == 0 {
			continue
		}
		if nd := dist(h, v); nd != d {
			t.Fatalf("unstable distance for %v", v)
		}
	}
}

// TestF16BulkMatchesScalar drives the unrolled bulk codec across lengths
// straddling the 8-wide boundary and checks it against the scalar
// conversions bit for bit.
func TestF16BulkMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 31, 33, 100} {
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = float32(rng.NormFloat64()) * float32(math.Ldexp(1, rng.IntN(30)-15))
		}
		if n > 2 {
			vals[0] = float32(math.NaN())
			vals[1] = float32(math.Inf(-1))
		}
		buf := make([]byte, 2*n)
		EncodeF16s(buf, vals)
		for i, v := range vals {
			want := F16FromF32(v)
			got := uint16(buf[2*i]) | uint16(buf[2*i+1])<<8
			if got != want {
				t.Fatalf("n=%d: bulk encode [%d] = %#04x, scalar %#04x", n, i, got, want)
			}
		}
		dst := make([]float32, n)
		DecodeF16s(dst, buf)
		for i := range dst {
			want := F32FromF16(F16FromF32(vals[i]))
			if math.Float32bits(dst[i]) != math.Float32bits(want) {
				t.Fatalf("n=%d: bulk decode [%d] = %v, scalar %v", n, i, dst[i], want)
			}
		}
	}
}

// FuzzF16Codec round-trips arbitrary float32 bit patterns through the
// binary16 codec: it must never panic, finite results must be within one
// binary16 ULP of the input (the nearest-value guarantee implies half an
// ULP; one ULP is the hard ceiling), NaN must stay NaN, infinities and
// signed zeros must be preserved exactly, and a second round trip must be
// a fixed point.
func FuzzF16Codec(f *testing.F) {
	f.Add(uint32(0))
	f.Add(math.Float32bits(1))
	f.Add(math.Float32bits(-65504))
	f.Add(math.Float32bits(65520))
	f.Add(math.Float32bits(float32(math.Inf(1))))
	f.Add(uint32(0x7fc00001))                            // NaN with payload
	f.Add(uint32(0x80000001))                            // negative f32 subnormal
	f.Add(math.Float32bits(float32(math.Ldexp(1, -24)))) // min f16 subnormal
	f.Fuzz(func(t *testing.T, bits uint32) {
		v := math.Float32frombits(bits)
		h := F16FromF32(v)
		q := F32FromF16(h)
		switch {
		case math.IsNaN(float64(v)):
			if !math.IsNaN(float64(q)) {
				t.Fatalf("NaN %#08x quantized to %v", bits, q)
			}
		case math.IsInf(float64(v), 0):
			if q != v {
				t.Fatalf("infinity %v quantized to %v", v, q)
			}
		default:
			av := math.Abs(float64(v))
			if av >= 65520 {
				if !math.IsInf(float64(q), int(math.Copysign(1, float64(v)))) {
					t.Fatalf("out-of-range %v quantized to %v, want Inf", v, q)
				}
				break
			}
			// One binary16 ULP at v's magnitude: the spacing of the
			// half-precision grid there (subnormal spacing at the bottom).
			exp := math.Floor(math.Log2(av))
			if av == 0 || exp < -14 {
				exp = -14
			}
			ulp := math.Ldexp(1, int(exp)-10)
			if diff := math.Abs(float64(q) - float64(v)); diff > ulp {
				t.Fatalf("%v (bits %#08x) quantized to %v: error %g beyond ULP %g", v, bits, q, diff, ulp)
			}
			if math.Signbit(float64(v)) != math.Signbit(float64(q)) {
				t.Fatalf("%v quantized to %v: sign flipped", v, q)
			}
		}
		if again := F16FromF32(q); again != h {
			t.Fatalf("round trip of %v is not a fixed point: %#04x then %#04x", v, h, again)
		}
	})
}

// BenchmarkF16Codec measures the compressed wire shuffle in both
// directions at a collective-chunk size, for comparison with
// BenchmarkF32Codec (bytes/op reflect the logical float payload, so MB/s
// is directly comparable).
func BenchmarkF16Codec(b *testing.B) {
	const n = 16384
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i))) * 3
	}
	buf := make([]byte, 2*n)
	dst := make([]float32, n)
	b.Run("encode-bulk", func(b *testing.B) {
		b.SetBytes(4 * n)
		for i := 0; i < b.N; i++ {
			EncodeF16s(buf, vals)
		}
	})
	b.Run("decode-bulk", func(b *testing.B) {
		b.SetBytes(4 * n)
		for i := 0; i < b.N; i++ {
			DecodeF16s(dst, buf)
		}
	})
}

// fusedTestVals builds a value mix that exercises every kernel path —
// normals across the binary16 range, subnormals, zeros, infinities, values
// that overflow to Inf — at a length that covers both the 8-wide SIMD
// blocks and the scalar tail. NaNs are exercised separately by the
// exhaustive codec tests: the fused accumulate kernels make no ordering
// promise for NaN+NaN payload propagation, matching the scalar loops only
// on non-NaN input (the only input the collectives feed them).
func fusedTestVals(n int, seed uint64) []float32 {
	rng := rand.New(rand.NewPCG(seed, 0))
	vals := make([]float32, n)
	for i := range vals {
		switch i % 7 {
		case 0:
			vals[i] = 0
		case 1:
			vals[i] = float32(math.Inf(1 - 2*int(rng.Uint64()&2)))
		case 2:
			vals[i] = float32(math.Ldexp(rng.Float64()-0.5, -16)) // f16 subnormal range
		case 3:
			vals[i] = float32(math.Ldexp(rng.Float64()+1, 18)) // overflows binary16
		default:
			vals[i] = float32((rng.Float64()*2 - 1) * math.Ldexp(1, rng.IntN(30)-15))
		}
	}
	return vals
}

// TestRoundF16sMatchesScalar pins RoundF16s (accelerated where present)
// bitwise to the scalar RoundF16, including the SIMD/tail seam.
func TestRoundF16sMatchesScalar(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 16, 1000, 1003} {
		vals := fusedTestVals(n, uint64(n)+1)
		want := make([]float32, n)
		for i, v := range vals {
			want[i] = RoundF16(v)
		}
		RoundF16s(vals)
		for i := range vals {
			if math.Float32bits(vals[i]) != math.Float32bits(want[i]) {
				t.Fatalf("n=%d elem %d: bulk %v (%#08x), scalar %v (%#08x)",
					n, i, vals[i], math.Float32bits(vals[i]), want[i], math.Float32bits(want[i]))
			}
		}
	}
}

// TestAddF16sMatchesDecode pins the fused decode+accumulate bitwise to
// DecodeF16s followed by a scalar add loop.
func TestAddF16sMatchesDecode(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 16, 1000, 1003} {
		src := make([]byte, 2*n)
		EncodeF16s(src, fusedTestVals(n, uint64(n)+2))
		acc := fusedTestVals(n, uint64(n)+3)
		want := make([]float32, n)
		dec := make([]float32, n)
		DecodeF16s(dec, src)
		for i := range want {
			want[i] = acc[i] + dec[i]
		}
		AddF16s(acc, src)
		for i := range acc {
			if math.Float32bits(acc[i]) != math.Float32bits(want[i]) {
				t.Fatalf("n=%d elem %d: fused %v (%#08x), reference %v (%#08x)",
					n, i, acc[i], math.Float32bits(acc[i]), want[i], math.Float32bits(want[i]))
			}
		}
	}
}

// TestAddF32sMatchesDecode pins the full-width fused accumulate bitwise to
// DecodeF32s followed by a scalar add loop — the property that keeps fp32
// collectives bit-identical after the fused-receive optimization.
func TestAddF32sMatchesDecode(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 16, 1000, 1003} {
		src := make([]byte, 4*n)
		EncodeF32s(src, fusedTestVals(n, uint64(n)+4))
		acc := fusedTestVals(n, uint64(n)+5)
		want := make([]float32, n)
		dec := make([]float32, n)
		DecodeF32s(dec, src)
		for i := range want {
			want[i] = acc[i] + dec[i]
		}
		AddF32s(acc, src)
		for i := range acc {
			if math.Float32bits(acc[i]) != math.Float32bits(want[i]) {
				t.Fatalf("n=%d elem %d: fused %v (%#08x), reference %v (%#08x)",
					n, i, acc[i], math.Float32bits(acc[i]), want[i], math.Float32bits(want[i]))
			}
		}
	}
}

// TestQuantizeEFMatchesScalar pins the fused error-feedback pre-pass
// bitwise to the scalar reference: q = round16(buf+res) into buf, the
// quantization error into res.
func TestQuantizeEFMatchesScalar(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 16, 1000, 1003} {
		buf := fusedTestVals(n, uint64(n)+6)
		res := make([]float32, n)
		for i := range res {
			res[i] = buf[i] * 0x1p-12 // plausible residual magnitudes
		}
		wantBuf := make([]float32, n)
		wantRes := make([]float32, n)
		for i := range buf {
			v := buf[i] + res[i]
			q := RoundF16(v)
			wantBuf[i] = q
			wantRes[i] = v - q
		}
		QuantizeEF(buf, res)
		for i := range buf {
			if math.Float32bits(buf[i]) != math.Float32bits(wantBuf[i]) ||
				math.Float32bits(res[i]) != math.Float32bits(wantRes[i]) {
				t.Fatalf("n=%d elem %d: fused (q=%v, r=%v), reference (q=%v, r=%v)",
					n, i, buf[i], res[i], wantBuf[i], wantRes[i])
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	QuantizeEF(make([]float32, 2), make([]float32, 3))
}
