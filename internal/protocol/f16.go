package protocol

// IEEE 754 binary16 ("half precision") conversion for the compressed
// collective wire format. Gradient chunks are encoded with F16FromF32 —
// round-to-nearest-even, gradual underflow to subnormals, overflow to
// ±Inf, NaNs quieted with their truncated payloads preserved — and decoded
// back to float32 with F32FromF16. The bulk EncodeF16s/DecodeF16s shuffle
// whole chunks; on amd64 with F16C they dispatch to the VCVTPS2PH/VCVTPH2PS
// kernels in f16_amd64.s (see f16_amd64.go), and the portable fallback
// below inlines the integer fast path for the normal range.
//
// The scalar conversions implement exactly the F16C hardware semantics
// (round-to-nearest-even, signaling NaNs quieted in both directions) so the
// accelerated and portable paths are bit-for-bit interchangeable.
//
// Decoding is exact (every binary16 value is exactly representable in
// float32), so F16FromF32(F32FromF16(h)) == h for every bit pattern h the
// encoder can produce — including quiet NaN payloads and subnormals. That
// idempotence is what lets the collective layer re-encode an
// already-quantized chunk losslessly when it forwards finished all-gather
// chunks around the ring. (Signaling NaN patterns, which the encoder never
// emits, are quieted: h → h|0x200.)

import (
	"encoding/binary"
	"math"
)

const (
	// f16ExpAdjustRNE rebias the f32 exponent (bias 127 → 15) with the
	// half-ULP round-to-nearest bias folded in: ((15-127)<<23) as two's
	// complement, plus 0x0fff. Adding the mantissa's odd bit first turns
	// truncation into round-to-nearest-even, and a mantissa carry rolls
	// into the exponent — including up to Inf at the top of the range.
	f16ExpAdjustRNE = 0xc8000fff
	// f16SubnormMagic is 0.5f: adding it to a magnitude below 2^-14 lands
	// in [0.5, 0.5+2^-14), where the f32 mantissa LSBs align exactly with
	// binary16 subnormal steps — the hardware float add performs the
	// round-to-nearest-even for free, and subtracting the magic bit
	// pattern leaves the subnormal (or zero) half bits.
	f16SubnormMagic = 126 << 23
	// f16DecodeMagic is 2^-14: the exact float subtraction that
	// renormalizes the decode path's offset subnormals.
	f16DecodeMagic = 113 << 23
)

// F16FromF32 converts v to its nearest binary16 bit pattern with
// round-to-nearest-even. Values above the binary16 range become ±Inf,
// values below half the smallest subnormal become signed zero, and NaNs
// stay NaNs — quieted, with the top 10 payload bits riding along (F16C
// VCVTPS2PH semantics).
func F16FromF32(v float32) uint16 {
	bits := math.Float32bits(v)
	sign := uint16(bits>>16) & 0x8000
	x := bits &^ 0x80000000
	switch {
	case x > 0x7f800000: // NaN: quiet it, keep the truncated payload
		return sign | 0x7e00 | uint16(x>>13)&0x3ff
	case x >= 0x47800000: // ±Inf, and every finite magnitude that rounds to it
		return sign | 0x7c00
	case x < 0x38800000: // below the binary16 normal range: magic-add rounding
		f := math.Float32frombits(x) + math.Float32frombits(f16SubnormMagic)
		return sign | uint16(math.Float32bits(f)-f16SubnormMagic)
	default: // normal: integer exponent rebias with RNE folded in
		x += (x >> 13) & 1
		x += f16ExpAdjustRNE
		return sign | uint16(x>>13)
	}
}

// F32FromF16 expands a binary16 bit pattern to the exactly-equal float32.
// Signaling NaNs are quieted (F16C VCVTPH2PS semantics); every other
// pattern — subnormals included — converts exactly.
func F32FromF16(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	x := uint32(h&0x7fff) << 13
	switch exp := x & 0x0f800000; exp {
	case 0x0f800000: // Inf / NaN: finish the exponent, quiet any payload
		x += (255 - 31) << 23
		if x&0x007fffff != 0 {
			x |= 0x00400000
		}
	case 0: // zero / subnormal: renormalize with an exact float subtract
		x += (127 - 15 + 1) << 23
		x = math.Float32bits(math.Float32frombits(x) - math.Float32frombits(f16DecodeMagic))
	default: // normal: rebias 15 → 127
		x += (127 - 15) << 23
	}
	return math.Float32frombits(sign | x)
}

// The bulk codec entry points, replaced at init by the F16C/AVX kernels
// when the CPU has them (f16_amd64.go).
var (
	encodeF16sBulk = encodeF16sGo
	decodeF16sBulk = decodeF16sGo
	roundF16sBulk  = roundF16sGo
	addF16sBulk    = addF16sGo
	addF32sBulk    = addF32sGo
	quantizeEFBulk = quantizeEFGo
)

// EncodeF16s serializes vals into dst as little-endian binary16, 2 bytes
// per element; dst must hold at least 2·len(vals) bytes. It is the
// compressed sibling of EncodeF32s.
func EncodeF16s(dst []byte, vals []float32) {
	if len(vals) == 0 {
		return
	}
	_ = dst[2*len(vals)-1] // the accelerated kernel has no implicit bounds checks
	encodeF16sBulk(dst, vals)
}

// DecodeF16s is the decode mirror of EncodeF16s: it fills dst from
// 2·len(dst) bytes of src.
func DecodeF16s(dst []float32, src []byte) {
	if len(dst) == 0 {
		return
	}
	_ = src[2*len(dst)-1]
	decodeF16sBulk(dst, src)
}

// encodeF16sGo is the portable bulk encoder: the normal-range conversion is
// inlined (one unsigned range check, two adds, a shift), everything else
// falls back to the full scalar conversion.
func encodeF16sGo(dst []byte, vals []float32) {
	for i, v := range vals {
		bits := math.Float32bits(v)
		x := bits &^ 0x80000000
		var h uint16
		if x-0x38800000 < 0x47800000-0x38800000 {
			x += (x >> 13) & 1
			x += f16ExpAdjustRNE
			h = uint16(bits>>16)&0x8000 | uint16(x>>13)
		} else {
			h = F16FromF32(v)
		}
		binary.LittleEndian.PutUint16(dst[i*2:i*2+2], h)
	}
}

// decodeF16sGo is the portable bulk decoder, with the normal-range rebias
// inlined.
func decodeF16sGo(dst []float32, src []byte) {
	for i := range dst {
		h := binary.LittleEndian.Uint16(src[i*2 : i*2+2])
		if e := h & 0x7c00; e != 0 && e != 0x7c00 {
			dst[i] = math.Float32frombits(uint32(h&0x8000)<<16 | (uint32(h&0x7fff)<<13 + (127-15)<<23))
		} else {
			dst[i] = F32FromF16(h)
		}
	}
}

// RoundF16 returns v quantized through binary16 and back — the value a
// receiver reconstructs after one compressed hop. The collective layer's
// error-feedback pre-pass uses it to compute the residual it carries into
// the next step.
func RoundF16(v float32) float32 {
	return F32FromF16(F16FromF32(v))
}

// RoundF16s quantizes vals through binary16 and back in place — RoundF16
// over the whole slice, but through the hardware converters where present.
// The collective layer uses it to pin each finished all-reduce chunk to the
// binary16 grid before the gather phase forwards it.
func RoundF16s(vals []float32) {
	if len(vals) == 0 {
		return
	}
	roundF16sBulk(vals)
}

// AddF16s decodes 2·len(dst) bytes of binary16 from src and accumulates
// them element-wise into dst: the fused decode+reduce step of a compressed
// scatter-reduce hop, saving a full pass over a scratch buffer.
func AddF16s(dst []float32, src []byte) {
	if len(dst) == 0 {
		return
	}
	_ = src[2*len(dst)-1]
	addF16sBulk(dst, src)
}

// AddF32s is the full-width sibling of AddF16s: it accumulates 4·len(dst)
// bytes of little-endian float32 from src into dst. Element-wise float32
// adds, so results are bit-identical to DecodeF32s followed by a scalar
// accumulation loop.
func AddF32s(dst []float32, src []byte) {
	if len(dst) == 0 {
		return
	}
	_ = src[4*len(dst)-1]
	addF32sBulk(dst, src)
}

// QuantizeEF is the error-feedback quantization pre-pass of a compressed
// collective: for each element, the local contribution plus the carried
// residual is rounded to the binary16 grid (that quantized value is what
// the collective will transmit) and the fresh quantization error is stored
// back into the residual for the next step. buf and res must have equal
// length. All arithmetic is element-wise IEEE float32, so the accelerated
// path is bit-identical to the portable one.
func QuantizeEF(buf, res []float32) {
	if len(buf) != len(res) {
		panic("protocol: QuantizeEF length mismatch")
	}
	if len(buf) == 0 {
		return
	}
	quantizeEFBulk(buf, res)
}

// roundF16sGo is the portable RoundF16s, with the normal-range round
// inlined (the same integer rebias encodeF16sGo uses, decoded back).
func roundF16sGo(vals []float32) {
	for i, v := range vals {
		bits := math.Float32bits(v)
		x := bits &^ 0x80000000
		if x-0x38800000 < 0x47800000-0x38800000 {
			x += (x >> 13) & 1
			x += f16ExpAdjustRNE
			h := x >> 13 & 0x7fff
			if h < 0x7c00 { // did not round up to Inf
				vals[i] = math.Float32frombits(bits&0x80000000 | (h<<13 + (127-15)<<23))
				continue
			}
		}
		vals[i] = RoundF16(v)
	}
}

// addF16sGo is the portable AddF16s.
func addF16sGo(dst []float32, src []byte) {
	for i := range dst {
		h := binary.LittleEndian.Uint16(src[i*2 : i*2+2])
		if e := h & 0x7c00; e != 0 && e != 0x7c00 {
			dst[i] += math.Float32frombits(uint32(h&0x8000)<<16 | (uint32(h&0x7fff)<<13 + (127-15)<<23))
		} else {
			dst[i] += F32FromF16(h)
		}
	}
}

// addF32sGo is the portable AddF32s.
func addF32sGo(dst []float32, src []byte) {
	for i := range dst {
		dst[i] += math.Float32frombits(binary.LittleEndian.Uint32(src[i*4 : i*4+4]))
	}
}

// quantizeEFGo is the portable QuantizeEF.
func quantizeEFGo(buf, res []float32) {
	for i := range buf {
		v := buf[i] + res[i]
		q := RoundF16(v)
		buf[i] = q
		res[i] = v - q
	}
}
