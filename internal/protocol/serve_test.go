package protocol

import (
	"bytes"
	"io"
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
)

// TestServeFramesRoundTrip pins the wire format of every serving message:
// encode → legacy decode must reproduce the value, and AppendEncode must be
// byte-identical to Encode.
func TestServeFramesRoundTrip(t *testing.T) {
	msgs := []Message{
		PredictRequest{ID: 7, T: 0.25, Params: []float32{1, -2, 3.5}},
		PredictRequest{ID: 0, T: float32(math.Inf(1))},
		PredictRequest{ID: 9, T: 1, Params: []float32{4, 5}, DeadlineMs: 250},
		PredictResponse{ID: 7, Epoch: 3, Field: []float32{9, 8, 7, 6}},
		PredictResponse{ID: 1 << 60, Epoch: 0},
		PredictError{ID: 5, Msg: "wrong parameter count"},
		PredictError{ID: 6, Msg: "overloaded", Code: PredictErrOverloaded, RetryAfterMs: 12},
		PredictError{ID: 8, Msg: "deadline exceeded", Code: PredictErrExpired},
		ServeInfoRequest{},
		ServeInfo{Problem: "heat", ParamDim: 5, OutputDim: 256, Epoch: 2},
		ServeInfo{Problem: "heat", ParamDim: 5, OutputDim: 256, Epoch: 2,
			Queue: 7, QueueCap: 64, Shed: 19, Expired: 3, SlowClients: 1, Draining: 1},
		Reload{Path: "/tmp/surrogate.mlsg"},
		Reload{},
		ReloadResult{Epoch: 4},
		ReloadResult{Epoch: 4, Msg: "open: no such file"},
	}
	for _, m := range msgs {
		frame := Encode(m)
		if appended := AppendEncode(nil, m); !bytes.Equal(appended, frame) {
			t.Fatalf("%T: AppendEncode differs from Encode", m)
		}
		got, err := Read(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if !reflect.DeepEqual(normalizeEmptySlices(got), normalizeEmptySlices(m)) {
			t.Fatalf("%T: round trip %+v != %+v", m, got, m)
		}
	}
}

// normalizeEmptySlices maps empty payload slices to nil so DeepEqual treats
// a decoded zero-length vector ([]float32{}) like an unset one.
func normalizeEmptySlices(m Message) Message {
	switch v := m.(type) {
	case PredictRequest:
		if len(v.Params) == 0 {
			v.Params = nil
		}
		return v
	case PredictResponse:
		if len(v.Field) == 0 {
			v.Field = nil
		}
		return v
	}
	return m
}

// oldFrame frames a hand-built pre-extension payload (no trailing
// DeadlineMs / Code / pressure fields), exactly as a binary built before
// those fields existed would have encoded it.
func oldFrame(typ MsgType, payload []byte) []byte {
	frame := appendU32(nil, uint32(1+len(payload)))
	frame = append(frame, byte(typ))
	return append(frame, payload...)
}

// TestServeWireCompatMatrix pins both directions of the frame-extension
// compatibility contract: frames in the pre-extension layout (old client →
// new server, old server → new client) must decode on both the legacy and
// pooled paths with the extension fields zeroed, a new frame carrying
// explicit zeros must decode identically, and stray trailing bytes too
// short to be an extension stay tolerated like they always were.
func TestServeWireCompatMatrix(t *testing.T) {
	decodeBoth := func(t *testing.T, frame []byte) (Message, Message) {
		t.Helper()
		legacy, err := Read(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("legacy decode: %v", err)
		}
		pooled, err := NewReader(bytes.NewReader(frame)).Next()
		if err != nil {
			t.Fatalf("pooled decode: %v", err)
		}
		return legacy, pooled
	}

	t.Run("old-request-new-server", func(t *testing.T) {
		payload := appendU64(nil, 42)
		payload = appendU32(payload, math.Float32bits(1.5))
		payload = appendF32s(payload, []float32{7, 8, 9})
		legacy, pooled := decodeBoth(t, oldFrame(TypePredictRequest, payload))
		lm := legacy.(PredictRequest)
		pm := pooled.(*PredictRequest)
		for _, got := range []PredictRequest{lm, *pm} {
			if got.ID != 42 || got.T != 1.5 || got.DeadlineMs != 0 || !f32BitsEqual(got.Params, []float32{7, 8, 9}) {
				t.Fatalf("old-layout request decoded as %+v", got)
			}
		}
		RecyclePredictRequest(pm)
	})

	t.Run("new-request-zero-deadline", func(t *testing.T) {
		legacy, pooled := decodeBoth(t, Encode(PredictRequest{ID: 42, T: 1.5, Params: []float32{7, 8, 9}}))
		if lm := legacy.(PredictRequest); lm.DeadlineMs != 0 || lm.ID != 42 {
			t.Fatalf("explicit-zero deadline decoded as %+v", lm)
		}
		pm := pooled.(*PredictRequest)
		if pm.DeadlineMs != 0 || pm.ID != 42 {
			t.Fatalf("pooled explicit-zero deadline decoded as %+v", pm)
		}
		RecyclePredictRequest(pm)
	})

	t.Run("short-trailing-junk-tolerated", func(t *testing.T) {
		payload := appendU64(nil, 1)
		payload = appendU32(payload, math.Float32bits(2))
		payload = appendF32s(payload, []float32{3})
		payload = append(payload, 0xAB, 0xCD) // 2 bytes: not a whole extension
		legacy, pooled := decodeBoth(t, oldFrame(TypePredictRequest, payload))
		if lm := legacy.(PredictRequest); lm.DeadlineMs != 0 {
			t.Fatalf("junk tail decoded as deadline: %+v", lm)
		}
		pm := pooled.(*PredictRequest)
		if pm.DeadlineMs != 0 {
			t.Fatalf("pooled junk tail decoded as deadline: %+v", pm)
		}
		RecyclePredictRequest(pm)
	})

	t.Run("old-predict-error", func(t *testing.T) {
		payload := appendU64(nil, 5)
		payload = appendString(payload, "bad parameter count")
		legacy, pooled := decodeBoth(t, oldFrame(TypePredictError, payload))
		for _, got := range []Message{legacy, pooled} {
			m := got.(PredictError)
			if m.ID != 5 || m.Msg != "bad parameter count" || m.Code != PredictErrGeneric || m.RetryAfterMs != 0 {
				t.Fatalf("old-layout error decoded as %+v", m)
			}
		}
	})

	t.Run("old-serve-info", func(t *testing.T) {
		payload := appendString(nil, "heat")
		payload = appendU32(payload, 5)
		payload = appendU32(payload, 256)
		payload = appendU32(payload, 3)
		legacy, pooled := decodeBoth(t, oldFrame(TypeServeInfo, payload))
		for _, got := range []Message{legacy, pooled} {
			m := got.(ServeInfo)
			if m.Problem != "heat" || m.ParamDim != 5 || m.OutputDim != 256 || m.Epoch != 3 {
				t.Fatalf("old-layout info decoded as %+v", m)
			}
			if m.Queue != 0 || m.QueueCap != 0 || m.Shed != 0 || m.Expired != 0 || m.SlowClients != 0 || m.Draining != 0 {
				t.Fatalf("old-layout info grew pressure fields: %+v", m)
			}
		}
	})

	t.Run("new-frames-round-trip", func(t *testing.T) {
		for _, m := range []Message{
			PredictRequest{ID: 1, T: 2, Params: []float32{3}, DeadlineMs: 750},
			PredictError{ID: 2, Msg: "overloaded", Code: PredictErrOverloaded, RetryAfterMs: 9},
			ServeInfo{Problem: "heat", ParamDim: 5, OutputDim: 64, Epoch: 7,
				Queue: 3, QueueCap: 128, Shed: 11, Expired: 2, SlowClients: 4, Draining: 1},
		} {
			legacy, pooled := decodeBoth(t, Encode(m))
			if req, ok := m.(PredictRequest); ok {
				pm := pooled.(*PredictRequest)
				if lm := legacy.(PredictRequest); lm.DeadlineMs != req.DeadlineMs || pm.DeadlineMs != req.DeadlineMs {
					t.Fatalf("deadline lost: legacy %+v pooled %+v", lm, pm)
				}
				RecyclePredictRequest(pm)
				continue
			}
			if !reflect.DeepEqual(normalizeEmptySlices(legacy), normalizeEmptySlices(m)) ||
				!reflect.DeepEqual(normalizeEmptySlices(pooled.(Message)), normalizeEmptySlices(m)) {
				t.Fatalf("%T round trip: legacy %+v pooled %+v want %+v", m, legacy, pooled, m)
			}
		}
	})
}

// TestServePooledDecodeBitIdentical streams randomized serving messages
// through the pooled Reader and the legacy Read and requires bit-identical
// results, mirroring the ingestion-path guarantee for TimeStep.
func TestServePooledDecodeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 23))
	randFloats := func(n int) []float32 {
		out := make([]float32, n)
		for i := range out {
			out[i] = math.Float32frombits(rng.Uint32())
		}
		return out
	}
	var stream bytes.Buffer
	var want []Message
	for i := 0; i < 300; i++ {
		var m Message
		switch rng.IntN(5) {
		case 0:
			m = PredictRequest{ID: rng.Uint64(), T: math.Float32frombits(rng.Uint32()), Params: randFloats(rng.IntN(12)), DeadlineMs: rng.Uint32N(5000)}
		case 1:
			m = PredictResponse{ID: rng.Uint64(), Epoch: rng.Uint32(), Field: randFloats(rng.IntN(2000))}
		case 2:
			m = PredictError{ID: rng.Uint64(), Msg: "err", Code: rng.Uint32N(4), RetryAfterMs: rng.Uint32N(100)}
		case 3:
			m = ServeInfo{Problem: "gray-scott", ParamDim: rng.Uint32(), OutputDim: rng.Uint32(), Epoch: rng.Uint32(),
				Queue: rng.Uint32N(64), QueueCap: 64, Shed: rng.Uint64N(1000), Expired: rng.Uint64N(100), SlowClients: rng.Uint64N(10), Draining: rng.Uint32N(2)}
		default:
			m = ReloadResult{Epoch: rng.Uint32(), Msg: ""}
		}
		want = append(want, m)
		if err := Write(&stream, m); err != nil {
			t.Fatal(err)
		}
	}

	legacyStream := bytes.NewReader(stream.Bytes())
	pooled := NewReader(bytes.NewReader(stream.Bytes()))
	for i, wm := range want {
		legacy, err := Read(legacyStream)
		if err != nil {
			t.Fatalf("message %d: legacy read: %v", i, err)
		}
		got, err := pooled.Next()
		if err != nil {
			t.Fatalf("message %d: pooled read: %v", i, err)
		}
		switch m := got.(type) {
		case *PredictRequest:
			lm := legacy.(PredictRequest)
			wmv := wm.(PredictRequest)
			if m.ID != lm.ID || math.Float32bits(m.T) != math.Float32bits(lm.T) || m.DeadlineMs != lm.DeadlineMs || m.DeadlineMs != wmv.DeadlineMs {
				t.Fatalf("message %d: header mismatch %+v vs %+v", i, m, lm)
			}
			if !f32BitsEqual(m.Params, lm.Params) || !f32BitsEqual(m.Params, wmv.Params) {
				t.Fatalf("message %d: request params bits differ", i)
			}
			RecyclePredictRequest(m)
		case *PredictResponse:
			lm := legacy.(PredictResponse)
			wmv := wm.(PredictResponse)
			if m.ID != lm.ID || m.Epoch != lm.Epoch {
				t.Fatalf("message %d: header mismatch %+v vs %+v", i, m, lm)
			}
			if !f32BitsEqual(m.Field, lm.Field) || !f32BitsEqual(m.Field, wmv.Field) {
				t.Fatalf("message %d: response field bits differ", i)
			}
			RecyclePredictResponse(m)
		default:
			if !reflect.DeepEqual(got, legacy) {
				t.Fatalf("message %d: %+v != legacy %+v", i, got, legacy)
			}
		}
	}
	if _, err := pooled.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

// TestServeReaderZeroAllocSteadyState gates the serving decode hot pair at
// zero allocations per message once the pools are warm: requests on the
// server side, responses on the client side.
func TestServeReaderZeroAllocSteadyState(t *testing.T) {
	reqFrame := Encode(PredictRequest{ID: 1, T: 0.5, Params: make([]float32, 6)})
	respFrame := Encode(PredictResponse{ID: 1, Epoch: 1, Field: make([]float32, 1024)})
	for name, frame := range map[string][]byte{"request": reqFrame, "response": respFrame} {
		const iters = 512
		src := bytes.NewReader(nil)
		rd := NewReader(src)
		recycle := func(m Message) {
			switch v := m.(type) {
			case *PredictRequest:
				RecyclePredictRequest(v)
			case *PredictResponse:
				RecyclePredictResponse(v)
			}
		}
		for i := 0; i < 8; i++ { // warm body buffer and payload pool
			src.Reset(frame)
			m, err := rd.Next()
			if err != nil {
				t.Fatal(err)
			}
			recycle(m)
		}
		avg := testing.AllocsPerRun(iters, func() {
			src.Reset(frame)
			m, err := rd.Next()
			if err != nil {
				t.Fatal(err)
			}
			recycle(m)
		})
		if avg != 0 {
			t.Fatalf("%s decode allocates %.2f allocs/op, want 0", name, avg)
		}
	}
}

// FuzzServeFrame fuzzes the serving frame decoders: arbitrary bodies must
// decode or error, never panic or over-read, and the pooled and legacy
// paths must agree — including on the new predict request/response frames.
func FuzzServeFrame(f *testing.F) {
	f.Add(Encode(PredictRequest{ID: 1, T: 0.5, Params: []float32{1, 2, 3}})[4:])
	f.Add(Encode(PredictRequest{ID: 1, T: 0.5, Params: []float32{1, 2, 3}, DeadlineMs: 250})[4:])
	f.Add(Encode(PredictResponse{ID: 1, Epoch: 2, Field: []float32{4, 5}})[4:])
	f.Add(Encode(PredictError{ID: 1, Msg: "bad"})[4:])
	f.Add(Encode(PredictError{ID: 1, Msg: "overloaded", Code: PredictErrOverloaded, RetryAfterMs: 8})[4:])
	f.Add(Encode(ServeInfoRequest{})[4:])
	f.Add(Encode(ServeInfo{Problem: "heat", ParamDim: 5, OutputDim: 256, Epoch: 1})[4:])
	f.Add(Encode(ServeInfo{Problem: "heat", ParamDim: 5, OutputDim: 256, Epoch: 1,
		Queue: 3, QueueCap: 64, Shed: 2, Expired: 1, SlowClients: 1, Draining: 1})[4:])
	f.Add(Encode(Reload{Path: "x.mlsg"})[4:])
	f.Add(Encode(ReloadResult{Epoch: 1, Msg: ""})[4:])
	// Pre-extension layouts: PredictRequest ending at Params, PredictError
	// ending at Msg — must stay decodable with the extensions zeroed.
	f.Add(oldFrame(TypePredictRequest, appendF32s(appendU32(appendU64(nil, 1), math.Float32bits(0.5)), []float32{1}))[4:])
	f.Add(oldFrame(TypePredictError, appendString(appendU64(nil, 1), "bad"))[4:])
	f.Add([]byte{byte(TypePredictRequest), 1, 0, 0, 0, 0, 0, 0, 0})                                      // truncated
	f.Add([]byte{byte(TypePredictResponse), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}) // huge float count
	f.Add([]byte{byte(TypeReload), 0xff, 0xff, 0xff, 0xff})                                              // huge string length
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) == 0 || len(body) > MaxFrameSize {
			return
		}
		msg, err := decodeBody(append([]byte(nil), body...))
		pooled, perr := NewReader(bytes.NewReader(frameOf(body))).Next()
		if (err == nil) != (perr == nil) {
			t.Fatalf("legacy err %v, pooled err %v", err, perr)
		}
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case PredictRequest:
			p, ok := pooled.(*PredictRequest)
			if !ok {
				t.Fatalf("pooled decode returned %T", pooled)
			}
			if p.ID != m.ID || math.Float32bits(p.T) != math.Float32bits(m.T) || p.DeadlineMs != m.DeadlineMs || !bitsEqual(p.Params, m.Params) {
				t.Fatalf("pooled request diverged from legacy decode")
			}
			RecyclePredictRequest(p)
		case PredictResponse:
			p, ok := pooled.(*PredictResponse)
			if !ok {
				t.Fatalf("pooled decode returned %T", pooled)
			}
			if p.ID != m.ID || p.Epoch != m.Epoch || !bitsEqual(p.Field, m.Field) {
				t.Fatalf("pooled response diverged from legacy decode")
			}
			RecyclePredictResponse(p)
		default:
			// Other frames: re-encode → re-decode → re-encode must be a
			// fixed point. Comparing encoded bytes (not decoded structs)
			// keeps the check bit-exact for NaN float payloads.
			wire := AppendEncode(nil, msg)
			back, rerr := Read(bytes.NewReader(wire))
			if rerr != nil {
				t.Fatalf("re-decode of valid %T failed: %v", msg, rerr)
			}
			if again := AppendEncode(nil, back); !bytes.Equal(again, wire) {
				t.Fatalf("re-encode of %T diverged: %x vs %x", msg, again, wire)
			}
		}
	})
}

// BenchmarkF32Codec compares the scalar byte↔float shuffle (the loop the
// collective ring used before it adopted the shared codec) against the
// exported 8-wide unrolled bulk loops, in both directions.
func BenchmarkF32Codec(b *testing.B) {
	const n = 16384 // a 64 KiB collective chunk
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i) * 0.5
	}
	buf := make([]byte, 4*n)
	dst := make([]float32, n)
	b.Run("encode-scalar", func(b *testing.B) {
		b.SetBytes(4 * n)
		for i := 0; i < b.N; i++ {
			for j, v := range vals {
				putU32LE(buf[4*j:], math.Float32bits(v))
			}
		}
	})
	b.Run("encode-bulk", func(b *testing.B) {
		b.SetBytes(4 * n)
		for i := 0; i < b.N; i++ {
			EncodeF32s(buf, vals)
		}
	})
	b.Run("decode-scalar", func(b *testing.B) {
		b.SetBytes(4 * n)
		for i := 0; i < b.N; i++ {
			for j := range dst {
				dst[j] = math.Float32frombits(u32LE(buf[4*j:]))
			}
		}
	})
	b.Run("decode-bulk", func(b *testing.B) {
		b.SetBytes(4 * n)
		for i := 0; i < b.N; i++ {
			DecodeF32s(dst, buf)
		}
	})
}

func putU32LE(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func u32LE(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
