package protocol

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDecodeBody fuzzes the frame-body decoder (the bytes after the length
// prefix, type byte included): arbitrary input must either decode or
// error — never panic, and never read past the payload. Valid TimeStep
// bodies must additionally decode bit-identically through the pooled path.
func FuzzDecodeBody(f *testing.F) {
	f.Add(Encode(Hello{ClientID: 1, SimID: 2, Steps: 3, Restart: 4})[4:])
	f.Add(Encode(TimeStep{SimID: 1, Step: 2, Input: []float32{1, 2}, Field: []float32{3, 4, 5}})[4:])
	f.Add(Encode(Goodbye{ClientID: 1, SimID: 2})[4:])
	f.Add(Encode(Heartbeat{ClientID: 9})[4:])
	f.Add([]byte{byte(TypeTimeStep), 1, 0, 0, 0})                         // truncated header fields
	f.Add([]byte{byte(TypeTimeStep), 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}) // huge float count
	f.Add([]byte{99})                                                     // unknown type
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) == 0 {
			return // Read/Next reject zero-size frames before decodeBody
		}
		if len(body) > MaxFrameSize {
			return
		}
		msg, err := decodeBody(append([]byte(nil), body...))
		if err != nil {
			// Errors must be deterministic: the same body through the
			// framed Reader must also error.
			if _, rerr := NewReader(bytes.NewReader(frameOf(body))).Next(); rerr == nil {
				t.Fatalf("decodeBody rejected body but Reader accepted it")
			}
			return
		}
		// A successfully decoded message must re-encode and re-decode to
		// the same value (encode is not required to be byte-identical to
		// arbitrary input, since trailing garbage is tolerated by decode).
		reframed := AppendEncode(nil, msg)
		back, err := NewReader(bytes.NewReader(reframed)).Next()
		if err != nil {
			t.Fatalf("re-decode of valid message failed: %v", err)
		}
		if ts, ok := msg.(TimeStep); ok {
			pooled, ok := back.(*TimeStep)
			if !ok {
				t.Fatalf("pooled decode returned %T", back)
			}
			if pooled.SimID != ts.SimID || pooled.Step != ts.Step ||
				!bitsEqual(pooled.Input, ts.Input) || !bitsEqual(pooled.Field, ts.Field) {
				t.Fatalf("pooled decode diverged from legacy decode")
			}
			RecycleTimeStep(pooled)
		}
	})
}

// FuzzReaderStream fuzzes the full framed stream path: arbitrary bytes fed
// to Reader.Next must never panic or over-read; at most they error.
func FuzzReaderStream(f *testing.F) {
	f.Add(Encode(TimeStep{SimID: 1, Step: 2, Input: []float32{1}, Field: []float32{2}}))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1})
	f.Fuzz(func(t *testing.T, stream []byte) {
		rd := NewReader(bytes.NewReader(stream))
		for i := 0; i < 64; i++ {
			msg, err := rd.Next()
			if err != nil {
				return
			}
			if ts, ok := msg.(*TimeStep); ok {
				RecycleTimeStep(ts)
			}
		}
	})
}

func frameOf(body []byte) []byte {
	frame := make([]byte, 4+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	return frame
}

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}
