//go:build amd64

#include "textflag.h"

// func cpuidF16C(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidF16C(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvF16C() (eax, edx uint32)
TEXT ·xgetbvF16C(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func encodeF16sKern(dst []byte, vals []float32, blocks int)
//
// blocks × 8 float32 → binary16, round-to-nearest-even (imm8 = 0 overrides
// MXCSR.RC). One VCVTPS2PH per 8 elements; iterations are independent, so
// out-of-order execution hides the conversion latency.
TEXT ·encodeF16sKern(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ vals_base+24(FP), SI
	MOVQ blocks+48(FP), CX

enc_loop:
	VMOVUPS   (SI), Y0
	VCVTPS2PH $0, Y0, X0
	VMOVUPS   X0, (DI)
	ADDQ      $32, SI
	ADDQ      $16, DI
	DECQ      CX
	JNZ       enc_loop
	VZEROUPPER
	RET

// func decodeF16sKern(dst []float32, src []byte, blocks int)
//
// blocks × 8 binary16 → float32 (exact, signaling NaNs quieted — the
// semantics F32FromF16 mirrors).
TEXT ·decodeF16sKern(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ blocks+48(FP), CX

dec_loop:
	VCVTPH2PS (SI), Y0
	VMOVUPS   Y0, (DI)
	ADDQ      $16, SI
	ADDQ      $32, DI
	DECQ      CX
	JNZ       dec_loop
	VZEROUPPER
	RET

// func roundF16sKern(vals []float32, blocks int)
//
// In-place binary16 round-trip: blocks × 8 float32 → binary16 (RNE) →
// float32, never leaving the registers. This is the all-reduce owner-chunk
// quantization (RoundF16 over a slice) at hardware speed.
TEXT ·roundF16sKern(SB), NOSPLIT, $0-32
	MOVQ vals_base+0(FP), SI
	MOVQ blocks+24(FP), CX

rnd_loop:
	VMOVUPS   (SI), Y0
	VCVTPS2PH $0, Y0, X0
	VCVTPH2PS X0, Y0
	VMOVUPS   Y0, (SI)
	ADDQ      $32, SI
	DECQ      CX
	JNZ       rnd_loop
	VZEROUPPER
	RET

// func addF16sKern(dst []float32, src []byte, blocks int)
//
// Fused decode+accumulate: blocks × 8 binary16 from src are expanded and
// added element-wise into dst. The adds are independent IEEE float32
// operations, so the result is bit-identical to decode-then-add for all
// non-NaN inputs.
TEXT ·addF16sKern(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ blocks+48(FP), CX

a16_loop:
	VCVTPH2PS (SI), Y0
	VADDPS    (DI), Y0, Y0
	VMOVUPS   Y0, (DI)
	ADDQ      $16, SI
	ADDQ      $32, DI
	DECQ      CX
	JNZ       a16_loop
	VZEROUPPER
	RET

// func addF32sKern(dst []float32, src []byte, blocks int)
//
// Full-width fused accumulate: blocks × 8 little-endian float32 from src
// added element-wise into dst. Needs only AVX (no F16C).
TEXT ·addF32sKern(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ blocks+48(FP), CX

a32_loop:
	VMOVUPS (SI), Y0
	VADDPS  (DI), Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     a32_loop
	VZEROUPPER
	RET

// func quantizeEFKern(buf, res []float32, blocks int)
//
// Fused error-feedback quantization: v = buf + res, q = round16(v),
// buf = q, res = v − q — one load/convert/store pass instead of three
// scalar ones. Element-wise IEEE float32 throughout, so bit-identical to
// the portable loop for all non-NaN inputs.
TEXT ·quantizeEFKern(SB), NOSPLIT, $0-56
	MOVQ buf_base+0(FP), DI
	MOVQ res_base+24(FP), SI
	MOVQ blocks+48(FP), CX

ef_loop:
	VMOVUPS   (DI), Y0
	VADDPS    (SI), Y0, Y0  // Y0 = v = buf + res
	VCVTPS2PH $0, Y0, X1
	VCVTPH2PS X1, Y1        // Y1 = q = round16(v)
	VMOVUPS   Y1, (DI)
	VSUBPS    Y1, Y0, Y2    // Y2 = v - q
	VMOVUPS   Y2, (SI)
	ADDQ      $32, DI
	ADDQ      $32, SI
	DECQ      CX
	JNZ       ef_loop
	VZEROUPPER
	RET
