// Serving-tier wire messages: the prediction request/response frames spoken
// between surrogate clients and melissa-serve, plus the admin frames for
// checkpoint hot reload and server introspection. They share the client
// framing [payload length u32 | type u8 | payload] and the float32 wire
// discipline of the training messages.
//
// The hot pair follows the same lease–recycle contract as TimeStep:
// Reader.Next returns PredictRequest and PredictResponse messages as leased
// pointers whose payload slices are recycled through package freelists
// (LeasePredictRequest/RecyclePredictRequest and the Response mirrors), so a
// serving rank under load decodes requests and a closed-loop client decodes
// responses with zero steady-state allocations. The admin frames
// (ServeInfoRequest/ServeInfo, Reload/ReloadResult, PredictError) are rare
// and travel by value through the allocating path.
package protocol

import "math"

// Serving wire message types (continuing the MsgType space after the ring
// frames, which end at TypeRingPing = 8).
const (
	// TypePredictRequest asks the serving tier for one surrogate
	// evaluation: field(Params, T).
	TypePredictRequest MsgType = iota + 9
	// TypePredictResponse carries the predicted field for one request,
	// tagged with the checkpoint epoch that produced it.
	TypePredictResponse
	// TypePredictError reports a rejected request (wrong parameter count,
	// no model loaded) without tearing the connection down.
	TypePredictError
	// TypeServeInfoRequest asks the server to describe the loaded model.
	TypeServeInfoRequest
	// TypeServeInfo answers with the model's problem name, dimensions and
	// current checkpoint epoch.
	TypeServeInfo
	// TypeReload asks the server to hot-reload its checkpoint (admin).
	TypeReload
	// TypeReloadResult reports the outcome of a reload.
	TypeReloadResult
)

// PredictRequest asks for one surrogate evaluation: the design parameters
// (problem canonical order, float32 like every wire payload) and the
// physical time. ID is an opaque client-chosen correlation token echoed in
// the response. Responses are NOT guaranteed to arrive in request order —
// cache hits are answered inline while misses wait for a batch, and batches
// complete concurrently across workers — so a client pipelining more than
// one outstanding request on a connection must assign distinct IDs and
// correlate by them. Only a strictly synchronous client (one request in
// flight at a time) may leave the ID zero. Instances produced by
// Reader.Next are leased (see the package comment); their Params slice is
// only valid until RecyclePredictRequest.
//
// DeadlineMs is the caller's remaining latency budget in milliseconds,
// measured from server receipt (relative, so no clock synchronization is
// assumed). A server that cannot answer within the budget rejects the
// request with PredictErrExpired instead of computing an answer nobody is
// waiting for. The field rides as an optional trailing extension of the
// original frame layout: frames from older clients simply end after Params
// and decode with DeadlineMs == 0, which means "no deadline" — so old
// clients interoperate with new servers and vice versa.
type PredictRequest struct {
	ID         uint64
	T          float32
	Params     []float32
	DeadlineMs uint32
}

// Type implements Message.
func (PredictRequest) Type() MsgType { return TypePredictRequest }

func (m PredictRequest) encodeTo(buf []byte) []byte {
	buf = appendU64(buf, m.ID)
	buf = appendU32(buf, math.Float32bits(m.T))
	buf = appendF32s(buf, m.Params)
	return appendU32(buf, m.DeadlineMs)
}

// PredictResponse carries the predicted physical field for one request.
// Epoch identifies the checkpoint generation that produced it: it advances
// by one on every hot reload, so a client can tell old-model from new-model
// answers across a reload. Instances produced by Reader.Next are leased;
// the Field slice is only valid until RecyclePredictResponse.
type PredictResponse struct {
	ID    uint64
	Epoch uint32
	Field []float32
}

// Type implements Message.
func (PredictResponse) Type() MsgType { return TypePredictResponse }

func (m PredictResponse) encodeTo(buf []byte) []byte {
	buf = appendU64(buf, m.ID)
	buf = appendU32(buf, m.Epoch)
	return appendF32s(buf, m.Field)
}

// PredictError codes classify a rejection so clients can pick a recovery
// instead of parsing the message text. Code 0 is what frames from servers
// predating the field decode to, so it doubles as "unclassified".
const (
	// PredictErrGeneric: malformed request (wrong parameter count, no
	// model). Retrying the identical request will fail the same way.
	PredictErrGeneric uint32 = iota
	// PredictErrOverloaded: the server shed the request because its admit
	// queue was full. Transient — retry after RetryAfterMs, ideally on
	// another replica.
	PredictErrOverloaded
	// PredictErrExpired: the request's DeadlineMs budget elapsed before a
	// batch worker could compute it; the answer was never computed.
	PredictErrExpired
	// PredictErrDraining: the server is draining for shutdown and admits
	// nothing new. Retry on another replica.
	PredictErrDraining
)

// PredictError rejects one request (echoing its ID) with a reason, leaving
// the connection usable for further requests. Code classifies the
// rejection (see the PredictErr constants) and RetryAfterMs carries the
// server's backoff hint for PredictErrOverloaded. Both ride as an optional
// trailing extension: frames from older servers end after Msg and decode
// with Code == PredictErrGeneric, RetryAfterMs == 0.
type PredictError struct {
	ID           uint64
	Msg          string
	Code         uint32
	RetryAfterMs uint32
}

// Type implements Message.
func (PredictError) Type() MsgType { return TypePredictError }

func (m PredictError) encodeTo(buf []byte) []byte {
	buf = appendU64(buf, m.ID)
	buf = appendString(buf, m.Msg)
	buf = appendU32(buf, m.Code)
	return appendU32(buf, m.RetryAfterMs)
}

// ServeInfoRequest asks the serving tier to describe its loaded model.
type ServeInfoRequest struct{}

// Type implements Message.
func (ServeInfoRequest) Type() MsgType { return TypeServeInfoRequest }

func (ServeInfoRequest) encodeTo(buf []byte) []byte { return buf }

// ServeInfo describes the loaded surrogate — the registered problem name,
// the request parameter count, the flattened field length, and the current
// checkpoint epoch — plus a pressure snapshot so clients can see server
// load: the admit queue's depth and capacity, the monotonic shed /
// deadline-expired / slow-client-disconnect counters, and whether the
// server is draining for shutdown. The pressure block is an optional
// trailing extension; frames from older servers end after Epoch and decode
// with the block zeroed.
type ServeInfo struct {
	Problem   string
	ParamDim  uint32
	OutputDim uint32
	Epoch     uint32

	Queue       uint32 // admit queue depth at snapshot time
	QueueCap    uint32 // admit queue capacity (the shed threshold)
	Shed        uint64 // requests rejected PredictErrOverloaded/Draining
	Expired     uint64 // requests rejected PredictErrExpired
	SlowClients uint64 // connections torn down for not draining responses
	Draining    uint32 // 1 while Drain is in progress
}

// Type implements Message.
func (ServeInfo) Type() MsgType { return TypeServeInfo }

// serveInfoPressureBytes is the encoded size of ServeInfo's trailing
// pressure block; decoders parse the block only when it is present whole.
const serveInfoPressureBytes = 4 + 4 + 8 + 8 + 8 + 4

func (m ServeInfo) encodeTo(buf []byte) []byte {
	buf = appendString(buf, m.Problem)
	buf = appendU32(buf, m.ParamDim)
	buf = appendU32(buf, m.OutputDim)
	buf = appendU32(buf, m.Epoch)
	buf = appendU32(buf, m.Queue)
	buf = appendU32(buf, m.QueueCap)
	buf = appendU64(buf, m.Shed)
	buf = appendU64(buf, m.Expired)
	buf = appendU64(buf, m.SlowClients)
	return appendU32(buf, m.Draining)
}

// Reload asks the serving tier to hot-reload its checkpoint. An empty Path
// re-reads the server's configured checkpoint path.
type Reload struct {
	Path string
}

// Type implements Message.
func (Reload) Type() MsgType { return TypeReload }

func (m Reload) encodeTo(buf []byte) []byte { return appendString(buf, m.Path) }

// ReloadResult reports a reload outcome: the (possibly unchanged) current
// epoch and an empty Msg on success, or the load error.
type ReloadResult struct {
	Epoch uint32
	Msg   string
}

// Type implements Message.
func (ReloadResult) Type() MsgType { return TypeReloadResult }

func (m ReloadResult) encodeTo(buf []byte) []byte {
	buf = appendU32(buf, m.Epoch)
	return appendString(buf, m.Msg)
}

// predictReqFree / predictRespFree recycle the leased serving payloads, like
// timeStepFree for ingestion. Capacity bounds retained memory; a recycle
// into a full freelist drops the payload.
var (
	predictReqFree  = make(chan *PredictRequest, 1024)
	predictRespFree = make(chan *PredictResponse, 1024)
)

// LeasePredictRequest returns a PredictRequest from the freelist (or a fresh
// one). Its Params slice retains the capacity of its previous use.
func LeasePredictRequest() *PredictRequest {
	select {
	case m := <-predictReqFree:
		return m
	default:
		return &PredictRequest{}
	}
}

// RecyclePredictRequest returns a leased PredictRequest to the freelist. The
// caller must not touch m or its Params slice afterwards. nil is ignored.
func RecyclePredictRequest(m *PredictRequest) {
	if m == nil {
		return
	}
	m.ID, m.T, m.DeadlineMs = 0, 0, 0
	select {
	case predictReqFree <- m:
	default:
	}
}

// LeasePredictResponse returns a PredictResponse from the freelist (or a
// fresh one). Its Field slice retains the capacity of its previous use.
func LeasePredictResponse() *PredictResponse {
	select {
	case m := <-predictRespFree:
		return m
	default:
		return &PredictResponse{}
	}
}

// RecyclePredictResponse returns a leased PredictResponse to the freelist.
// The caller must not touch m or its Field slice afterwards. nil is ignored.
func RecyclePredictResponse(m *PredictResponse) {
	if m == nil {
		return
	}
	m.ID, m.Epoch = 0, 0
	select {
	case predictRespFree <- m:
	default:
	}
}

// decodePredictRequestInto decodes a PredictRequest payload into m, reusing
// the capacity of its Params slice. The trailing DeadlineMs extension is
// optional: pre-extension frames end after Params and decode to 0.
func decodePredictRequestInto(m *PredictRequest, payload []byte) error {
	d := decoder{buf: payload}
	m.ID = d.u64()
	m.T = math.Float32frombits(d.u32())
	m.Params = d.f32sInto(m.Params[:0])
	m.DeadlineMs = d.optU32()
	return d.err
}

// decodePredictResponseInto decodes a PredictResponse payload into m,
// reusing the capacity of its Field slice.
func decodePredictResponseInto(m *PredictResponse, payload []byte) error {
	d := decoder{buf: payload}
	m.ID = d.u64()
	m.Epoch = d.u32()
	m.Field = d.f32sInto(m.Field[:0])
	return d.err
}

// decodeServeBody decodes the serving message types for the allocating
// reference path (decodeBody dispatches here).
func decodeServeBody(typ MsgType, d *decoder) (Message, error) {
	switch typ {
	case TypePredictRequest:
		m := PredictRequest{ID: d.u64(), T: math.Float32frombits(d.u32())}
		m.Params = d.f32s()
		m.DeadlineMs = d.optU32()
		return m, d.err
	case TypePredictResponse:
		m := PredictResponse{ID: d.u64(), Epoch: d.u32()}
		m.Field = d.f32s()
		return m, d.err
	case TypePredictError:
		m := PredictError{ID: d.u64()}
		m.Msg = d.str()
		if d.err == nil && len(d.buf) >= 8 {
			m.Code = d.u32()
			m.RetryAfterMs = d.u32()
		}
		return m, d.err
	case TypeServeInfoRequest:
		return ServeInfoRequest{}, d.err
	case TypeServeInfo:
		m := ServeInfo{Problem: d.str(), ParamDim: d.u32(), OutputDim: d.u32(), Epoch: d.u32()}
		if d.err == nil && len(d.buf) >= serveInfoPressureBytes {
			m.Queue = d.u32()
			m.QueueCap = d.u32()
			m.Shed = d.u64()
			m.Expired = d.u64()
			m.SlowClients = d.u64()
			m.Draining = d.u32()
		}
		return m, d.err
	case TypeReload:
		return Reload{Path: d.str()}, d.err
	case TypeReloadResult:
		m := ReloadResult{Epoch: d.u32()}
		m.Msg = d.str()
		return m, d.err
	default:
		return nil, errUnknownType(typ)
	}
}
