package protocol

import (
	"bytes"
	"io"
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
)

// TestAppendEncodeMatchesEncode pins the satellite contract: the
// single-buffer framing must be byte-identical to the legacy two-allocation
// Encode for every message type, including when appending after existing
// bytes.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	msgs := []Message{
		Hello{ClientID: 1, SimID: 2, Steps: 3, Restart: 4},
		TimeStep{SimID: 5, Step: 6, Input: []float32{1, 2, 3}, Field: []float32{4, 5, 6, 7, 8, 9, 10, 11, 12}},
		TimeStep{SimID: -1, Step: -2},
		Goodbye{ClientID: 7, SimID: 8},
		Heartbeat{ClientID: 9},
	}
	for _, m := range msgs {
		legacy := Encode(m)
		got := AppendEncode(nil, m)
		if !bytes.Equal(got, legacy) {
			t.Fatalf("%T: AppendEncode differs from Encode", m)
		}
		prefix := []byte{0xAA, 0xBB}
		appended := AppendEncode(append([]byte(nil), prefix...), m)
		if !bytes.Equal(appended[:2], prefix) || !bytes.Equal(appended[2:], legacy) {
			t.Fatalf("%T: AppendEncode after prefix corrupted the frame", m)
		}
	}
}

// TestPooledDecodeBitIdentical streams randomized messages through both
// decode paths and requires bit-identical results — the pooled Reader must
// be a pure optimization of the legacy allocating Read.
func TestPooledDecodeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	randFloats := func(n int) []float32 {
		out := make([]float32, n)
		for i := range out {
			// Include weird bit patterns: NaNs, infs, denormals.
			out[i] = math.Float32frombits(rng.Uint32())
		}
		return out
	}
	var stream bytes.Buffer
	var want []Message
	for i := 0; i < 300; i++ {
		var m Message
		switch rng.IntN(4) {
		case 0:
			m = Hello{ClientID: int32(rng.Uint32()), SimID: int32(rng.Uint32()), Steps: int32(rng.Uint32()), Restart: int32(rng.Uint32())}
		case 1:
			m = Goodbye{ClientID: int32(rng.Uint32()), SimID: int32(rng.Uint32())}
		case 2:
			m = Heartbeat{ClientID: int32(rng.Uint32())}
		default:
			m = TimeStep{
				SimID: int32(rng.Uint32()),
				Step:  int32(rng.Uint32()),
				Input: randFloats(rng.IntN(40)),
				Field: randFloats(rng.IntN(3000)),
			}
		}
		want = append(want, m)
		if err := Write(&stream, m); err != nil {
			t.Fatal(err)
		}
	}

	legacyStream := bytes.NewReader(stream.Bytes())
	pooled := NewReader(bytes.NewReader(stream.Bytes()))
	for i, wm := range want {
		legacy, err := Read(legacyStream)
		if err != nil {
			t.Fatalf("message %d: legacy read: %v", i, err)
		}
		got, err := pooled.Next()
		if err != nil {
			t.Fatalf("message %d: pooled read: %v", i, err)
		}
		if ts, ok := got.(*TimeStep); ok {
			lts := legacy.(TimeStep)
			if ts.SimID != lts.SimID || ts.Step != lts.Step {
				t.Fatalf("message %d: header mismatch %+v vs %+v", i, ts, lts)
			}
			if !f32BitsEqual(ts.Input, lts.Input) || !f32BitsEqual(ts.Field, lts.Field) {
				t.Fatalf("message %d: payload bits differ from legacy decode", i)
			}
			wts := wm.(TimeStep)
			if !f32BitsEqual(ts.Input, wts.Input) || !f32BitsEqual(ts.Field, wts.Field) {
				t.Fatalf("message %d: payload bits differ from encoded input", i)
			}
			RecycleTimeStep(ts)
			continue
		}
		if !reflect.DeepEqual(got, legacy) {
			t.Fatalf("message %d: %+v != legacy %+v", i, got, legacy)
		}
	}
	if _, err := pooled.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func f32BitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestReaderErrorsMatchRead pins that the pooled path rejects exactly what
// the legacy path rejects.
func TestReaderErrorsMatchRead(t *testing.T) {
	cases := [][]byte{
		{1, 0},                         // truncated header
		{0, 0, 0, 0},                   // zero-size frame
		{0xff, 0xff, 0xff, 0xff},       // oversized frame
		{1, 0, 0, 0, 99},               // unknown type
		{10, 0, 0, 0, byte(TypeTimeStep), 1, 0, 0, 0, 2, 0, 0, 0, 9}, // short float payload
	}
	frame := Encode(Heartbeat{ClientID: 1})
	cases = append(cases, frame[:len(frame)-2]) // truncated body
	for i, c := range cases {
		_, legacyErr := Read(bytes.NewReader(c))
		_, pooledErr := NewReader(bytes.NewReader(c)).Next()
		if (legacyErr == nil) != (pooledErr == nil) {
			t.Fatalf("case %d: legacy err %v, pooled err %v", i, legacyErr, pooledErr)
		}
		if legacyErr == nil {
			t.Fatalf("case %d: expected an error", i)
		}
	}
}

// TestReaderRecycleReuse checks the lease–recycle contract: a recycled
// payload's storage is reissued and overwritten by a later Next.
func TestReaderRecycleReuse(t *testing.T) {
	drainTimeStepPool()
	var stream bytes.Buffer
	Write(&stream, TimeStep{SimID: 1, Step: 1, Input: []float32{1}, Field: []float32{2, 3}})
	Write(&stream, TimeStep{SimID: 2, Step: 2, Input: []float32{4}, Field: []float32{5, 6}})
	rd := NewReader(&stream)
	first, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	ts1 := first.(*TimeStep)
	RecycleTimeStep(ts1)
	second, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	ts2 := second.(*TimeStep)
	if ts1 != ts2 {
		t.Fatal("recycled TimeStep was not reissued")
	}
	if ts2.SimID != 2 || ts2.Field[1] != 6 {
		t.Fatalf("reissued payload not overwritten: %+v", ts2)
	}
}

func drainTimeStepPool() {
	for {
		select {
		case <-timeStepFree:
		default:
			return
		}
	}
}

// TestReaderZeroAllocSteadyState gates the ingestion decode path at zero
// allocations per message once the frame body and payload pools are warm.
func TestReaderZeroAllocSteadyState(t *testing.T) {
	msg := TimeStep{SimID: 1, Step: 1, Input: make([]float32, 7), Field: make([]float32, 1024)}
	frame := Encode(msg)
	const iters = 512
	stream := bytes.Repeat(frame, 2*iters+8)
	src := bytes.NewReader(stream)
	rd := NewReader(src)
	for i := 0; i < 8; i++ { // warm the body buffer and the payload pool
		m, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		RecycleTimeStep(m.(*TimeStep))
	}
	avg := testing.AllocsPerRun(iters, func() {
		m, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		RecycleTimeStep(m.(*TimeStep))
	})
	if avg != 0 {
		t.Fatalf("pooled decode allocates %.2f allocs/op, want 0", avg)
	}
}

// TestAppendEncodeZeroAlloc gates the encode side: framing into a recycled
// buffer must not allocate.
func TestAppendEncodeZeroAlloc(t *testing.T) {
	// Box the message once: converting a TimeStep value to the Message
	// interface at the call site allocates, which is why hot paths pass
	// *TimeStep (pointer boxing is free).
	var msg Message = &TimeStep{SimID: 1, Step: 1, Input: make([]float32, 7), Field: make([]float32, 1024)}
	buf := AppendEncode(nil, msg)
	avg := testing.AllocsPerRun(512, func() {
		buf = AppendEncode(buf[:0], msg)
	})
	if avg != 0 {
		t.Fatalf("AppendEncode into recycled buffer allocates %.2f allocs/op, want 0", avg)
	}
}

func BenchmarkAppendEncodeTimeStep(b *testing.B) {
	var msg Message = &TimeStep{SimID: 1, Step: 1, Input: make([]float32, 6), Field: make([]float32, 1024)}
	var buf []byte
	b.SetBytes(int64(len(Encode(msg))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], msg)
	}
}

func BenchmarkPooledDecodeTimeStep(b *testing.B) {
	msg := TimeStep{SimID: 1, Step: 1, Input: make([]float32, 6), Field: make([]float32, 1024)}
	frame := Encode(msg)
	b.SetBytes(int64(len(frame)))
	src := bytes.NewReader(nil)
	rd := NewReader(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset(frame)
		m, err := rd.Next()
		if err != nil {
			b.Fatal(err)
		}
		RecycleTimeStep(m.(*TimeStep))
	}
}

func BenchmarkLegacyDecodeTimeStep(b *testing.B) {
	msg := TimeStep{SimID: 1, Step: 1, Input: make([]float32, 6), Field: make([]float32, 1024)}
	frame := Encode(msg)
	b.SetBytes(int64(len(frame)))
	src := bytes.NewReader(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset(frame)
		if _, err := Read(src); err != nil {
			b.Fatal(err)
		}
	}
}
