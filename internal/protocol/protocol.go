// Package protocol defines the wire messages exchanged between ensemble
// clients and the training server, and their binary framing. It is the Go
// analogue of the paper's ZMQ message layer (§3.1): a client announces
// itself (Hello), streams one TimeStep message per computed solver step,
// emits Heartbeats while computing, and closes with Goodbye
// ("finalize_communication … to signal the server that no more data will be
// sent").
//
// Framing: every message is [payload length u32 | type u8 | payload],
// little-endian throughout. Fields are float32 — the client casts from the
// solver's float64 before sending, performing the precision reduction in
// situ (§3.2.2).
package protocol

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// MsgType discriminates frame payloads.
type MsgType uint8

// Wire message types.
const (
	TypeHello MsgType = iota + 1
	TypeTimeStep
	TypeGoodbye
	TypeHeartbeat

	// Rank-to-rank collective frames (transport.Ring). They share the
	// client framing [length u32 | type u8 | payload] but travel on the
	// dedicated inter-rank ring connections, never through the client
	// message decoder: RingHello carries the sender's rank during ring
	// setup, RingFloats a raw little-endian float32 chunk of a collective,
	// and RingToken a zero-payload barrier token.
	TypeRingHello
	TypeRingFloats
	TypeRingToken
)

// MaxFrameSize bounds a frame payload; larger frames indicate corruption.
const MaxFrameSize = 1 << 30

// Message is any protocol message.
type Message interface {
	Type() MsgType
	encodeTo(buf []byte) []byte
}

// Hello announces a client connection to one server rank.
type Hello struct {
	ClientID int32
	SimID    int32
	// Steps is the number of time steps the client intends to produce, so
	// the server can account for expected data.
	Steps int32
	// Restart counts how many times this client was restarted by the
	// launcher; greater than zero warns the server that duplicate time
	// steps may follow and must be discarded against its message log.
	Restart int32
}

// Type implements Message.
func (Hello) Type() MsgType { return TypeHello }

// TimeStep carries one solver time step: the simulation inputs and the
// flattened field, already reduced to float32 client-side.
type TimeStep struct {
	SimID int32
	Step  int32
	Input []float32
	Field []float32
}

// Type implements Message.
func (TimeStep) Type() MsgType { return TypeTimeStep }

// Goodbye signals that a client has produced all of its data.
type Goodbye struct {
	ClientID int32
	SimID    int32
}

// Type implements Message.
func (Goodbye) Type() MsgType { return TypeGoodbye }

// Heartbeat keeps the server's liveness watchdog fed during long solver
// steps.
type Heartbeat struct {
	ClientID int32
}

// Type implements Message.
func (Heartbeat) Type() MsgType { return TypeHeartbeat }

func (m Hello) encodeTo(buf []byte) []byte {
	buf = appendU32(buf, uint32(m.ClientID))
	buf = appendU32(buf, uint32(m.SimID))
	buf = appendU32(buf, uint32(m.Steps))
	buf = appendU32(buf, uint32(m.Restart))
	return buf
}

func (m TimeStep) encodeTo(buf []byte) []byte {
	buf = appendU32(buf, uint32(m.SimID))
	buf = appendU32(buf, uint32(m.Step))
	buf = appendF32s(buf, m.Input)
	buf = appendF32s(buf, m.Field)
	return buf
}

func (m Goodbye) encodeTo(buf []byte) []byte {
	buf = appendU32(buf, uint32(m.ClientID))
	buf = appendU32(buf, uint32(m.SimID))
	return buf
}

func (m Heartbeat) encodeTo(buf []byte) []byte {
	return appendU32(buf, uint32(m.ClientID))
}

// Encode serializes msg into a self-contained frame.
func Encode(msg Message) []byte {
	payload := msg.encodeTo(make([]byte, 0, 64))
	frame := make([]byte, 0, len(payload)+5)
	frame = appendU32(frame, uint32(len(payload)+1))
	frame = append(frame, byte(msg.Type()))
	frame = append(frame, payload...)
	return frame
}

// Write frames and writes msg to w.
func Write(w io.Writer, msg Message) error {
	_, err := w.Write(Encode(msg))
	return err
}

// Read reads one framed message from r. It returns io.EOF cleanly when the
// stream ends between frames.
func Read(r io.Reader) (Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("protocol: truncated frame header: %w", err)
		}
		return nil, err
	}
	size := binary.LittleEndian.Uint32(lenBuf[:])
	if size == 0 || size > MaxFrameSize {
		return nil, fmt.Errorf("protocol: invalid frame size %d", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("protocol: truncated frame body: %w", err)
	}
	return decodeBody(body)
}

func decodeBody(body []byte) (Message, error) {
	typ := MsgType(body[0])
	d := decoder{buf: body[1:]}
	switch typ {
	case TypeHello:
		m := Hello{
			ClientID: int32(d.u32()),
			SimID:    int32(d.u32()),
			Steps:    int32(d.u32()),
			Restart:  int32(d.u32()),
		}
		return m, d.err
	case TypeTimeStep:
		m := TimeStep{SimID: int32(d.u32()), Step: int32(d.u32())}
		m.Input = d.f32s()
		m.Field = d.f32s()
		return m, d.err
	case TypeGoodbye:
		m := Goodbye{ClientID: int32(d.u32()), SimID: int32(d.u32())}
		return m, d.err
	case TypeHeartbeat:
		m := Heartbeat{ClientID: int32(d.u32())}
		return m, d.err
	default:
		return nil, fmt.Errorf("protocol: unknown message type %d", typ)
	}
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 4 {
		d.err = fmt.Errorf("protocol: short payload")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) f32s() []float32 {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.buf)) < uint64(n)*4 {
		d.err = fmt.Errorf("protocol: short float payload (%d floats, %d bytes left)", n, len(d.buf))
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.buf[4*i:]))
	}
	d.buf = d.buf[4*n:]
	return out
}

func appendU32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

func appendF32s(buf []byte, vals []float32) []byte {
	buf = appendU32(buf, uint32(len(vals)))
	for _, v := range vals {
		buf = appendU32(buf, math.Float32bits(v))
	}
	return buf
}
