// Package protocol defines the wire messages exchanged between ensemble
// clients and the training server, and their binary framing. It is the Go
// analogue of the paper's ZMQ message layer (§3.1): a client announces
// itself (Hello), streams one TimeStep message per computed solver step,
// emits Heartbeats while computing, and closes with Goodbye
// ("finalize_communication … to signal the server that no more data will be
// sent").
//
// Framing: every message is [payload length u32 | type u8 | payload],
// little-endian throughout. Fields are float32 — the client casts from the
// solver's float64 before sending, performing the precision reduction in
// situ (§3.2.2). Float vectors are encoded and decoded with bulk 8-wide
// little-endian loops, not per-element calls, so the codec keeps up with
// the link.
//
// # Allocation discipline
//
// The decode path exists in two forms:
//
//   - Read is the legacy convenience: it allocates a frame body and fresh
//     payload slices per message. It remains the reference implementation
//     (the pooled path is property-tested bit-identical against it) and the
//     right choice for low-rate callers.
//   - Reader is the ingestion path: it owns one recycled frame-body buffer
//     and decodes TimeStep messages into leased payloads, so a server rank
//     receiving thousands of messages per second performs zero steady-state
//     allocations.
//
// # Lease–recycle contract
//
// Reader.Next returns TimeStep messages as *TimeStep values leased from a
// package-global freelist; every other message type is returned by value.
// Ownership of a leased *TimeStep — the struct and its Input/Field backing
// arrays — transfers to the caller. The caller must hand it back with
// RecycleTimeStep exactly once, after the payload has been copied out of
// (e.g. into a training-buffer arena row) and never touched again; the
// freelist immediately reissues recycled payloads to subsequent Next calls,
// which overwrite them. Dropping a leased TimeStep without recycling is
// safe (the pool just re-allocates) but forfeits the zero-allocation
// property.
//
// Encoding follows the same discipline: AppendEncode frames a message into
// a caller-supplied buffer in one pass (no intermediate payload slice), and
// Write reuses a pooled scratch buffer per call.
package protocol

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// MsgType discriminates frame payloads.
type MsgType uint8

// Wire message types.
const (
	TypeHello MsgType = iota + 1
	TypeTimeStep
	TypeGoodbye
	TypeHeartbeat

	// Rank-to-rank collective frames (transport.Ring). They share the
	// client framing [length u32 | type u8 | payload] but travel on the
	// dedicated inter-rank ring connections, never through the client
	// message decoder: RingHello carries the sender's rank during ring
	// setup, RingFloats a raw little-endian float32 chunk of a collective,
	// RingToken a zero-payload barrier token, and RingPing a zero-payload
	// link heartbeat that receivers silently discard (it exists so a rank
	// can tell a dead predecessor from a merely idle one).
	TypeRingHello
	TypeRingFloats
	TypeRingToken
	TypeRingPing
)

// TypeRingFloats16 carries a collective chunk compressed to IEEE 754
// binary16 (EncodeF16s), 2 bytes per element instead of RingFloats' 4. It
// is numbered after the serving-tier types (serve.go ends at
// TypeReloadResult = 15) so existing wire values stay stable.
const TypeRingFloats16 MsgType = 16

// MaxFrameSize bounds a frame payload; larger frames indicate corruption.
const MaxFrameSize = 1 << 30

// Message is any protocol message.
type Message interface {
	Type() MsgType
	encodeTo(buf []byte) []byte
}

// Hello announces a client connection to one server rank.
type Hello struct {
	ClientID int32
	SimID    int32
	// Steps is the number of time steps the client intends to produce, so
	// the server can account for expected data (and size its per-sim
	// dedup bitsets up front).
	Steps int32
	// Restart counts how many times this client was restarted by the
	// launcher; greater than zero warns the server that duplicate time
	// steps may follow and must be discarded against its message log.
	Restart int32
}

// Type implements Message.
func (Hello) Type() MsgType { return TypeHello }

// TimeStep carries one solver time step: the simulation inputs and the
// flattened field, already reduced to float32 client-side. Instances
// produced by Reader.Next are leased (see the package comment); their
// payload slices are only valid until RecycleTimeStep.
type TimeStep struct {
	SimID int32
	Step  int32
	Input []float32
	Field []float32
}

// Type implements Message.
func (TimeStep) Type() MsgType { return TypeTimeStep }

// Goodbye signals that a client has produced all of its data.
type Goodbye struct {
	ClientID int32
	SimID    int32
}

// Type implements Message.
func (Goodbye) Type() MsgType { return TypeGoodbye }

// Heartbeat keeps the server's liveness watchdog fed during long solver
// steps.
type Heartbeat struct {
	ClientID int32
}

// Type implements Message.
func (Heartbeat) Type() MsgType { return TypeHeartbeat }

func (m Hello) encodeTo(buf []byte) []byte {
	buf = appendU32(buf, uint32(m.ClientID))
	buf = appendU32(buf, uint32(m.SimID))
	buf = appendU32(buf, uint32(m.Steps))
	buf = appendU32(buf, uint32(m.Restart))
	return buf
}

func (m TimeStep) encodeTo(buf []byte) []byte {
	buf = appendU32(buf, uint32(m.SimID))
	buf = appendU32(buf, uint32(m.Step))
	buf = appendF32s(buf, m.Input)
	buf = appendF32s(buf, m.Field)
	return buf
}

func (m Goodbye) encodeTo(buf []byte) []byte {
	buf = appendU32(buf, uint32(m.ClientID))
	buf = appendU32(buf, uint32(m.SimID))
	return buf
}

func (m Heartbeat) encodeTo(buf []byte) []byte {
	return appendU32(buf, uint32(m.ClientID))
}

// AppendEncode frames msg onto dst in a single pass — the frame header is
// reserved up front and patched once the payload length is known, so no
// intermediate payload buffer exists. It returns the extended slice.
// Appending to a recycled buffer makes steady-state encoding
// allocation-free.
func AppendEncode(dst []byte, msg Message) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(msg.Type()))
	dst = msg.encodeTo(dst)
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// Encode serializes msg into a self-contained fresh frame. Hot paths should
// prefer AppendEncode into a reused buffer.
func Encode(msg Message) []byte {
	return AppendEncode(nil, msg)
}

// encScratch recycles Write's framing buffers. A buffered channel (not a
// sync.Pool) guarantees steady-state reuse even across GC cycles.
var encScratch = make(chan []byte, 64)

// Write frames and writes msg to w in one w.Write call, reusing a pooled
// scratch buffer for the frame.
func Write(w io.Writer, msg Message) error {
	var buf []byte
	select {
	case buf = <-encScratch:
	default:
	}
	buf = AppendEncode(buf[:0], msg)
	_, err := w.Write(buf)
	select {
	case encScratch <- buf:
	default:
	}
	return err
}

// timeStepFree recycles leased TimeStep payloads between Reader.Next and
// RecycleTimeStep. The capacity bounds retained memory; a recycle into a
// full freelist simply drops the payload.
var timeStepFree = make(chan *TimeStep, 1024)

// LeaseTimeStep returns a TimeStep from the freelist (or a fresh one). Its
// payload slices retain the capacity of their previous use.
func LeaseTimeStep() *TimeStep {
	select {
	case ts := <-timeStepFree:
		return ts
	default:
		return &TimeStep{}
	}
}

// RecycleTimeStep returns a leased TimeStep to the freelist. The caller
// must not touch ts or its payload slices afterwards; the next Next call
// may overwrite them. nil is ignored.
func RecycleTimeStep(ts *TimeStep) {
	if ts == nil {
		return
	}
	ts.SimID, ts.Step = 0, 0
	select {
	case timeStepFree <- ts:
	default:
	}
}

// Reader decodes a framed message stream with a recycled frame-body buffer
// and leased TimeStep payloads — the zero-allocation ingestion path. It is
// not safe for concurrent use; give each connection its own Reader.
type Reader struct {
	r    io.Reader
	hdr  [4]byte
	body []byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// Next reads one framed message. TimeStep messages are returned as leased
// *TimeStep values the caller must RecycleTimeStep (see the package
// comment); all other types are returned by value. It returns io.EOF
// cleanly when the stream ends between frames.
func (rd *Reader) Next() (Message, error) {
	size, err := readHeader(rd.r, &rd.hdr)
	if err != nil {
		return nil, err
	}
	body, err := readBody(rd.r, rd.body, int(size))
	if body != nil {
		rd.body = body[:0]
	}
	if err != nil {
		return nil, err
	}
	switch MsgType(body[0]) {
	case TypeTimeStep:
		ts := LeaseTimeStep()
		if err := decodeTimeStepInto(ts, body[1:]); err != nil {
			RecycleTimeStep(ts)
			return nil, err
		}
		return ts, nil
	case TypePredictRequest:
		m := LeasePredictRequest()
		if err := decodePredictRequestInto(m, body[1:]); err != nil {
			RecyclePredictRequest(m)
			return nil, err
		}
		return m, nil
	case TypePredictResponse:
		m := LeasePredictResponse()
		if err := decodePredictResponseInto(m, body[1:]); err != nil {
			RecyclePredictResponse(m)
			return nil, err
		}
		return m, nil
	}
	return decodeBody(body)
}

// Read reads one framed message from r, allocating the frame body and all
// payload slices — the legacy path, kept as the reference implementation
// and for low-rate callers. It returns io.EOF cleanly when the stream ends
// between frames.
func Read(r io.Reader) (Message, error) {
	var lenBuf [4]byte
	size, err := readHeader(r, &lenBuf)
	if err != nil {
		return nil, err
	}
	body, err := readBody(r, nil, int(size))
	if err != nil {
		return nil, err
	}
	return decodeBody(body)
}

// readBody reads a size-byte frame body into buf's storage (grown as
// needed) and returns it at full length. When the buffer must grow, it is
// extended in capped chunks interleaved with the reads, so a corrupt
// length prefix claiming a huge frame costs at most one chunk beyond the
// bytes actually on the wire — never a gigabyte allocation up front.
func readBody(r io.Reader, buf []byte, size int) ([]byte, error) {
	const maxStep = 1 << 20
	if cap(buf) >= size {
		buf = buf[:size]
		if _, err := io.ReadFull(r, buf); err != nil {
			return buf, fmt.Errorf("protocol: truncated frame body: %w", err)
		}
		return buf, nil
	}
	buf = buf[:0]
	for len(buf) < size {
		n := min(size-len(buf), maxStep)
		off := len(buf)
		buf = append(buf, make([]byte, n)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return buf, fmt.Errorf("protocol: truncated frame body: %w", err)
		}
	}
	return buf, nil
}

// readHeader reads and validates the 4-byte length prefix.
func readHeader(r io.Reader, hdr *[4]byte) (uint32, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, fmt.Errorf("protocol: truncated frame header: %w", err)
		}
		return 0, err
	}
	size := binary.LittleEndian.Uint32(hdr[:])
	if size == 0 || size > MaxFrameSize {
		return 0, fmt.Errorf("protocol: invalid frame size %d", size)
	}
	return size, nil
}

// decodeTimeStepInto decodes a TimeStep payload into ts, reusing the
// capacity of its Input/Field slices.
func decodeTimeStepInto(ts *TimeStep, payload []byte) error {
	d := decoder{buf: payload}
	ts.SimID = int32(d.u32())
	ts.Step = int32(d.u32())
	ts.Input = d.f32sInto(ts.Input[:0])
	ts.Field = d.f32sInto(ts.Field[:0])
	return d.err
}

func decodeBody(body []byte) (Message, error) {
	typ := MsgType(body[0])
	d := decoder{buf: body[1:]}
	switch typ {
	case TypeHello:
		m := Hello{
			ClientID: int32(d.u32()),
			SimID:    int32(d.u32()),
			Steps:    int32(d.u32()),
			Restart:  int32(d.u32()),
		}
		return m, d.err
	case TypeTimeStep:
		m := TimeStep{SimID: int32(d.u32()), Step: int32(d.u32())}
		m.Input = d.f32s()
		m.Field = d.f32s()
		return m, d.err
	case TypeGoodbye:
		m := Goodbye{ClientID: int32(d.u32()), SimID: int32(d.u32())}
		return m, d.err
	case TypeHeartbeat:
		m := Heartbeat{ClientID: int32(d.u32())}
		return m, d.err
	default:
		return decodeServeBody(typ, &d)
	}
}

func errUnknownType(typ MsgType) error {
	return fmt.Errorf("protocol: unknown message type %d", typ)
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 4 {
		d.err = fmt.Errorf("protocol: short payload")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

// optU32 decodes an optional trailing u32 extension field: absent (fewer
// than 4 bytes left, including the old frame layouts that end exactly
// here) decodes as 0 without consuming anything or erroring. This is the
// wire-compatibility hook for fields added to a message after its first
// release — see PredictRequest.DeadlineMs.
func (d *decoder) optU32() uint32 {
	if d.err != nil || len(d.buf) < 4 {
		return 0
	}
	return d.u32()
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.err = fmt.Errorf("protocol: short payload")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

// maxWireString bounds string fields (problem names, checkpoint paths,
// error messages); longer prefixes indicate corruption.
const maxWireString = 1 << 16

// str decodes a length-prefixed string.
func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if n > maxWireString {
		d.err = fmt.Errorf("protocol: unreasonable string length %d", n)
		return ""
	}
	if uint64(len(d.buf)) < uint64(n) {
		d.err = fmt.Errorf("protocol: short string payload (%d bytes, %d left)", n, len(d.buf))
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

// f32s decodes a length-prefixed float vector into a fresh slice.
func (d *decoder) f32s() []float32 {
	n, ok := d.f32sHeader()
	if !ok {
		return nil
	}
	out := make([]float32, n)
	decodeF32Bulk(out, d.buf[:4*n])
	d.buf = d.buf[4*n:]
	return out
}

// f32sInto decodes a length-prefixed float vector into dst's storage,
// growing it only when capacity is insufficient.
func (d *decoder) f32sInto(dst []float32) []float32 {
	n, ok := d.f32sHeader()
	if !ok {
		return dst
	}
	if cap(dst) < n {
		dst = make([]float32, n)
	} else {
		dst = dst[:n]
	}
	decodeF32Bulk(dst, d.buf[:4*n])
	d.buf = d.buf[4*n:]
	return dst
}

// f32sHeader reads and bounds-checks the float-count prefix.
func (d *decoder) f32sHeader() (int, bool) {
	n := d.u32()
	if d.err != nil {
		return 0, false
	}
	if uint64(len(d.buf)) < uint64(n)*4 {
		d.err = fmt.Errorf("protocol: short float payload (%d floats, %d bytes left)", n, len(d.buf))
		return 0, false
	}
	return int(n), true
}

// EncodeF32s serializes vals into dst as little-endian float32 bits with
// the codec's 8-wide unrolled loop; dst must hold at least 4·len(vals)
// bytes. It is the exported byte↔float shuffle for wire layers that frame
// raw float chunks themselves (the rank-to-rank collective ring), so every
// float on the wire moves through the same vectorized loops as the client
// messages.
func EncodeF32s(dst []byte, vals []float32) {
	encodeF32Bulk(dst, vals)
}

// DecodeF32s is the decode mirror of EncodeF32s: it fills dst from
// 4·len(dst) bytes of src.
func DecodeF32s(dst []float32, src []byte) {
	decodeF32Bulk(dst, src)
}

// decodeF32Bulk byte-swaps 4·len(dst) bytes of src into dst with an 8-wide
// unrolled little-endian loop. binary.LittleEndian.Uint32 compiles to a
// single load on little-endian targets, so the unroll amortizes the slice
// bookkeeping, not the swap.
func decodeF32Bulk(dst []float32, src []byte) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		b := src[i*4 : i*4+32 : i*4+32]
		dst[i+0] = math.Float32frombits(binary.LittleEndian.Uint32(b[0:4]))
		dst[i+1] = math.Float32frombits(binary.LittleEndian.Uint32(b[4:8]))
		dst[i+2] = math.Float32frombits(binary.LittleEndian.Uint32(b[8:12]))
		dst[i+3] = math.Float32frombits(binary.LittleEndian.Uint32(b[12:16]))
		dst[i+4] = math.Float32frombits(binary.LittleEndian.Uint32(b[16:20]))
		dst[i+5] = math.Float32frombits(binary.LittleEndian.Uint32(b[20:24]))
		dst[i+6] = math.Float32frombits(binary.LittleEndian.Uint32(b[24:28]))
		dst[i+7] = math.Float32frombits(binary.LittleEndian.Uint32(b[28:32]))
	}
	for ; i < len(dst); i++ {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[i*4 : i*4+4]))
	}
}

// encodeF32Bulk is the encode mirror of decodeF32Bulk: dst must hold
// 4·len(vals) bytes.
func encodeF32Bulk(dst []byte, vals []float32) {
	i := 0
	for ; i+8 <= len(vals); i += 8 {
		b := dst[i*4 : i*4+32 : i*4+32]
		binary.LittleEndian.PutUint32(b[0:4], math.Float32bits(vals[i+0]))
		binary.LittleEndian.PutUint32(b[4:8], math.Float32bits(vals[i+1]))
		binary.LittleEndian.PutUint32(b[8:12], math.Float32bits(vals[i+2]))
		binary.LittleEndian.PutUint32(b[12:16], math.Float32bits(vals[i+3]))
		binary.LittleEndian.PutUint32(b[16:20], math.Float32bits(vals[i+4]))
		binary.LittleEndian.PutUint32(b[20:24], math.Float32bits(vals[i+5]))
		binary.LittleEndian.PutUint32(b[24:28], math.Float32bits(vals[i+6]))
		binary.LittleEndian.PutUint32(b[28:32], math.Float32bits(vals[i+7]))
	}
	for ; i < len(vals); i++ {
		binary.LittleEndian.PutUint32(dst[i*4:i*4+4], math.Float32bits(vals[i]))
	}
}

func appendU32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

func appendU64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

func appendString(buf []byte, s string) []byte {
	buf = appendU32(buf, uint32(len(s)))
	return append(buf, s...)
}

func appendF32s(buf []byte, vals []float32) []byte {
	buf = appendU32(buf, uint32(len(vals)))
	off := len(buf)
	need := 4 * len(vals)
	if cap(buf)-off < need {
		grown := make([]byte, off, roundupCap(off+need))
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:off+need]
	encodeF32Bulk(buf[off:], vals)
	return buf
}

// roundupCap picks the next power-of-two capacity so repeated appends into
// a growing buffer settle quickly.
func roundupCap(n int) int {
	c := 64
	for c < n {
		c <<= 1
	}
	return c
}
