//go:build amd64

package protocol

// Runtime selection of the F16C binary16 conversion kernels. The Go
// toolchain does not emit VCVTPS2PH/VCVTPH2PS, so the hardware converters
// only pay off through the hand-written kernels in f16_amd64.s; they are
// enabled once at process start when CPUID reports F16C and the OS has
// enabled YMM state (OSXSAVE with XCR0 SSE+AVX bits), mirroring the tensor
// package's micro-kernel gate. The kernels implement exactly the scalar
// conversions' semantics (RNE, quieted NaNs), so swapping them in cannot
// change a training trajectory.

import (
	"encoding/binary"
	"math"
)

//go:noescape
func cpuidF16C(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbvF16C() (eax, edx uint32)

//go:noescape
func encodeF16sKern(dst []byte, vals []float32, blocks int)

//go:noescape
func decodeF16sKern(dst []float32, src []byte, blocks int)

//go:noescape
func roundF16sKern(vals []float32, blocks int)

//go:noescape
func addF16sKern(dst []float32, src []byte, blocks int)

//go:noescape
func addF32sKern(dst []float32, src []byte, blocks int)

//go:noescape
func quantizeEFKern(buf, res []float32, blocks int)

const (
	cpuidF16COSXSAVE = 1 << 27 // leaf 1 ECX
	cpuidF16CAVXBit  = 1 << 28 // leaf 1 ECX
	cpuidF16CBit     = 1 << 29 // leaf 1 ECX
	xcr0F16CAVXState = 0x6     // XMM + YMM state enabled by the OS
)

func init() {
	_, _, ecx1, _ := cpuidF16C(1, 0)
	if ecx1&cpuidF16COSXSAVE == 0 || ecx1&cpuidF16CAVXBit == 0 {
		return
	}
	if eax, _ := xgetbvF16C(); eax&xcr0F16CAVXState != xcr0F16CAVXState {
		return
	}
	addF32sBulk = addF32sHW // plain AVX is enough for the f32 accumulate
	if ecx1&cpuidF16CBit == 0 {
		return
	}
	encodeF16sBulk = encodeF16sHW
	decodeF16sBulk = decodeF16sHW
	roundF16sBulk = roundF16sHW
	addF16sBulk = addF16sHW
	quantizeEFBulk = quantizeEFHW
}

// encodeF16sHW runs whole 8-element blocks through the F16C kernel and the
// tail through the scalar conversion. EncodeF16s has already checked that
// dst covers 2·len(vals) bytes.
func encodeF16sHW(dst []byte, vals []float32) {
	blocks := len(vals) / 8
	if blocks > 0 {
		encodeF16sKern(dst, vals, blocks)
	}
	for i := blocks * 8; i < len(vals); i++ {
		binary.LittleEndian.PutUint16(dst[i*2:i*2+2], F16FromF32(vals[i]))
	}
}

// decodeF16sHW is the decode mirror of encodeF16sHW.
func decodeF16sHW(dst []float32, src []byte) {
	blocks := len(dst) / 8
	if blocks > 0 {
		decodeF16sKern(dst, src, blocks)
	}
	for i := blocks * 8; i < len(dst); i++ {
		dst[i] = F32FromF16(binary.LittleEndian.Uint16(src[i*2 : i*2+2]))
	}
}

// roundF16sHW quantizes whole 8-element blocks through the in-register
// F16C round-trip and the tail through the scalar conversion.
func roundF16sHW(vals []float32) {
	blocks := len(vals) / 8
	if blocks > 0 {
		roundF16sKern(vals, blocks)
	}
	for i := blocks * 8; i < len(vals); i++ {
		vals[i] = RoundF16(vals[i])
	}
}

// addF16sHW runs the fused decode+accumulate kernel, scalar tail after.
func addF16sHW(dst []float32, src []byte) {
	blocks := len(dst) / 8
	if blocks > 0 {
		addF16sKern(dst, src, blocks)
	}
	for i := blocks * 8; i < len(dst); i++ {
		dst[i] += F32FromF16(binary.LittleEndian.Uint16(src[i*2 : i*2+2]))
	}
}

// addF32sHW is the full-width accumulate, gated on AVX alone.
func addF32sHW(dst []float32, src []byte) {
	blocks := len(dst) / 8
	if blocks > 0 {
		addF32sKern(dst, src, blocks)
	}
	for i := blocks * 8; i < len(dst); i++ {
		dst[i] += math.Float32frombits(binary.LittleEndian.Uint32(src[i*4 : i*4+4]))
	}
}

// quantizeEFHW is the fused error-feedback pre-pass, scalar tail after.
func quantizeEFHW(buf, res []float32) {
	blocks := len(buf) / 8
	if blocks > 0 {
		quantizeEFKern(buf, res, blocks)
	}
	for i := blocks * 8; i < len(buf); i++ {
		v := buf[i] + res[i]
		q := RoundF16(v)
		buf[i] = q
		res[i] = v - q
	}
}
