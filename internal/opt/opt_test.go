package opt

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"

	"melissa/internal/nn"
	"melissa/internal/tensor"
)

// singleParam builds a one-element parameter with the given value and grad.
func singleParam(value, grad float32) []*nn.Param {
	p := &nn.Param{
		Name:  "p",
		Value: tensor.FromSlice(1, 1, []float32{value}),
		Grad:  tensor.FromSlice(1, 1, []float32{grad}),
	}
	return []*nn.Param{p}
}

func TestSGDStep(t *testing.T) {
	params := singleParam(1.0, 0.5)
	s := NewSGD(0.1, 0)
	s.Step(params)
	if got := params[0].Value.Data[0]; math.Abs(float64(got)-0.95) > 1e-6 {
		t.Fatalf("value = %v, want 0.95", got)
	}
}

func TestSGDMomentum(t *testing.T) {
	params := singleParam(0, 1)
	s := NewSGD(1, 0.9)
	s.Step(params) // v=1, w=-1
	if got := params[0].Value.Data[0]; got != -1 {
		t.Fatalf("after step 1: %v", got)
	}
	s.Step(params) // v=0.9+1=1.9, w=-2.9
	if got := params[0].Value.Data[0]; math.Abs(float64(got)+2.9) > 1e-6 {
		t.Fatalf("after step 2: %v, want -2.9", got)
	}
}

// TestAdamMatchesReference checks two Adam steps against hand-computed
// values with constant gradient g=1, lr=0.1.
func TestAdamMatchesReference(t *testing.T) {
	params := singleParam(1.0, 1.0)
	a := NewAdam(0.1)

	// Step 1: m=0.1, v=0.001; mhat=1, vhat=1 → w -= 0.1*1/(1+eps) ≈ 0.9.
	a.Step(params)
	if got := float64(params[0].Value.Data[0]); math.Abs(got-0.9) > 1e-5 {
		t.Fatalf("after step 1: %v, want ≈0.9", got)
	}

	// Step 2 (same grad): m=0.19, v=0.001999; bc1=0.19, bc2=0.001999
	// mhat=1, vhat=1 → w ≈ 0.8.
	params[0].Grad.Data[0] = 1.0
	a.Step(params)
	if got := float64(params[0].Value.Data[0]); math.Abs(got-0.8) > 1e-4 {
		t.Fatalf("after step 2: %v, want ≈0.8", got)
	}
	if a.StepCount() != 2 {
		t.Fatalf("step count %d", a.StepCount())
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = (w-3)^2 with gradient 2(w-3).
	params := singleParam(0, 0)
	a := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		w := params[0].Value.Data[0]
		params[0].Grad.Data[0] = 2 * (w - 3)
		a.Step(params)
	}
	if got := float64(params[0].Value.Data[0]); math.Abs(got-3) > 0.01 {
		t.Fatalf("converged to %v, want 3", got)
	}
}

func TestSetLR(t *testing.T) {
	a := NewAdam(1e-3)
	if a.LR() != 1e-3 {
		t.Fatal("initial LR wrong")
	}
	a.SetLR(5e-4)
	if a.LR() != 5e-4 {
		t.Fatal("SetLR failed")
	}
	s := NewSGD(0.1, 0)
	s.SetLR(0.2)
	if s.LR() != 0.2 {
		t.Fatal("SGD SetLR failed")
	}
}

func TestHalvingSchedule(t *testing.T) {
	h := Halving{Initial: 1e-3, EverySamples: 10000, Min: 2.5e-4}
	cases := []struct {
		samples int
		want    float64
	}{
		{0, 1e-3},
		{9999, 1e-3},
		{10000, 5e-4},
		{19999, 5e-4},
		{20000, 2.5e-4},
		{30000, 2.5e-4},   // floor reached
		{1000000, 2.5e-4}, // stays at floor
	}
	for _, c := range cases {
		if got := h.LR(c.samples); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("LR(%d) = %v, want %v", c.samples, got, c.want)
		}
	}
}

func TestHalvingNoFloor(t *testing.T) {
	h := Halving{Initial: 1, EverySamples: 10}
	if got := h.LR(40); got != 1.0/16 {
		t.Fatalf("LR(40) = %v, want 1/16", got)
	}
}

func TestPaperSchedule(t *testing.T) {
	h := PaperSchedule()
	if h.LR(0) != 1e-3 || h.LR(10000) != 5e-4 || h.LR(100000) != 2.5e-4 {
		t.Fatal("paper schedule wrong")
	}
}

func TestConstantSchedule(t *testing.T) {
	c := Constant(0.01)
	if c.LR(0) != 0.01 || c.LR(1e6) != 0.01 {
		t.Fatal("constant schedule wrong")
	}
}

// TestAdamCheckpointResume verifies that saving optimizer state
// mid-training and resuming produces the identical trajectory as an
// uninterrupted run — the property server checkpoints rely on (§3.1).
func TestAdamCheckpointResume(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 5))
	grads := make([]float32, 40)
	for i := range grads {
		grads[i] = float32(rng.NormFloat64())
	}

	run := func(restartAt int) float32 {
		params := singleParam(1.0, 0)
		a := NewAdam(0.05)
		for i, g := range grads {
			if restartAt > 0 && i == restartAt {
				var buf bytes.Buffer
				if err := a.SaveState(&buf); err != nil {
					t.Fatal(err)
				}
				a = NewAdam(0.05)
				if err := a.LoadState(&buf); err != nil {
					t.Fatal(err)
				}
			}
			params[0].Grad.Data[0] = g
			a.Step(params)
		}
		return params[0].Value.Data[0]
	}

	direct := run(0)
	resumed := run(20)
	if direct != resumed {
		t.Fatalf("resume diverged: %v vs %v", direct, resumed)
	}
}

func TestSGDCheckpointResume(t *testing.T) {
	params := singleParam(1, 0)
	s := NewSGD(0.1, 0.9)
	params[0].Grad.Data[0] = 1
	s.Step(params)
	var buf bytes.Buffer
	if err := s.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewSGD(0.1, 0.9)
	if err := s2.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	// Both optimizers must now produce the same next step.
	paramsA := singleParam(params[0].Value.Data[0], 1)
	paramsB := singleParam(params[0].Value.Data[0], 1)
	s.Step(paramsA)
	s2.Step(paramsB)
	if paramsA[0].Value.Data[0] != paramsB[0].Value.Data[0] {
		t.Fatalf("momentum state not restored: %v vs %v", paramsA[0].Value.Data[0], paramsB[0].Value.Data[0])
	}
}

func TestAdamLoadStateRejectsGarbage(t *testing.T) {
	a := NewAdam(0.1)
	if err := a.LoadState(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("expected error")
	}
}

// TestAdamOnNetwork trains the paper's MLP shape (tiny) on a smooth target
// and requires an order-of-magnitude loss reduction.
func TestAdamOnNetwork(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	net := nn.ArchitectureMLP(3, []int{32}, 4, 11)
	loss := nn.NewMSELoss()
	a := NewAdam(1e-2)

	x := tensor.New(64, 3)
	target := tensor.New(64, 4)
	for r := 0; r < 64; r++ {
		for c := 0; c < 3; c++ {
			x.Set(r, c, float32(rng.Float64()))
		}
		for c := 0; c < 4; c++ {
			target.Set(r, c, x.At(r, 0)*float32(c)+x.At(r, 1))
		}
	}
	initial := loss.Forward(net.Forward(x), target)
	for i := 0; i < 300; i++ {
		net.ZeroGrad()
		net.Backward(loss.Backward(net.Forward(x), target))
		a.Step(net.Params())
	}
	final := loss.Forward(net.Forward(x), target)
	if final > initial/10 {
		t.Fatalf("Adam failed to train: %v -> %v", initial, final)
	}
}
