// Package opt provides the optimizers and learning-rate schedules used to
// train deep surrogates: plain SGD, the Adam optimizer the paper uses
// (§4.1, starting learning rate 1e-3), and the halving schedule of §4.4–4.5
// (lr halved every N training samples down to a floor). Optimizer state can
// be serialized so server checkpoints resume training bit-exactly.
//
// Optimizer moments live in flat slabs mirroring nn.Network's parameter
// slab layout. The training hot path calls StepFlat with the network's
// value and gradient slabs, which applies the whole update as one fused,
// allocation-free pass; Step remains for parameter lists that are not
// slab-backed. Both produce bit-identical results.
package opt

import (
	"io"

	"melissa/internal/nn"
)

// Optimizer updates network parameters from their accumulated gradients.
// Implementations are stateful (per-parameter moments) and not safe for
// concurrent use; each data-parallel replica owns one.
type Optimizer interface {
	// Step applies one update using the current learning rate. The caller
	// is responsible for zeroing gradients afterwards.
	Step(params []*nn.Param)
	// StepFlat applies one update directly to a network's flat value and
	// gradient slabs (nn.Network.FlatParams/FlatGrads). It is the
	// allocation-free hot path and is bit-identical to Step over the
	// equivalent parameter list.
	StepFlat(values, grads []float32)
	// SetLR changes the learning rate used by subsequent steps.
	SetLR(lr float64)
	// LR reports the current learning rate.
	LR() float64
	// SaveState serializes optimizer state (moments, step counter).
	SaveState(w io.Writer) error
	// LoadState restores state written by SaveState. The parameter layout
	// must match.
	LoadState(r io.Reader) error
}

// Schedule maps training progress, measured in samples seen, to a learning
// rate. Measuring in samples rather than batches keeps multi-GPU runs
// comparable: with n GPUs each synchronized step consumes n×batch samples,
// so the paper scales the halving frequency accordingly (§4.5).
type Schedule interface {
	LR(samplesSeen int) float64
}

// Constant is a schedule that always returns the same learning rate.
type Constant float64

// LR implements Schedule.
func (c Constant) LR(int) float64 { return float64(c) }

// Halving is the paper's schedule: the learning rate starts at Initial and
// is halved every EverySamples training samples, never dropping below Min.
// With Min = 0 there is no floor.
type Halving struct {
	Initial      float64
	EverySamples int
	Min          float64
}

// LR implements Schedule.
func (h Halving) LR(samplesSeen int) float64 {
	lr := h.Initial
	if h.EverySamples > 0 {
		for n := samplesSeen / h.EverySamples; n > 0; n-- {
			lr /= 2
			if h.Min > 0 && lr <= h.Min {
				return h.Min
			}
		}
	}
	if h.Min > 0 && lr < h.Min {
		return h.Min
	}
	return lr
}

// PaperSchedule returns the schedule used in the paper's experiments:
// initial 1e-3, halved every 10,000 samples, floor 2.5e-4 (§4.5).
func PaperSchedule() Halving {
	return Halving{Initial: 1e-3, EverySamples: 10000, Min: 2.5e-4}
}
