package opt

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"melissa/internal/nn"
	"melissa/internal/tensor"
)

// Adam implements Kingma & Ba's Adam optimizer, the one the paper trains
// with (§4.1). Default hyperparameters match PyTorch: β1=0.9, β2=0.999,
// ε=1e-8. The first and second moments are stored as two flat slabs
// matching the network's parameter slab layout, so StepFlat applies the
// whole update as one fused vectorized pass and checkpoints serialize the
// moments as bulk writes.
type Adam struct {
	lr    float64
	beta1 float64
	beta2 float64
	eps   float64
	step  uint64
	m, v  []float32 // flat moment slabs, Params() order
}

// NewAdam returns an Adam optimizer with PyTorch-default betas and epsilon.
func NewAdam(lr float64) *Adam {
	return &Adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
}

// NewAdamWithBetas returns an Adam optimizer with explicit hyperparameters.
func NewAdamWithBetas(lr, beta1, beta2, eps float64) *Adam {
	return &Adam{lr: lr, beta1: beta1, beta2: beta2, eps: eps}
}

// alpha advances the step counter and returns the bias-corrected step size
// along with the float32 hyperparameters. Folding the corrections into the
// learning rate is the standard trick from the Adam paper §2.
func (a *Adam) alpha() (alpha, b1, b2, eps float32) {
	a.step++
	bc1 := 1 - math.Pow(a.beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.beta2, float64(a.step))
	return float32(a.lr * math.Sqrt(bc2) / bc1), float32(a.beta1), float32(a.beta2), float32(a.eps)
}

// Step implements Optimizer, walking the parameter list against the flat
// moment slabs. StepFlat is the fused equivalent for slab-backed networks;
// both orderings produce bit-identical results.
func (a *Adam) Step(params []*nn.Param) {
	a.ensureState(totalSize(params))
	alpha, b1, b2, eps := a.alpha()
	off := 0
	for _, p := range params {
		sz := p.Size()
		m, v := a.m[off:off+sz], a.v[off:off+sz]
		for j, g := range p.Grad.Data {
			m[j] = b1*m[j] + (1-b1)*g
			v[j] = b2*v[j] + (1-b2)*g*g
			p.Value.Data[j] -= alpha * m[j] / (float32(math.Sqrt(float64(v[j]))) + eps)
		}
		off += sz
	}
}

// StepFlat implements Optimizer: one fused pass over the network's flat
// value and gradient slabs (nn.Network.FlatParams/FlatGrads), parallelized
// over slab chunks. This is the training hot path; it performs no
// allocations in steady state.
func (a *Adam) StepFlat(values, grads []float32) {
	if len(values) != len(grads) {
		panic(fmt.Sprintf("opt: StepFlat slab lengths %d vs %d", len(values), len(grads)))
	}
	a.ensureState(len(values))
	alpha, b1, b2, eps := a.alpha()
	tensor.AdamStep(values, grads, a.m, a.v, alpha, b1, b2, eps)
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.lr }

// StepCount reports the number of optimizer steps taken, used by tests and
// checkpoint assertions.
func (a *Adam) StepCount() uint64 { return a.step }

func (a *Adam) ensureState(total int) {
	if len(a.m) == total {
		return
	}
	a.m = make([]float32, total)
	a.v = make([]float32, total)
}

// totalSize sums the scalar element counts of params.
func totalSize(params []*nn.Param) int {
	total := 0
	for _, p := range params {
		total += p.Size()
	}
	return total
}

// SaveState implements Optimizer. Layout: step u64 | segments u32 | per
// segment: len u32, m f32s, v f32s. The flat slabs serialize as a single
// segment (two bulk writes); LoadState concatenates any number of segments,
// so checkpoints written by the historical per-parameter layout still load.
func (a *Adam) SaveState(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, a.step); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(1)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(a.m))); err != nil {
		return err
	}
	if err := writeF32s(w, a.m); err != nil {
		return err
	}
	return writeF32s(w, a.v)
}

// LoadState implements Optimizer.
func (a *Adam) LoadState(r io.Reader) error {
	if err := binary.Read(r, binary.LittleEndian, &a.step); err != nil {
		return fmt.Errorf("opt: reading adam step: %w", err)
	}
	var segments uint32
	if err := binary.Read(r, binary.LittleEndian, &segments); err != nil {
		return err
	}
	a.m = a.m[:0]
	a.v = a.v[:0]
	for i := uint32(0); i < segments; i++ {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return err
		}
		if n > 1<<30 {
			return fmt.Errorf("opt: unreasonable adam segment length %d", n)
		}
		off := len(a.m)
		a.m = append(a.m, make([]float32, n)...)
		a.v = append(a.v, make([]float32, n)...)
		if err := readF32s(r, a.m[off:]); err != nil {
			return err
		}
		if err := readF32s(r, a.v[off:]); err != nil {
			return err
		}
	}
	return nil
}

func writeF32s(w io.Writer, data []float32) error {
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readF32s(r io.Reader, dst []float32) error {
	buf := make([]byte, 4*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}
