package opt

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"melissa/internal/nn"
)

// Adam implements Kingma & Ba's Adam optimizer, the one the paper trains
// with (§4.1). Default hyperparameters match PyTorch: β1=0.9, β2=0.999,
// ε=1e-8.
type Adam struct {
	lr    float64
	beta1 float64
	beta2 float64
	eps   float64
	step  uint64
	m, v  [][]float32
}

// NewAdam returns an Adam optimizer with PyTorch-default betas and epsilon.
func NewAdam(lr float64) *Adam {
	return &Adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
}

// NewAdamWithBetas returns an Adam optimizer with explicit hyperparameters.
func NewAdamWithBetas(lr, beta1, beta2, eps float64) *Adam {
	return &Adam{lr: lr, beta1: beta1, beta2: beta2, eps: eps}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*nn.Param) {
	a.ensureState(params)
	a.step++
	// Bias-corrected step size folds the corrections into the learning
	// rate, the standard trick from the Adam paper §2.
	bc1 := 1 - math.Pow(a.beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.beta2, float64(a.step))
	alpha := float32(a.lr * math.Sqrt(bc2) / bc1)
	b1, b2 := float32(a.beta1), float32(a.beta2)
	eps := float32(a.eps)
	for i, p := range params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad.Data {
			m[j] = b1*m[j] + (1-b1)*g
			v[j] = b2*v[j] + (1-b2)*g*g
			p.Value.Data[j] -= alpha * m[j] / (float32(math.Sqrt(float64(v[j]))) + eps)
		}
	}
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.lr }

// StepCount reports the number of optimizer steps taken, used by tests and
// checkpoint assertions.
func (a *Adam) StepCount() uint64 { return a.step }

func (a *Adam) ensureState(params []*nn.Param) {
	if len(a.m) == len(params) {
		return
	}
	a.m = make([][]float32, len(params))
	a.v = make([][]float32, len(params))
	for i, p := range params {
		a.m[i] = make([]float32, p.Size())
		a.v[i] = make([]float32, p.Size())
	}
}

// SaveState implements Optimizer. Layout: step u64 | nParams u32 | per
// param: len u32, m f32s, v f32s.
func (a *Adam) SaveState(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, a.step); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(a.m))); err != nil {
		return err
	}
	for i := range a.m {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(a.m[i]))); err != nil {
			return err
		}
		if err := writeF32s(w, a.m[i]); err != nil {
			return err
		}
		if err := writeF32s(w, a.v[i]); err != nil {
			return err
		}
	}
	return nil
}

// LoadState implements Optimizer.
func (a *Adam) LoadState(r io.Reader) error {
	if err := binary.Read(r, binary.LittleEndian, &a.step); err != nil {
		return fmt.Errorf("opt: reading adam step: %w", err)
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	a.m = make([][]float32, n)
	a.v = make([][]float32, n)
	for i := range a.m {
		var m uint32
		if err := binary.Read(r, binary.LittleEndian, &m); err != nil {
			return err
		}
		a.m[i] = make([]float32, m)
		a.v[i] = make([]float32, m)
		if err := readF32s(r, a.m[i]); err != nil {
			return err
		}
		if err := readF32s(r, a.v[i]); err != nil {
			return err
		}
	}
	return nil
}

func writeF32s(w io.Writer, data []float32) error {
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readF32s(r io.Reader, dst []float32) error {
	buf := make([]byte, 4*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}
