package opt

import (
	"encoding/binary"
	"io"

	"melissa/internal/nn"
	"melissa/internal/tensor"
)

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	lr       float64
	momentum float64
	velocity [][]float32 // lazily sized to the parameter layout
}

// NewSGD returns an SGD optimizer with the given learning rate and
// momentum coefficient (0 disables momentum).
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{lr: lr, momentum: momentum}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*nn.Param) {
	if s.momentum == 0 {
		for _, p := range params {
			tensor.Axpy(float32(-s.lr), p.Grad.Data, p.Value.Data)
		}
		return
	}
	s.ensureState(params)
	mu := float32(s.momentum)
	for i, p := range params {
		v := s.velocity[i]
		for j, g := range p.Grad.Data {
			v[j] = mu*v[j] + g
			p.Value.Data[j] -= float32(s.lr) * v[j]
		}
	}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }

func (s *SGD) ensureState(params []*nn.Param) {
	if len(s.velocity) == len(params) {
		return
	}
	s.velocity = make([][]float32, len(params))
	for i, p := range params {
		s.velocity[i] = make([]float32, p.Size())
	}
}

// SaveState implements Optimizer.
func (s *SGD) SaveState(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s.velocity))); err != nil {
		return err
	}
	for _, v := range s.velocity {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(v))); err != nil {
			return err
		}
		if err := writeF32s(w, v); err != nil {
			return err
		}
	}
	return nil
}

// LoadState implements Optimizer.
func (s *SGD) LoadState(r io.Reader) error {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	s.velocity = make([][]float32, n)
	for i := range s.velocity {
		var m uint32
		if err := binary.Read(r, binary.LittleEndian, &m); err != nil {
			return err
		}
		s.velocity[i] = make([]float32, m)
		if err := readF32s(r, s.velocity[i]); err != nil {
			return err
		}
	}
	return nil
}
