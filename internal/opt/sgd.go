package opt

import (
	"encoding/binary"
	"fmt"
	"io"

	"melissa/internal/nn"
	"melissa/internal/tensor"
)

// SGD is stochastic gradient descent with optional momentum. Like Adam, the
// velocity state is a single flat slab matching the network's parameter
// slab layout.
type SGD struct {
	lr       float64
	momentum float64
	velocity []float32 // flat slab, lazily sized to the parameter layout
}

// NewSGD returns an SGD optimizer with the given learning rate and
// momentum coefficient (0 disables momentum).
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{lr: lr, momentum: momentum}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*nn.Param) {
	if s.momentum == 0 {
		for _, p := range params {
			tensor.Axpy(float32(-s.lr), p.Grad.Data, p.Value.Data)
		}
		return
	}
	s.ensureState(totalSize(params))
	mu := float32(s.momentum)
	off := 0
	for _, p := range params {
		sz := p.Size()
		v := s.velocity[off : off+sz]
		for j, g := range p.Grad.Data {
			v[j] = mu*v[j] + g
			p.Value.Data[j] -= float32(s.lr) * v[j]
		}
		off += sz
	}
}

// StepFlat implements Optimizer: one pass over the flat value and gradient
// slabs with no steady-state allocations.
func (s *SGD) StepFlat(values, grads []float32) {
	if len(values) != len(grads) {
		panic(fmt.Sprintf("opt: StepFlat slab lengths %d vs %d", len(values), len(grads)))
	}
	if s.momentum == 0 {
		tensor.Axpy(float32(-s.lr), grads, values)
		return
	}
	s.ensureState(len(values))
	mu, lr := float32(s.momentum), float32(s.lr)
	v := s.velocity
	for j, g := range grads {
		v[j] = mu*v[j] + g
		values[j] -= lr * v[j]
	}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }

func (s *SGD) ensureState(total int) {
	if len(s.velocity) == total {
		return
	}
	s.velocity = make([]float32, total)
}

// SaveState implements Optimizer. Layout mirrors Adam's: segments u32 | per
// segment: len u32, velocity f32s — written as one bulk segment.
func (s *SGD) SaveState(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(1)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s.velocity))); err != nil {
		return err
	}
	return writeF32s(w, s.velocity)
}

// LoadState implements Optimizer, concatenating any number of segments so
// per-parameter checkpoints from the historical layout still load.
func (s *SGD) LoadState(r io.Reader) error {
	var segments uint32
	if err := binary.Read(r, binary.LittleEndian, &segments); err != nil {
		return err
	}
	s.velocity = s.velocity[:0]
	for i := uint32(0); i < segments; i++ {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return err
		}
		if n > 1<<30 {
			return fmt.Errorf("opt: unreasonable sgd segment length %d", n)
		}
		off := len(s.velocity)
		s.velocity = append(s.velocity, make([]float32, n)...)
		if err := readF32s(r, s.velocity[off:]); err != nil {
			return err
		}
	}
	return nil
}
