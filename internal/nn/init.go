package nn

import (
	"math"
	"math/rand/v2"

	"melissa/internal/tensor"
)

// Initializer draws initial weights from a seeded PCG stream so that a
// given seed always produces byte-identical networks — one of the paper's
// reproducibility requirements (§3.1).
type Initializer struct {
	rng *rand.Rand
}

// NewInitializer creates an Initializer seeded with seed.
func NewInitializer(seed uint64) *Initializer {
	return &Initializer{rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// XavierUniform fills m with samples from U(−a, a) where
// a = sqrt(6/(fanIn+fanOut)), the Glorot initialization PyTorch applies to
// linear layers driving ReLU stacks of this depth.
func (in *Initializer) XavierUniform(m *tensor.Matrix, fanIn, fanOut int) {
	a := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = float32((in.rng.Float64()*2 - 1) * a)
	}
}

// HeNormal fills m with N(0, sqrt(2/fanIn)) samples, an alternative for
// deeper ReLU networks.
func (in *Initializer) HeNormal(m *tensor.Matrix, fanIn int) {
	std := math.Sqrt(2 / float64(fanIn))
	for i := range m.Data {
		m.Data[i] = float32(in.rng.NormFloat64() * std)
	}
}
