package nn

import (
	"fmt"

	"melissa/internal/tensor"
)

// Dense is a fully connected layer computing y = x·W + b for a batch x of
// shape [batch, in]. W has shape [in, out] and b broadcasts across the
// batch.
type Dense struct {
	name string
	w, b *Param

	lastX *tensor.Matrix // input recorded by Forward for the weight gradient
	out   scratch        // output activations, cached per batch shape
	dx    scratch        // input gradients, cached per batch shape
}

// NewDense creates a Dense layer with Xavier-uniform weights drawn from
// init and zero biases.
func NewDense(name string, in, out int, init *Initializer) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid Dense dims %dx%d", in, out))
	}
	w := tensor.New(in, out)
	init.XavierUniform(w, in, out)
	return &Dense{
		name: name,
		w:    &Param{Name: name + ".weight", Value: w, Grad: tensor.New(in, out)},
		b:    &Param{Name: name + ".bias", Value: tensor.New(1, out), Grad: tensor.New(1, out)},
	}
}

// In returns the input width of the layer.
func (d *Dense) In() int { return d.w.Value.Rows }

// Out returns the output width of the layer.
func (d *Dense) Out() int { return d.w.Value.Cols }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != d.In() {
		panic(fmt.Sprintf("nn: %s forward got %d features, want %d", d.name, x.Cols, d.In()))
	}
	d.lastX = x
	out := d.out.get(x.Rows, d.Out())
	tensor.MatMul(out, x, d.w.Value)
	out.AddRowVector(d.b.Value.Data)
	return out
}

// Backward implements Layer: dW += xᵀ·dy, db += Σ_batch dy, dx = dy·Wᵀ.
func (d *Dense) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if d.lastX == nil {
		panic("nn: Dense.Backward called before Forward")
	}
	tensor.MatMulATBAdd(d.w.Grad, d.lastX, dy)
	dy.SumRowsInto(d.b.Grad.Data)
	dx := d.dx.get(dy.Rows, d.In())
	tensor.MatMulABT(dx, dy, d.w.Value)
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// Clone implements Layer.
func (d *Dense) Clone() Layer {
	return &Dense{
		name: d.name,
		w:    &Param{Name: d.w.Name, Value: d.w.Value.Clone(), Grad: tensor.New(d.In(), d.Out())},
		b:    &Param{Name: d.b.Name, Value: d.b.Value.Clone(), Grad: tensor.New(1, d.Out())},
	}
}
