package nn

import (
	"fmt"

	"melissa/internal/tensor"
)

// Dense is a fully connected layer computing y = act(x·W + b) for a batch x
// of shape [batch, in]. W has shape [in, out], b broadcasts across the
// batch, and act is an optional fused activation: forward runs as a single
// blocked GEMM whose epilogue applies bias and activation per cache-hot
// output tile, and backward folds dZ = dY ⊙ act′ and the bias gradient into
// one elementwise sweep before the two gradient GEMMs.
type Dense struct {
	name string
	w, b *Param
	act  Activation

	lastX *tensor.Matrix // input recorded by Forward for the weight gradient
	lastY *tensor.Matrix // output recorded by Forward for the fused act′
	out   scratch        // output activations, cached per batch shape
	dx    scratch        // input gradients, cached per batch shape
	dz    scratch        // pre-activation gradients (fused act only)
}

// NewDense creates a linear Dense layer (no activation) with Xavier-uniform
// weights drawn from init and zero biases.
func NewDense(name string, in, out int, init *Initializer) *Dense {
	return NewDenseAct(name, in, out, ActNone, init)
}

// NewDenseAct creates a Dense layer with a fused activation epilogue.
func NewDenseAct(name string, in, out int, act Activation, init *Initializer) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid Dense dims %dx%d", in, out))
	}
	w := tensor.New(in, out)
	init.XavierUniform(w, in, out)
	return &Dense{
		name: name,
		w:    &Param{Name: name + ".weight", Value: w, Grad: tensor.New(in, out)},
		b:    &Param{Name: name + ".bias", Value: tensor.New(1, out), Grad: tensor.New(1, out)},
		act:  act,
	}
}

// In returns the input width of the layer.
func (d *Dense) In() int { return d.w.Value.Rows }

// Out returns the output width of the layer.
func (d *Dense) Out() int { return d.w.Value.Cols }

// Activation returns the fused activation applied by Forward.
func (d *Dense) Activation() Activation { return d.act }

// Forward implements Layer: one GEMM with the bias (and activation, if any)
// fused into the epilogue.
func (d *Dense) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != d.In() {
		panic(fmt.Sprintf("nn: %s forward got %d features, want %d", d.name, x.Cols, d.In()))
	}
	d.lastX = x
	out := d.out.get(x.Rows, d.Out())
	switch d.act {
	case ActReLU:
		tensor.MatMulBiasReLU(out, x, d.w.Value, d.b.Value.Data)
	case ActTanh:
		tensor.MatMulBiasTanh(out, x, d.w.Value, d.b.Value.Data)
	default:
		tensor.MatMulBias(out, x, d.w.Value, d.b.Value.Data)
	}
	d.lastY = out
	return out
}

// Backward implements Layer: dZ = dY ⊙ act′ fused with db += Σ_batch dZ,
// then dW += xᵀ·dZ and dx = dZ·Wᵀ.
func (d *Dense) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if d.lastX == nil {
		panic("nn: Dense.Backward called before Forward")
	}
	dz := dy
	if d.act != ActNone {
		dz = d.dz.get(dy.Rows, dy.Cols)
		actGradBiasSum(d.act, dz, dy, d.lastY, d.b.Grad.Data)
	} else {
		dy.SumRowsInto(d.b.Grad.Data)
	}
	tensor.MatMulATBAdd(d.w.Grad, d.lastX, dz)
	dx := d.dx.get(dy.Rows, d.In())
	tensor.MatMulABT(dx, dz, d.w.Value)
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// CloneShared returns an inference-only copy aliasing this layer's weight
// and bias parameters (no copy) with private forward/backward scratch. See
// Network.CloneShared for the safety contract.
func (d *Dense) CloneShared() Layer {
	return &Dense{name: d.name, w: d.w, b: d.b, act: d.act}
}

// Clone implements Layer.
func (d *Dense) Clone() Layer {
	return &Dense{
		name: d.name,
		w:    &Param{Name: d.w.Name, Value: d.w.Value.Clone(), Grad: tensor.New(d.In(), d.Out())},
		b:    &Param{Name: d.b.Name, Value: d.b.Value.Clone(), Grad: tensor.New(1, d.Out())},
		act:  d.act,
	}
}
