// Package nn implements the neural-network stack used to train deep
// surrogates: dense layers with manual backpropagation, activations, the
// mean-squared-error loss, seeded initialization, and binary serialization
// for checkpoints. The paper's surrogate (§4.1) is a multilayer perceptron
// taking the simulation parameters plus the requested time step and
// producing the full temperature field; ArchitectureMLP builds exactly that
// shape.
//
// # Flat parameter slabs
//
// Every Network fuses its parameters into two contiguous float32 slabs —
// one for values, one for gradients — and each Param's matrices become
// zero-copy views into them (in Params() order). FlatParams and FlatGrads
// expose the slabs, which is what makes the training hot path
// allocation-free: the ddp layer all-reduces the gradient slab directly
// with no gather/scatter staging, optimizers update the value slab in one
// fused vectorized pass, ZeroGrad is a single memclr, and checkpoints
// serialize the value slab as one bulk write.
package nn

import (
	"fmt"

	"melissa/internal/tensor"
)

// Param is one learnable parameter tensor together with its gradient
// accumulator. Optimizers walk Params slices; the distributed data-parallel
// layer all-reduces the Grad buffers between replicas. Inside a Network both
// matrices are views into the network's flat slabs.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// Size returns the number of scalar elements in the parameter.
func (p *Param) Size() int { return len(p.Value.Data) }

// Layer is a differentiable module. Forward must record whatever it needs
// for the subsequent Backward; Backward accumulates into parameter
// gradients and returns the gradient with respect to its input. Layers are
// stateful and not safe for concurrent use — each data-parallel replica
// owns its own copy (see Clone).
type Layer interface {
	// Forward computes the layer output for a batch (rows = samples).
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward propagates the loss gradient dy and returns dx. It must be
	// called exactly once per Forward.
	Backward(dy *tensor.Matrix) *tensor.Matrix
	// Params returns the learnable parameters, empty for stateless layers.
	Params() []*Param
	// Clone returns a deep copy with identical weights and fresh gradients.
	Clone() Layer
}

// Network is a sequential stack of layers whose parameters and gradients
// are backed by two contiguous slabs (see the package comment).
type Network struct {
	Layers []Layer

	params      []*Param  // cached stable order, set by fuse
	flatValues  []float32 // contiguous backing of every Param.Value
	flatGrads   []float32 // contiguous backing of every Param.Grad
	layerRanges [][2]int  // per-layer [lo,hi) slab ranges, set by fuse
}

// NewNetwork assembles a sequential network from layers and fuses the
// parameter storage into flat slabs.
func NewNetwork(layers ...Layer) *Network {
	n := &Network{Layers: layers}
	n.fuse()
	return n
}

// fuse repacks every parameter into the two contiguous slabs, preserving
// current values and gradients, and re-points the Param matrices at slab
// views. Layers keep their *tensor.Matrix pointers, so the swap is
// invisible to forward/backward code.
func (n *Network) fuse() {
	n.params = n.params[:0]
	n.layerRanges = make([][2]int, len(n.Layers))
	total := 0
	for i, l := range n.Layers {
		lo := total
		for _, p := range l.Params() {
			n.params = append(n.params, p)
			total += p.Size()
		}
		n.layerRanges[i] = [2]int{lo, total}
	}
	n.flatValues = make([]float32, total)
	n.flatGrads = make([]float32, total)
	off := 0
	for _, p := range n.params {
		sz := p.Size()
		copy(n.flatValues[off:off+sz], p.Value.Data)
		copy(n.flatGrads[off:off+sz], p.Grad.Data)
		p.Value.Data = n.flatValues[off : off+sz : off+sz]
		p.Grad.Data = n.flatGrads[off : off+sz : off+sz]
		off += sz
	}
}

// FlatParams returns the contiguous slab backing every parameter value, in
// Params() order. Mutating it mutates the network weights.
func (n *Network) FlatParams() []float32 { return n.flatValues }

// FlatGrads returns the contiguous slab backing every parameter gradient,
// in Params() order. The ddp layer all-reduces it directly.
func (n *Network) FlatGrads() []float32 { return n.flatGrads }

// Forward runs the batch x through every layer and returns the output.
func (n *Network) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates dy through the network in reverse, accumulating
// parameter gradients, and returns the gradient w.r.t. the network input.
func (n *Network) Backward(dy *tensor.Matrix) *tensor.Matrix {
	return n.BackwardWithHook(dy, nil)
}

// BackwardWithHook is Backward with a per-layer completion hook: hook(i)
// runs immediately after layer i's Backward, at which point that layer's
// parameter gradients (slab range LayerParamRange(i)) are final for this
// batch — no later Backward call touches them. The trainer uses it to
// launch each gradient bucket's all-reduce while earlier layers are still
// back-propagating. A nil hook makes it plain Backward.
func (n *Network) BackwardWithHook(dy *tensor.Matrix, hook func(layer int)) *tensor.Matrix {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dy = n.Layers[i].Backward(dy)
		if hook != nil {
			hook(i)
		}
	}
	return dy
}

// LayerParamRange returns the slab range [lo, hi) backing layer i's
// parameters in FlatParams/FlatGrads order; lo == hi for parameterless
// layers. Only valid on slab-fused networks (built with NewNetwork).
func (n *Network) LayerParamRange(i int) (lo, hi int) {
	r := n.layerRanges[i]
	return r[0], r[1]
}

// GradBucket is one contiguous gradient-slab range owned by a single
// layer, in the order backward finalizes them.
type GradBucket struct {
	Layer  int // index into Layers
	Lo, Hi int // slab range [Lo, Hi)
}

// GradBuckets returns the non-empty per-layer slab ranges in reverse layer
// order — the order Backward finalizes their gradients, and therefore the
// order bucketed-overlap synchronization must launch their collectives.
// Returns nil for networks built without NewNetwork.
func (n *Network) GradBuckets() []GradBucket {
	if n.layerRanges == nil {
		return nil
	}
	buckets := make([]GradBucket, 0, len(n.layerRanges))
	for i := len(n.layerRanges) - 1; i >= 0; i-- {
		if r := n.layerRanges[i]; r[1] > r[0] {
			buckets = append(buckets, GradBucket{Layer: i, Lo: r[0], Hi: r[1]})
		}
	}
	return buckets
}

// Params returns all learnable parameters in a stable order.
func (n *Network) Params() []*Param {
	if n.params == nil && len(n.Layers) > 0 {
		// Network built without NewNetwork; fall back to a dynamic walk.
		var ps []*Param
		for _, l := range n.Layers {
			ps = append(ps, l.Params()...)
		}
		return ps
	}
	return n.params
}

// ZeroGrad clears every parameter gradient — a single memclr of the
// gradient slab. Call before each batch.
func (n *Network) ZeroGrad() {
	if n.flatGrads != nil {
		tensor.Zero(n.flatGrads)
		return
	}
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// NumParams returns the total number of scalar learnable parameters.
func (n *Network) NumParams() int {
	if n.flatValues != nil {
		return len(n.flatValues)
	}
	total := 0
	for _, p := range n.Params() {
		total += p.Size()
	}
	return total
}

// Clone deep-copies the network (weights copied, gradients zeroed) into its
// own fresh slabs. Data-parallel replicas are created this way so that all
// ranks start from byte-identical weights, mirroring how PyTorch DDP
// broadcasts rank-0 weights at startup.
func (n *Network) Clone() *Network {
	layers := make([]Layer, len(n.Layers))
	for i, l := range n.Layers {
		layers[i] = l.Clone()
	}
	return NewNetwork(layers...)
}

// CloneShared returns an inference-only copy that shares this network's
// parameter storage — no weights are copied — while owning private
// activation scratch, so many replicas can run Forward concurrently against
// one weight slab. The clone is not slab-fused (FlatParams returns nil) and
// must never be trained: Backward would accumulate into the shared gradient
// buffers, and mutating either network's weights while the other runs
// Forward is a data race. Layers that cannot share storage are deep-copied.
func (n *Network) CloneShared() *Network {
	layers := make([]Layer, len(n.Layers))
	for i, l := range n.Layers {
		if sc, ok := l.(interface{ CloneShared() Layer }); ok {
			layers[i] = sc.CloneShared()
		} else {
			layers[i] = l.Clone()
		}
	}
	// No fuse(): repacking would re-point the shared Params at fresh slabs
	// and break aliasing with (and race against readers of) the original.
	return &Network{Layers: layers}
}

// CopyWeightsFrom overwrites this network's parameter values with src's.
// Shapes must match exactly. When both networks are slab-fused the copy is
// one bulk memmove.
func (n *Network) CopyWeightsFrom(src *Network) error {
	dst, s := n.Params(), src.Params()
	if len(dst) != len(s) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(dst), len(s))
	}
	for i := range dst {
		if dst[i].Size() != s[i].Size() {
			return fmt.Errorf("nn: parameter %q size mismatch %d vs %d", dst[i].Name, dst[i].Size(), s[i].Size())
		}
	}
	if n.flatValues != nil && src.flatValues != nil && len(n.flatValues) == len(src.flatValues) {
		copy(n.flatValues, src.flatValues)
		return nil
	}
	for i := range dst {
		copy(dst[i].Value.Data, s[i].Value.Data)
	}
	return nil
}

// ArchitectureMLP builds the paper's direct surrogate architecture: an
// input layer of inputDim neurons (the 5 temperature parameters plus the
// time step), hidden ReLU layers, and a linear output producing the
// flattened temperature field. Each hidden layer is a single fused
// Dense+ReLU (activation applied in the GEMM epilogue), so the network has
// one layer per weight matrix; parameter names, shapes and order are
// unchanged from the unfused structure, and existing weight checkpoints
// load as before. Weights are Xavier-initialized from the seeded rng stream
// so runs are reproducible (§3.1: "all the stochastic components … are
// seeded").
func ArchitectureMLP(inputDim int, hidden []int, outputDim int, seed uint64) *Network {
	init := NewInitializer(seed)
	var layers []Layer
	prev := inputDim
	for i, h := range hidden {
		layers = append(layers, NewDenseAct(fmt.Sprintf("hidden%d", i), prev, h, ActReLU, init))
		prev = h
	}
	layers = append(layers, NewDense("output", prev, outputDim, init))
	return NewNetwork(layers...)
}
