// Package nn implements the neural-network stack used to train deep
// surrogates: dense layers with manual backpropagation, activations, the
// mean-squared-error loss, seeded initialization, and binary serialization
// for checkpoints. The paper's surrogate (§4.1) is a multilayer perceptron
// taking the simulation parameters plus the requested time step and
// producing the full temperature field; ArchitectureMLP builds exactly that
// shape.
package nn

import (
	"fmt"

	"melissa/internal/tensor"
)

// Param is one learnable parameter tensor together with its gradient
// accumulator. Optimizers walk Params slices; the distributed data-parallel
// layer all-reduces the Grad buffers between replicas.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// Size returns the number of scalar elements in the parameter.
func (p *Param) Size() int { return len(p.Value.Data) }

// Layer is a differentiable module. Forward must record whatever it needs
// for the subsequent Backward; Backward accumulates into parameter
// gradients and returns the gradient with respect to its input. Layers are
// stateful and not safe for concurrent use — each data-parallel replica
// owns its own copy (see Clone).
type Layer interface {
	// Forward computes the layer output for a batch (rows = samples).
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward propagates the loss gradient dy and returns dx. It must be
	// called exactly once per Forward.
	Backward(dy *tensor.Matrix) *tensor.Matrix
	// Params returns the learnable parameters, empty for stateless layers.
	Params() []*Param
	// Clone returns a deep copy with identical weights and fresh gradients.
	Clone() Layer
}

// Network is a sequential stack of layers.
type Network struct {
	Layers []Layer
}

// NewNetwork assembles a sequential network from layers.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// Forward runs the batch x through every layer and returns the output.
func (n *Network) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates dy through the network in reverse, accumulating
// parameter gradients, and returns the gradient w.r.t. the network input.
func (n *Network) Backward(dy *tensor.Matrix) *tensor.Matrix {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dy = n.Layers[i].Backward(dy)
	}
	return dy
}

// Params returns all learnable parameters in a stable order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every parameter gradient. Call before each batch.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// NumParams returns the total number of scalar learnable parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Size()
	}
	return total
}

// Clone deep-copies the network (weights copied, gradients zeroed).
// Data-parallel replicas are created this way so that all ranks start from
// byte-identical weights, mirroring how PyTorch DDP broadcasts rank-0
// weights at startup.
func (n *Network) Clone() *Network {
	out := &Network{Layers: make([]Layer, len(n.Layers))}
	for i, l := range n.Layers {
		out.Layers[i] = l.Clone()
	}
	return out
}

// CopyWeightsFrom overwrites this network's parameter values with src's.
// Shapes must match exactly.
func (n *Network) CopyWeightsFrom(src *Network) error {
	dst, s := n.Params(), src.Params()
	if len(dst) != len(s) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(dst), len(s))
	}
	for i := range dst {
		if dst[i].Size() != s[i].Size() {
			return fmt.Errorf("nn: parameter %q size mismatch %d vs %d", dst[i].Name, dst[i].Size(), s[i].Size())
		}
		copy(dst[i].Value.Data, s[i].Value.Data)
	}
	return nil
}

// ArchitectureMLP builds the paper's direct surrogate architecture: an
// input layer of inputDim neurons (the 5 temperature parameters plus the
// time step), hidden ReLU layers, and a linear output producing the
// flattened temperature field. Weights are Xavier-initialized from the
// seeded rng stream so runs are reproducible (§3.1: "all the stochastic
// components … are seeded").
func ArchitectureMLP(inputDim int, hidden []int, outputDim int, seed uint64) *Network {
	init := NewInitializer(seed)
	var layers []Layer
	prev := inputDim
	for i, h := range hidden {
		layers = append(layers, NewDense(fmt.Sprintf("hidden%d", i), prev, h, init))
		layers = append(layers, NewReLU())
		prev = h
	}
	layers = append(layers, NewDense("output", prev, outputDim, init))
	return NewNetwork(layers...)
}
