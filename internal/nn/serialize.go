package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary weight format used for server checkpoints (§3.1 fault tolerance).
// Version 2 splits metadata from data so the value slab serializes as one
// bulk write:
//
//	magic "MLNW" | version u32 | paramCount u32
//	per param: nameLen u32 | name | rows u32 | cols u32
//	all parameter values as one contiguous f32 (LE) blob, Params() order
//
// Version 1 interleaved each parameter's values with its metadata; it is
// still accepted by LoadWeights.
const (
	weightsMagic   = "MLNW"
	weightsVersion = 2
)

// SaveWeights writes every parameter value of n to w in the checkpoint
// format. For slab-fused networks the data section is a single bulk write
// of the value slab. Gradients are not persisted; optimizer state is
// serialized separately by the opt package.
func (n *Network) SaveWeights(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(weightsMagic); err != nil {
		return err
	}
	params := n.Params()
	if err := binary.Write(bw, binary.LittleEndian, uint32(weightsVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(bw, p.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.Value.Rows)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.Value.Cols)); err != nil {
			return err
		}
	}
	if n.flatValues != nil {
		if err := writeF32s(bw, n.flatValues); err != nil {
			return err
		}
	} else {
		for _, p := range params {
			if err := writeF32s(bw, p.Value.Data); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadWeights reads a checkpoint previously written by SaveWeights (either
// format version) into the network, which must have the identical
// architecture (same parameter names, order and shapes).
func (n *Network) LoadWeights(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("nn: reading magic: %w", err)
	}
	if string(magic) != weightsMagic {
		return fmt.Errorf("nn: bad magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return err
	}
	if version != 1 && version != weightsVersion {
		return fmt.Errorf("nn: unsupported weights version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	params := n.Params()
	if int(count) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, network has %d", count, len(params))
	}
	readMeta := func(p *Param) error {
		name, err := readString(br)
		if err != nil {
			return err
		}
		if name != p.Name {
			return fmt.Errorf("nn: checkpoint param %q, network expects %q", name, p.Name)
		}
		var rows, cols uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return err
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return err
		}
		if int(rows) != p.Value.Rows || int(cols) != p.Value.Cols {
			return fmt.Errorf("nn: param %q shape %dx%d, want %dx%d", name, rows, cols, p.Value.Rows, p.Value.Cols)
		}
		return nil
	}
	if version == 1 {
		for _, p := range params {
			if err := readMeta(p); err != nil {
				return err
			}
			if err := readF32s(br, p.Value.Data); err != nil {
				return err
			}
		}
		return nil
	}
	for _, p := range params {
		if err := readMeta(p); err != nil {
			return err
		}
	}
	if n.flatValues != nil {
		return readF32s(br, n.flatValues)
	}
	for _, p := range params {
		if err := readF32s(br, p.Value.Data); err != nil {
			return err
		}
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("nn: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeF32s(w io.Writer, data []float32) error {
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readF32s(r io.Reader, dst []float32) error {
	buf := make([]byte, 4*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}
