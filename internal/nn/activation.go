package nn

import (
	"math"

	"melissa/internal/tensor"
)

// Activation selects the nonlinearity a Dense layer fuses into its GEMM
// epilogue (tensor.MatMulBias*). The fused path computes act(x·W + b) in
// one pass while each output tile is cache-hot, and the backward pass folds
// dZ = dY ⊙ act′ together with the bias gradient into a single sweep —
// replacing the separate full-matrix passes the standalone activation
// layers cost.
type Activation uint8

const (
	ActNone Activation = iota
	ActReLU
	ActTanh
)

// actGradBiasSum performs the fused backward elementwise pass: it writes
// dz = dy ⊙ act′ evaluated from the recorded activation *output* y (for
// ReLU the mask y > 0 equals z > 0; for tanh, act′ = 1 − y²) and
// accumulates the bias gradient Σ_batch dz into bgrad in the same sweep.
// With ActNone dz just aliases dy conceptually; callers skip the call.
func actGradBiasSum(act Activation, dz, dy, y *tensor.Matrix, bgrad []float32) {
	cols := dy.Cols
	for r := 0; r < dy.Rows; r++ {
		dyr := dy.Row(r)
		yr := y.Row(r)
		dzr := dz.Row(r)
		switch act {
		case ActReLU:
			for c := 0; c < cols; c++ {
				g := dyr[c]
				if yr[c] <= 0 {
					g = 0
				}
				dzr[c] = g
				bgrad[c] += g
			}
		case ActTanh:
			for c := 0; c < cols; c++ {
				g := dyr[c] * (1 - yr[c]*yr[c])
				dzr[c] = g
				bgrad[c] += g
			}
		}
	}
}

// ReLU is the rectified linear activation used by the paper's surrogate
// (§4.1: "2 hidden layers of 256 neurons with ReLU activation"). As a
// standalone layer it exists for hand-assembled networks and as the
// reference for the fused Dense epilogue path; ArchitectureMLP now builds
// fused layers instead.
type ReLU struct {
	lastX *tensor.Matrix
	out   scratch
	dx    scratch
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	r.lastX = x
	out := r.out.get(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer: the gradient passes only where the input was
// strictly positive.
func (r *ReLU) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if r.lastX == nil {
		panic("nn: ReLU.Backward called before Forward")
	}
	dx := r.dx.get(dy.Rows, dy.Cols)
	for i, v := range r.lastX.Data {
		if v > 0 {
			dx.Data[i] = dy.Data[i]
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Clone implements Layer.
func (r *ReLU) Clone() Layer { return NewReLU() }

// Tanh is a hyperbolic-tangent activation, provided for surrogate variants
// that prefer smooth activations (e.g. PINN-style direct models).
type Tanh struct {
	lastOut *tensor.Matrix // output recorded by Forward for the derivative
	out     scratch
	dx      scratch
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := t.out.get(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = float32(math.Tanh(float64(v)))
	}
	t.lastOut = out
	return out
}

// Backward implements Layer: d tanh(x)/dx = 1 − tanh(x)².
func (t *Tanh) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if t.lastOut == nil {
		panic("nn: Tanh.Backward called before Forward")
	}
	dx := t.dx.get(dy.Rows, dy.Cols)
	for i, y := range t.lastOut.Data {
		dx.Data[i] = dy.Data[i] * (1 - y*y)
	}
	return dx
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Clone implements Layer.
func (t *Tanh) Clone() Layer { return NewTanh() }
