package nn

import (
	"math"

	"melissa/internal/tensor"
)

// ReLU is the rectified linear activation used by the paper's surrogate
// (§4.1: "2 hidden layers of 256 neurons with ReLU activation").
type ReLU struct {
	lastX *tensor.Matrix
	out   *tensor.Matrix
	dx    *tensor.Matrix
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	r.lastX = x
	if r.out == nil || r.out.Rows != x.Rows || r.out.Cols != x.Cols {
		r.out = tensor.New(x.Rows, x.Cols)
	}
	for i, v := range x.Data {
		if v > 0 {
			r.out.Data[i] = v
		} else {
			r.out.Data[i] = 0
		}
	}
	return r.out
}

// Backward implements Layer: the gradient passes only where the input was
// strictly positive.
func (r *ReLU) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if r.lastX == nil {
		panic("nn: ReLU.Backward called before Forward")
	}
	if r.dx == nil || r.dx.Rows != dy.Rows || r.dx.Cols != dy.Cols {
		r.dx = tensor.New(dy.Rows, dy.Cols)
	}
	for i, v := range r.lastX.Data {
		if v > 0 {
			r.dx.Data[i] = dy.Data[i]
		} else {
			r.dx.Data[i] = 0
		}
	}
	return r.dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Clone implements Layer.
func (r *ReLU) Clone() Layer { return NewReLU() }

// Tanh is a hyperbolic-tangent activation, provided for surrogate variants
// that prefer smooth activations (e.g. PINN-style direct models).
type Tanh struct {
	out *tensor.Matrix
	dx  *tensor.Matrix
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Matrix) *tensor.Matrix {
	if t.out == nil || t.out.Rows != x.Rows || t.out.Cols != x.Cols {
		t.out = tensor.New(x.Rows, x.Cols)
	}
	for i, v := range x.Data {
		t.out.Data[i] = float32(math.Tanh(float64(v)))
	}
	return t.out
}

// Backward implements Layer: d tanh(x)/dx = 1 − tanh(x)².
func (t *Tanh) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if t.out == nil {
		panic("nn: Tanh.Backward called before Forward")
	}
	if t.dx == nil || t.dx.Rows != dy.Rows || t.dx.Cols != dy.Cols {
		t.dx = tensor.New(dy.Rows, dy.Cols)
	}
	for i, y := range t.out.Data {
		t.dx.Data[i] = dy.Data[i] * (1 - y*y)
	}
	return t.dx
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Clone implements Layer.
func (t *Tanh) Clone() Layer { return NewTanh() }
