package nn

import (
	"math"
	"sync"
	"testing"

	"melissa/internal/tensor"
)

// TestCloneSharedAliasesWeights: the shared clone must point at the original
// parameter storage (no copy) and produce bit-identical forward outputs,
// including after the original's weights change under it.
func TestCloneSharedAliasesWeights(t *testing.T) {
	base := ArchitectureMLP(4, []int{8, 8}, 6, 11)
	shared := base.CloneShared()
	bp, sp := base.Params(), shared.Params()
	if len(bp) != len(sp) {
		t.Fatalf("param count %d vs %d", len(sp), len(bp))
	}
	for i := range bp {
		if &bp[i].Value.Data[0] != &sp[i].Value.Data[0] {
			t.Fatalf("param %q: clone has private storage", bp[i].Name)
		}
	}
	if shared.FlatParams() != nil {
		t.Fatal("shared clone must not be slab-fused")
	}
	x := tensor.New(3, 4)
	for i := range x.Data {
		x.Data[i] = float32(i)*0.25 - 1
	}
	check := func() {
		want := base.Clone().Forward(x) // private net, same weights
		got := shared.Forward(x)
		for i := range want.Data {
			if math.Float32bits(want.Data[i]) != math.Float32bits(got.Data[i]) {
				t.Fatalf("forward diverges at %d: %v vs %v", i, got.Data[i], want.Data[i])
			}
		}
	}
	check()
	for i := range base.FlatParams() { // weight update propagates to the clone
		base.FlatParams()[i] *= 1.5
	}
	check()
}

// TestCloneSharedConcurrentForward: many shared clones of one network must
// run Forward concurrently without racing (run under -race).
func TestCloneSharedConcurrentForward(t *testing.T) {
	base := ArchitectureMLP(4, []int{16}, 8, 13)
	x := tensor.New(2, 4)
	for i := range x.Data {
		x.Data[i] = float32(i) * 0.1
	}
	want := base.Clone().Forward(x)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		clone := base.CloneShared()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				got := clone.Forward(x)
				for i := range want.Data {
					if math.Float32bits(want.Data[i]) != math.Float32bits(got.Data[i]) {
						t.Errorf("concurrent forward diverges at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
