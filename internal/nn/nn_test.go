package nn

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"melissa/internal/tensor"
)

func randBatch(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func TestDenseForwardShapeAndBias(t *testing.T) {
	init := NewInitializer(1)
	d := NewDense("l", 3, 2, init)
	// Zero the weights, set the bias, and confirm broadcast.
	d.Params()[0].Value.Zero()
	copy(d.Params()[1].Value.Data, []float32{1, -2})
	x := randBatch(rand.New(rand.NewPCG(1, 1)), 4, 3)
	y := d.Forward(x)
	if y.Rows != 4 || y.Cols != 2 {
		t.Fatalf("output shape %dx%d", y.Rows, y.Cols)
	}
	for r := 0; r < 4; r++ {
		if y.At(r, 0) != 1 || y.At(r, 1) != -2 {
			t.Fatalf("bias broadcast wrong: row %d = %v", r, y.Row(r))
		}
	}
}

func TestDenseForwardMatchesManual(t *testing.T) {
	init := NewInitializer(2)
	d := NewDense("l", 2, 2, init)
	w := d.Params()[0].Value
	copy(w.Data, []float32{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(d.Params()[1].Value.Data, []float32{10, 20})
	x := tensor.FromSlice(1, 2, []float32{1, 1})
	y := d.Forward(x)
	// y = [1+3+10, 2+4+20] = [14, 26]
	if y.At(0, 0) != 14 || y.At(0, 1) != 26 {
		t.Fatalf("got %v", y.Row(0))
	}
}

func TestReLU(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice(1, 4, []float32{-1, 0, 2, -3})
	y := r.Forward(x)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("forward got %v", y.Data)
		}
	}
	dy := tensor.FromSlice(1, 4, []float32{5, 6, 7, 8})
	dx := r.Backward(dy)
	wantDx := []float32{0, 0, 7, 0}
	for i := range wantDx {
		if dx.Data[i] != wantDx[i] {
			t.Fatalf("backward got %v", dx.Data)
		}
	}
}

func TestTanhForwardBackward(t *testing.T) {
	l := NewTanh()
	x := tensor.FromSlice(1, 2, []float32{0, 1})
	y := l.Forward(x)
	if y.Data[0] != 0 {
		t.Fatalf("tanh(0) = %v", y.Data[0])
	}
	if math.Abs(float64(y.Data[1])-math.Tanh(1)) > 1e-6 {
		t.Fatalf("tanh(1) = %v", y.Data[1])
	}
	dy := tensor.FromSlice(1, 2, []float32{1, 1})
	dx := l.Backward(dy)
	if math.Abs(float64(dx.Data[0])-1) > 1e-6 { // 1 - tanh(0)^2 = 1
		t.Fatalf("dx[0] = %v", dx.Data[0])
	}
}

func TestMSELoss(t *testing.T) {
	l := NewMSELoss()
	pred := tensor.FromSlice(2, 2, []float32{1, 2, 3, 4})
	target := tensor.FromSlice(2, 2, []float32{1, 2, 3, 6})
	got := l.Forward(pred, target)
	if math.Abs(got-1) > 1e-9 { // (0+0+0+4)/4
		t.Fatalf("MSE = %v, want 1", got)
	}
	g := l.Backward(pred, target)
	// d/dpred = 2(pred-target)/4; only last element nonzero: 2*(-2)/4 = -1.
	if g.Data[3] != -1 || g.Data[0] != 0 {
		t.Fatalf("grad = %v", g.Data)
	}
}

func TestMSEVectorHelper(t *testing.T) {
	if got := MSE([]float32{1, 3}, []float32{1, 1}); got != 2 {
		t.Fatalf("MSE = %v, want 2", got)
	}
}

// numericalGrad computes dLoss/dTheta by central differences for a given
// scalar-producing closure.
func numericalGrad(theta []float32, loss func() float64) []float64 {
	const h = 1e-3
	grads := make([]float64, len(theta))
	for i := range theta {
		orig := theta[i]
		theta[i] = orig + h
		lp := loss()
		theta[i] = orig - h
		lm := loss()
		theta[i] = orig
		grads[i] = (lp - lm) / (2 * h)
	}
	return grads
}

// TestGradCheckDense verifies backprop gradients against central
// differences for the paper's surrogate structure — a fused
// Dense(ReLU)→Dense→MSE chain, activation epilogue included.
func TestGradCheckDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	net := ArchitectureMLP(3, []int{5}, 4, 7)
	x := randBatch(rng, 6, 3)
	target := randBatch(rng, 6, 4)
	loss := NewMSELoss()

	forward := func() float64 { return loss.Forward(net.Forward(x), target) }

	net.ZeroGrad()
	pred := net.Forward(x)
	net.Backward(loss.Backward(pred, target))

	for _, p := range net.Params() {
		numeric := numericalGrad(p.Value.Data, forward)
		for i, g := range p.Grad.Data {
			if math.Abs(float64(g)-numeric[i]) > 2e-3*(1+math.Abs(numeric[i])) {
				t.Fatalf("param %s[%d]: backprop %v vs numeric %v", p.Name, i, g, numeric[i])
			}
		}
	}
}

// TestGradCheckInput verifies the gradient the network returns with respect
// to its input, which downstream users rely on for adjoints (§1 of the
// paper highlights surrogate differentiability).
func TestGradCheckInput(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	net := ArchitectureMLP(4, []int{6}, 3, 23)
	x := randBatch(rng, 2, 4)
	target := randBatch(rng, 2, 3)
	loss := NewMSELoss()

	net.ZeroGrad()
	dx := net.Backward(loss.Backward(net.Forward(x), target))

	numeric := numericalGrad(x.Data, func() float64 { return loss.Forward(net.Forward(x), target) })
	for i := range x.Data {
		if math.Abs(float64(dx.Data[i])-numeric[i]) > 2e-3*(1+math.Abs(numeric[i])) {
			t.Fatalf("input grad [%d]: %v vs %v", i, dx.Data[i], numeric[i])
		}
	}
}

func TestGradCheckTanh(t *testing.T) {
	rng := rand.New(rand.NewPCG(29, 31))
	init := NewInitializer(5)
	net := NewNetwork(NewDense("a", 3, 4, init), NewTanh(), NewDense("b", 4, 2, init))
	x := randBatch(rng, 3, 3)
	target := randBatch(rng, 3, 2)
	loss := NewMSELoss()
	net.ZeroGrad()
	net.Backward(loss.Backward(net.Forward(x), target))
	for _, p := range net.Params() {
		numeric := numericalGrad(p.Value.Data, func() float64 { return loss.Forward(net.Forward(x), target) })
		for i, g := range p.Grad.Data {
			if math.Abs(float64(g)-numeric[i]) > 2e-3*(1+math.Abs(numeric[i])) {
				t.Fatalf("param %s[%d]: %v vs %v", p.Name, i, g, numeric[i])
			}
		}
	}
}

func TestGradAccumulation(t *testing.T) {
	net := ArchitectureMLP(2, []int{3}, 2, 3)
	rng := rand.New(rand.NewPCG(1, 2))
	x := randBatch(rng, 4, 2)
	target := randBatch(rng, 4, 2)
	loss := NewMSELoss()

	net.ZeroGrad()
	net.Backward(loss.Backward(net.Forward(x), target))
	first := net.Params()[0].Grad.Clone()

	// Second backward without ZeroGrad must accumulate (double).
	net.Backward(loss.Backward(net.Forward(x), target))
	second := net.Params()[0].Grad
	for i := range first.Data {
		if math.Abs(float64(second.Data[i]-2*first.Data[i])) > 1e-4 {
			t.Fatalf("gradient accumulation broken at %d: %v vs 2*%v", i, second.Data[i], first.Data[i])
		}
	}

	net.ZeroGrad()
	for _, p := range net.Params() {
		for _, g := range p.Grad.Data {
			if g != 0 {
				t.Fatal("ZeroGrad left nonzero gradient")
			}
		}
	}
}

func TestArchitectureMLPShape(t *testing.T) {
	// Paper §4.1: input 6, hidden 2×256, output 1M. We check the structure
	// and parameter count formula at reduced width.
	net := ArchitectureMLP(6, []int{256, 256}, 1024, 42)
	want := 6*256 + 256 + 256*256 + 256 + 256*1024 + 1024
	if got := net.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	if len(net.Layers) != 3 { // two fused dense+relu, one linear dense
		t.Fatalf("layer count %d", len(net.Layers))
	}
	for i, wantAct := range []Activation{ActReLU, ActReLU, ActNone} {
		if act := net.Layers[i].(*Dense).Activation(); act != wantAct {
			t.Fatalf("layer %d activation %d, want %d", i, act, wantAct)
		}
	}
}

func TestSeededInitDeterministic(t *testing.T) {
	a := ArchitectureMLP(4, []int{8, 8}, 3, 99)
	b := ArchitectureMLP(4, []int{8, 8}, 3, 99)
	c := ArchitectureMLP(4, []int{8, 8}, 3, 100)
	pa, pb, pc := a.Params(), b.Params(), c.Params()
	same, diff := true, false
	for i := range pa {
		for j := range pa[i].Value.Data {
			if pa[i].Value.Data[j] != pb[i].Value.Data[j] {
				same = false
			}
			if pa[i].Value.Data[j] != pc[i].Value.Data[j] {
				diff = true
			}
		}
	}
	if !same {
		t.Fatal("same seed produced different weights")
	}
	if !diff {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestXavierRange(t *testing.T) {
	init := NewInitializer(7)
	m := tensor.New(64, 64)
	init.XavierUniform(m, 64, 64)
	limit := float32(math.Sqrt(6.0 / 128))
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("weight %v outside ±%v", v, limit)
		}
	}
	// Not all zero and roughly centered.
	if s := tensor.SumF64(m.Data); math.Abs(s)/float64(len(m.Data)) > float64(limit)/4 {
		t.Fatalf("weights look biased: mean %v", s/float64(len(m.Data)))
	}
}

func TestCloneIndependence(t *testing.T) {
	net := ArchitectureMLP(3, []int{4}, 2, 1)
	clone := net.Clone()
	p0 := net.Params()[0]
	c0 := clone.Params()[0]
	for i := range p0.Value.Data {
		if p0.Value.Data[i] != c0.Value.Data[i] {
			t.Fatal("clone weights differ")
		}
	}
	p0.Value.Data[0] += 1
	if c0.Value.Data[0] == p0.Value.Data[0] {
		t.Fatal("clone shares weight storage")
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	a := ArchitectureMLP(3, []int{4}, 2, 1)
	b := ArchitectureMLP(3, []int{4}, 2, 2)
	if err := b.CopyWeightsFrom(a); err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Value.Data {
			if pa[i].Value.Data[j] != pb[i].Value.Data[j] {
				t.Fatal("weights not copied")
			}
		}
	}
	c := ArchitectureMLP(3, []int{5}, 2, 1)
	if err := c.CopyWeightsFrom(a); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	net := ArchitectureMLP(5, []int{7, 3}, 4, 8)
	var buf bytes.Buffer
	if err := net.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	other := ArchitectureMLP(5, []int{7, 3}, 4, 9) // different seed
	if err := other.LoadWeights(&buf); err != nil {
		t.Fatal(err)
	}
	pn, po := net.Params(), other.Params()
	for i := range pn {
		for j := range pn[i].Value.Data {
			if pn[i].Value.Data[j] != po[i].Value.Data[j] {
				t.Fatalf("param %d differs after roundtrip", i)
			}
		}
	}
}

func TestLoadWeightsRejectsWrongArchitecture(t *testing.T) {
	net := ArchitectureMLP(5, []int{7}, 4, 8)
	var buf bytes.Buffer
	if err := net.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	wrong := ArchitectureMLP(5, []int{8}, 4, 8)
	if err := wrong.LoadWeights(&buf); err == nil {
		t.Fatal("expected error loading into mismatched architecture")
	}
}

func TestLoadWeightsRejectsGarbage(t *testing.T) {
	net := ArchitectureMLP(2, []int{2}, 2, 1)
	if err := net.LoadWeights(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("expected error")
	}
	if err := net.LoadWeights(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error on empty input")
	}
}

// Property: save→load is the identity on weights for random architectures.
func TestSaveLoadProperty(t *testing.T) {
	f := func(seed uint64) bool {
		h1 := 1 + int(seed%7)
		h2 := 1 + int((seed>>8)%7)
		net := ArchitectureMLP(3, []int{h1, h2}, 2, seed)
		var buf bytes.Buffer
		if err := net.SaveWeights(&buf); err != nil {
			return false
		}
		out := ArchitectureMLP(3, []int{h1, h2}, 2, seed+1)
		if err := out.LoadWeights(&buf); err != nil {
			return false
		}
		pn, po := net.Params(), out.Params()
		for i := range pn {
			for j := range pn[i].Value.Data {
				if pn[i].Value.Data[j] != po[i].Value.Data[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestFusedDenseMatchesUnfusedLayers pins the fused-epilogue contract:
// a fused Dense(act) layer must be bit-identical — forward output, every
// parameter gradient, and the input gradient — to the unfused
// Dense→activation layer pair it replaced, because bias and activation are
// applied after the identical GEMM accumulation in both paths.
func TestFusedDenseMatchesUnfusedLayers(t *testing.T) {
	for _, act := range []Activation{ActReLU, ActTanh} {
		name := map[Activation]string{ActReLU: "relu", ActTanh: "tanh"}[act]
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(31, uint64(act)))
			build := func(fused bool) *Network {
				init := NewInitializer(123)
				if fused {
					return NewNetwork(NewDenseAct("h", 7, 33, act, init), NewDense("o", 33, 5, init))
				}
				var mid Layer = NewReLU()
				if act == ActTanh {
					mid = NewTanh()
				}
				return NewNetwork(NewDense("h", 7, 33, init), mid, NewDense("o", 33, 5, init))
			}
			fusedNet, plainNet := build(true), build(false)
			x := randBatch(rng, 9, 7)
			target := randBatch(rng, 9, 5)
			loss := NewMSELoss()

			fusedNet.ZeroGrad()
			fp := fusedNet.Forward(x)
			fdx := fusedNet.Backward(loss.Backward(fp, target))

			plainNet.ZeroGrad()
			pp := plainNet.Forward(x)
			pdx := plainNet.Backward(loss.Backward(pp, target))

			if d := fp.MaxAbsDiff(pp); d != 0 {
				t.Fatalf("forward differs by %v", d)
			}
			if d := fdx.MaxAbsDiff(pdx); d != 0 {
				t.Fatalf("input gradient differs by %v", d)
			}
			fparams, pparams := fusedNet.Params(), plainNet.Params()
			if len(fparams) != len(pparams) {
				t.Fatalf("param count %d vs %d", len(fparams), len(pparams))
			}
			for i := range fparams {
				if d := fparams[i].Grad.MaxAbsDiff(pparams[i].Grad); d != 0 {
					t.Fatalf("param %s gradient differs by %v", fparams[i].Name, d)
				}
			}
		})
	}
}

// TestTrainingReducesLoss is a smoke test that a few manual SGD steps on a
// tiny regression problem reduce the loss; full optimizer tests live in the
// opt package.
func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 200))
	net := ArchitectureMLP(2, []int{16}, 1, 5)
	loss := NewMSELoss()
	x := randBatch(rng, 32, 2)
	target := tensor.New(32, 1)
	for r := 0; r < 32; r++ {
		target.Set(r, 0, x.At(r, 0)+0.5*x.At(r, 1))
	}
	initial := loss.Forward(net.Forward(x), target)
	const lr = 0.05
	for step := 0; step < 200; step++ {
		net.ZeroGrad()
		pred := net.Forward(x)
		net.Backward(loss.Backward(pred, target))
		for _, p := range net.Params() {
			tensor.Axpy(-lr, p.Grad.Data, p.Value.Data)
		}
	}
	final := loss.Forward(net.Forward(x), target)
	if final > initial/10 {
		t.Fatalf("loss did not drop: %v -> %v", initial, final)
	}
}

// TestLayerParamRangesTileSlab verifies the bucket layout the overlapped
// gradient sync relies on: per-layer slab ranges tile [0, NumParams)
// exactly in layer order, and GradBuckets returns the non-empty ranges in
// reverse layer order — the order Backward finalizes their gradients.
func TestLayerParamRangesTileSlab(t *testing.T) {
	net := ArchitectureMLP(3, []int{4, 5}, 2, 1)
	off := 0
	for i, l := range net.Layers {
		lo, hi := net.LayerParamRange(i)
		if lo != off {
			t.Fatalf("layer %d starts at %d, want %d", i, lo, off)
		}
		size := 0
		for _, p := range l.Params() {
			size += p.Size()
		}
		if hi-lo != size {
			t.Fatalf("layer %d range %d elems, params hold %d", i, hi-lo, size)
		}
		off = hi
	}
	if off != net.NumParams() {
		t.Fatalf("ranges cover %d of %d slab elements", off, net.NumParams())
	}

	buckets := net.GradBuckets()
	if len(buckets) != 3 { // three Dense layers (activations are fused)
		t.Fatalf("got %d buckets, want 3", len(buckets))
	}
	prevLayer := len(net.Layers)
	for _, bk := range buckets {
		if bk.Layer >= prevLayer {
			t.Fatalf("buckets not in reverse layer order: %v", buckets)
		}
		prevLayer = bk.Layer
		if lo, hi := net.LayerParamRange(bk.Layer); lo != bk.Lo || hi != bk.Hi {
			t.Fatalf("bucket %+v mismatches layer range [%d,%d)", bk, lo, hi)
		}
		if bk.Lo >= bk.Hi {
			t.Fatalf("empty bucket %+v", bk)
		}
	}
}

// TestBackwardWithHookOrder verifies the hook contract: hook(i) fires once
// per layer, in reverse layer order, and by the time it fires the layer's
// gradient range is populated.
func TestBackwardWithHookOrder(t *testing.T) {
	net := ArchitectureMLP(3, []int{4}, 2, 2)
	x := tensor.New(2, 3)
	for i := range x.Data {
		x.Data[i] = float32(i) * 0.1
	}
	target := tensor.New(2, 2)
	loss := NewMSELoss()
	pred := net.Forward(x)
	loss.Forward(pred, target)

	var order []int
	net.BackwardWithHook(loss.Backward(pred, target), func(layer int) {
		order = append(order, layer)
		if lo, hi := net.LayerParamRange(layer); hi > lo {
			grads := net.FlatGrads()[lo:hi]
			nonzero := false
			for _, g := range grads {
				if g != 0 {
					nonzero = true
					break
				}
			}
			if !nonzero {
				t.Fatalf("layer %d hook fired with all-zero gradients", layer)
			}
		}
	})
	want := []int{1, 0} // fused hidden layer + output layer
	if len(order) != len(want) {
		t.Fatalf("hook fired %d times, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("hook order %v, want %v", order, want)
		}
	}
}
