package nn

import "melissa/internal/tensor"

// scratchCap bounds how many distinct batch shapes a layer caches. Training
// alternates between only a handful of row counts (the synchronized batch,
// tail batches, and the validation chunk sizes), so a tiny cache removes
// all steady-state activation allocations; if more shapes ever cycle
// through, the oldest slot is recycled.
const scratchCap = 16

// scratch is a per-layer pool of activation matrices keyed by shape, so
// alternating batch sizes (training batch, tail batch, validation chunk)
// all reuse storage instead of reallocating on every shape switch.
type scratch struct {
	mats []*tensor.Matrix
	next int // round-robin eviction cursor
}

// get returns a cached rows×cols matrix, allocating only the first time a
// shape is seen. Contents are whatever the previous use left; callers
// overwrite every element.
func (s *scratch) get(rows, cols int) *tensor.Matrix {
	for _, m := range s.mats {
		if m.Rows == rows && m.Cols == cols {
			return m
		}
	}
	m := tensor.New(rows, cols)
	if len(s.mats) < scratchCap {
		s.mats = append(s.mats, m)
	} else {
		s.mats[s.next] = m
		s.next = (s.next + 1) % scratchCap
	}
	return m
}
