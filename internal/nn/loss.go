package nn

import (
	"fmt"

	"melissa/internal/tensor"
)

// MSELoss is the mean-squared-error loss averaged over every element of the
// batch (batch size × output width), matching PyTorch's nn.MSELoss default
// reduction that the paper's training loop uses.
type MSELoss struct {
	grad scratch
}

// NewMSELoss returns an MSE loss.
func NewMSELoss() *MSELoss { return &MSELoss{} }

// Forward returns the scalar loss for predictions pred against target.
func (l *MSELoss) Forward(pred, target *tensor.Matrix) float64 {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic(fmt.Sprintf("nn: MSE shape mismatch %dx%d vs %dx%d", pred.Rows, pred.Cols, target.Rows, target.Cols))
	}
	var sum float64
	for i, p := range pred.Data {
		d := float64(p) - float64(target.Data[i])
		sum += d * d
	}
	return sum / float64(len(pred.Data))
}

// Backward returns dLoss/dPred for the most recent shapes:
// 2·(pred − target)/N with N the total element count. The returned matrix is
// reused between calls.
func (l *MSELoss) Backward(pred, target *tensor.Matrix) *tensor.Matrix {
	grad := l.grad.get(pred.Rows, pred.Cols)
	scale := 2 / float32(len(pred.Data))
	for i, p := range pred.Data {
		grad.Data[i] = scale * (p - target.Data[i])
	}
	return grad
}

// MSE computes the mean-squared error between two flat vectors; a
// convenience for validation metrics.
func MSE(pred, target []float32) float64 {
	if len(pred) != len(target) {
		panic("nn: MSE length mismatch")
	}
	var sum float64
	for i := range pred {
		d := float64(pred[i]) - float64(target[i])
		sum += d * d
	}
	return sum / float64(len(pred))
}
