package server

// Chaos test for the unified elastic server runtime: three server members
// ingest a real ensemble over the client transport while training as an
// elastic group; one member is killed at a deterministic batch boundary.
// The survivors must re-form, roll ingestion and replica state back to the
// last committed group checkpoint, keep their client connections, and
// finish with weights bit-identical to a piecewise reference built from
// in-process ChanComm trainers over the same per-rank sample streams.
//
// Determinism: simulations stream one at a time with an ingestion barrier
// between them (each sim's frames are fully ingested before the next
// starts), and a client sends all of one rank's frames over a single
// connection, so every rank's FIFO arrival order is a pure function of the
// round-robin routing — exactly what chaosStreams computes analytically.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"melissa/internal/buffer"
	"melissa/internal/client"
	"melissa/internal/core"
	"melissa/internal/elastic"
	"melissa/internal/solver"
	"melissa/internal/transport"
)

const (
	csMembers    = 3
	csSims       = 18 // 18 sims × 8 steps = exactly 48 samples per rank
	csMaxBatches = 12 // 12 batches × batch size 4 consume all 48
	csCkptEvery  = 4
	csKillBatch  = 6 // past the batch-4 group checkpoint, before batch 8
)

// chaosStreams computes each global data rank's deterministic arrival
// order: for every sim in streaming order, the steps the round-robin
// distribution routes to the rank, with exactly the float32 reductions the
// client applies in situ.
func chaosStreams(t *testing.T) *[csMembers][]buffer.Sample {
	t.Helper()
	var streams [csMembers][]buffer.Sample
	for c := 0; c < csSims; c++ {
		sim, err := solver.New(testSolverConfig(), testParams(c))
		if err != nil {
			t.Fatal(err)
		}
		base := testParams(c).Vector()
		for sim.StepIndex() < testSteps {
			if err := sim.StepOnce(); err != nil {
				t.Fatal(err)
			}
			step := sim.StepIndex()
			in := make([]float32, 0, len(base)+1)
			for _, v := range base {
				in = append(in, float32(v))
			}
			in = append(in, float32(float64(step)*testDt))
			field := sim.Field()
			out := make([]float32, len(field))
			for j, v := range field {
				out[j] = float32(v)
			}
			r := (c + step) % csMembers
			streams[r] = append(streams[r], buffer.Sample{SimID: c, Step: step, Input: in, Output: out})
		}
	}
	return &streams
}

type chaosSnap struct{ seen, unseen []buffer.Sample }

// chaosRef is one boundary of the piecewise reference trajectory: trainer
// state plus each participating rank's buffer snapshot.
type chaosRef struct {
	flat     []float32
	weights  []byte
	optState []byte
	batches  int
	samples  int
	bufs     map[int]*chaosSnap
}

// chaosPhase runs the reference trainer for one membership stretch — the
// given global ranks over the channel backend, which is pinned
// bit-identical to the per-epoch TCP groups the elastic members form —
// from an optional start point to maxBatches.
func chaosPhase(t *testing.T, ranks []int, streams *[csMembers][]buffer.Sample, start *chaosRef, maxBatches int) *chaosRef {
	t.Helper()
	bufs := make([]*buffer.Blocking, len(ranks))
	for i, r := range ranks {
		bb := buffer.NewBlocking(buffer.NewFIFO(0))
		for _, s := range streams[r] {
			cp := buffer.Sample{
				SimID:  s.SimID,
				Step:   s.Step,
				Input:  append([]float32(nil), s.Input...),
				Output: append([]float32(nil), s.Output...),
			}
			if !bb.TryPut(cp) {
				t.Fatal("prefill rejected")
			}
		}
		bb.EndReception()
		if start != nil {
			snap := start.bufs[r]
			bb.WithLock(func(p buffer.Policy) {
				p.(buffer.Snapshotter).RestoreSnapshot(snap.seen, snap.unseen)
			})
		}
		bufs[i] = bb
	}
	tcfg := testConfig(1, csSims, buffer.FIFOKind).Trainer
	tcfg.Ranks = len(ranks)
	tcfg.MaxBatches = maxBatches
	tr, err := core.NewTrainer(tcfg, bufs)
	if err != nil {
		t.Fatal(err)
	}
	if start != nil {
		if err := tr.RestoreState(start.weights, start.optState, start.batches, start.samples); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	w, o, err := tr.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	ref := &chaosRef{
		flat:     append([]float32(nil), tr.Network().FlatParams()...),
		weights:  w,
		optState: o,
		batches:  tr.Metrics().Batches(),
		samples:  tr.Metrics().Samples(),
		bufs:     make(map[int]*chaosSnap, len(ranks)),
	}
	for i, r := range ranks {
		s := &chaosSnap{}
		bufs[i].WithLock(func(p buffer.Policy) {
			s.seen, s.unseen = p.(buffer.Snapshotter).Snapshot()
		})
		ref.bufs[r] = s
	}
	return ref
}

// waitIngested blocks until the member's rank has received want distinct
// time steps — the ingestion barrier that pins per-rank arrival order. For
// the doomed member the wait also ends when the kill fires: its remaining
// share is dropped by the clients and never arrives.
func waitIngested(t *testing.T, srv *Server, want int, killed <-chan struct{}) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for srv.receivedOnRank(0) < want {
		if killed != nil {
			select {
			case <-killed:
				return
			default:
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingestion barrier: %d/%d", srv.receivedOnRank(0), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestElasticServerChaosKillReform is the unified-runtime headline test:
// a 3-member elastic server group ingests a live ensemble, member 1 is
// killed at the epoch-1 batch-6 boundary (past the committed batch-4 group
// checkpoint), and the survivors must re-form at a higher epoch, roll back
// to batch 4 with their ingest state intact, keep serving the reconnecting
// clients (including ones launched after the death, which dial the
// survivors only), finish the schedule, and match the piecewise ChanComm
// reference bit for bit.
func TestElasticServerChaosKillReform(t *testing.T) {
	dir := t.TempDir()
	coord, err := elastic.NewCoordinator(elastic.CoordinatorConfig{
		Addr:        "127.0.0.1:0",
		World:       csMembers,
		Dir:         dir,
		FormTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	srvs := make([]*Server, csMembers)
	var killOnce sync.Once
	killed := make(chan struct{})
	for m := range srvs {
		cfg := testConfig(1, csSims, buffer.FIFOKind)
		cfg.Trainer.MaxBatches = csMaxBatches
		cfg.CheckpointEveryBatches = csCkptEvery
		cfg.Elastic = &ElasticConfig{
			MemberID:       m,
			Coordinator:    coord.Addr(),
			Dir:            dir,
			InitialMembers: csMembers,
			RingOptions: func(int) transport.RingOptions {
				return transport.RingOptions{IOTimeout: 5 * time.Second, HeartbeatInterval: 100 * time.Millisecond}
			},
		}
		if m == 1 {
			cfg.Elastic.OnBoundary = func(epoch, _, batches int) {
				if epoch == 1 && batches == csKillBatch {
					killOnce.Do(func() {
						srvs[1].ElasticMember().Kill()
						close(killed)
					})
				}
			}
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srvs[m] = srv
	}

	runErrs := make([]error, csMembers)
	var wg sync.WaitGroup
	for m, srv := range srvs {
		wg.Add(1)
		go func(m int, srv *Server) {
			defer wg.Done()
			runErrs[m] = srv.Run(context.Background())
		}(m, srv)
	}

	addrs := make([]string, csMembers)
	for m, srv := range srvs {
		addrs[m] = srv.Addrs()[0]
	}

	// Stream the ensemble one simulation at a time. After sim 8 every rank
	// holds exactly 24 samples — precisely enough for member 1 to train to
	// the batch-6 kill boundary and no further — so the kill is awaited
	// there, and every later client starts with member 1 dead and must
	// come up through the survivors-only dial path.
	exp := make([]int, csMembers)
	for c := 0; c < csSims; c++ {
		job := client.HeatJob{
			Client: client.Config{ClientID: c, SimID: c, ServerAddrs: addrs, Reconnect: true},
			Solver: testSolverConfig(),
			Params: testParams(c),
		}
		if err := client.RunHeat(context.Background(), job); err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
		for step := 1; step <= testSteps; step++ {
			exp[(c+step)%csMembers]++
		}
		for m := range srvs {
			var kc <-chan struct{}
			if m == 1 {
				kc = killed
			}
			waitIngested(t, srvs[m], exp[m], kc)
		}
		if c == 8 {
			select {
			case <-killed:
			case <-time.After(60 * time.Second):
				t.Fatal("member 1 was never killed at the batch-6 boundary")
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	wg.Wait()

	if !errors.Is(runErrs[1], elastic.ErrKilled) {
		t.Fatalf("killed member returned %v, want ErrKilled", runErrs[1])
	}
	for _, m := range []int{0, 2} {
		if runErrs[m] != nil {
			t.Fatalf("survivor %d: %v", m, runErrs[m])
		}
		met := srvs[m].Metrics()
		if met.GroupEpoch() < 2 {
			t.Fatalf("survivor %d group epoch %d, want ≥ 2", m, met.GroupEpoch())
		}
		if met.Reforms() < 1 {
			t.Fatalf("survivor %d saw no re-formation", m)
		}
		if met.LastRollbackBatch() != csCkptEvery {
			t.Fatalf("survivor %d rolled back to %d, want %d", m, met.LastRollbackBatch(), csCkptEvery)
		}
	}
	if got := srvs[0].Metrics().Batches(); got != csMaxBatches {
		t.Fatalf("survivor 0 trained %d batches, want %d", got, csMaxBatches)
	}

	// Piecewise reference: all three ranks to the committed batch-4
	// checkpoint, then the survivors from that state to the end.
	streams := chaosStreams(t)
	ph1 := chaosPhase(t, []int{0, 1, 2}, streams, nil, csCkptEvery)
	ph2 := chaosPhase(t, []int{0, 2}, streams, ph1, csMaxBatches)
	for _, m := range []int{0, 2} {
		got := srvs[m].Trainer().Network().FlatParams()
		if len(got) != len(ph2.flat) {
			t.Fatalf("survivor %d weight count %d, want %d", m, len(got), len(ph2.flat))
		}
		for i := range ph2.flat {
			if got[i] != ph2.flat[i] {
				t.Fatalf("survivor %d weight %d diverged: %v, want %v", m, i, got[i], ph2.flat[i])
			}
		}
	}
}
