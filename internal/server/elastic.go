package server

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"melissa/internal/buffer"
	"melissa/internal/core"
	"melissa/internal/elastic"
	"melissa/internal/transport"
)

// ElasticConfig places the server in an elastic training group: instead of
// a fixed communicator wired at construction (Config.Group), membership is
// managed by an elastic coordinator, a fresh hierarchical communicator is
// formed per group epoch, and a rank death rolls every survivor back to
// the last committed group checkpoint — without dropping the client
// connections or the ingest state behind them. The server's per-rank
// dedup bitsets and buffer contents ride the group-checkpoint shards
// (elastic.State.App), so ingestion rolls back on exactly the same
// boundary as the replica weights.
type ElasticConfig struct {
	// MemberID is this process's stable identity across restarts. It also
	// pins the process's slice of the data plane: its ranks serve global
	// data ranks [MemberID·Ranks, MemberID·Ranks+Ranks).
	MemberID int
	// Coordinator is the control-plane address of elastic.Coordinator.
	Coordinator string
	// Dir is the shared group checkpoint directory (shards + manifest).
	Dir string
	// BindAddr is the ring listener bind pattern (default "127.0.0.1:0").
	BindAddr string
	// ConnectTimeout bounds per-epoch ring formation (default 10s).
	ConnectTimeout time.Duration
	// InitialMembers is the data-plane group size in member processes.
	// Client round-robin routing and reception accounting run over the
	// stable data world of InitialMembers·Ranks global ranks, regardless
	// of how the training group shrinks or re-forms: a member keeps its
	// data ranks for the whole run, while its training-group offset
	// (Session.Group) shifts with the surviving membership each epoch.
	InitialMembers int
	// RingOptions, when set, supplies per-epoch ring tuning (IO timeout,
	// heartbeat cadence, chaos wrapper).
	RingOptions func(epoch int) transport.RingOptions
	// OnBoundary, when set, runs on every local rank at each synchronized
	// step of every epoch (after shard handling). The chaos tests use it
	// to trigger deterministic kills at exact batch boundaries.
	OnBoundary func(epoch, rank, batches int)
}

func (ec *ElasticConfig) validate(ranks int) error {
	if ec.Coordinator == "" {
		return fmt.Errorf("server: elastic: coordinator address required")
	}
	if ec.Dir == "" {
		return fmt.Errorf("server: elastic: checkpoint dir required")
	}
	if ec.InitialMembers < 1 {
		return fmt.Errorf("server: elastic: InitialMembers=%d must be ≥ 1", ec.InitialMembers)
	}
	if ec.MemberID < 0 || ec.MemberID >= ec.InitialMembers {
		return fmt.Errorf("server: elastic: MemberID=%d outside data world of %d members", ec.MemberID, ec.InitialMembers)
	}
	return nil
}

// retireJournal is one rank's replay log: every sample that permanently
// left the rank's buffer through training (buffer.Blocking.OnRetire) is
// deep-copied here in consumption order, and a mark records the journal
// position at each group-checkpoint boundary. On a rollback to batch B the
// entries after mark[B] are exactly the samples the rank consumed beyond
// the checkpoint — prepending them to the live buffer contents rebuilds
// the rank's FIFO stream bit-exactly without asking clients to resend.
// Entries before the committed manifest can never be replayed again and
// are pruned on the coordinator's commit notification.
type retireJournal struct {
	mu      sync.Mutex
	base    int             // absolute position of entries[0]
	entries []buffer.Sample // heap-owned deep copies, consumption order
	marks   map[int]int     // batch boundary → absolute journal position
}

func newRetireJournal() *retireJournal {
	return &retireJournal{marks: make(map[int]int)}
}

// record appends a retired sample. It runs under the buffer lock (OnRetire
// contract), so the payload must be copied before the arena row is reused.
func (j *retireJournal) record(s buffer.Sample) {
	cp := buffer.Sample{
		SimID:  s.SimID,
		Step:   s.Step,
		Input:  append([]float32(nil), s.Input...),
		Output: append([]float32(nil), s.Output...),
	}
	j.mu.Lock()
	j.entries = append(j.entries, cp)
	j.mu.Unlock()
}

// mark records the current journal position for a batch boundary. Call at
// the rank's own OnLocalBatchEnd, after the boundary's retires.
func (j *retireJournal) mark(batch int) {
	j.mu.Lock()
	j.marks[batch] = j.base + len(j.entries)
	j.mu.Unlock()
}

// prune drops entries before the committed batch's mark: the group can
// never roll back past a committed manifest, so they are dead weight. Runs
// on the control-plane reader goroutine (Member.OnCommit).
func (j *retireJournal) prune(batch int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	m, ok := j.marks[batch]
	if !ok || m <= j.base {
		return
	}
	j.entries = append([]buffer.Sample(nil), j.entries[m-j.base:]...)
	j.base = m
	for b := range j.marks {
		if b < batch {
			delete(j.marks, b)
		}
	}
}

// replayAndRewind returns the entries consumed after batch's mark and
// rewinds the journal to it: the replayed samples go back into the buffer,
// will be consumed again, and re-journal themselves. Marks past the
// rollback point are stale trajectory and dropped.
func (j *retireJournal) replayAndRewind(batch int) []buffer.Sample {
	j.mu.Lock()
	defer j.mu.Unlock()
	m, ok := j.marks[batch]
	if !ok {
		// No mark: the journal started after this boundary (the rank
		// restored at it), so everything recorded since is post-batch.
		m = j.base
	}
	cut := m - j.base
	if cut < 0 {
		cut = 0
	}
	out := append([]buffer.Sample(nil), j.entries[cut:]...)
	j.entries = j.entries[:cut]
	for b := range j.marks {
		if b > batch {
			delete(j.marks, b)
		}
	}
	j.marks[batch] = m
	return out
}

// elasticAppState is the server's ingest state inside a group-checkpoint
// shard (elastic.State.App): per-local-rank sim accounting (dedup bitsets,
// goodbye flags) and buffer snapshots. Gob-encoded; only ever restored by
// the member that wrote it.
type elasticAppState struct {
	Sims      []map[int32]SimState
	BufSeen   [][]buffer.Sample
	BufUnseen [][]buffer.Sample
}

// boundaryShard accumulates one group-checkpoint boundary: each local rank
// contributes its ingest capture at its own OnLocalBatchEnd, and the last
// rank to arrive — at which point no rank can have applied the next
// batch's update, so the replica weights still hold the boundary state —
// assembles and writes the member's shard.
type boundaryShard struct {
	arrived int
	app     elasticAppState
}

// elasticRun is one epoch's trainer-side state.
type elasticRun struct {
	s    *Server
	sess *elastic.Session
	tr   *core.Trainer

	mu      sync.Mutex
	pending map[int]*boundaryShard
}

// runElastic is Server.Run for elastic mode: the member runtime drives one
// runEpoch per group epoch; listeners, aggregators and ingest state live
// across epochs, so clients stay connected through re-formations.
func (s *Server) runElastic(ctx context.Context) error {
	var watchdogStop chan struct{}
	if s.watchdog != nil && s.cfg.OnUnresponsive != nil {
		watchdogStop = make(chan struct{})
		go s.watchdogLoop(watchdogStop)
	}

	err := s.member.Run(ctx)

	if watchdogStop != nil {
		close(watchdogStop)
	}
	s.closeListeners()
	s.startAggs() // a run killed before its first epoch never started them
	s.aggWG.Wait()
	return err
}

// startAggs launches the per-rank aggregators exactly once. In elastic
// mode it is deferred to the first epoch, after the initial restore: a
// rejoining process must load its checkpointed bitsets before the first
// reconnecting client frame is judged fresh or duplicate.
func (s *Server) startAggs() {
	s.aggOnce.Do(func() {
		for r := range s.listeners {
			s.aggWG.Add(1)
			go s.aggregate(r)
		}
	})
}

// runEpoch is the member's per-epoch callback: restore ingest + replica
// state at the epoch's rollback point, then train over the epoch's
// hierarchical communicator with per-boundary shard writes.
func (s *Server) runEpoch(ctx context.Context, sess *elastic.Session) error {
	s.metrics.SetGroupEpoch(sess.Epoch())

	var restored *elastic.State
	if sess.RestoreBatch() >= 0 {
		st, err := sess.LoadState()
		if err != nil {
			return err
		}
		restored = st
		if s.live {
			// Survivor: dedup bitsets stay live (replayed client frames
			// must still be judged duplicates), the buffers rewind through
			// the replay journal.
			s.rollbackIngest(st.Batch)
		} else if err := s.restoreIngest(st); err != nil {
			return err
		}
	}
	if s.live {
		// Any later epoch a live member enters is a re-formation — with a
		// rollback when a group checkpoint was committed, without one when
		// the failure hit before the first commit.
		rb := -1
		if restored != nil {
			rb = restored.Batch
		}
		s.metrics.RecordReform(sess.Epoch(), rb)
	}
	s.startAggs()
	s.live = true
	s.resyncReception()

	run := &elasticRun{s: s, sess: sess, pending: make(map[int]*boundaryShard)}
	tcfg := s.cfg.Trainer
	tcfg.Ranks = s.cfg.Ranks
	tcfg.Group = sess.Group()
	tcfg.Metrics = s.metrics
	tcfg.OnLocalBatchEnd = run.onLocalBatchEnd
	tr, err := core.NewTrainer(tcfg, s.bufs)
	if err != nil {
		return err
	}
	run.tr = tr
	s.trainerMu.Lock()
	s.trainer = tr
	s.trainerMu.Unlock()
	if restored != nil {
		if err := tr.RestoreState(restored.Weights, restored.OptState, restored.Batch, restored.Samples); err != nil {
			return err
		}
	}
	return tr.Run(ctx)
}

// resyncReception realigns each rank buffer's reception flag with the
// aggregator's ground truth at epoch start. An aborted epoch's teardown
// ends reception on every buffer — that is how a trainer blocked in
// GetBatchEach is woken so the member can re-form — but the flag is sticky
// and the buffers outlive the epoch: left set, the next epoch's trainer
// would drain the replayed samples and declare the schedule complete while
// clients are still streaming. Reception is over only when the aggregator
// has seen everything the rank will ever get.
func (s *Server) resyncReception() {
	for r, a := range s.aggs {
		a.mu.Lock()
		ended := a.ended
		a.mu.Unlock()
		if ended {
			s.bufs[r].EndReception()
		} else {
			s.bufs[r].ReopenReception()
		}
	}
}

// rollbackIngest rewinds every rank's buffer to a group-checkpoint batch:
// the samples consumed beyond it (replay journal) go back in front of the
// live contents, reconstructing the rank's exact sample stream, while
// newly arriving frames keep appending behind. Dedup state is untouched.
func (s *Server) rollbackIngest(batch int) {
	for r := range s.bufs {
		replay := s.journals[r].replayAndRewind(batch)
		s.bufs[r].ReplaceContents(func(seen, unseen []buffer.Sample) ([]buffer.Sample, []buffer.Sample) {
			return seen, append(replay, unseen...)
		})
	}
}

// restoreIngest loads a (re)starting process's own ingest state from its
// shard: dedup bitsets, goodbye accounting and buffer contents per local
// rank. Frames the cluster streamed while this member was down are gone —
// clients drop frames to dead ranks — so the restore resumes from exactly
// what the member had durably captured.
func (s *Server) restoreIngest(st *elastic.State) error {
	if len(st.App) == 0 {
		return nil // absent at the checkpoint: adopt weights only, ingest fresh
	}
	var app elasticAppState
	if err := gob.NewDecoder(bytes.NewReader(st.App)).Decode(&app); err != nil {
		return fmt.Errorf("server: decoding elastic ingest state: %w", err)
	}
	if len(app.Sims) != s.cfg.Ranks {
		return fmt.Errorf("server: elastic ingest state has %d ranks, config has %d", len(app.Sims), s.cfg.Ranks)
	}
	for r, m := range app.Sims {
		a := s.aggs[r]
		a.mu.Lock()
		a.sims = make(map[int32]*SimState, len(m))
		a.goodbyes = 0
		for id, sim := range m {
			cp := sim
			cp.Steps = clampSteps(cp.Steps)
			a.sims[id] = &cp
			if cp.Goodbye {
				a.goodbyes++
			}
		}
		a.mu.Unlock()
	}
	for r := range s.bufs {
		seen, unseen := app.BufSeen[r], app.BufUnseen[r]
		s.bufs[r].ReplaceContents(func(curSeen, curUnseen []buffer.Sample) ([]buffer.Sample, []buffer.Sample) {
			// Aggregators have not started on a fresh process, so the
			// current contents are empty; keep them anyway for safety.
			return append(seen, curSeen...), append(unseen, curUnseen...)
		})
		s.journals[r].mark(st.Batch)
		a := s.aggs[r]
		a.mu.Lock()
		done := s.receptionComplete(a)
		a.mu.Unlock()
		if done {
			s.bufs[r].EndReception()
		}
	}
	return nil
}

// onLocalBatchEnd fires on every local rank after each synchronized step.
// At group-checkpoint boundaries each rank captures its own ingest state
// at its own step edge (ranks may be one batch apart in wall time, never
// more); the last to arrive writes the member's shard.
func (run *elasticRun) onLocalBatchEnd(rank, batches int) {
	s := run.s
	if every := s.cfg.CheckpointEveryBatches; batches%every == 0 {
		s.journals[rank].mark(batches)
		sims := s.captureSims(rank)
		var seen, unseen []buffer.Sample
		s.bufs[rank].WithLock(func(p buffer.Policy) {
			if snap, ok := p.(buffer.Snapshotter); ok {
				seen, unseen = snap.Snapshot()
			}
		})

		run.mu.Lock()
		b, ok := run.pending[batches]
		if !ok {
			b = &boundaryShard{app: elasticAppState{
				Sims:      make([]map[int32]SimState, s.cfg.Ranks),
				BufSeen:   make([][]buffer.Sample, s.cfg.Ranks),
				BufUnseen: make([][]buffer.Sample, s.cfg.Ranks),
			}}
			run.pending[batches] = b
		}
		b.app.Sims[rank] = sims
		b.app.BufSeen[rank], b.app.BufUnseen[rank] = seen, unseen
		b.arrived++
		last := b.arrived == s.cfg.Ranks
		if last {
			delete(run.pending, batches)
		}
		run.mu.Unlock()

		if last {
			run.writeShard(rank, batches, &b.app)
		}
	}
	if hook := s.cfg.Elastic.OnBoundary; hook != nil {
		hook(run.sess.Epoch(), rank, batches)
	}
}

// writeShard assembles and reports the member's shard at a boundary. A
// failed save means the control plane is tearing the epoch down; the group
// checkpoint protocol tolerates the missing shard.
func (run *elasticRun) writeShard(rank, batches int, app *elasticAppState) {
	w, o, err := run.tr.CaptureState()
	if err != nil {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(app); err != nil {
		return
	}
	run.sess.SaveShard(&elastic.State{
		Batch:    batches,
		Samples:  run.tr.LocalSamples(rank),
		Weights:  w,
		OptState: o,
		App:      buf.Bytes(),
	})
}

// captureSims deep-copies one rank's sim accounting under its shard lock.
func (s *Server) captureSims(rank int) map[int32]SimState {
	a := s.aggs[rank]
	a.mu.Lock()
	defer a.mu.Unlock()
	cp := make(map[int32]SimState, len(a.sims))
	for id, st := range a.sims {
		c := *st
		c.Seen = append([]uint64(nil), st.Seen...)
		cp[id] = c
	}
	return cp
}

// ElasticMember exposes the underlying membership runtime (nil outside
// elastic mode); tests use it to kill a member the way a process death
// would.
func (s *Server) ElasticMember() *elastic.Member { return s.member }
