package server

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"net"
	"sync"
	"testing"

	"melissa/internal/buffer"
	"melissa/internal/protocol"
	"melissa/internal/transport"
)

// ingestHarness is a one-rank server core without listeners or trainer:
// just the sharded aggregator state and an arena-backed buffer, so the
// ingestion hot path can be driven directly.
func ingestHarness(p buffer.Policy, inDim, outDim int) (*Server, *buffer.Blocking) {
	bb := buffer.NewBlockingArena(p, inDim, outDim)
	s := &Server{
		cfg:        Config{ExpectedClients: 1},
		worldRanks: 1,
		aggs:       []*rankAgg{newRankAgg(0)},
		bufs:       []*buffer.Blocking{bb},
	}
	return s, bb
}

// TestIngestZeroAllocSteadyState is the acceptance gate for the zero-copy
// pipeline: decoding a TimeStep frame, deduplicating it against the rank's
// bitset log, storing it into the arena-backed buffer, recycling the
// lease, and extracting it for a batch must perform zero steady-state heap
// allocations.
func TestIngestZeroAllocSteadyState(t *testing.T) {
	const inDim, outDim = 7, 256
	const warmup, measured = 256, 1000
	const total = warmup + 2*measured + 16

	s, bb := ingestHarness(buffer.NewFIFO(512), inDim, outDim)
	a := s.aggs[0]
	st := a.sim(1)
	st.Steps = total
	st.presizeSeen(total) // what a Hello does on the live server

	// Pre-encode the whole stream of distinct steps.
	var stream bytes.Buffer
	msg := protocol.TimeStep{SimID: 1, Input: make([]float32, inDim), Field: make([]float32, outDim)}
	for step := int32(1); step <= total; step++ {
		msg.Step = step
		if err := protocol.Write(&stream, msg); err != nil {
			t.Fatal(err)
		}
	}
	rd := protocol.NewReader(bytes.NewReader(stream.Bytes()))
	discard := func(int, buffer.Sample) {}
	iter := func() {
		m, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		s.ingestTimeStep(0, m.(*protocol.TimeStep))
		bb.GetBatchEach(1, discard)
	}
	for i := 0; i < warmup; i++ {
		iter()
	}
	if avg := testing.AllocsPerRun(measured, iter); avg != 0 {
		t.Fatalf("server-side ingestion allocates %.3f allocs/op, want 0", avg)
	}
}

// TestIngestDedupBitset pins the bitset message log against the replay
// scenario the map-based log used to cover: duplicates are dropped and
// recycled, fresh steps stored.
func TestIngestDedupBitset(t *testing.T) {
	const inDim, outDim = 2, 3
	s, bb := ingestHarness(buffer.NewFIFO(0), inDim, outDim)
	in := make([]float32, inDim)
	out := make([]float32, outDim)
	send := func(step int32) {
		ts := protocol.LeaseTimeStep()
		ts.SimID, ts.Step = 7, step
		ts.Input = append(ts.Input[:0], in...)
		ts.Field = append(ts.Field[:0], out...)
		s.ingestTimeStep(0, ts)
	}
	for _, step := range []int32{1, 2, 3, 2, 1, 4, 4, 100000} {
		send(step)
	}
	if got := bb.Len(); got != 5 {
		t.Fatalf("stored %d samples, want 5 (duplicates must be dropped)", got)
	}
	if got := s.receivedOnRank(0); got != 5 {
		t.Fatalf("received counter %d, want 5", got)
	}
}

// TestIngestRejectsCorruptSteps pins the bitset-growth bound: a frame
// whose Step lies outside the Hello-declared trajectory (or past the
// untracked-sim cap) must be dropped without growing the dedup log — the
// wire Step is attacker-controlled and must not size an allocation.
func TestIngestRejectsCorruptSteps(t *testing.T) {
	st := &SimState{}
	st.Steps = 100
	st.presizeSeen(100)
	words := len(st.Seen)
	if st.markSeen(101) || st.markSeen(1<<30) {
		t.Fatal("steps beyond the declared trajectory must be rejected")
	}
	if len(st.Seen) != words {
		t.Fatalf("rejected step grew the bitset to %d words", len(st.Seen))
	}
	if !st.markSeen(100) || !st.markSeen(1) {
		t.Fatal("in-range steps must be accepted")
	}

	// No Hello yet: grow on demand, but only within the tight provisional
	// window — a fresh SimID must not be able to pin a full-size bitset
	// with one frame.
	unknown := &SimState{}
	if !unknown.markSeen(100000) {
		t.Fatal("untracked sim must accept plausible steps")
	}
	if unknown.markSeen(maxUntrackedStep + 1) {
		t.Fatal("untracked sim must reject steps past the provisional cap")
	}

	// A lying Hello.Steps must not size the presized bitset either: the
	// declaration is clamped, so the log stays bounded and reception
	// accounting (which uses the same clamped value) can still complete.
	lying := &SimState{Steps: clampSteps(1 << 30)}
	lying.presizeSeen(lying.Steps)
	if maxWords := maxTrackedStep>>6 + 1; len(lying.Seen) > maxWords {
		t.Fatalf("presized bitset has %d words, cap is %d", len(lying.Seen), maxWords)
	}
	if !lying.markSeen(maxTrackedStep) {
		t.Fatal("steps within the cap must still be accepted")
	}
}

// --- End-to-end ingestion benchmark: synthetic clients over loopback TCP.
//
// BenchmarkIngestPooled measures the production path end to end: clients
// frame with AppendEncode into pre-built chunks and write few syscalls →
// transport.RankListener (pooled protocol.Reader, leased TimeSteps) →
// sharded bitset dedup → arena PutCopy → GetBatchEach batch extraction.
// BenchmarkIngestLegacy reproduces the pre-PR pipeline on the same wire
// format, faithfully re-implemented below from the seed code: per-float
// encode with two allocations per frame, one unbuffered write syscall per
// message, allocating per-float decode, map[Key]bool dedup under one
// mutex, heap samples, GetBatchInto. The ratio of their samples/s is the
// PR's ingestion speedup (BENCH_PR5.json).

// legacyEncodeTimeStep reproduces the seed protocol.Encode for TimeStep:
// a payload buffer built with per-float appends, then copied into a second
// frame allocation.
func legacyEncodeTimeStep(m protocol.TimeStep) []byte {
	appendU32 := func(buf []byte, v uint32) []byte {
		return binary.LittleEndian.AppendUint32(buf, v)
	}
	appendF32s := func(buf []byte, vals []float32) []byte {
		buf = appendU32(buf, uint32(len(vals)))
		for _, v := range vals {
			buf = appendU32(buf, math.Float32bits(v))
		}
		return buf
	}
	payload := make([]byte, 0, 64)
	payload = appendU32(payload, uint32(m.SimID))
	payload = appendU32(payload, uint32(m.Step))
	payload = appendF32s(payload, m.Input)
	payload = appendF32s(payload, m.Field)
	frame := make([]byte, 0, len(payload)+5)
	frame = appendU32(frame, uint32(len(payload)+1))
	frame = append(frame, byte(protocol.TypeTimeStep))
	frame = append(frame, payload...)
	return frame
}

// legacyReadTimeStep reproduces the seed protocol.Read: allocate the frame
// body, then decode each float vector element by element into fresh
// slices.
func legacyReadTimeStep(r io.Reader) (protocol.TimeStep, error) {
	var ts protocol.TimeStep
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return ts, err
	}
	size := binary.LittleEndian.Uint32(lenBuf[:])
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return ts, err
	}
	buf := body[1:]
	u32 := func() uint32 {
		v := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		return v
	}
	f32s := func() []float32 {
		n := u32()
		out := make([]float32, n)
		for i := range out {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		buf = buf[4*n:]
		return out
	}
	ts.SimID = int32(u32())
	ts.Step = int32(u32())
	ts.Input = f32s()
	ts.Field = f32s()
	return ts, nil
}

const (
	benchInDim   = 7
	benchOutDim  = 1024 // 32×32 heat field
	benchClients = 4
	benchCap     = 6000 // paper's buffer capacity
	benchBatch   = 10
)

// benchFrame pre-encodes a TimeStep frame template for sim and returns it
// with the byte offset of the Step field.
func benchFrame(sim int32) (frame []byte, stepOff int) {
	ts := protocol.TimeStep{
		SimID: sim,
		Step:  0,
		Input: make([]float32, benchInDim),
		Field: make([]float32, benchOutDim),
	}
	for i := range ts.Field {
		ts.Field[i] = float32(i)
	}
	// Frame layout: len u32 | type u8 | simID u32 | step u32 | …
	return protocol.Encode(ts), 9
}

// runBenchClients streams stepsPerClient unique steps per client over its
// own TCP connection the production way: AppendEncode into a recycled
// chunk buffer, one flush point (write syscall) per 32 frames.
func runBenchClients(b *testing.B, addr string, stepsPerClient int, start <-chan struct{}, wg *sync.WaitGroup) {
	b.Helper()
	for c := 0; c < benchClients; c++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		// Announce the trajectory so the pooled server presizes bitsets.
		hello := protocol.Encode(protocol.Hello{ClientID: int32(c), SimID: int32(c), Steps: int32(stepsPerClient)})
		if _, err := conn.Write(hello); err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func(c int, conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			ts := protocol.TimeStep{
				SimID: int32(c),
				Input: make([]float32, benchInDim),
				Field: make([]float32, benchOutDim),
			}
			for i := range ts.Field {
				ts.Field[i] = float32(i)
			}
			msg := protocol.Message(&ts) // box once
			const chunkFrames = 32
			frame, _ := benchFrame(int32(c))
			chunk := make([]byte, 0, chunkFrames*len(frame))
			<-start
			for step := 1; step <= stepsPerClient; step++ {
				ts.Step = int32(step)
				chunk = protocol.AppendEncode(chunk, msg)
				if len(chunk)+len(frame) > cap(chunk) || step == stepsPerClient {
					if _, err := conn.Write(chunk); err != nil {
						return // benchmark shut the server down early
					}
					chunk = chunk[:0]
				}
			}
		}(c, conn)
	}
}

// runLegacyBenchClients streams the same trajectories the pre-PR way: a
// fresh two-allocation per-float encode and one unbuffered write syscall
// per message.
func runLegacyBenchClients(b *testing.B, addr string, stepsPerClient int, start <-chan struct{}, wg *sync.WaitGroup) {
	b.Helper()
	for c := 0; c < benchClients; c++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func(c int, conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			ts := protocol.TimeStep{
				SimID: int32(c),
				Input: make([]float32, benchInDim),
				Field: make([]float32, benchOutDim),
			}
			for i := range ts.Field {
				ts.Field[i] = float32(i)
			}
			<-start
			for step := 1; step <= stepsPerClient; step++ {
				ts.Step = int32(step)
				if _, err := conn.Write(legacyEncodeTimeStep(ts)); err != nil {
					return
				}
			}
		}(c, conn)
	}
}

func BenchmarkIngestPooled(b *testing.B) {
	stepsPerClient := (b.N + benchClients - 1) / benchClients
	s, bb := ingestHarness(buffer.NewFIFO(benchCap), benchInDim, benchOutDim)
	s.cfg.ExpectedClients = benchClients

	l, err := transport.Listen("127.0.0.1:0", 4096)
	if err != nil {
		b.Fatal(err)
	}

	// Trainer stand-in: drain batches until the buffer is done.
	var consumerWG sync.WaitGroup
	consumerWG.Add(1)
	discard := func(int, buffer.Sample) {}
	go func() {
		defer consumerWG.Done()
		for {
			if _, ok := bb.GetBatchEach(benchBatch, discard); !ok {
				return
			}
		}
	}()

	start := make(chan struct{})
	var clientWG sync.WaitGroup
	runBenchClients(b, l.Addr(), stepsPerClient, start, &clientWG)

	frame, _ := benchFrame(0)
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	close(start)

	received := 0
	a := s.aggs[0]
	for env := range l.Incoming() {
		switch m := env.Msg.(type) {
		case protocol.Hello:
			a.mu.Lock()
			st := a.sim(m.SimID)
			st.ClientID = m.ClientID
			st.Steps = m.Steps
			st.presizeSeen(m.Steps)
			a.mu.Unlock()
		case *protocol.TimeStep:
			s.ingestTimeStep(0, m)
			received++
		}
		if received >= b.N {
			break
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/s")

	bb.EndReception()
	go func() { // release readers blocked on the envelope queue
		for range l.Incoming() {
		}
	}()
	l.Close()
	clientWG.Wait()
	consumerWG.Wait()
}

func BenchmarkIngestLegacy(b *testing.B) {
	stepsPerClient := (b.N + benchClients - 1) / benchClients
	bb := buffer.NewBlocking(buffer.NewFIFO(benchCap))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}

	// Pre-PR receive path: one allocating per-float decode per message
	// into a shared envelope channel.
	msgs := make(chan protocol.TimeStep, 4096)
	var readerWG sync.WaitGroup
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			readerWG.Add(1)
			go func(conn net.Conn) {
				defer readerWG.Done()
				defer conn.Close()
				for {
					m, err := legacyReadTimeStep(conn)
					if err != nil {
						return
					}
					msgs <- m
				}
			}(conn)
		}
	}()

	var consumerWG sync.WaitGroup
	consumerWG.Add(1)
	go func() {
		defer consumerWG.Done()
		batch := make([]buffer.Sample, 0, benchBatch)
		for {
			got, ok := bb.GetBatchInto(batch, benchBatch)
			if !ok {
				return
			}
			batch = got[:0]
		}
	}()

	start := make(chan struct{})
	var clientWG sync.WaitGroup
	runLegacyBenchClients(b, ln.Addr().String(), stepsPerClient, start, &clientWG)

	frame, _ := benchFrame(0)
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	close(start)

	// Pre-PR aggregator: global-mutex map dedup, heap samples.
	var mu sync.Mutex
	seen := make(map[buffer.Key]bool)
	received := 0
	for ts := range msgs {
		key := buffer.Key{SimID: int(ts.SimID), Step: int(ts.Step)}
		mu.Lock()
		dup := seen[key]
		if !dup {
			seen[key] = true
		}
		mu.Unlock()
		if !dup {
			bb.Put(buffer.Sample{SimID: int(ts.SimID), Step: int(ts.Step), Input: ts.Input, Output: ts.Field})
			received++
		}
		if received >= b.N {
			break
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/s")

	bb.EndReception()
	ln.Close()
	go func() { // release readers blocked on the channel
		for range msgs {
		}
	}()
	clientWG.Wait()
	readerWG.Wait()
	consumerWG.Wait()
}
