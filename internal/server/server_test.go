package server

import (
	"context"
	"encoding/gob"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"melissa/internal/buffer"
	"melissa/internal/client"
	"melissa/internal/core"
	"melissa/internal/opt"
	"melissa/internal/protocol"
	"melissa/internal/solver"
)

const (
	testGridN  = 6
	testSteps  = 8
	testDt     = 0.01
	testNField = testGridN * testGridN
)

func testSolverConfig() solver.Config {
	return solver.Config{N: testGridN, Steps: testSteps, Dt: testDt}
}

func testParams(i int) solver.Params {
	return solver.Params{
		TIC: 100 + float64(i*37%400),
		Tx1: 150 + float64(i*61%300),
		Tx2: 200 + float64(i*13%300),
		Ty1: 250 + float64(i*29%200),
		Ty2: 300 + float64(i*47%200),
	}
}

func testConfig(ranks, expectedClients int, kind buffer.Kind) Config {
	norm := core.NewHeatNormalizer(testNField, float64(testSteps)*testDt)
	return Config{
		Ranks:           ranks,
		Buffer:          buffer.Config{Kind: kind, Capacity: 500, Threshold: 2, Seed: 42},
		ExpectedClients: expectedClients,
		Trainer: core.TrainerConfig{
			BatchSize:        4,
			Model:            core.ModelSpec{InputDim: norm.InputDim(), Hidden: []int{16}, OutputDim: norm.OutputDim(), Seed: 7},
			Normalizer:       norm,
			LearningRate:     1e-3,
			Schedule:         opt.Constant(1e-3),
			TrackOccurrences: true,
		},
	}
}

// runServer starts srv.Run in the background and returns a wait function.
func runServer(t *testing.T, srv *Server, ctx context.Context) func() error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	return func() error {
		select {
		case err := <-done:
			return err
		case <-time.After(60 * time.Second):
			t.Fatal("server did not terminate")
			return nil
		}
	}
}

func runClient(t *testing.T, srv *Server, simID, restart, failAt int) error {
	t.Helper()
	job := client.HeatJob{
		Client: client.Config{
			ClientID:    simID,
			SimID:       simID,
			ServerAddrs: srv.Addrs(),
			Restart:     restart,
		},
		Solver:     testSolverConfig(),
		Params:     testParams(simID),
		FailAtStep: failAt,
	}
	return client.RunHeat(context.Background(), job)
}

func TestEndToEndSingleRank(t *testing.T) {
	srv, err := New(testConfig(1, 3, buffer.FIFOKind))
	if err != nil {
		t.Fatal(err)
	}
	wait := runServer(t, srv, context.Background())

	for sim := 0; sim < 3; sim++ {
		if err := runClient(t, srv, sim, 0, 0); err != nil {
			t.Fatalf("client %d: %v", sim, err)
		}
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}

	m := srv.Metrics()
	if got := m.Samples(); got != 3*testSteps {
		t.Fatalf("trained samples %d, want %d", got, 3*testSteps)
	}
	occ := m.Occurrences()
	if len(occ) != 3*testSteps {
		t.Fatalf("unique samples %d, want %d", len(occ), 3*testSteps)
	}
	for k, c := range occ {
		if c != 1 { // FIFO: every sample exactly once
			t.Fatalf("sample %v trained %d times", k, c)
		}
	}
}

func TestEndToEndMultiRankConcurrentClients(t *testing.T) {
	const ranks = 2
	const clients = 4
	srv, err := New(testConfig(ranks, clients, buffer.ReservoirKind))
	if err != nil {
		t.Fatal(err)
	}
	wait := runServer(t, srv, context.Background())

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for sim := 0; sim < clients; sim++ {
		wg.Add(1)
		go func(sim int) {
			defer wg.Done()
			errs[sim] = runClient(t, srv, sim, 0, 0)
		}(sim)
	}
	wg.Wait()
	for sim, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", sim, err)
		}
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}

	m := srv.Metrics()
	// The Reservoir may repeat samples, but every produced sample must be
	// trained on at least once.
	occ := m.Occurrences()
	if len(occ) != clients*testSteps {
		t.Fatalf("unique samples %d, want %d", len(occ), clients*testSteps)
	}
	if m.Samples() < clients*testSteps {
		t.Fatalf("samples %d below unique count", m.Samples())
	}
	if m.Batches() == 0 {
		t.Fatal("no batches trained")
	}
}

func TestRoundRobinReachesAllRanks(t *testing.T) {
	const ranks = 3
	srv, err := New(testConfig(ranks, 1, buffer.FIFOKind))
	if err != nil {
		t.Fatal(err)
	}
	wait := runServer(t, srv, context.Background())
	if err := runClient(t, srv, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	// Each rank's message log must hold its round-robin share.
	total := 0
	for r := 0; r < ranks; r++ {
		n := srv.receivedOnRank(r)
		if n == 0 {
			t.Fatalf("rank %d received nothing", r)
		}
		total += n
	}
	if total != testSteps {
		t.Fatalf("total received %d, want %d", total, testSteps)
	}
}

// TestClientRestartDeduplication reproduces the paper's fault-tolerance
// protocol: a client fails mid-run, is restarted, and replays its steps;
// the server's message log must discard the duplicates so no time step is
// trained twice (FIFO ⇒ exactly-once).
func TestClientRestartDeduplication(t *testing.T) {
	srv, err := New(testConfig(1, 1, buffer.FIFOKind))
	if err != nil {
		t.Fatal(err)
	}
	wait := runServer(t, srv, context.Background())

	// First attempt dies after 5 of 8 steps (no Goodbye).
	if err := runClient(t, srv, 0, 0, 5); err == nil {
		t.Fatal("expected injected failure")
	}
	// Restart replays steps 1-5 and completes 6-8.
	if err := runClient(t, srv, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}

	occ := srv.Metrics().Occurrences()
	if len(occ) != testSteps {
		t.Fatalf("unique samples %d, want %d", len(occ), testSteps)
	}
	for k, c := range occ {
		if c != 1 {
			t.Fatalf("sample %v trained %d times; dedup failed", k, c)
		}
	}
}

// TestClientRestartWithCheckpoint verifies the client-side checkpoint path:
// the restarted client resumes from the saved field instead of step 0 and
// the server still assembles the complete trajectory.
func TestClientRestartWithCheckpoint(t *testing.T) {
	srv, err := New(testConfig(1, 1, buffer.FIFOKind))
	if err != nil {
		t.Fatal(err)
	}
	wait := runServer(t, srv, context.Background())

	ck := &client.FileCheckpointer{Dir: t.TempDir()}
	job := client.HeatJob{
		Client:     client.Config{ClientID: 0, SimID: 0, ServerAddrs: srv.Addrs()},
		Solver:     testSolverConfig(),
		Params:     testParams(0),
		Checkpoint: ck,
		FailAtStep: 4,
	}
	if err := client.RunHeat(context.Background(), job); err == nil {
		t.Fatal("expected injected failure")
	}
	step, _, err := ck.Load(0)
	if err != nil || step != 4 {
		t.Fatalf("checkpoint step %d err %v, want 4", step, err)
	}
	job.FailAtStep = 0
	job.Client.Restart = 1
	if err := client.RunHeat(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	occ := srv.Metrics().Occurrences()
	if len(occ) != testSteps {
		t.Fatalf("unique samples %d, want %d", len(occ), testSteps)
	}
}

func TestWatchdogReportsSilentClient(t *testing.T) {
	cfg := testConfig(1, 1, buffer.FIFOKind)
	cfg.WatchdogTimeout = 100 * time.Millisecond
	var reported atomic.Int32
	reported.Store(-1)
	cfg.OnUnresponsive = func(id int32) { reported.Store(id) }
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wait := runServer(t, srv, context.Background())

	// A client that says hello and then goes silent.
	api, err := client.InitCommunication(client.Config{ClientID: 9, SimID: 9, ServerAddrs: srv.Addrs()}, testSteps)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reported.Load() != 9 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never reported the silent client")
		}
		time.Sleep(10 * time.Millisecond)
	}
	api.Abort()

	// Complete the ensemble so the server terminates cleanly.
	if err := runClient(t, srv, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
}

// TestWatchdogClampAndIdempotentFire drives the unresponsive-client sweep
// against a fake clock: a pathologically small timeout is clamped to the
// floor, a client whose stale heartbeat re-registers it after its expiry
// was reported does not fire OnUnresponsive a second time, and a Hello
// (the restarted replacement connecting) re-arms the report.
func TestWatchdogClampAndIdempotentFire(t *testing.T) {
	cfg := testConfig(1, 1, buffer.FIFOKind)
	cfg.WatchdogTimeout = time.Microsecond // unit mixup: must clamp, not honor
	var fired []int32
	cfg.OnUnresponsive = func(id int32) { fired = append(fired, id) }
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.cfg.WatchdogTimeout; got != MinWatchdogTimeout {
		t.Fatalf("watchdog timeout %v, want clamped to %v", got, MinWatchdogTimeout)
	}

	now := time.Unix(0, 0)
	srv.watchdog.SetClock(func() time.Time { return now })
	expire := func() {
		now = now.Add(srv.cfg.WatchdogTimeout + time.Millisecond)
		srv.sweepUnresponsive()
	}

	const id = int32(7)
	srv.watchdog.Beat(id)
	expire()
	if len(fired) != 1 || fired[0] != id {
		t.Fatalf("after first expiry fired=%v, want [%d]", fired, id)
	}

	// A late packet from the half-dead client re-registers it; the next
	// expiry is the same episode and must not be reported again.
	srv.watchdog.Beat(id)
	expire()
	if len(fired) != 1 {
		t.Fatalf("same-episode expiry re-fired: %v", fired)
	}

	// The restarted replacement says Hello: the gate re-arms, and a fresh
	// silence is a new episode.
	srv.clientReconnected(id)
	srv.watchdog.Beat(id)
	expire()
	if len(fired) != 2 {
		t.Fatalf("post-reconnect expiry not reported: %v", fired)
	}
}

// TestServerCheckpointRestart kills a server mid-run and restores a fresh
// instance from its checkpoint: training counters resume, already-received
// steps are deduplicated, and the union of trained samples covers the whole
// ensemble.
func TestServerCheckpointRestart(t *testing.T) {
	ckPath := filepath.Join(t.TempDir(), "server.ckpt")

	cfg := testConfig(1, 2, buffer.FIFOKind)
	cfg.CheckpointPath = ckPath
	cfg.CheckpointEveryBatches = 1
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	wait1 := runServer(t, srv1, ctx1)

	// Sim 0 completes; sim 1 dies halfway (no Goodbye).
	if err := runClient(t, srv1, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := runClient(t, srv1, 1, 0, 4); err == nil {
		t.Fatal("expected injected failure")
	}
	// Let the trainer drain what it has, then kill the server.
	time.Sleep(200 * time.Millisecond)
	cancel1()
	if err := wait1(); err != nil {
		t.Fatal(err)
	}
	occ1 := srv1.Metrics().Occurrences()
	if len(occ1) == 0 {
		t.Fatal("first instance trained nothing")
	}

	// Replacement server restores the checkpoint.
	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.RestoreCheckpoint(ckPath); err != nil {
		t.Fatal(err)
	}
	if srv2.Metrics().Batches() == 0 {
		t.Fatal("restored batch counter is zero")
	}
	if done := srv2.CompletedSims(); !done[0] || done[1] {
		t.Fatalf("restored goodbyes wrong: %v", done)
	}
	wait2 := runServer(t, srv2, context.Background())

	// The launcher would restart only the incomplete client (sim 1).
	if err := runClient(t, srv2, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := wait2(); err != nil {
		t.Fatal(err)
	}

	// Union of both instances' trained samples covers the full ensemble.
	union := map[buffer.Key]bool{}
	for k := range occ1 {
		union[k] = true
	}
	for k := range srv2.Metrics().Occurrences() {
		union[k] = true
	}
	if len(union) != 2*testSteps {
		t.Fatalf("union covers %d samples, want %d", len(union), 2*testSteps)
	}
}

// TestRestoreLegacyCheckpointMigratesSeen writes a checkpoint in the
// pre-bitset on-disk shape (dedup log as per-rank map[Key]bool, SimState
// without the Seen bitset) and restores it: the legacy log must fold into
// the per-sim bitsets so replayed steps are still discarded.
func TestRestoreLegacyCheckpointMigratesSeen(t *testing.T) {
	cfg := testConfig(1, 1, buffer.FIFOKind)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	weights, optState, err := srv.Trainer().CaptureState()
	if err != nil {
		t.Fatal(err)
	}

	type legacySimState struct {
		ClientID int32
		Steps    int32
		Received int32
		Goodbye  bool
	}
	type legacyCheckpoint struct {
		Ranks   int
		Batches int
		Samples int

		Weights  []byte
		OptState []byte

		Seen []map[buffer.Key]bool
		Sims []map[int32]legacySimState

		BufSeen   [][]buffer.Sample
		BufUnseen [][]buffer.Sample
	}
	legacy := legacyCheckpoint{
		Ranks:    1,
		Batches:  3,
		Samples:  12,
		Weights:  weights,
		OptState: optState,
		Seen: []map[buffer.Key]bool{{
			{SimID: 0, Step: 1}: true,
			{SimID: 0, Step: 2}: true,
			{SimID: 0, Step: 3}: true,
		}},
		Sims: []map[int32]legacySimState{{
			0: {ClientID: 0, Steps: testSteps, Received: 3},
		}},
		BufSeen:   make([][]buffer.Sample, 1),
		BufUnseen: make([][]buffer.Sample, 1),
	}
	path := filepath.Join(t.TempDir(), "legacy.ckpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(f).Encode(&legacy); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if err := srv.RestoreCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if got := srv.Metrics().Batches(); got != 3 {
		t.Fatalf("restored batches %d, want 3", got)
	}
	// Replays of the logged steps must be dropped; a fresh step stored.
	send := func(step int32) {
		ts := protocol.LeaseTimeStep()
		ts.SimID, ts.Step = 0, step
		ts.Input = append(ts.Input[:0], make([]float32, cfg.Trainer.Normalizer.InputDim())...)
		ts.Field = append(ts.Field[:0], make([]float32, cfg.Trainer.Normalizer.OutputDim())...)
		srv.ingestTimeStep(0, ts)
	}
	for _, step := range []int32{1, 2, 3, 4} {
		send(step)
	}
	if got := srv.bufs[0].Len(); got != 1 {
		t.Fatalf("buffer holds %d samples, want 1 (steps 1-3 are replays)", got)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := testConfig(0, 1, buffer.FIFOKind)
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for ranks=0")
	}
	cfg = testConfig(1, 0, buffer.FIFOKind)
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for ExpectedClients=0")
	}
	cfg = testConfig(1, 1, "bogus")
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for unknown buffer kind")
	}
}
