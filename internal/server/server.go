// Package server implements the Melissa training server (§3.1): per rank,
// a data-aggregator goroutine receives time steps from ensemble clients
// over the transport and stores them in the rank's training buffer, while
// a training goroutine (internal/core) extracts batches and performs
// data-parallel gradient descent. The server also provides the paper's
// fault-tolerance features: a per-client message log that discards
// replayed time steps after client restarts, a liveness watchdog that
// reports unresponsive clients to the launcher, and periodic checkpoints
// from which a replacement server instance resumes training.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"melissa/internal/buffer"
	"melissa/internal/core"
	"melissa/internal/ddp"
	"melissa/internal/protocol"
	"melissa/internal/transport"
)

// Config assembles a server.
type Config struct {
	// Ranks is the number of training ranks ("GPUs") hosted by this
	// process; each gets its own listener, aggregator, and training
	// buffer.
	Ranks int

	// Comm, when set, carries the gradient collectives for a multi-process
	// training group (e.g. a ddp.TCPComm connecting several server
	// processes over a rank ring). Nil trains with the in-process channel
	// ring over Ranks. With a communicator, Ranks counts only this
	// process's local ranks and RankOffset places them in the global rank
	// space [0, Comm.Size()); the round-robin data distribution and the
	// reception accounting then run on global ranks.
	Comm ddp.Communicator
	// RankOffset is the global rank of this process's local rank 0.
	RankOffset int
	// ListenHost is the host for rank listeners; tests use "127.0.0.1:0"
	// semantics: each rank listens on ListenHost with an ephemeral port.
	ListenHost string
	// QueueLen sizes each rank's transport ingest queue.
	QueueLen int

	// Buffer configures the per-rank training buffer; the seed is offset
	// by rank so replicas draw independent streams.
	Buffer buffer.Config

	// Trainer carries the model, batch size, schedule and validation
	// configuration. Ranks is overridden by Config.Ranks.
	Trainer core.TrainerConfig

	// ExpectedClients is the ensemble size: after a Goodbye from this many
	// distinct simulations, a rank ends reception on its buffer.
	ExpectedClients int

	// WatchdogTimeout bounds client silence before the launcher is told to
	// restart it; 0 disables the watchdog.
	WatchdogTimeout time.Duration
	// OnUnresponsive is invoked (from a server goroutine) with the IDs of
	// clients the watchdog expired.
	OnUnresponsive func(clientID int32)

	// CheckpointPath enables periodic checkpoints when non-empty.
	CheckpointPath string
	// CheckpointEveryBatches is the checkpoint cadence (default 500).
	CheckpointEveryBatches int
}

func (c Config) withDefaults() Config {
	if c.ListenHost == "" {
		c.ListenHost = "127.0.0.1:0"
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 4096
	}
	if c.CheckpointEveryBatches <= 0 {
		c.CheckpointEveryBatches = 500
	}
	return c
}

// Server is a live training server.
type Server struct {
	cfg        Config
	worldRanks int // total training ranks across all server processes
	listeners  []*transport.RankListener
	bufs       []*buffer.Blocking
	policies   []buffer.Policy
	trainer    *core.Trainer
	watchdog   *transport.Watchdog

	mu    sync.Mutex
	seen  []map[buffer.Key]bool // per-rank message log for dedup
	sims  []map[int32]*SimState // per-rank ensemble-member accounting
	ended []bool                // per-rank EndReception issued

	aggWG sync.WaitGroup
}

// SimState tracks one ensemble member on one rank: its owner client, the
// declared trajectory length (from Hello), how many distinct steps this
// rank has received, and whether a Goodbye arrived. Reception ends on a
// rank only when every completed simulation has delivered this rank's full
// round-robin share — which makes termination robust to a restarted
// client's Goodbye racing ahead of the failed client's in-flight data on
// another connection.
type SimState struct {
	ClientID int32
	Steps    int32
	Received int32
	Goodbye  bool
}

// New builds the server and starts its listeners. Training does not start
// until Run.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("server: ranks=%d must be ≥ 1", cfg.Ranks)
	}
	if cfg.ExpectedClients < 1 {
		return nil, errors.New("server: ExpectedClients must be ≥ 1")
	}
	world := cfg.Ranks
	if cfg.Comm != nil {
		world = cfg.Comm.Size()
		if cfg.RankOffset < 0 || cfg.RankOffset+cfg.Ranks > world {
			return nil, fmt.Errorf("server: local ranks [%d,%d) exceed communicator size %d",
				cfg.RankOffset, cfg.RankOffset+cfg.Ranks, world)
		}
		if sr, ok := cfg.Comm.(ddp.SingleRank); ok && cfg.Ranks != 1 {
			return nil, fmt.Errorf("server: communicator serves only rank %d; Ranks must be 1, got %d", sr.Rank(), cfg.Ranks)
		}
	}
	s := &Server{
		cfg:        cfg,
		worldRanks: world,
		seen:       make([]map[buffer.Key]bool, cfg.Ranks),
		sims:       make([]map[int32]*SimState, cfg.Ranks),
		ended:      make([]bool, cfg.Ranks),
	}
	if cfg.WatchdogTimeout > 0 {
		s.watchdog = transport.NewWatchdog(cfg.WatchdogTimeout)
	}
	for r := 0; r < cfg.Ranks; r++ {
		s.seen[r] = make(map[buffer.Key]bool)
		s.sims[r] = make(map[int32]*SimState)

		bcfg := cfg.Buffer
		bcfg.Seed += uint64(cfg.RankOffset+r) * 1000003 // distinct stream per global rank
		p, err := buffer.New(bcfg)
		if err != nil {
			s.closeListeners()
			return nil, err
		}
		s.policies = append(s.policies, p)
		s.bufs = append(s.bufs, buffer.NewBlocking(p))

		l, err := transport.Listen(cfg.ListenHost, cfg.QueueLen)
		if err != nil {
			s.closeListeners()
			return nil, err
		}
		s.listeners = append(s.listeners, l)
	}

	tcfg := cfg.Trainer
	tcfg.Ranks = cfg.Ranks
	tcfg.Comm = cfg.Comm
	tcfg.RankOffset = cfg.RankOffset
	if cfg.CheckpointPath != "" && cfg.RankOffset == 0 {
		every := cfg.CheckpointEveryBatches
		userHook := tcfg.OnBatchEnd
		tcfg.OnBatchEnd = func(batches int) {
			if batches%every == 0 {
				if err := s.WriteCheckpoint(cfg.CheckpointPath); err != nil {
					// Checkpoint failures must not kill training; the
					// previous checkpoint remains valid.
					fmt.Printf("server: checkpoint failed: %v\n", err)
				}
			}
			if userHook != nil {
				userHook(batches)
			}
		}
	}
	trainer, err := core.NewTrainer(tcfg, s.bufs)
	if err != nil {
		s.closeListeners()
		return nil, err
	}
	s.trainer = trainer
	return s, nil
}

// Addrs returns the per-rank listener addresses that clients dial.
func (s *Server) Addrs() []string {
	addrs := make([]string, len(s.listeners))
	for i, l := range s.listeners {
		addrs[i] = l.Addr()
	}
	return addrs
}

// Trainer exposes the training engine (metrics, trained network).
func (s *Server) Trainer() *core.Trainer { return s.trainer }

// Metrics is a convenience for s.Trainer().Metrics().
func (s *Server) Metrics() *core.Metrics { return s.trainer.Metrics() }

// Run starts the aggregators and the watchdog, trains until every rank's
// buffer drains, then shuts the listeners down. It returns the first
// training error, if any.
func (s *Server) Run(ctx context.Context) error {
	for r := range s.listeners {
		s.aggWG.Add(1)
		go s.aggregate(r)
	}

	var watchdogStop chan struct{}
	if s.watchdog != nil && s.cfg.OnUnresponsive != nil {
		watchdogStop = make(chan struct{})
		go s.watchdogLoop(watchdogStop)
	}

	err := s.trainer.Run(ctx)

	if watchdogStop != nil {
		close(watchdogStop)
	}
	s.closeListeners()
	s.aggWG.Wait()
	return err
}

func (s *Server) watchdogLoop(stop chan struct{}) {
	interval := s.cfg.WatchdogTimeout / 2
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			for _, id := range s.watchdog.Expired() {
				s.cfg.OnUnresponsive(id)
			}
		}
	}
}

// aggregate is the per-rank data-aggregator thread (§3.1): it polls the
// transport for new data and stores it into the rank's training buffer,
// deduplicating against the message log.
func (s *Server) aggregate(rank int) {
	defer s.aggWG.Done()
	for env := range s.listeners[rank].Incoming() {
		switch m := env.Msg.(type) {
		case protocol.Hello:
			s.mu.Lock()
			st := s.simState(rank, m.SimID)
			st.ClientID = m.ClientID
			st.Steps = m.Steps
			s.mu.Unlock()
			if s.watchdog != nil {
				s.watchdog.Beat(m.ClientID)
			}
		case protocol.Heartbeat:
			if s.watchdog != nil {
				s.watchdog.Beat(m.ClientID)
			}
		case protocol.TimeStep:
			key := buffer.Key{SimID: int(m.SimID), Step: int(m.Step)}
			s.mu.Lock()
			dup := s.seen[rank][key]
			var owner int32 = -1
			var done bool
			if !dup {
				s.seen[rank][key] = true
				st := s.simState(rank, m.SimID)
				st.Received++
				owner = st.ClientID
				done = s.receptionComplete(rank)
			}
			s.mu.Unlock()
			if s.watchdog != nil && owner >= 0 {
				s.watchdog.Beat(owner)
			}
			if dup {
				continue // replay after client restart: discard (§3.1)
			}
			// Blocking put: a full buffer suspends ingestion, and TCP
			// backpressure propagates the stall to the clients.
			s.bufs[rank].Put(buffer.Sample{
				SimID:  int(m.SimID),
				Step:   int(m.Step),
				Input:  m.Input,
				Output: m.Field,
			})
			if done {
				s.bufs[rank].EndReception()
			}
		case protocol.Goodbye:
			s.mu.Lock()
			s.simState(rank, m.SimID).Goodbye = true
			done := s.receptionComplete(rank)
			s.mu.Unlock()
			if s.watchdog != nil {
				s.watchdog.Remove(m.ClientID)
			}
			if done {
				s.bufs[rank].EndReception()
			}
		}
	}
}

// simState returns (creating if needed) the rank's record for a sim. The
// caller must hold s.mu.
func (s *Server) simState(rank int, simID int32) *SimState {
	st, ok := s.sims[rank][simID]
	if !ok {
		st = &SimState{ClientID: -1}
		s.sims[rank][simID] = st
	}
	return st
}

// receptionComplete decides whether rank has everything it will ever get:
// Goodbyes from the whole ensemble and, for every announced simulation,
// this rank's full round-robin share of time steps. The caller must hold
// s.mu; the method marks the rank ended at most once.
func (s *Server) receptionComplete(rank int) bool {
	if s.ended[rank] {
		return false
	}
	goodbyes := 0
	for _, st := range s.sims[rank] {
		if st.Goodbye {
			goodbyes++
		}
	}
	if goodbyes < s.cfg.ExpectedClients {
		return false
	}
	for _, st := range s.sims[rank] {
		// Only completed members gate termination: a sim that never said
		// Goodbye was abandoned (its restarted replacement will Goodbye
		// under the same sim id). Steps unknown (no Hello processed)
		// cannot be verified; fall back to the goodbye-only rule for it.
		if st.Goodbye && st.Steps > 0 && st.Received < expectedOnRank(st.ClientID, st.Steps, s.cfg.RankOffset+rank, s.worldRanks) {
			return false
		}
	}
	s.ended[rank] = true
	return true
}

// expectedOnRank counts the time steps of a client's trajectory that the
// round-robin distribution (§3.2.2: rank = (clientID + step) mod R) routes
// to this rank.
func expectedOnRank(clientID, steps int32, rank, ranks int) int32 {
	if ranks == 1 {
		return steps
	}
	var count int32
	for t := int32(1); t <= steps; t++ {
		if (int(clientID)+int(t))%ranks == rank {
			count++
		}
	}
	return count
}

func (s *Server) closeListeners() {
	for _, l := range s.listeners {
		if l != nil {
			l.Close()
		}
	}
}

// CompletedSims returns the set of simulations for which rank 0 received a
// Goodbye; the launcher uses it after a server restart to decide which
// clients must be re-run.
func (s *Server) CompletedSims() map[int32]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int32]bool)
	for id, st := range s.sims[0] {
		if st.Goodbye {
			out[id] = true
		}
	}
	return out
}
