// Package server implements the Melissa training server (§3.1): per rank,
// a data-aggregator goroutine receives time steps from ensemble clients
// over the transport and stores them in the rank's training buffer, while
// a training goroutine (internal/core) extracts batches and performs
// data-parallel gradient descent. The server also provides the paper's
// fault-tolerance features: a per-client message log that discards
// replayed time steps after client restarts, a liveness watchdog that
// reports unresponsive clients to the launcher, and periodic checkpoints
// from which a replacement server instance resumes training.
//
// The TimeStep receive path is sharded and zero-copy: each rank's
// aggregator owns its dedup/accounting state (per-sim step bitsets instead
// of a shared map under a global mutex), payloads are leased from the
// protocol pool and bulk-copied into the rank buffer's sample arena, and
// the lease is recycled immediately — steady-state ingestion performs no
// heap allocations and ranks never contend with each other.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"melissa/internal/buffer"
	"melissa/internal/core"
	"melissa/internal/ddp"
	"melissa/internal/elastic"
	"melissa/internal/protocol"
	"melissa/internal/transport"
)

// Config assembles a server.
type Config struct {
	// Ranks is the number of training ranks ("GPUs") hosted by this
	// process; each gets its own listener, aggregator, and training
	// buffer.
	Ranks int

	// Group places this process's ranks in a multi-process training group
	// (e.g. ddp.GroupFromRing over a rank ring connecting several server
	// processes). The zero value trains with the in-process channel ring
	// over Ranks. With a group communicator, Ranks counts only this
	// process's local ranks and the group offset places them in the global
	// rank space; the round-robin data distribution and the reception
	// accounting then run on global ranks.
	Group ddp.RankGroup
	// ListenHost is the host for rank listeners; tests use "127.0.0.1:0"
	// semantics: each rank listens on ListenHost with an ephemeral port.
	ListenHost string
	// QueueLen sizes each rank's transport ingest queue.
	QueueLen int

	// Buffer configures the per-rank training buffer; the seed is offset
	// by rank so replicas draw independent streams.
	Buffer buffer.Config

	// Trainer carries the model, batch size, schedule and validation
	// configuration. Ranks is overridden by Config.Ranks.
	Trainer core.TrainerConfig

	// ExpectedClients is the ensemble size: after a Goodbye from this many
	// distinct simulations, a rank ends reception on its buffer.
	ExpectedClients int

	// WatchdogTimeout bounds client silence before the launcher is told to
	// restart it; 0 disables the watchdog. Positive values below
	// MinWatchdogTimeout are clamped up to it: a timeout shorter than the
	// sweep granularity would expire every client between two of its own
	// heartbeats and put the launcher in a kill/restart loop.
	WatchdogTimeout time.Duration
	// OnUnresponsive is invoked (from a server goroutine) with the IDs of
	// clients the watchdog expired.
	OnUnresponsive func(clientID int32)

	// CheckpointPath enables periodic checkpoints when non-empty. Ignored
	// in elastic mode, where checkpointing is the group-shard protocol.
	CheckpointPath string
	// CheckpointEveryBatches is the checkpoint cadence (default 500), for
	// both the static single-file checkpoint and the elastic group shards.
	CheckpointEveryBatches int

	// Elastic, when set, runs the server as one member of an elastic
	// training group: membership, per-epoch communicators, group
	// checkpointing and rollback come from internal/elastic, and Group
	// must be left zero (each epoch forms its own). See ElasticConfig.
	Elastic *ElasticConfig
}

// MinWatchdogTimeout is the smallest effective client-liveness timeout.
// Pathologically small positive timeouts (microseconds from a unit mixup)
// are clamped up to it rather than honored.
const MinWatchdogTimeout = 20 * time.Millisecond

func (c Config) withDefaults() Config {
	if c.ListenHost == "" {
		c.ListenHost = "127.0.0.1:0"
	}
	if c.WatchdogTimeout > 0 && c.WatchdogTimeout < MinWatchdogTimeout {
		c.WatchdogTimeout = MinWatchdogTimeout
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 4096
	}
	if c.CheckpointEveryBatches <= 0 {
		c.CheckpointEveryBatches = 500
	}
	return c
}

// Server is a live training server.
type Server struct {
	cfg        Config
	worldRanks int // total data ranks across all server processes
	dataOffset int // this process's first global data rank
	listeners  []*transport.RankListener
	bufs       []*buffer.Blocking
	policies   []buffer.Policy
	watchdog   *transport.Watchdog

	// trainer is built once in static mode; in elastic mode every group
	// epoch installs a fresh one (trainerMu guards the swap), all feeding
	// the same persistent metrics collector.
	trainerMu sync.Mutex
	trainer   *core.Trainer
	metrics   *core.Metrics

	// Elastic-mode state: the membership runtime, the per-rank replay
	// journals behind rollback, and the lazy aggregator start (a rejoiner
	// must restore its bitsets before judging the first client frame).
	member   *elastic.Member
	journals []*retireJournal
	aggOnce  sync.Once
	live     bool // an epoch has trained in this process (survivor path)

	// unresponsiveFired holds the clients already reported to
	// OnUnresponsive whose replacement has not yet said Hello. A
	// half-dead client's late message can Beat the watchdog after its
	// expiry was reported, re-registering it and expiring it again on a
	// later sweep; without this gate the launcher would be told to
	// restart the same client twice for one failure.
	unresponsiveMu    sync.Mutex
	unresponsiveFired map[int32]bool

	// aggs holds each rank's aggregator-owned dedup/accounting state.
	// There is no cross-rank mutex on the TimeStep hot path: each rank
	// touches only its own shard, whose (uncontended) mutex exists for
	// the rare cross-goroutine readers — checkpoints and CompletedSims.
	aggs []*rankAgg

	aggWG sync.WaitGroup
}

// rankAgg is one rank's aggregator state shard.
type rankAgg struct {
	mu       sync.Mutex
	rank     int // local rank index
	sims     map[int32]*SimState
	goodbyes int  // count of sims with Goodbye, so the hot path is O(1)
	ended    bool // EndReception issued for this rank
}

func newRankAgg(rank int) *rankAgg {
	return &rankAgg{rank: rank, sims: make(map[int32]*SimState)}
}

// sim returns (creating if needed) the shard's record for a simulation.
// The caller must hold a.mu.
func (a *rankAgg) sim(simID int32) *SimState {
	st, ok := a.sims[simID]
	if !ok {
		st = &SimState{ClientID: -1}
		a.sims[simID] = st
	}
	return st
}

// SimState tracks one ensemble member on one rank: its owner client, the
// declared trajectory length (from Hello), how many distinct steps this
// rank has received, whether a Goodbye arrived, and the per-step dedup
// bitset. Reception ends on a rank only when every completed simulation
// has delivered this rank's full round-robin share — which makes
// termination robust to a restarted client's Goodbye racing ahead of the
// failed client's in-flight data on another connection.
type SimState struct {
	ClientID int32
	Steps    int32
	Received int32
	Goodbye  bool
	// Seen is the message log for this sim on this rank: bit s records
	// that time step s was received. It replaces the unbounded
	// map[Key]bool of earlier revisions — Steps/8 bytes per sim,
	// preallocated at Hello, O(1) duplicate checks without allocation.
	Seen []uint64
}

// maxTrackedStep caps the per-sim dedup bitset at 4M steps (512 KiB of
// log) — a protocol sanity bound far above any real trajectory (the paper
// uses 100 steps). Hello declarations are clamped to it and steps beyond
// it are treated like corrupt frames, because both fields arrive off the
// wire attacker-controlled and must never size an allocation.
const maxTrackedStep = 1 << 22

// maxUntrackedStep is the much tighter bound for sims that never announced
// a trajectory: clients Hello on every connection before streaming, so an
// un-announced TimeStep is already anomalous, and granting it the full
// tracked cap would let one tiny frame per fresh SimID pin a 512 KiB
// bitset. 128K steps (16 KiB of log) is still generous for data racing
// ahead of a restart's re-Hello.
const maxUntrackedStep = 1 << 17

// clampSteps bounds a wire-declared trajectory length to the tracking cap.
func clampSteps(steps int32) int32 {
	if steps > maxTrackedStep {
		return maxTrackedStep
	}
	return steps
}

// markSeen records step and reports whether it is new. Steps beyond the
// preallocated bitset grow it (amortized; Hello normally presizes), but a
// step outside the sim's (clamped) declared trajectory — or past the
// provisional maxUntrackedStep window when no Hello arrived — is rejected
// outright: the wire Step is attacker-controlled, and growing the bitset
// to a lying value would be the same giant-allocation DoS the framed
// reader guards against. Declared trajectories are clamped to
// maxTrackedStep at Hello (and checkpoint restore), so the bounds stay
// consistent and reception accounting can always complete.
func (st *SimState) markSeen(step int32) bool {
	if step < 0 {
		return false
	}
	if st.Steps > 0 {
		if step > clampSteps(st.Steps) {
			return false // outside the declared trajectory: corrupt
		}
	} else if step > maxUntrackedStep {
		return false // no Hello: only a tight provisional window is tracked
	}
	w := int(step >> 6)
	if w >= len(st.Seen) {
		st.Seen = append(st.Seen, make([]uint64, w+1-len(st.Seen))...)
	}
	bit := uint64(1) << (uint(step) & 63)
	if st.Seen[w]&bit != 0 {
		return false
	}
	st.Seen[w] |= bit
	return true
}

// presizeSeen ensures the bitset covers steps [0, steps] without further
// growth. Like markSeen it is bounded by maxTrackedStep: steps comes off
// the wire (Hello), and presizing must not be the allocation DoS the
// per-step path rejects.
func (st *SimState) presizeSeen(steps int32) {
	if steps <= 0 {
		return
	}
	steps = clampSteps(steps)
	w := int(steps>>6) + 1
	if w > len(st.Seen) {
		st.Seen = append(st.Seen, make([]uint64, w-len(st.Seen))...)
	}
}

// New builds the server and starts its listeners. Training does not start
// until Run.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("server: ranks=%d must be ≥ 1", cfg.Ranks)
	}
	if cfg.ExpectedClients < 1 {
		return nil, errors.New("server: ExpectedClients must be ≥ 1")
	}
	if cfg.Trainer.Normalizer == nil {
		return nil, errors.New("server: trainer normalizer required")
	}
	world, offset := cfg.Ranks, cfg.Group.Offset
	switch {
	case cfg.Elastic != nil:
		if cfg.Group.Comm != nil {
			return nil, errors.New("server: elastic mode forms its own per-epoch group; leave Config.Group zero")
		}
		if err := cfg.Elastic.validate(cfg.Ranks); err != nil {
			return nil, err
		}
		// The data plane is pinned to the initial membership: a member's
		// global data ranks never move, even as the training group
		// re-forms around dead peers.
		world = cfg.Elastic.InitialMembers * cfg.Ranks
		offset = cfg.Elastic.MemberID * cfg.Ranks
	case cfg.Group.Comm != nil:
		world = cfg.Group.World()
		if err := cfg.Group.Validate(cfg.Ranks); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	s := &Server{
		cfg:        cfg,
		worldRanks: world,
		dataOffset: offset,
		aggs:       make([]*rankAgg, cfg.Ranks),
	}
	if cfg.WatchdogTimeout > 0 {
		s.watchdog = transport.NewWatchdog(cfg.WatchdogTimeout)
		s.unresponsiveFired = make(map[int32]bool)
	}
	inDim := cfg.Trainer.Normalizer.InputDim()
	outDim := cfg.Trainer.Normalizer.OutputDim()
	for r := 0; r < cfg.Ranks; r++ {
		s.aggs[r] = newRankAgg(r)

		bcfg := cfg.Buffer
		bcfg.Seed += uint64(s.dataOffset+r) * 1000003 // distinct stream per global data rank
		p, err := buffer.New(bcfg)
		if err != nil {
			s.closeListeners()
			return nil, err
		}
		s.policies = append(s.policies, p)
		// Arena-backed: raw payload rows are exactly the normalizer's raw
		// input/output widths, so PutCopy bulk-copies into recycled rows.
		s.bufs = append(s.bufs, buffer.NewBlockingArena(p, inDim, outDim))

		l, err := transport.Listen(cfg.ListenHost, cfg.QueueLen)
		if err != nil {
			s.closeListeners()
			return nil, err
		}
		s.listeners = append(s.listeners, l)
	}

	if cfg.Elastic != nil {
		// Elastic mode: every group epoch builds its own trainer over the
		// epoch's communicator; the metrics collector, replay journals and
		// membership runtime persist across epochs.
		s.metrics = core.NewMetrics(cfg.Trainer.TrackOccurrences)
		s.journals = make([]*retireJournal, cfg.Ranks)
		for r := range s.journals {
			s.journals[r] = newRetireJournal()
			s.bufs[r].OnRetire(s.journals[r].record)
		}
		// Every epoch's ring must negotiate the codec the trainer config
		// declares (core.NewTrainer verifies the match): survivors of a
		// re-formation keep compressing exactly as before, and a member
		// restarted with a different -grad-compress fails ring formation
		// loudly instead of joining with a mismatched wire format.
		userRingOpts := cfg.Elastic.RingOptions
		ringOpts := func(epoch int) transport.RingOptions {
			var ro transport.RingOptions
			if userRingOpts != nil {
				ro = userRingOpts(epoch)
			}
			ro.Codec = cfg.Trainer.GradCompress
			return ro
		}
		member, err := elastic.NewMember(elastic.MemberConfig{
			ID:             cfg.Elastic.MemberID,
			Coordinator:    cfg.Elastic.Coordinator,
			Dir:            cfg.Elastic.Dir,
			BindAddr:       cfg.Elastic.BindAddr,
			ConnectTimeout: cfg.Elastic.ConnectTimeout,
			LocalRanks:     cfg.Ranks,
			RingOptions:    ringOpts,
			Run:            s.runEpoch,
			OnCommit: func(batch int) {
				for _, j := range s.journals {
					j.prune(batch)
				}
			},
		})
		if err != nil {
			s.closeListeners()
			return nil, err
		}
		s.member = member
		return s, nil
	}

	tcfg := cfg.Trainer
	tcfg.Ranks = cfg.Ranks
	tcfg.Group = cfg.Group
	if cfg.CheckpointPath != "" && cfg.Group.Offset == 0 {
		every := cfg.CheckpointEveryBatches
		userHook := tcfg.OnBatchEnd
		tcfg.OnBatchEnd = func(batches int) {
			if batches%every == 0 {
				if err := s.WriteCheckpoint(cfg.CheckpointPath); err != nil {
					// Checkpoint failures must not kill training; the
					// previous checkpoint remains valid.
					fmt.Printf("server: checkpoint failed: %v\n", err)
				}
			}
			if userHook != nil {
				userHook(batches)
			}
		}
	}
	trainer, err := core.NewTrainer(tcfg, s.bufs)
	if err != nil {
		s.closeListeners()
		return nil, err
	}
	s.trainer = trainer
	return s, nil
}

// Addrs returns the per-rank listener addresses that clients dial.
func (s *Server) Addrs() []string {
	addrs := make([]string, len(s.listeners))
	for i, l := range s.listeners {
		addrs[i] = l.Addr()
	}
	return addrs
}

// Trainer exposes the training engine (metrics, trained network). In
// elastic mode it is the current epoch's trainer — nil before the first
// epoch forms.
func (s *Server) Trainer() *core.Trainer {
	s.trainerMu.Lock()
	defer s.trainerMu.Unlock()
	return s.trainer
}

// Metrics returns the server's metrics collector. In elastic mode one
// persistent collector spans every epoch's trainer, so batch counters,
// loss curves and the elasticity counters (group epoch, re-formations,
// last rollback) survive group re-formations.
func (s *Server) Metrics() *core.Metrics {
	if s.metrics != nil {
		return s.metrics
	}
	return s.trainer.Metrics()
}

// Run starts the aggregators and the watchdog, trains until every rank's
// buffer drains, then shuts the listeners down. It returns the first
// training error, if any. In elastic mode it instead participates in the
// training group until the group completes or this member is lost.
func (s *Server) Run(ctx context.Context) error {
	if s.cfg.Elastic != nil {
		return s.runElastic(ctx)
	}
	s.startAggs()

	var watchdogStop chan struct{}
	if s.watchdog != nil && s.cfg.OnUnresponsive != nil {
		watchdogStop = make(chan struct{})
		go s.watchdogLoop(watchdogStop)
	}

	err := s.trainer.Run(ctx)

	if watchdogStop != nil {
		close(watchdogStop)
	}
	s.closeListeners()
	s.aggWG.Wait()
	return err
}

func (s *Server) watchdogLoop(stop chan struct{}) {
	interval := s.cfg.WatchdogTimeout / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			s.sweepUnresponsive()
		}
	}
}

// sweepUnresponsive reports newly expired clients to OnUnresponsive, at
// most once per expiry episode: a client reported here is muted until its
// replacement reconnects (Hello clears the gate). Factored out of the
// ticker loop so tests can drive it against a fake watchdog clock.
func (s *Server) sweepUnresponsive() {
	expired := s.watchdog.Expired()
	if len(expired) == 0 {
		return
	}
	for _, id := range expired {
		s.unresponsiveMu.Lock()
		fired := s.unresponsiveFired[id]
		if !fired {
			s.unresponsiveFired[id] = true
		}
		s.unresponsiveMu.Unlock()
		if !fired && s.cfg.OnUnresponsive != nil {
			s.cfg.OnUnresponsive(id)
		}
	}
}

// clientReconnected resets the unresponsive gate for a client: a Hello is
// a (re)connect, so its restarted replacement has arrived and a future
// expiry is a fresh episode worth reporting again.
func (s *Server) clientReconnected(id int32) {
	s.unresponsiveMu.Lock()
	delete(s.unresponsiveFired, id)
	s.unresponsiveMu.Unlock()
}

// aggregate is the per-rank data-aggregator thread (§3.1): it polls the
// transport for new data and stores it into the rank's training buffer,
// deduplicating against the rank-local message log.
func (s *Server) aggregate(rank int) {
	defer s.aggWG.Done()
	a := s.aggs[rank]
	for env := range s.listeners[rank].Incoming() {
		switch m := env.Msg.(type) {
		case protocol.Hello:
			a.mu.Lock()
			st := a.sim(m.SimID)
			st.ClientID = m.ClientID
			st.Steps = clampSteps(m.Steps)
			st.presizeSeen(st.Steps)
			a.mu.Unlock()
			if s.watchdog != nil {
				s.clientReconnected(m.ClientID)
				s.watchdog.Beat(m.ClientID)
			}
		case protocol.Heartbeat:
			if s.watchdog != nil {
				s.watchdog.Beat(m.ClientID)
			}
		case *protocol.TimeStep:
			s.ingestTimeStep(rank, m)
		case protocol.Goodbye:
			a.mu.Lock()
			st := a.sim(m.SimID)
			if !st.Goodbye {
				st.Goodbye = true
				a.goodbyes++
			}
			done := s.receptionComplete(a)
			a.mu.Unlock()
			if s.watchdog != nil {
				s.watchdog.Remove(m.ClientID)
			}
			if done {
				s.bufs[rank].EndReception()
			}
		}
	}
}

// ingestTimeStep is the hot path: rank-sharded bitset dedup, bulk copy
// into the rank buffer's arena, lease recycle. Zero steady-state
// allocations (gated by TestIngestZeroAllocSteadyState).
func (s *Server) ingestTimeStep(rank int, m *protocol.TimeStep) {
	a := s.aggs[rank]
	a.mu.Lock()
	st := a.sim(m.SimID)
	fresh := st.markSeen(m.Step)
	wasEnded := a.ended
	var owner int32 = -1
	var done bool
	if fresh {
		st.Received++
		owner = st.ClientID
		done = s.receptionComplete(a)
	}
	a.mu.Unlock()
	if s.watchdog != nil && owner >= 0 {
		s.watchdog.Beat(owner)
	}
	if fresh {
		// Blocking put: a full buffer suspends ingestion, and TCP
		// backpressure propagates the stall to the clients. The payload
		// is copied into arena rows under the buffer lock, so the lease
		// can be recycled immediately after. A refused put means reception
		// ended on the buffer — genuine only when the aggregator agreed
		// (wasEnded; then the frame is a straggler and may drop). Otherwise
		// the flag was set by an aborted elastic epoch's teardown and the
		// frame, already marked received in the dedup state, would be lost
		// forever: reopen and retry until stored.
		for !s.bufs[rank].PutCopy(int(m.SimID), int(m.Step), m.Input, m.Field) {
			if wasEnded {
				break
			}
			s.bufs[rank].ReopenReception()
		}
	}
	// Duplicate (replay after client restart, §3.1) or stored: either way
	// the leased payload is done.
	protocol.RecycleTimeStep(m)
	if done {
		s.bufs[rank].EndReception()
	}
}

// receptionComplete decides whether the rank has everything it will ever
// get: Goodbyes from the whole ensemble and, for every announced
// simulation, this rank's full round-robin share of time steps. The caller
// must hold a.mu; the method marks the rank ended at most once. The
// goodbye counter keeps the per-message cost O(1): the per-sim scan runs
// only once the whole ensemble has said Goodbye.
func (s *Server) receptionComplete(a *rankAgg) bool {
	if a.ended || a.goodbyes < s.cfg.ExpectedClients {
		return false
	}
	for _, st := range a.sims {
		// Only completed members gate termination: a sim that never said
		// Goodbye was abandoned (its restarted replacement will Goodbye
		// under the same sim id). Steps unknown (no Hello processed)
		// cannot be verified; fall back to the goodbye-only rule for it.
		if st.Goodbye && st.Steps > 0 && st.Received < expectedOnRank(st.ClientID, st.Steps, s.dataOffset+a.rank, s.worldRanks) {
			return false
		}
	}
	a.ended = true
	return true
}

// expectedOnRank counts the time steps of a client's trajectory that the
// round-robin distribution (§3.2.2: rank = (clientID + step) mod R) routes
// to this rank.
func expectedOnRank(clientID, steps int32, rank, ranks int) int32 {
	if ranks == 1 {
		return steps
	}
	var count int32
	for t := int32(1); t <= steps; t++ {
		if (int(clientID)+int(t))%ranks == rank {
			count++
		}
	}
	return count
}

func (s *Server) closeListeners() {
	for _, l := range s.listeners {
		if l != nil {
			l.Close()
		}
	}
}

// receivedOnRank sums the rank's distinct received time steps (test and
// diagnostics helper).
func (s *Server) receivedOnRank(rank int) int {
	a := s.aggs[rank]
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0
	for _, st := range a.sims {
		total += int(st.Received)
	}
	return total
}

// CompletedSims returns the set of simulations for which rank 0 received a
// Goodbye; the launcher uses it after a server restart to decide which
// clients must be re-run.
func (s *Server) CompletedSims() map[int32]bool {
	a := s.aggs[0]
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[int32]bool)
	for id, st := range a.sims {
		if st.Goodbye {
			out[id] = true
		}
	}
	return out
}
