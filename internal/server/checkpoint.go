package server

import (
	"encoding/gob"
	"fmt"
	"os"

	"melissa/internal/buffer"
)

// checkpointFile is the on-disk server checkpoint (§3.1): everything a
// replacement server instance needs to resume training without retraining
// on already-seen data or losing buffered samples. The per-rank message
// log travels inside SimState.Seen (the per-sim step bitsets), replacing
// the separate map[Key]bool log of earlier revisions.
type checkpointFile struct {
	Ranks   int
	Batches int
	Samples int

	Weights  []byte
	OptState []byte

	Sims []map[int32]SimState

	// Seen is the legacy (pre-bitset) per-rank dedup log. New checkpoints
	// leave it nil (the log lives in SimState.Seen); RestoreCheckpoint
	// migrates a non-nil legacy log into the bitsets so old checkpoints
	// keep their dedup guarantee.
	Seen []map[buffer.Key]bool

	BufSeen   [][]buffer.Sample
	BufUnseen [][]buffer.Sample
}

// WriteCheckpoint atomically persists the full server state. It is called
// from the trainer's rank-0 batch boundary, so the weights are consistent;
// rank shards and buffer contents are captured under their own locks (the
// buffer snapshot deep-copies payloads, so arena rows recycled afterwards
// cannot corrupt the checkpoint).
func (s *Server) WriteCheckpoint(path string) error {
	weights, optState, err := s.trainer.CaptureState()
	if err != nil {
		return err
	}
	ck := checkpointFile{
		Ranks:    s.cfg.Ranks,
		Batches:  s.trainer.Metrics().Batches(),
		Samples:  s.trainer.Metrics().Samples(),
		Weights:  weights,
		OptState: optState,
	}

	ck.Sims = make([]map[int32]SimState, len(s.aggs))
	for r, a := range s.aggs {
		a.mu.Lock()
		cp := make(map[int32]SimState, len(a.sims))
		for id, st := range a.sims {
			c := *st
			c.Seen = append([]uint64(nil), st.Seen...)
			cp[id] = c
		}
		a.mu.Unlock()
		ck.Sims[r] = cp
	}

	ck.BufSeen = make([][]buffer.Sample, s.cfg.Ranks)
	ck.BufUnseen = make([][]buffer.Sample, s.cfg.Ranks)
	for r, b := range s.bufs {
		b.WithLock(func(p buffer.Policy) {
			if snap, ok := p.(buffer.Snapshotter); ok {
				ck.BufSeen[r], ck.BufUnseen[r] = snap.Snapshot()
			}
		})
	}

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(&ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// RestoreCheckpoint loads a checkpoint written by WriteCheckpoint into a
// freshly constructed server (same configuration). Call before Run.
func (s *Server) RestoreCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var ck checkpointFile
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return fmt.Errorf("server: decoding checkpoint: %w", err)
	}
	if ck.Ranks != s.cfg.Ranks {
		return fmt.Errorf("server: checkpoint has %d ranks, config has %d", ck.Ranks, s.cfg.Ranks)
	}
	if err := s.trainer.RestoreState(ck.Weights, ck.OptState, ck.Batches, ck.Samples); err != nil {
		return err
	}
	for r, m := range ck.Sims {
		a := s.aggs[r]
		a.mu.Lock()
		a.sims = make(map[int32]*SimState, len(m))
		a.goodbyes = 0
		for id, st := range m {
			cp := st
			// Clamp like the live Hello path: an unclamped (legacy or
			// crafted) Steps past the tracking cap would make
			// receptionComplete demand steps markSeen can never record.
			cp.Steps = clampSteps(cp.Steps)
			a.sims[id] = &cp
			if cp.Goodbye {
				a.goodbyes++
			}
		}
		a.mu.Unlock()
	}
	// Legacy checkpoints (pre-bitset) carry the dedup log as per-rank key
	// maps; fold them into the per-sim bitsets so replayed steps are
	// still discarded after the restore.
	for r, m := range ck.Seen {
		if r >= len(s.aggs) {
			break
		}
		a := s.aggs[r]
		a.mu.Lock()
		for k := range m {
			a.sim(int32(k.SimID)).markSeen(int32(k.Step))
		}
		a.mu.Unlock()
	}
	for r, b := range s.bufs {
		r := r
		b.WithLock(func(p buffer.Policy) {
			if snap, ok := p.(buffer.Snapshotter); ok {
				snap.RestoreSnapshot(ck.BufSeen[r], ck.BufUnseen[r])
			}
		})
		// If the ensemble had already completed for this rank, reception
		// is over and the buffer only needs draining.
		a := s.aggs[r]
		a.mu.Lock()
		done := s.receptionComplete(a)
		a.mu.Unlock()
		if done {
			b.EndReception()
		}
	}
	return nil
}
