package server

import (
	"encoding/gob"
	"fmt"
	"os"

	"melissa/internal/buffer"
)

// checkpointFile is the on-disk server checkpoint (§3.1): everything a
// replacement server instance needs to resume training without retraining
// on already-seen data or losing buffered samples.
type checkpointFile struct {
	Ranks   int
	Batches int
	Samples int

	Weights  []byte
	OptState []byte

	Seen []map[buffer.Key]bool
	Sims []map[int32]SimState

	BufSeen   [][]buffer.Sample
	BufUnseen [][]buffer.Sample
}

// WriteCheckpoint atomically persists the full server state. It is called
// from the trainer's rank-0 batch boundary, so the weights are consistent;
// buffer contents and message logs are captured under their locks.
func (s *Server) WriteCheckpoint(path string) error {
	weights, optState, err := s.trainer.CaptureState()
	if err != nil {
		return err
	}
	ck := checkpointFile{
		Ranks:    s.cfg.Ranks,
		Batches:  s.trainer.Metrics().Batches(),
		Samples:  s.trainer.Metrics().Samples(),
		Weights:  weights,
		OptState: optState,
	}

	s.mu.Lock()
	ck.Seen = make([]map[buffer.Key]bool, len(s.seen))
	for r, m := range s.seen {
		cp := make(map[buffer.Key]bool, len(m))
		for k, v := range m {
			cp[k] = v
		}
		ck.Seen[r] = cp
	}
	ck.Sims = make([]map[int32]SimState, len(s.sims))
	for r, m := range s.sims {
		cp := make(map[int32]SimState, len(m))
		for id, st := range m {
			cp[id] = *st
		}
		ck.Sims[r] = cp
	}
	s.mu.Unlock()

	ck.BufSeen = make([][]buffer.Sample, s.cfg.Ranks)
	ck.BufUnseen = make([][]buffer.Sample, s.cfg.Ranks)
	for r, b := range s.bufs {
		b.WithLock(func(p buffer.Policy) {
			if snap, ok := p.(buffer.Snapshotter); ok {
				ck.BufSeen[r], ck.BufUnseen[r] = snap.Snapshot()
			}
		})
	}

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(&ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// RestoreCheckpoint loads a checkpoint written by WriteCheckpoint into a
// freshly constructed server (same configuration). Call before Run.
func (s *Server) RestoreCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var ck checkpointFile
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return fmt.Errorf("server: decoding checkpoint: %w", err)
	}
	if ck.Ranks != s.cfg.Ranks {
		return fmt.Errorf("server: checkpoint has %d ranks, config has %d", ck.Ranks, s.cfg.Ranks)
	}
	if err := s.trainer.RestoreState(ck.Weights, ck.OptState, ck.Batches, ck.Samples); err != nil {
		return err
	}
	s.mu.Lock()
	s.seen = ck.Seen
	s.sims = make([]map[int32]*SimState, len(ck.Sims))
	for r, m := range ck.Sims {
		s.sims[r] = make(map[int32]*SimState, len(m))
		for id, st := range m {
			cp := st
			s.sims[r][id] = &cp
		}
	}
	s.mu.Unlock()
	for r, b := range s.bufs {
		r := r
		b.WithLock(func(p buffer.Policy) {
			if snap, ok := p.(buffer.Snapshotter); ok {
				snap.RestoreSnapshot(ck.BufSeen[r], ck.BufUnseen[r])
			}
		})
		// If the ensemble had already completed for this rank, reception
		// is over and the buffer only needs draining.
		s.mu.Lock()
		done := s.receptionComplete(r)
		s.mu.Unlock()
		if done {
			b.EndReception()
		}
	}
	return nil
}
