package solver

import "sync"

// engine evaluates the implicit operator A = (1+4r)·I − r·S with the field
// partitioned into horizontal strips, one per worker. Strip workers only
// read their own rows plus one halo row from each neighbour, received over
// channels — the shared-memory analogue of the paper's MPI 2D domain
// partitioning (§4.1). The interior stencil never reads across a strip
// except through the exchanged halos, so the structure would port directly
// to distributed memory.
type engine struct {
	n      int
	r      float64
	strips []strip
}

// strip is one worker's share of rows [r0, r1) plus halo plumbing. upCh
// receives the neighbour row r0−1; downCh receives row r1.
type strip struct {
	r0, r1 int
	upCh   chan []float64
	downCh chan []float64
	haloUp []float64
	haloDn []float64
}

func newEngine(n, workers int, r float64) *engine {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	e := &engine{n: n, r: r, strips: make([]strip, workers)}
	base, rem := n/workers, n%workers
	row := 0
	for w := range e.strips {
		rows := base
		if w < rem {
			rows++
		}
		e.strips[w] = strip{
			r0:     row,
			r1:     row + rows,
			upCh:   make(chan []float64, 1),
			downCh: make(chan []float64, 1),
			haloUp: make([]float64, n),
			haloDn: make([]float64, n),
		}
		row += rows
	}
	return e
}

// apply computes dst = A·src. All workers first publish their boundary rows
// to neighbours, then receive halos, then compute their strip — a classic
// BSP halo-exchange superstep.
func (e *engine) apply(dst, src []float64) {
	if len(e.strips) == 1 {
		s := &e.strips[0]
		e.applyStrip(dst, src, s, nil, nil)
		return
	}
	var wg sync.WaitGroup
	for w := range e.strips {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := &e.strips[w]
			n := e.n
			// Publish boundary rows. Copies keep the message semantics of
			// a real halo exchange: the receiver never aliases the
			// sender's memory.
			if w > 0 {
				top := make([]float64, n)
				copy(top, src[s.r0*n:(s.r0+1)*n])
				e.strips[w-1].downCh <- top
			}
			if w < len(e.strips)-1 {
				bottom := make([]float64, n)
				copy(bottom, src[(s.r1-1)*n:s.r1*n])
				e.strips[w+1].upCh <- bottom
			}
			var haloUp, haloDn []float64
			if w > 0 {
				haloUp = <-s.upCh
			}
			if w < len(e.strips)-1 {
				haloDn = <-s.downCh
			}
			e.applyStrip(dst, src, s, haloUp, haloDn)
		}(w)
	}
	wg.Wait()
}

// applyStrip evaluates rows [s.r0, s.r1). haloUp/haloDn supply rows r0−1
// and r1 when they belong to another strip; nil means the row is either a
// physical boundary (its Dirichlet contribution lives in the RHS, not in A)
// or owned by this strip.
func (e *engine) applyStrip(dst, src []float64, s *strip, haloUp, haloDn []float64) {
	n := e.n
	r := e.r
	diag := 1 + 4*r
	for i := s.r0; i < s.r1; i++ {
		var rowUp, rowDn []float64
		switch {
		case i > s.r0:
			rowUp = src[(i-1)*n : i*n]
		case haloUp != nil:
			rowUp = haloUp
		}
		switch {
		case i < s.r1-1:
			rowDn = src[(i+1)*n : (i+2)*n]
		case haloDn != nil:
			rowDn = haloDn
		}
		row := src[i*n : (i+1)*n]
		out := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			acc := diag * row[j]
			if j > 0 {
				acc -= r * row[j-1]
			}
			if j < n-1 {
				acc -= r * row[j+1]
			}
			if rowUp != nil {
				acc -= r * rowUp[j]
			}
			if rowDn != nil {
				acc -= r * rowDn[j]
			}
			out[j] = acc
		}
	}
}
