package solver

import "math"

// AnalyticEqualBoundaries evaluates the exact series solution of the heat
// equation on [0,L]² when all four boundaries are held at tb and the
// initial condition is the constant tic:
//
//	u(x,y,t) = tb + (tic−tb) Σ_{m,n odd} 16/(π²mn) ·
//	           sin(mπx/L) sin(nπy/L) exp(−α π² (m²+n²) t / L²)
//
// Used by tests to validate the discrete solver against ground truth.
func AnalyticEqualBoundaries(tic, tb, alpha, l, x, y, t float64, terms int) float64 {
	var sum float64
	for m := 1; m <= terms; m += 2 {
		for n := 1; n <= terms; n += 2 {
			coef := 16 / (math.Pi * math.Pi * float64(m) * float64(n))
			decay := math.Exp(-alpha * math.Pi * math.Pi * float64(m*m+n*n) * t / (l * l))
			sum += coef * decay *
				math.Sin(float64(m)*math.Pi*x/l) *
				math.Sin(float64(n)*math.Pi*y/l)
		}
	}
	return tb + (tic-tb)*sum
}

// DenseStep performs one implicit Euler step by assembling the full
// (N²)×(N²) system and solving it with Gaussian elimination. Exponentially
// expensive — for small-N validation of the matrix-free CG path only.
func DenseStep(cfg Config, par Params, u []float64) []float64 {
	cfg = cfg.withDefaults()
	n := cfg.N
	size := n * n
	h := cfg.L / float64(n+1)
	r := cfg.Alpha * cfg.Dt / (h * h)

	a := make([][]float64, size)
	b := make([]float64, size)
	for i := range a {
		a[i] = make([]float64, size)
	}
	idx := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			k := idx(i, j)
			a[k][k] = 1 + 4*r
			b[k] = u[k]
			if j > 0 {
				a[k][idx(i, j-1)] = -r
			} else {
				b[k] += r * par.Tx1
			}
			if j < n-1 {
				a[k][idx(i, j+1)] = -r
			} else {
				b[k] += r * par.Tx2
			}
			if i > 0 {
				a[k][idx(i-1, j)] = -r
			} else {
				b[k] += r * par.Ty1
			}
			if i < n-1 {
				a[k][idx(i+1, j)] = -r
			} else {
				b[k] += r * par.Ty2
			}
		}
	}
	return gaussSolve(a, b)
}

// gaussSolve solves a·x = b in place with partial pivoting.
func gaussSolve(a [][]float64, b []float64) []float64 {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for row := col + 1; row < n; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[pivot][col]) {
				pivot = row
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for row := col + 1; row < n; row++ {
			f := a[row][col] / a[col][col]
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[row][k] -= f * a[col][k]
			}
			b[row] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for row := n - 1; row >= 0; row-- {
		s := b[row]
		for k := row + 1; k < n; k++ {
			s -= a[row][k] * x[k]
		}
		x[row] = s / a[row][row]
	}
	return x
}
