package solver

import (
	"math"
	"testing"
)

func gsParams() GrayScottParams {
	return GrayScottParams{F: 0.04, K: 0.06, Du: 0.16, Dv: 0.08}
}

func TestGrayScottValidation(t *testing.T) {
	if _, err := NewGrayScott(GrayScottConfig{N: 0, Steps: 5}, gsParams()); err == nil {
		t.Fatal("expected error for N=0")
	}
	if _, err := NewGrayScott(GrayScottConfig{N: 8, Steps: 0}, gsParams()); err == nil {
		t.Fatal("expected error for Steps=0")
	}
	unstable := gsParams()
	unstable.Du = 2 // dt·D·4 = 8 > 1
	if _, err := NewGrayScott(GrayScottConfig{N: 8, Steps: 5, Dt: 1}, unstable); err == nil {
		t.Fatal("expected stability error")
	}
}

func TestGrayScottParamsVectorRoundtrip(t *testing.T) {
	p := gsParams()
	got, err := GrayScottParamsFromVector(p.Vector())
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("roundtrip %+v != %+v", got, p)
	}
	if _, err := GrayScottParamsFromVector([]float64{1, 2, 3}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestGrayScottEvolvesAndStaysBounded(t *testing.T) {
	g, err := NewGrayScott(GrayScottConfig{N: 16, Steps: 200, Dt: 1}, gsParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Field()) != 2*16*16 {
		t.Fatalf("field length %d, want %d", len(g.Field()), 2*16*16)
	}
	initial := append([]float64(nil), g.Field()...)
	steps := 0
	err = g.Run(func(step int, field []float64) {
		steps++
		if step != steps {
			t.Fatalf("step index %d, want %d", step, steps)
		}
		for i, v := range field {
			if math.IsNaN(v) || v < -0.5 || v > 1.5 {
				t.Fatalf("step %d: field[%d]=%v out of bounds", step, i, v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if steps != 200 {
		t.Fatalf("emitted %d steps, want 200", steps)
	}
	// The reaction front must have moved the field away from the seed state.
	var diff float64
	for i, v := range g.Field() {
		diff += math.Abs(v - initial[i])
	}
	if diff < 1 {
		t.Fatalf("field barely evolved (L1 drift %v)", diff)
	}
}

func TestGrayScottDeterministicAndRestorable(t *testing.T) {
	cfg := GrayScottConfig{N: 12, Steps: 50, Dt: 1}
	a, _ := NewGrayScott(cfg, gsParams())
	b, _ := NewGrayScott(cfg, gsParams())
	for i := 0; i < 30; i++ {
		if err := a.StepOnce(); err != nil {
			t.Fatal(err)
		}
	}
	// Restore b from a's state at step 30; both must then agree exactly.
	snapshot := append([]float64(nil), a.Field()...)
	if err := b.Restore(30, snapshot); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := a.StepOnce(); err != nil {
			t.Fatal(err)
		}
		if err := b.StepOnce(); err != nil {
			t.Fatal(err)
		}
	}
	for i := range a.Field() {
		if a.Field()[i] != b.Field()[i] {
			t.Fatalf("restored run diverged at %d", i)
		}
	}
	if err := b.Restore(-1, snapshot); err == nil {
		t.Fatal("expected error for negative step")
	}
	if err := b.Restore(3, snapshot[:5]); err == nil {
		t.Fatal("expected error for short field")
	}
}

func TestGrayScottImplementsSimulator(t *testing.T) {
	var _ Simulator = &GrayScott{}
	var _ Simulator = &Simulation{}
}
