package solver

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{N: 0, Steps: 1}).Validate(); err == nil {
		t.Fatal("expected error for N=0")
	}
	if err := (Config{N: 4, Steps: 0}).Validate(); err == nil {
		t.Fatal("expected error for Steps=0")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	s, err := New(Config{N: 4, Steps: 1}, Params{TIC: 300})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.Workers != 1 || cfg.CGTol <= 0 || cfg.CGMaxIter <= 0 || cfg.Dt <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	// Workers clamped to N.
	s, err = New(Config{N: 3, Steps: 1, Workers: 16}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().Workers != 3 {
		t.Fatalf("workers not clamped: %d", s.Config().Workers)
	}
}

func TestParamsVectorRoundtrip(t *testing.T) {
	p := Params{TIC: 1, Tx1: 2, Ty1: 3, Tx2: 4, Ty2: 5}
	v := p.Vector()
	got, err := ParamsFromVector(v)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("roundtrip: %+v != %+v", got, p)
	}
	if _, err := ParamsFromVector([]float64{1, 2}); err == nil {
		t.Fatal("expected error for short vector")
	}
}

func TestSteadyStateIsExact(t *testing.T) {
	// With IC equal to all boundary temperatures the solution is constant
	// in time; the solver must preserve it to rounding.
	const temp = 321.5
	s, err := New(Config{N: 12, Steps: 10}, Params{TIC: temp, Tx1: temp, Tx2: temp, Ty1: temp, Ty2: temp})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Field() {
		if math.Abs(v-temp) > 1e-8 {
			t.Fatalf("node %d drifted: %v", i, v)
		}
	}
}

func TestConvergesToBoundaryTemperature(t *testing.T) {
	// All boundaries at 400, IC at 100: after many diffusion times the
	// field must approach 400 everywhere.
	s, err := New(Config{N: 16, Steps: 600, Dt: 0.01, Alpha: 1, L: 1}, Params{TIC: 100, Tx1: 400, Tx2: 400, Ty1: 400, Ty2: 400})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Field() {
		if math.Abs(v-400) > 0.01 {
			t.Fatalf("node %d = %v, want ≈400", i, v)
		}
	}
}

// TestMaxPrinciple: the discrete implicit scheme inherits the maximum
// principle — temperatures stay within [min, max] of the IC and boundary
// values for all time, for arbitrary parameters.
func TestMaxPrinciple(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		sample := func() float64 { return 100 + 400*rng.Float64() }
		par := Params{TIC: sample(), Tx1: sample(), Tx2: sample(), Ty1: sample(), Ty2: sample()}
		lo := math.Min(par.TIC, math.Min(math.Min(par.Tx1, par.Tx2), math.Min(par.Ty1, par.Ty2)))
		hi := math.Max(par.TIC, math.Max(math.Max(par.Tx1, par.Tx2), math.Max(par.Ty1, par.Ty2)))
		s, err := New(Config{N: 8, Steps: 20, Dt: 0.02}, par)
		if err != nil {
			return false
		}
		ok := true
		err = s.Run(func(_ int, field []float64) {
			for _, v := range field {
				if v < lo-1e-7 || v > hi+1e-7 {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetryPreserved(t *testing.T) {
	// Tx1 == Tx2 gives left-right mirror symmetry; Ty1 == Ty2 gives
	// top-bottom symmetry.
	n := 11
	s, err := New(Config{N: n, Steps: 15, Dt: 0.005}, Params{TIC: 250, Tx1: 300, Tx2: 300, Ty1: 150, Ty2: 150})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	u := s.Field()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d := math.Abs(u[i*n+j] - u[i*n+(n-1-j)]); d > 1e-8 {
				t.Fatalf("x-mirror broken at (%d,%d): %v", i, j, d)
			}
			if d := math.Abs(u[i*n+j] - u[(n-1-i)*n+j]); d > 1e-8 {
				t.Fatalf("y-mirror broken at (%d,%d): %v", i, j, d)
			}
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	par := Params{TIC: 120, Tx1: 480, Tx2: 210, Ty1: 330, Ty2: 150}
	run := func(workers int) []float64 {
		s, err := New(Config{N: 17, Steps: 8, Dt: 0.003, Workers: workers}, par)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(nil); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(s.Field()))
		copy(out, s.Field())
		return out
	}
	ref := run(1)
	for _, w := range []int{2, 3, 4, 8, 17} {
		got := run(w)
		for i := range ref {
			// The matvec is element-wise identical regardless of strip
			// count and the CG scalars are computed centrally, so the
			// parallel run must match the sequential one bit for bit.
			if got[i] != ref[i] {
				t.Fatalf("workers=%d differs at node %d: %v vs %v", w, i, got[i], ref[i])
			}
		}
	}
}

func TestStepMatchesDenseDirectSolve(t *testing.T) {
	cfg := Config{N: 6, Steps: 1, Dt: 0.01}
	par := Params{TIC: 200, Tx1: 100, Tx2: 500, Ty1: 300, Ty2: 400}
	s, err := New(cfg, par)
	if err != nil {
		t.Fatal(err)
	}
	u0 := make([]float64, len(s.Field()))
	copy(u0, s.Field())
	want := DenseStep(cfg, par, u0)
	if err := s.StepOnce(); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := math.Abs(s.Field()[i] - want[i]); d > 1e-7 {
			t.Fatalf("node %d: CG %v vs dense %v", i, s.Field()[i], want[i])
		}
	}
}

func TestMatchesAnalyticSeries(t *testing.T) {
	// Cooling of a hot plate with all boundaries cold: compare the solver
	// against the exact Fourier series at several probe points. Grid and
	// time-step errors are O(h²)+O(Δt); tolerances reflect that.
	const (
		n     = 32
		tic   = 500.0
		tb    = 100.0
		alpha = 1.0
		l     = 1.0
		dt    = 5e-4
		steps = 40 // t = 0.02 s
	)
	s, err := New(Config{N: n, Steps: steps, Dt: dt, Alpha: alpha, L: l}, Params{TIC: tic, Tx1: tb, Tx2: tb, Ty1: tb, Ty2: tb})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	tFinal := dt * steps
	h := l / float64(n+1)
	probes := [][2]int{{n / 2, n / 2}, {n / 4, n / 4}, {n / 2, n / 4}, {3 * n / 4, n / 2}}
	for _, p := range probes {
		x := float64(p[1]+1) * h
		y := float64(p[0]+1) * h
		want := AnalyticEqualBoundaries(tic, tb, alpha, l, x, y, tFinal, 61)
		got := s.Field()[p[0]*n+p[1]]
		if d := math.Abs(got - want); d > 0.02*(tic-tb) {
			t.Fatalf("probe %v: solver %v vs analytic %v (diff %v)", p, got, want, d)
		}
	}
}

func TestRunEmitsEveryStep(t *testing.T) {
	s, err := New(Config{N: 4, Steps: 7}, Params{TIC: 300, Tx1: 200, Tx2: 200, Ty1: 200, Ty2: 200})
	if err != nil {
		t.Fatal(err)
	}
	var steps []int
	err = s.Run(func(step int, field []float64) {
		steps = append(steps, step)
		if len(field) != 16 {
			t.Fatalf("field length %d", len(field))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 7 {
		t.Fatalf("emitted %d steps, want 7", len(steps))
	}
	for i, st := range steps {
		if st != i+1 {
			t.Fatalf("step sequence %v", steps)
		}
	}
	if s.StepIndex() != 7 {
		t.Fatalf("StepIndex = %d", s.StepIndex())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	par := Params{TIC: 333, Tx1: 111, Tx2: 222, Ty1: 444, Ty2: 137}
	run := func() []float64 {
		s, _ := New(Config{N: 9, Steps: 5}, par)
		_ = s.Run(nil)
		out := make([]float64, len(s.Field()))
		copy(out, s.Field())
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("solver not deterministic")
		}
	}
}

func TestGaussSolveIdentityAndRandom(t *testing.T) {
	// Identity.
	a := [][]float64{{1, 0}, {0, 1}}
	b := []float64{3, 4}
	x := gaussSolve(a, b)
	if x[0] != 3 || x[1] != 4 {
		t.Fatalf("identity solve: %v", x)
	}
	// Random SPD-ish system validated by residual.
	rng := rand.New(rand.NewPCG(8, 8))
	n := 12
	m := make([][]float64, n)
	orig := make([][]float64, n)
	rhs := make([]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		orig[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = rng.NormFloat64()
		}
		m[i][i] += float64(n) // diagonal dominance
		copy(orig[i], m[i])
		rhs[i] = rng.NormFloat64()
	}
	origRHS := make([]float64, n)
	copy(origRHS, rhs)
	x = gaussSolve(m, rhs)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += orig[i][j] * x[j]
		}
		if math.Abs(s-origRHS[i]) > 1e-9 {
			t.Fatalf("residual row %d: %v", i, s-origRHS[i])
		}
	}
}

func BenchmarkStep32(b *testing.B) {
	s, _ := New(Config{N: 32, Steps: 1 << 30}, Params{TIC: 300, Tx1: 100, Tx2: 500, Ty1: 200, Ty2: 400})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.StepOnce(); err != nil {
			b.Fatal(err)
		}
	}
}
