// Package solver implements the numerical substrate of the paper's
// experiments (§4.1): a 2D heat-equation solver using a finite-difference
// discretization with an implicit Euler scheme on a Cartesian grid,
// parallelized by 2D-row domain partitioning with explicit halo exchange —
// the Go equivalent of the paper's Fortran90+MPI code. The linear system
// arising at each implicit step is symmetric positive definite and solved
// with conjugate gradients, matrix-free.
//
// The PDE (paper Equation 2):
//
//	∂T/∂t = α ∇²T on [0,L]×[0,L]
//	T(x,y,0)     = T_IC
//	T(0,y,t)=T_x1, T(L,y,t)=T_x2, T(x,0,t)=T_y1, T(x,L,t)=T_y2
//
// The field is discretized on an N×N grid of interior nodes with Dirichlet
// boundary values held on the four edges.
package solver

import (
	"errors"
	"fmt"
)

// Params are the simulation inputs drawn by the experimental design: the
// initial temperature and the four boundary temperatures, each sampled in
// [100, 500] K in the paper's experiments.
type Params struct {
	TIC float64 // initial condition T(x,y,0)
	Tx1 float64 // boundary at x = 0
	Tx2 float64 // boundary at x = L
	Ty1 float64 // boundary at y = 0
	Ty2 float64 // boundary at y = L
}

// Vector returns the parameters in the canonical order used across the
// framework: (T_IC, T_x1, T_y1, T_x2, T_y2), matching §4.1.
func (p Params) Vector() []float64 {
	return []float64{p.TIC, p.Tx1, p.Ty1, p.Tx2, p.Ty2}
}

// ParamsFromVector is the inverse of Params.Vector.
func ParamsFromVector(v []float64) (Params, error) {
	if len(v) != 5 {
		return Params{}, fmt.Errorf("solver: want 5 parameters, got %d", len(v))
	}
	return Params{TIC: v[0], Tx1: v[1], Ty1: v[2], Tx2: v[3], Ty2: v[4]}, nil
}

// Config sets up a simulation run. The paper uses N=1000, Δt=0.01 s, α=1,
// 100 time steps; the reproduction defaults to smaller grids so that CPU
// training remains feasible, which does not change the streaming behaviour
// under study.
type Config struct {
	N         int     // interior grid points per side
	L         float64 // domain edge length (m)
	Alpha     float64 // thermal diffusivity (m²/s)
	Dt        float64 // time-step length (s)
	Steps     int     // number of time steps to produce
	Workers   int     // domain partitions (strips); ≤ 0 means 1
	CGTol     float64 // CG relative residual tolerance
	CGMaxIter int     // CG iteration cap per step
}

// DefaultConfig mirrors the paper's physical setup at a reduced grid size.
func DefaultConfig() Config {
	return Config{N: 32, L: 1, Alpha: 1, Dt: 0.01, Steps: 100, Workers: 1, CGTol: 1e-10, CGMaxIter: 10000}
}

func (c Config) withDefaults() Config {
	if c.L <= 0 {
		c.L = 1
	}
	if c.Alpha <= 0 {
		c.Alpha = 1
	}
	if c.Dt <= 0 {
		c.Dt = 0.01
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Workers > c.N {
		c.Workers = c.N
	}
	if c.CGTol <= 0 {
		c.CGTol = 1e-10
	}
	if c.CGMaxIter <= 0 {
		c.CGMaxIter = 10000
	}
	return c
}

// WithDefaults returns the configuration completed with default values, as
// New applies them — callers that need the effective Dt or worker count
// before constructing a simulation use this.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("solver: grid size N=%d must be ≥ 1", c.N)
	}
	if c.Steps < 1 {
		return fmt.Errorf("solver: steps=%d must be ≥ 1", c.Steps)
	}
	return nil
}

// Simulation is one ensemble member: a heat-equation run for a fixed
// parameter vector. It is not safe for concurrent use.
type Simulation struct {
	cfg  Config
	par  Params
	r    float64   // α·Δt/h²
	u    []float64 // current interior field, row-major N×N
	step int
	eng  *engine

	rhs, res, p, ap []float64 // CG work vectors
}

// New creates a simulation with the field initialized to the initial
// condition. cfg is validated and completed with defaults.
func New(cfg Config, par Params) (*Simulation, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := cfg.L / float64(cfg.N+1)
	s := &Simulation{
		cfg: cfg,
		par: par,
		r:   cfg.Alpha * cfg.Dt / (h * h),
		u:   make([]float64, cfg.N*cfg.N),
		rhs: make([]float64, cfg.N*cfg.N),
		res: make([]float64, cfg.N*cfg.N),
		p:   make([]float64, cfg.N*cfg.N),
		ap:  make([]float64, cfg.N*cfg.N),
	}
	for i := range s.u {
		s.u[i] = par.TIC
	}
	s.eng = newEngine(cfg.N, cfg.Workers, s.r)
	return s, nil
}

// Config returns the (defaulted) configuration in effect.
func (s *Simulation) Config() Config { return s.cfg }

// Params returns the simulation inputs.
func (s *Simulation) Params() Params { return s.par }

// Field returns the current interior temperature field (row-major, length
// N²). The slice aliases internal state; callers must copy before the next
// step if they retain it — the client library does this as part of its
// in-situ gather.
func (s *Simulation) Field() []float64 { return s.u }

// StepIndex returns the number of completed time steps.
func (s *Simulation) StepIndex() int { return s.step }

// Restore resets the simulation to a checkpointed state: the field after
// the given completed step. Used by restarted clients resuming from a
// checkpoint (§3.1).
func (s *Simulation) Restore(step int, field []float64) error {
	if step < 0 || step > s.cfg.Steps {
		return fmt.Errorf("solver: restore step %d outside [0,%d]", step, s.cfg.Steps)
	}
	if len(field) != len(s.u) {
		return fmt.Errorf("solver: restore field length %d, want %d", len(field), len(s.u))
	}
	copy(s.u, field)
	s.step = step
	return nil
}

// ErrNoConvergence is returned when CG exhausts its iteration budget.
var ErrNoConvergence = errors.New("solver: conjugate gradient did not converge")

// StepOnce advances the field by one implicit Euler step, solving
// (I + r·L_h) u^{n+1} = u^n + boundary terms with conjugate gradients,
// warm-started from the current field.
func (s *Simulation) StepOnce() error {
	s.buildRHS()
	if err := s.solveCG(); err != nil {
		return err
	}
	s.step++
	return nil
}

// Run advances through all configured steps, invoking emit after each one
// with the 1-based step index and the current field. This is the hook the
// client library instruments: "a send is issued to transfer time steps
// u_t^X as soon as computed" (§3.1).
func (s *Simulation) Run(emit func(step int, field []float64)) error {
	return Run(s, s.cfg.Steps, emit)
}

// buildRHS assembles b = u^n + r·(Dirichlet neighbour contributions).
func (s *Simulation) buildRHS() {
	n := s.cfg.N
	copy(s.rhs, s.u)
	r := s.r
	// Left and right columns.
	for i := 0; i < n; i++ {
		s.rhs[i*n] += r * s.par.Tx1
		s.rhs[i*n+n-1] += r * s.par.Tx2
	}
	// Bottom (y=0) and top (y=L) rows.
	for j := 0; j < n; j++ {
		s.rhs[j] += r * s.par.Ty1
		s.rhs[(n-1)*n+j] += r * s.par.Ty2
	}
}
