package solver

import (
	"fmt"
)

// GrayScottParams are the inputs of one Gray–Scott reaction–diffusion run:
// the feed rate F, the kill rate k, and the two diffusion coefficients.
// Different (F, k) regions of the design space produce qualitatively
// different patterns (spots, stripes, self-replicating blobs), which makes
// the problem a good stress test for a surrogate trained on heat-equation
// style diffusion alone.
type GrayScottParams struct {
	F  float64 // feed rate of species U
	K  float64 // kill rate of species V
	Du float64 // diffusion coefficient of U (lattice units)
	Dv float64 // diffusion coefficient of V (lattice units)
}

// Vector returns the parameters in the canonical order (F, k, Du, Dv) used
// across the framework.
func (p GrayScottParams) Vector() []float64 {
	return []float64{p.F, p.K, p.Du, p.Dv}
}

// GrayScottParamsFromVector is the inverse of GrayScottParams.Vector.
func GrayScottParamsFromVector(v []float64) (GrayScottParams, error) {
	if len(v) != 4 {
		return GrayScottParams{}, fmt.Errorf("solver: want 4 gray-scott parameters, got %d", len(v))
	}
	return GrayScottParams{F: v[0], K: v[1], Du: v[2], Dv: v[3]}, nil
}

// GrayScottConfig sets up a Gray–Scott simulation: an N×N periodic lattice
// (unit spacing) advanced with an explicit Euler scheme.
type GrayScottConfig struct {
	N     int     // lattice points per side
	Steps int     // number of time steps to produce
	Dt    float64 // time-step length (lattice time units)
}

func (c GrayScottConfig) withDefaults() GrayScottConfig {
	if c.Dt <= 0 {
		c.Dt = 1
	}
	return c
}

// Validate reports configuration errors, including violation of the
// explicit scheme's diffusion stability limit Dt·D·4 ≤ 1.
func (c GrayScottConfig) Validate(p GrayScottParams) error {
	if c.N < 1 {
		return fmt.Errorf("solver: gray-scott lattice N=%d must be ≥ 1", c.N)
	}
	if c.Steps < 1 {
		return fmt.Errorf("solver: gray-scott steps=%d must be ≥ 1", c.Steps)
	}
	maxD := p.Du
	if p.Dv > maxD {
		maxD = p.Dv
	}
	if 4*c.Dt*maxD > 1 {
		return fmt.Errorf("solver: gray-scott explicit scheme unstable: dt=%g with D=%g exceeds dt·D·4 ≤ 1", c.Dt, maxD)
	}
	return nil
}

// GrayScott integrates the two-species reaction–diffusion system
//
//	∂u/∂t = Du ∇²u − u·v² + F·(1−u)
//	∂v/∂t = Dv ∇²v + u·v² − (F+k)·v
//
// on a periodic N×N lattice with an explicit Euler scheme. The flattened
// field concatenates the two channels: u (N² values) followed by v (N²
// values), so the surrogate predicts both concentrations at once. The
// deterministic initial condition is the classical seeded state u=1, v=0
// with a central square perturbed to u=1/2, v=1/4.
//
// It implements the Simulator interface and is not safe for concurrent use.
type GrayScott struct {
	cfg  GrayScottConfig
	par  GrayScottParams
	step int

	field  []float64 // u then v, each row-major N×N
	u, v   []float64 // channel views into field
	un, vn []float64 // next-step scratch
}

// NewGrayScott creates a simulation with the seeded initial condition.
func NewGrayScott(cfg GrayScottConfig, par GrayScottParams) (*GrayScott, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(par); err != nil {
		return nil, err
	}
	n := cfg.N
	g := &GrayScott{
		cfg:   cfg,
		par:   par,
		field: make([]float64, 2*n*n),
		un:    make([]float64, n*n),
		vn:    make([]float64, n*n),
	}
	g.u = g.field[:n*n]
	g.v = g.field[n*n:]
	g.seed()
	return g, nil
}

// seed writes the deterministic initial condition.
func (g *GrayScott) seed() {
	n := g.cfg.N
	for i := range g.u {
		g.u[i] = 1
		g.v[i] = 0
	}
	// Central square seed, side ≈ N/4 (at least one cell).
	side := n / 4
	if side < 1 {
		side = 1
	}
	lo := (n - side) / 2
	for i := lo; i < lo+side; i++ {
		for j := lo; j < lo+side; j++ {
			g.u[i*n+j] = 0.5
			g.v[i*n+j] = 0.25
		}
	}
}

// Config returns the (defaulted) configuration in effect.
func (g *GrayScott) Config() GrayScottConfig { return g.cfg }

// Params returns the simulation inputs.
func (g *GrayScott) Params() GrayScottParams { return g.par }

// Field implements Simulator: the concatenated (u, v) channels, length 2N².
// The slice aliases internal state.
func (g *GrayScott) Field() []float64 { return g.field }

// StepIndex implements Simulator.
func (g *GrayScott) StepIndex() int { return g.step }

// Restore implements Simulator.
func (g *GrayScott) Restore(step int, field []float64) error {
	if step < 0 || step > g.cfg.Steps {
		return fmt.Errorf("solver: gray-scott restore step %d outside [0,%d]", step, g.cfg.Steps)
	}
	if len(field) != len(g.field) {
		return fmt.Errorf("solver: gray-scott restore field length %d, want %d", len(field), len(g.field))
	}
	copy(g.field, field)
	g.step = step
	return nil
}

// StepOnce implements Simulator: one explicit Euler update of both species
// with periodic boundaries.
func (g *GrayScott) StepOnce() error {
	n := g.cfg.N
	dt := g.cfg.Dt
	f, k, du, dv := g.par.F, g.par.K, g.par.Du, g.par.Dv
	for i := 0; i < n; i++ {
		up := ((i-1+n)%n)*n // row above
		dn := ((i+1)%n)*n   // row below
		row := i * n
		for j := 0; j < n; j++ {
			lf := (j - 1 + n) % n
			rt := (j + 1) % n
			u := g.u[row+j]
			v := g.v[row+j]
			lapU := g.u[up+j] + g.u[dn+j] + g.u[row+lf] + g.u[row+rt] - 4*u
			lapV := g.v[up+j] + g.v[dn+j] + g.v[row+lf] + g.v[row+rt] - 4*v
			uvv := u * v * v
			g.un[row+j] = u + dt*(du*lapU-uvv+f*(1-u))
			g.vn[row+j] = v + dt*(dv*lapV+uvv-(f+k)*v)
		}
	}
	copy(g.u, g.un)
	copy(g.v, g.vn)
	g.step++
	return nil
}

// Run advances through all configured steps, invoking emit after each one,
// mirroring Simulation.Run.
func (g *GrayScott) Run(emit func(step int, field []float64)) error {
	return Run(g, g.cfg.Steps, emit)
}
